/**
 * @file
 * Scheduler tests: the paper's Sec. 4.2 worked example, E_p accounting,
 * coverage invariants and property sweeps over random strings and
 * structure sets.
 */

#include <gtest/gtest.h>

#include "encoding/scheduler.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

TEST(Scheduler, PaperWorkedExample)
{
    // Fig. 2(a)/(e): rows with nnz (4,2,2,1,1,1,3,1) at C = 4 and
    // S = {bb, full}. The paper's toy figure labels the full-width row
    // 'd' (a literal per-count alphabet); the production encoding of
    // Sec. 4.1 uses log2 buckets, where width-4 rows are 'c'. Either
    // way the schedule is the paper's: 6 slots, E_p = 9.
    const SparsityString str =
        encodeRowNnz({4, 2, 2, 1, 1, 1, 3, 1}, 4);
    ASSERT_EQ(str.encoded, "cbbaaaca");
    const StructureSet set(4, {"bb"});  // fallback 'c' (width 4) added
    const Schedule schedule = scheduleString(str, set);
    EXPECT_EQ(schedule.slotCount(), 6);
    // nnz = 15, so E_p = 4 * 6 - 15 = 9.
    EXPECT_EQ(schedule.nnz, 15);
    EXPECT_EQ(schedule.ep, 9);
    EXPECT_EQ(recomputeEp(schedule, str), schedule.ep);
}

TEST(Scheduler, BaselineOneSlotPerRow)
{
    const SparsityString str = encodeRowNnz({1, 2, 3, 4, 1}, 4);
    const Schedule schedule =
        scheduleString(str, StructureSet::baseline(4));
    EXPECT_EQ(schedule.slotCount(), 5);
    EXPECT_EQ(schedule.ep, 4 * 5 - (1 + 2 + 3 + 4 + 1));
}

TEST(Scheduler, ExactMatchesPreferredOverDominated)
{
    // "abb": exact pass grabs "bb", leaving 'a' for the fallback.
    const SparsityString str = encodeRowNnz({1, 2, 2}, 4);
    const StructureSet set(4, {"bb"});
    const Schedule schedule = scheduleString(str, set);
    ASSERT_EQ(schedule.slotCount(), 2);
    // First slot: the exact "bb" match (rows 1 and 2).
    const SlotAssignment& slot = schedule.slots[0];
    EXPECT_EQ(set.patterns()[static_cast<std::size_t>(
        slot.structureId)], "bb");
    ASSERT_EQ(slot.positions.size(), 2u);
    EXPECT_EQ(str.rowOfPos[static_cast<std::size_t>(slot.positions[0])],
              1);
    EXPECT_EQ(str.rowOfPos[static_cast<std::size_t>(slot.positions[1])],
              2);
}

TEST(Scheduler, DominationAllowsNarrowerRows)
{
    // "aa" fits a "bb" structure with 2 zeros of padding.
    const SparsityString str = encodeRowNnz({1, 1}, 4);
    const StructureSet set(4, {"bb"});
    const Schedule schedule = scheduleString(str, set);
    EXPECT_EQ(schedule.slotCount(), 1);
    EXPECT_EQ(schedule.ep, 2);
}

TEST(Scheduler, ChunkRowsGetDedicatedSlots)
{
    // One row of 10 nnz at C = 4 ('$$b') plus two 'a' rows.
    const SparsityString str = encodeRowNnz({10, 1, 1}, 4);
    const StructureSet set(4, {"aa"});
    const Schedule schedule = scheduleString(str, set);
    EXPECT_EQ(schedule.chunkSlots, 3);  // $, $, and the 'b' remainder
    // Plus one "aa" slot for the two singleton rows.
    EXPECT_EQ(schedule.slotCount(), 4);
    EXPECT_EQ(schedule.ep, 4 * 4 - 12);
    // Chunk slots are flagged and single-position.
    Index chunk_count = 0;
    for (const SlotAssignment& slot : schedule.slots)
        if (slot.isChunk) {
            ++chunk_count;
            EXPECT_EQ(slot.positions.size(), 1u);
        }
    EXPECT_EQ(chunk_count, 3);
}

TEST(Scheduler, ChunkSlotsStayInRowOrder)
{
    const SparsityString str = encodeRowNnz({9, 6}, 4);
    const Schedule schedule =
        scheduleString(str, StructureSet::baseline(4));
    // Positions of row 0's chunks must precede row 1's and be
    // consecutive.
    IndexVector rows;
    for (const SlotAssignment& slot : schedule.slots)
        rows.push_back(
            str.rowOfPos[static_cast<std::size_t>(slot.positions[0])]);
    const IndexVector expected = {0, 0, 0, 1, 1};
    EXPECT_EQ(rows, expected);
}

TEST(Scheduler, MismatchedWidthRejected)
{
    const SparsityString str = encodeRowNnz({1, 1}, 4);
    const StructureSet set = StructureSet::baseline(8);
    EXPECT_DEATH(scheduleString(str, set), "width");
}

/** Property sweep: every position scheduled exactly once; E_p
 *  formula consistent; customized never worse than baseline. */
class SchedulerProperty
    : public ::testing::TestWithParam<std::tuple<Index, int>>
{};

TEST_P(SchedulerProperty, InvariantsHold)
{
    const auto [c, seed] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 131 + c);
    IndexVector row_nnz;
    for (int i = 0; i < 300; ++i)
        row_nnz.push_back(rng.uniformIndex(2 * c + 1));
    const SparsityString str = encodeRowNnz(row_nnz, c);

    // Random structure set: a couple of homogeneous runs.
    std::vector<std::string> patterns;
    for (char ch = 'a'; ch < topChar(c); ++ch)
        if (rng.bernoulli(0.5))
            patterns.emplace_back(
                static_cast<std::size_t>(c / charWidth(ch)), ch);
    const StructureSet set(c, patterns);
    const Schedule schedule = scheduleString(str, set);

    // Coverage: each position in exactly one slot.
    std::vector<int> covered(str.length(), 0);
    for (const SlotAssignment& slot : schedule.slots)
        for (Index pos : slot.positions)
            if (pos >= 0)
                ++covered[static_cast<std::size_t>(pos)];
    for (int count : covered)
        EXPECT_EQ(count, 1);

    // E_p accounting.
    EXPECT_EQ(schedule.ep,
              static_cast<Count>(c) * schedule.slotCount() -
                  schedule.nnz);
    EXPECT_EQ(recomputeEp(schedule, str), schedule.ep);

    // Customization never hurts.
    const Schedule baseline =
        scheduleString(str, StructureSet::baseline(c));
    EXPECT_LE(schedule.slotCount(), baseline.slotCount());
    EXPECT_LE(schedule.ep, baseline.ep);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerProperty,
    ::testing::Combine(::testing::Values(4, 8, 16, 32, 64),
                       ::testing::Values(1, 2, 3)));

} // namespace
} // namespace rsqp
