/**
 * @file
 * Encoding/scheduling/packing edge cases: empty matrices, single
 * rows, all-chunk strings, interleaved wide and narrow rows, and
 * minimal datapath widths.
 */

#include <gtest/gtest.h>

#include "cvb/cvb.hpp"
#include "encoding/packing.hpp"
#include "encoding/scheduler.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

PackedMatrix
packAll(const CsrMatrix& csr, Index c)
{
    const StructureSet set = StructureSet::baseline(c);
    const SparsityString str = encodeMatrix(csr, c);
    const Schedule schedule = scheduleString(str, set);
    return packMatrix(csr, str, schedule, set);
}

TEST(EdgeCases, EmptyMatrixZeroRows)
{
    const CsrMatrix csr(0, 5);
    const SparsityString str = encodeMatrix(csr, 4);
    EXPECT_EQ(str.length(), 0u);
    const Schedule schedule =
        scheduleString(str, StructureSet::baseline(4));
    EXPECT_EQ(schedule.slotCount(), 0);
    EXPECT_EQ(schedule.ep, 0);
}

TEST(EdgeCases, MatrixOfOnlyZeroRows)
{
    const CsrMatrix csr(4, 3);  // no entries at all
    const PackedMatrix packed = packAll(csr, 4);
    EXPECT_EQ(packed.packCount(), 4);  // one padded slot per row
    const Vector y = packed.referenceSpmv({1.0, 2.0, 3.0});
    for (Real v : y)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EdgeCases, SingleDenseRowManyChunks)
{
    TripletList triplets(1, 100);
    Rng rng(1);
    for (Index j = 0; j < 100; ++j)
        triplets.add(0, j, rng.normal());
    const CsrMatrix csr =
        CsrMatrix::fromCsc(CscMatrix::fromTriplets(triplets));
    const SparsityString str = encodeMatrix(csr, 8);
    // 100 = 12 * 8 + 4: twelve '$' chunks + a 'c' remainder.
    EXPECT_EQ(str.encoded, std::string(12, kChunkChar) + "c");
    const PackedMatrix packed = packAll(csr, 8);
    EXPECT_EQ(packed.packCount(), 13);

    const Vector x = test::randomVector(100, rng);
    Vector y_ref;
    csr.spmv(x, y_ref);
    EXPECT_NEAR(packed.referenceSpmv(x)[0], y_ref[0],
                1e-10 * (1.0 + std::abs(y_ref[0])));
}

TEST(EdgeCases, InterleavedWideAndNarrowRows)
{
    // Alternate 20-nnz and 1-nnz rows at C = 8. The '$' chunk
    // positions of the wide rows act as match barriers (the paper's
    // '*' replacement semantics), so interleaved singletons cannot be
    // grouped — but results must still be exact.
    TripletList triplets(10, 30);
    Rng rng(2);
    for (Index r = 0; r < 10; ++r) {
        const Index k = (r % 2 == 0) ? 20 : 1;
        for (Index c : rng.sampleDistinct(30, k))
            triplets.add(r, c, rng.normal());
    }
    const CsrMatrix csr =
        CsrMatrix::fromCsc(CscMatrix::fromTriplets(triplets));
    const StructureSet set(8, {"aaaa"});
    const SparsityString str = encodeMatrix(csr, 8);
    const Schedule schedule = scheduleString(str, set);
    const PackedMatrix packed = packMatrix(csr, str, schedule, set);

    const Vector x = test::randomVector(30, rng);
    Vector y_ref;
    csr.spmv(x, y_ref);
    EXPECT_LT(test::maxAbsDiff(packed.referenceSpmv(x), y_ref),
              1e-10);
    for (const SlotAssignment& slot : schedule.slots)
        if (!slot.isChunk)
            EXPECT_LT(slot.positions.size(), 4u)
                << "interleaved singletons must not group across "
                   "chunk barriers";
}

TEST(EdgeCases, GroupedNarrowRowsDoShareSlots)
{
    // Same rows but grouped: wide rows first, then five singletons in
    // a row — now a "aaaa" structure packs four of them per cycle.
    TripletList triplets(10, 30);
    Rng rng(2);
    for (Index r = 0; r < 10; ++r) {
        const Index k = (r < 5) ? 20 : 1;
        for (Index c : rng.sampleDistinct(30, k))
            triplets.add(r, c, rng.normal());
    }
    const CsrMatrix csr =
        CsrMatrix::fromCsc(CscMatrix::fromTriplets(triplets));
    const StructureSet set(8, {"aaaa"});
    const SparsityString str = encodeMatrix(csr, 8);
    const Schedule schedule = scheduleString(str, set);
    Count grouped = 0;
    for (const SlotAssignment& slot : schedule.slots)
        if (!slot.isChunk && slot.positions.size() == 4)
            ++grouped;
    EXPECT_EQ(grouped, 1);

    const PackedMatrix packed = packMatrix(csr, str, schedule, set);
    const Vector x = test::randomVector(30, rng);
    Vector y_ref;
    csr.spmv(x, y_ref);
    EXPECT_LT(test::maxAbsDiff(packed.referenceSpmv(x), y_ref),
              1e-10);
}

TEST(EdgeCases, WidthTwoDatapath)
{
    // Minimal interesting width: C = 2, alphabet {a, b}.
    EXPECT_EQ(alphabetSize(2), 2);
    EXPECT_EQ(topChar(2), 'b');
    TripletList triplets(5, 5);
    Rng rng(3);
    for (Index r = 0; r < 5; ++r)
        triplets.add(r, rng.uniformIndex(5), rng.normal());
    const CsrMatrix csr =
        CsrMatrix::fromCsc(CscMatrix::fromTriplets(triplets));
    const PackedMatrix packed = packAll(csr, 2);
    const Vector x = test::randomVector(5, rng);
    Vector y_ref;
    csr.spmv(x, y_ref);
    EXPECT_LT(test::maxAbsDiff(packed.referenceSpmv(x), y_ref), 1e-12);
}

TEST(EdgeCases, CvbWithAllLanesConflicting)
{
    // Every element needed by every lane: no compression possible.
    AccessRequirements req;
    req.c = 4;
    req.length = 6;
    req.laneMask.assign(6, 0xF);
    const CvbPlan plan = compressFirstFit(req);
    EXPECT_EQ(plan.depth, 6);
    EXPECT_DOUBLE_EQ(plan.ec(), 4.0);
    EXPECT_TRUE(plan.isConsistentWith(req));
}

TEST(EdgeCases, CvbEmptyRequirements)
{
    AccessRequirements req;
    req.c = 4;
    req.length = 8;
    req.laneMask.assign(8, 0);
    const CvbPlan plan = compressFirstFit(req);
    EXPECT_EQ(plan.depth, 0);
    EXPECT_EQ(plan.storedCopies(), 0);
    EXPECT_EQ(plan.updateCycles(), 2);  // still streams L/C
}

TEST(EdgeCases, SchedulerWithStructureNarrowerThanC)
{
    // A width-4 structure on a C = 8 datapath: the unused upper lanes
    // count as padding but the result stays correct.
    TripletList triplets(6, 10);
    Rng rng(4);
    for (Index r = 0; r < 6; ++r)
        for (Index c : rng.sampleDistinct(10, 2))
            triplets.add(r, c, rng.normal());
    const CsrMatrix csr =
        CsrMatrix::fromCsc(CscMatrix::fromTriplets(triplets));
    const StructureSet set(8, {"bb"});  // width 4 of 8
    const SparsityString str = encodeMatrix(csr, 8);
    const Schedule schedule = scheduleString(str, set);
    const PackedMatrix packed = packMatrix(csr, str, schedule, set);
    EXPECT_EQ(packed.ep, schedule.ep);
    const Vector x = test::randomVector(10, rng);
    Vector y_ref;
    csr.spmv(x, y_ref);
    EXPECT_LT(test::maxAbsDiff(packed.referenceSpmv(x), y_ref), 1e-12);
}

} // namespace
} // namespace rsqp
