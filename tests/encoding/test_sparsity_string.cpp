/**
 * @file
 * Sparsity-string encoding tests: character maps, the paper's Fig. 2(a)
 * example, '$' chunking of wide rows and zero-row handling.
 */

#include <gtest/gtest.h>

#include "encoding/sparsity_string.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

TEST(SparsityChars, WidthsArePowersOfTwo)
{
    EXPECT_EQ(charWidth('a'), 1);
    EXPECT_EQ(charWidth('b'), 2);
    EXPECT_EQ(charWidth('c'), 4);
    EXPECT_EQ(charWidth('g'), 64);
}

TEST(SparsityChars, AlphabetSizeAndTopChar)
{
    EXPECT_EQ(alphabetSize(4), 3);
    EXPECT_EQ(topChar(4), 'c');
    EXPECT_EQ(alphabetSize(64), 7);
    EXPECT_EQ(topChar(64), 'g');
}

TEST(SparsityChars, CharForNnzBuckets)
{
    // Rows with <= 1, 2, 4, ... non-zeros map to 'a', 'b', 'c', ...
    EXPECT_EQ(charForNnz(0, 64), 'a');
    EXPECT_EQ(charForNnz(1, 64), 'a');
    EXPECT_EQ(charForNnz(2, 64), 'b');
    EXPECT_EQ(charForNnz(3, 64), 'c');
    EXPECT_EQ(charForNnz(4, 64), 'c');
    EXPECT_EQ(charForNnz(5, 64), 'd');
    EXPECT_EQ(charForNnz(64, 64), 'g');
}

TEST(SparsityChars, IsPow2)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_FALSE(isPow2(-4));
}

TEST(SparsityString, PaperFig2aExample)
{
    // Fig. 2(a): rows with nnz (4, 2, 2, 1, 1, 1, 3, 1) at C = 4.
    // The production encoding (Sec. 4.1) uses log2 buckets, so the
    // width-4 row and the 3-nnz row both map to 'c' (the figure's toy
    // alphabet labels them 'd' and 'c' respectively).
    const IndexVector row_nnz = {4, 2, 2, 1, 1, 1, 3, 1};
    const SparsityString str = encodeRowNnz(row_nnz, 4);
    EXPECT_EQ(str.encoded, "cbbaaaca");
    ASSERT_EQ(str.rowOfPos.size(), 8u);
    for (Index p = 0; p < 8; ++p)
        EXPECT_EQ(str.rowOfPos[static_cast<std::size_t>(p)], p);
}

TEST(SparsityString, WideRowsBecomeChunks)
{
    // A row with 10 non-zeros at C = 4: two '$' chunks + 'b' remainder.
    const SparsityString str = encodeRowNnz({10}, 4);
    EXPECT_EQ(str.encoded, "$$b");
    EXPECT_EQ(str.nnzOfPos[0], 4);
    EXPECT_EQ(str.nnzOfPos[1], 4);
    EXPECT_EQ(str.nnzOfPos[2], 2);
    for (Index row : str.rowOfPos)
        EXPECT_EQ(row, 0);
}

TEST(SparsityString, ExactMultipleEndsWithTopChar)
{
    // nnz = 8 = 2 * C: one '$' chunk then a full-width top char.
    const SparsityString str = encodeRowNnz({8}, 4);
    EXPECT_EQ(str.encoded, "$c");
    EXPECT_EQ(str.nnzOfPos[1], 4);
}

TEST(SparsityString, ZeroRowEncodedAsA)
{
    const SparsityString str = encodeRowNnz({0, 3, 0}, 4);
    EXPECT_EQ(str.encoded, "aca");
    EXPECT_EQ(str.nnzOfPos[0], 0);
    EXPECT_EQ(str.nnzOfPos[2], 0);
}

TEST(SparsityString, EncodeMatrixMatchesRowNnz)
{
    Rng rng(2);
    const CscMatrix csc = test::randomSparse(30, 20, 0.2, rng);
    const CsrMatrix csr = CsrMatrix::fromCsc(csc);
    const SparsityString str = encodeMatrix(csr, 16);
    Count covered = 0;
    for (Index nnz : str.nnzOfPos)
        covered += nnz;
    EXPECT_EQ(covered, csr.nnz());
    // Every row appears at least once.
    std::vector<bool> seen(30, false);
    for (Index row : str.rowOfPos)
        seen[static_cast<std::size_t>(row)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(SparsityString, Patterns)
{
    EXPECT_TRUE(isValidPattern("bb", 4));
    EXPECT_TRUE(isValidPattern("d", 8));
    EXPECT_TRUE(isValidPattern("aaaa", 4));
    EXPECT_FALSE(isValidPattern("", 4));
    EXPECT_FALSE(isValidPattern("d", 4));   // 'd' width 8 > 4
    EXPECT_FALSE(isValidPattern("cc", 4));  // total width 8 > 4
    EXPECT_FALSE(isValidPattern("$a", 4));  // '$' not allowed
    EXPECT_EQ(patternWidth("bb"), 4);
    EXPECT_EQ(patternWidth("caa"), 6);
}

TEST(SparsityString, CharacterHistogram)
{
    const auto hist = characterHistogram("aabac");
    // Sorted by character: a:3, b:1, c:1.
    ASSERT_EQ(hist.size(), 3u);
    EXPECT_EQ(hist[0].first, 'a');
    EXPECT_EQ(hist[0].second, 3);
    EXPECT_EQ(hist[1].first, 'b');
    EXPECT_EQ(hist[2].first, 'c');
}

/** Property: for any row-nnz vector, the chunk decomposition covers
 *  every non-zero exactly once and respects the width bound. */
class EncodingProperty : public ::testing::TestWithParam<Index>
{};

TEST_P(EncodingProperty, ChunksCoverAllNnz)
{
    const Index c = GetParam();
    Rng rng(static_cast<std::uint64_t>(c));
    IndexVector row_nnz;
    Count total = 0;
    for (int i = 0; i < 200; ++i) {
        const Index nnz = rng.uniformIndex(4 * c + 1);
        row_nnz.push_back(nnz);
        total += nnz;
    }
    const SparsityString str = encodeRowNnz(row_nnz, c);
    Count covered = 0;
    for (std::size_t p = 0; p < str.length(); ++p) {
        EXPECT_LE(str.nnzOfPos[p], c);
        EXPECT_GE(str.nnzOfPos[p], 0);
        if (str.encoded[p] == kChunkChar)
            EXPECT_EQ(str.nnzOfPos[p], c);
        else
            EXPECT_LE(str.nnzOfPos[p],
                      charWidth(str.encoded[p]));
        covered += str.nnzOfPos[p];
    }
    EXPECT_EQ(covered, total);
}

INSTANTIATE_TEST_SUITE_P(Widths, EncodingProperty,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

} // namespace
} // namespace rsqp
