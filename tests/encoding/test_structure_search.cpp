/**
 * @file
 * Structure-search tests: the search must discover profitable
 * structures on patterned strings, respect the budget, never hurt the
 * schedule, and handle multi-matrix joint searches.
 */

#include <gtest/gtest.h>

#include "encoding/structure_search.hpp"
#include "problems/generators.hpp"
#include "problems/suite.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

TEST(StructureSearch, FindsRepeatedPairPattern)
{
    // Alternating (2, 2) rows: "bbbb..." at C = 8; the dedicated
    // "bbbb" structure packs 4 rows per cycle.
    IndexVector row_nnz;
    for (int i = 0; i < 400; ++i)
        row_nnz.push_back(2);
    const SparsityString str = encodeRowNnz(row_nnz, 8);
    StructureSearchSettings settings;
    settings.targetSize = 2;
    const StructureSearchResult result =
        searchStructureSet(str, settings);
    // Baseline: one row per slot (400 slots). Customized: ~100.
    EXPECT_EQ(result.baselineSlots, 400);
    EXPECT_LE(result.chosenSlots, 110);
    EXPECT_LT(result.chosenEp, result.baselineEp);
}

TEST(StructureSearch, RespectsBudget)
{
    Rng rng(3);
    const QpProblem qp = generateLasso(30, rng);
    const CsrMatrix a_csr = CsrMatrix::fromCsc(qp.a);
    const SparsityString str = encodeMatrix(a_csr, 16);
    for (Index target : {1, 2, 3, 4}) {
        StructureSearchSettings settings;
        settings.targetSize = target;
        const StructureSearchResult result =
            searchStructureSet(str, settings);
        EXPECT_LE(static_cast<Index>(result.set.patterns().size()),
                  std::max<Index>(target, 1));
    }
}

TEST(StructureSearch, NeverWorseThanBaseline)
{
    Rng rng(5);
    for (Domain domain : {Domain::Control, Domain::Svm, Domain::Eqqp}) {
        const QpProblem qp =
            generateProblem(domain, domain == Domain::Control ? 8 : 30,
                            17);
        const CsrMatrix a_csr = CsrMatrix::fromCsc(qp.a);
        const SparsityString str = encodeMatrix(a_csr, 32);
        const StructureSearchResult result = searchStructureSet(str);
        EXPECT_LE(result.chosenSlots, result.baselineSlots)
            << toString(domain);
        EXPECT_LE(result.chosenEp, result.baselineEp)
            << toString(domain);
    }
}

TEST(StructureSearch, UniformStringsGainLittle)
{
    // All rows already full width: the baseline is already ideal and
    // the search should not regress it.
    IndexVector row_nnz(200, 16);
    const SparsityString str = encodeRowNnz(row_nnz, 16);
    const StructureSearchResult result = searchStructureSet(str);
    EXPECT_EQ(result.chosenSlots, result.baselineSlots);
    EXPECT_EQ(result.chosenEp, 0);
}

TEST(StructureSearch, JointSearchCoversAllMatrices)
{
    Rng rng(7);
    const QpProblem qp = generateSvm(25, rng);
    const CsrMatrix a_csr = CsrMatrix::fromCsc(qp.a);
    const CsrMatrix at_csr = CsrMatrix::fromCsc(qp.a.transpose());
    const CsrMatrix p_csr =
        CsrMatrix::fromCsc(qp.pUpper.symUpperToFull());
    const SparsityString a_str = encodeMatrix(a_csr, 32);
    const SparsityString at_str = encodeMatrix(at_csr, 32);
    const SparsityString p_str = encodeMatrix(p_csr, 32);

    const StructureSearchResult joint =
        searchStructureSet({&p_str, &a_str, &at_str});
    EXPECT_LT(joint.chosenSlots, joint.baselineSlots);

    // The joint set is usable on each string individually.
    for (const SparsityString* str : {&p_str, &a_str, &at_str}) {
        const Schedule schedule = scheduleString(*str, joint.set);
        EXPECT_GT(schedule.slotCount(), 0);
    }
}

TEST(StructureSearch, SampledSelectionStillValidOnFullString)
{
    // Force sampling with a tiny evalSampleLength; final numbers must
    // still come from the full string and satisfy the invariants.
    IndexVector row_nnz;
    Rng rng(9);
    for (int i = 0; i < 5000; ++i)
        row_nnz.push_back(1 + rng.uniformIndex(4));
    const SparsityString str = encodeRowNnz(row_nnz, 16);
    StructureSearchSettings settings;
    settings.evalSampleLength = 512;
    const StructureSearchResult result =
        searchStructureSet(str, settings);
    EXPECT_LE(result.chosenSlots, result.baselineSlots);
    const Schedule check = scheduleString(str, result.set);
    EXPECT_EQ(check.slotCount(), result.chosenSlots);
}

} // namespace
} // namespace rsqp
