/**
 * @file
 * Pack-layout tests: the materialized HBM stream must reproduce the
 * exact SpMV result of the source matrix for any structure set, count
 * its padding consistently with the schedule, and handle '$'
 * accumulation chains and zero rows.
 */

#include <gtest/gtest.h>

#include "encoding/packing.hpp"
#include "problems/generators.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

using test::randomSparse;
using test::randomVector;

PackedMatrix
packWith(const CsrMatrix& csr, const StructureSet& set)
{
    const SparsityString str = encodeMatrix(csr, set.c());
    const Schedule schedule = scheduleString(str, set);
    return packMatrix(csr, str, schedule, set);
}

TEST(Packing, ReferenceSpmvMatchesCsr)
{
    Rng rng(1);
    const CscMatrix csc = randomSparse(40, 30, 0.2, rng);
    const CsrMatrix csr = CsrMatrix::fromCsc(csc);
    const PackedMatrix packed =
        packWith(csr, StructureSet::baseline(8));
    const Vector x = randomVector(30, rng);
    Vector y_ref;
    csr.spmv(x, y_ref);
    const Vector y_packed = packed.referenceSpmv(x);
    EXPECT_LT(test::maxAbsDiff(y_ref, y_packed), 1e-12);
}

TEST(Packing, PaddingMatchesScheduleEp)
{
    Rng rng(2);
    const CscMatrix csc = randomSparse(60, 25, 0.15, rng);
    const CsrMatrix csr = CsrMatrix::fromCsc(csc);
    const StructureSet set(16, {"bbbbbbbb", "cccc"});
    const SparsityString str = encodeMatrix(csr, 16);
    const Schedule schedule = scheduleString(str, set);
    const PackedMatrix packed = packMatrix(csr, str, schedule, set);
    EXPECT_EQ(packed.ep, schedule.ep);
    EXPECT_EQ(packed.packCount(), schedule.slotCount());
    EXPECT_EQ(packed.nnz, csr.nnz());
}

TEST(Packing, WideRowsAccumulateAcrossPacks)
{
    // Single dense row wider than C: the stream must chain partial
    // sums through the accumulate/emit flags.
    TripletList triplets(1, 20);
    for (Index j = 0; j < 20; ++j)
        triplets.add(0, j, static_cast<Real>(j + 1));
    const CsrMatrix csr =
        CsrMatrix::fromCsc(CscMatrix::fromTriplets(triplets));
    const PackedMatrix packed =
        packWith(csr, StructureSet::baseline(8));
    ASSERT_EQ(packed.packCount(), 3);  // 8 + 8 + 4
    EXPECT_TRUE(packed.packs[0].segments[0].accumulate == false);
    EXPECT_FALSE(packed.packs[0].segments[0].emit);
    EXPECT_TRUE(packed.packs[1].segments[0].accumulate);
    EXPECT_FALSE(packed.packs[1].segments[0].emit);
    EXPECT_TRUE(packed.packs[2].segments[0].accumulate);
    EXPECT_TRUE(packed.packs[2].segments[0].emit);

    Vector x(20, 1.0);
    const Vector y = packed.referenceSpmv(x);
    EXPECT_DOUBLE_EQ(y[0], 210.0);  // 1 + 2 + ... + 20
}

TEST(Packing, ZeroRowsProduceZeroOutputs)
{
    TripletList triplets(4, 4);
    triplets.add(1, 2, 3.0);  // rows 0, 2, 3 empty
    const CsrMatrix csr =
        CsrMatrix::fromCsc(CscMatrix::fromTriplets(triplets));
    const PackedMatrix packed =
        packWith(csr, StructureSet::baseline(4));
    Vector x(4, 5.0);
    const Vector y = packed.referenceSpmv(x);
    EXPECT_DOUBLE_EQ(y[0], 0.0);
    EXPECT_DOUBLE_EQ(y[1], 15.0);
    EXPECT_DOUBLE_EQ(y[2], 0.0);
    EXPECT_DOUBLE_EQ(y[3], 0.0);
}

TEST(Packing, PadLanesAreExplicitZeros)
{
    const SparsityString str = encodeRowNnz({1, 1}, 4);
    TripletList triplets(2, 2);
    triplets.add(0, 0, 2.0);
    triplets.add(1, 1, 3.0);
    const CsrMatrix csr =
        CsrMatrix::fromCsc(CscMatrix::fromTriplets(triplets));
    const StructureSet set(4, {"bb"});
    const Schedule schedule = scheduleString(str, set);
    const PackedMatrix packed = packMatrix(csr, str, schedule, set);
    ASSERT_EQ(packed.packCount(), 1);
    const LanePack& pack = packed.packs[0];
    // Lanes 1 and 3 are padding: zero value, -1 index.
    EXPECT_DOUBLE_EQ(pack.values[1], 0.0);
    EXPECT_EQ(pack.colIdx[1], -1);
    EXPECT_DOUBLE_EQ(pack.values[3], 0.0);
    EXPECT_EQ(pack.colIdx[3], -1);
}

/** Property sweep: pack + reference SpMV equal CSR SpMV across
 *  widths, structure sets and matrix shapes (incl. benchmark data). */
class PackingProperty : public ::testing::TestWithParam<Index>
{};

TEST_P(PackingProperty, FunctionalEquivalenceRandom)
{
    const Index c = GetParam();
    Rng rng(static_cast<std::uint64_t>(c) * 17);
    for (int trial = 0; trial < 3; ++trial) {
        const CscMatrix csc =
            randomSparse(50, 35, 0.05 + 0.1 * trial, rng);
        const CsrMatrix csr = CsrMatrix::fromCsc(csc);
        // Random structure set.
        std::vector<std::string> patterns;
        for (char ch = 'a'; ch < topChar(c); ++ch)
            if (rng.bernoulli(0.6))
                patterns.emplace_back(
                    static_cast<std::size_t>(c / charWidth(ch)), ch);
        const StructureSet set(c, patterns);
        const PackedMatrix packed = packWith(csr, set);

        const Vector x = randomVector(35, rng);
        Vector y_ref;
        csr.spmv(x, y_ref);
        const Vector y = packed.referenceSpmv(x);
        EXPECT_LT(test::maxAbsDiff(y_ref, y), 1e-10);
    }
}

TEST_P(PackingProperty, FunctionalEquivalenceBenchmark)
{
    const Index c = GetParam();
    Rng rng(1234);
    const QpProblem qp = generateHuber(15, rng);
    const CsrMatrix csr = CsrMatrix::fromCsc(qp.a);
    const PackedMatrix packed =
        packWith(csr, StructureSet::baseline(c));
    const Vector x = randomVector(csr.cols(), rng);
    Vector y_ref;
    csr.spmv(x, y_ref);
    EXPECT_LT(test::maxAbsDiff(y_ref, packed.referenceSpmv(x)), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Widths, PackingProperty,
                         ::testing::Values(4, 8, 16, 32, 64));

} // namespace
} // namespace rsqp
