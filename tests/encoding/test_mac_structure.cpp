/**
 * @file
 * MAC structure set tests: fallback handling, the paper's C{...}
 * notation, lane layouts and scheduling order.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "encoding/mac_structure.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

TEST(StructureSet, BaselineHasOnlyFallback)
{
    const StructureSet set = StructureSet::baseline(16);
    ASSERT_EQ(set.patterns().size(), 1u);
    EXPECT_EQ(set.patterns()[0], "e");
    EXPECT_EQ(set.fallbackIndex(), 0);
    EXPECT_EQ(set.totalOutputs(), 1);
}

TEST(StructureSet, FallbackAppendedAutomatically)
{
    const StructureSet set(4, {"bb"});
    ASSERT_EQ(set.patterns().size(), 2u);
    EXPECT_EQ(set.patterns()[0], "bb");
    EXPECT_EQ(set.patterns()[1], "c");
    EXPECT_EQ(set.fallbackIndex(), 1);
}

TEST(StructureSet, PaperExampleBbD)
{
    // Fig. 2(c): S = {bb, d} at C = 4... at C = 8 'd' is width 8.
    const StructureSet set(8, {"bb", "d"});
    EXPECT_EQ(set.fallbackIndex(), 1);  // 'd' is the top char for C=8
    EXPECT_EQ(set.totalOutputs(), 3);
}

TEST(StructureSet, InvalidPatternsRejected)
{
    EXPECT_THROW(StructureSet(4, {"cc"}), FatalError);   // too wide
    EXPECT_THROW(StructureSet(4, {"x"}), FatalError);    // bad char
    EXPECT_THROW(StructureSet(4, {"bb", "bb"}), FatalError);  // dup
}

TEST(StructureSet, NameRoundTrip)
{
    const StructureSet set(16, {"aaaaaaaaaaaaaaaa"});
    EXPECT_EQ(set.name(), "16{16a1e}");
    const StructureSet parsed = StructureSet::parse("16{16a1e}");
    EXPECT_TRUE(parsed == set);
}

TEST(StructureSet, ParsePaperTable3Names)
{
    const StructureSet set = StructureSet::parse("32{32a4d1f}");
    EXPECT_EQ(set.c(), 32);
    ASSERT_EQ(set.patterns().size(), 3u);
    EXPECT_EQ(set.patterns()[0], std::string(32, 'a'));
    EXPECT_EQ(set.patterns()[1], "dddd");
    EXPECT_EQ(set.patterns()[2], "f");
    EXPECT_EQ(set.totalOutputs(), 37);
    EXPECT_EQ(set.name(), "32{32a4d1f}");
}

TEST(StructureSet, ParseErrors)
{
    EXPECT_THROW(StructureSet::parse("{4d}"), FatalError);
    EXPECT_THROW(StructureSet::parse("32[4d]"), FatalError);
    EXPECT_THROW(StructureSet::parse("32{4d"), FatalError);
    EXPECT_THROW(StructureSet::parse("32{d4}"), FatalError);
}

TEST(StructureSet, LayoutPacksSegmentsLeftToRight)
{
    const StructureSet set(8, {"bac"});
    const auto layout = set.layout(0);
    ASSERT_EQ(layout.size(), 3u);
    EXPECT_EQ(layout[0].ch, 'b');
    EXPECT_EQ(layout[0].laneBegin, 0);
    EXPECT_EQ(layout[0].laneEnd, 2);
    EXPECT_EQ(layout[1].ch, 'a');
    EXPECT_EQ(layout[1].laneBegin, 2);
    EXPECT_EQ(layout[1].laneEnd, 3);
    EXPECT_EQ(layout[2].ch, 'c');
    EXPECT_EQ(layout[2].laneBegin, 3);
    EXPECT_EQ(layout[2].laneEnd, 7);
}

TEST(StructureSet, SchedulingOrderLongestFirst)
{
    const StructureSet set(8, {"d", "bb", "aaaa"});
    const IndexVector order = set.schedulingOrder();
    // "aaaa" (len 4) before "bb" (len 2) before "d" (len 1).
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(set.patterns()[static_cast<std::size_t>(order[0])],
              "aaaa");
    EXPECT_EQ(set.patterns()[static_cast<std::size_t>(order[1])], "bb");
    EXPECT_EQ(set.patterns()[static_cast<std::size_t>(order[2])], "d");
}

TEST(StructureSet, SchedulingOrderTieBrokenByWidth)
{
    const StructureSet set(8, {"aa", "bb"});
    const IndexVector order = set.schedulingOrder();
    // Same length; "bb" (width 4) wins over "aa" (width 2).
    EXPECT_EQ(set.patterns()[static_cast<std::size_t>(order[0])], "bb");
}

TEST(StructureSet, MixedPatternNameUsesRuns)
{
    const StructureSet set(8, {"bab"});
    EXPECT_EQ(set.name(), "8{1b1a1b1d}");
}

} // namespace
} // namespace rsqp
