/**
 * @file
 * LZW dictionary tests: phrase discovery on repetitive strings,
 * emission counting and the compressed-length metric.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "encoding/lzw.hpp"

namespace rsqp
{
namespace
{

Count
countOf(const std::vector<LzwEntry>& entries, const std::string& phrase)
{
    for (const LzwEntry& entry : entries)
        if (entry.phrase == phrase)
            return entry.emitCount;
    return 0;
}

TEST(Lzw, EmptyString)
{
    EXPECT_TRUE(lzwDictionary("").empty());
    EXPECT_EQ(lzwCompressedLength(""), 0);
}

TEST(Lzw, SingleCharacterRun)
{
    // "aaaa...a": LZW emits a, aa, aaa, ... (growing phrases).
    const std::string text(64, 'a');
    const auto entries = lzwDictionary(text);
    EXPECT_GE(countOf(entries, "a"), 1);
    EXPECT_GE(countOf(entries, "aa"), 1);
    EXPECT_GE(countOf(entries, "aaa"), 1);
    // Compression: far fewer codes than characters.
    EXPECT_LT(lzwCompressedLength(text), 16);
}

TEST(Lzw, RepeatedPatternDiscovered)
{
    // A long "ca" repetition should surface "ca" phrases prominently.
    std::string text;
    for (int i = 0; i < 200; ++i)
        text += "ca";
    const auto entries = lzwDictionary(text);
    bool found_ca_phrase = false;
    for (const LzwEntry& entry : entries)
        if (entry.phrase.size() >= 2 &&
            entry.phrase.find("ca") != std::string::npos &&
            entry.emitCount >= 1)
            found_ca_phrase = true;
    EXPECT_TRUE(found_ca_phrase);
}

TEST(Lzw, EmissionCountsSumToCodeCount)
{
    const std::string text = "abcabcabcabcbcbcbcaaaabbbb";
    const auto entries = lzwDictionary(text);
    Count total = 0;
    for (const LzwEntry& entry : entries)
        total += entry.emitCount;
    EXPECT_EQ(total, lzwCompressedLength(text));
}

TEST(Lzw, EmittedPhrasesConcatenateToInput)
{
    // Decoding property: the emitted phrase sequence is a partition of
    // the input. We verify total emitted length == input length.
    const std::string text = "ddedddccddcedcdddcdddd";
    const auto entries = lzwDictionary(text);
    Count total_chars = 0;
    for (const LzwEntry& entry : entries)
        total_chars += entry.emitCount *
            static_cast<Count>(entry.phrase.size());
    EXPECT_EQ(total_chars, static_cast<Count>(text.size()));
}

TEST(Lzw, SortedByEmitCount)
{
    const std::string text = "ababababababcdcdcd";
    const auto entries = lzwDictionary(text);
    for (std::size_t i = 1; i < entries.size(); ++i)
        EXPECT_GE(entries[i - 1].emitCount, entries[i].emitCount);
}

TEST(Lzw, DictionaryCapRespected)
{
    std::string text;
    for (int i = 0; i < 1000; ++i)
        text += static_cast<char>('a' + (i * 7 + i / 13) % 7);
    // A tiny dictionary still encodes everything (counts accumulate).
    const auto entries = lzwDictionary(text, 16);
    Count total_chars = 0;
    for (const LzwEntry& entry : entries)
        total_chars += entry.emitCount *
            static_cast<Count>(entry.phrase.size());
    EXPECT_EQ(total_chars, static_cast<Count>(text.size()));
}

TEST(Lzw, StructuredBeatsRandomCompression)
{
    // The paper's insight: structured sparsity strings compress well.
    std::string structured;
    for (int i = 0; i < 500; ++i)
        structured += "ddc";
    std::string random;
    std::uint64_t state = 12345;
    for (int i = 0; i < 1500; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        random += static_cast<char>('a' + (state >> 60) % 7);
    }
    EXPECT_LT(lzwCompressedLength(structured),
              lzwCompressedLength(random) / 2);
}

} // namespace
} // namespace rsqp
