/**
 * @file
 * Backend subsystem tests: cross-backend solution equivalence, the
 * ADMM wrapper's bitwise fidelity to the raw solver, PDHG determinism
 * across thread counts, mid-solve backend-switch reproducibility,
 * settings validation, and per-backend telemetry labels/counters.
 */

#include <gtest/gtest.h>

#include "backends/backend_driver.hpp"
#include "backends/pdhg_solver.hpp"
#include "common/thread_pool.hpp"
#include "osqp/solver.hpp"
#include "osqp/validate.hpp"
#include "problems/suite.hpp"
#include "telemetry/metrics.hpp"

namespace rsqp
{
namespace
{

OsqpSettings
baseSettings()
{
    OsqpSettings settings;
    settings.maxIter = 20000;
    settings.adaptiveRho = false;
    return settings;
}

OsqpResult
solveWith(const QpProblem& problem, OsqpSettings settings,
          BackendKind kind)
{
    settings.firstOrder.method = kind;
    std::unique_ptr<QpBackend> backend =
        makeBackend(problem, std::move(settings));
    return backend->solve();
}

TEST(Backends, FactoryReturnsRequestedKind)
{
    const QpProblem qp = generateProblem(Domain::Control, 8, 3);
    for (BackendKind kind :
         {BackendKind::Admm, BackendKind::AdmmAccelerated,
          BackendKind::Pdhg, BackendKind::Auto}) {
        OsqpSettings settings = baseSettings();
        settings.firstOrder.method = kind;
        std::unique_ptr<QpBackend> backend =
            makeBackend(qp, std::move(settings));
        ASSERT_NE(backend, nullptr);
        EXPECT_EQ(backend->kind(), kind);
        EXPECT_EQ(backend->numVariables(), qp.numVariables());
        EXPECT_EQ(backend->numConstraints(), qp.numConstraints());
    }
}

TEST(Backends, AdmmWrapperMatchesRawSolverBitwise)
{
    const QpProblem qp = generateProblem(Domain::Portfolio, 60, 11);
    const OsqpSettings settings = baseSettings();

    OsqpSolver raw(qp, settings);
    const OsqpResult expect = raw.solve();
    const OsqpResult got = solveWith(qp, settings, BackendKind::Admm);

    ASSERT_EQ(got.info.status, expect.info.status);
    EXPECT_EQ(got.info.iterations, expect.info.iterations);
    EXPECT_EQ(got.info.objective, expect.info.objective);
    ASSERT_EQ(got.x.size(), expect.x.size());
    for (std::size_t i = 0; i < expect.x.size(); ++i)
        EXPECT_EQ(got.x[i], expect.x[i]);
    for (std::size_t i = 0; i < expect.y.size(); ++i)
        EXPECT_EQ(got.y[i], expect.y[i]);
}

TEST(Backends, AcceleratedAdmmOffByDefaultAndBitwiseIdentical)
{
    // accel.enabled defaults to false, and an explicitly-disabled
    // accelerated path must be arithmetically invisible: the hat
    // iterates alias the accepted iterates.
    const OsqpSettings settings;
    EXPECT_FALSE(settings.firstOrder.accel.enabled);
    EXPECT_EQ(settings.firstOrder.method, BackendKind::Admm);

    const QpProblem qp = generateProblem(Domain::Huber, 40, 5);
    OsqpSettings off = baseSettings();
    off.firstOrder.accel.enabled = false;
    OsqpSolver plain(qp, baseSettings());
    OsqpSolver disabled(qp, off);
    const OsqpResult a = plain.solve();
    const OsqpResult b = disabled.solve();
    ASSERT_EQ(a.info.status, b.info.status);
    EXPECT_EQ(a.info.iterations, b.info.iterations);
    for (std::size_t i = 0; i < a.x.size(); ++i)
        EXPECT_EQ(a.x[i], b.x[i]);
}

TEST(Backends, CrossBackendSolutionEquivalence)
{
    const struct
    {
        Domain domain;
        Index size;
        std::uint64_t seed;
    } cases[] = {
        {Domain::Control, 12, 3},
        {Domain::Portfolio, 80, 9},
        {Domain::Eqqp, 60, 1},
        {Domain::Lasso, 30, 2},
    };
    for (const auto& c : cases) {
        const QpProblem qp =
            generateProblem(c.domain, c.size, c.seed);
        OsqpSettings settings = baseSettings();
        settings.epsAbs = 1e-6;
        settings.epsRel = 1e-6;

        const OsqpResult admm =
            solveWith(qp, settings, BackendKind::Admm);
        const OsqpResult accel =
            solveWith(qp, settings, BackendKind::AdmmAccelerated);
        const OsqpResult pdhg =
            solveWith(qp, settings, BackendKind::Pdhg);

        ASSERT_EQ(admm.info.status, SolveStatus::Solved)
            << toString(c.domain);
        ASSERT_EQ(accel.info.status, SolveStatus::Solved)
            << toString(c.domain);
        ASSERT_EQ(pdhg.info.status, SolveStatus::Solved)
            << toString(c.domain);

        const Real scale = 1.0 + std::abs(admm.info.objective);
        EXPECT_LT(
            std::abs(accel.info.objective - admm.info.objective) /
                scale,
            1e-4)
            << toString(c.domain);
        EXPECT_LT(
            std::abs(pdhg.info.objective - admm.info.objective) /
                scale,
            1e-3)
            << toString(c.domain);
    }
}

TEST(Backends, PdhgDeterministicAcrossThreadCounts)
{
    const QpProblem qp = generateProblem(Domain::Control, 20, 17);
    OsqpSettings settings = baseSettings();

    OsqpResult reference;
    {
        NumThreadsScope scope(1);
        reference = solveWith(qp, settings, BackendKind::Pdhg);
    }
    ASSERT_EQ(reference.info.status, SolveStatus::Solved);

    for (Index threads : {2, 4, 8}) {
        NumThreadsScope scope(threads);
        const OsqpResult run =
            solveWith(qp, settings, BackendKind::Pdhg);
        ASSERT_EQ(run.info.status, reference.info.status)
            << threads << " threads";
        EXPECT_EQ(run.info.iterations, reference.info.iterations)
            << threads << " threads";
        EXPECT_EQ(run.info.telemetry.restarts,
                  reference.info.telemetry.restarts)
            << threads << " threads";
        ASSERT_EQ(run.x.size(), reference.x.size());
        for (std::size_t i = 0; i < reference.x.size(); ++i)
            ASSERT_EQ(run.x[i], reference.x[i])
                << threads << " threads, x[" << i << "]";
        for (std::size_t i = 0; i < reference.y.size(); ++i)
            ASSERT_EQ(run.y[i], reference.y[i])
                << threads << " threads, y[" << i << "]";
    }
}

TEST(Backends, PdhgRestartDeterminismEveryMode)
{
    const QpProblem qp = generateProblem(Domain::Svm, 30, 23);
    for (PdhgRestart mode :
         {PdhgRestart::None, PdhgRestart::FixedFrequency,
          PdhgRestart::Adaptive, PdhgRestart::Halpern}) {
        OsqpSettings settings = baseSettings();
        settings.firstOrder.pdhg.restart = mode;

        OsqpResult first, second;
        {
            NumThreadsScope scope(1);
            first = solveWith(qp, settings, BackendKind::Pdhg);
        }
        {
            NumThreadsScope scope(4);
            second = solveWith(qp, settings, BackendKind::Pdhg);
        }
        ASSERT_EQ(first.info.status, second.info.status)
            << pdhgRestartName(mode);
        EXPECT_EQ(first.info.iterations, second.info.iterations)
            << pdhgRestartName(mode);
        for (std::size_t i = 0; i < first.x.size(); ++i)
            ASSERT_EQ(first.x[i], second.x[i]) << pdhgRestartName(mode);
    }
}

TEST(Backends, MidSolveSwitchIsBitwiseReproducible)
{
    // Control at this size routes to PDHG; with restarts and the
    // adaptive step balance disabled and the primal weight pinned to
    // a bad value raw PDHG crawls (~9900 iterations standalone), so
    // the driver's stall check fires and hands the solve to ADMM.
    const QpProblem qp = generateProblem(Domain::Control, 10, 29);
    OsqpSettings settings = baseSettings();
    settings.firstOrder.method = BackendKind::Auto;
    settings.firstOrder.pdhg.restart = PdhgRestart::None;
    settings.firstOrder.pdhg.adaptiveStepBalance = false;
    settings.firstOrder.pdhg.primalWeight = 1e3;
    settings.firstOrder.selector.switchCheckIterations = 100;
    settings.firstOrder.selector.minProgressFactor = 0.5;

    const auto run_once = [&](Index threads) {
        NumThreadsScope scope(threads);
        OsqpSettings s = settings;
        BackendDriver driver(qp, std::move(s));
        EXPECT_EQ(driver.chosenKind(), BackendKind::Pdhg);
        return driver.solve();
    };

    const OsqpResult first = run_once(1);
    ASSERT_EQ(first.info.status, SolveStatus::Solved);
    ASSERT_GE(first.info.telemetry.backendSwitches, 1);
    EXPECT_EQ(first.info.telemetry.backend, "admm");

    for (Index threads : {1, 4}) {
        const OsqpResult again = run_once(threads);
        ASSERT_EQ(again.info.status, first.info.status);
        EXPECT_EQ(again.info.iterations, first.info.iterations);
        EXPECT_EQ(again.info.telemetry.backendSwitches,
                  first.info.telemetry.backendSwitches);
        ASSERT_EQ(again.x.size(), first.x.size());
        for (std::size_t i = 0; i < first.x.size(); ++i)
            ASSERT_EQ(again.x[i], first.x[i])
                << threads << " threads, x[" << i << "]";
        for (std::size_t i = 0; i < first.y.size(); ++i)
            ASSERT_EQ(again.y[i], first.y[i])
                << threads << " threads, y[" << i << "]";
    }
}

TEST(Backends, AutoMatchesSingleEngineWhenNoSwitchNeeded)
{
    // A well-behaved ADMM pick must sail through the sliced driver to
    // the same solution the standalone engine reaches.
    const QpProblem qp = generateProblem(Domain::Lasso, 40, 13);
    OsqpSettings settings = baseSettings();

    const OsqpResult admm = solveWith(qp, settings, BackendKind::Admm);
    const OsqpResult auto_run =
        solveWith(qp, settings, BackendKind::Auto);
    ASSERT_EQ(auto_run.info.status, SolveStatus::Solved);
    EXPECT_EQ(auto_run.info.telemetry.backendSwitches, 0);
    EXPECT_EQ(auto_run.info.objective, admm.info.objective);
}

TEST(Backends, TelemetryCarriesBackendLabelAndRestarts)
{
    const QpProblem qp = generateProblem(Domain::Control, 12, 7);
    OsqpSettings settings = baseSettings();

    const OsqpResult admm = solveWith(qp, settings, BackendKind::Admm);
    EXPECT_EQ(admm.info.telemetry.backend, "admm");
    EXPECT_EQ(admm.info.telemetry.restarts, 0);

    const OsqpResult accel =
        solveWith(qp, settings, BackendKind::AdmmAccelerated);
    EXPECT_EQ(accel.info.telemetry.backend, "admm-accel");

    const OsqpResult pdhg = solveWith(qp, settings, BackendKind::Pdhg);
    EXPECT_EQ(pdhg.info.telemetry.backend, "pdhg");
    EXPECT_GE(pdhg.info.telemetry.restarts, 1);
}

TEST(Backends, MetricsCountPerBackendSolves)
{
    using telemetry::MetricsRegistry;
    const QpProblem qp = generateProblem(Domain::Eqqp, 30, 3);
    OsqpSettings settings = baseSettings();

    const auto solves = [](const char* backend) {
        return MetricsRegistry::global().snapshot().counterValue(
            std::string("rsqp_backend_solves_total{backend=\"") +
            backend + "\"}");
    };
    const std::uint64_t admm_before = solves("admm");
    const std::uint64_t pdhg_before = solves("pdhg");

    (void)solveWith(qp, settings, BackendKind::Admm);
    (void)solveWith(qp, settings, BackendKind::Pdhg);

    EXPECT_EQ(solves("admm"), admm_before + 1);
    EXPECT_EQ(solves("pdhg"), pdhg_before + 1);
}

TEST(Backends, ParametricUpdatesMatchRebuild)
{
    // The update path keeps the setup-time Ruiz scaling while a
    // rebuild rescales from the new data, so the trajectories differ;
    // at a tight tolerance both must land on the same optimum.
    const QpProblem qp = generateProblem(Domain::Portfolio, 50, 19);
    OsqpSettings settings = baseSettings();
    settings.epsAbs = 1e-7;
    settings.epsRel = 1e-7;

    QpProblem shifted = qp;
    for (Real& v : shifted.q)
        v *= 1.25;

    settings.firstOrder.method = BackendKind::Pdhg;
    std::unique_ptr<QpBackend> updated = makeBackend(qp, settings);
    updated->updateLinearCost(shifted.q);
    const OsqpResult via_update = updated->solve();

    std::unique_ptr<QpBackend> fresh = makeBackend(shifted, settings);
    const OsqpResult via_rebuild = fresh->solve();

    ASSERT_EQ(via_update.info.status, SolveStatus::Solved);
    ASSERT_EQ(via_rebuild.info.status, SolveStatus::Solved);
    const Real scale = 1.0 + std::abs(via_rebuild.info.objective);
    EXPECT_LT(std::abs(via_update.info.objective -
                       via_rebuild.info.objective) /
                  scale,
              1e-5);
}

TEST(BackendValidation, AdaptiveRhoToleranceMustExceedOne)
{
    OsqpSettings settings;
    settings.adaptiveRhoTolerance = 1.0;
    const ValidationReport report = validateSettings(settings);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(ValidationCode::InvalidSetting));

    settings.adaptiveRhoTolerance = 5.0;
    EXPECT_TRUE(validateSettings(settings).ok());
}

TEST(BackendValidation, AccelRestartEtaRange)
{
    OsqpSettings settings;
    settings.firstOrder.accel.restartEta = 0.0;
    EXPECT_FALSE(validateSettings(settings).ok());
    settings.firstOrder.accel.restartEta = 1.5;
    EXPECT_FALSE(validateSettings(settings).ok());
    settings.firstOrder.accel.restartEta = 0.999;
    EXPECT_TRUE(validateSettings(settings).ok());
}

TEST(BackendValidation, PdhgKnobsGateTheSolveWithoutThrowing)
{
    const QpProblem qp = generateProblem(Domain::Control, 8, 3);
    OsqpSettings settings = baseSettings();
    settings.firstOrder.pdhg.restartBeta = 1.5;  // must be in (0, 1)

    PdhgSolver solver(qp, settings);
    EXPECT_FALSE(solver.validation().ok());
    const OsqpResult result = solver.solve();
    EXPECT_EQ(result.info.status, SolveStatus::InvalidProblem);
    EXPECT_FALSE(result.validation.ok());
}

TEST(BackendValidation, InvalidSolverSettingsStayNonThrowing)
{
    const QpProblem qp = generateProblem(Domain::Control, 8, 3);
    OsqpSettings settings = baseSettings();
    settings.adaptiveRhoTolerance = 0.5;

    OsqpSolver solver(qp, settings);
    EXPECT_FALSE(solver.validation().ok());
    const OsqpResult result = solver.solve();
    EXPECT_EQ(result.info.status, SolveStatus::InvalidProblem);
}

} // namespace
} // namespace rsqp
