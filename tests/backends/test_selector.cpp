/**
 * @file
 * BackendSelector tests: feature extraction on hand-built problems,
 * the policy branches against the fitted SelectorConfig defaults, and
 * the BackendDriver's routing on real suite instances.
 */

#include <gtest/gtest.h>

#include "backends/backend_driver.hpp"
#include "backends/backend_selector.hpp"
#include "problems/suite.hpp"

namespace rsqp
{
namespace
{

/** min x0^2 + x1^2 with a configurable constraint mix. */
QpProblem
tinyProblem(Index equalities, Index inequalities, Index loose)
{
    QpProblem qp;
    const Index n = 2;
    const Index m = equalities + inequalities + loose;

    TripletList p_triplets(n, n);
    p_triplets.add(0, 0, 2.0);
    p_triplets.add(1, 1, 2.0);
    qp.pUpper = CscMatrix::fromTriplets(p_triplets);
    qp.q.assign(static_cast<std::size_t>(n), 0.0);

    TripletList a_triplets(m, n);
    for (Index i = 0; i < m; ++i) {
        a_triplets.add(i, 0, 1.0);
        a_triplets.add(i, 1, 1.0);
    }
    qp.a = CscMatrix::fromTriplets(a_triplets);
    for (Index i = 0; i < m; ++i) {
        if (i < equalities) {
            qp.l.push_back(1.0);
            qp.u.push_back(1.0);
        } else if (i < equalities + inequalities) {
            qp.l.push_back(0.0);
            qp.u.push_back(10.0);
        } else {
            qp.l.push_back(-kInf);
            qp.u.push_back(kInf);
        }
    }
    return qp;
}

TEST(Selector, FeatureExtraction)
{
    const QpProblem qp = tinyProblem(2, 1, 1);
    const BackendFeatures f = computeBackendFeatures(qp);
    EXPECT_EQ(f.n, 2);
    EXPECT_EQ(f.m, 4);
    EXPECT_EQ(f.nnz, qp.totalNnz());
    EXPECT_TRUE(f.hasHessian);
    EXPECT_DOUBLE_EQ(f.equalityFraction, 0.5);
    EXPECT_DOUBLE_EQ(f.looseFraction, 0.25);
    EXPECT_DOUBLE_EQ(f.boxFraction, 0.0);
    EXPECT_DOUBLE_EQ(f.tallRatio, 2.0);
}

TEST(Selector, FeatureExtractionHandlesEmptyConstraints)
{
    QpProblem qp = tinyProblem(1, 0, 0);
    qp.a = CscMatrix(0, 2);
    qp.l.clear();
    qp.u.clear();
    const BackendFeatures f = computeBackendFeatures(qp);
    EXPECT_EQ(f.m, 0);
    EXPECT_DOUBLE_EQ(f.equalityFraction, 0.0);
    EXPECT_DOUBLE_EQ(f.tallRatio, 0.0);
}

TEST(Selector, SmallProblemsAlwaysAdmm)
{
    SelectorConfig config;
    BackendFeatures f;
    // A feature vector that would otherwise route to PDHG.
    f.n = 100;
    f.m = 200;
    f.tallRatio = 2.0;
    f.equalityFraction = 0.4;
    ASSERT_LT(f.n + f.m, config.smallProblemThreshold);
    EXPECT_EQ(chooseBackend(f, config), BackendKind::Admm);

    // Same shape scaled past the threshold flips the choice.
    f.n = 1000;
    f.m = 2000;
    EXPECT_EQ(chooseBackend(f, config), BackendKind::Pdhg);
}

TEST(Selector, EqualityDominatedStaysAdmm)
{
    SelectorConfig config;
    BackendFeatures f;
    f.n = 1000;
    f.m = 2000;
    f.tallRatio = 2.0;
    f.equalityFraction = config.equalityFractionAdmm;
    EXPECT_EQ(chooseBackend(f, config), BackendKind::Admm);
}

TEST(Selector, TallMixedGoesPdhgAllInequalityStaysAdmm)
{
    SelectorConfig config;
    BackendFeatures f;
    f.n = 1000;
    f.m = 2000;
    f.tallRatio = 2.0;

    // Mixed equality/inequality rows: PDHG territory.
    f.equalityFraction = 0.4;
    EXPECT_EQ(chooseBackend(f, config), BackendKind::Pdhg);

    // All-inequality tall (svm shape): one rho fits every row.
    f.equalityFraction = 0.0;
    EXPECT_EQ(chooseBackend(f, config), BackendKind::Admm);

    // Square problems stay ADMM regardless of mix.
    f.tallRatio = 1.0;
    f.equalityFraction = 0.4;
    EXPECT_EQ(chooseBackend(f, config), BackendKind::Admm);
}

TEST(Selector, PureFunctionSameChoiceOnRepeat)
{
    const QpProblem qp = generateProblem(Domain::Control, 30, 5);
    const SelectorConfig config;
    const BackendKind first = chooseBackend(qp, config);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(chooseBackend(qp, config), first);
}

TEST(Selector, DriverRoutesSuiteDomains)
{
    // The fitted policy on real generators: control (tall, mixed
    // constraint set) routes to PDHG at scale; svm (tall,
    // all-inequality) and eqqp (equality-dominated) keep ADMM.
    const struct
    {
        Domain domain;
        Index size;
        BackendKind expect;
    } cases[] = {
        {Domain::Control, 40, BackendKind::Pdhg},
        {Domain::Svm, 60, BackendKind::Admm},
        {Domain::Eqqp, 120, BackendKind::Admm},
        {Domain::Control, 4, BackendKind::Admm},  // small
    };
    for (const auto& c : cases) {
        const QpProblem qp = generateProblem(c.domain, c.size, 1);
        OsqpSettings settings;
        settings.firstOrder.method = BackendKind::Auto;
        BackendDriver driver(qp, std::move(settings));
        EXPECT_EQ(driver.chosenKind(), c.expect)
            << toString(c.domain) << " size " << c.size;
    }
}

TEST(Selector, DriverFeaturesMatchStandaloneExtraction)
{
    const QpProblem qp = generateProblem(Domain::Portfolio, 60, 2);
    OsqpSettings settings;
    settings.firstOrder.method = BackendKind::Auto;
    BackendDriver driver(qp, std::move(settings));
    const BackendFeatures expect = computeBackendFeatures(qp);
    EXPECT_EQ(driver.features().n, expect.n);
    EXPECT_EQ(driver.features().m, expect.m);
    EXPECT_DOUBLE_EQ(driver.features().equalityFraction,
                     expect.equalityFraction);
    EXPECT_DOUBLE_EQ(driver.features().tallRatio, expect.tallRatio);
}

} // namespace
} // namespace rsqp
