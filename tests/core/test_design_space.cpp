/**
 * @file
 * Design-space exploration tests (the Table 3 machinery): evaluated
 * points carry consistent metrics and reproduce the trade-off shape.
 */

#include <gtest/gtest.h>

#include "core/design_space.hpp"
#include "osqp/scaling.hpp"
#include "problems/suite.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

QpProblem
svmScaled()
{
    QpProblem qp = generateProblem(Domain::Svm, 40, 13);
    ruizEquilibrate(qp, 10);
    return qp;
}

TEST(DesignSpace, BaselinePointHasZeroDeltaEta)
{
    const QpProblem scaled = svmScaled();
    const DesignPoint base = evaluateDesignPoint(scaled, 16, {}, false);
    EXPECT_NEAR(base.deltaEta, 0.0, 1e-12);
    EXPECT_EQ(base.resources.dsp, 80);
    EXPECT_GT(base.spmvPerUs, 0.0);
}

TEST(DesignSpace, CustomizedPointImprovesEta)
{
    const QpProblem scaled = svmScaled();
    const DesignPoint base = evaluateDesignPoint(scaled, 16, {}, false);
    const DesignPoint custom = evaluateDesignPoint(
        scaled, 16, {std::string(16, 'a'), "bbbbbbbb"}, true);
    EXPECT_GT(custom.deltaEta, 0.05);
    EXPECT_GT(custom.spmvPerUs, base.spmvPerUs);
    EXPECT_GT(custom.resources.ff, base.resources.ff);
}

TEST(DesignSpace, ExploreProducesTable3Family)
{
    const QpProblem scaled = svmScaled();
    const auto points = exploreDesignSpace(scaled);
    // 3 widths x (1 baseline + 3 searched sizes).
    EXPECT_EQ(points.size(), 12u);
    for (const DesignPoint& point : points) {
        EXPECT_GT(point.fmaxMhz, 0.0);
        EXPECT_LE(point.fmaxMhz, 300.0);
        EXPECT_GT(point.kApplyPacks, 0);
        EXPECT_GE(point.deltaEta, -1e-9);
        EXPECT_GT(point.resources.dsp, 0);
    }
    // Baselines come first per width and have the fewest outputs.
    EXPECT_EQ(points[0].name, "16{1e}");
    EXPECT_EQ(points[4].name, "32{1f}");
    EXPECT_EQ(points[8].name, "64{1g}");
}

TEST(DesignSpace, ThroughputReflectsFmaxAndCycles)
{
    const QpProblem scaled = svmScaled();
    const DesignPoint point =
        evaluateDesignPoint(scaled, 32, {"dddd"}, true);
    // spmvPerUs = fmax / cycles-per-K-application.
    const Real cycles = static_cast<Real>(point.kApplyPacks) + 3.0 * 64.0;
    EXPECT_NEAR(point.spmvPerUs, point.fmaxMhz / cycles,
                1e-9 * point.spmvPerUs);
}

} // namespace
} // namespace rsqp
