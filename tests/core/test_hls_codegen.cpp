/**
 * @file
 * HLS code-generation tests: the emitted routing switch and top-level
 * function must mirror the paper's Figs. 4-5 structure.
 */

#include <gtest/gtest.h>

#include "core/hls_codegen.hpp"

namespace rsqp
{
namespace
{

TEST(HlsCodegen, BaselineNeedsNoSwitch)
{
    const StructureSet baseline = StructureSet::baseline(16);
    const std::string snippet = generateAlignmentSwitch(baseline);
    EXPECT_NE(snippet.find("align_out[0] << acc_pack.data[0];"),
              std::string::npos);
    EXPECT_EQ(snippet.find("switch"), std::string::npos);
}

TEST(HlsCodegen, SwitchCoversAllOutputCounts)
{
    // S = {bb, c} at C = 4: output counts {1, 2}.
    const StructureSet set(4, {"bb"});
    const std::string snippet = generateAlignmentSwitch(set);
    EXPECT_NE(snippet.find("switch (acc_cnt) {"), std::string::npos);
    EXPECT_NE(snippet.find("case 1:"), std::string::npos);
    EXPECT_NE(snippet.find("case 2:"), std::string::npos);
    EXPECT_NE(snippet.find("align_ptr += acc_cnt;"), std::string::npos);
}

TEST(HlsCodegen, RotationModuloPackWidth)
{
    const StructureSet set(4, {"aaaa"});
    const std::string snippet = generateAlignmentSwitch(set);
    // With pack width 4, pointer case 3 writing 4 outputs wraps:
    // align_out[(j + 3) % 4] covers index 0 again.
    EXPECT_NE(snippet.find("align_out[3] << acc_pack.data[0];"),
              std::string::npos);
    EXPECT_NE(snippet.find("align_out[0] << acc_pack.data[1];"),
              std::string::npos);
}

TEST(HlsCodegen, TopLevelFunctionShape)
{
    const StructureSet set(8, {"bbbb"});
    const std::string function = generateSpmvAlignFunction(set);
    EXPECT_NE(function.find("void spmv_align("), std::string::npos);
    EXPECT_NE(function.find("#pragma HLS pipeline II = 1"),
              std::string::npos);
    EXPECT_NE(function.find("CNT_AS_FADD_FLAG"), std::string::npos);
    EXPECT_NE(function.find("#include \"align_acc_cnt_switch.h\""),
              std::string::npos);
}

TEST(HlsCodegen, ArchitectureHeaderSelfDescribing)
{
    ArchConfig config;
    config.c = 32;
    config.structures = StructureSet::parse("32{4d1f}");
    config.compressedCvb = true;
    const std::string header = generateArchitectureHeader(config);
    EXPECT_NE(header.find("#define ISCA_C 32"), std::string::npos);
    EXPECT_NE(header.find("#define CVB_COMPRESSED 1"),
              std::string::npos);
    EXPECT_NE(header.find("S[0] = \"dddd\""), std::string::npos);
    EXPECT_NE(header.find("32{4d1f}"), std::string::npos);
}

TEST(HlsCodegen, DeterministicOutput)
{
    const StructureSet set(16, {"cccc", "bbbbbbbb"});
    EXPECT_EQ(generateAlignmentSwitch(set),
              generateAlignmentSwitch(set));
}

} // namespace
} // namespace rsqp
