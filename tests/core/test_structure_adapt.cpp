/**
 * @file
 * Structure-adaptation tests (paper Sec. 4.4): permuted problems are
 * equivalent QPs, row clustering by nnz groups the sparsity string,
 * and the adaptation search never returns worse than identity.
 */

#include <numeric>

#include <gtest/gtest.h>

#include "core/structure_adapt.hpp"
#include "osqp/scaling.hpp"
#include "osqp/solver.hpp"
#include "problems/suite.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

TEST(StructureAdapt, PermutedProblemHasSameOptimum)
{
    const QpProblem qp = generateProblem(Domain::Portfolio, 30, 3);
    Rng rng(9);
    const IndexVector var_perm = rng.permutation(qp.numVariables());
    const IndexVector con_perm = rng.permutation(qp.numConstraints());
    const QpProblem permuted = permuteProblem(qp, var_perm, con_perm);
    permuted.validate();

    OsqpSettings settings;
    settings.epsAbs = 1e-6;
    settings.epsRel = 1e-6;
    const OsqpResult r1 = OsqpSolver(qp, settings).solve();
    const OsqpResult r2 = OsqpSolver(permuted, settings).solve();
    ASSERT_EQ(r1.info.status, SolveStatus::Solved);
    ASSERT_EQ(r2.info.status, SolveStatus::Solved);
    EXPECT_NEAR(r1.info.objective, r2.info.objective,
                1e-4 * (1.0 + std::abs(r1.info.objective)));

    // The permuted solution maps back through the permutation.
    for (Index j = 0; j < qp.numVariables(); ++j)
        EXPECT_NEAR(r2.x[static_cast<std::size_t>(j)],
                    r1.x[static_cast<std::size_t>(
                        var_perm[static_cast<std::size_t>(j)])],
                    2e-3);
}

TEST(StructureAdapt, IdentityPermutationIsNoOp)
{
    const QpProblem qp = generateProblem(Domain::Svm, 15, 5);
    IndexVector id_var(static_cast<std::size_t>(qp.numVariables()));
    std::iota(id_var.begin(), id_var.end(), Index{0});
    IndexVector id_con(static_cast<std::size_t>(qp.numConstraints()));
    std::iota(id_con.begin(), id_con.end(), Index{0});
    const QpProblem same = permuteProblem(qp, id_var, id_con);
    EXPECT_TRUE(same.pUpper == qp.pUpper);
    EXPECT_TRUE(same.a == qp.a);
    EXPECT_EQ(same.q, qp.q);
    EXPECT_EQ(same.l, qp.l);
}

TEST(StructureAdapt, SearchNeverWorseThanIdentity)
{
    QpProblem qp = generateProblem(Domain::Lasso, 20, 7);
    ruizEquilibrate(qp, 10);
    CustomizeSettings settings;
    settings.c = 16;
    const AdaptationResult result =
        adaptProblemStructure(qp, settings, 3, 42);
    EXPECT_GE(result.best.eta, result.identity.eta);
    EXPECT_GE(result.candidatesTried, 4);  // identity + nnz-sort + 2
}

TEST(StructureAdapt, GainIsSmall)
{
    // The paper's negative result: symmetric permutation buys little.
    QpProblem qp = generateProblem(Domain::Huber, 15, 9);
    ruizEquilibrate(qp, 10);
    CustomizeSettings settings;
    settings.c = 32;
    const AdaptationResult result =
        adaptProblemStructure(qp, settings, 3, 7);
    EXPECT_LT(result.gain(), 0.30);  // far from the 1.4-7x of E_p/E_c
}

} // namespace
} // namespace rsqp
