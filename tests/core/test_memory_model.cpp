/**
 * @file
 * On-chip memory model tests: compression shrinks the CVB footprint
 * on structured problems, the accounting is internally consistent,
 * and the U50 budget check behaves.
 */

#include <gtest/gtest.h>

#include "core/memory_model.hpp"
#include "osqp/scaling.hpp"
#include "problems/suite.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

ProblemCustomization
customFor(Domain domain, Index size, bool compress)
{
    QpProblem qp = generateProblem(domain, size, 5);
    ruizEquilibrate(qp, 10);
    CustomizeSettings cfg;
    cfg.c = 64;
    cfg.customizeStructures = compress;
    cfg.compressCvb = compress;
    return customizeProblem(qp, cfg);
}

TEST(MemoryModel, AccountingConsistent)
{
    const ProblemCustomization custom =
        customFor(Domain::Svm, 30, true);
    const OnChipMemoryEstimate estimate =
        estimateOnChipMemory(custom);
    EXPECT_EQ(estimate.totalBytes,
              estimate.cvbBytes + estimate.vbBytes +
                  estimate.tableBytes);
    EXPECT_GT(estimate.cvbBytes, 0);
    EXPECT_GT(estimate.vbBytes, 0);
    EXPECT_GT(estimate.totalMb(), 0.0);
}

TEST(MemoryModel, FullDuplicationHasNoTables)
{
    const ProblemCustomization baseline =
        customFor(Domain::Svm, 30, false);
    const OnChipMemoryEstimate estimate =
        estimateOnChipMemory(baseline);
    EXPECT_EQ(estimate.tableBytes, 0);
    // Dup stores exactly C copies of each multiplicand vector.
    Count expected = 0;
    for (const MatrixArtifacts* m :
         {&baseline.p, &baseline.a, &baseline.at, &baseline.atSq})
        expected += 64LL * m->csr.cols() * 4;
    EXPECT_EQ(estimate.cvbBytes, expected);
}

TEST(MemoryModel, CompressionShrinksCvbOnStructuredProblems)
{
    const OnChipMemoryEstimate dup =
        estimateOnChipMemory(customFor(Domain::Control, 12, false));
    const OnChipMemoryEstimate compressed =
        estimateOnChipMemory(customFor(Domain::Control, 12, true));
    EXPECT_LT(compressed.cvbBytes, dup.cvbBytes);
}

TEST(MemoryModel, SmallProblemsFitU50)
{
    const OnChipMemoryEstimate estimate =
        estimateOnChipMemory(customFor(Domain::Portfolio, 40, true));
    EXPECT_TRUE(fitsU50Memory(estimate));
    EXPECT_LT(estimate.totalMb(), 28.4);
}

TEST(MemoryModel, BudgetCheckRejectsHugeFootprints)
{
    OnChipMemoryEstimate estimate;
    estimate.totalBytes = 64LL * 1024 * 1024;  // 64 MB
    EXPECT_FALSE(fitsU50Memory(estimate));
}

} // namespace
} // namespace rsqp
