/**
 * @file
 * solveBatch tests: batch results must match standalone per-problem
 * solves bit for bit at any batch width, exceptions must propagate,
 * and a threaded simulated machine (ArchConfig::numThreads) must
 * reproduce the serial machine exactly.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "core/rsqp_solver.hpp"
#include "problems/suite.hpp"

namespace rsqp
{
namespace
{

OsqpSettings
settingsFor()
{
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    return settings;
}

std::vector<QpProblem>
smallSuite()
{
    std::vector<QpProblem> problems;
    problems.push_back(generateProblem(Domain::Portfolio, 30, 21));
    problems.push_back(generateProblem(Domain::Lasso, 20, 22));
    problems.push_back(generateProblem(Domain::Svm, 20, 23));
    problems.push_back(generateProblem(Domain::Control, 6, 24));
    problems.push_back(generateProblem(Domain::Eqqp, 30, 25));
    problems.push_back(generateProblem(Domain::Huber, 20, 26));
    return problems;
}

TEST(SolveBatch, MatchesStandaloneSolvesBitwise)
{
    const std::vector<QpProblem> problems = smallSuite();
    CustomizeSettings custom;
    custom.c = 16;

    std::vector<RsqpResult> serial;
    for (const QpProblem& qp : problems) {
        RsqpSolver solver(qp, settingsFor(), custom);
        serial.push_back(solver.solve());
    }

    for (Index width : {1, 4, 8}) {
        const std::vector<RsqpResult> batch =
            solveBatch(problems, settingsFor(), custom, width);
        ASSERT_EQ(batch.size(), problems.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            EXPECT_EQ(batch[i].status, serial[i].status);
            EXPECT_EQ(batch[i].iterations, serial[i].iterations);
            EXPECT_EQ(batch[i].machineStats.totalCycles,
                      serial[i].machineStats.totalCycles);
            // Bitwise, not approximate: per-instance work is pinned
            // to one thread and the kernels are deterministic.
            ASSERT_EQ(batch[i].x, serial[i].x)
                << "width " << width << " problem " << i;
            ASSERT_EQ(batch[i].y, serial[i].y);
        }
    }
}

TEST(SolveBatch, EmptyBatch)
{
    CustomizeSettings custom;
    EXPECT_TRUE(solveBatch({}, settingsFor(), custom, 4).empty());
}

TEST(SolveBatch, InvalidInstanceIsolatedFromBatch)
{
    std::vector<QpProblem> problems = smallSuite();
    // Invalid bounds (l > u): the affected instance must report a
    // typed failure with diagnostics while the rest of the batch
    // solves normally — one bad QP no longer poisons the fleet.
    problems[2].l[0] = 2.0;
    problems[2].u[0] = -2.0;
    CustomizeSettings custom;
    custom.c = 16;
    const std::vector<RsqpResult> results =
        solveBatch(problems, settingsFor(), custom, 4);
    ASSERT_EQ(results.size(), problems.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i == 2) {
            EXPECT_EQ(results[i].status, SolveStatus::InvalidProblem);
            EXPECT_TRUE(results[i].validation.has(
                ValidationCode::InfeasibleBounds));
        } else {
            EXPECT_EQ(results[i].status, SolveStatus::Solved) << i;
        }
    }
}

TEST(ThreadedMachine, SolveDeterministicAcrossNumThreads)
{
    const QpProblem qp = generateProblem(Domain::Portfolio, 40, 27);

    auto run = [&](Index threads) {
        CustomizeSettings custom;
        custom.c = 32;
        custom.execution.numThreads = threads;
        RsqpSolver solver(qp, settingsFor(), custom);
        return solver.solve();
    };

    const RsqpResult serial = run(1);
    ASSERT_EQ(serial.status, SolveStatus::Solved);
    for (Index threads : {2, 8}) {
        const RsqpResult threaded = run(threads);
        EXPECT_EQ(threaded.iterations, serial.iterations);
        EXPECT_EQ(threaded.machineStats.totalCycles,
                  serial.machineStats.totalCycles);
        ASSERT_EQ(threaded.x, serial.x) << "threads " << threads;
        ASSERT_EQ(threaded.y, serial.y);
        ASSERT_EQ(threaded.z, serial.z);
    }
}

} // namespace
} // namespace rsqp
