/**
 * @file
 * Customization-pipeline tests: artifacts are mutually consistent,
 * eta improves under customization (the Fig. 9 effect), and the
 * atSq matrix mirrors At.
 */

#include <gtest/gtest.h>

#include "core/customization.hpp"
#include "encoding/match_score.hpp"
#include "osqp/scaling.hpp"
#include "problems/suite.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

QpProblem
scaledProblem(Domain domain, Index size, std::uint64_t seed)
{
    QpProblem qp = generateProblem(domain, size, seed);
    ruizEquilibrate(qp, 10);
    return qp;
}

TEST(Customization, ArtifactsConsistent)
{
    const QpProblem scaled = scaledProblem(Domain::Svm, 20, 3);
    CustomizeSettings settings;
    settings.c = 16;
    const ProblemCustomization custom =
        customizeProblem(scaled, settings);

    // Shapes.
    EXPECT_EQ(custom.p.csr.rows(), scaled.numVariables());
    EXPECT_EQ(custom.a.csr.rows(), scaled.numConstraints());
    EXPECT_EQ(custom.at.csr.rows(), scaled.numVariables());
    EXPECT_EQ(custom.at.csr.cols(), scaled.numConstraints());

    // Schedules and packs agree.
    for (const MatrixArtifacts* m :
         {&custom.p, &custom.a, &custom.at, &custom.atSq}) {
        EXPECT_EQ(m->packed.packCount(), m->schedule.slotCount());
        EXPECT_EQ(m->packed.ep, m->schedule.ep);
        EXPECT_TRUE(m->plan.isConsistentWith(
            buildAccessRequirements(m->packed)));
    }
}

TEST(Customization, AtSqMirrorsAtStructure)
{
    const QpProblem scaled = scaledProblem(Domain::Lasso, 15, 5);
    CustomizeSettings settings;
    settings.c = 16;
    const ProblemCustomization custom =
        customizeProblem(scaled, settings);
    EXPECT_EQ(custom.atSq.schedule.slotCount(),
              custom.at.schedule.slotCount());
    EXPECT_EQ(custom.atSq.csr.nnz(), custom.at.csr.nnz());
    // Values are element-wise squares.
    for (std::size_t i = 0; i < custom.at.csr.values().size(); ++i)
        EXPECT_NEAR(custom.atSq.csr.values()[i],
                    custom.at.csr.values()[i] *
                        custom.at.csr.values()[i],
                    1e-14);
}

TEST(Customization, EtaImprovesOverBaseline)
{
    // The Fig. 9 effect: customization raises eta on structured
    // domains.
    for (Domain domain :
         {Domain::Control, Domain::Lasso, Domain::Svm}) {
        const QpProblem scaled = scaledProblem(
            domain, domain == Domain::Control ? 8 : 25, 11);
        const ProblemCustomization baseline =
            baselineCustomization(scaled, 64);
        CustomizeSettings settings;
        settings.c = 64;
        const ProblemCustomization custom =
            customizeProblem(scaled, settings);
        EXPECT_GT(custom.eta(), baseline.eta()) << toString(domain);
        EXPECT_LE(custom.totalEp(), baseline.totalEp())
            << toString(domain);
    }
}

TEST(Customization, EtaWithinUnitInterval)
{
    const QpProblem scaled = scaledProblem(Domain::Huber, 12, 7);
    for (Index c : {16, 64}) {
        CustomizeSettings settings;
        settings.c = c;
        const ProblemCustomization custom =
            customizeProblem(scaled, settings);
        EXPECT_GT(custom.eta(), 0.0);
        EXPECT_LE(custom.eta(), 1.0);
        EXPECT_GT(custom.p.eta(), 0.0);
        EXPECT_LE(custom.p.eta(), 1.0);
    }
}

TEST(Customization, ForcedPatternsBypassSearch)
{
    const QpProblem scaled = scaledProblem(Domain::Portfolio, 30, 9);
    CustomizeSettings settings;
    settings.c = 16;
    settings.forcedPatterns = {"bbbbbbbb"};
    const ProblemCustomization custom =
        customizeProblem(scaled, settings);
    ASSERT_EQ(custom.config.structures.patterns().size(), 2u);
    EXPECT_EQ(custom.config.structures.patterns()[0], "bbbbbbbb");
}

TEST(Customization, BaselineUsesFullDuplication)
{
    const QpProblem scaled = scaledProblem(Domain::Svm, 12, 13);
    const ProblemCustomization baseline =
        baselineCustomization(scaled, 16);
    EXPECT_TRUE(baseline.p.plan.fullDuplication);
    EXPECT_DOUBLE_EQ(baseline.p.plan.ec(), 16.0);
    EXPECT_EQ(baseline.config.structures.totalOutputs(), 1);
    EXPECT_FALSE(baseline.config.compressedCvb);
}

TEST(MatchScore, PaperFormula)
{
    // eta = (nnz + L) / (nnz + Ep + Ec L).
    EXPECT_DOUBLE_EQ(matchScore(100, 10, 0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(matchScore(100, 10, 110, 1.0),
                     110.0 / 220.0);
    EXPECT_NEAR(matchScore(100, 10, 0, 4.0), 110.0 / 140.0, 1e-12);
}

} // namespace
} // namespace rsqp
