/**
 * @file
 * Customization-report tests: the rendered report carries the key
 * figures and flags memory violations.
 */

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "osqp/scaling.hpp"
#include "problems/suite.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

TEST(Report, ContainsKeySections)
{
    QpProblem qp = generateProblem(Domain::Svm, 25, 3);
    ruizEquilibrate(qp, 10);
    CustomizeSettings settings;
    settings.c = 32;
    const ProblemCustomization custom = customizeProblem(qp, settings);
    const std::string report = customizationReport(custom);
    EXPECT_NE(report.find("architecture 32{"), std::string::npos);
    EXPECT_NE(report.find("structure set S:"), std::string::npos);
    EXPECT_NE(report.find("E_p"), std::string::npos);
    EXPECT_NE(report.find("fmax"), std::string::npos);
    EXPECT_NE(report.find("on-chip memory"), std::string::npos);
    // One row per matrix.
    EXPECT_NE(report.find("AtSq"), std::string::npos);
}

TEST(Report, SummaryIsOneLine)
{
    QpProblem qp = generateProblem(Domain::Portfolio, 30, 5);
    ruizEquilibrate(qp, 10);
    CustomizeSettings settings;
    settings.c = 16;
    const ProblemCustomization custom = customizeProblem(qp, settings);
    const std::string summary = customizationSummary(custom);
    EXPECT_EQ(summary.find('\n'), std::string::npos);
    EXPECT_NE(summary.find("eta="), std::string::npos);
    EXPECT_NE(summary.find("MHz"), std::string::npos);
}

TEST(Report, Deterministic)
{
    QpProblem qp = generateProblem(Domain::Lasso, 15, 7);
    ruizEquilibrate(qp, 10);
    CustomizeSettings settings;
    settings.c = 16;
    const ProblemCustomization a = customizeProblem(qp, settings);
    const ProblemCustomization b = customizeProblem(qp, settings);
    EXPECT_EQ(customizationReport(a), customizationReport(b));
}

} // namespace
} // namespace rsqp
