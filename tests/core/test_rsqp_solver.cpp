/**
 * @file
 * End-to-end RsqpSolver tests: solution quality, customization
 * speedup in cycles (the Fig. 10 effect), parametric reuse and warm
 * starting on the generated architecture.
 */

#include <gtest/gtest.h>

#include "core/rsqp_solver.hpp"
#include "linalg/vector_ops.hpp"
#include "osqp/solver.hpp"
#include "problems/suite.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

OsqpSettings
settingsFor()
{
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    return settings;
}

TEST(RsqpSolver, SolvesAndReportsMetadata)
{
    const QpProblem qp = generateProblem(Domain::Portfolio, 50, 21);
    CustomizeSettings custom;
    custom.c = 32;
    RsqpSolver solver(qp, settingsFor(), custom);
    const RsqpResult result = solver.solve();
    ASSERT_EQ(result.status, SolveStatus::Solved);
    EXPECT_GT(result.iterations, 0);
    EXPECT_GT(result.machineStats.totalCycles, 0);
    EXPECT_GT(result.fmaxMhz, 50.0);
    EXPECT_GT(result.deviceSeconds, 0.0);
    EXPECT_GT(result.eta, 0.0);
    EXPECT_LE(result.eta, 1.0);
    EXPECT_NE(result.archName.find("32{"), std::string::npos);
}

TEST(RsqpSolver, SolutionIsKktOptimal)
{
    const QpProblem qp = generateProblem(Domain::Svm, 25, 23);
    CustomizeSettings custom;
    custom.c = 16;
    RsqpSolver solver(qp, settingsFor(), custom);
    const RsqpResult result = solver.solve();
    ASSERT_EQ(result.status, SolveStatus::Solved);

    // Unscaled residuals must satisfy the default tolerances.
    Vector ax;
    qp.a.spmv(result.x, ax);
    EXPECT_LT(normInfDiff(ax, result.z), 1e-2);
    Vector px;
    qp.pUpper.spmvSymUpper(result.x, px);
    Vector aty;
    qp.a.spmvTranspose(result.y, aty);
    Real dual = 0.0;
    for (std::size_t j = 0; j < px.size(); ++j)
        dual = std::max(dual,
                        std::abs(px[j] + qp.q[j] + aty[j]));
    EXPECT_LT(dual, 1e-2);
}

TEST(RsqpSolver, CustomizationSpeedsUpCycles)
{
    // The Fig. 10 effect on one problem: same solve, fewer cycles.
    const QpProblem qp = generateProblem(Domain::Lasso, 40, 25);
    const OsqpSettings settings = settingsFor();

    CustomizeSettings base_settings;
    base_settings.c = 64;
    base_settings.customizeStructures = false;
    base_settings.compressCvb = false;
    RsqpSolver baseline(qp, settings, base_settings);
    const RsqpResult rb = baseline.solve();

    CustomizeSettings custom_settings;
    custom_settings.c = 64;
    RsqpSolver customized(qp, settings, custom_settings);
    const RsqpResult rc = customized.solve();

    ASSERT_EQ(rb.status, SolveStatus::Solved);
    ASSERT_EQ(rc.status, SolveStatus::Solved);
    EXPECT_GT(rc.eta, rb.eta);
    // Customized architecture takes measurably fewer cycles.
    EXPECT_LT(static_cast<Real>(rc.machineStats.totalCycles),
              0.9 * static_cast<Real>(rb.machineStats.totalCycles));
}

TEST(RsqpSolver, ParametricCostUpdateReusesArchitecture)
{
    const QpProblem qp = generateProblem(Domain::Portfolio, 40, 27);
    CustomizeSettings custom;
    custom.c = 16;
    RsqpSolver solver(qp, settingsFor(), custom);
    const RsqpResult first = solver.solve();
    ASSERT_EQ(first.status, SolveStatus::Solved);

    Vector q2 = qp.q;
    for (Real& v : q2)
        v *= 0.8;
    solver.updateLinearCost(q2);
    solver.warmStart(first.x, first.y);
    const RsqpResult second = solver.solve();
    ASSERT_EQ(second.status, SolveStatus::Solved);

    // Reference solution for the updated problem.
    QpProblem qp2 = qp;
    qp2.q = q2;
    OsqpSolver reference(qp2, settingsFor());
    const OsqpResult ref = reference.solve();
    EXPECT_NEAR(second.objective, ref.info.objective,
                1e-2 * (1.0 + std::abs(ref.info.objective)));
    // Warm start converges in fewer iterations than cold start.
    EXPECT_LE(second.iterations, first.iterations);
}

TEST(RsqpSolver, BoundsUpdateMatchesReference)
{
    const QpProblem qp = generateProblem(Domain::Svm, 15, 29);
    CustomizeSettings custom;
    custom.c = 16;
    RsqpSolver solver(qp, settingsFor(), custom);
    solver.solve();

    Vector l2 = qp.l;
    Vector u2 = qp.u;
    for (std::size_t i = 0; i < l2.size(); ++i)
        if (u2[i] < kInf)
            u2[i] += 0.5;
    solver.updateBounds(l2, u2);
    const RsqpResult updated = solver.solve();
    ASSERT_EQ(updated.status, SolveStatus::Solved);

    QpProblem qp2 = qp;
    qp2.l = l2;
    qp2.u = u2;
    OsqpSolver reference(qp2, settingsFor());
    const OsqpResult ref = reference.solve();
    EXPECT_NEAR(updated.objective, ref.info.objective,
                1e-2 * (1.0 + std::abs(ref.info.objective)));
}

TEST(RsqpSolver, WiderDatapathFewerCycles)
{
    const QpProblem qp = generateProblem(Domain::Huber, 30, 31);
    const OsqpSettings settings = settingsFor();
    Count cycles_16 = 0, cycles_64 = 0;
    {
        CustomizeSettings custom;
        custom.c = 16;
        RsqpSolver solver(qp, settings, custom);
        cycles_16 = solver.solve().machineStats.totalCycles;
    }
    {
        CustomizeSettings custom;
        custom.c = 64;
        RsqpSolver solver(qp, settings, custom);
        cycles_64 = solver.solve().machineStats.totalCycles;
    }
    EXPECT_LT(cycles_64, cycles_16);
}


TEST(RsqpSolver, Fp32DatapathSolvesAtDefaultTolerance)
{
    // The physical MAC trees compute in FP32; with the default 1e-3
    // tolerances (and a PCG floor above single-precision noise) the
    // accelerator still converges and agrees with FP64 to ~1e-3.
    const QpProblem qp = generateProblem(Domain::Portfolio, 40, 33);
    OsqpSettings settings = settingsFor();
    settings.pcg.epsRel = 1e-6;

    CustomizeSettings cfg64;
    cfg64.c = 32;
    RsqpSolver fp64(qp, settings, cfg64);
    const RsqpResult r64 = fp64.solve();

    CustomizeSettings cfg32;
    cfg32.c = 32;
    cfg32.fp32Datapath = true;
    RsqpSolver fp32(qp, settings, cfg32);
    const RsqpResult r32 = fp32.solve();

    ASSERT_EQ(r64.status, SolveStatus::Solved);
    ASSERT_EQ(r32.status, SolveStatus::Solved);
    EXPECT_NEAR(r32.objective, r64.objective,
                1e-2 * (1.0 + std::abs(r64.objective)));
    EXPECT_LT(test::maxAbsDiff(r32.x, r64.x), 1e-2);
}

// --- Soft-error fault injection into the simulated accelerator ------

CustomizeSettings
injectionCustom(std::uint64_t seed, Real rate)
{
    CustomizeSettings custom;
    custom.c = 16;
    custom.faultInjection.enabled = true;
    custom.faultInjection.seed = seed;
    custom.faultInjection.ratePerWord = rate;
    return custom;
}

/**
 * The headline fault-tolerance guarantee: with soft errors injected
 * into the HBM streams and MAC outputs at 1e-4 per word (at least one
 * flip per 10k words), every solve must terminate with a typed status
 * and finite iterates — Solved results must additionally pass host-
 * side residual re-verification (done inside RsqpSolver::solve).
 */
TEST(RsqpSolverFaults, InjectedRunsTerminateTypedAndFinite)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const QpProblem qp = generateProblem(
            Domain::Portfolio, 40, 100 + static_cast<Index>(seed));
        RsqpSolver solver(qp, settingsFor(),
                          injectionCustom(seed, 1e-4));
        const RsqpResult result = solver.solve();
        EXPECT_NE(result.status, SolveStatus::Unsolved) << seed;
        EXPECT_FALSE(hasNonFinite(result.x)) << seed;
        EXPECT_FALSE(hasNonFinite(result.y)) << seed;
        EXPECT_FALSE(hasNonFinite(result.z)) << seed;
        EXPECT_GT(result.faultsInjected, 0) << seed;
    }
}

TEST(RsqpSolverFaults, InjectionIsDeterministicAcrossNumThreads)
{
    const QpProblem qp = generateProblem(Domain::Svm, 30, 55);
    auto run = [&](Index threads) {
        CustomizeSettings custom = injectionCustom(11, 5e-4);
        custom.execution.numThreads = threads;
        RsqpSolver solver(qp, settingsFor(), custom);
        return solver.solve();
    };
    const RsqpResult serial = run(1);
    for (Index threads : {2, 8}) {
        const RsqpResult threaded = run(threads);
        EXPECT_EQ(threaded.status, serial.status) << threads;
        EXPECT_EQ(threaded.faultsInjected, serial.faultsInjected)
            << threads;
        ASSERT_EQ(threaded.x, serial.x) << threads;
        ASSERT_EQ(threaded.y, serial.y) << threads;
    }
}

TEST(RsqpSolver, WarmStartSizeMismatchIsNonFatal)
{
    const QpProblem qp = generateProblem(Domain::Control, 25, 31);
    CustomizeSettings custom;
    custom.c = 16;
    RsqpSolver solver(qp, settingsFor(), custom);

    Vector wrongX(static_cast<std::size_t>(qp.numVariables() + 1), 0.0);
    Vector y(static_cast<std::size_t>(qp.numConstraints()), 0.0);
    EXPECT_FALSE(solver.warmStart(wrongX, y));
    Vector x(static_cast<std::size_t>(qp.numVariables()), 0.0);
    EXPECT_TRUE(solver.warmStart(x, y));

    const RsqpResult result = solver.solve();
    EXPECT_EQ(result.status, SolveStatus::Solved);
}

TEST(RsqpSolverFaults, DisabledInjectionMatchesBaselineBitwise)
{
    const QpProblem qp = generateProblem(Domain::Portfolio, 35, 61);
    CustomizeSettings plain;
    plain.c = 16;
    RsqpSolver base(qp, settingsFor(), plain);
    const RsqpResult a = base.solve();

    CustomizeSettings off;
    off.c = 16;
    off.faultInjection.enabled = false;
    off.faultInjection.seed = 99;  // ignored while disabled
    RsqpSolver guarded(qp, settingsFor(), off);
    const RsqpResult b = guarded.solve();

    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(b.faultsInjected, 0);
    ASSERT_EQ(a.x, b.x);
    ASSERT_EQ(a.y, b.y);
}

} // namespace
} // namespace rsqp
