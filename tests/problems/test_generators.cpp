/**
 * @file
 * Benchmark-generator tests: every domain produces valid, solvable,
 * correctly-shaped problems; generation is deterministic; the suite
 * spans the paper's size range.
 */

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "osqp/solver.hpp"
#include "problems/generators.hpp"
#include "problems/suite.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

TEST(Generators, Deterministic)
{
    for (Domain domain : allDomains()) {
        const Index size = domain == Domain::Control ? 6 : 25;
        const QpProblem a = generateProblem(domain, size, 9);
        const QpProblem b = generateProblem(domain, size, 9);
        EXPECT_TRUE(a.pUpper == b.pUpper) << toString(domain);
        EXPECT_TRUE(a.a == b.a) << toString(domain);
        EXPECT_EQ(a.q, b.q) << toString(domain);
        const QpProblem c = generateProblem(domain, size, 10);
        EXPECT_FALSE(c.a == a.a) << toString(domain);
    }
}

TEST(Generators, ControlShapes)
{
    Rng rng(1);
    const QpProblem qp = generateControl(6, rng);
    // T = 10, nx = 6, nu = 3: n = 10*(6+3), m = 10*6*2 + 10*3.
    EXPECT_EQ(qp.numVariables(), 90);
    EXPECT_EQ(qp.numConstraints(), 150);
    // Dynamics rows are equalities.
    for (Index i = 0; i < 60; ++i)
        EXPECT_DOUBLE_EQ(qp.l[static_cast<std::size_t>(i)],
                         qp.u[static_cast<std::size_t>(i)]);
}

TEST(Generators, LassoShapes)
{
    Rng rng(2);
    const QpProblem qp = generateLasso(10, rng);
    EXPECT_EQ(qp.numVariables(), 2 * 10 + 50);  // x, t, y
    EXPECT_EQ(qp.numConstraints(), 50 + 20);
    // t-block costs are the positive lasso weight.
    bool has_positive_q = false;
    for (Real v : qp.q)
        if (v > 0.0)
            has_positive_q = true;
    EXPECT_TRUE(has_positive_q);
}

TEST(Generators, HuberShapes)
{
    Rng rng(3);
    const QpProblem qp = generateHuber(8, rng);
    EXPECT_EQ(qp.numVariables(), 8 + 3 * 40);
    EXPECT_EQ(qp.numConstraints(), 3 * 40);
}

TEST(Generators, PortfolioShapes)
{
    Rng rng(4);
    const QpProblem qp = generatePortfolio(50, rng);
    const Index k = 5;
    EXPECT_EQ(qp.numVariables(), 50 + k);
    EXPECT_EQ(qp.numConstraints(), k + 1 + 50);
    // Budget row is an equality summing to 1.
    EXPECT_DOUBLE_EQ(qp.l[static_cast<std::size_t>(k)], 1.0);
    EXPECT_DOUBLE_EQ(qp.u[static_cast<std::size_t>(k)], 1.0);
}

TEST(Generators, SvmShapes)
{
    Rng rng(5);
    const QpProblem qp = generateSvm(12, rng);
    EXPECT_EQ(qp.numVariables(), 12 + 60);
    EXPECT_EQ(qp.numConstraints(), 120);
}

TEST(Generators, EqqpShapesAndDensity)
{
    Rng rng(6);
    const QpProblem qp = generateEqqp(100, rng);
    EXPECT_EQ(qp.numVariables(), 100);
    EXPECT_EQ(qp.numConstraints(), 50);
    // All equality constraints.
    for (std::size_t i = 0; i < qp.l.size(); ++i)
        EXPECT_DOUBLE_EQ(qp.l[i], qp.u[i]);
    // Dense-ish: ~15 nnz per A row.
    const Real avg_row =
        static_cast<Real>(qp.a.nnz()) / qp.numConstraints();
    EXPECT_GT(avg_row, 8.0);
}

TEST(Generators, EqqpIsFeasibleByConstruction)
{
    Rng rng(7);
    const QpProblem qp = generateEqqp(40, rng);
    OsqpSettings settings;
    const OsqpResult result = OsqpSolver(qp, settings).solve();
    EXPECT_EQ(result.info.status, SolveStatus::Solved);
}

TEST(Generators, AllValidateAndObjectiveFinite)
{
    for (Domain domain : allDomains()) {
        const Index size = domain == Domain::Control ? 10 : 40;
        const QpProblem qp = generateProblem(domain, size, 3);
        qp.validate();  // throws on problems
        Vector x(static_cast<std::size_t>(qp.numVariables()), 0.1);
        EXPECT_TRUE(std::isfinite(qp.objective(x)));
    }
}

TEST(Suite, Has120Problems)
{
    const auto suite = benchmarkSuite();
    EXPECT_EQ(suite.size(), 120u);
    Index per_domain[6] = {0, 0, 0, 0, 0, 0};
    for (const ProblemSpec& spec : suite)
        ++per_domain[static_cast<int>(spec.domain)];
    for (Index count : per_domain)
        EXPECT_EQ(count, 20);
}

TEST(Suite, ReducedSuiteKeepsEndpoints)
{
    const auto full = benchmarkSuite(20);
    const auto reduced = benchmarkSuite(5);
    EXPECT_EQ(reduced.size(), 30u);
    // First and last sizes of each domain are retained.
    for (int d = 0; d < 6; ++d) {
        EXPECT_EQ(reduced[static_cast<std::size_t>(d * 5)].sizeParam,
                  full[static_cast<std::size_t>(d * 20)].sizeParam);
        EXPECT_EQ(
            reduced[static_cast<std::size_t>(d * 5 + 4)].sizeParam,
            full[static_cast<std::size_t>(d * 20 + 19)].sizeParam);
    }
}

TEST(Suite, SizesSpanPaperRange)
{
    // Fig. 7: nnz from ~1e2 to ~1e6. Generate the smallest and the
    // largest instance of each domain and check the envelope.
    const auto suite = benchmarkSuite();
    Count min_nnz = 1 << 30;
    Count max_nnz = 0;
    for (int d = 0; d < 6; ++d) {
        const QpProblem small =
            suite[static_cast<std::size_t>(d * 20)].generate();
        const QpProblem large =
            suite[static_cast<std::size_t>(d * 20 + 19)].generate();
        min_nnz = std::min(min_nnz, small.totalNnz());
        max_nnz = std::max(max_nnz, large.totalNnz());
        EXPECT_LT(small.totalNnz(), 2000) << "domain " << d;
        EXPECT_GT(large.totalNnz(), 50000) << "domain " << d;
    }
    EXPECT_LT(min_nnz, 500);
    EXPECT_GT(max_nnz, 500000);
}

TEST(Suite, NamesAreUnique)
{
    const auto suite = benchmarkSuite();
    std::set<std::string> names;
    for (const ProblemSpec& spec : suite)
        names.insert(spec.name);
    EXPECT_EQ(names.size(), suite.size());
}

/** Every domain solves at small scale with default settings. */
class GeneratorSolvability : public ::testing::TestWithParam<Domain>
{};

TEST_P(GeneratorSolvability, SmallInstanceSolves)
{
    const Domain domain = GetParam();
    const Index size = domain == Domain::Control ? 4 : 20;
    const QpProblem qp = generateProblem(domain, size, 1);
    OsqpSettings settings;
    const OsqpResult result = OsqpSolver(qp, settings).solve();
    EXPECT_EQ(result.info.status, SolveStatus::Solved)
        << toString(domain);
}

INSTANTIATE_TEST_SUITE_P(AllDomains, GeneratorSolvability,
                         ::testing::Values(Domain::Control, Domain::Lasso,
                                           Domain::Huber,
                                           Domain::Portfolio, Domain::Svm,
                                           Domain::Eqqp));

} // namespace
} // namespace rsqp
