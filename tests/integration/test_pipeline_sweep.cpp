/**
 * @file
 * Full-pipeline property sweep over (domain x datapath width): for
 * the P and A matrices of each benchmark family, the complete
 * customization chain (encode -> search -> schedule -> pack ->
 * compress) must satisfy every invariant at once:
 *
 *  - schedule covers each string position exactly once,
 *  - E_p accounting agrees between scheduler and packer,
 *  - the CVB plan is consistent with the packed access pattern,
 *  - the packed stream reproduces the CSR SpMV exactly,
 *  - eta lies in (0, 1] and never degrades vs the baseline.
 */

#include <gtest/gtest.h>

#include "core/customization.hpp"
#include "linalg/vector_ops.hpp"
#include "osqp/scaling.hpp"
#include "problems/suite.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

class PipelineSweep
    : public ::testing::TestWithParam<std::tuple<Domain, Index>>
{};

TEST_P(PipelineSweep, AllInvariantsHold)
{
    const auto [domain, c] = GetParam();
    const Index size = domain == Domain::Control ? 10 : 35;
    QpProblem qp = generateProblem(domain, size, 2024);
    ruizEquilibrate(qp, 10);

    CustomizeSettings settings;
    settings.c = c;
    const ProblemCustomization custom = customizeProblem(qp, settings);
    const ProblemCustomization baseline =
        baselineCustomization(qp, c);

    Rng rng(static_cast<std::uint64_t>(c) * 31 +
            static_cast<std::uint64_t>(domain));
    for (const MatrixArtifacts* m :
         {&custom.p, &custom.a, &custom.at, &custom.atSq}) {
        SCOPED_TRACE(m->name);
        // Coverage: every string position in exactly one slot.
        std::vector<int> covered(m->str.length(), 0);
        for (const SlotAssignment& slot : m->schedule.slots)
            for (Index pos : slot.positions)
                if (pos >= 0)
                    ++covered[static_cast<std::size_t>(pos)];
        for (int count : covered)
            ASSERT_EQ(count, 1);

        // E_p accounting.
        EXPECT_EQ(m->schedule.ep, m->packed.ep);
        EXPECT_EQ(m->schedule.ep,
                  static_cast<Count>(c) * m->schedule.slotCount() -
                      m->schedule.nnz);

        // CVB plan consistency.
        EXPECT_TRUE(m->plan.isConsistentWith(
            buildAccessRequirements(m->packed)));

        // Functional equivalence.
        const Vector x = test::randomVector(m->csr.cols(), rng);
        Vector y_ref;
        m->csr.spmv(x, y_ref);
        EXPECT_LT(test::maxAbsDiff(m->packed.referenceSpmv(x), y_ref),
                  1e-9 * (1.0 + normInf(y_ref)));

        // Match score range.
        EXPECT_GT(m->eta(), 0.0);
        EXPECT_LE(m->eta(), 1.0 + 1e-12);
    }

    // Aggregate eta never degrades vs the baseline.
    EXPECT_GE(custom.eta(), baseline.eta() - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    DomainsByWidth, PipelineSweep,
    ::testing::Combine(::testing::Values(Domain::Control, Domain::Lasso,
                                         Domain::Huber,
                                         Domain::Portfolio, Domain::Svm,
                                         Domain::Eqqp),
                       ::testing::Values(8, 16, 32, 64)));

} // namespace
} // namespace rsqp
