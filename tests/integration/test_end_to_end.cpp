/**
 * @file
 * Cross-stack integration tests: for a sample of benchmark problems,
 * run all three backends (CPU direct, CPU indirect, simulated RSQP)
 * and check they agree on the solution; verify the headline paper
 * effects end to end (customization speedup, KKT-time dominance).
 */

#include <gtest/gtest.h>

#include "core/rsqp.hpp"
#include "linalg/vector_ops.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

TEST(EndToEnd, ThreeBackendsAgreeOnSolution)
{
    const QpProblem qp = generateProblem(Domain::Portfolio, 60, 55);

    OsqpSettings direct_settings;
    direct_settings.backend = KktBackend::DirectLdl;
    OsqpSolver direct(qp, direct_settings);
    const OsqpResult rd = direct.solve();

    OsqpSettings indirect_settings;
    indirect_settings.backend = KktBackend::IndirectPcg;
    OsqpSolver indirect(qp, indirect_settings);
    const OsqpResult ri = indirect.solve();

    CustomizeSettings custom;
    custom.c = 64;
    RsqpSolver device(qp, indirect_settings, custom);
    const RsqpResult ra = device.solve();

    ASSERT_EQ(rd.info.status, SolveStatus::Solved);
    ASSERT_EQ(ri.info.status, SolveStatus::Solved);
    ASSERT_EQ(ra.status, SolveStatus::Solved);

    const Real scale = 1.0 + std::abs(rd.info.objective);
    EXPECT_NEAR(rd.info.objective, ri.info.objective, 2e-2 * scale);
    EXPECT_NEAR(rd.info.objective, ra.objective, 2e-2 * scale);
}

TEST(EndToEnd, KktSolveDominatesCpuTime)
{
    // The Fig. 8 claim: the KKT solve is >= ~90 % of solver time for
    // the indirect CPU backend on a non-trivial problem.
    const QpProblem qp = generateProblem(Domain::Lasso, 150, 57);
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    OsqpSolver solver(qp, settings);
    const OsqpResult result = solver.solve();
    ASSERT_EQ(result.info.status, SolveStatus::Solved);
    ASSERT_GT(result.info.solveTime, 0.0);
    EXPECT_GT(result.info.kktSolveTime / result.info.solveTime, 0.7);
}

TEST(EndToEnd, CustomizationSpeedupWithinPaperBand)
{
    // Fig. 10: customization buys 1.4x-7x end-to-end on the
    // structured domains. Check one mid-size instance lands in a
    // generous version of that band (> 1.2x).
    const QpProblem qp = generateProblem(Domain::Svm, 60, 59);
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;

    CustomizeSettings base_cfg;
    base_cfg.c = 64;
    base_cfg.customizeStructures = false;
    base_cfg.compressCvb = false;
    RsqpSolver baseline(qp, settings, base_cfg);
    const RsqpResult rb = baseline.solve();

    CustomizeSettings custom_cfg;
    custom_cfg.c = 64;
    RsqpSolver customized(qp, settings, custom_cfg);
    const RsqpResult rc = customized.solve();

    ASSERT_EQ(rb.status, SolveStatus::Solved);
    ASSERT_EQ(rc.status, SolveStatus::Solved);
    const Real speedup = rb.deviceSeconds / rc.deviceSeconds;
    EXPECT_GT(speedup, 1.2);
    EXPECT_LT(speedup, 20.0);
}

TEST(EndToEnd, GpuModelSlowerThanCpuOnTinyProblem)
{
    // The cuOSQP effect: kernel-launch overhead makes the GPU lose on
    // small problems.
    const QpProblem qp = generateProblem(Domain::Control, 4, 61);
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    OsqpSolver cpu(qp, settings);
    Timer timer;
    const OsqpResult result = cpu.solve();
    const double cpu_seconds = timer.seconds();
    ASSERT_EQ(result.info.status, SolveStatus::Solved);

    const GpuSolveEstimate gpu =
        estimateGpuSolve(qp, result.info, settings);
    EXPECT_GT(gpu.totalSeconds(), cpu_seconds);
}

TEST(EndToEnd, FpgaPowerEfficiencyBeatsGpu)
{
    // Fig. 13: instances/s/W strongly favors the FPGA.
    const QpProblem qp = generateProblem(Domain::Portfolio, 80, 63);
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    OsqpSolver cpu(qp, settings);
    const OsqpResult cpu_result = cpu.solve();
    ASSERT_EQ(cpu_result.info.status, SolveStatus::Solved);

    CustomizeSettings custom;
    custom.c = 64;
    RsqpSolver device(qp, settings, custom);
    const RsqpResult acc = device.solve();
    ASSERT_EQ(acc.status, SolveStatus::Solved);

    const GpuSolveEstimate gpu =
        estimateGpuSolve(qp, cpu_result.info, settings);
    const Real fpga_eff = powerEfficiency(
        acc.deviceSeconds, fpgaPowerWatts(device.config()));
    const Real gpu_eff =
        powerEfficiency(gpu.totalSeconds(), gpu.watts);
    EXPECT_GT(fpga_eff, gpu_eff);
}

TEST(EndToEnd, MpcReceedingHorizonLoop)
{
    // A realistic deployment: solve a short receding-horizon control
    // sequence on one generated architecture with warm starts.
    const QpProblem qp = generateProblem(Domain::Control, 6, 65);
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    CustomizeSettings custom;
    custom.c = 16;
    RsqpSolver solver(qp, settings, custom);

    RsqpResult result = solver.solve();
    ASSERT_EQ(result.status, SolveStatus::Solved);
    Count total_cycles = result.machineStats.totalCycles;
    for (int step = 0; step < 3; ++step) {
        // Perturb the linear cost (tracking target changes).
        Vector q = qp.q;
        for (std::size_t j = 0; j < q.size(); ++j)
            q[j] += 0.01 * static_cast<Real>(step);
        solver.updateLinearCost(q);
        solver.warmStart(result.x, result.y);
        result = solver.solve();
        ASSERT_EQ(result.status, SolveStatus::Solved);
        // Warm-started re-solves are cheaper than the cold solve.
        EXPECT_LE(result.machineStats.totalCycles, total_cycles);
    }
}

} // namespace
} // namespace rsqp
