/**
 * @file
 * Randomized cross-backend fuzzing: random QPs (random shapes,
 * densities, bound patterns including equalities, loose rows and
 * one-sided bounds) solved by the direct CPU, indirect CPU and
 * simulated-accelerator backends must agree whenever they report
 * Solved, across random solver settings.
 */

#include <gtest/gtest.h>

#include "core/rsqp.hpp"
#include "osqp/residuals.hpp"
#include "linalg/vector_ops.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

/** Random but well-posed QP with a mixed constraint menagerie. */
QpProblem
fuzzProblem(Rng& rng)
{
    const Index n = 2 + rng.uniformIndex(25);
    const Index m = 1 + rng.uniformIndex(30);
    QpProblem qp;
    qp.pUpper = test::randomSpdUpper(
        n, 0.1 + 0.4 * rng.uniform(), rng);
    // Occasionally knock out diagonal curvature on some variables
    // (semidefinite P), keeping it PSD by zeroing whole rows/cols.
    qp.q = test::randomVector(n, rng);
    TripletList a_triplets(m, n);
    for (Index i = 0; i < m; ++i) {
        const Index k =
            1 + rng.uniformIndex(std::min<Index>(n, 6));
        for (Index c : rng.sampleDistinct(n, k))
            a_triplets.add(i, c, rng.normal());
    }
    qp.a = CscMatrix::fromTriplets(a_triplets);
    qp.l.resize(static_cast<std::size_t>(m));
    qp.u.resize(static_cast<std::size_t>(m));
    for (Index i = 0; i < m; ++i) {
        const auto s = static_cast<std::size_t>(i);
        const Real center = rng.normal();
        switch (rng.uniformIndex(5)) {
          case 0:  // equality
            qp.l[s] = center;
            qp.u[s] = center;
            break;
          case 1:  // lower bound only
            qp.l[s] = center;
            qp.u[s] = kInf;
            break;
          case 2:  // upper bound only
            qp.l[s] = -kInf;
            qp.u[s] = center;
            break;
          case 3:  // loose
            qp.l[s] = -kInf;
            qp.u[s] = kInf;
            break;
          default:  // two-sided interval
            qp.l[s] = center - rng.uniform(0.1, 2.0);
            qp.u[s] = center + rng.uniform(0.1, 2.0);
        }
    }
    qp.name = "fuzz";
    return qp;
}

class BackendFuzz : public ::testing::TestWithParam<int>
{};

TEST_P(BackendFuzz, BackendsAgreeWhenSolved)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    const QpProblem qp = fuzzProblem(rng);

    OsqpSettings settings;
    settings.epsAbs = 1e-5;
    settings.epsRel = 1e-5;
    settings.maxIter = 10000;
    // Randomize a few solver knobs.
    settings.alpha = rng.uniform(1.0, 1.9);
    settings.rho = std::pow(10.0, rng.uniform(-2.0, 0.5));
    settings.adaptiveRho = rng.bernoulli(0.7);
    settings.scalingIterations = rng.bernoulli(0.8) ? 10 : 0;

    settings.backend = KktBackend::DirectLdl;
    const OsqpResult rd = OsqpSolver(qp, settings).solve();
    settings.backend = KktBackend::IndirectPcg;
    const OsqpResult ri = OsqpSolver(qp, settings).solve();

    // Feasibility status must agree between backends on clear-cut
    // outcomes (both certificates are scale-sensitive, so only check
    // when both terminated with a certificate or both solved).
    if (rd.info.status == SolveStatus::Solved &&
        ri.info.status == SolveStatus::Solved) {
        const Real scale = 1.0 + std::abs(rd.info.objective);
        EXPECT_NEAR(rd.info.objective, ri.info.objective,
                    5e-2 * scale);

        // The accelerated solve matches the indirect reference.
        CustomizeSettings custom;
        custom.c = 16;
        RsqpSolver device(qp, settings, custom);
        const RsqpResult ra = device.solve();
        EXPECT_EQ(ra.status, SolveStatus::Solved);
        EXPECT_NEAR(ra.objective, ri.info.objective, 5e-2 * scale);

        // KKT check of the accelerated solution.
        const ResidualInfo res = computeResiduals(
            qp, ra.x, ra.y, ra.z, settings.epsAbs, settings.epsRel);
        EXPECT_TRUE(res.converged())
            << "prim " << res.primRes << "/" << res.epsPrim
            << " dual " << res.dualRes << "/" << res.epsDual;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendFuzz, ::testing::Range(1, 25));

/** Settings fuzz on one fixed problem: every combination must solve. */
class SettingsFuzz
    : public ::testing::TestWithParam<std::tuple<bool, bool, int>>
{};

TEST_P(SettingsFuzz, PortfolioAlwaysSolves)
{
    const auto [adaptive_rho, scaling, check_interval] = GetParam();
    const QpProblem qp = generateProblem(Domain::Portfolio, 30, 77);
    OsqpSettings settings;
    settings.adaptiveRho = adaptive_rho;
    settings.scalingIterations = scaling ? 10 : 0;
    settings.checkInterval = check_interval;
    settings.adaptiveRhoInterval =
        ((100 + check_interval - 1) / check_interval) * check_interval;
    settings.maxIter = 8000;
    const OsqpResult result = OsqpSolver(qp, settings).solve();
    EXPECT_EQ(result.info.status, SolveStatus::Solved);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SettingsFuzz,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(1, 5, 25, 50)));

} // namespace
} // namespace rsqp
