/**
 * @file
 * Randomized cross-backend fuzzing: random QPs (random shapes,
 * densities, bound patterns including equalities, loose rows and
 * one-sided bounds) solved by the direct CPU, indirect CPU and
 * simulated-accelerator backends must agree whenever they report
 * Solved, across random solver settings.
 */

#include <gtest/gtest.h>

#include <limits>

#include "core/rsqp.hpp"
#include "osqp/residuals.hpp"
#include "linalg/vector_ops.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

/** Random but well-posed QP with a mixed constraint menagerie. */
QpProblem
fuzzProblem(Rng& rng)
{
    const Index n = 2 + rng.uniformIndex(25);
    const Index m = 1 + rng.uniformIndex(30);
    QpProblem qp;
    qp.pUpper = test::randomSpdUpper(
        n, 0.1 + 0.4 * rng.uniform(), rng);
    // Occasionally knock out diagonal curvature on some variables
    // (semidefinite P), keeping it PSD by zeroing whole rows/cols.
    qp.q = test::randomVector(n, rng);
    TripletList a_triplets(m, n);
    for (Index i = 0; i < m; ++i) {
        const Index k =
            1 + rng.uniformIndex(std::min<Index>(n, 6));
        for (Index c : rng.sampleDistinct(n, k))
            a_triplets.add(i, c, rng.normal());
    }
    qp.a = CscMatrix::fromTriplets(a_triplets);
    qp.l.resize(static_cast<std::size_t>(m));
    qp.u.resize(static_cast<std::size_t>(m));
    for (Index i = 0; i < m; ++i) {
        const auto s = static_cast<std::size_t>(i);
        const Real center = rng.normal();
        switch (rng.uniformIndex(5)) {
          case 0:  // equality
            qp.l[s] = center;
            qp.u[s] = center;
            break;
          case 1:  // lower bound only
            qp.l[s] = center;
            qp.u[s] = kInf;
            break;
          case 2:  // upper bound only
            qp.l[s] = -kInf;
            qp.u[s] = center;
            break;
          case 3:  // loose
            qp.l[s] = -kInf;
            qp.u[s] = kInf;
            break;
          default:  // two-sided interval
            qp.l[s] = center - rng.uniform(0.1, 2.0);
            qp.u[s] = center + rng.uniform(0.1, 2.0);
        }
    }
    qp.name = "fuzz";
    return qp;
}

class BackendFuzz : public ::testing::TestWithParam<int>
{};

TEST_P(BackendFuzz, BackendsAgreeWhenSolved)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    const QpProblem qp = fuzzProblem(rng);

    OsqpSettings settings;
    settings.epsAbs = 1e-5;
    settings.epsRel = 1e-5;
    settings.maxIter = 10000;
    // Randomize a few solver knobs.
    settings.alpha = rng.uniform(1.0, 1.9);
    settings.rho = std::pow(10.0, rng.uniform(-2.0, 0.5));
    settings.adaptiveRho = rng.bernoulli(0.7);
    settings.scalingIterations = rng.bernoulli(0.8) ? 10 : 0;

    settings.backend = KktBackend::DirectLdl;
    const OsqpResult rd = OsqpSolver(qp, settings).solve();
    settings.backend = KktBackend::IndirectPcg;
    const OsqpResult ri = OsqpSolver(qp, settings).solve();

    // Feasibility status must agree between backends on clear-cut
    // outcomes (both certificates are scale-sensitive, so only check
    // when both terminated with a certificate or both solved).
    if (rd.info.status == SolveStatus::Solved &&
        ri.info.status == SolveStatus::Solved) {
        const Real scale = 1.0 + std::abs(rd.info.objective);
        EXPECT_NEAR(rd.info.objective, ri.info.objective,
                    5e-2 * scale);

        // The accelerated solve matches the indirect reference.
        CustomizeSettings custom;
        custom.c = 16;
        RsqpSolver device(qp, settings, custom);
        const RsqpResult ra = device.solve();
        EXPECT_EQ(ra.status, SolveStatus::Solved);
        EXPECT_NEAR(ra.objective, ri.info.objective, 5e-2 * scale);

        // KKT check of the accelerated solution.
        const ResidualInfo res = computeResiduals(
            qp, ra.x, ra.y, ra.z, settings.epsAbs, settings.epsRel);
        EXPECT_TRUE(res.converged())
            << "prim " << res.primRes << "/" << res.epsPrim
            << " dual " << res.dualRes << "/" << res.epsDual;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendFuzz, ::testing::Range(1, 25));

/** Settings fuzz on one fixed problem: every combination must solve. */
class SettingsFuzz
    : public ::testing::TestWithParam<std::tuple<bool, bool, int>>
{};

TEST_P(SettingsFuzz, PortfolioAlwaysSolves)
{
    const auto [adaptive_rho, scaling, check_interval] = GetParam();
    const QpProblem qp = generateProblem(Domain::Portfolio, 30, 77);
    OsqpSettings settings;
    settings.adaptiveRho = adaptive_rho;
    settings.scalingIterations = scaling ? 10 : 0;
    settings.checkInterval = check_interval;
    settings.adaptiveRhoInterval =
        ((100 + check_interval - 1) / check_interval) * check_interval;
    settings.maxIter = 8000;
    const OsqpResult result = OsqpSolver(qp, settings).solve();
    EXPECT_EQ(result.info.status, SolveStatus::Solved);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SettingsFuzz,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(1, 5, 25, 50)));

// ---------------------------------------------------------------------
// Malformed-problem corpora: every corruption must surface as a typed
// InvalidProblem result (never a crash, throw, or garbage solve) on
// both the CPU solver and the simulated accelerator.
// ---------------------------------------------------------------------

/** Solve with both OsqpSolver and RsqpSolver; assert typed rejection. */
void
expectRejected(const QpProblem& qp, ValidationCode code)
{
    OsqpSolver cpu(qp, OsqpSettings{});
    EXPECT_FALSE(cpu.validation().ok());
    const OsqpResult r = cpu.solve();
    EXPECT_EQ(r.info.status, SolveStatus::InvalidProblem);
    EXPECT_TRUE(r.validation.has(code)) << r.validation.describe();

    CustomizeSettings custom;
    custom.c = 16;
    RsqpSolver device(qp, OsqpSettings{}, custom);
    EXPECT_FALSE(device.validation().ok());
    const RsqpResult ra = device.solve();
    EXPECT_EQ(ra.status, SolveStatus::InvalidProblem);
    EXPECT_TRUE(ra.validation.has(code)) << ra.validation.describe();
}

TEST(MalformedProblem, NanInLinearCost)
{
    Rng rng(101);
    QpProblem qp = fuzzProblem(rng);
    qp.q[qp.q.size() / 2] = std::numeric_limits<Real>::quiet_NaN();
    expectRejected(qp, ValidationCode::NonFiniteData);
}

TEST(MalformedProblem, InfInMatrixValues)
{
    Rng rng(102);
    QpProblem qp = fuzzProblem(rng);
    std::vector<Real>& vals = qp.a.values();
    ASSERT_FALSE(vals.empty());
    vals[0] = std::numeric_limits<Real>::infinity();
    expectRejected(qp, ValidationCode::NonFiniteData);
}

TEST(MalformedProblem, CrossedBounds)
{
    Rng rng(103);
    QpProblem qp = fuzzProblem(rng);
    qp.l[0] = 1.0;
    qp.u[0] = -1.0;
    expectRejected(qp, ValidationCode::InfeasibleBounds);
}

TEST(MalformedProblem, RaggedColumnPointers)
{
    Rng rng(104);
    QpProblem qp = fuzzProblem(rng);
    const Index n = qp.numVariables();
    const Index m = qp.numConstraints();
    // Decreasing colPtr (ragged) with in-range row indices.
    std::vector<Index> col_ptr(static_cast<std::size_t>(n) + 1, 0);
    col_ptr[1] = 2;
    col_ptr[2] = 1;  // decreasing: structurally broken
    for (std::size_t j = 3; j < col_ptr.size(); ++j)
        col_ptr[j] = 2;
    qp.a = CscMatrix::fromRawUnchecked(m, n, col_ptr, {0, 0},
                                       {1.0, 1.0});
    expectRejected(qp, ValidationCode::InvalidSparseStructure);
}

TEST(MalformedProblem, NegativeAndOutOfRangeRowIndices)
{
    Rng rng(105);
    QpProblem qp = fuzzProblem(rng);
    const Index n = qp.numVariables();
    const Index m = qp.numConstraints();
    std::vector<Index> col_ptr(static_cast<std::size_t>(n) + 1, 2);
    col_ptr[0] = 0;
    col_ptr[1] = 2;
    qp.a = CscMatrix::fromRawUnchecked(m, n, col_ptr, {-1, m + 7},
                                       {1.0, 1.0});
    expectRejected(qp, ValidationCode::InvalidSparseStructure);
}

TEST(MalformedProblem, DimensionMismatch)
{
    Rng rng(106);
    QpProblem qp = fuzzProblem(rng);
    qp.q.push_back(0.0);  // q longer than n
    expectRejected(qp, ValidationCode::DimensionMismatch);
}

TEST(MalformedProblem, LowerTriangularEntryInP)
{
    Rng rng(107);
    QpProblem qp = fuzzProblem(rng);
    TripletList triplets(qp.numVariables(), qp.numVariables());
    triplets.add(0, 0, 1.0);
    if (qp.numVariables() > 1)
        triplets.add(1, 0, 0.5);  // below the diagonal
    qp.pUpper = CscMatrix::fromTriplets(triplets);
    expectRejected(qp, ValidationCode::NotUpperTriangular);
}

/** Random single-element corruptions must never crash the pipeline. */
class CorruptionFuzz : public ::testing::TestWithParam<int>
{};

TEST_P(CorruptionFuzz, AlwaysTypedOutcome)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
    QpProblem qp = fuzzProblem(rng);
    const Real nan = std::numeric_limits<Real>::quiet_NaN();
    switch (rng.uniformIndex(4)) {
      case 0:
        qp.q[static_cast<std::size_t>(
            rng.uniformIndex(static_cast<Index>(qp.q.size())))] = nan;
        break;
      case 1:
        qp.l[static_cast<std::size_t>(
            rng.uniformIndex(qp.numConstraints()))] = nan;
        break;
      case 2: {
        std::vector<Real>& vals = qp.pUpper.values();
        if (vals.empty())
            return;
        vals[static_cast<std::size_t>(rng.uniformIndex(
            static_cast<Index>(vals.size())))] = nan;
        break;
      }
      default: {
        const auto i = static_cast<std::size_t>(
            rng.uniformIndex(qp.numConstraints()));
        qp.l[i] = 1.0;
        qp.u[i] = -1.0;
      }
    }
    OsqpSolver solver(qp, OsqpSettings{});
    const OsqpResult result = solver.solve();
    EXPECT_EQ(result.info.status, SolveStatus::InvalidProblem);
    EXPECT_FALSE(result.validation.ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionFuzz,
                         ::testing::Range(1, 13));

} // namespace
} // namespace rsqp
