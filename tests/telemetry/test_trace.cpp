/**
 * @file
 * Trace recorder tests: span recording, per-thread ring wraparound
 * with dropped-event accounting, runtime disable, and the Chrome
 * trace_event JSON shape. The TraceRecorder suite runs under TSan in
 * CI (spans recorded from multiple threads while draining).
 */

#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "telemetry/trace.hpp"

namespace rsqp::telemetry
{
namespace
{

/** Drain-and-discard so each test starts from empty rings. */
void
resetRecorder()
{
    TraceRecorder::global().disable();
    (void)TraceRecorder::global().drain();
}

TEST(TraceRecorder, SpanRecordsWhenEnabled)
{
    resetRecorder();
    TraceRecorder::global().enable();
    {
        TraceSpan span("test.outer");
        TraceSpan inner("test.inner");
    }
    TraceRecorder::global().disable();

    const TraceRecorder::DrainResult result =
        TraceRecorder::global().drain();
    ASSERT_EQ(result.events.size(), 2u);
    EXPECT_EQ(result.dropped, 0u);
    // Sorted by start time: outer opened first.
    EXPECT_STREQ(result.events[0].name, "test.outer");
    EXPECT_STREQ(result.events[1].name, "test.inner");
    EXPECT_LE(result.events[0].startNs, result.events[1].startNs);
    EXPECT_GT(result.events[0].tid, 0u);
}

TEST(TraceRecorder, DisabledRecordsNothing)
{
    resetRecorder();
    {
        TraceSpan span("test.ignored");
    }
    EXPECT_TRUE(TraceRecorder::global().drain().events.empty());
}

TEST(TraceRecorder, RingWraparoundDropsOldest)
{
    resetRecorder();
    TraceRecorder::global().setRingCapacity(4);
    TraceRecorder::global().enable();

    // A fresh thread gets a fresh ring at the new capacity; recording
    // 10 spans through a 4-slot ring keeps the newest 4 and counts the
    // 6 overwritten ones as dropped.
    std::thread worker([] {
        for (int i = 0; i < 10; ++i)
            TraceSpan span("test.wrap");
    });
    worker.join();
    TraceRecorder::global().disable();

    const TraceRecorder::DrainResult result =
        TraceRecorder::global().drain();
    TraceRecorder::global().setRingCapacity(kDefaultTraceRingCapacity);
    ASSERT_EQ(result.events.size(), 4u);
    EXPECT_EQ(result.dropped, 6u);
    for (std::size_t i = 1; i < result.events.size(); ++i)
        EXPECT_LE(result.events[i - 1].startNs,
                  result.events[i].startNs);

    // Drain resets the dropped accounting as well as the rings.
    EXPECT_EQ(TraceRecorder::global().drain().dropped, 0u);
}

TEST(TraceRecorder, MultiThreadedSpansCarryDistinctTids)
{
    resetRecorder();
    TraceRecorder::global().enable();
    std::thread a([] { TraceSpan span("test.a"); });
    std::thread b([] { TraceSpan span("test.b"); });
    a.join();
    b.join();
    TraceRecorder::global().disable();

    const TraceRecorder::DrainResult result =
        TraceRecorder::global().drain();
    ASSERT_EQ(result.events.size(), 2u);
    EXPECT_NE(result.events[0].tid, result.events[1].tid);
}

TEST(TraceRecorder, DrainJsonIsChromeTraceShaped)
{
    resetRecorder();
    TraceRecorder::global().enable();
    {
        TraceSpan span("test.json");
    }
    TraceRecorder::global().disable();

    const std::string json = TraceRecorder::global().drainJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(json.find("\"droppedEvents\":0"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"test.json\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"rsqp\""), std::string::npos);
    // Draining again yields an empty document body.
    EXPECT_EQ(TraceRecorder::global().drainJson().find("test.json"),
              std::string::npos);
}

#if RSQP_TELEMETRY_ENABLED
TEST(TraceRecorder, SpanMacroRecords)
{
    resetRecorder();
    TraceRecorder::global().enable();
    {
        TELEMETRY_SPAN("test.macro");
    }
    TraceRecorder::global().disable();
    const TraceRecorder::DrainResult result =
        TraceRecorder::global().drain();
    ASSERT_EQ(result.events.size(), 1u);
    EXPECT_STREQ(result.events[0].name, "test.macro");
}
#else
TEST(TraceRecorder, SpanMacroCompiledOut)
{
    resetRecorder();
    TraceRecorder::global().enable();
    {
        TELEMETRY_SPAN("test.macro");
    }
    TraceRecorder::global().disable();
    EXPECT_TRUE(TraceRecorder::global().drain().events.empty());
}
#endif

} // namespace
} // namespace rsqp::telemetry
