/**
 * @file
 * Registry-backed service observability tests. The ServiceMetrics
 * suite runs under TSan in CI: several sessions solve concurrently
 * while the metrics endpoint is scraped, and every scrape must agree
 * with the bespoke ServiceStats accounting.
 */

#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rsqp_api.hpp"

namespace rsqp
{
namespace
{

SessionConfig
smallConfig()
{
    SessionConfig config;
    config.custom.c = 16;
    return config;
}

TEST(ServiceMetrics, ScrapeMatchesServiceStats)
{
    SolverService service;
    const SessionId a = service.openSession(smallConfig());
    const SessionId b = service.openSession(smallConfig());

    const QpProblem qp_a = generateProblem(Domain::Control, 25, 3);
    const QpProblem qp_b = generateProblem(Domain::Lasso, 20, 5);

    std::vector<std::future<SessionResult>> futures;
    for (int i = 0; i < 3; ++i)
        futures.push_back(service.submit(a, qp_a));
    for (int i = 0; i < 2; ++i)
        futures.push_back(service.submit(b, qp_b));
    for (std::future<SessionResult>& future : futures)
        EXPECT_EQ(future.get().status, SolveStatus::Solved);

    const ServiceStats stats = service.stats();
    const telemetry::MetricsSnapshot snapshot =
        service.metricsSnapshot();

    EXPECT_EQ(snapshot.counterValue("rsqp_service_submitted_total"),
              static_cast<std::uint64_t>(stats.submitted));
    EXPECT_EQ(snapshot.counterValue("rsqp_service_completed_total"),
              static_cast<std::uint64_t>(stats.completed));
    EXPECT_EQ(snapshot.counterValue("rsqp_service_rejected_total"),
              static_cast<std::uint64_t>(stats.rejected));
    EXPECT_EQ(snapshot.counterValue(
                  "rsqp_service_deadline_expired_total"),
              static_cast<std::uint64_t>(stats.expired));
    ASSERT_NE(snapshot.findGauge("rsqp_service_queue_depth"), nullptr);
    EXPECT_EQ(snapshot.findGauge("rsqp_service_queue_depth")->value,
              static_cast<std::int64_t>(stats.queueDepth));
    EXPECT_EQ(
        snapshot.findGauge("rsqp_service_queue_depth_peak")->value,
        static_cast<std::int64_t>(stats.peakQueueDepth));
    EXPECT_EQ(snapshot.findGauge("rsqp_service_open_sessions")->value,
              static_cast<std::int64_t>(stats.openSessions));
    EXPECT_EQ(snapshot.findGauge("rsqp_service_cache_hits")->value,
              static_cast<std::int64_t>(stats.cache.hits));
    EXPECT_EQ(snapshot.findGauge("rsqp_service_cache_misses")->value,
              static_cast<std::int64_t>(stats.cache.misses));

    // Per-session counters agree with the per-session stats.
    EXPECT_EQ(
        snapshot.counterValue("rsqp_service_session_solves_total"
                              "{session=\"" +
                              std::to_string(a) + "\"}"),
        static_cast<std::uint64_t>(service.sessionStats(a).solves));
    EXPECT_EQ(
        snapshot.counterValue("rsqp_service_session_solves_total"
                              "{session=\"" +
                              std::to_string(b) + "\"}"),
        static_cast<std::uint64_t>(service.sessionStats(b).solves));

    // The execute-time histogram observed every dispatched request
    // (expired ones record their near-zero dispatch too).
    const telemetry::HistogramSample* execute =
        snapshot.findHistogram("rsqp_service_execute_ns");
    ASSERT_NE(execute, nullptr);
    EXPECT_EQ(execute->count,
              static_cast<std::uint64_t>(stats.completed +
                                         stats.expired));
}

TEST(ServiceMetrics, ConcurrentScrapesStayConsistent)
{
    ServiceConfig config;
    config.execution.numThreads = 2;
    SolverService service(config);
    const SessionId id = service.openSession(smallConfig());
    const QpProblem qp = generateProblem(Domain::Huber, 25, 7);

    // Scrape the endpoint from another thread while solves run: every
    // snapshot must be internally sane (completed <= submitted).
    std::atomic<bool> stop{false};
    std::thread scraper([&] {
        while (!stop.load()) {
            const telemetry::MetricsSnapshot snapshot =
                service.metricsSnapshot();
            const std::uint64_t submitted = snapshot.counterValue(
                "rsqp_service_submitted_total");
            const std::uint64_t completed = snapshot.counterValue(
                "rsqp_service_completed_total");
            EXPECT_LE(completed, submitted);
            EXPECT_FALSE(service.metricsText().empty());
        }
    });

    std::vector<std::future<SessionResult>> futures;
    for (int i = 0; i < 6; ++i)
        futures.push_back(service.submit(id, qp));
    for (std::future<SessionResult>& future : futures)
        (void)future.get();
    stop.store(true);
    scraper.join();

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 6);
    EXPECT_EQ(stats.completed + stats.rejected + stats.expired, 6);
}

TEST(ServiceMetrics, MetricsTextIsPrometheusShaped)
{
    SolverService service;
    const SessionId id = service.openSession(smallConfig());
    const QpProblem qp = generateProblem(Domain::Control, 25, 3);
    EXPECT_EQ(service.solve(id, qp).status, SolveStatus::Solved);

    const std::string text = service.metricsText();
    EXPECT_NE(text.find("# TYPE rsqp_service_submitted_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("rsqp_service_submitted_total 1"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE rsqp_service_queue_depth gauge"),
              std::string::npos);
    EXPECT_NE(
        text.find("# TYPE rsqp_service_session_solves_total counter"),
        std::string::npos);
    EXPECT_NE(text.find("rsqp_service_session_solves_total{session"),
              std::string::npos);
}

TEST(ServiceMetrics, SessionResultCarriesTelemetry)
{
    SolverService service;
    const SessionId id = service.openSession(smallConfig());
    const QpProblem qp = generateProblem(Domain::Control, 25, 3);

    const SessionResult first = service.solve(id, qp);
    ASSERT_EQ(first.status, SolveStatus::Solved);
    EXPECT_GT(first.telemetry.iterations, 0);
    EXPECT_GE(first.telemetry.queueWaitSeconds, 0.0);
    EXPECT_GE(first.telemetry.solveSeconds, 0.0);
    EXPECT_TRUE(first.telemetry.route == SolveRoute::CacheThaw ||
                first.telemetry.route == SolveRoute::FullCustomize);

    // Same session, same structure: the parametric fast path.
    const SessionResult second = service.solve(id, qp);
    ASSERT_EQ(second.status, SolveStatus::Solved);
    EXPECT_EQ(second.telemetry.route, SolveRoute::Parametric);
}

TEST(ServiceMetrics, DumpTraceDrainsSpans)
{
    ServiceConfig config;
    config.tracing = true;
    SolverService service(config);
    const SessionId id = service.openSession(smallConfig());
    const QpProblem qp = generateProblem(Domain::Lasso, 20, 5);
    EXPECT_EQ(service.solve(id, qp).status, SolveStatus::Solved);

    const std::string trace = service.dumpTrace();
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    if (telemetry::kTelemetryCompiled) {
        EXPECT_NE(trace.find("service.run_job"), std::string::npos);
    }
    telemetry::TraceRecorder::global().disable();
}

TEST(ServiceMetrics, SessionSeriesRetiredOnChurn)
{
    // Regression: per-session label series used to accumulate in the
    // registry forever as sessions churned. Closing a session must
    // retire its series, folding the count into the aggregate.
    SolverService service;
    const QpProblem qp = generateProblem(Domain::Control, 25, 3);

    const std::size_t baseline =
        service.metricsSnapshot().counters.size();
    for (int i = 0; i < 8; ++i) {
        const SessionId id = service.openSession(smallConfig());
        EXPECT_EQ(service.solve(id, qp).status, SolveStatus::Solved);
        service.closeSession(id);
    }
    service.waitIdle();

    const telemetry::MetricsSnapshot snapshot =
        service.metricsSnapshot();
    EXPECT_EQ(snapshot.counters.size(), baseline);
    for (const telemetry::CounterSample& sample : snapshot.counters)
        EXPECT_EQ(sample.name.find("{session="), std::string::npos)
            << sample.name;
    EXPECT_EQ(snapshot.counterValue(
                  "rsqp_service_session_solves_retired_total"),
              8u);

    // An open session's series is live until it closes.
    const SessionId live = service.openSession(smallConfig());
    EXPECT_EQ(service.solve(live, qp).status, SolveStatus::Solved);
    EXPECT_EQ(service.metricsSnapshot().counters.size(), baseline + 1);
}

TEST(ServiceMetrics, SessionSeriesRetiredWhenCloseRacesRunningJob)
{
    // closeSession while the job is in flight defers the erase to the
    // worker; the series must still be retired on that path.
    SolverService service;
    const QpProblem qp = generateProblem(Domain::Control, 30, 7);
    const std::size_t baseline =
        service.metricsSnapshot().counters.size();

    const SessionId id = service.openSession(smallConfig());
    std::future<SessionResult> future = service.submit(id, qp);
    service.closeSession(id);  // may race the running solve
    future.get();
    service.waitIdle();

    const telemetry::MetricsSnapshot snapshot =
        service.metricsSnapshot();
    EXPECT_EQ(snapshot.counters.size(), baseline);
    EXPECT_EQ(service.stats().openSessions, 0u);
}

} // namespace
} // namespace rsqp
