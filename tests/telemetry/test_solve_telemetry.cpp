/**
 * @file
 * SolveTelemetry record tests: residual-tail ring semantics, JSON
 * export, and the end-to-end attachment of a populated record to
 * OsqpInfo by a real CPU solve.
 */

#include <gtest/gtest.h>

#include "osqp/solver.hpp"
#include "problems/suite.hpp"
#include "telemetry/solve_telemetry.hpp"

namespace rsqp
{
namespace
{

TEST(SolveTelemetryRecord, ResidualTailKeepsLastEntries)
{
    SolveTelemetry telemetry;
    for (Index i = 0; i < 12; ++i)
        telemetry.pushResidual(i, 1.0 / (i + 1), 2.0 / (i + 1));
    ASSERT_EQ(telemetry.residualTail.size(), kResidualTailCapacity);
    EXPECT_EQ(telemetry.residualTail.front().iteration,
              12 - static_cast<Index>(kResidualTailCapacity));
    EXPECT_EQ(telemetry.residualTail.back().iteration, 11);
}

TEST(SolveTelemetryRecord, RouteNames)
{
    EXPECT_STREQ(toString(SolveRoute::None), "none");
    EXPECT_STREQ(toString(SolveRoute::Parametric), "parametric");
    EXPECT_STREQ(toString(SolveRoute::CacheThaw), "cache_thaw");
    EXPECT_STREQ(toString(SolveRoute::FullCustomize), "full_customize");
}

TEST(SolveTelemetryRecord, JsonCarriesCoreFields)
{
    SolveTelemetry telemetry;
    telemetry.iterations = 50;
    telemetry.kktSolves = 50;
    telemetry.pcgIterationsTotal = 400;
    telemetry.pcgItersPerSolve = 8.0;
    telemetry.route = SolveRoute::Parametric;
    telemetry.pushResidual(49, 1e-5, 2e-5);

    const std::string json = telemetry.toJson();
    EXPECT_NE(json.find("\"iterations\":50"), std::string::npos);
    EXPECT_NE(json.find("\"route\":\"parametric\""), std::string::npos);
    EXPECT_NE(json.find("\"residual_tail\""), std::string::npos);
    EXPECT_NE(json.find("\"pcg_iterations_total\":400"),
              std::string::npos);
}

TEST(SolveTelemetryRecord, AttachedToOsqpInfoBySolve)
{
    const QpProblem qp = generateProblem(Domain::Lasso, 20, 11);
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    OsqpSolver solver(qp, settings);
    const OsqpResult result = solver.solve();
    ASSERT_EQ(result.info.status, SolveStatus::Solved);

    const SolveTelemetry& telemetry = result.info.telemetry;
    EXPECT_EQ(telemetry.iterations, result.info.iterations);
    EXPECT_GT(telemetry.kktSolves, 0);
    EXPECT_EQ(telemetry.pcgIterationsTotal,
              result.info.pcgIterationsTotal);
    EXPECT_FALSE(telemetry.residualTail.empty());
    EXPECT_GE(telemetry.solveSeconds, 0.0);

    // A second solve must reset the record, not accumulate into it.
    const OsqpResult again = solver.solve();
    EXPECT_EQ(again.info.telemetry.iterations, again.info.iterations);
    EXPECT_LE(again.info.telemetry.residualTail.size(),
              kResidualTailCapacity);
}

} // namespace
} // namespace rsqp
