/**
 * @file
 * Metrics registry tests. The TelemetryRegistry suite runs under TSan
 * in CI: concurrent writers hammer the sharded counters while a reader
 * snapshots, proving the fold is exact after quiescence and never
 * moves backwards while writers run.
 */

#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/metrics.hpp"

namespace rsqp::telemetry
{
namespace
{

TEST(TelemetryRegistry, ConcurrentCounterFoldIsExact)
{
    MetricsRegistry registry;
    Counter& counter = registry.counter("test_total", "concurrent adds");

    constexpr int kThreads = 8;
    constexpr std::uint64_t kAddsPerThread = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&counter] {
            for (std::uint64_t i = 0; i < kAddsPerThread; ++i)
                counter.increment();
        });
    for (std::thread& thread : threads)
        thread.join();

    EXPECT_EQ(counter.value(), kThreads * kAddsPerThread);
    EXPECT_EQ(registry.snapshot().counterValue("test_total"),
              kThreads * kAddsPerThread);
}

TEST(TelemetryRegistry, SnapshotMonotonicUnderWriters)
{
    MetricsRegistry registry;
    Counter& counter = registry.counter("mono_total");

    std::atomic<bool> stop{false};
    std::thread writer([&] {
        while (!stop.load(std::memory_order_relaxed))
            counter.add(3);
    });

    std::uint64_t previous = 0;
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t now =
            registry.snapshot().counterValue("mono_total");
        EXPECT_GE(now, previous);
        previous = now;
    }
    stop.store(true);
    writer.join();
    EXPECT_EQ(counter.value() % 3, 0u);
}

TEST(TelemetryRegistry, SameNameReturnsSameInstance)
{
    MetricsRegistry registry;
    Counter& a = registry.counter("dup_total", "first");
    Counter& b = registry.counter("dup_total", "second ignored");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.help(), "first");

    Gauge& g1 = registry.gauge("dup_gauge");
    Gauge& g2 = registry.gauge("dup_gauge");
    EXPECT_EQ(&g1, &g2);

    Histogram& h1 = registry.histogram("dup_hist");
    Histogram& h2 = registry.histogram("dup_hist");
    EXPECT_EQ(&h1, &h2);
}

TEST(TelemetryRegistry, GaugeUpdateMaxConcurrent)
{
    MetricsRegistry registry;
    Gauge& gauge = registry.gauge("peak");

    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    for (int t = 1; t <= kThreads; ++t)
        threads.emplace_back([&gauge, t] {
            for (int i = 0; i < 5000; ++i)
                gauge.updateMax(static_cast<std::int64_t>(t) * 1000 + i);
        });
    for (std::thread& thread : threads)
        thread.join();
    EXPECT_EQ(gauge.value(), kThreads * 1000 + 4999);
}

TEST(TelemetryRegistry, GaugeSetAddSub)
{
    MetricsRegistry registry;
    Gauge& gauge = registry.gauge("level");
    gauge.set(10);
    gauge.add(5);
    gauge.sub(3);
    EXPECT_EQ(gauge.value(), 12);
    gauge.updateMax(7);  // lower than current: no-op
    EXPECT_EQ(gauge.value(), 12);
}

TEST(TelemetryRegistry, HistogramBucketsFollowBitWidth)
{
    MetricsRegistry registry;
    Histogram& hist = registry.histogram("lat_ns");

    hist.observe(0);  // bucket 0
    hist.observe(1);  // bucket 1 (bit_width 1)
    hist.observe(2);  // bucket 2
    hist.observe(3);  // bucket 2
    hist.observe(4);  // bucket 3
    hist.observe(7);  // bucket 3
    hist.observe(1024);  // bucket 11

    const auto buckets = hist.bucketCounts();
    EXPECT_EQ(buckets[0], 1u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[2], 2u);
    EXPECT_EQ(buckets[3], 2u);
    EXPECT_EQ(buckets[11], 1u);
    EXPECT_EQ(hist.count(), 7u);
    EXPECT_EQ(hist.sum(), 0u + 1 + 2 + 3 + 4 + 7 + 1024);
}

TEST(TelemetryRegistry, PrometheusTextExposition)
{
    MetricsRegistry registry;
    registry.counter("rsqp_test_total", "a test counter").add(42);
    registry.gauge("rsqp_test_depth", "a test gauge").set(-3);
    registry.histogram("rsqp_test_ns", "a test histogram").observe(5);
    registry
        .counter("rsqp_test_sessions_total{session=\"7\"}",
                 "per-session solves")
        .increment();

    const std::string text = registry.snapshot().toPrometheusText();
    EXPECT_NE(text.find("# HELP rsqp_test_total a test counter"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE rsqp_test_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("rsqp_test_total 42"), std::string::npos);
    EXPECT_NE(text.find("rsqp_test_depth -3"), std::string::npos);
    EXPECT_NE(text.find("# TYPE rsqp_test_ns histogram"),
              std::string::npos);
    EXPECT_NE(text.find("rsqp_test_ns_count 1"), std::string::npos);
    // The labeled family's TYPE line must use the bare family name.
    EXPECT_NE(text.find("# TYPE rsqp_test_sessions_total counter"),
              std::string::npos);
    EXPECT_NE(
        text.find("rsqp_test_sessions_total{session=\"7\"} 1"),
        std::string::npos);
}

TEST(TelemetryRegistry, JsonHasAllSections)
{
    MetricsRegistry registry;
    registry.counter("c_total").add(2);
    registry.gauge("g").set(9);
    registry.histogram("h").observe(16);

    const std::string json = registry.snapshot().toJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"c_total\":2"), std::string::npos);
    EXPECT_NE(json.find("\"g\":9"), std::string::npos);
}

TEST(TelemetryRegistry, SnapshotKeepsRegistrationOrder)
{
    MetricsRegistry registry;
    registry.counter("first_total");
    registry.counter("second_total");
    registry.counter("third_total");
    const MetricsSnapshot snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.counters.size(), 3u);
    EXPECT_EQ(snapshot.counters[0].name, "first_total");
    EXPECT_EQ(snapshot.counters[1].name, "second_total");
    EXPECT_EQ(snapshot.counters[2].name, "third_total");
    EXPECT_EQ(snapshot.findCounter("missing_total"), nullptr);
    EXPECT_EQ(snapshot.counterValue("missing_total", 123u), 123u);
}

TEST(TelemetryRegistry, RemoveCounterRetiresSeries)
{
    MetricsRegistry registry;
    registry.counter("keep_total").add(1);
    registry.counter("churn_total{session=\"1\"}").add(5);

    EXPECT_TRUE(registry.removeCounter("churn_total{session=\"1\"}"));
    EXPECT_FALSE(registry.removeCounter("churn_total{session=\"1\"}"));
    EXPECT_FALSE(registry.removeCounter("never_registered_total"));

    const MetricsSnapshot snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.counters.size(), 1u);
    EXPECT_EQ(snapshot.counters[0].name, "keep_total");
}

TEST(TelemetryRegistry, ReRegisteringRemovedNameStartsFresh)
{
    MetricsRegistry registry;
    registry.counter("churn_total{session=\"2\"}").add(7);
    ASSERT_TRUE(registry.removeCounter("churn_total{session=\"2\"}"));
    Counter& reborn = registry.counter("churn_total{session=\"2\"}");
    EXPECT_EQ(reborn.value(), 0u);
}

} // namespace
} // namespace rsqp::telemetry
