/**
 * @file
 * KKT assembly tests: structure of the assembled matrix, in-place rho
 * and matrix-value updates, and the matrix-free reduced operator
 * against explicit computation.
 */

#include <gtest/gtest.h>

#include "linalg/kkt.hpp"
#include "linalg/vector_ops.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

using test::randomSparse;
using test::randomSpdUpper;
using test::randomVector;

struct KktFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        Rng rng(5);
        p = randomSpdUpper(6, 0.4, rng);
        a = randomSparse(4, 6, 0.4, rng);
        rho = {0.5, 1.0, 2.0, 4.0};
        sigma = 1e-6;
    }

    CscMatrix p, a;
    Vector rho;
    Real sigma = 0.0;
};

TEST_F(KktFixture, AssembledMatrixHasExpectedBlocks)
{
    KktAssembler assembler(p, a, sigma, rho);
    const CscMatrix& kkt = assembler.kkt();
    EXPECT_EQ(kkt.rows(), 10);
    EXPECT_EQ(kkt.cols(), 10);
    EXPECT_TRUE(kkt.isValid());

    // (1,1) block: P + sigma I.
    for (Index i = 0; i < 6; ++i)
        for (Index j = i; j < 6; ++j) {
            const Real expected =
                p.coeff(i, j) + (i == j ? sigma : 0.0);
            EXPECT_NEAR(kkt.coeff(i, j), expected, 1e-15);
        }
    // (1,2) block: A' (stored as rows 0..5 of columns 6..9).
    for (Index i = 0; i < 4; ++i)
        for (Index j = 0; j < 6; ++j)
            EXPECT_DOUBLE_EQ(kkt.coeff(j, 6 + i), a.coeff(i, j));
    // (2,2) block: -1/rho diagonal.
    for (Index i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(kkt.coeff(6 + i, 6 + i),
                         -1.0 / rho[static_cast<std::size_t>(i)]);
}

TEST_F(KktFixture, UpdateRhoRewritesOnlyDiagonal)
{
    KktAssembler assembler(p, a, sigma, rho);
    Vector rho2 = {1.0, 1.0, 1.0, 1.0};
    assembler.updateRho(rho2);
    const CscMatrix& kkt = assembler.kkt();
    for (Index i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(kkt.coeff(6 + i, 6 + i), -1.0);
    // P block untouched.
    EXPECT_NEAR(kkt.coeff(0, 0), p.coeff(0, 0) + sigma, 1e-15);
}

TEST_F(KktFixture, UpdateMatricesRewritesValues)
{
    KktAssembler assembler(p, a, sigma, rho);
    std::vector<Real> p_values = p.values();
    for (Real& v : p_values)
        v *= 3.0;
    std::vector<Real> a_values = a.values();
    for (Real& v : a_values)
        v *= -2.0;
    assembler.updateMatrices(p_values, a_values);
    const CscMatrix& kkt = assembler.kkt();
    for (Index i = 0; i < 6; ++i)
        for (Index j = i; j < 6; ++j)
            EXPECT_NEAR(kkt.coeff(i, j),
                        3.0 * p.coeff(i, j) + (i == j ? sigma : 0.0),
                        1e-12);
    for (Index i = 0; i < 4; ++i)
        for (Index j = 0; j < 6; ++j)
            EXPECT_NEAR(kkt.coeff(j, 6 + i), -2.0 * a.coeff(i, j), 1e-12);
}

TEST(KktAssembler, MissingPDiagonalStillGetsSigma)
{
    // P with an empty column (variable without quadratic cost).
    TripletList p_triplets(3, 3);
    p_triplets.add(0, 0, 2.0);
    // column 1 empty; column 2 off-diagonal only.
    p_triplets.add(0, 2, 1.0);
    const CscMatrix p = CscMatrix::fromTriplets(p_triplets);
    Rng rng(3);
    const CscMatrix a = test::randomSparse(2, 3, 0.8, rng);
    KktAssembler assembler(p, a, 0.5, {1.0, 1.0});
    EXPECT_DOUBLE_EQ(assembler.kkt().coeff(1, 1), 0.5);
    EXPECT_DOUBLE_EQ(assembler.kkt().coeff(2, 2), 0.5);
    EXPECT_DOUBLE_EQ(assembler.kkt().coeff(0, 0), 2.5);
}

TEST_F(KktFixture, ReducedOperatorMatchesExplicit)
{
    ReducedKktOperator op(p, a, sigma, rho);
    Rng rng(11);
    const Vector x = randomVector(6, rng);
    Vector y;
    op.apply(x, y);

    // Explicit: P x + sigma x + A' diag(rho) A x.
    Vector px;
    p.spmvSymUpper(x, px);
    Vector ax;
    a.spmv(x, ax);
    for (std::size_t i = 0; i < ax.size(); ++i)
        ax[i] *= rho[i];
    Vector aty;
    a.spmvTranspose(ax, aty);
    for (Index j = 0; j < 6; ++j) {
        const auto s = static_cast<std::size_t>(j);
        EXPECT_NEAR(y[s], px[s] + sigma * x[s] + aty[s], 1e-12);
    }
}

TEST_F(KktFixture, ReducedOperatorDiagonal)
{
    ReducedKktOperator op(p, a, sigma, rho);
    const Vector diag = op.diagonal();
    // Compare against applying K to unit vectors.
    for (Index j = 0; j < 6; ++j) {
        Vector e(6, 0.0);
        e[static_cast<std::size_t>(j)] = 1.0;
        Vector ke;
        op.apply(e, ke);
        EXPECT_NEAR(diag[static_cast<std::size_t>(j)],
                    ke[static_cast<std::size_t>(j)], 1e-12);
    }
}

TEST_F(KktFixture, ReducedOperatorSetRho)
{
    ReducedKktOperator op(p, a, sigma, rho);
    Vector rho2 = {2.0, 2.0, 2.0, 2.0};
    op.setRho(rho2);
    ReducedKktOperator fresh(p, a, sigma, rho2);
    Rng rng(13);
    const Vector x = randomVector(6, rng);
    Vector y1, y2;
    op.apply(x, y1);
    fresh.apply(x, y2);
    test::expectVectorsNear(y1, y2, 1e-13, "setRho");
}

TEST_F(KktFixture, OperatorIsPositiveDefinite)
{
    ReducedKktOperator op(p, a, sigma, rho);
    Rng rng(17);
    for (int trial = 0; trial < 10; ++trial) {
        const Vector x = randomVector(6, rng);
        Vector kx;
        op.apply(x, kx);
        EXPECT_GT(dot(x, kx), 0.0);
    }
}

} // namespace
} // namespace rsqp
