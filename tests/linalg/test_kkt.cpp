/**
 * @file
 * KKT assembly tests: structure of the assembled matrix, in-place rho
 * and matrix-value updates, and the matrix-free reduced operator
 * against explicit computation.
 */

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "linalg/kkt.hpp"
#include "linalg/vector_ops.hpp"
#include "problems/suite.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

using test::randomSparse;
using test::randomSpdUpper;
using test::randomVector;

struct KktFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        Rng rng(5);
        p = randomSpdUpper(6, 0.4, rng);
        a = randomSparse(4, 6, 0.4, rng);
        rho = {0.5, 1.0, 2.0, 4.0};
        sigma = 1e-6;
    }

    CscMatrix p, a;
    Vector rho;
    Real sigma = 0.0;
};

TEST_F(KktFixture, AssembledMatrixHasExpectedBlocks)
{
    KktAssembler assembler(p, a, sigma, rho);
    const CscMatrix& kkt = assembler.kkt();
    EXPECT_EQ(kkt.rows(), 10);
    EXPECT_EQ(kkt.cols(), 10);
    EXPECT_TRUE(kkt.isValid());

    // (1,1) block: P + sigma I.
    for (Index i = 0; i < 6; ++i)
        for (Index j = i; j < 6; ++j) {
            const Real expected =
                p.coeff(i, j) + (i == j ? sigma : 0.0);
            EXPECT_NEAR(kkt.coeff(i, j), expected, 1e-15);
        }
    // (1,2) block: A' (stored as rows 0..5 of columns 6..9).
    for (Index i = 0; i < 4; ++i)
        for (Index j = 0; j < 6; ++j)
            EXPECT_DOUBLE_EQ(kkt.coeff(j, 6 + i), a.coeff(i, j));
    // (2,2) block: -1/rho diagonal.
    for (Index i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(kkt.coeff(6 + i, 6 + i),
                         -1.0 / rho[static_cast<std::size_t>(i)]);
}

TEST_F(KktFixture, UpdateRhoRewritesOnlyDiagonal)
{
    KktAssembler assembler(p, a, sigma, rho);
    Vector rho2 = {1.0, 1.0, 1.0, 1.0};
    assembler.updateRho(rho2);
    const CscMatrix& kkt = assembler.kkt();
    for (Index i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(kkt.coeff(6 + i, 6 + i), -1.0);
    // P block untouched.
    EXPECT_NEAR(kkt.coeff(0, 0), p.coeff(0, 0) + sigma, 1e-15);
}

TEST_F(KktFixture, UpdateMatricesRewritesValues)
{
    KktAssembler assembler(p, a, sigma, rho);
    std::vector<Real> p_values = p.values();
    for (Real& v : p_values)
        v *= 3.0;
    std::vector<Real> a_values = a.values();
    for (Real& v : a_values)
        v *= -2.0;
    assembler.updateMatrices(p_values, a_values);
    const CscMatrix& kkt = assembler.kkt();
    for (Index i = 0; i < 6; ++i)
        for (Index j = i; j < 6; ++j)
            EXPECT_NEAR(kkt.coeff(i, j),
                        3.0 * p.coeff(i, j) + (i == j ? sigma : 0.0),
                        1e-12);
    for (Index i = 0; i < 4; ++i)
        for (Index j = 0; j < 6; ++j)
            EXPECT_NEAR(kkt.coeff(j, 6 + i), -2.0 * a.coeff(i, j), 1e-12);
}

TEST(KktAssembler, MissingPDiagonalStillGetsSigma)
{
    // P with an empty column (variable without quadratic cost).
    TripletList p_triplets(3, 3);
    p_triplets.add(0, 0, 2.0);
    // column 1 empty; column 2 off-diagonal only.
    p_triplets.add(0, 2, 1.0);
    const CscMatrix p = CscMatrix::fromTriplets(p_triplets);
    Rng rng(3);
    const CscMatrix a = test::randomSparse(2, 3, 0.8, rng);
    KktAssembler assembler(p, a, 0.5, {1.0, 1.0});
    EXPECT_DOUBLE_EQ(assembler.kkt().coeff(1, 1), 0.5);
    EXPECT_DOUBLE_EQ(assembler.kkt().coeff(2, 2), 0.5);
    EXPECT_DOUBLE_EQ(assembler.kkt().coeff(0, 0), 2.5);
}

TEST_F(KktFixture, ReducedOperatorMatchesExplicit)
{
    ReducedKktOperator op(p, a, sigma, rho);
    Rng rng(11);
    const Vector x = randomVector(6, rng);
    Vector y;
    op.apply(x, y);

    // Explicit: P x + sigma x + A' diag(rho) A x.
    Vector px;
    p.spmvSymUpper(x, px);
    Vector ax;
    a.spmv(x, ax);
    for (std::size_t i = 0; i < ax.size(); ++i)
        ax[i] *= rho[i];
    Vector aty;
    a.spmvTranspose(ax, aty);
    for (Index j = 0; j < 6; ++j) {
        const auto s = static_cast<std::size_t>(j);
        EXPECT_NEAR(y[s], px[s] + sigma * x[s] + aty[s], 1e-12);
    }
}

TEST_F(KktFixture, ReducedOperatorDiagonal)
{
    ReducedKktOperator op(p, a, sigma, rho);
    const Vector diag = op.diagonal();
    // Compare against applying K to unit vectors.
    for (Index j = 0; j < 6; ++j) {
        Vector e(6, 0.0);
        e[static_cast<std::size_t>(j)] = 1.0;
        Vector ke;
        op.apply(e, ke);
        EXPECT_NEAR(diag[static_cast<std::size_t>(j)],
                    ke[static_cast<std::size_t>(j)], 1e-12);
    }
}

TEST_F(KktFixture, ReducedOperatorSetRho)
{
    ReducedKktOperator op(p, a, sigma, rho);
    Vector rho2 = {2.0, 2.0, 2.0, 2.0};
    op.setRho(rho2);
    ReducedKktOperator fresh(p, a, sigma, rho2);
    Rng rng(13);
    const Vector x = randomVector(6, rng);
    Vector y1, y2;
    op.apply(x, y1);
    fresh.apply(x, y2);
    test::expectVectorsNear(y1, y2, 1e-13, "setRho");
}

/**
 * The retired column-scatter application of K, kept as the numerical
 * reference for the CSR row-gather path: spmvSymUpper for P, CSC spmv
 * + rho scale for the A pass, spmvTransposeAccumulate for A'. Rows
 * with fewer than 8 non-zeros still match it bit for bit (the striped
 * kernel's tail is the retired serial loop); longer rows reduce in
 * the canonical 8-lane striped order and agree to rounding only —
 * the bitwise contract is now cross-thread and cross-ISA instead
 * (see ApplyBitwiseIdenticalAcrossThreadCounts and
 * tests/linalg/test_simd_kernels.cpp).
 */
Vector
applyReferenceCsc(const CscMatrix& p, const CscMatrix& a, Real sigma,
                  const Vector& rho, const Vector& x)
{
    Vector y;
    p.spmvSymUpper(x, y);
    axpy(sigma, x, y);
    Vector ax;
    a.spmv(x, ax);
    for (std::size_t i = 0; i < ax.size(); ++i)
        ax[i] *= rho[i];
    a.spmvTransposeAccumulate(ax, y, 1.0);
    return y;
}

TEST_F(KktFixture, CsrApplyMatchesRetiredCscPathExactly)
{
    ReducedKktOperator op(p, a, sigma, rho);
    Rng rng(23);
    for (int trial = 0; trial < 20; ++trial) {
        const Vector x = randomVector(6, rng);
        Vector y;
        op.apply(x, y);
        // Exact equality, not an epsilon: the CSR mirrors replay the
        // retired summation order term for term.
        EXPECT_EQ(y, applyReferenceCsc(p, a, sigma, rho, x))
            << "trial " << trial;
    }
}

TEST(ReducedKktOperator, CsrApplyMatchesCscOnRandomShapes)
{
    Rng rng(29);
    for (int trial = 0; trial < 12; ++trial) {
        const Index n = 1 + rng.uniformIndex(40);
        const Index m = rng.uniformIndex(30);
        const CscMatrix p = randomSpdUpper(n, 0.35, rng);
        const CscMatrix a = randomSparse(m, n, 0.3, rng);
        Vector rho(static_cast<std::size_t>(m));
        for (Real& v : rho)
            v = 0.1 + std::abs(rng.normal());
        const Real sigma = 1e-6;

        ReducedKktOperator op(p, a, sigma, rho);
        const Vector x = randomVector(n, rng);
        Vector y;
        op.apply(x, y);
        const Vector y_ref = applyReferenceCsc(p, a, sigma, rho, x);
        // Rows can exceed 8 nnz here, so the striped reduction order
        // differs from the serial reference: rounding-level tolerance.
        test::expectVectorsNear(y, y_ref, 1e-12, "random shapes");
    }
}

TEST(ReducedKktOperator, CsrApplyMatchesCscOnSuiteProblems)
{
    // One problem per domain: realistic sparsity structure, agreeing
    // with the retired CSC path to rounding (long rows reduce in the
    // striped kernel order).
    for (Domain domain : allDomains()) {
        const QpProblem qp = generateProblem(domain, 120, 77);
        const Index n = qp.numVariables();
        const Index m = qp.numConstraints();
        Vector rho(static_cast<std::size_t>(m), 0.25);
        const Real sigma = 1e-6;

        ReducedKktOperator op(qp.pUpper, qp.a, sigma, rho);
        Rng rng(31);
        const Vector x = randomVector(n, rng);
        Vector y;
        op.apply(x, y);
        const Vector y_ref =
            applyReferenceCsc(qp.pUpper, qp.a, sigma, rho, x);
        test::expectVectorsNear(y, y_ref, 1e-12, toString(domain));
    }
}

TEST(ReducedKktOperator, ApplyBitwiseIdenticalAcrossThreadCounts)
{
    // Big enough (n above kParallelThreshold) that the row-gathers fan
    // out across the pool; the fixed-grain reduction contract makes
    // the output thread-invariant.
    const QpProblem qp = generateProblem(Domain::Lasso, 5000, 78);
    Vector rho(static_cast<std::size_t>(qp.numConstraints()), 0.4);
    ReducedKktOperator op(qp.pUpper, qp.a, 1e-6, rho);
    Rng rng(37);
    const Vector x = randomVector(qp.numVariables(), rng);

    Vector y_ref;
    {
        NumThreadsScope scope(1);
        op.apply(x, y_ref);
    }
    for (Index threads : {2, 4, 8}) {
        NumThreadsScope scope(threads);
        Vector y;
        op.apply(x, y);
        ASSERT_EQ(y, y_ref) << "threads " << threads;
    }
}

TEST_F(KktFixture, ApplyAMatchesCscSpmv)
{
    ReducedKktOperator op(p, a, sigma, rho);
    Rng rng(41);
    const Vector x = randomVector(6, rng);
    Vector z, z_ref;
    op.applyA(x, z);
    a.spmv(x, z_ref);
    EXPECT_EQ(z, z_ref);
}

TEST_F(KktFixture, AccumulateAtRhoMatchesComposedReference)
{
    ReducedKktOperator op(p, a, sigma, rho);
    Rng rng(43);
    const Vector w = randomVector(4, rng);
    Vector y = randomVector(6, rng);
    Vector y_ref = y;

    op.accumulateAtRho(w, y);
    Vector scaled = w;
    for (std::size_t i = 0; i < scaled.size(); ++i)
        scaled[i] *= rho[i];
    a.spmvTransposeAccumulate(scaled, y_ref, 1.0);
    EXPECT_EQ(y, y_ref);
}

TEST_F(KktFixture, RefreshValuesTracksRewrittenMatrices)
{
    // The operator shares P/A storage with the caller; rewriting the
    // values in place and calling refreshValues must be equivalent to
    // constructing a fresh operator on the new values.
    CscMatrix p2 = p;
    CscMatrix a2 = a;
    ReducedKktOperator op(p2, a2, sigma, rho);

    for (Real& v : p2.values())
        v *= 1.5;
    for (Real& v : a2.values())
        v *= -0.5;
    op.refreshValues();

    ReducedKktOperator fresh(p2, a2, sigma, rho);
    Rng rng(47);
    const Vector x = randomVector(6, rng);
    Vector y, y_fresh;
    op.apply(x, y);
    fresh.apply(x, y_fresh);
    EXPECT_EQ(y, y_fresh);
    EXPECT_EQ(op.diagonal(), fresh.diagonal());
}

TEST(ReducedKktOperator, SetRhoMatchesFreshDiagonalExactly)
{
    // setRho refreshes the cached diagonal from the rho-independent
    // parts in O(nnz(A)); the result must equal a fresh construction.
    Rng rng(53);
    const CscMatrix p = randomSpdUpper(15, 0.3, rng);
    const CscMatrix a = randomSparse(10, 15, 0.3, rng);
    Vector rho1(10, 0.5);
    Vector rho2(10);
    for (Real& v : rho2)
        v = 0.1 + std::abs(rng.normal());

    ReducedKktOperator op(p, a, 1e-6, rho1);
    op.setRho(rho2);
    ReducedKktOperator fresh(p, a, 1e-6, rho2);
    EXPECT_EQ(op.diagonal(), fresh.diagonal());
}

TEST(ReducedKktOperator, HandlesUnconstrainedProblems)
{
    // m = 0 (the ExactInNSteps setup): K = P + sigma I, every A pass a
    // no-op on empty arrays.
    Rng rng(59);
    const CscMatrix p = randomSpdUpper(7, 0.5, rng);
    const CscMatrix a(0, 7);
    ReducedKktOperator op(p, a, 1e-6, Vector{});
    const Vector x = randomVector(7, rng);
    Vector y;
    op.apply(x, y);
    EXPECT_EQ(y, applyReferenceCsc(p, a, 1e-6, Vector{}, x));
    Vector z;
    op.applyA(x, z);
    EXPECT_TRUE(z.empty());
}

TEST_F(KktFixture, OperatorIsPositiveDefinite)
{
    ReducedKktOperator op(p, a, sigma, rho);
    Rng rng(17);
    for (int trial = 0; trial < 10; ++trial) {
        const Vector x = randomVector(6, rng);
        Vector kx;
        op.apply(x, kx);
        EXPECT_GT(dot(x, kx), 0.0);
    }
}

} // namespace
} // namespace rsqp
