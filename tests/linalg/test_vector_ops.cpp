/**
 * @file
 * Dense vector kernel tests (the Table 1 "Vector Operations").
 */

#include <cstring>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "linalg/vector_ops.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

TEST(VectorOps, Axpby)
{
    const Vector x = {1.0, 2.0};
    const Vector y = {10.0, 20.0};
    Vector out;
    axpby(2.0, x, 0.5, y, out);
    EXPECT_DOUBLE_EQ(out[0], 7.0);
    EXPECT_DOUBLE_EQ(out[1], 14.0);
}

TEST(VectorOps, AxpbyAliasesSafely)
{
    Vector x = {1.0, -1.0};
    const Vector y = {3.0, 4.0};
    axpby(1.0, x, 1.0, y, x);
    EXPECT_DOUBLE_EQ(x[0], 4.0);
    EXPECT_DOUBLE_EQ(x[1], 3.0);
}

TEST(VectorOps, DotAndNorms)
{
    const Vector x = {3.0, -4.0};
    EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
    EXPECT_DOUBLE_EQ(norm2(x), 5.0);
    EXPECT_DOUBLE_EQ(normInf(x), 4.0);
}

TEST(VectorOps, NormInfDiff)
{
    EXPECT_DOUBLE_EQ(normInfDiff({1.0, 2.0}, {1.5, 1.0}), 1.0);
}

TEST(VectorOps, ElementwiseFamily)
{
    const Vector x = {2.0, -3.0};
    const Vector y = {4.0, 2.0};
    Vector out;
    ewProduct(x, y, out);
    EXPECT_DOUBLE_EQ(out[0], 8.0);
    EXPECT_DOUBLE_EQ(out[1], -6.0);
    ewMin(x, y, out);
    EXPECT_DOUBLE_EQ(out[0], 2.0);
    EXPECT_DOUBLE_EQ(out[1], -3.0);
    ewMax(x, y, out);
    EXPECT_DOUBLE_EQ(out[0], 4.0);
    EXPECT_DOUBLE_EQ(out[1], 2.0);
    ewReciprocal(y, out);
    EXPECT_DOUBLE_EQ(out[0], 0.25);
    EXPECT_DOUBLE_EQ(out[1], 0.5);
}

TEST(VectorOps, ClampIsProjection)
{
    const Vector x = {-5.0, 0.5, 9.0};
    const Vector lo = {0.0, 0.0, 0.0};
    const Vector hi = {1.0, 1.0, 1.0};
    Vector out;
    ewClamp(x, lo, hi, out);
    EXPECT_DOUBLE_EQ(out[0], 0.0);
    EXPECT_DOUBLE_EQ(out[1], 0.5);
    EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST(VectorOps, SqrtAndFinite)
{
    Vector out;
    ewSqrt({4.0, 9.0}, out);
    EXPECT_DOUBLE_EQ(out[0], 2.0);
    EXPECT_DOUBLE_EQ(out[1], 3.0);
    EXPECT_TRUE(allFinite(out));
    out[0] = std::numeric_limits<Real>::infinity();
    EXPECT_FALSE(allFinite(out));
}

TEST(VectorOps, SizeMismatchPanicsInDebugPath)
{
    // Size mismatches are programming errors; they abort via
    // RSQP_ASSERT (panic), so we only verify matching sizes work and
    // document the contract here.
    Vector out;
    axpby(1.0, {1.0}, 1.0, {2.0}, out);
    EXPECT_DOUBLE_EQ(out[0], 3.0);
}

TEST(VectorOps, ReciprocalOfZeroIsFatal)
{
    Vector out;
    // ewReciprocal asserts on zero; RSQP_ASSERT aborts, so this is
    // exercised only through the death-test API.
    EXPECT_DEATH(ewReciprocal({0.0}, out), "ewReciprocal");
}

TEST(VectorOps, ConstantVector)
{
    const Vector v = constantVector(4, 2.5);
    ASSERT_EQ(v.size(), 4u);
    for (Real x : v)
        EXPECT_DOUBLE_EQ(x, 2.5);
}

/** Random vector comfortably above the parallel threshold. */
Vector
bigRandomVector(Index n, std::uint64_t seed)
{
    Rng rng(seed);
    Vector x(static_cast<std::size_t>(n));
    for (Real& v : x)
        v = rng.normal();
    return x;
}

TEST(ThreadedVectorOps, DotBitwiseIdenticalAcrossThreadCounts)
{
    const Index n = 3 * kParallelThreshold + 137;
    const Vector x = bigRandomVector(n, 11);
    const Vector y = bigRandomVector(n, 12);

    Real reference;
    {
        NumThreadsScope scope(1);
        reference = dot(x, y);
    }
    for (Index threads : {2, 4, 8}) {
        NumThreadsScope scope(threads);
        for (int repeat = 0; repeat < 3; ++repeat) {
            const Real value = dot(x, y);
            ASSERT_EQ(std::memcmp(&reference, &value, sizeof(Real)), 0)
                << "threads " << threads << " repeat " << repeat;
        }
    }
}

TEST(ThreadedVectorOps, Norm2AndNormInfBitwiseStable)
{
    const Index n = 2 * kParallelThreshold + 41;
    const Vector x = bigRandomVector(n, 13);
    Real n2_ref, ninf_ref;
    {
        NumThreadsScope scope(1);
        n2_ref = norm2(x);
        ninf_ref = normInf(x);
    }
    for (Index threads : {2, 8}) {
        NumThreadsScope scope(threads);
        const Real n2 = norm2(x);
        const Real ninf = normInf(x);
        EXPECT_EQ(std::memcmp(&n2_ref, &n2, sizeof(Real)), 0);
        EXPECT_EQ(ninf_ref, ninf);
    }
}

TEST(ThreadedVectorOps, ElementwiseKernelsMatchSerialBitwise)
{
    const Index n = 2 * kParallelThreshold + 7;
    const Vector x = bigRandomVector(n, 14);
    const Vector y = bigRandomVector(n, 15);
    Vector lo(x.size(), -0.5), hi(x.size(), 0.5);

    Vector axpby_s, prod_s, clamp_s, axpy_s = y;
    Vector axpby_p, prod_p, clamp_p, axpy_p = y;
    {
        NumThreadsScope scope(1);
        axpby(1.5, x, -0.25, y, axpby_s);
        ewProduct(x, y, prod_s);
        ewClamp(x, lo, hi, clamp_s);
        axpy(0.75, x, axpy_s);
    }
    {
        NumThreadsScope scope(8);
        axpby(1.5, x, -0.25, y, axpby_p);
        ewProduct(x, y, prod_p);
        ewClamp(x, lo, hi, clamp_p);
        axpy(0.75, x, axpy_p);
    }
    EXPECT_EQ(axpby_s, axpby_p);
    EXPECT_EQ(prod_s, prod_p);
    EXPECT_EQ(clamp_s, clamp_p);
    EXPECT_EQ(axpy_s, axpy_p);
}

TEST(ThreadedVectorOps, SmallVectorsKeepTheLegacySerialPath)
{
    // Below the threshold the kernels must not touch the pool: the
    // plain left-to-right sum is the legacy (pre-threading) result.
    const Index n = kParallelThreshold - 1;
    const Vector x = bigRandomVector(n, 16);
    Real expected = 0.0;
    for (Real v : x)
        expected += v * v;
    NumThreadsScope scope(8);
    const Real value = dot(x, x);
    EXPECT_EQ(std::memcmp(&expected, &value, sizeof(Real)), 0);
}

} // namespace
} // namespace rsqp
