/**
 * @file
 * Dense vector kernel tests (the Table 1 "Vector Operations").
 */

#include <cstring>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "linalg/vector_ops.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

TEST(VectorOps, Axpby)
{
    const Vector x = {1.0, 2.0};
    const Vector y = {10.0, 20.0};
    Vector out;
    axpby(2.0, x, 0.5, y, out);
    EXPECT_DOUBLE_EQ(out[0], 7.0);
    EXPECT_DOUBLE_EQ(out[1], 14.0);
}

TEST(VectorOps, AxpbyAliasesSafely)
{
    Vector x = {1.0, -1.0};
    const Vector y = {3.0, 4.0};
    axpby(1.0, x, 1.0, y, x);
    EXPECT_DOUBLE_EQ(x[0], 4.0);
    EXPECT_DOUBLE_EQ(x[1], 3.0);
}

TEST(VectorOps, DotAndNorms)
{
    const Vector x = {3.0, -4.0};
    EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
    EXPECT_DOUBLE_EQ(norm2(x), 5.0);
    EXPECT_DOUBLE_EQ(normInf(x), 4.0);
}

TEST(VectorOps, NormInfDiff)
{
    EXPECT_DOUBLE_EQ(normInfDiff({1.0, 2.0}, {1.5, 1.0}), 1.0);
}

TEST(VectorOps, ElementwiseFamily)
{
    const Vector x = {2.0, -3.0};
    const Vector y = {4.0, 2.0};
    Vector out;
    ewProduct(x, y, out);
    EXPECT_DOUBLE_EQ(out[0], 8.0);
    EXPECT_DOUBLE_EQ(out[1], -6.0);
    ewMin(x, y, out);
    EXPECT_DOUBLE_EQ(out[0], 2.0);
    EXPECT_DOUBLE_EQ(out[1], -3.0);
    ewMax(x, y, out);
    EXPECT_DOUBLE_EQ(out[0], 4.0);
    EXPECT_DOUBLE_EQ(out[1], 2.0);
    ewReciprocal(y, out);
    EXPECT_DOUBLE_EQ(out[0], 0.25);
    EXPECT_DOUBLE_EQ(out[1], 0.5);
}

TEST(VectorOps, ClampIsProjection)
{
    const Vector x = {-5.0, 0.5, 9.0};
    const Vector lo = {0.0, 0.0, 0.0};
    const Vector hi = {1.0, 1.0, 1.0};
    Vector out;
    ewClamp(x, lo, hi, out);
    EXPECT_DOUBLE_EQ(out[0], 0.0);
    EXPECT_DOUBLE_EQ(out[1], 0.5);
    EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST(VectorOps, SqrtAndFinite)
{
    Vector out;
    ewSqrt({4.0, 9.0}, out);
    EXPECT_DOUBLE_EQ(out[0], 2.0);
    EXPECT_DOUBLE_EQ(out[1], 3.0);
    EXPECT_TRUE(allFinite(out));
    out[0] = std::numeric_limits<Real>::infinity();
    EXPECT_FALSE(allFinite(out));
}

TEST(VectorOps, SizeMismatchPanicsInDebugPath)
{
    // Size mismatches are programming errors; they abort via
    // RSQP_ASSERT (panic), so we only verify matching sizes work and
    // document the contract here.
    Vector out;
    axpby(1.0, {1.0}, 1.0, {2.0}, out);
    EXPECT_DOUBLE_EQ(out[0], 3.0);
}

TEST(VectorOps, ReciprocalOfZeroIsFatal)
{
    Vector out;
    // ewReciprocal asserts on zero; RSQP_ASSERT aborts, so this is
    // exercised only through the death-test API.
    EXPECT_DEATH(ewReciprocal({0.0}, out), "ewReciprocal");
}

TEST(VectorOps, ConstantVector)
{
    const Vector v = constantVector(4, 2.5);
    ASSERT_EQ(v.size(), 4u);
    for (Real x : v)
        EXPECT_DOUBLE_EQ(x, 2.5);
}

/** Random vector comfortably above the parallel threshold. */
Vector
bigRandomVector(Index n, std::uint64_t seed)
{
    Rng rng(seed);
    Vector x(static_cast<std::size_t>(n));
    for (Real& v : x)
        v = rng.normal();
    return x;
}

TEST(ThreadedVectorOps, DotBitwiseIdenticalAcrossThreadCounts)
{
    const Index n = 3 * kParallelThreshold + 137;
    const Vector x = bigRandomVector(n, 11);
    const Vector y = bigRandomVector(n, 12);

    Real reference;
    {
        NumThreadsScope scope(1);
        reference = dot(x, y);
    }
    for (Index threads : {2, 4, 8}) {
        NumThreadsScope scope(threads);
        for (int repeat = 0; repeat < 3; ++repeat) {
            const Real value = dot(x, y);
            ASSERT_EQ(std::memcmp(&reference, &value, sizeof(Real)), 0)
                << "threads " << threads << " repeat " << repeat;
        }
    }
}

TEST(ThreadedVectorOps, Norm2AndNormInfBitwiseStable)
{
    const Index n = 2 * kParallelThreshold + 41;
    const Vector x = bigRandomVector(n, 13);
    Real n2_ref, ninf_ref;
    {
        NumThreadsScope scope(1);
        n2_ref = norm2(x);
        ninf_ref = normInf(x);
    }
    for (Index threads : {2, 8}) {
        NumThreadsScope scope(threads);
        const Real n2 = norm2(x);
        const Real ninf = normInf(x);
        EXPECT_EQ(std::memcmp(&n2_ref, &n2, sizeof(Real)), 0);
        EXPECT_EQ(ninf_ref, ninf);
    }
}

TEST(ThreadedVectorOps, ElementwiseKernelsMatchSerialBitwise)
{
    const Index n = 2 * kParallelThreshold + 7;
    const Vector x = bigRandomVector(n, 14);
    const Vector y = bigRandomVector(n, 15);
    Vector lo(x.size(), -0.5), hi(x.size(), 0.5);

    Vector axpby_s, prod_s, clamp_s, axpy_s = y;
    Vector axpby_p, prod_p, clamp_p, axpy_p = y;
    {
        NumThreadsScope scope(1);
        axpby(1.5, x, -0.25, y, axpby_s);
        ewProduct(x, y, prod_s);
        ewClamp(x, lo, hi, clamp_s);
        axpy(0.75, x, axpy_s);
    }
    {
        NumThreadsScope scope(8);
        axpby(1.5, x, -0.25, y, axpby_p);
        ewProduct(x, y, prod_p);
        ewClamp(x, lo, hi, clamp_p);
        axpy(0.75, x, axpy_p);
    }
    EXPECT_EQ(axpby_s, axpby_p);
    EXPECT_EQ(prod_s, prod_p);
    EXPECT_EQ(clamp_s, clamp_p);
    EXPECT_EQ(axpy_s, axpy_p);
}

/**
 * The fused CG kernels must match the composed reference ops bit for
 * bit — the PCG loop's determinism contract rests on it. Sizes cover
 * the plain-serial gate (below kParallelThreshold), the chunked path,
 * and an odd length that leaves a ragged final chunk.
 */
class FusedKernels : public ::testing::TestWithParam<Index>
{
};

INSTANTIATE_TEST_SUITE_P(Sizes, FusedKernels,
                         ::testing::Values(Index{0}, Index{1}, Index{7},
                                           kParallelThreshold - 1,
                                           kParallelThreshold,
                                           2 * kParallelThreshold + 4095,
                                           3 * kParallelThreshold + 137));

TEST_P(FusedKernels, AxpyDotMatchesComposedBitwise)
{
    const Index n = GetParam();
    const Vector x = bigRandomVector(n, 21);
    const Vector z = bigRandomVector(n, 22);
    Vector y_fused = bigRandomVector(n, 23);
    Vector y_ref = y_fused;

    const Real fused = axpyDot(0.375, x, y_fused, z);
    axpy(0.375, x, y_ref);
    const Real ref = dot(y_ref, z);

    EXPECT_EQ(y_fused, y_ref);
    EXPECT_EQ(std::memcmp(&fused, &ref, sizeof(Real)), 0);
}

TEST_P(FusedKernels, AxpyDotAllowsZAliasingY)
{
    const Index n = GetParam();
    const Vector x = bigRandomVector(n, 24);
    Vector y = bigRandomVector(n, 25);
    Vector y_ref = y;

    const Real fused = axpyDot(-1.25, x, y, y);  // returns ||y_new||^2
    axpy(-1.25, x, y_ref);
    const Real ref = dot(y_ref, y_ref);

    EXPECT_EQ(y, y_ref);
    EXPECT_EQ(std::memcmp(&fused, &ref, sizeof(Real)), 0);
}

TEST_P(FusedKernels, XMinusAlphaPDotMatchesComposedBitwise)
{
    const Index n = GetParam();
    const Vector p = bigRandomVector(n, 26);
    const Vector kp = bigRandomVector(n, 27);
    Vector x_fused = bigRandomVector(n, 28);
    Vector r_fused = bigRandomVector(n, 29);
    Vector x_ref = x_fused;
    Vector r_ref = r_fused;

    const Real fused = xMinusAlphaPDot(0.625, p, x_fused, kp, r_fused);
    axpy(0.625, p, x_ref);
    axpy(-0.625, kp, r_ref);
    const Real ref = dot(r_ref, r_ref);

    EXPECT_EQ(x_fused, x_ref);
    EXPECT_EQ(r_fused, r_ref);
    EXPECT_EQ(std::memcmp(&fused, &ref, sizeof(Real)), 0);
}

TEST_P(FusedKernels, PrecondApplyDotMatchesComposedBitwise)
{
    const Index n = GetParam();
    const Vector r = bigRandomVector(n, 30);
    Vector inv_diag = bigRandomVector(n, 31);
    for (Real& v : inv_diag)
        v = 0.5 + std::abs(v);
    Vector d_fused(static_cast<std::size_t>(n), 0.0);
    Vector d_ref;

    const Real fused = precondApplyDot(inv_diag, r, d_fused);
    ewProduct(inv_diag, r, d_ref);
    const Real ref = dot(r, d_ref);

    EXPECT_EQ(d_fused, d_ref);
    EXPECT_EQ(std::memcmp(&fused, &ref, sizeof(Real)), 0);
}

TEST_P(FusedKernels, BitwiseIdenticalAcrossThreadCounts)
{
    const Index n = GetParam();
    const Vector x = bigRandomVector(n, 32);
    const Vector z = bigRandomVector(n, 33);
    const Vector y0 = bigRandomVector(n, 34);

    Vector y_ref = y0;
    Real sum_ref;
    {
        NumThreadsScope scope(1);
        sum_ref = axpyDot(0.875, x, y_ref, z);
    }
    for (Index threads : {2, 4, 8}) {
        NumThreadsScope scope(threads);
        Vector y = y0;
        const Real sum = axpyDot(0.875, x, y, z);
        ASSERT_EQ(y, y_ref) << "threads " << threads;
        ASSERT_EQ(std::memcmp(&sum, &sum_ref, sizeof(Real)), 0)
            << "threads " << threads;
    }
}

TEST(FusedKernelEdgeCases, EmptyVectorsReturnZero)
{
    Vector empty;
    const Vector cempty;
    EXPECT_EQ(axpyDot(2.0, cempty, empty, cempty), 0.0);
    EXPECT_EQ(xMinusAlphaPDot(2.0, cempty, empty, cempty, empty), 0.0);
    EXPECT_EQ(precondApplyDot(cempty, cempty, empty), 0.0);
}

TEST(FusedKernelEdgeCases, NonFiniteInputsPropagate)
{
    // The PCG loop detects breakdowns by testing the returned scalar
    // with std::isfinite; the fused kernels must let NaN/inf through
    // rather than mask them.
    const Real nan = std::numeric_limits<Real>::quiet_NaN();
    const Real inf = std::numeric_limits<Real>::infinity();

    Vector y = {1.0, 2.0, 3.0};
    EXPECT_TRUE(std::isnan(axpyDot(1.0, {0.0, nan, 0.0}, y, y)));

    Vector x = {1.0, 1.0};
    Vector r = {1.0, 1.0};
    EXPECT_TRUE(std::isinf(
        xMinusAlphaPDot(1.0, {0.0, 0.0}, x, {0.0, -inf}, r)));

    Vector d(3, 0.0);
    EXPECT_TRUE(
        std::isnan(precondApplyDot({1.0, 1.0, 1.0}, {nan, 0.0, 1.0}, d)));
}

TEST(FusedKernelEdgeCases, OutputsAreNeverResized)
{
    // The fused kernels write into preallocated workspace; a silent
    // resize would defeat the allocation-free steady state. Matching
    // sizes must work; mismatches abort via RSQP_ASSERT (documented
    // contract, exercised by the death-test API).
    Vector d = {0.0};
    EXPECT_DOUBLE_EQ(precondApplyDot({2.0}, {3.0}, d), 18.0);
    EXPECT_EQ(d.size(), 1u);
    Vector d_wrong(2, 0.0);
    EXPECT_DEATH(precondApplyDot({2.0}, {3.0}, d_wrong),
                 "precondApplyDot");
}

TEST(ThreadedVectorOps, SmallVectorsKeepTheLegacySerialPath)
{
    // Below the threshold the kernels must not touch the pool: the
    // plain left-to-right sum is the legacy (pre-threading) result.
    const Index n = kParallelThreshold - 1;
    const Vector x = bigRandomVector(n, 16);
    Real expected = 0.0;
    for (Real v : x)
        expected += v * v;
    NumThreadsScope scope(8);
    const Real value = dot(x, x);
    EXPECT_EQ(std::memcmp(&expected, &value, sizeof(Real)), 0);
}

} // namespace
} // namespace rsqp
