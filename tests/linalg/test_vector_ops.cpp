/**
 * @file
 * Dense vector kernel tests (the Table 1 "Vector Operations").
 */

#include <gtest/gtest.h>

#include "linalg/vector_ops.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

TEST(VectorOps, Axpby)
{
    const Vector x = {1.0, 2.0};
    const Vector y = {10.0, 20.0};
    Vector out;
    axpby(2.0, x, 0.5, y, out);
    EXPECT_DOUBLE_EQ(out[0], 7.0);
    EXPECT_DOUBLE_EQ(out[1], 14.0);
}

TEST(VectorOps, AxpbyAliasesSafely)
{
    Vector x = {1.0, -1.0};
    const Vector y = {3.0, 4.0};
    axpby(1.0, x, 1.0, y, x);
    EXPECT_DOUBLE_EQ(x[0], 4.0);
    EXPECT_DOUBLE_EQ(x[1], 3.0);
}

TEST(VectorOps, DotAndNorms)
{
    const Vector x = {3.0, -4.0};
    EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
    EXPECT_DOUBLE_EQ(norm2(x), 5.0);
    EXPECT_DOUBLE_EQ(normInf(x), 4.0);
}

TEST(VectorOps, NormInfDiff)
{
    EXPECT_DOUBLE_EQ(normInfDiff({1.0, 2.0}, {1.5, 1.0}), 1.0);
}

TEST(VectorOps, ElementwiseFamily)
{
    const Vector x = {2.0, -3.0};
    const Vector y = {4.0, 2.0};
    Vector out;
    ewProduct(x, y, out);
    EXPECT_DOUBLE_EQ(out[0], 8.0);
    EXPECT_DOUBLE_EQ(out[1], -6.0);
    ewMin(x, y, out);
    EXPECT_DOUBLE_EQ(out[0], 2.0);
    EXPECT_DOUBLE_EQ(out[1], -3.0);
    ewMax(x, y, out);
    EXPECT_DOUBLE_EQ(out[0], 4.0);
    EXPECT_DOUBLE_EQ(out[1], 2.0);
    ewReciprocal(y, out);
    EXPECT_DOUBLE_EQ(out[0], 0.25);
    EXPECT_DOUBLE_EQ(out[1], 0.5);
}

TEST(VectorOps, ClampIsProjection)
{
    const Vector x = {-5.0, 0.5, 9.0};
    const Vector lo = {0.0, 0.0, 0.0};
    const Vector hi = {1.0, 1.0, 1.0};
    Vector out;
    ewClamp(x, lo, hi, out);
    EXPECT_DOUBLE_EQ(out[0], 0.0);
    EXPECT_DOUBLE_EQ(out[1], 0.5);
    EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST(VectorOps, SqrtAndFinite)
{
    Vector out;
    ewSqrt({4.0, 9.0}, out);
    EXPECT_DOUBLE_EQ(out[0], 2.0);
    EXPECT_DOUBLE_EQ(out[1], 3.0);
    EXPECT_TRUE(allFinite(out));
    out[0] = std::numeric_limits<Real>::infinity();
    EXPECT_FALSE(allFinite(out));
}

TEST(VectorOps, SizeMismatchPanicsInDebugPath)
{
    // Size mismatches are programming errors; they abort via
    // RSQP_ASSERT (panic), so we only verify matching sizes work and
    // document the contract here.
    Vector out;
    axpby(1.0, {1.0}, 1.0, {2.0}, out);
    EXPECT_DOUBLE_EQ(out[0], 3.0);
}

TEST(VectorOps, ReciprocalOfZeroIsFatal)
{
    Vector out;
    // ewReciprocal asserts on zero; RSQP_ASSERT aborts, so this is
    // exercised only through the death-test API.
    EXPECT_DEATH(ewReciprocal({0.0}, out), "ewReciprocal");
}

TEST(VectorOps, ConstantVector)
{
    const Vector v = constantVector(4, 2.5);
    ASSERT_EQ(v.size(), 4u);
    for (Real x : v)
        EXPECT_DOUBLE_EQ(x, 2.5);
}

} // namespace
} // namespace rsqp
