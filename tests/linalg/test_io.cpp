/**
 * @file
 * Serialization tests: MatrixMarket round trips (general and
 * symmetric) and whole-problem save/load across every benchmark
 * domain.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "linalg/io.hpp"
#include "osqp/problem_io.hpp"
#include "osqp/solver.hpp"
#include "problems/suite.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

TEST(MatrixMarket, GeneralRoundTrip)
{
    Rng rng(1);
    const CscMatrix matrix = test::randomSparse(9, 6, 0.3, rng);
    std::stringstream ss;
    writeMatrixMarket(ss, matrix);
    const CscMatrix back = readMatrixMarket(ss);
    EXPECT_TRUE(matrix == back);
}

TEST(MatrixMarket, SymmetricRoundTrip)
{
    Rng rng(2);
    const CscMatrix upper = test::randomSpdUpper(8, 0.4, rng);
    std::stringstream ss;
    writeMatrixMarket(ss, upper, /*symmetric_upper=*/true);
    // The file advertises itself as symmetric.
    EXPECT_NE(ss.str().find("symmetric"), std::string::npos);
    const CscMatrix back = readMatrixMarket(ss);
    EXPECT_TRUE(upper == back);
}

TEST(MatrixMarket, RejectsGarbage)
{
    std::stringstream empty;
    EXPECT_THROW(readMatrixMarket(empty), FatalError);
    std::stringstream bad("%%MatrixMarket matrix array real general\n");
    EXPECT_THROW(readMatrixMarket(bad), FatalError);
    std::stringstream truncated(
        "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 "
        "5.0\n");
    EXPECT_THROW(readMatrixMarket(truncated), FatalError);
}

TEST(MatrixMarket, ValuesExact)
{
    TripletList triplets(2, 2);
    triplets.add(0, 0, 1.0 / 3.0);
    triplets.add(1, 1, -2.718281828459045);
    const CscMatrix matrix = CscMatrix::fromTriplets(triplets);
    std::stringstream ss;
    writeMatrixMarket(ss, matrix);
    const CscMatrix back = readMatrixMarket(ss);
    EXPECT_DOUBLE_EQ(back.coeff(0, 0), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(back.coeff(1, 1), -2.718281828459045);
}

TEST(ProblemIo, RoundTripPreservesSolution)
{
    const QpProblem qp = generateProblem(Domain::Portfolio, 30, 3);
    std::stringstream ss;
    writeQpProblem(ss, qp);
    const QpProblem back = readQpProblem(ss);

    EXPECT_TRUE(qp.pUpper == back.pUpper);
    EXPECT_TRUE(qp.a == back.a);
    EXPECT_EQ(qp.q, back.q);
    EXPECT_EQ(qp.l, back.l);
    EXPECT_EQ(qp.u, back.u);

    OsqpSettings settings;
    const OsqpResult r1 = OsqpSolver(qp, settings).solve();
    const OsqpResult r2 = OsqpSolver(back, settings).solve();
    EXPECT_EQ(r1.info.iterations, r2.info.iterations);
    EXPECT_DOUBLE_EQ(r1.info.objective, r2.info.objective);
}

TEST(ProblemIo, InfiniteBoundsSurvive)
{
    const QpProblem qp = generateProblem(Domain::Svm, 10, 5);
    std::stringstream ss;
    writeQpProblem(ss, qp);
    const QpProblem back = readQpProblem(ss);
    for (std::size_t i = 0; i < qp.u.size(); ++i) {
        EXPECT_EQ(qp.u[i] >= kInf, back.u[i] >= kInf);
        EXPECT_EQ(qp.l[i] <= -kInf, back.l[i] <= -kInf);
    }
}

TEST(ProblemIo, RejectsWrongMagic)
{
    std::stringstream ss("NOT-A-PROBLEM 1\n");
    EXPECT_THROW(readQpProblem(ss), FatalError);
}

/** Round-trip sweep across all six domains. */
class ProblemIoSweep : public ::testing::TestWithParam<Domain>
{};

TEST_P(ProblemIoSweep, ExactRoundTrip)
{
    const Domain domain = GetParam();
    const Index size = domain == Domain::Control ? 5 : 20;
    const QpProblem qp = generateProblem(domain, size, 7);
    std::stringstream ss;
    writeQpProblem(ss, qp);
    const QpProblem back = readQpProblem(ss);
    EXPECT_TRUE(qp.pUpper == back.pUpper) << toString(domain);
    EXPECT_TRUE(qp.a == back.a) << toString(domain);
    EXPECT_EQ(qp.q, back.q) << toString(domain);
}

INSTANTIATE_TEST_SUITE_P(AllDomains, ProblemIoSweep,
                         ::testing::Values(Domain::Control, Domain::Lasso,
                                           Domain::Huber,
                                           Domain::Portfolio, Domain::Svm,
                                           Domain::Eqqp));

} // namespace
} // namespace rsqp
