/**
 * @file
 * CSR matrix tests: CSC round-trips, row access, SpMV equivalence and
 * row permutation.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "linalg/csr.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

using test::randomSparse;
using test::randomVector;

TEST(CsrMatrix, FromCscRoundTrip)
{
    Rng rng(1);
    const CscMatrix csc = randomSparse(9, 7, 0.3, rng);
    const CsrMatrix csr = CsrMatrix::fromCsc(csc);
    EXPECT_TRUE(csr.isValid());
    EXPECT_EQ(csr.nnz(), csc.nnz());
    EXPECT_TRUE(csr.toCsc() == csc);
}

TEST(CsrMatrix, RowNnzMatchesStructure)
{
    TripletList triplets(3, 4);
    triplets.add(0, 0, 1.0);
    triplets.add(0, 3, 1.0);
    triplets.add(2, 1, 1.0);
    const CsrMatrix csr =
        CsrMatrix::fromCsc(CscMatrix::fromTriplets(triplets));
    EXPECT_EQ(csr.rowNnz(0), 2);
    EXPECT_EQ(csr.rowNnz(1), 0);
    EXPECT_EQ(csr.rowNnz(2), 1);
}

TEST(CsrMatrix, SpmvMatchesCsc)
{
    Rng rng(2);
    for (int trial = 0; trial < 5; ++trial) {
        const CscMatrix csc = randomSparse(20, 15, 0.25, rng);
        const CsrMatrix csr = CsrMatrix::fromCsc(csc);
        const Vector x = randomVector(15, rng);
        Vector y_csc, y_csr;
        csc.spmv(x, y_csc);
        csr.spmv(x, y_csr);
        test::expectVectorsNear(y_csc, y_csr, 1e-12, "csr spmv");
    }
}

TEST(CsrMatrix, FromRawValidates)
{
    EXPECT_THROW(
        CsrMatrix::fromRaw(2, 2, {0, 1, 1}, {5}, {1.0}),  // col 5 > cols
        FatalError);
    EXPECT_THROW(
        CsrMatrix::fromRaw(2, 2, {0, 2, 1}, {0, 1}, {1.0, 1.0}),
        FatalError);  // decreasing rowPtr
}

TEST(CsrMatrix, PermuteRowsReordersRows)
{
    Rng rng(3);
    const CscMatrix csc = randomSparse(6, 4, 0.5, rng);
    const CsrMatrix csr = CsrMatrix::fromCsc(csc);
    const IndexVector perm = rng.permutation(6);
    const CsrMatrix permuted = csr.permuteRows(perm);
    const Vector x = randomVector(4, rng);
    Vector y, yp;
    csr.spmv(x, y);
    permuted.spmv(x, yp);
    for (Index i = 0; i < 6; ++i)
        EXPECT_DOUBLE_EQ(
            yp[static_cast<std::size_t>(i)],
            y[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])]);
}

TEST(CsrMatrix, EmptyMatrix)
{
    const CsrMatrix csr(3, 3);
    EXPECT_EQ(csr.nnz(), 0);
    Vector y;
    csr.spmv({1.0, 2.0, 3.0}, y);
    for (Real v : y)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

} // namespace
} // namespace rsqp
