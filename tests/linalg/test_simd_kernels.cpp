/**
 * @file
 * Property tests of the runtime-dispatched SIMD kernel tables.
 *
 * The central claim under test: every ISA level (scalar, AVX2,
 * AVX-512 — whichever this machine supports) computes **bitwise
 * identical** results for every kernel, on every shape — empty
 * ranges, single elements, non-multiple-of-8 tails, unaligned slices
 * and NaN/Inf payloads included. The scalar table is the reference;
 * the vectorized tables must reproduce it bit for bit because all
 * three implement the same canonical 8-lane striped arithmetic.
 *
 * A second battery pins the thread-count determinism contract at each
 * forced ISA level: the high-level vector_ops reductions must return
 * the same bits at 1, 2, 4 and 8 threads.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "linalg/simd_kernels.hpp"
#include "linalg/vector_ops.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

using test::randomVector;

/** Bit pattern of a double (EXPECT_EQ on NaN always fails). */
std::uint64_t
bits(Real x)
{
    std::uint64_t u;
    std::memcpy(&u, &x, sizeof(u));
    return u;
}

std::uint32_t
bits32(float x)
{
    std::uint32_t u;
    std::memcpy(&u, &x, sizeof(u));
    return u;
}

void
expectBitwiseEqual(const Vector& a, const Vector& b, const char* what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(bits(a[i]), bits(b[i]))
            << what << " differs at " << i << ": " << a[i] << " vs "
            << b[i];
}

void
expectBitwiseEqualF32(const FloatVector& a, const FloatVector& b,
                      const char* what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(bits32(a[i]), bits32(b[i]))
            << what << " differs at " << i;
}

/** Awkward shapes: empty, sub-width, exact widths, tails, chunked. */
const std::vector<Index> kShapes = {0,  1,  3,   7,   8,    9,   15,  16,
                                    17, 63, 64, 100, 255, 8191, 8192, 8193};

/** Shapes small enough to also sweep unaligned offsets 1..7. */
const std::vector<Index> kOffsetShapes = {0, 1, 5, 8, 13, 16, 33, 100};

class SimdKernelLevels : public ::testing::Test
{
  protected:
    void SetUp() override { levels_ = supportedIsaLevels(); }
    void TearDown() override { simd::resetIsaLevel(); }

    std::vector<IsaLevel> levels_;
};

TEST_F(SimdKernelLevels, SupportedLevelsIncludeScalar)
{
    ASSERT_FALSE(levels_.empty());
    EXPECT_EQ(levels_.front(), IsaLevel::Scalar);
    for (std::size_t i = 1; i < levels_.size(); ++i)
        EXPECT_LT(static_cast<int>(levels_[i - 1]),
                  static_cast<int>(levels_[i]));
}

TEST_F(SimdKernelLevels, KernelTableReportsItsLevel)
{
    for (IsaLevel level : levels_) {
        const simd::VectorKernels& k = simd::kernelsFor(level);
        EXPECT_EQ(k.level, level);
        EXPECT_STREQ(k.name, isaLevelName(level));
    }
}

TEST_F(SimdKernelLevels, DotBitwiseMatchesScalarOnAllShapesAndOffsets)
{
    const simd::VectorKernels& ref = simd::kernelsFor(IsaLevel::Scalar);
    Rng rng(101);
    for (Index n : kShapes) {
        const Vector x = randomVector(n + 8, rng);
        const Vector y = randomVector(n + 8, rng);
        for (IsaLevel level : levels_) {
            const simd::VectorKernels& k = simd::kernelsFor(level);
            ASSERT_EQ(bits(k.dotRange(x.data(), y.data(), n)),
                      bits(ref.dotRange(x.data(), y.data(), n)))
                << isaLevelName(level) << " n=" << n;
        }
    }
    for (Index n : kOffsetShapes) {
        const Vector x = randomVector(n + 16, rng);
        const Vector y = randomVector(n + 16, rng);
        for (Index off = 1; off < 8; ++off)
            for (IsaLevel level : levels_) {
                const simd::VectorKernels& k = simd::kernelsFor(level);
                ASSERT_EQ(
                    bits(k.dotRange(x.data() + off, y.data() + off, n)),
                    bits(ref.dotRange(x.data() + off, y.data() + off, n)))
                    << isaLevelName(level) << " n=" << n << " off=" << off;
            }
    }
}

TEST_F(SimdKernelLevels, DotMatchesNaiveSerialToRounding)
{
    // Sanity anchor: the canonical striped order is a permutation of
    // the naive sum, so the value agrees to rounding.
    Rng rng(103);
    for (Index n : kShapes) {
        const Vector x = randomVector(n, rng);
        const Vector y = randomVector(n, rng);
        Real naive = 0.0;
        for (Index i = 0; i < n; ++i)
            naive += x[static_cast<std::size_t>(i)] *
                y[static_cast<std::size_t>(i)];
        const Real striped = simd::kernelsFor(IsaLevel::Scalar)
                                 .dotRange(x.data(), y.data(), n);
        EXPECT_NEAR(striped, naive,
                    1e-12 * (1.0 + std::abs(naive)) *
                        std::max<Real>(1, n))
            << "n=" << n;
    }
}

TEST_F(SimdKernelLevels, AxpyDotBitwiseMatchesScalarIncludingAliasing)
{
    const simd::VectorKernels& ref = simd::kernelsFor(IsaLevel::Scalar);
    Rng rng(107);
    for (Index n : kShapes) {
        const Vector x = randomVector(n, rng);
        const Vector y0 = randomVector(n, rng);
        const Vector z = randomVector(n, rng);
        for (IsaLevel level : levels_) {
            const simd::VectorKernels& k = simd::kernelsFor(level);
            Vector y_ref = y0, y_k = y0;
            const Real s_ref =
                ref.axpyDotRange(0.37, x.data(), y_ref.data(), z.data(), n);
            const Real s_k =
                k.axpyDotRange(0.37, x.data(), y_k.data(), z.data(), n);
            ASSERT_EQ(bits(s_k), bits(s_ref))
                << isaLevelName(level) << " n=" << n;
            expectBitwiseEqual(y_k, y_ref, "axpyDot y");

            // z aliasing y: the dot must read the updated y.
            Vector ya_ref = y0, ya_k = y0;
            const Real a_ref = ref.axpyDotRange(-1.25, x.data(),
                                                ya_ref.data(),
                                                ya_ref.data(), n);
            const Real a_k = k.axpyDotRange(-1.25, x.data(), ya_k.data(),
                                            ya_k.data(), n);
            ASSERT_EQ(bits(a_k), bits(a_ref))
                << isaLevelName(level) << " aliased n=" << n;
            expectBitwiseEqual(ya_k, ya_ref, "axpyDot aliased y");
        }
    }
}

TEST_F(SimdKernelLevels, XMinusAlphaPDotBitwiseMatchesScalar)
{
    const simd::VectorKernels& ref = simd::kernelsFor(IsaLevel::Scalar);
    Rng rng(109);
    for (Index n : kShapes) {
        const Vector p = randomVector(n, rng);
        const Vector kp = randomVector(n, rng);
        const Vector x0 = randomVector(n, rng);
        const Vector r0 = randomVector(n, rng);
        for (IsaLevel level : levels_) {
            const simd::VectorKernels& k = simd::kernelsFor(level);
            Vector x_ref = x0, r_ref = r0, x_k = x0, r_k = r0;
            const Real s_ref = ref.xMinusAlphaPDotRange(
                0.81, p.data(), x_ref.data(), kp.data(), r_ref.data(), n);
            const Real s_k = k.xMinusAlphaPDotRange(
                0.81, p.data(), x_k.data(), kp.data(), r_k.data(), n);
            ASSERT_EQ(bits(s_k), bits(s_ref))
                << isaLevelName(level) << " n=" << n;
            expectBitwiseEqual(x_k, x_ref, "xMinusAlphaPDot x");
            expectBitwiseEqual(r_k, r_ref, "xMinusAlphaPDot r");
        }
    }
}

TEST_F(SimdKernelLevels, PrecondApplyDotBitwiseMatchesScalar)
{
    const simd::VectorKernels& ref = simd::kernelsFor(IsaLevel::Scalar);
    Rng rng(113);
    for (Index n : kShapes) {
        Vector inv_diag = randomVector(n, rng);
        for (Real& v : inv_diag)
            v = 0.1 + std::abs(v);
        const Vector r = randomVector(n, rng);
        for (IsaLevel level : levels_) {
            const simd::VectorKernels& k = simd::kernelsFor(level);
            Vector d_ref(static_cast<std::size_t>(n), 0.0);
            Vector d_k(static_cast<std::size_t>(n), 0.0);
            const Real s_ref = ref.precondApplyDotRange(
                inv_diag.data(), r.data(), d_ref.data(), n);
            const Real s_k = k.precondApplyDotRange(inv_diag.data(),
                                                    r.data(), d_k.data(),
                                                    n);
            ASSERT_EQ(bits(s_k), bits(s_ref))
                << isaLevelName(level) << " n=" << n;
            expectBitwiseEqual(d_k, d_ref, "precondApplyDot d");
        }
    }
}

TEST_F(SimdKernelLevels, NormInfBitwiseMatchesScalar)
{
    const simd::VectorKernels& ref = simd::kernelsFor(IsaLevel::Scalar);
    Rng rng(127);
    for (Index n : kShapes) {
        Vector x = randomVector(n, rng);
        if (n > 3)
            x[static_cast<std::size_t>(n / 2)] = -0.0;
        const Vector y = randomVector(n, rng);
        for (IsaLevel level : levels_) {
            const simd::VectorKernels& k = simd::kernelsFor(level);
            ASSERT_EQ(bits(k.normInfRange(x.data(), n)),
                      bits(ref.normInfRange(x.data(), n)))
                << isaLevelName(level) << " n=" << n;
            ASSERT_EQ(bits(k.normInfDiffRange(x.data(), y.data(), n)),
                      bits(ref.normInfDiffRange(x.data(), y.data(), n)))
                << isaLevelName(level) << " n=" << n;
        }
    }
}

TEST_F(SimdKernelLevels, NormInfDropsNaNLikeStdMaxAtEveryLevel)
{
    // The scalar reference uses v > best ? v : best, which drops NaN.
    // The SIMD max must reproduce that — operand order matters for
    // vmaxpd — at every lane position and in the tail.
    const Real nan = std::numeric_limits<Real>::quiet_NaN();
    const simd::VectorKernels& ref = simd::kernelsFor(IsaLevel::Scalar);
    for (Index n : {9, 16, 17, 100}) {
        for (Index pos = 0; pos < n; ++pos) {
            Vector x(static_cast<std::size_t>(n), 0.5);
            x[static_cast<std::size_t>(pos)] = nan;
            for (IsaLevel level : levels_) {
                const simd::VectorKernels& k = simd::kernelsFor(level);
                ASSERT_EQ(bits(k.normInfRange(x.data(), n)),
                          bits(ref.normInfRange(x.data(), n)))
                    << isaLevelName(level) << " n=" << n
                    << " pos=" << pos;
            }
        }
    }
}

TEST_F(SimdKernelLevels, HasNonFiniteFindsPayloadAtEveryPosition)
{
    const Real nan = std::numeric_limits<Real>::quiet_NaN();
    const Real inf = std::numeric_limits<Real>::infinity();
    for (Index n : {1, 7, 8, 9, 16, 17, 64, 100}) {
        for (IsaLevel level : levels_) {
            const simd::VectorKernels& k = simd::kernelsFor(level);
            Vector clean(static_cast<std::size_t>(n), 1.0);
            EXPECT_FALSE(k.hasNonFiniteRange(clean.data(), n))
                << isaLevelName(level) << " clean n=" << n;
            for (Index pos = 0; pos < n; ++pos) {
                for (Real payload : {nan, inf, -inf}) {
                    Vector x = clean;
                    x[static_cast<std::size_t>(pos)] = payload;
                    EXPECT_TRUE(k.hasNonFiniteRange(x.data(), n))
                        << isaLevelName(level) << " n=" << n
                        << " pos=" << pos;
                }
            }
        }
    }
    for (IsaLevel level : levels_)
        EXPECT_FALSE(
            simd::kernelsFor(level).hasNonFiniteRange(nullptr, 0));
}

TEST_F(SimdKernelLevels, CsrRowGatherBitwiseMatchesScalar)
{
    const simd::VectorKernels& ref = simd::kernelsFor(IsaLevel::Scalar);
    Rng rng(131);
    const Index x_len = 200;
    const Vector x = randomVector(x_len, rng);
    std::vector<Index> all_nnz = {0, 1, 2, 5, 7, 8, 9, 15, 16, 20, 64, 151};
    for (Index nnz : all_nnz) {
        Vector vals = randomVector(nnz, rng);
        std::vector<Index> cols(static_cast<std::size_t>(nnz));
        for (Index p = 0; p < nnz; ++p)
            cols[static_cast<std::size_t>(p)] = rng.uniformIndex(x_len);
        for (IsaLevel level : levels_) {
            const simd::VectorKernels& k = simd::kernelsFor(level);
            ASSERT_EQ(bits(k.csrRowGather(vals.data(), cols.data(), nnz,
                                          x.data())),
                      bits(ref.csrRowGather(vals.data(), cols.data(), nnz,
                                            x.data())))
                << isaLevelName(level) << " nnz=" << nnz;
        }
        // Value sanity against the naive serial gather.
        Real naive = 0.0;
        for (Index p = 0; p < nnz; ++p)
            naive += vals[static_cast<std::size_t>(p)] *
                x[static_cast<std::size_t>(
                    cols[static_cast<std::size_t>(p)])];
        EXPECT_NEAR(ref.csrRowGather(vals.data(), cols.data(), nnz,
                                     x.data()),
                    naive, 1e-12 * (1.0 + std::abs(naive)))
            << "nnz=" << nnz;
    }
}

TEST_F(SimdKernelLevels, F32KernelsBitwiseMatchScalar)
{
    const simd::VectorKernels& ref = simd::kernelsFor(IsaLevel::Scalar);
    Rng rng(137);
    for (Index n : kShapes) {
        FloatVector x(static_cast<std::size_t>(n));
        FloatVector y(static_cast<std::size_t>(n));
        FloatVector inv_diag(static_cast<std::size_t>(n));
        for (Index i = 0; i < n; ++i) {
            x[static_cast<std::size_t>(i)] =
                static_cast<float>(rng.normal());
            y[static_cast<std::size_t>(i)] =
                static_cast<float>(rng.normal());
            inv_diag[static_cast<std::size_t>(i)] =
                0.1f + std::abs(static_cast<float>(rng.normal()));
        }
        for (IsaLevel level : levels_) {
            const simd::VectorKernels& k = simd::kernelsFor(level);
            ASSERT_EQ(bits(k.dotRangeF32(x.data(), y.data(), n)),
                      bits(ref.dotRangeF32(x.data(), y.data(), n)))
                << isaLevelName(level) << " dotF32 n=" << n;

            FloatVector xa_ref = x, r_ref = y, xa_k = x, r_k = y;
            const Real s_ref = ref.xMinusAlphaPDotRangeF32(
                0.6f, y.data(), xa_ref.data(), x.data(), r_ref.data(), n);
            const Real s_k = k.xMinusAlphaPDotRangeF32(
                0.6f, y.data(), xa_k.data(), x.data(), r_k.data(), n);
            ASSERT_EQ(bits(s_k), bits(s_ref))
                << isaLevelName(level) << " xMinusAlphaPDotF32 n=" << n;
            expectBitwiseEqualF32(xa_k, xa_ref, "f32 x");
            expectBitwiseEqualF32(r_k, r_ref, "f32 r");

            FloatVector d_ref(static_cast<std::size_t>(n), 0.0f);
            FloatVector d_k(static_cast<std::size_t>(n), 0.0f);
            const Real p_ref = ref.precondApplyDotRangeF32(
                inv_diag.data(), y.data(), d_ref.data(), n);
            const Real p_k = k.precondApplyDotRangeF32(
                inv_diag.data(), y.data(), d_k.data(), n);
            ASSERT_EQ(bits(p_k), bits(p_ref))
                << isaLevelName(level) << " precondF32 n=" << n;
            expectBitwiseEqualF32(d_k, d_ref, "f32 d");

            FloatVector out_ref(static_cast<std::size_t>(n), 0.0f);
            FloatVector out_k(static_cast<std::size_t>(n), 0.0f);
            ref.axpbyRangeF32(1.5f, x.data(), -0.25f, y.data(),
                              out_ref.data(), n);
            k.axpbyRangeF32(1.5f, x.data(), -0.25f, y.data(),
                            out_k.data(), n);
            expectBitwiseEqualF32(out_k, out_ref, "f32 axpby");
        }
    }
}

TEST_F(SimdKernelLevels, CsrRowGatherF32BitwiseMatchesScalar)
{
    const simd::VectorKernels& ref = simd::kernelsFor(IsaLevel::Scalar);
    Rng rng(139);
    const Index x_len = 120;
    FloatVector x(static_cast<std::size_t>(x_len));
    for (float& v : x)
        v = static_cast<float>(rng.normal());
    for (Index nnz : {0, 1, 3, 7, 8, 9, 17, 40, 101}) {
        FloatVector vals(static_cast<std::size_t>(nnz));
        std::vector<Index> cols(static_cast<std::size_t>(nnz));
        for (Index p = 0; p < nnz; ++p) {
            vals[static_cast<std::size_t>(p)] =
                static_cast<float>(rng.normal());
            cols[static_cast<std::size_t>(p)] = rng.uniformIndex(x_len);
        }
        for (IsaLevel level : levels_) {
            const simd::VectorKernels& k = simd::kernelsFor(level);
            ASSERT_EQ(bits32(k.csrRowGatherF32(vals.data(), cols.data(),
                                               nnz, x.data())),
                      bits32(ref.csrRowGatherF32(vals.data(), cols.data(),
                                                 nnz, x.data())))
                << isaLevelName(level) << " nnz=" << nnz;
        }
    }
}

TEST_F(SimdKernelLevels, ForceIsaLevelSwitchesAndRestores)
{
    for (IsaLevel level : levels_) {
        const IsaLevel installed = simd::forceIsaLevel(level);
        EXPECT_EQ(installed, level);
        EXPECT_EQ(simd::activeIsaLevel(), level);
        EXPECT_EQ(simd::activeKernels().level, level);
    }
    // Requests above the supported maximum clamp instead of failing.
    const IsaLevel clamped = simd::forceIsaLevel(IsaLevel::Avx512);
    EXPECT_EQ(clamped, levels_.back());

    // resetIsaLevel re-applies detection *and* any RSQP_FORCE_ISA
    // narrowing from the environment (the CI scalar leg sets it).
    IsaLevel expected = levels_.back();
    if (const char* forced = std::getenv("RSQP_FORCE_ISA")) {
        IsaLevel env_level = IsaLevel::Scalar;
        if (parseIsaLevel(forced, env_level))
            expected = std::min(env_level, expected);
    }
    simd::resetIsaLevel();
    EXPECT_EQ(simd::activeIsaLevel(), expected);
}

TEST_F(SimdKernelLevels, VectorOpsBitwiseInvariantAcrossIsaLevels)
{
    // End to end through the public vector_ops API (chunked reductions
    // included): the dispatch decision must never change a result bit.
    Rng rng(149);
    const Index n = 20000;  // above the chunking threshold
    const Vector x = randomVector(n, rng);
    const Vector y = randomVector(n, rng);

    std::vector<std::uint64_t> reference;
    for (IsaLevel level : levels_) {
        simd::forceIsaLevel(level);
        Vector x2 = x;
        Vector r2 = y;
        std::vector<std::uint64_t> got;
        got.push_back(bits(dot(x, y)));
        got.push_back(bits(normInf(x)));
        got.push_back(bits(normInfDiff(x, y)));
        got.push_back(bits(xMinusAlphaPDot(0.3, y, x2, y, r2)));
        got.push_back(bits(norm2(r2)));
        if (reference.empty())
            reference = got;
        else
            ASSERT_EQ(got, reference) << isaLevelName(level);
    }
}

TEST_F(SimdKernelLevels, VectorOpsBitwiseInvariantAcrossThreadCounts)
{
    // The fixed-grain chunked reduction contract, re-pinned at every
    // dispatched ISA level: 1/2/4/8 threads must agree bitwise.
    Rng rng(151);
    const Index n = 50000;
    const Vector x = randomVector(n, rng);
    const Vector y = randomVector(n, rng);

    for (IsaLevel level : levels_) {
        simd::forceIsaLevel(level);
        std::vector<std::uint64_t> reference;
        for (Index threads : {1, 2, 4, 8}) {
            NumThreadsScope scope(threads);
            Vector x2 = x;
            Vector r2 = y;
            std::vector<std::uint64_t> got;
            got.push_back(bits(dot(x, y)));
            got.push_back(bits(normInf(x)));
            got.push_back(bits(axpyDot(0.7, x, x2, y)));
            got.push_back(bits(xMinusAlphaPDot(0.3, y, x2, y, r2)));
            got.push_back(bits(normInfChecked(r2)));
            if (reference.empty())
                reference = got;
            else
                ASSERT_EQ(got, reference)
                    << isaLevelName(level) << " threads=" << threads;
        }
    }
}

TEST_F(SimdKernelLevels, HasNonFiniteChunkedAgreesAcrossLevels)
{
    const Index n = 30000;
    Vector x(static_cast<std::size_t>(n), 1.0);
    x[static_cast<std::size_t>(n - 3)] =
        std::numeric_limits<Real>::quiet_NaN();
    for (IsaLevel level : levels_) {
        simd::forceIsaLevel(level);
        EXPECT_TRUE(hasNonFinite(x)) << isaLevelName(level);
        EXPECT_TRUE(std::isnan(normInfChecked(x))) << isaLevelName(level);
    }
}

} // namespace
} // namespace rsqp
