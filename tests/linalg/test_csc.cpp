/**
 * @file
 * CSC matrix tests: construction, conversions, kernels against dense
 * references, and property sweeps over random matrices.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "linalg/csc.hpp"
#include "linalg/vector_ops.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

using test::randomSparse;
using test::randomSpdUpper;
using test::randomVector;
using test::toDense;

TEST(CscMatrix, FromTripletsSumsDuplicates)
{
    TripletList triplets(2, 2);
    triplets.add(0, 0, 1.0);
    triplets.add(0, 0, 2.0);
    triplets.add(1, 1, 5.0);
    const CscMatrix matrix = CscMatrix::fromTriplets(triplets);
    EXPECT_EQ(matrix.nnz(), 2);
    EXPECT_DOUBLE_EQ(matrix.coeff(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(matrix.coeff(1, 1), 5.0);
    EXPECT_DOUBLE_EQ(matrix.coeff(0, 1), 0.0);
}

TEST(CscMatrix, FromTripletsSortsRows)
{
    TripletList triplets(3, 1);
    triplets.add(2, 0, 3.0);
    triplets.add(0, 0, 1.0);
    triplets.add(1, 0, 2.0);
    const CscMatrix matrix = CscMatrix::fromTriplets(triplets);
    EXPECT_TRUE(matrix.isValid());
    EXPECT_EQ(matrix.rowIdx()[0], 0);
    EXPECT_EQ(matrix.rowIdx()[1], 1);
    EXPECT_EQ(matrix.rowIdx()[2], 2);
}

TEST(CscMatrix, IdentityAndDiagonal)
{
    const CscMatrix eye = CscMatrix::identity(4, 2.5);
    EXPECT_EQ(eye.nnz(), 4);
    for (Index i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(eye.coeff(i, i), 2.5);

    const CscMatrix diag = CscMatrix::diagonal({1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(diag.coeff(2, 2), 3.0);
    EXPECT_EQ(diag.rows(), 3);
}

TEST(CscMatrix, FromRawRejectsBadStructure)
{
    // Unsorted row indices within a column.
    EXPECT_THROW(CscMatrix::fromRaw(2, 1, {0, 2}, {1, 0}, {1.0, 2.0}),
                 FatalError);
    // colPtr/nnz mismatch.
    EXPECT_THROW(CscMatrix::fromRaw(2, 1, {0, 1}, {0, 1}, {1.0, 2.0}),
                 FatalError);
}

TEST(CscMatrix, TransposeIsInvolution)
{
    Rng rng(1);
    const CscMatrix matrix = randomSparse(7, 5, 0.4, rng);
    const CscMatrix twice = matrix.transpose().transpose();
    EXPECT_TRUE(matrix == twice);
}

TEST(CscMatrix, TransposeMatchesDense)
{
    Rng rng(2);
    const CscMatrix matrix = randomSparse(6, 9, 0.3, rng);
    const CscMatrix t = matrix.transpose();
    const auto dense = toDense(matrix);
    for (Index r = 0; r < matrix.rows(); ++r)
        for (Index c = 0; c < matrix.cols(); ++c)
            EXPECT_DOUBLE_EQ(t.coeff(c, r),
                             dense[static_cast<std::size_t>(r)]
                                  [static_cast<std::size_t>(c)]);
}

TEST(CscMatrix, UpperTriangularAndBack)
{
    Rng rng(3);
    const CscMatrix spd_upper = randomSpdUpper(8, 0.4, rng);
    const CscMatrix full = spd_upper.symUpperToFull();
    // Full matrix is symmetric.
    for (Index r = 0; r < 8; ++r)
        for (Index c = 0; c < 8; ++c)
            EXPECT_DOUBLE_EQ(full.coeff(r, c), full.coeff(c, r));
    // Extracting the upper triangle recovers the original.
    EXPECT_TRUE(full.upperTriangular() == spd_upper);
}

TEST(CscMatrix, SymUpperSpmvMatchesFull)
{
    Rng rng(4);
    const CscMatrix upper = randomSpdUpper(10, 0.35, rng);
    const CscMatrix full = upper.symUpperToFull();
    const Vector x = randomVector(10, rng);
    Vector y_sym, y_full;
    upper.spmvSymUpper(x, y_sym);
    full.spmv(x, y_full);
    test::expectVectorsNear(y_sym, y_full, 1e-12, "sym spmv");
}

TEST(CscMatrix, ScaledMatchesElementwise)
{
    Rng rng(5);
    const CscMatrix matrix = randomSparse(5, 6, 0.5, rng);
    const Vector r = {1.0, 2.0, 0.5, 3.0, 1.5};
    const Vector c = {2.0, 1.0, 0.25, 4.0, 1.0, 0.5};
    const CscMatrix scaled = matrix.scaled(r, c);
    for (Index i = 0; i < 5; ++i)
        for (Index j = 0; j < 6; ++j)
            EXPECT_NEAR(scaled.coeff(i, j),
                        matrix.coeff(i, j) *
                            r[static_cast<std::size_t>(i)] *
                            c[static_cast<std::size_t>(j)],
                        1e-14);
}

TEST(CscMatrix, DiagonalVector)
{
    Rng rng(6);
    const CscMatrix upper = randomSpdUpper(6, 0.3, rng);
    const Vector diag = upper.diagonalVector();
    for (Index i = 0; i < 6; ++i)
        EXPECT_DOUBLE_EQ(diag[static_cast<std::size_t>(i)],
                         upper.coeff(i, i));
}

TEST(CscMatrix, ColumnAndRowInfNorms)
{
    TripletList triplets(2, 2);
    triplets.add(0, 0, -3.0);
    triplets.add(1, 0, 2.0);
    triplets.add(1, 1, -0.5);
    const CscMatrix matrix = CscMatrix::fromTriplets(triplets);
    const Vector col_norms = matrix.columnInfNorms();
    EXPECT_DOUBLE_EQ(col_norms[0], 3.0);
    EXPECT_DOUBLE_EQ(col_norms[1], 0.5);
    const Vector row_norms = matrix.rowInfNorms();
    EXPECT_DOUBLE_EQ(row_norms[0], 3.0);
    EXPECT_DOUBLE_EQ(row_norms[1], 2.0);
}

TEST(CscMatrix, SymUpperColumnInfNormsSeeBothTriangles)
{
    // [[1, 5], [5, 2]] stored as upper: column norms are (5, 5).
    TripletList triplets(2, 2);
    triplets.add(0, 0, 1.0);
    triplets.add(0, 1, 5.0);
    triplets.add(1, 1, 2.0);
    const CscMatrix upper = CscMatrix::fromTriplets(triplets);
    const Vector norms = upper.symUpperColumnInfNorms();
    EXPECT_DOUBLE_EQ(norms[0], 5.0);
    EXPECT_DOUBLE_EQ(norms[1], 5.0);
}

TEST(CscMatrix, SymUpperPermuteKeepsSpectortedValues)
{
    Rng rng(7);
    const CscMatrix upper = randomSpdUpper(9, 0.4, rng);
    const IndexVector perm = rng.permutation(9);
    const CscMatrix permuted = upper.symUpperPermute(perm);
    const CscMatrix full = upper.symUpperToFull();
    const CscMatrix pfull = permuted.symUpperToFull();
    for (Index i = 0; i < 9; ++i)
        for (Index j = 0; j < 9; ++j)
            EXPECT_NEAR(pfull.coeff(i, j),
                        full.coeff(perm[static_cast<std::size_t>(i)],
                                   perm[static_cast<std::size_t>(j)]),
                        1e-14);
}

/** Property sweep: spmv kernels match dense mat-vec across shapes. */
class CscSpmvProperty
    : public ::testing::TestWithParam<std::tuple<Index, Index, double>>
{};

TEST_P(CscSpmvProperty, SpmvMatchesDense)
{
    const auto [rows, cols, density] = GetParam();
    Rng rng(static_cast<std::uint64_t>(rows * 1000 + cols));
    const CscMatrix matrix = randomSparse(rows, cols, density, rng);
    const Vector x = randomVector(cols, rng);
    Vector y;
    matrix.spmv(x, y);
    const auto dense = toDense(matrix);
    for (Index r = 0; r < rows; ++r) {
        Real expected = 0.0;
        for (Index c = 0; c < cols; ++c)
            expected += dense[static_cast<std::size_t>(r)]
                             [static_cast<std::size_t>(c)] *
                x[static_cast<std::size_t>(c)];
        EXPECT_NEAR(y[static_cast<std::size_t>(r)], expected, 1e-10);
    }
}

TEST_P(CscSpmvProperty, TransposeSpmvMatchesTransposedDense)
{
    const auto [rows, cols, density] = GetParam();
    Rng rng(static_cast<std::uint64_t>(rows * 991 + cols));
    const CscMatrix matrix = randomSparse(rows, cols, density, rng);
    const Vector x = randomVector(rows, rng);
    Vector y;
    matrix.spmvTranspose(x, y);
    Vector y_ref;
    matrix.transpose().spmv(x, y_ref);
    test::expectVectorsNear(y, y_ref, 1e-10, "A'x");
}

TEST_P(CscSpmvProperty, AccumulateAddsAlphaTimesProduct)
{
    const auto [rows, cols, density] = GetParam();
    Rng rng(static_cast<std::uint64_t>(rows * 7 + cols));
    const CscMatrix matrix = randomSparse(rows, cols, density, rng);
    const Vector x = randomVector(cols, rng);
    Vector base = randomVector(rows, rng);
    Vector y = base;
    matrix.spmvAccumulate(x, y, 2.0);
    Vector ax;
    matrix.spmv(x, ax);
    for (Index r = 0; r < rows; ++r)
        EXPECT_NEAR(y[static_cast<std::size_t>(r)],
                    base[static_cast<std::size_t>(r)] +
                        2.0 * ax[static_cast<std::size_t>(r)],
                    1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CscSpmvProperty,
    ::testing::Values(std::tuple<Index, Index, double>{1, 1, 1.0},
                      std::tuple<Index, Index, double>{5, 3, 0.5},
                      std::tuple<Index, Index, double>{16, 16, 0.2},
                      std::tuple<Index, Index, double>{40, 25, 0.1},
                      std::tuple<Index, Index, double>{3, 60, 0.3},
                      std::tuple<Index, Index, double>{64, 64, 0.05}));

} // namespace
} // namespace rsqp
