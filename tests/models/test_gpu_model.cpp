/**
 * @file
 * GPU model tests: launch-overhead domination on small problems,
 * bandwidth domination on large ones, and the resulting crossover the
 * paper reports for cuOSQP.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_model.hpp"
#include "problems/generators.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

OsqpInfo
infoWith(Index iters, Count pcg)
{
    OsqpInfo info;
    info.iterations = iters;
    info.pcgIterationsTotal = pcg;
    return info;
}

TEST(GpuModel, SmallProblemDominatedByLaunches)
{
    Rng rng(1);
    const QpProblem small = generateLasso(5, rng);
    const OsqpInfo info = infoWith(100, 500);
    const OsqpSettings settings;
    const GpuSolveEstimate est =
        estimateGpuSolve(small, info, settings);
    // Launch overhead: >= 500 PCG iters * 10 kernels * 5 us = 25 ms.
    EXPECT_GT(est.solveSeconds, 0.025);
    EXPECT_LT(est.utilization, 0.1);
    // Near-idle power.
    EXPECT_LT(est.watts, 60.0);
}

TEST(GpuModel, LargeProblemDominatedByBandwidth)
{
    // Bandwidth only wins over launch overhead near the top of the
    // benchmark's size range (nnz >= several 1e5) — exactly why the
    // paper's GPU is competitive only on the largest problems.
    Rng rng(2);
    const QpProblem large = generateEqqp(2200, rng);
    const OsqpInfo info = infoWith(200, 2000);
    const OsqpSettings settings;
    const GpuSolveEstimate est =
        estimateGpuSolve(large, info, settings);
    EXPECT_GT(est.utilization, 0.25);
    EXPECT_GT(est.watts, 70.0);

    // And a mid-size problem is still launch-bound.
    const QpProblem mid = generateEqqp(300, rng);
    const GpuSolveEstimate mid_est =
        estimateGpuSolve(mid, info, settings);
    EXPECT_LT(mid_est.utilization, est.utilization);
}

TEST(GpuModel, TimeScalesWithIterations)
{
    Rng rng(3);
    const QpProblem qp = generateSvm(50, rng);
    const OsqpSettings settings;
    const GpuSolveEstimate one =
        estimateGpuSolve(qp, infoWith(100, 600), settings);
    const GpuSolveEstimate two =
        estimateGpuSolve(qp, infoWith(200, 1200), settings);
    EXPECT_NEAR(two.solveSeconds, 2.0 * one.solveSeconds,
                0.25 * two.solveSeconds);
}

TEST(GpuModel, SetupIncludesPcieTransfer)
{
    Rng rng(4);
    const QpProblem small = generateLasso(5, rng);
    const QpProblem large = generateEqqp(600, rng);
    const OsqpSettings settings;
    const OsqpInfo info = infoWith(10, 50);
    const GpuSolveEstimate s = estimateGpuSolve(small, info, settings);
    const GpuSolveEstimate l = estimateGpuSolve(large, info, settings);
    EXPECT_GT(l.setupSeconds, s.setupSeconds);
    EXPECT_GE(s.setupSeconds, 3e-4);  // fixed init floor
}

TEST(GpuModel, WattsWithinMeasuredEnvelope)
{
    Rng rng(5);
    const OsqpSettings settings;
    for (Index n : {5, 50, 400}) {
        const QpProblem qp = generateSvm(n, rng);
        const GpuSolveEstimate est =
            estimateGpuSolve(qp, infoWith(150, 900), settings);
        EXPECT_GE(est.watts, 44.0);
        EXPECT_LE(est.watts, 126.0);
    }
}

} // namespace
} // namespace rsqp
