/**
 * @file
 * Hardware model tests: Table 2 catalog, DSP/FF/LUT estimates and the
 * fmax model's calibration against the shapes of Table 3.
 */

#include <gtest/gtest.h>

#include "hwmodel/devices.hpp"
#include "hwmodel/power.hpp"
#include "hwmodel/resources.hpp"

namespace rsqp
{
namespace
{

ArchConfig
configOf(const std::string& name, bool compressed = true)
{
    ArchConfig config;
    config.structures = StructureSet::parse(name);
    config.c = config.structures.c();
    config.compressedCvb = compressed;
    return config;
}

TEST(Devices, Table2Catalog)
{
    const auto table = platformTable();
    ASSERT_EQ(table.size(), 3u);
    EXPECT_EQ(table[0].device, "FPGA");
    EXPECT_DOUBLE_EQ(table[0].peakTeraflops, 0.3);
    EXPECT_DOUBLE_EQ(table[0].tdpWatts, 75.0);
    EXPECT_EQ(table[1].model, "Intel i7-10700KF");
    EXPECT_EQ(table[2].lithographyNm, 8);
    EXPECT_DOUBLE_EQ(table[2].peakTeraflops, 20.0);
}

TEST(Resources, DspIsFiveTimesC)
{
    // Every Table 3 row uses exactly 5 DSPs per lane.
    EXPECT_EQ(estimateResources(configOf("16{1e}")).dsp, 80);
    EXPECT_EQ(estimateResources(configOf("32{4d1f}")).dsp, 160);
    EXPECT_EQ(estimateResources(configOf("64{4e1g}")).dsp, 320);
}

TEST(Resources, FfLutGrowWithOutputs)
{
    const auto base = estimateResources(configOf("16{1e}", false));
    const auto custom = estimateResources(configOf("16{16a1e}", false));
    EXPECT_GT(custom.ff, base.ff);
    EXPECT_GT(custom.lut, base.lut);
    // Roughly the Table 3 magnitudes (12218 -> 17190 FF).
    EXPECT_NEAR(static_cast<double>(base.ff), 12218.0, 4000.0);
    EXPECT_NEAR(static_cast<double>(custom.ff), 17190.0, 5000.0);
}

TEST(Resources, CompressedCvbCostsExtraLogic)
{
    const auto plain = estimateResources(configOf("32{4d1f}", false));
    const auto cvb = estimateResources(configOf("32{4d1f}", true));
    EXPECT_GT(cvb.ff, plain.ff);
    EXPECT_GT(cvb.lut, plain.lut);
    EXPECT_EQ(cvb.dsp, plain.dsp);
}

TEST(Fmax, BaselineHitsHlsTarget)
{
    // Small designs reach the 300 MHz HLS target (Table 3: 16{e},
    // 32{4d1f} and 32{4d2e1f} all report 300).
    EXPECT_GT(estimateFmaxMhz(configOf("16{1e}")), 290.0);
    EXPECT_GT(estimateFmaxMhz(configOf("32{4d1f}")), 280.0);
}

TEST(Fmax, DegradesWithRoutingPressure)
{
    // The Table 3 ranking: wider C with more outputs clocks slower.
    const Real f_small = estimateFmaxMhz(configOf("16{16a1e}"));
    const Real f_mid = estimateFmaxMhz(configOf("32{32a4d1f}"));
    const Real f_big = estimateFmaxMhz(configOf("64{64a4e1g}"));
    EXPECT_GT(f_small, f_mid);
    EXPECT_GT(f_mid, f_big);
    // 64{64a4e1g} measured 121 MHz in the paper.
    EXPECT_LT(f_big, 180.0);
    EXPECT_GT(f_big, 60.0);
}

TEST(Fmax, Table3RankingPreserved)
{
    // Candidates with few outputs keep high fmax even at C = 64
    // (paper: 64{4e1g} = 270 MHz).
    const Real f = estimateFmaxMhz(configOf("64{4e1g}"));
    EXPECT_GT(f, 240.0);
}

TEST(Resources, AllTable3CandidatesFitU50)
{
    for (const char* name :
         {"16{1e}", "16{16a1e}", "32{32a4d1f}", "16{16a2d1e}",
          "64{64a4e1g}", "32{4d1f}", "32{32a4d2e1f}", "32{4d2e1f}",
          "32{16b4d1f}", "64{4e1g}", "64{8d4e1g}"}) {
        EXPECT_TRUE(fitsU50(estimateResources(configOf(name)))) << name;
    }
}

TEST(Power, FpgaAround19Watts)
{
    ArchConfig config;
    config.c = 64;
    config.structures = StructureSet::baseline(64);
    EXPECT_NEAR(fpgaPowerWatts(config), 19.0, 1.0);
}

TEST(Power, GpuEnvelopeMatchesPaper)
{
    // Paper: 44 W to 126 W across the benchmark.
    EXPECT_DOUBLE_EQ(gpuPowerWatts(0.0), 44.0);
    EXPECT_DOUBLE_EQ(gpuPowerWatts(1.0), 126.0);
    EXPECT_GT(gpuPowerWatts(0.3), gpuPowerWatts(0.1));
}

TEST(Power, EfficiencyDefinition)
{
    // 10 ms per instance at 19 W -> 100/19 instances per joule.
    EXPECT_NEAR(powerEfficiency(0.01, 19.0), 100.0 / 19.0, 1e-9);
}

} // namespace
} // namespace rsqp
