/**
 * @file
 * Shared helpers for the RSQP test suite: random sparse matrices,
 * dense reference conversions and comparison utilities.
 */

#ifndef RSQP_TESTS_TEST_UTIL_HPP
#define RSQP_TESTS_TEST_UTIL_HPP

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "linalg/csc.hpp"
#include "linalg/csr.hpp"

namespace rsqp::test
{

/** Random sparse matrix with the given density (at least one entry). */
inline CscMatrix
randomSparse(Index rows, Index cols, Real density, Rng& rng)
{
    TripletList triplets(rows, cols);
    for (Index r = 0; r < rows; ++r)
        for (Index c = 0; c < cols; ++c)
            if (rng.bernoulli(density))
                triplets.add(r, c, rng.normal());
    if (triplets.empty())
        triplets.add(0, 0, 1.0);
    return CscMatrix::fromTriplets(triplets);
}

/** Random symmetric positive definite matrix in upper-CSC storage. */
inline CscMatrix
randomSpdUpper(Index n, Real density, Rng& rng)
{
    TripletList triplets(n, n);
    std::vector<Real> row_abs(static_cast<std::size_t>(n), 0.0);
    for (Index i = 0; i < n; ++i)
        for (Index j = i + 1; j < n; ++j)
            if (rng.bernoulli(density)) {
                const Real v = rng.normal();
                triplets.add(i, j, v);
                row_abs[static_cast<std::size_t>(i)] += std::abs(v);
                row_abs[static_cast<std::size_t>(j)] += std::abs(v);
            }
    for (Index i = 0; i < n; ++i)
        triplets.add(i, i, row_abs[static_cast<std::size_t>(i)] + 1.0);
    return CscMatrix::fromTriplets(triplets);
}

/** Dense row-major copy of a CSC matrix. */
inline std::vector<std::vector<Real>>
toDense(const CscMatrix& matrix)
{
    std::vector<std::vector<Real>> dense(
        static_cast<std::size_t>(matrix.rows()),
        std::vector<Real>(static_cast<std::size_t>(matrix.cols()), 0.0));
    for (Index c = 0; c < matrix.cols(); ++c)
        for (Index p = matrix.colPtr()[c]; p < matrix.colPtr()[c + 1]; ++p)
            dense[static_cast<std::size_t>(matrix.rowIdx()[p])]
                 [static_cast<std::size_t>(c)] = matrix.values()[p];
    return dense;
}

/** Random dense vector with N(0, 1) entries. */
inline Vector
randomVector(Index n, Rng& rng)
{
    Vector v(static_cast<std::size_t>(n));
    for (Real& x : v)
        x = rng.normal();
    return v;
}

/** EXPECT that two vectors agree within an absolute tolerance. */
inline void
expectVectorsNear(const Vector& a, const Vector& b, Real tol,
                  const char* what = "vector")
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a[i], b[i], tol) << what << " differs at " << i;
}

/** Infinity-norm distance of two vectors. */
inline Real
maxAbsDiff(const Vector& a, const Vector& b)
{
    Real best = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        best = std::max(best, std::abs(a[i] - b[i]));
    return best;
}

} // namespace rsqp::test

#endif // RSQP_TESTS_TEST_UTIL_HPP
