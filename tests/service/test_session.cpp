/**
 * @file
 * SolverSession tests: the three request paths (parametric reuse,
 * cache-hit rebuild, cold rebuild), warm-start carry-over, counter
 * bookkeeping, and the acceptance property that a cache-hit solve is
 * bitwise identical to a cold-cache solve.
 */

#include <memory>

#include <gtest/gtest.h>

#include "problems/suite.hpp"
#include "service/session.hpp"

namespace rsqp
{
namespace
{

SessionConfig
deviceConfig()
{
    SessionConfig config;
    config.custom.c = 16;
    return config;
}

/** Same structure, different q. */
QpProblem
withScaledCost(const QpProblem& qp, Real factor)
{
    QpProblem out = qp;
    for (Real& v : out.q)
        v *= factor;
    return out;
}

TEST(SolverSession, FirstSolveIsColdMiss)
{
    auto cache = std::make_shared<CustomizationCache>(8);
    SolverSession session(deviceConfig(), cache);
    const QpProblem qp = generateProblem(Domain::Control, 25, 3);

    const SessionResult result = session.solve(qp);
    ASSERT_EQ(result.status, SolveStatus::Solved);
    EXPECT_FALSE(result.parametricReuse);
    EXPECT_FALSE(result.cacheHit);
    EXPECT_FALSE(result.warmStarted);
    EXPECT_GT(result.deviceSeconds, 0.0);

    const SessionStats& stats = session.stats();
    EXPECT_EQ(stats.solves, 1);
    EXPECT_EQ(stats.rebuilds, 1);
    EXPECT_EQ(stats.cacheMisses, 1);
    EXPECT_EQ(stats.cacheHits, 0);
    EXPECT_EQ(cache->stats().size, 1u);
}

TEST(SolverSession, RepeatStructureTakesParametricPath)
{
    auto cache = std::make_shared<CustomizationCache>(8);
    SolverSession session(deviceConfig(), cache);
    const QpProblem qp = generateProblem(Domain::Lasso, 30, 5);

    const SessionResult first = session.solve(qp);
    ASSERT_EQ(first.status, SolveStatus::Solved);
    const SessionResult second =
        session.solve(withScaledCost(qp, 0.5));
    ASSERT_EQ(second.status, SolveStatus::Solved);

    EXPECT_TRUE(second.parametricReuse);
    EXPECT_TRUE(second.warmStarted);
    const SessionStats& stats = session.stats();
    EXPECT_EQ(stats.solves, 2);
    EXPECT_EQ(stats.rebuilds, 1);
    EXPECT_EQ(stats.parametricSolves, 1);
    EXPECT_EQ(stats.warmStarts, 1);
    // The parametric path performs zero customization work: the cache
    // saw exactly one lookup (the cold miss).
    EXPECT_EQ(cache->stats().hits + cache->stats().misses, 1);
}

TEST(SolverSession, CacheHitSolveIsBitwiseEqualToColdSolve)
{
    // The acceptance property: session B has never seen the structure
    // (no warm state, fresh solver) but finds session A's artifact in
    // the shared cache. Its solve must perform zero customization work
    // and reproduce a cold-cache solve of the same problem bitwise.
    auto cache = std::make_shared<CustomizationCache>(8);
    const QpProblem qp = generateProblem(Domain::Portfolio, 30, 7);
    const QpProblem probe = withScaledCost(qp, 1.7);
    const SessionConfig config = deviceConfig();

    SolverSession sessionA(config, cache);
    ASSERT_EQ(sessionA.solve(qp).status, SolveStatus::Solved);
    ASSERT_EQ(cache->stats().size, 1u);

    SolverSession sessionB(config, cache);
    const SessionResult viaCache = sessionB.solve(probe);
    ASSERT_EQ(viaCache.status, SolveStatus::Solved);
    EXPECT_TRUE(viaCache.cacheHit);
    EXPECT_FALSE(viaCache.warmStarted);
    EXPECT_EQ(sessionB.stats().cacheHits, 1);
    EXPECT_EQ(sessionB.stats().cacheMisses, 0);

    RsqpSolver cold(probe, config.osqp, config.custom);
    ASSERT_FALSE(cold.customizationReused());
    const RsqpResult reference = cold.solve();
    ASSERT_EQ(reference.status, viaCache.status);
    EXPECT_EQ(reference.x, viaCache.x);
    EXPECT_EQ(reference.y, viaCache.y);
    EXPECT_EQ(reference.z, viaCache.z);
    EXPECT_EQ(reference.iterations, viaCache.iterations);
}

TEST(SolverSession, StructureChangeRebuildsAndDropsWarmState)
{
    auto cache = std::make_shared<CustomizationCache>(8);
    SolverSession session(deviceConfig(), cache);

    const QpProblem small = generateProblem(Domain::Huber, 20, 2);
    const QpProblem large = generateProblem(Domain::Huber, 35, 2);
    ASSERT_EQ(session.solve(small).status, SolveStatus::Solved);
    const SessionResult second = session.solve(large);
    ASSERT_EQ(second.status, SolveStatus::Solved);

    EXPECT_FALSE(second.parametricReuse);
    // Different shape: the previous solution must not be applied.
    EXPECT_FALSE(second.warmStarted);
    EXPECT_EQ(session.stats().rebuilds, 2);

    // Coming back to the first structure is a cache hit, and the warm
    // state from the large problem is rejected by shape.
    const SessionResult third = session.solve(small);
    ASSERT_EQ(third.status, SolveStatus::Solved);
    EXPECT_TRUE(third.cacheHit);
    EXPECT_FALSE(third.warmStarted);
}

TEST(SolverSession, WithoutCacheEverySolveWorks)
{
    SolverSession session(deviceConfig(), nullptr);
    const QpProblem qp = generateProblem(Domain::Svm, 20, 11);
    ASSERT_EQ(session.solve(qp).status, SolveStatus::Solved);
    const SessionResult second = session.solve(withScaledCost(qp, 2.0));
    ASSERT_EQ(second.status, SolveStatus::Solved);
    EXPECT_TRUE(second.parametricReuse);
    EXPECT_EQ(session.stats().cacheHits, 0);
    EXPECT_EQ(session.stats().cacheMisses, 0);
}

TEST(SolverSession, InvalidProblemLeavesSessionStateUntouched)
{
    auto cache = std::make_shared<CustomizationCache>(8);
    SolverSession session(deviceConfig(), cache);
    const QpProblem qp = generateProblem(Domain::Control, 25, 13);
    ASSERT_EQ(session.solve(qp).status, SolveStatus::Solved);

    QpProblem broken = qp;
    broken.l[0] = 1.0;
    broken.u[0] = -1.0;  // l > u
    const SessionResult bad = session.solve(broken);
    EXPECT_EQ(bad.status, SolveStatus::InvalidProblem);
    EXPECT_TRUE(
        bad.validation.has(ValidationCode::InfeasibleBounds));
    EXPECT_EQ(session.stats().invalidRequests, 1);

    // The live solver survived: the next good request still takes the
    // parametric fast path with warm start.
    const SessionResult good = session.solve(withScaledCost(qp, 0.9));
    ASSERT_EQ(good.status, SolveStatus::Solved);
    EXPECT_TRUE(good.parametricReuse);
    EXPECT_TRUE(good.warmStarted);
}

TEST(SolverSession, HostEngineSolvesAndProfilesHotPath)
{
    SessionConfig config;
    config.engine = SessionEngine::Host;
    config.osqp.backend = KktBackend::IndirectPcg;
    SolverSession session(config, nullptr);
    const QpProblem qp = generateProblem(Domain::Lasso, 30, 17);

    const SessionResult result = session.solve(qp);
    ASSERT_EQ(result.status, SolveStatus::Solved);
    EXPECT_GT(result.hotPath.totalCalls(), 0u);

    const SessionResult repeat = session.solve(withScaledCost(qp, 2.0));
    ASSERT_EQ(repeat.status, SolveStatus::Solved);
    EXPECT_TRUE(repeat.parametricReuse);
    EXPECT_TRUE(repeat.warmStarted);
}

TEST(SolverSession, ResetForgetsStructureAndWarmState)
{
    auto cache = std::make_shared<CustomizationCache>(8);
    SolverSession session(deviceConfig(), cache);
    const QpProblem qp = generateProblem(Domain::Eqqp, 20, 19);
    ASSERT_EQ(session.solve(qp).status, SolveStatus::Solved);

    session.reset();
    const SessionResult after = session.solve(qp);
    ASSERT_EQ(after.status, SolveStatus::Solved);
    EXPECT_FALSE(after.parametricReuse);
    EXPECT_FALSE(after.warmStarted);
    EXPECT_TRUE(after.cacheHit);  // the shared cache survives reset
}

} // namespace
} // namespace rsqp
