/**
 * @file
 * Customization cache + freeze/thaw tests: a thawed artifact must
 * reproduce the full pipeline bitwise, the cache must account for its
 * footprint, and non-cacheable keys must bypass it.
 */

#include <gtest/gtest.h>

#include "core/customization.hpp"
#include "core/rsqp_solver.hpp"
#include "osqp/scaling.hpp"
#include "problems/suite.hpp"
#include "service/customization_cache.hpp"

namespace rsqp
{
namespace
{

CustomizeSettings
customFor()
{
    CustomizeSettings custom;
    custom.c = 16;
    return custom;
}

/** Scale the way RsqpSolver does before customizing. */
QpProblem
scaledCopy(const QpProblem& qp)
{
    QpProblem scaled = qp;
    const OsqpSettings settings;
    ruizEquilibrate(scaled, settings.scalingIterations);
    return scaled;
}

/** Bitwise equality of two packed HBM streams. */
void
expectPackedEqual(const PackedMatrix& a, const PackedMatrix& b,
                  const char* what)
{
    ASSERT_EQ(a.packs.size(), b.packs.size()) << what;
    EXPECT_EQ(a.ep, b.ep) << what;
    EXPECT_EQ(a.nnz, b.nnz) << what;
    for (std::size_t i = 0; i < a.packs.size(); ++i) {
        EXPECT_EQ(a.packs[i].values, b.packs[i].values)
            << what << " pack " << i;
        EXPECT_EQ(a.packs[i].colIdx, b.packs[i].colIdx)
            << what << " pack " << i;
    }
}

TEST(CustomizationCache, ThawReproducesCustomizationBitwise)
{
    const QpProblem scaled =
        scaledCopy(generateProblem(Domain::Control, 25, 13));
    const CustomizeSettings custom = customFor();

    const ProblemCustomization cold = customizeProblem(scaled, custom);
    const CustomizationArtifact artifact = freezeCustomization(cold);
    ASSERT_TRUE(artifact.compatibleWith(scaled, custom));
    const ProblemCustomization thawed =
        thawCustomization(scaled, artifact, custom);

    EXPECT_EQ(thawed.config.c, cold.config.c);
    EXPECT_EQ(thawed.config.structures.patterns(),
              cold.config.structures.patterns());
    EXPECT_EQ(thawed.p.str.encoded, cold.p.str.encoded);
    EXPECT_EQ(thawed.a.str.encoded, cold.a.str.encoded);
    EXPECT_EQ(thawed.at.str.encoded, cold.at.str.encoded);
    expectPackedEqual(thawed.p.packed, cold.p.packed, "P");
    expectPackedEqual(thawed.a.packed, cold.a.packed, "A");
    expectPackedEqual(thawed.at.packed, cold.at.packed, "At");
    expectPackedEqual(thawed.atSq.packed, cold.atSq.packed, "AtSq");
    EXPECT_EQ(thawed.a.plan.address, cold.a.plan.address);
    EXPECT_EQ(thawed.eta(), cold.eta());
}

TEST(CustomizationCache, ThawRejectsStructuralMismatch)
{
    const QpProblem scaledA =
        scaledCopy(generateProblem(Domain::Lasso, 20, 3));
    const QpProblem scaledB =
        scaledCopy(generateProblem(Domain::Lasso, 30, 3));
    const CustomizeSettings custom = customFor();

    const CustomizationArtifact artifact =
        freezeCustomization(customizeProblem(scaledA, custom));
    EXPECT_FALSE(artifact.compatibleWith(scaledB, custom));

    CustomizeSettings wider = custom;
    wider.c = 32;
    EXPECT_FALSE(artifact.compatibleWith(scaledA, wider));
}

TEST(CustomizationCache, InsertFindAndFootprint)
{
    const QpProblem qp = generateProblem(Domain::Huber, 20, 5);
    const QpProblem scaled = scaledCopy(qp);
    const CustomizeSettings custom = customFor();
    const StructureFingerprint fp =
        fingerprintCustomization(qp, custom);

    CustomizationCache cache(4);
    EXPECT_EQ(cache.find(fp), nullptr);

    auto artifact = std::make_shared<CustomizationArtifact>(
        freezeCustomization(customizeProblem(scaled, custom)));
    const Count footprint = artifact->footprintBytes();
    EXPECT_GT(footprint, 0);
    cache.insert(fp, artifact);

    EXPECT_EQ(cache.find(fp), artifact);
    const CustomizationCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.size, 1u);
    EXPECT_EQ(stats.footprintBytes, footprint);

    // Overwriting the same key must not double-count the footprint.
    cache.insert(fp, artifact);
    EXPECT_EQ(cache.stats().footprintBytes, footprint);

    cache.clear();
    EXPECT_EQ(cache.stats().footprintBytes, 0);
    EXPECT_EQ(cache.stats().size, 0u);
}

TEST(CustomizationCache, NonCacheableKeysBypass)
{
    const QpProblem qp = generateProblem(Domain::Svm, 15, 1);
    CustomizeSettings settings = customFor();
    settings.search.objective = [](const StructureSet&, Count) {
        return 0.0;
    };
    const StructureFingerprint fp =
        fingerprintCustomization(qp, settings);
    ASSERT_FALSE(fp.cacheable);

    CustomizationCache cache(4);
    cache.insert(fp,
                 std::make_shared<CustomizationArtifact>(
                     freezeCustomization(customizeProblem(
                         scaledCopy(qp), customFor()))));
    EXPECT_EQ(cache.find(fp), nullptr);
    EXPECT_EQ(cache.stats().size, 0u);
    EXPECT_EQ(cache.stats().footprintBytes, 0);
}

TEST(CustomizationCache, EvictionKeepsFootprintConsistent)
{
    const CustomizeSettings custom = customFor();
    CustomizationCache cache(1);

    const QpProblem qpA = generateProblem(Domain::Control, 15, 2);
    const QpProblem qpB = generateProblem(Domain::Control, 22, 2);
    auto artifactA = std::make_shared<CustomizationArtifact>(
        freezeCustomization(customizeProblem(scaledCopy(qpA), custom)));
    auto artifactB = std::make_shared<CustomizationArtifact>(
        freezeCustomization(customizeProblem(scaledCopy(qpB), custom)));

    cache.insert(fingerprintCustomization(qpA, custom), artifactA);
    cache.insert(fingerprintCustomization(qpB, custom), artifactB);

    const CustomizationCacheStats stats = cache.stats();
    EXPECT_EQ(stats.size, 1u);
    EXPECT_EQ(stats.evictions, 1);
    EXPECT_EQ(stats.footprintBytes, artifactB->footprintBytes());
}

TEST(CustomizationCache, SolverReportsArtifactReuse)
{
    const QpProblem qp = generateProblem(Domain::Portfolio, 25, 17);
    OsqpSettings settings;
    const CustomizeSettings custom = customFor();

    RsqpSolver cold(qp, settings, custom);
    EXPECT_FALSE(cold.customizationReused());
    auto artifact = std::make_shared<const CustomizationArtifact>(
        freezeCustomization(cold.customization()));

    RsqpSolver warm(qp, settings, custom, artifact);
    EXPECT_TRUE(warm.customizationReused());

    const RsqpResult a = cold.solve();
    const RsqpResult b = warm.solve();
    ASSERT_EQ(a.status, b.status);
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.y, b.y);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.machineStats.totalCycles, b.machineStats.totalCycles);
}

} // namespace
} // namespace rsqp
