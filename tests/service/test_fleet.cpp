/**
 * @file
 * Fleet and placement tests. The Placement suite pins the scheduler's
 * determinism contract (identical fingerprints route to the same core
 * across scheduler instances — and therefore across service restarts
 * — with least-loaded fallback only past the queue bound). The Fleet
 * suite drives SolverService with multi-core FleetConfigs and is run
 * under TSan in CI: concurrent submits across cores must stay
 * race-free and bitwise-deterministic.
 */

#include <future>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "problems/suite.hpp"
#include "service/service.hpp"

namespace rsqp
{
namespace
{

SessionConfig
deviceConfig()
{
    SessionConfig config;
    config.custom.c = 16;
    return config;
}

QpProblem
withScaledCost(const QpProblem& qp, Real factor)
{
    QpProblem out = qp;
    for (Real& v : out.q)
        v *= factor;
    return out;
}

std::vector<CoreLoad>
idleLoads(std::size_t cores)
{
    return std::vector<CoreLoad>(cores);
}

TEST(Placement, PreferredCoreIsPureFunctionOfFingerprint)
{
    // Two independently generated (but identical) problems and two
    // scheduler instances: the affinity target must agree — this is
    // what makes placement stable across service restarts.
    const StructureFingerprint fpA =
        fingerprintStructure(generateProblem(Domain::Control, 30, 5));
    const StructureFingerprint fpB =
        fingerprintStructure(generateProblem(Domain::Control, 30, 5));
    EXPECT_EQ(fpA.hi, fpB.hi);
    EXPECT_EQ(fpA.lo, fpB.lo);
    for (std::size_t cores : {2u, 4u, 8u, 56u}) {
        EXPECT_EQ(PlacementScheduler::preferredCore(fpA, cores),
                  PlacementScheduler::preferredCore(fpB, cores));
    }

    PlacementScheduler first(PlacementPolicy::Affinity, 4, 4);
    PlacementScheduler second(PlacementPolicy::Affinity, 4, 4);
    EXPECT_EQ(first.place(fpA, idleLoads(4)),
              second.place(fpB, idleLoads(4)));
}

TEST(Placement, DistinctStructuresGetIndependentTargets)
{
    // Not a balance proof, but the avalanche must at least reach more
    // than one core across the six benchmark domains.
    std::set<std::size_t> cores;
    for (Domain domain : allDomains()) {
        const StructureFingerprint fp =
            fingerprintStructure(generateProblem(domain, 25, 1));
        cores.insert(PlacementScheduler::preferredCore(fp, 8));
    }
    EXPECT_GT(cores.size(), 1u);
}

TEST(Placement, AffinityHonorsPreferredUpToQueueBound)
{
    const StructureFingerprint fp =
        fingerprintStructure(generateProblem(Domain::Lasso, 30, 2));
    const std::size_t preferred =
        PlacementScheduler::preferredCore(fp, 4);

    PlacementScheduler scheduler(PlacementPolicy::Affinity, 4, 2);
    std::vector<CoreLoad> loads = idleLoads(4);
    loads[preferred].queuedSessions = 2;  // == bound: still preferred
    EXPECT_EQ(scheduler.place(fp, loads), preferred);
}

TEST(Placement, AffinityFallsBackToLeastLoadedPastBound)
{
    const StructureFingerprint fp =
        fingerprintStructure(generateProblem(Domain::Lasso, 30, 2));
    const std::size_t preferred =
        PlacementScheduler::preferredCore(fp, 4);

    PlacementScheduler scheduler(PlacementPolicy::Affinity, 4, 2);
    std::vector<CoreLoad> loads = idleLoads(4);
    loads[preferred].queuedSessions = 3;  // > bound: spill
    for (std::size_t core = 0; core < 4; ++core)
        if (core != preferred)
            loads[core].queuedSessions = 1;
    const std::size_t emptiest = preferred == 1 ? 2 : 1;
    loads[emptiest].queuedSessions = 0;
    EXPECT_EQ(scheduler.place(fp, loads), emptiest);
}

TEST(Placement, NonCacheableFingerprintHasNoAffinity)
{
    StructureFingerprint fp =
        fingerprintStructure(generateProblem(Domain::Huber, 30, 3));
    fp.cacheable = false;

    PlacementScheduler scheduler(PlacementPolicy::Affinity, 4, 4);
    std::vector<CoreLoad> loads = idleLoads(4);
    loads[0].queuedSessions = 1;
    loads[1].queuedSessions = 1;
    loads[2].queuedSessions = 1;
    EXPECT_EQ(scheduler.place(fp, loads), 3u);  // least loaded
}

TEST(Placement, LeastLoadedCountsRunningStreamsAndBreaksTiesLow)
{
    PlacementScheduler scheduler(PlacementPolicy::LeastLoaded, 3, 4);
    const StructureFingerprint fp =
        fingerprintStructure(generateProblem(Domain::Svm, 25, 1));

    std::vector<CoreLoad> loads = idleLoads(3);
    loads[0].queuedSessions = 1;
    loads[1].runningStreams = 1;
    EXPECT_EQ(scheduler.place(fp, loads), 2u);

    loads[2].queuedSessions = 1;  // all tied at 1 -> lowest index
    EXPECT_EQ(scheduler.place(fp, loads), 0u);
}

TEST(Placement, RoundRobinCyclesIgnoringLoad)
{
    PlacementScheduler scheduler(PlacementPolicy::RoundRobin, 3, 4);
    const StructureFingerprint fp =
        fingerprintStructure(generateProblem(Domain::Eqqp, 25, 1));
    std::vector<CoreLoad> loads = idleLoads(3);
    loads[1].queuedSessions = 99;  // round-robin does not care
    EXPECT_EQ(scheduler.place(fp, loads), 0u);
    EXPECT_EQ(scheduler.place(fp, loads), 1u);
    EXPECT_EQ(scheduler.place(fp, loads), 2u);
    EXPECT_EQ(scheduler.place(fp, loads), 0u);
}

TEST(Placement, SingleCoreAlwaysPlacesZero)
{
    PlacementScheduler scheduler(PlacementPolicy::Affinity, 1, 4);
    const StructureFingerprint fp =
        fingerprintStructure(generateProblem(Domain::Control, 25, 9));
    EXPECT_EQ(scheduler.place(fp, idleLoads(1)), 0u);
}

ServiceConfig
fleetConfig(unsigned cores, PlacementPolicy policy)
{
    ServiceConfig config;
    config.maxQueueDepth = 1024;
    config.fleet.coreCount = cores;
    config.fleet.policy = policy;
    return config;
}

/** Per-core job counts after draining `workload` through a service. */
std::vector<Count>
jobDistribution(const ServiceConfig& config,
                const std::vector<QpProblem>& workload)
{
    SolverService service(config);
    std::vector<SessionId> ids;
    for (std::size_t i = 0; i < workload.size(); ++i)
        ids.push_back(service.openSession(deviceConfig()));
    std::vector<std::future<SessionResult>> futures;
    for (std::size_t i = 0; i < workload.size(); ++i)
        futures.push_back(service.submit(ids[i], workload[i]));
    for (auto& future : futures)
        EXPECT_EQ(future.get().status, SolveStatus::Solved);
    service.waitIdle();
    std::vector<Count> jobs;
    for (const CoreStats& core : service.fleetStats().cores)
        jobs.push_back(core.jobs);
    return jobs;
}

TEST(Fleet, SameStructureLandsOnOneCore)
{
    const QpProblem qp = generateProblem(Domain::Control, 25, 3);
    std::vector<QpProblem> workload;
    for (int i = 0; i < 3; ++i)
        workload.push_back(withScaledCost(qp, 1.0 + 0.1 * i));

    const std::vector<Count> jobs =
        jobDistribution(fleetConfig(4, PlacementPolicy::Affinity),
                        workload);
    Count total = 0;
    Count busiest = 0;
    for (Count count : jobs) {
        total += count;
        busiest = std::max(busiest, count);
    }
    EXPECT_EQ(total, 3);
    EXPECT_EQ(busiest, 3);  // all three on the affinity core
}

TEST(Fleet, PlacementIsDeterministicAcrossRestarts)
{
    // Two independent services (fresh registries, fresh schedulers)
    // given the same mixed-structure workload must produce the same
    // per-core job distribution — restart-stable affinity.
    std::vector<QpProblem> workload;
    for (Domain domain : allDomains())
        workload.push_back(generateProblem(domain, 25, 7));

    const ServiceConfig config =
        fleetConfig(4, PlacementPolicy::Affinity);
    EXPECT_EQ(jobDistribution(config, workload),
              jobDistribution(config, workload));
}

TEST(Fleet, CachePartitionHitsOnTheAffinityCore)
{
    SolverService service(fleetConfig(4, PlacementPolicy::Affinity));
    const QpProblem qp = generateProblem(Domain::Lasso, 25, 11);

    const SessionId first = service.openSession(deviceConfig());
    ASSERT_EQ(service.solve(first, qp).status, SolveStatus::Solved);

    // A different session, same structure: must thaw the artifact out
    // of the partition owned by the core the miss ran on.
    const SessionId second = service.openSession(deviceConfig());
    const SessionResult warm =
        service.solve(second, withScaledCost(qp, 2.0));
    EXPECT_EQ(warm.status, SolveStatus::Solved);
    EXPECT_TRUE(warm.cacheHit);

    int coresWithTraffic = 0;
    for (const CoreStats& core : service.fleetStats().cores) {
        if (core.cache.misses > 0 || core.cache.hits > 0) {
            ++coresWithTraffic;
            EXPECT_EQ(core.cache.misses, 1);
            EXPECT_EQ(core.cache.hits, 1);
        }
    }
    EXPECT_EQ(coresWithTraffic, 1);
}

TEST(Fleet, RoundRobinSpreadsDistinctSessions)
{
    const QpProblem qp = generateProblem(Domain::Portfolio, 25, 5);
    std::vector<QpProblem> workload;
    for (int i = 0; i < 8; ++i)
        workload.push_back(withScaledCost(qp, 1.0 + 0.05 * i));

    const std::vector<Count> jobs =
        jobDistribution(fleetConfig(4, PlacementPolicy::RoundRobin),
                        workload);
    for (Count count : jobs)
        EXPECT_EQ(count, 2);
}

TEST(Fleet, SmallJobsFuseIntoInterleavedStreams)
{
    ServiceConfig config = fleetConfig(2, PlacementPolicy::RoundRobin);
    config.fleet.interleaveWidth = 4;
    config.fleet.smallJobThreshold = 4096;  // everything is small
    SolverService service(config);

    const QpProblem qp = generateProblem(Domain::Control, 30, 13);
    std::vector<SessionId> ids;
    for (int i = 0; i < 16; ++i)
        ids.push_back(service.openSession(deviceConfig()));
    std::vector<std::future<SessionResult>> futures;
    for (std::size_t i = 0; i < ids.size(); ++i)
        futures.push_back(service.submit(
            ids[i], withScaledCost(qp, 1.0 + 0.01 * double(i))));
    for (auto& future : futures)
        EXPECT_EQ(future.get().status, SolveStatus::Solved);
    service.waitIdle();

    Count jobs = 0;
    Count streams = 0;
    Count interleaved = 0;
    for (const CoreStats& core : service.fleetStats().cores) {
        jobs += core.jobs;
        streams += core.streams;
        interleaved += core.interleavedJobs;
    }
    EXPECT_EQ(jobs, 16);
    // 16 sessions over 2 single-slot cores: the backlog must have
    // fused at least once, so strictly fewer streams than jobs.
    EXPECT_LT(streams, jobs);
    EXPECT_GE(interleaved, 2);
}

TEST(Fleet, ResultsAreBitwiseIdenticalAcrossCoreCounts)
{
    std::vector<QpProblem> workload;
    for (Domain domain : allDomains())
        workload.push_back(generateProblem(domain, 25, 17));

    auto run = [&](unsigned cores) {
        SolverService service(
            fleetConfig(cores, PlacementPolicy::Affinity));
        std::vector<SessionResult> results;
        for (const QpProblem& qp : workload) {
            const SessionId id = service.openSession(deviceConfig());
            results.push_back(service.solve(id, qp));
        }
        return results;
    };

    const std::vector<SessionResult> single = run(1);
    const std::vector<SessionResult> fleet = run(4);
    ASSERT_EQ(single.size(), fleet.size());
    for (std::size_t i = 0; i < single.size(); ++i) {
        EXPECT_EQ(single[i].status, fleet[i].status);
        EXPECT_EQ(single[i].iterations, fleet[i].iterations);
        EXPECT_EQ(single[i].x, fleet[i].x) << "problem " << i;
        EXPECT_EQ(single[i].y, fleet[i].y) << "problem " << i;
    }
}

TEST(Fleet, MetricsExposePerCoreSeries)
{
    SolverService service(fleetConfig(4, PlacementPolicy::Affinity));
    const SessionId id = service.openSession(deviceConfig());
    ASSERT_EQ(service
                  .solve(id, generateProblem(Domain::Control, 25, 19))
                  .status,
              SolveStatus::Solved);
    // The stream's busy-time accounting lands when its run slot is
    // released, which the resolved future does not wait for.
    service.waitIdle();

    const std::string text = service.metricsText();
    EXPECT_NE(text.find("rsqp_fleet_cores 4"), std::string::npos);
    for (int core = 0; core < 4; ++core) {
        const std::string label =
            "{core=\"" + std::to_string(core) + "\"}";
        EXPECT_NE(
            text.find("rsqp_fleet_core_utilization_percent" + label),
            std::string::npos);
        EXPECT_NE(text.find("rsqp_fleet_core_jobs_total" + label),
                  std::string::npos);
        EXPECT_NE(text.find("rsqp_fleet_core_queue_depth" + label),
                  std::string::npos);
    }

    Count jobs = 0;
    double busy = 0.0;
    for (const CoreStats& core : service.fleetStats().cores) {
        jobs += core.jobs;
        busy += core.busySeconds;
    }
    EXPECT_EQ(jobs, 1);
    EXPECT_GT(busy, 0.0);
}

TEST(Fleet, SingleCoreDefaultMatchesLegacyService)
{
    SolverService service;  // default config: one core
    const FleetStats fleet = service.fleetStats();
    ASSERT_EQ(fleet.cores.size(), 1u);

    const SessionId id = service.openSession(deviceConfig());
    const QpProblem qp = generateProblem(Domain::Huber, 25, 23);
    ASSERT_EQ(service.solve(id, qp).status, SolveStatus::Solved);

    // The legacy cache() handle is core 0's partition; service-level
    // aggregate stats must be the same numbers.
    const CustomizationCacheStats direct = service.cache()->stats();
    const CustomizationCacheStats aggregate = service.stats().cache;
    EXPECT_EQ(direct.hits, aggregate.hits);
    EXPECT_EQ(direct.misses, aggregate.misses);
    EXPECT_EQ(direct.size, aggregate.size);
}

TEST(Fleet, ClosingSessionWithQueuedWorkLeavesFleetConsistent)
{
    ServiceConfig config = fleetConfig(2, PlacementPolicy::Affinity);
    config.fleet.slotsPerCore = 1;
    SolverService service(config);
    const QpProblem qp = generateProblem(Domain::Control, 30, 29);

    const SessionId keep = service.openSession(deviceConfig());
    const SessionId drop = service.openSession(deviceConfig());
    std::vector<std::future<SessionResult>> futures;
    for (int i = 0; i < 3; ++i) {
        futures.push_back(service.submit(keep, qp));
        futures.push_back(service.submit(drop, qp));
    }
    service.closeSession(drop);  // queued work -> Rejected; ready-queue
                                 // entries for it become stale
    Count solved = 0;
    Count rejected = 0;
    for (auto& future : futures) {
        const SolveStatus status = future.get().status;
        if (status == SolveStatus::Solved)
            ++solved;
        else if (status == SolveStatus::Rejected)
            ++rejected;
    }
    EXPECT_EQ(solved + rejected, 6);
    EXPECT_GE(solved, 3);  // keep's jobs must all have solved
    service.waitIdle();
    EXPECT_EQ(service.stats().openSessions, 1u);
}

TEST(Fleet, ConcurrentMixedStructureSubmitsStayConsistent)
{
    // TSan target: four client threads race submits across a 4-core
    // fleet; every admitted request must resolve and the books must
    // balance.
    ServiceConfig config = fleetConfig(4, PlacementPolicy::Affinity);
    config.fleet.interleaveWidth = 2;
    config.fleet.smallJobThreshold = 4096;
    SolverService service(config);

    constexpr int kClients = 4;
    constexpr int kRequests = 6;
    std::vector<SessionId> ids;
    std::vector<QpProblem> problems;
    const std::vector<Domain>& domains = allDomains();
    for (int c = 0; c < kClients; ++c) {
        ids.push_back(service.openSession(deviceConfig()));
        problems.push_back(generateProblem(
            domains[static_cast<std::size_t>(c) % domains.size()], 25,
            31 + static_cast<std::uint64_t>(c)));
    }

    std::vector<std::thread> clients;
    std::vector<Count> solvedPerClient(kClients, 0);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (int r = 0; r < kRequests; ++r) {
                const SessionResult result = service.solve(
                    ids[static_cast<std::size_t>(c)],
                    withScaledCost(
                        problems[static_cast<std::size_t>(c)],
                        1.0 + 0.01 * r));
                if (result.status == SolveStatus::Solved)
                    ++solvedPerClient[static_cast<std::size_t>(c)];
            }
        });
    }
    for (std::thread& client : clients)
        client.join();
    service.waitIdle();

    for (int c = 0; c < kClients; ++c)
        EXPECT_EQ(solvedPerClient[static_cast<std::size_t>(c)],
                  kRequests);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed, kClients * kRequests);
    Count fleetJobs = 0;
    for (const CoreStats& core : service.fleetStats().cores)
        fleetJobs += core.jobs;
    EXPECT_EQ(fleetJobs, kClients * kRequests);
}

} // namespace
} // namespace rsqp
