/**
 * @file
 * Fault-domain tests. The Failover suite pins the mechanics: a killed
 * or hung core loses its stream back to the placement scheduler, the
 * re-run is bitwise identical to an undisturbed solve, stall-watchdog
 * charges count against deadline budgets, the deterministic re-spill
 * keeps a structure's failover traffic on one survivor, and overflow
 * rejections carry a retry-after hint. The FleetChaos suite drives
 * whole seeded chaos schedules through a multi-core service —
 * exactly-once accounting, quarantine/readmission over the virtual
 * clock, run-to-run determinism, and cache-partition invalidation —
 * and runs under TSan in CI.
 */

#include <future>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "problems/suite.hpp"
#include "service/service.hpp"

namespace rsqp
{
namespace
{

SessionConfig
deviceConfig()
{
    SessionConfig config;
    config.custom.c = 16;
    return config;
}

QpProblem
withScaledCost(const QpProblem& qp, Real factor)
{
    QpProblem out = qp;
    for (Real& v : out.q)
        v *= factor;
    return out;
}

ServiceConfig
chaosConfig(unsigned cores, std::vector<FleetFaultEvent> schedule)
{
    ServiceConfig config;
    config.maxQueueDepth = 1024;
    config.fleet.coreCount = cores;
    config.fleet.policy = PlacementPolicy::Affinity;
    // Virtual device times per job are tiny; shrink the backoff
    // ladder to match so readmission happens within a test workload.
    config.fleet.faultDomain.backoffBaseSeconds = 1e-9;
    if (!schedule.empty())
        config.fleet.faultInjector =
            std::make_shared<FleetFaultInjector>(std::move(schedule));
    return config;
}

/** Solve `workload` sequentially (deterministic job-start order),
 *  one fresh session per problem. */
std::vector<SessionResult>
solveAll(SolverService& service, const std::vector<QpProblem>& workload)
{
    std::vector<SessionResult> results;
    for (const QpProblem& qp : workload) {
        const SessionId id = service.openSession(deviceConfig());
        results.push_back(service.solve(id, qp));
    }
    service.waitIdle();
    return results;
}

TEST(Failover, KilledCoreJobIsRerunBitwiseIdentical)
{
    const QpProblem qp = generateProblem(Domain::Control, 30, 3);

    SolverService undisturbed(chaosConfig(4, {}));
    const SessionResult clean =
        undisturbed.solve(undisturbed.openSession(deviceConfig()), qp);
    ASSERT_EQ(clean.status, SolveStatus::Solved);

    // Kill whichever core the very first job lands on, as it starts;
    // every probe fails, so the core stays fenced for the whole test.
    FleetFaultEvent kill;
    kill.kind = FleetFaultKind::KillCore;
    kill.atFleetJob = 0;
    kill.failProbes = 100;
    SolverService service(chaosConfig(4, {kill}));
    const SessionResult result =
        service.solve(service.openSession(deviceConfig()), qp);

    EXPECT_EQ(result.status, SolveStatus::Solved);
    EXPECT_EQ(result.failovers, 1);
    EXPECT_EQ(result.x, clean.x);
    EXPECT_EQ(result.y, clean.y);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.failovers, 1);
    EXPECT_EQ(stats.quarantines, 1);
    const FleetStats fleet = service.fleetStats();
    Count quarantined = 0;
    for (const CoreStats& core : fleet.cores)
        if (core.health == CoreHealth::Quarantined)
            ++quarantined;
    EXPECT_EQ(quarantined, 1);
    EXPECT_EQ(fleet.partitionInvalidations, 1);
}

TEST(Failover, HangChargesTheStallWatchdog)
{
    FleetFaultEvent hang;
    hang.kind = FleetFaultKind::HangCore;
    hang.atFleetJob = 0;
    ServiceConfig config = chaosConfig(4, {hang});
    config.fleet.faultDomain.stallWatchdogSeconds = 0.25;
    SolverService service(config);

    const QpProblem qp = generateProblem(Domain::Lasso, 30, 5);
    const SessionResult result =
        service.solve(service.openSession(deviceConfig()), qp);

    EXPECT_EQ(result.status, SolveStatus::Solved);
    EXPECT_EQ(result.failovers, 1);
    // The stream sat on the hung core until the watchdog fired: the
    // charge shows up as queue wait and on the virtual clock.
    EXPECT_GE(result.telemetry.queueWaitSeconds, 0.25);
    EXPECT_GE(service.fleetStats().virtualSeconds, 0.25);
}

TEST(Failover, StallChargeExpiresATightDeadline)
{
    FleetFaultEvent hang;
    hang.kind = FleetFaultKind::HangCore;
    hang.atFleetJob = 0;
    ServiceConfig config = chaosConfig(4, {hang});
    config.fleet.faultDomain.stallWatchdogSeconds = 30.0;
    SolverService service(config);

    // Budget far below the stall charge: after the failover the job
    // must expire instead of running with a blown deadline.
    const QpProblem qp = generateProblem(Domain::Huber, 30, 7);
    SubmitOptions tight;
    tight.deadlineSeconds = 5.0;
    const SessionResult result = service.solve(
        service.openSession(deviceConfig()), qp, tight);

    EXPECT_EQ(result.status, SolveStatus::TimeLimitReached);
    EXPECT_EQ(service.stats().expired, 1);
    EXPECT_EQ(service.stats().completed, 0);
}

TEST(Failover, RespillIsDeterministicAndAvoidsFencedCore)
{
    const StructureFingerprint fp =
        fingerprintStructure(generateProblem(Domain::Portfolio, 30, 2));
    const std::size_t preferred =
        PlacementScheduler::preferredCore(fp, 4);

    std::vector<CoreLoad> loads(4);
    loads[preferred].available = false;
    std::vector<std::size_t> survivors;
    for (std::size_t core = 0; core < loads.size(); ++core)
        if (core != preferred)
            survivors.push_back(core);

    PlacementScheduler first(PlacementPolicy::Affinity, 4, 4);
    PlacementScheduler second(PlacementPolicy::Affinity, 4, 4);
    const std::size_t respill = first.place(fp, loads);
    EXPECT_NE(respill, preferred);
    EXPECT_EQ(respill, second.place(fp, loads));
    EXPECT_EQ(respill,
              PlacementScheduler::preferredAmong(fp, survivors));
}

TEST(Failover, OverflowRejectionCarriesRetryAfter)
{
    ServiceConfig config;
    config.maxQueueDepth = 1;
    config.fleet.coreCount = 1;
    SolverService service(config);
    const SessionId id = service.openSession(deviceConfig());
    const QpProblem qp = generateProblem(Domain::Svm, 30, 9);

    // Same session: the head job runs, one waits, and with the queue
    // bound at 1 the burst must overflow at least once (submission is
    // far faster than a solve; a solve cannot outrun the loop).
    std::vector<std::future<SessionResult>> futures;
    for (int i = 0; i < 12; ++i)
        futures.push_back(service.submit(
            id, withScaledCost(qp, 1.0 + 0.1 * double(i))));

    Count rejections = 0;
    for (auto& future : futures) {
        const SessionResult result = future.get();
        if (result.status == SolveStatus::Rejected) {
            ++rejections;
            // Every overflow rejection carries a back-off hint, at
            // least the configured floor.
            EXPECT_GE(result.retryAfterSeconds,
                      config.retryAfterFloorSeconds);
        } else {
            EXPECT_EQ(result.status, SolveStatus::Solved);
            EXPECT_EQ(result.retryAfterSeconds, 0.0);
        }
    }
    EXPECT_GE(rejections, 1);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.retryAfterHints, rejections);
    EXPECT_GT(stats.lastRetryAfterSeconds, 0.0);
}

TEST(FleetChaos, StandardScheduleResolvesEveryJobExactlyOnce)
{
    const auto schedule = FleetFaultInjector::standardSchedule(42, 40);
    auto injector =
        std::make_shared<FleetFaultInjector>(schedule);
    ServiceConfig config = chaosConfig(4, {});
    config.fleet.faultInjector = injector;
    SolverService service(config);

    std::vector<SessionId> ids;
    std::vector<std::future<SessionResult>> futures;
    for (int i = 0; i < 40; ++i) {
        const Domain domain = allDomains()[i % allDomains().size()];
        ids.push_back(service.openSession(deviceConfig()));
        futures.push_back(service.submit(
            ids.back(), generateProblem(domain, 25, 100 + i)));
    }
    Count solved = 0;
    for (auto& future : futures) {
        const SessionResult result = future.get();
        if (result.status == SolveStatus::Solved)
            ++solved;
    }
    service.waitIdle();

    // Exactly-once: every admitted job resolved with a real status,
    // none lost, none double-counted, despite a kill and a hang.
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 40);
    EXPECT_EQ(stats.completed + stats.rejected + stats.expired +
                  stats.shutdownDrained,
              40u);
    EXPECT_EQ(stats.rejected, 0);
    EXPECT_EQ(stats.expired, 0);
    EXPECT_EQ(solved, 40);
    EXPECT_EQ(injector->killsDelivered(), 1);
    EXPECT_EQ(injector->hangsDelivered(), 1);
    EXPECT_EQ(stats.quarantines, 2);
    EXPECT_GE(stats.failovers, 2);

    Count coreJobs = 0;
    for (const CoreStats& core : service.fleetStats().cores)
        coreJobs += core.jobs;
    EXPECT_EQ(coreJobs, 40);
}

TEST(FleetChaos, QuarantinedCoresAreReadmittedAfterBackoff)
{
    const auto schedule = FleetFaultInjector::standardSchedule(7, 24);
    ServiceConfig config = chaosConfig(4, schedule);
    SolverService service(config);

    // Sequential traffic keeps pumping the virtual clock past each
    // probe deadline; the kill event's first probe fails (failProbes
    // = 1), exercising the backoff ladder.
    std::vector<QpProblem> workload;
    for (int i = 0; i < 48; ++i)
        workload.push_back(generateProblem(
            allDomains()[i % allDomains().size()], 25, 200 + i));
    for (const SessionResult& result : solveAll(service, workload))
        EXPECT_EQ(result.status, SolveStatus::Solved);

    const FleetStats fleet = service.fleetStats();
    EXPECT_EQ(fleet.quarantines, 2);
    EXPECT_EQ(fleet.readmissions, 2);
    // Two readmissions, one of them after a failed probe.
    EXPECT_GE(fleet.probes, 3);
    for (const CoreStats& core : fleet.cores)
        EXPECT_NE(core.health, CoreHealth::Quarantined);
}

TEST(FleetChaos, ChaosRunIsDeterministic)
{
    std::vector<QpProblem> workload;
    for (int i = 0; i < 24; ++i)
        workload.push_back(generateProblem(
            allDomains()[i % allDomains().size()], 25, 300 + i));

    auto run = [&] {
        SolverService service(chaosConfig(
            4, FleetFaultInjector::standardSchedule(11, 24)));
        return solveAll(service, workload);
    };
    const std::vector<SessionResult> first = run();
    const std::vector<SessionResult> second = run();
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].status, second[i].status);
        EXPECT_EQ(first[i].iterations, second[i].iterations);
        EXPECT_EQ(first[i].failovers, second[i].failovers);
        EXPECT_EQ(first[i].x, second[i].x);
        EXPECT_EQ(first[i].y, second[i].y);
    }
}

TEST(FleetChaos, FailedOverSolvesMatchTheFaultFreeRun)
{
    std::vector<QpProblem> workload;
    for (int i = 0; i < 24; ++i)
        workload.push_back(generateProblem(
            allDomains()[i % allDomains().size()], 25, 400 + i));

    SolverService clean(chaosConfig(4, {}));
    const std::vector<SessionResult> baseline =
        solveAll(clean, workload);

    SolverService chaotic(chaosConfig(
        4, FleetFaultInjector::standardSchedule(3, 24)));
    const std::vector<SessionResult> disturbed =
        solveAll(chaotic, workload);

    // The chaos run must have actually failed something over, and
    // every solution — failed-over or not — must match the fault-free
    // run bit for bit.
    EXPECT_GE(chaotic.stats().failovers, 1);
    ASSERT_EQ(baseline.size(), disturbed.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        EXPECT_EQ(disturbed[i].status, SolveStatus::Solved);
        EXPECT_EQ(disturbed[i].iterations, baseline[i].iterations);
        EXPECT_EQ(disturbed[i].x, baseline[i].x);
        EXPECT_EQ(disturbed[i].y, baseline[i].y);
    }
}

TEST(FleetChaos, QuarantineInvalidatesThePartitionAndRewarmsRespill)
{
    const QpProblem qp = generateProblem(Domain::Eqqp, 25, 19);
    const StructureFingerprint fp = fingerprintStructure(qp);
    const std::size_t home = PlacementScheduler::preferredCore(fp, 4);

    // Kill the structure's home core as it starts its second job:
    // the first solve warms the partition, the second fails over.
    FleetFaultEvent kill;
    kill.kind = FleetFaultKind::KillCore;
    kill.core = home;
    kill.atCoreJob = 1;
    kill.failProbes = 100; // the home core never comes back
    SolverService service(chaosConfig(4, {kill}));

    const SessionId first = service.openSession(deviceConfig());
    ASSERT_EQ(service.solve(first, qp).status, SolveStatus::Solved);

    const SessionId second = service.openSession(deviceConfig());
    const SessionResult failedOver =
        service.solve(second, withScaledCost(qp, 2.0));
    EXPECT_EQ(failedOver.status, SolveStatus::Solved);
    EXPECT_EQ(failedOver.failovers, 1);
    // The artifact died with the partition: this run re-customizes.
    EXPECT_FALSE(failedOver.cacheHit);

    std::vector<std::size_t> survivors;
    for (std::size_t core = 0; core < 4; ++core)
        if (core != home)
            survivors.push_back(core);
    const std::size_t respill =
        PlacementScheduler::preferredAmong(fp, survivors);

    // Same structure again: it must land on the deterministic
    // re-spill core and find the re-warmed artifact hot there.
    const SessionId third = service.openSession(deviceConfig());
    const SessionResult rewarmed =
        service.solve(third, withScaledCost(qp, 3.0));
    EXPECT_EQ(rewarmed.status, SolveStatus::Solved);
    EXPECT_TRUE(rewarmed.cacheHit);

    const FleetStats fleet = service.fleetStats();
    EXPECT_EQ(fleet.partitionInvalidations, 1);
    EXPECT_EQ(fleet.cores[home].cache.size, 0);
    EXPECT_EQ(fleet.cores[respill].cache.hits, 1);
}

} // namespace
} // namespace rsqp
