/**
 * @file
 * Admission-plane and async-API tests. The Admission suite pins the
 * weighted-fair contract — per-class depth bounds, shed order (Batch
 * before Realtime), class-aware retry-after hints, weighted drain
 * order — and the AsyncSubmit suite pins the submitAsync/cancel
 * surface: exactly-once callbacks off the service lock, cancellation
 * windows, bitwise equivalence of the deprecated positional-deadline
 * shims, and a submit/cancel/drain race run under TSan in CI.
 */

#include <atomic>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "problems/suite.hpp"
#include "service/service.hpp"

namespace rsqp
{
namespace
{

SessionConfig
deviceConfig()
{
    SessionConfig config;
    config.custom.c = 16;
    return config;
}

SubmitOptions
classOptions(AdmissionClass cls)
{
    SubmitOptions options;
    options.admissionClass = cls;
    return options;
}

/**
 * Freezes the admission queue deterministically: submits one head
 * request whose completion callback blocks the worker until
 * release(). Per-entry callbacks run before the stream releases its
 * core slot, so with maxConcurrency = 1 nothing else can dispatch
 * while the gate is held — every request submitted in between sits
 * in a queue in a fully observable state.
 */
class SlotGate
{
  public:
    SlotGate(SolverService& service, SessionId id, const QpProblem& qp)
    {
        service.submitAsync(id, qp, SubmitOptions{},
                            [this](SessionResult) {
                                started_.set_value();
                                released_.get_future().wait();
                            });
        started_.get_future().wait();
    }

    ~SlotGate() { release(); }

    void
    release()
    {
        if (!released)
            released_.set_value();
        released = true;
    }

  private:
    std::promise<void> started_;
    std::promise<void> released_;
    bool released = false;
};

TEST(Admission, PerClassBoundRejectsBeyondDepth)
{
    ServiceConfig config;
    config.maxConcurrency = 1;
    config.maxQueueDepth = 64;
    config.admission.classes[static_cast<std::size_t>(
                                 AdmissionClass::Batch)]
        .maxQueueDepth = 1;
    SolverService service(config);
    const SessionId head = service.openSession(deviceConfig());
    const SessionId batch = service.openSession(deviceConfig());
    const SessionId realtime = service.openSession(deviceConfig());
    const QpProblem qp = generateProblem(Domain::Control, 12, 3);

    SlotGate gate(service, head, qp);
    std::vector<std::future<SessionResult>> futures;
    for (int i = 0; i < 3; ++i)
        futures.push_back(service.submit(
            batch, qp, classOptions(AdmissionClass::Batch)));
    futures.push_back(service.submit(
        realtime, qp, classOptions(AdmissionClass::Realtime)));

    // The class bound holds one Batch request; the global queue still
    // has plenty of room, so Realtime is untouched by Batch pressure.
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.of(AdmissionClass::Batch).queueDepth, 1u);
    EXPECT_EQ(stats.of(AdmissionClass::Batch).rejected, 2);
    EXPECT_EQ(stats.of(AdmissionClass::Realtime).queueDepth, 1u);
    EXPECT_EQ(stats.of(AdmissionClass::Realtime).rejected, 0);
    EXPECT_EQ(stats.queueDepth, 2u);

    gate.release();
    Count rejected = 0;
    Count solved = 0;
    for (std::future<SessionResult>& future : futures) {
        const SessionResult result = future.get();
        if (result.status == SolveStatus::Rejected) {
            ++rejected;
            EXPECT_GE(result.retryAfterSeconds,
                      config.retryAfterFloorSeconds);
        } else if (result.status == SolveStatus::Solved) {
            ++solved;
        }
    }
    EXPECT_EQ(rejected, 2);
    EXPECT_EQ(solved, 2);
    stats = service.stats();
    EXPECT_EQ(stats.of(AdmissionClass::Batch).submitted, 3);
    EXPECT_EQ(stats.of(AdmissionClass::Batch).solved, 1);
    EXPECT_EQ(stats.of(AdmissionClass::Realtime).solved, 1);
}

TEST(Admission, ShedsBatchBeforeRealtimeAtFullQueue)
{
    ServiceConfig config;
    config.maxConcurrency = 1;
    config.maxQueueDepth = 2;
    SolverService service(config);
    const SessionId head = service.openSession(deviceConfig());
    const SessionId batch = service.openSession(deviceConfig());
    const SessionId realtime = service.openSession(deviceConfig());
    const QpProblem qp = generateProblem(Domain::Control, 12, 5);

    SlotGate gate(service, head, qp);
    std::vector<std::future<SessionResult>> batchFutures;
    batchFutures.push_back(service.submit(
        batch, qp, classOptions(AdmissionClass::Batch)));
    batchFutures.push_back(service.submit(
        batch, qp, classOptions(AdmissionClass::Batch)));
    EXPECT_EQ(service.stats().queueDepth, 2u);

    // The queue is full. Each Realtime arrival evicts the newest
    // queued Batch request and takes its place; once no Batch work is
    // left, Realtime overflows like anyone else — and a Batch arrival
    // can never shed at all (nothing ranks below it).
    std::vector<std::future<SessionResult>> realtimeFutures;
    realtimeFutures.push_back(service.submit(
        realtime, qp, classOptions(AdmissionClass::Realtime)));
    realtimeFutures.push_back(service.submit(
        realtime, qp, classOptions(AdmissionClass::Realtime)));
    std::future<SessionResult> realtimeOverflow = service.submit(
        realtime, qp, classOptions(AdmissionClass::Realtime));
    std::future<SessionResult> batchOverflow = service.submit(
        batch, qp, classOptions(AdmissionClass::Batch));

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.shed, 2);
    EXPECT_EQ(stats.of(AdmissionClass::Batch).shed, 2);
    EXPECT_EQ(stats.of(AdmissionClass::Realtime).shed, 0);
    EXPECT_EQ(stats.of(AdmissionClass::Realtime).rejected, 1);
    EXPECT_EQ(stats.of(AdmissionClass::Batch).rejected, 1);
    EXPECT_EQ(stats.of(AdmissionClass::Realtime).queueDepth, 2u);
    EXPECT_EQ(stats.of(AdmissionClass::Batch).queueDepth, 0u);

    // Both shed victims resolved Rejected with a back-off hint.
    for (std::future<SessionResult>& future : batchFutures) {
        const SessionResult result = future.get();
        EXPECT_EQ(result.status, SolveStatus::Rejected);
        EXPECT_GE(result.retryAfterSeconds,
                  config.retryAfterFloorSeconds);
    }
    EXPECT_EQ(realtimeOverflow.get().status, SolveStatus::Rejected);
    EXPECT_EQ(batchOverflow.get().status, SolveStatus::Rejected);

    gate.release();
    for (std::future<SessionResult>& future : realtimeFutures)
        EXPECT_EQ(future.get().status, SolveStatus::Solved);
    EXPECT_EQ(service.stats().of(AdmissionClass::Realtime).solved, 2);
}

TEST(Admission, RetryHintGrowsWithClassBacklog)
{
    // Two services, identical up to the Batch depth bound, each primed
    // by one identical head solve (the device-seconds average feeding
    // the hint is a deterministic function of the problem). The
    // service carrying the deeper Batch backlog must suggest the
    // longer back-off.
    const QpProblem qp = generateProblem(Domain::Control, 12, 7);
    auto rejectedHintAtBacklog = [&qp](std::size_t bound) {
        ServiceConfig config;
        config.maxConcurrency = 1;
        config.retryAfterFloorSeconds = 1e-12;
        config.admission.classes[static_cast<std::size_t>(
                                     AdmissionClass::Batch)]
            .maxQueueDepth = bound;
        SolverService service(config);
        const SessionId head = service.openSession(deviceConfig());
        const SessionId batch = service.openSession(deviceConfig());
        SlotGate gate(service, head, qp);
        std::vector<std::future<SessionResult>> queued;
        for (std::size_t i = 0; i < bound; ++i)
            queued.push_back(service.submit(
                batch, qp, classOptions(AdmissionClass::Batch)));
        const SessionResult rejected = service.solve(
            batch, qp, classOptions(AdmissionClass::Batch));
        EXPECT_EQ(rejected.status, SolveStatus::Rejected);
        gate.release();
        for (std::future<SessionResult>& future : queued)
            future.get();
        return rejected.retryAfterSeconds;
    };

    const Real shallow = rejectedHintAtBacklog(1);
    const Real deep = rejectedHintAtBacklog(2);
    EXPECT_GT(shallow, 0.0);
    EXPECT_GT(deep, shallow);
}

TEST(Admission, LowerClassHintNeverSmallerAtEqualBacklog)
{
    // One service, one queued request per class, one rejection per
    // class at the same backlog: Batch's hint must dominate
    // Realtime's, because its weighted share of the drain is smaller.
    ServiceConfig config;
    config.maxConcurrency = 1;
    config.retryAfterFloorSeconds = 1e-12;
    config.admission.classes[static_cast<std::size_t>(
                                 AdmissionClass::Batch)]
        .maxQueueDepth = 1;
    config.admission.classes[static_cast<std::size_t>(
                                 AdmissionClass::Realtime)]
        .maxQueueDepth = 1;
    SolverService service(config);
    const SessionId head = service.openSession(deviceConfig());
    const SessionId client = service.openSession(deviceConfig());
    const QpProblem qp = generateProblem(Domain::Control, 12, 9);

    SlotGate gate(service, head, qp);
    std::vector<std::future<SessionResult>> queued;
    queued.push_back(service.submit(
        client, qp, classOptions(AdmissionClass::Batch)));
    queued.push_back(service.submit(
        client, qp, classOptions(AdmissionClass::Realtime)));
    const SessionResult batchRejected = service.solve(
        client, qp, classOptions(AdmissionClass::Batch));
    const SessionResult realtimeRejected = service.solve(
        client, qp, classOptions(AdmissionClass::Realtime));
    gate.release();
    for (std::future<SessionResult>& future : queued)
        future.get();

    EXPECT_EQ(batchRejected.status, SolveStatus::Rejected);
    EXPECT_EQ(realtimeRejected.status, SolveStatus::Rejected);
    EXPECT_GT(realtimeRejected.retryAfterSeconds, 0.0);
    EXPECT_GT(batchRejected.retryAfterSeconds,
              realtimeRejected.retryAfterSeconds);
}

TEST(Admission, WeightedDrainRunsRealtimeBeforeBatch)
{
    // A Batch and a Realtime request from different sessions wait on
    // the same core; when the slot frees, smooth WRR must dispatch
    // the Realtime one first even though Batch arrived earlier.
    ServiceConfig config;
    config.maxConcurrency = 1;
    SolverService service(config);
    const SessionId head = service.openSession(deviceConfig());
    const SessionId batch = service.openSession(deviceConfig());
    const SessionId realtime = service.openSession(deviceConfig());
    const QpProblem qp = generateProblem(Domain::Control, 12, 11);

    std::mutex orderMutex;
    std::vector<std::string> order;
    auto record = [&orderMutex, &order](const char* tag) {
        return [&orderMutex, &order, tag](SessionResult result) {
            EXPECT_EQ(result.status, SolveStatus::Solved);
            std::lock_guard<std::mutex> lock(orderMutex);
            order.emplace_back(tag);
        };
    };

    {
        SlotGate gate(service, head, qp);
        service.submitAsync(batch, qp,
                            classOptions(AdmissionClass::Batch),
                            record("batch"));
        service.submitAsync(realtime, qp,
                            classOptions(AdmissionClass::Realtime),
                            record("realtime"));
        gate.release();
    }
    service.waitIdle();

    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "realtime");
    EXPECT_EQ(order[1], "batch");
}

TEST(Admission, PerClassSeriesExposedInMetricsText)
{
    ServiceConfig config;
    config.maxConcurrency = 1;
    SolverService service(config);
    const SessionId id = service.openSession(deviceConfig());
    const QpProblem qp = generateProblem(Domain::Control, 12, 13);
    EXPECT_EQ(service
                  .solve(id, qp,
                         classOptions(AdmissionClass::Realtime))
                  .status,
              SolveStatus::Solved);

    const std::string text = service.metricsText();
    EXPECT_NE(text.find("rsqp_service_class_submitted_total{"
                        "class=\"realtime\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("rsqp_service_class_solved_total{"
                        "class=\"realtime\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("rsqp_service_class_submitted_total{"
                        "class=\"batch\"} 0"),
              std::string::npos);
    EXPECT_NE(text.find("rsqp_service_class_queue_depth{"
                        "class=\"interactive\"}"),
              std::string::npos);
}

TEST(AsyncSubmit, CallbackRunsExactlyOnceOffTheServiceLock)
{
    SolverService service;
    const SessionId id = service.openSession(deviceConfig());
    const QpProblem qp = generateProblem(Domain::Control, 12, 15);

    std::atomic<int> calls{0};
    std::promise<SessionResult> done;
    service.submitAsync(id, qp, SubmitOptions{},
                        [&](SessionResult result) {
                            ++calls;
                            // stats() takes the service mutex: this
                            // would deadlock if callbacks ever ran
                            // under the lock.
                            EXPECT_GE(service.stats().submitted, 1);
                            done.set_value(std::move(result));
                        });
    const SessionResult result = done.get_future().get();
    EXPECT_EQ(result.status, SolveStatus::Solved);
    service.waitIdle();
    EXPECT_EQ(calls.load(), 1);
}

TEST(AsyncSubmit, ImmediateRejectionInvokesCallbackOffLock)
{
    SolverService service;
    const QpProblem qp = generateProblem(Domain::Control, 12, 17);
    std::atomic<int> calls{0};
    service.submitAsync(/*unknown session*/ 9999, qp, SubmitOptions{},
                        [&](SessionResult result) {
                            ++calls;
                            EXPECT_EQ(result.status,
                                      SolveStatus::Rejected);
                            EXPECT_EQ(service.stats().rejected, 1);
                        });
    // Unknown-session rejections resolve before submitAsync returns.
    EXPECT_EQ(calls.load(), 1);
}

TEST(AsyncSubmit, CancelBeforeLaunchResolvesExactlyOnce)
{
    ServiceConfig config;
    config.maxConcurrency = 1;
    SolverService service(config);
    const SessionId head = service.openSession(deviceConfig());
    const SessionId id = service.openSession(deviceConfig());
    const QpProblem qp = generateProblem(Domain::Control, 12, 19);

    std::atomic<int> calls{0};
    SessionResult cancelled;
    {
        SlotGate gate(service, head, qp);
        const RequestToken token = service.submitAsync(
            id, qp, SubmitOptions{}, [&](SessionResult result) {
                ++calls;
                cancelled = std::move(result);
            });
        EXPECT_TRUE(token.valid());
        EXPECT_TRUE(service.cancel(token));
        EXPECT_EQ(calls.load(), 1);
        // The request is resolved: a second cancel finds nothing and
        // the token no longer points at a live request.
        EXPECT_FALSE(service.cancel(token));
        EXPECT_FALSE(token.valid());
        gate.release();
    }
    service.waitIdle();

    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(cancelled.status, SolveStatus::Cancelled);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cancelled, 1);
    EXPECT_EQ(stats.of(AdmissionClass::Interactive).cancelled, 1);
    // The cancelled request never touched the session's solver state.
    EXPECT_EQ(service.sessionStats(id).solves, 0);
}

TEST(AsyncSubmit, CancelAfterCompletionReturnsFalse)
{
    SolverService service;
    const SessionId id = service.openSession(deviceConfig());
    const QpProblem qp = generateProblem(Domain::Control, 12, 21);
    std::promise<SessionResult> done;
    const RequestToken token = service.submitAsync(
        id, qp, SubmitOptions{}, [&done](SessionResult result) {
            done.set_value(std::move(result));
        });
    EXPECT_EQ(done.get_future().get().status, SolveStatus::Solved);
    EXPECT_FALSE(service.cancel(token));
    EXPECT_EQ(service.stats().cancelled, 0);
}

TEST(AsyncSubmit, DeprecatedDeadlineShimsMatchOptionsBitwise)
{
    // The positional-deadline shims must be pure forwarders: same
    // problem, same deadline, bit-for-bit the same solution as the
    // SubmitOptions path, on a fresh service each so no cached or
    // warm state can differ.
    const QpProblem qp = generateProblem(Domain::Portfolio, 30, 23);
    auto solveWithOptions = [&qp] {
        SolverService service;
        SubmitOptions options;
        options.deadlineSeconds = 30.0;
        return service.solve(service.openSession(deviceConfig()), qp,
                             options);
    };
    auto solveWithShim = [&qp] {
        SolverService service;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
        return service.solve(service.openSession(deviceConfig()), qp,
                             Real(30.0));
#pragma GCC diagnostic pop
    };

    const SessionResult viaOptions = solveWithOptions();
    const SessionResult viaShim = solveWithShim();
    ASSERT_EQ(viaOptions.status, SolveStatus::Solved);
    ASSERT_EQ(viaShim.status, SolveStatus::Solved);
    ASSERT_EQ(viaOptions.x.size(), viaShim.x.size());
    ASSERT_EQ(viaOptions.y.size(), viaShim.y.size());
    for (std::size_t i = 0; i < viaOptions.x.size(); ++i)
        EXPECT_EQ(viaOptions.x[i], viaShim.x[i]);
    for (std::size_t i = 0; i < viaOptions.y.size(); ++i)
        EXPECT_EQ(viaOptions.y[i], viaShim.y[i]);
    EXPECT_EQ(viaOptions.iterations, viaShim.iterations);
}

TEST(AsyncSubmit, DefaultOptionsMatchLegacyDefaultPathBitwise)
{
    // A default SubmitOptions solve is the old submit(id, qp) path:
    // Interactive class, no per-class bound, no deadline — asserted
    // bitwise against the future adapter and the async callback path.
    const QpProblem qp = generateProblem(Domain::Lasso, 24, 25);
    SolverService service;
    const SessionId id = service.openSession(deviceConfig());
    const SessionResult viaSolve = service.solve(id, qp);

    SolverService asyncService;
    const SessionId asyncId = asyncService.openSession(deviceConfig());
    std::promise<SessionResult> done;
    asyncService.submitAsync(asyncId, qp, SubmitOptions{},
                             [&done](SessionResult result) {
                                 done.set_value(std::move(result));
                             });
    const SessionResult viaAsync = done.get_future().get();

    ASSERT_EQ(viaSolve.status, SolveStatus::Solved);
    ASSERT_EQ(viaAsync.status, SolveStatus::Solved);
    ASSERT_EQ(viaSolve.x.size(), viaAsync.x.size());
    for (std::size_t i = 0; i < viaSolve.x.size(); ++i)
        EXPECT_EQ(viaSolve.x[i], viaAsync.x[i]);
    for (std::size_t i = 0; i < viaSolve.y.size(); ++i)
        EXPECT_EQ(viaSolve.y[i], viaAsync.y[i]);
    EXPECT_EQ(viaSolve.iterations, viaAsync.iterations);
}

TEST(AsyncSubmit, ConcurrentSubmitCancelDrainNeverLosesACallback)
{
    // Raced under TSan in CI: submitters, a canceller, and the worker
    // drain all contend on the admission plane. Every submission must
    // resolve its callback exactly once, whatever the interleaving,
    // and the admission counters must account for every request.
    constexpr int kThreads = 3;
    constexpr int kJobsPerThread = 12;
    ServiceConfig config;
    config.maxConcurrency = 2;
    config.maxQueueDepth = 8;
    SolverService service(config);
    std::vector<SessionId> sessions;
    for (int t = 0; t < kThreads; ++t)
        sessions.push_back(service.openSession(deviceConfig()));
    const QpProblem qp = generateProblem(Domain::Control, 10, 27);

    std::atomic<int> callbacks{0};
    std::mutex tokenMutex;
    std::vector<RequestToken> tokens;
    std::atomic<bool> submitting{true};

    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            for (int i = 0; i < kJobsPerThread; ++i) {
                const auto cls = static_cast<AdmissionClass>(
                    (t + i) % static_cast<int>(kAdmissionClassCount));
                RequestToken token = service.submitAsync(
                    sessions[static_cast<std::size_t>(t)], qp,
                    classOptions(cls),
                    [&callbacks](SessionResult) { ++callbacks; });
                std::lock_guard<std::mutex> lock(tokenMutex);
                tokens.push_back(std::move(token));
            }
        });
    }
    std::thread canceller([&] {
        while (submitting.load()) {
            RequestToken token;
            {
                std::lock_guard<std::mutex> lock(tokenMutex);
                if (!tokens.empty()) {
                    token = std::move(tokens.back());
                    tokens.pop_back();
                }
            }
            service.cancel(token);
        }
    });
    for (std::thread& thread : submitters)
        thread.join();
    submitting.store(false);
    canceller.join();
    service.waitIdle();

    EXPECT_EQ(callbacks.load(), kThreads * kJobsPerThread);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, kThreads * kJobsPerThread);
    // Every submission ended in exactly one terminal bucket.
    EXPECT_EQ(stats.completed + stats.rejected + stats.cancelled +
                  stats.shed + stats.expired + stats.shutdownDrained,
              stats.submitted);
    EXPECT_EQ(stats.queueDepth, 0u);
}

} // namespace
} // namespace rsqp
