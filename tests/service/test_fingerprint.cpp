/**
 * @file
 * Structure-fingerprint tests: value blindness, structure sensitivity,
 * settings sensitivity, and the non-cacheable escape hatch.
 */

#include <gtest/gtest.h>

#include "core/customization.hpp"
#include "problems/suite.hpp"
#include "service/fingerprint.hpp"

namespace rsqp
{
namespace
{

TEST(Fingerprint, BlindToValues)
{
    const QpProblem qp = generateProblem(Domain::Lasso, 30, 7);
    QpProblem other = qp;
    for (Real& v : other.q)
        v = 2.0 * v + 1.0;
    for (Real& v : other.pUpper.values())
        v += 0.5;
    for (Real& v : other.a.values())
        v *= -3.0;

    EXPECT_EQ(fingerprintStructure(qp), fingerprintStructure(other));
}

TEST(Fingerprint, SensitiveToStructure)
{
    const QpProblem a = generateProblem(Domain::Control, 20, 3);
    const QpProblem b = generateProblem(Domain::Control, 21, 3);
    const QpProblem c = generateProblem(Domain::Svm, 20, 3);
    EXPECT_FALSE(fingerprintStructure(a) == fingerprintStructure(b));
    EXPECT_FALSE(fingerprintStructure(a) == fingerprintStructure(c));
}

TEST(Fingerprint, DimensionsRideAlong)
{
    const QpProblem qp = generateProblem(Domain::Huber, 25, 11);
    const StructureFingerprint fp = fingerprintStructure(qp);
    EXPECT_EQ(fp.n, qp.numVariables());
    EXPECT_EQ(fp.m, qp.numConstraints());
    EXPECT_EQ(fp.pNnz, qp.pUpper.nnz());
    EXPECT_EQ(fp.aNnz, qp.a.nnz());
    EXPECT_TRUE(fp.cacheable);
    EXPECT_EQ(fp.toHex().size(), 32u);
}

TEST(Fingerprint, CustomizationSettingsChangeTheKey)
{
    const QpProblem qp = generateProblem(Domain::Portfolio, 20, 5);
    CustomizeSettings base;
    base.c = 16;

    CustomizeSettings wider = base;
    wider.c = 32;
    CustomizeSettings plain = base;
    plain.customizeStructures = false;
    CustomizeSettings forced = base;
    forced.forcedPatterns = {"0123"};

    const StructureFingerprint fpBase =
        fingerprintCustomization(qp, base);
    EXPECT_FALSE(fpBase == fingerprintCustomization(qp, wider));
    EXPECT_FALSE(fpBase == fingerprintCustomization(qp, plain));
    EXPECT_FALSE(fpBase == fingerprintCustomization(qp, forced));
}

TEST(Fingerprint, HostOnlyKnobsStayOutOfTheKey)
{
    const QpProblem qp = generateProblem(Domain::Eqqp, 18, 9);
    CustomizeSettings base;
    base.c = 16;
    CustomizeSettings threaded = base;
    threaded.execution.numThreads = 4;

    EXPECT_EQ(fingerprintCustomization(qp, base),
              fingerprintCustomization(qp, threaded));
}

TEST(Fingerprint, UserObjectiveIsNotCacheable)
{
    const QpProblem qp = generateProblem(Domain::Lasso, 15, 2);
    CustomizeSettings settings;
    settings.search.objective = [](const StructureSet&, Count) {
        return 0.0;
    };
    EXPECT_FALSE(fingerprintCustomization(qp, settings).cacheable);
}

} // namespace
} // namespace rsqp
