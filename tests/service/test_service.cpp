/**
 * @file
 * SolverService front-end tests. The ServiceQueue suite is run under
 * TSan in CI: it drives many concurrent sessions through the admission
 * queue and asserts deterministic per-session results plus clean
 * overflow / deadline / close statuses.
 */

#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "problems/suite.hpp"
#include "service/service.hpp"

namespace rsqp
{
namespace
{

SessionConfig
deviceConfig()
{
    SessionConfig config;
    config.custom.c = 16;
    return config;
}

QpProblem
withScaledCost(const QpProblem& qp, Real factor)
{
    QpProblem out = qp;
    for (Real& v : out.q)
        v *= factor;
    return out;
}

TEST(ServiceQueue, SingleSessionRoundTrip)
{
    SolverService service;
    const SessionId id = service.openSession(deviceConfig());
    const QpProblem qp = generateProblem(Domain::Control, 25, 3);

    const SessionResult result = service.solve(id, qp);
    ASSERT_EQ(result.status, SolveStatus::Solved);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 1);
    EXPECT_EQ(stats.completed, 1);
    EXPECT_EQ(stats.rejected, 0);
    EXPECT_EQ(stats.openSessions, 1u);
    EXPECT_EQ(service.sessionStats(id).solves, 1);
}

TEST(ServiceQueue, UnknownSessionIsRejected)
{
    SolverService service;
    const QpProblem qp = generateProblem(Domain::Lasso, 20, 5);
    const SessionResult result = service.solve(9999, qp);
    EXPECT_EQ(result.status, SolveStatus::Rejected);
    EXPECT_EQ(service.stats().rejected, 1);
}

TEST(ServiceQueue, OverflowYieldsRejectedNotBlocking)
{
    ServiceConfig config;
    config.maxQueueDepth = 2;
    config.maxConcurrency = 1;
    SolverService service(config);
    const SessionId id = service.openSession(deviceConfig());
    const QpProblem qp = generateProblem(Domain::Huber, 25, 7);

    // Burst more requests than depth + concurrency can hold; the
    // excess must come back Rejected immediately, everything admitted
    // must complete.
    std::vector<std::future<SessionResult>> futures;
    for (int i = 0; i < 8; ++i)
        futures.push_back(service.submit(id, qp));
    Count solved = 0;
    Count rejected = 0;
    for (std::future<SessionResult>& future : futures) {
        const SessionResult result = future.get();
        if (result.status == SolveStatus::Rejected)
            ++rejected;
        else if (result.status == SolveStatus::Solved)
            ++solved;
    }
    EXPECT_GT(rejected, 0);
    EXPECT_GT(solved, 0);
    EXPECT_EQ(solved + rejected, 8);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.rejected, rejected);
    EXPECT_EQ(stats.completed, solved);
    EXPECT_LE(stats.peakQueueDepth, 2u);
}

TEST(ServiceQueue, QueuedDeadlineExpiresToTimeLimit)
{
    ServiceConfig config;
    config.maxConcurrency = 1;
    SolverService service(config);
    const SessionId id = service.openSession(deviceConfig());
    const QpProblem qp = generateProblem(Domain::Portfolio, 30, 9);

    // Fill the single execution slot, then enqueue requests whose
    // deadline cannot survive the wait behind the running solves.
    std::vector<std::future<SessionResult>> head;
    for (int i = 0; i < 3; ++i)
        head.push_back(service.submit(id, qp));
    SubmitOptions doomedOptions;
    doomedOptions.deadlineSeconds = 1e-9;
    std::future<SessionResult> doomed =
        service.submit(id, qp, doomedOptions);

    const SessionResult late = doomed.get();
    EXPECT_EQ(late.status, SolveStatus::TimeLimitReached);
    EXPECT_TRUE(late.x.empty());
    for (std::future<SessionResult>& future : head)
        EXPECT_EQ(future.get().status, SolveStatus::Solved);
    EXPECT_EQ(service.stats().expired, 1);

    // The expired request never touched the session: the next solve
    // still rides the parametric fast path of the earlier structure.
    const SessionResult next = service.solve(id, qp);
    ASSERT_EQ(next.status, SolveStatus::Solved);
    EXPECT_TRUE(next.parametricReuse);
}

TEST(ServiceQueue, CloseSessionRejectsQueuedWork)
{
    ServiceConfig config;
    config.maxConcurrency = 1;
    SolverService service(config);
    const SessionId keep = service.openSession(deviceConfig());
    const SessionId close = service.openSession(deviceConfig());
    const QpProblem qp = generateProblem(Domain::Svm, 25, 11);

    // Keep the single slot busy so the to-be-closed session's work is
    // still queued when the close lands.
    std::vector<std::future<SessionResult>> busy;
    for (int i = 0; i < 2; ++i)
        busy.push_back(service.submit(keep, qp));
    std::vector<std::future<SessionResult>> orphaned;
    for (int i = 0; i < 3; ++i)
        orphaned.push_back(service.submit(close, qp));
    service.closeSession(close);

    for (std::future<SessionResult>& future : busy)
        EXPECT_EQ(future.get().status, SolveStatus::Solved);
    Count rejected = 0;
    for (std::future<SessionResult>& future : orphaned)
        if (future.get().status == SolveStatus::Rejected)
            ++rejected;
    // Everything not already running when the session closed bounces.
    EXPECT_GE(rejected, 2);
    service.waitIdle();
    EXPECT_EQ(service.stats().openSessions, 1u);
    EXPECT_EQ(service.solve(close, qp).status, SolveStatus::Rejected);
}

TEST(ServiceQueue, ConcurrentSessionsAreDeterministic)
{
    // N sessions race through the service; every session's result
    // stream must be identical to a serial single-session run of the
    // same request sequence — scheduling must not leak into numerics.
    const QpProblem qp = generateProblem(Domain::Control, 30, 21);
    const int kSessions = 6;
    const int kRepeats = 3;

    // Serial reference: one isolated session, fresh cache.
    std::vector<SessionResult> reference;
    {
        SolverSession session(deviceConfig(),
                              std::make_shared<CustomizationCache>(8));
        for (int r = 0; r < kRepeats; ++r)
            reference.push_back(
                session.solve(withScaledCost(qp, 1.0 + 0.1 * r)));
    }

    SolverService service;
    // Pre-warm the shared cache so the burst below is all hits: racing
    // sessions on an empty cache would each miss (correct, but the
    // miss count would depend on scheduling).
    {
        const SessionId warmup = service.openSession(deviceConfig());
        ASSERT_EQ(service.solve(warmup, qp).status,
                  SolveStatus::Solved);
        service.closeSession(warmup);
    }
    std::vector<SessionId> ids;
    for (int s = 0; s < kSessions; ++s)
        ids.push_back(service.openSession(deviceConfig()));

    // All sessions' requests in flight at once, interleaved.
    std::vector<std::vector<std::future<SessionResult>>> futures(
        static_cast<std::size_t>(kSessions));
    for (int r = 0; r < kRepeats; ++r)
        for (int s = 0; s < kSessions; ++s)
            futures[static_cast<std::size_t>(s)].push_back(
                service.submit(ids[static_cast<std::size_t>(s)],
                               withScaledCost(qp, 1.0 + 0.1 * r)));

    for (int s = 0; s < kSessions; ++s)
        for (int r = 0; r < kRepeats; ++r) {
            const SessionResult result =
                futures[static_cast<std::size_t>(s)]
                       [static_cast<std::size_t>(r)]
                           .get();
            ASSERT_EQ(result.status, reference[r].status)
                << "session " << s << " request " << r;
            EXPECT_EQ(result.x, reference[r].x)
                << "session " << s << " request " << r;
            EXPECT_EQ(result.y, reference[r].y)
                << "session " << s << " request " << r;
            EXPECT_EQ(result.iterations, reference[r].iterations)
                << "session " << s << " request " << r;
        }

    // The structure was customized exactly once service-wide (the
    // warm-up miss); every burst rebuild hit the cache.
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cache.misses, 1);
    EXPECT_EQ(stats.cache.hits, static_cast<Count>(kSessions));
    EXPECT_EQ(stats.cache.size, 1u);
    EXPECT_EQ(stats.completed,
              static_cast<Count>(kSessions * kRepeats + 1));
}

TEST(ServiceQueue, StatsSnapshotsAreConsistentUnderLoad)
{
    SolverService service;
    const QpProblem qp = generateProblem(Domain::Eqqp, 25, 23);
    const SessionId a = service.openSession(deviceConfig());
    const SessionId b = service.openSession(deviceConfig());

    std::vector<std::future<SessionResult>> futures;
    for (int i = 0; i < 4; ++i) {
        futures.push_back(service.submit(a, qp));
        futures.push_back(service.submit(b, qp));
        // Interleaved polling exercises the snapshot path while
        // workers are mid-solve (the TSan target).
        (void)service.stats();
        (void)service.sessionStats(a);
    }
    for (std::future<SessionResult>& future : futures)
        EXPECT_EQ(future.get().status, SolveStatus::Solved);
    service.waitIdle();

    EXPECT_EQ(service.sessionStats(a).solves, 4);
    EXPECT_EQ(service.sessionStats(b).solves, 4);
    EXPECT_EQ(service.stats().completed, 8);
}

TEST(ServiceQueue, DestructorShedsQueuedWorkAsShuttingDown)
{
    // Shutdown contract: whatever already launched finishes with its
    // real status, whatever was still queued resolves ShuttingDown
    // (not Rejected — the client did nothing wrong), and no future is
    // ever abandoned.
    const QpProblem qp = generateProblem(Domain::Lasso, 25, 29);
    std::vector<std::future<SessionResult>> futures;
    {
        SolverService service;
        const SessionId id = service.openSession(deviceConfig());
        for (int i = 0; i < 5; ++i)
            futures.push_back(service.submit(id, qp));
        // The service dies here with requests still in flight.
    }
    int solvedCount = 0;
    int shedCount = 0;
    for (std::future<SessionResult>& future : futures) {
        const SolveStatus status = future.get().status;
        EXPECT_TRUE(status == SolveStatus::Solved ||
                    status == SolveStatus::ShuttingDown);
        if (status == SolveStatus::Solved)
            ++solvedCount;
        else
            ++shedCount;
    }
    // The head request launched at submit time; it must have run.
    EXPECT_GE(solvedCount, 1);
    EXPECT_EQ(solvedCount + shedCount, 5);
}

} // namespace
} // namespace rsqp
