/**
 * @file
 * Timer tests: monotonicity, reset semantics and window accumulation.
 */

#include <thread>

#include <gtest/gtest.h>

#include "common/timer.hpp"

namespace rsqp
{
namespace
{

TEST(Timer, ElapsedIsNonNegativeAndMonotone)
{
    Timer timer;
    const double t1 = timer.seconds();
    const double t2 = timer.seconds();
    EXPECT_GE(t1, 0.0);
    EXPECT_GE(t2, t1);
}

TEST(Timer, MeasuresSleep)
{
    Timer timer;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_GE(timer.seconds(), 0.015);
}

TEST(Timer, ResetRestarts)
{
    Timer timer;
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    timer.reset();
    EXPECT_LT(timer.seconds(), 0.010);
}

TEST(AccumulatingTimer, SumsWindows)
{
    AccumulatingTimer timer;
    for (int i = 0; i < 3; ++i) {
        timer.start();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        timer.stop();
    }
    EXPECT_GE(timer.totalSeconds(), 0.012);
}

TEST(AccumulatingTimer, StopWithoutStartIsNoOp)
{
    AccumulatingTimer timer;
    timer.stop();
    EXPECT_DOUBLE_EQ(timer.totalSeconds(), 0.0);
}

TEST(AccumulatingTimer, TimeOutsideWindowsNotCounted)
{
    AccumulatingTimer timer;
    timer.start();
    timer.stop();
    const double after_first = timer.totalSeconds();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_DOUBLE_EQ(timer.totalSeconds(), after_first);
}

TEST(AccumulatingTimer, ClearResets)
{
    AccumulatingTimer timer;
    timer.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    timer.stop();
    timer.clear();
    EXPECT_DOUBLE_EQ(timer.totalSeconds(), 0.0);
}

} // namespace
} // namespace rsqp
