/**
 * @file
 * Tests of the error-reporting macros: RSQP_FATAL throws FatalError
 * with location info; RSQP_ASSERT is transparent when satisfied.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"

namespace rsqp
{
namespace
{

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(RSQP_FATAL("bad input ", 42), FatalError);
}

TEST(Logging, FatalMessageContainsDetails)
{
    try {
        RSQP_FATAL("dimension ", 3, " != ", 4);
        FAIL() << "should have thrown";
    } catch (const FatalError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("dimension 3 != 4"), std::string::npos);
        EXPECT_NE(what.find("test_logging.cpp"), std::string::npos);
    }
}

TEST(Logging, AssertPassesWhenTrue)
{
    RSQP_ASSERT(1 + 1 == 2, "arithmetic broke");
    SUCCEED();
}

TEST(Logging, VerboseToggle)
{
    setLogVerbose(true);
    EXPECT_TRUE(logVerbose());
    setLogVerbose(false);
    EXPECT_FALSE(logVerbose());
}

TEST(Logging, ComposeMessageStreamsAllArguments)
{
    EXPECT_EQ(detail::composeMessage("a=", 1, " b=", 2.5, " c"),
              "a=1 b=2.5 c");
    EXPECT_EQ(detail::composeMessage(), "");
}

TEST(Logging, FatalErrorIsARuntimeError)
{
    // Library users catch std::runtime_error; FatalError must stay in
    // that hierarchy.
    EXPECT_THROW(RSQP_FATAL("typed failure"), std::runtime_error);
}

TEST(Logging, WarnDoesNotThrow)
{
    setLogVerbose(false);
    EXPECT_NO_THROW(RSQP_WARN("survivable condition ", 7));
    EXPECT_NO_THROW(RSQP_INFORM("status line"));
}

} // namespace
} // namespace rsqp
