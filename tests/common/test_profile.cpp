/**
 * @file
 * Hot-path profiler tests: recording, snapshots, scoped activation
 * (including nesting and suspension), the inactive fast path, and the
 * JSON emission consumed by the perf-smoke CI job.
 */

#include <thread>

#include <gtest/gtest.h>

#include "common/profile.hpp"

namespace rsqp
{
namespace
{

TEST(HotPathProfiler, StartsZeroedAndAccumulates)
{
    HotPathProfiler profiler;
    HotPathProfile empty = profiler.snapshot();
    EXPECT_EQ(empty.totalNanoseconds(), 0u);
    EXPECT_EQ(empty.totalCalls(), 0u);

    profiler.record(ProfilePhase::SpmvP, 100);
    profiler.record(ProfilePhase::SpmvP, 50);
    profiler.record(ProfilePhase::Reduction, 7);

    const HotPathProfile snap = profiler.snapshot();
    EXPECT_EQ(snap[ProfilePhase::SpmvP].nanoseconds, 150u);
    EXPECT_EQ(snap[ProfilePhase::SpmvP].calls, 2u);
    EXPECT_EQ(snap[ProfilePhase::Reduction].nanoseconds, 7u);
    EXPECT_EQ(snap[ProfilePhase::Reduction].calls, 1u);
    EXPECT_EQ(snap[ProfilePhase::SpmvA].calls, 0u);
    EXPECT_EQ(snap.totalNanoseconds(), 157u);
    EXPECT_EQ(snap.totalCalls(), 3u);
}

TEST(HotPathProfiler, ResetZeroesEveryCell)
{
    HotPathProfiler profiler;
    for (std::size_t i = 0; i < kNumProfilePhases; ++i)
        profiler.record(static_cast<ProfilePhase>(i), i + 1);
    profiler.reset();
    const HotPathProfile snap = profiler.snapshot();
    EXPECT_EQ(snap.totalNanoseconds(), 0u);
    EXPECT_EQ(snap.totalCalls(), 0u);
}

TEST(HotPathProfiler, PhaseNamesAreSnakeCaseJsonKeys)
{
    EXPECT_STREQ(toString(ProfilePhase::SpmvP), "spmv_p");
    EXPECT_STREQ(toString(ProfilePhase::SpmvA), "spmv_a");
    EXPECT_STREQ(toString(ProfilePhase::SpmvAt), "spmv_at");
    EXPECT_STREQ(toString(ProfilePhase::FusedVectorOps),
                 "fused_vector_ops");
    EXPECT_STREQ(toString(ProfilePhase::Precond), "precond");
    EXPECT_STREQ(toString(ProfilePhase::Reduction), "reduction");
}

TEST(HotPathProfiler, JsonCarriesEveryPhaseAndTotals)
{
    HotPathProfiler profiler;
    profiler.record(ProfilePhase::SpmvA, 42);
    const std::string json = profiler.snapshot().toJson();
    for (std::size_t i = 0; i < kNumProfilePhases; ++i) {
        const std::string key =
            std::string("\"") + toString(static_cast<ProfilePhase>(i)) +
            "\"";
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    EXPECT_NE(json.find("\"spmv_a\":{\"ns\":42,\"calls\":1}"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"total_ns\":42"), std::string::npos);
    EXPECT_NE(json.find("\"total_calls\":1"), std::string::npos);
}

TEST(ProfileScope, NoActiveProfilerMeansNoRecording)
{
    ASSERT_EQ(activeHotPathProfiler(), nullptr);
    {
        ProfileScope scope(ProfilePhase::SpmvP);
    }
    // Nothing to assert beyond "did not crash": the scope must be a
    // no-op without an installed profiler.
    EXPECT_EQ(activeHotPathProfiler(), nullptr);
}

TEST(ProfileScope, RecordsIntoTheInstalledProfiler)
{
    HotPathProfiler profiler;
    {
        HotPathProfilerScope install(&profiler);
        EXPECT_EQ(activeHotPathProfiler(), &profiler);
        ProfileScope scope(ProfilePhase::Precond);
    }
    EXPECT_EQ(activeHotPathProfiler(), nullptr);
    const HotPathProfile snap = profiler.snapshot();
    EXPECT_EQ(snap[ProfilePhase::Precond].calls, 1u);
}

TEST(ProfileScope, ScopesNestAndRestore)
{
    HotPathProfiler outer, inner;
    HotPathProfilerScope install_outer(&outer);
    {
        ProfileScope scope(ProfilePhase::SpmvP);
    }
    {
        HotPathProfilerScope install_inner(&inner);
        ProfileScope scope(ProfilePhase::SpmvP);
    }
    {
        ProfileScope scope(ProfilePhase::SpmvP);
    }
    EXPECT_EQ(outer.snapshot()[ProfilePhase::SpmvP].calls, 2u);
    EXPECT_EQ(inner.snapshot()[ProfilePhase::SpmvP].calls, 1u);
}

TEST(ProfileScope, NullScopeSuspendsProfiling)
{
    HotPathProfiler profiler;
    HotPathProfilerScope install(&profiler);
    {
        HotPathProfilerScope suspend(nullptr);
        EXPECT_EQ(activeHotPathProfiler(), nullptr);
        ProfileScope scope(ProfilePhase::SpmvAt);
    }
    EXPECT_EQ(activeHotPathProfiler(), &profiler);
    EXPECT_EQ(profiler.snapshot()[ProfilePhase::SpmvAt].calls, 0u);
}

TEST(ProfileScope, ActivationIsPerThread)
{
    HotPathProfiler profiler;
    HotPathProfilerScope install(&profiler);
    // Another thread sees no active profiler (and can install its own
    // without disturbing this one).
    std::thread worker([] {
        EXPECT_EQ(activeHotPathProfiler(), nullptr);
        ProfileScope scope(ProfilePhase::SpmvP);
    });
    worker.join();
    EXPECT_EQ(profiler.snapshot()[ProfilePhase::SpmvP].calls, 0u);
    EXPECT_EQ(activeHotPathProfiler(), &profiler);
}

TEST(ProfileScope, ConcurrentRecordingIsLossless)
{
    HotPathProfiler profiler;
    constexpr int kThreads = 4;
    constexpr int kCallsPerThread = 250;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&profiler] {
            HotPathProfilerScope install(&profiler);
            for (int i = 0; i < kCallsPerThread; ++i)
                ProfileScope scope(ProfilePhase::Reduction);
        });
    for (std::thread& worker : workers)
        worker.join();
    const HotPathProfile snap = profiler.snapshot();
    EXPECT_EQ(snap[ProfilePhase::Reduction].calls,
              static_cast<std::uint64_t>(kThreads * kCallsPerThread));
}

} // namespace
} // namespace rsqp
