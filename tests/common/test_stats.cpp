/**
 * @file
 * Tests of the statistics helpers and the text-table writer.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "common/table.hpp"

namespace rsqp
{
namespace
{

TEST(RunningStats, BasicMoments)
{
    RunningStats stats;
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0})
        stats.add(v);
    EXPECT_EQ(stats.count(), 5u);
    EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 5.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 2.5);  // sample variance
}

TEST(RunningStats, SingleValue)
{
    RunningStats stats;
    stats.add(42.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 42.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(Percentile, MedianAndExtremes)
{
    std::vector<double> samples = {5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(samples, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(samples, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(samples, 100.0), 5.0);
}

TEST(Percentile, Interpolates)
{
    std::vector<double> samples = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(samples, 25.0), 2.5);
}

TEST(GeometricMean, KnownValues)
{
    EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_NEAR(geometricMean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(Format, FixedAndSci)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(-1.0, 0), "-1");
    EXPECT_EQ(formatSci(12345.0, 2), "1.23e+04");
}

TEST(TextTable, AlignedOutput)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22"});
    std::ostringstream oss;
    table.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TextTable, CsvQuoting)
{
    TextTable table({"a", "b"});
    table.addRow({"x,y", "plain"});
    std::ostringstream oss;
    table.printCsv(oss);
    EXPECT_NE(oss.str().find("\"x,y\""), std::string::npos);
}

} // namespace
} // namespace rsqp
