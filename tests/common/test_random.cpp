/**
 * @file
 * Tests of the deterministic RNG: reproducibility, distribution sanity
 * and the sampling helpers.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.hpp"

namespace rsqp
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a() == b())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const Real u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const Real u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, NormalMomentsReasonable)
{
    Rng rng(11);
    const int count = 200000;
    Real sum = 0.0, sq = 0.0;
    for (int i = 0; i < count; ++i) {
        const Real x = rng.normal();
        sum += x;
        sq += x * x;
    }
    const Real mean = sum / count;
    const Real var = sq / count - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters)
{
    Rng rng(13);
    const int count = 100000;
    Real sum = 0.0;
    for (int i = 0; i < count; ++i)
        sum += rng.normal(5.0, 2.0);
    EXPECT_NEAR(sum / count, 5.0, 0.05);
}

TEST(Rng, UniformIndexInRange)
{
    Rng rng(3);
    std::set<Index> seen;
    for (int i = 0; i < 1000; ++i) {
        const Index v = rng.uniformIndex(10);
        EXPECT_GE(v, 0);
        EXPECT_LT(v, 10);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, SampleDistinctProperties)
{
    Rng rng(17);
    for (Index n : {1, 5, 20, 100}) {
        for (Index k = 0; k <= std::min<Index>(n, 10); ++k) {
            const IndexVector sample = rng.sampleDistinct(n, k);
            ASSERT_EQ(static_cast<Index>(sample.size()), k);
            // Sorted and distinct and in range.
            for (std::size_t i = 0; i < sample.size(); ++i) {
                EXPECT_GE(sample[i], 0);
                EXPECT_LT(sample[i], n);
                if (i > 0)
                    EXPECT_LT(sample[i - 1], sample[i]);
            }
        }
    }
}

TEST(Rng, SampleDistinctFullRange)
{
    Rng rng(19);
    const IndexVector sample = rng.sampleDistinct(8, 8);
    ASSERT_EQ(sample.size(), 8u);
    for (Index i = 0; i < 8; ++i)
        EXPECT_EQ(sample[static_cast<std::size_t>(i)], i);
}

TEST(Rng, PermutationIsPermutation)
{
    Rng rng(23);
    for (Index n : {1, 2, 17, 100}) {
        IndexVector perm = rng.permutation(n);
        ASSERT_EQ(static_cast<Index>(perm.size()), n);
        std::sort(perm.begin(), perm.end());
        for (Index i = 0; i < n; ++i)
            EXPECT_EQ(perm[static_cast<std::size_t>(i)], i);
    }
}

TEST(Rng, PermutationIsShuffled)
{
    Rng rng(29);
    const IndexVector perm = rng.permutation(100);
    Index fixed = 0;
    for (Index i = 0; i < 100; ++i)
        if (perm[static_cast<std::size_t>(i)] == i)
            ++fixed;
    EXPECT_LT(fixed, 20);
}

} // namespace
} // namespace rsqp
