/**
 * @file
 * Tests of the shared worker pool: range coverage, zero/one-element
 * ranges, exception propagation, nested parallelFor/submit, pool
 * reuse, and the determinism contract of the partitioned reductions
 * (bitwise-identical results at any worker count).
 */

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "common/thread_pool.hpp"

namespace rsqp
{
namespace
{

TEST(ThreadPool, ZeroLengthRangeIsANoop)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallelFor(5, 5, 1, [&](Index, Index) { ++calls; });
    pool.parallelFor(7, 3, 1, [&](Index, Index) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
    EXPECT_EQ(pool.reduceSum(0, 0, 4,
                             [](Index, Index) { return 1.0; }),
              0.0);
}

TEST(ThreadPool, OneElementRange)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallelFor(3, 4, 16, [&](Index b, Index e) {
        EXPECT_EQ(b, 3);
        EXPECT_EQ(e, 4);
        ++calls;
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    const Index n = 10007; // prime, not a multiple of any grain
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    for (auto& h : hits)
        h.store(0);
    // Explicit worker budget: the default follows the host thread
    // count, which may be 1 on small CI machines.
    pool.parallelFor(0, n, 64, [&](Index b, Index e) {
        for (Index i = b; i < e; ++i)
            ++hits[static_cast<std::size_t>(i)];
    }, 4);
    for (Index i = 0; i < n; ++i)
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "index " << i;
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives)
{
    ThreadPool pool(3);
    EXPECT_THROW(
        pool.parallelFor(0, 1000, 8,
                         [&](Index b, Index) {
                             if (b >= 496)
                                 throw std::runtime_error("chunk boom");
                         },
                         4),
        std::runtime_error);

    // The pool must stay usable after a failed region.
    std::atomic<Index> total{0};
    pool.parallelFor(0, 1000, 8, [&](Index b, Index e) {
        total += e - b;
    }, 4);
    EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock)
{
    ThreadPool pool(2);
    std::atomic<Index> total{0};
    pool.parallelFor(0, 8, 1, [&](Index b, Index e) {
        for (Index i = b; i < e; ++i) {
            EXPECT_TRUE(ThreadPool::insideWorker());
            // Nested region: must complete inline, not re-enter the
            // pool (which would deadlock with every worker waiting).
            pool.parallelFor(0, 100, 10, [&](Index nb, Index ne) {
                total += ne - nb;
            }, 3);
        }
    }, 3);
    EXPECT_EQ(total.load(), 8 * 100);
    EXPECT_FALSE(ThreadPool::insideWorker());
}

TEST(ThreadPool, NestedSubmitFromWorker)
{
    ThreadPool pool(2);
    std::atomic<bool> inner_ran{false};
    pool.submit([&] {
        pool.submit([&] { inner_ran.store(true); });
    });
    pool.waitIdle();
    EXPECT_TRUE(inner_ran.load());
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 0u);
    bool ran = false;
    pool.submit([&] { ran = true; });
    EXPECT_TRUE(ran);
    std::atomic<Index> total{0};
    pool.parallelFor(0, 100, 10, [&](Index b, Index e) {
        total += e - b;
    });
    EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, CallerReturnsWhileWorkersAreBusyElsewhere)
{
    // Regression: parallelFor must wait for the *chunks* to finish,
    // not for its queued helper tasks to be dequeued. With every
    // worker pinned by an unrelated long-running task, the caller
    // drains the whole range itself and must return before the
    // workers free up (the old handshake deadlocked here).
    ThreadPool pool(2);
    std::mutex gate_mutex;
    std::condition_variable gate;
    bool release = false;
    for (int i = 0; i < 2; ++i)
        pool.submit([&] {
            std::unique_lock<std::mutex> lock(gate_mutex);
            gate.wait(lock, [&] { return release; });
        });

    std::atomic<Index> total{0};
    pool.parallelFor(0, 1000, 10,
                     [&](Index b, Index e) { total += e - b; }, 4);
    EXPECT_EQ(total.load(), 1000);

    {
        std::lock_guard<std::mutex> lock(gate_mutex);
        release = true;
    }
    gate.notify_all();
    pool.waitIdle();
}

TEST(ThreadPool, ReuseAcrossManyRegions)
{
    ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::atomic<Index> total{0};
        pool.parallelFor(0, 999, 7, [&](Index b, Index e) {
            total += e - b;
        }, 4);
        ASSERT_EQ(total.load(), 999) << "round " << round;
    }
}

TEST(ThreadPool, ReduceSumDeterministicAcrossWorkerCounts)
{
    ThreadPool pool(8);
    Rng rng(99);
    const Index n = 100000;
    Vector x(static_cast<std::size_t>(n));
    for (Real& v : x)
        v = rng.normal();
    auto partial = [&](Index b, Index e) {
        Real acc = 0.0;
        for (Index i = b; i < e; ++i)
            acc += x[static_cast<std::size_t>(i)];
        return acc;
    };
    const Real serial = pool.reduceSum(0, n, kParallelGrain, partial, 1);
    for (unsigned workers : {2u, 3u, 8u}) {
        for (int repeat = 0; repeat < 3; ++repeat) {
            const Real parallel = pool.reduceSum(0, n, kParallelGrain,
                                                 partial, workers);
            // Bitwise equality, not a tolerance.
            ASSERT_EQ(std::memcmp(&serial, &parallel, sizeof(Real)), 0)
                << "workers " << workers << " repeat " << repeat;
        }
    }
}

TEST(ThreadPool, ReduceSumMatchesExplicitChunkOrder)
{
    ThreadPool pool(4);
    Rng rng(7);
    const Index n = 20000;
    const Index grain = 1024;
    Vector x(static_cast<std::size_t>(n));
    for (Real& v : x)
        v = rng.normal();
    auto partial = [&](Index b, Index e) {
        Real acc = 0.0;
        for (Index i = b; i < e; ++i)
            acc += x[static_cast<std::size_t>(i)];
        return acc;
    };
    // Reference: explicit fixed-grain partials combined in order.
    Real expected = 0.0;
    bool first = true;
    for (Index b = 0; b < n; b += grain) {
        const Real p = partial(b, std::min(b + grain, n));
        expected = first ? p : expected + p;
        first = false;
    }
    const Real got = pool.reduceSum(0, n, grain, partial);
    EXPECT_EQ(std::memcmp(&expected, &got, sizeof(Real)), 0);
}

TEST(ThreadPool, ReduceMaxFindsTheMaximum)
{
    ThreadPool pool(4);
    const Index n = 50000;
    Vector x(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i)
        x[static_cast<std::size_t>(i)] =
            static_cast<Real>((i * 2654435761u) % 100003);
    auto partial = [&](Index b, Index e) {
        Real best = -1.0;
        for (Index i = b; i < e; ++i)
            best = std::max(best, x[static_cast<std::size_t>(i)]);
        return best;
    };
    const Real serial = pool.reduceMax(0, n, 512, -1.0, partial, 1);
    const Real parallel = pool.reduceMax(0, n, 512, -1.0, partial, 8);
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(serial,
              *std::max_element(x.begin(), x.end()));
}

TEST(ThreadPool, NumThreadsScopeOverridesAndRestores)
{
    const Index ambient = effectiveNumThreads();
    EXPECT_GE(ambient, 1);
    {
        NumThreadsScope scope(3);
        EXPECT_EQ(effectiveNumThreads(), 3);
        {
            // 0 = inherit: keeps the innermost active override.
            NumThreadsScope inherit(0);
            EXPECT_EQ(effectiveNumThreads(), 3);
            NumThreadsScope inner(7);
            EXPECT_EQ(effectiveNumThreads(), 7);
        }
        EXPECT_EQ(effectiveNumThreads(), 3);
    }
    EXPECT_EQ(effectiveNumThreads(), ambient);
}

TEST(ThreadPool, GlobalPoolIsUsable)
{
    std::atomic<Index> total{0};
    ThreadPool::global().parallelFor(0, 1000, 16,
                                     [&](Index b, Index e) {
                                         total += e - b;
                                     },
                                     4);
    EXPECT_EQ(total.load(), 1000);
    EXPECT_GE(ThreadPool::global().workerCount(), 3u);
}

} // namespace
} // namespace rsqp
