/**
 * @file
 * ExecutionConfig tests: the single numThreads knob shared by
 * OsqpSettings / CustomizeSettings / ArchConfig, and the deprecated
 * per-struct fields that forward into it for one release.
 */

#include <gtest/gtest.h>

#include "arch/config.hpp"
#include "common/execution.hpp"
#include "core/customization.hpp"
#include "osqp/settings.hpp"

namespace rsqp
{
namespace
{

TEST(ExecutionConfig, ResolvePrefersLegacyWhenSet)
{
    ExecutionConfig execution;
    execution.numThreads = 4;
    EXPECT_EQ(resolveNumThreads(execution, 0), 4);
    EXPECT_EQ(resolveNumThreads(execution, 2), 2);
    EXPECT_EQ(resolveNumThreads(ExecutionConfig{}, 0), 0);
}

TEST(ExecutionConfig, OsqpSettingsForwarding)
{
    OsqpSettings settings;
    EXPECT_EQ(settings.resolvedNumThreads(), 0);
    settings.execution.numThreads = 3;
    EXPECT_EQ(settings.resolvedNumThreads(), 3);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    settings.numThreads = 5;  // legacy field wins while it exists
#pragma GCC diagnostic pop
    EXPECT_EQ(settings.resolvedNumThreads(), 5);
}

TEST(ExecutionConfig, CustomizeSettingsForwarding)
{
    CustomizeSettings custom;
    EXPECT_EQ(custom.resolvedNumThreads(), 0);
    custom.execution.numThreads = 2;
    EXPECT_EQ(custom.resolvedNumThreads(), 2);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    custom.numThreads = 7;
#pragma GCC diagnostic pop
    EXPECT_EQ(custom.resolvedNumThreads(), 7);
}

TEST(ExecutionConfig, ArchConfigForwarding)
{
    ArchConfig config;
    EXPECT_EQ(config.resolvedNumThreads(), 0);
    config.execution.numThreads = 6;
    EXPECT_EQ(config.resolvedNumThreads(), 6);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    config.numThreads = 1;
#pragma GCC diagnostic pop
    EXPECT_EQ(config.resolvedNumThreads(), 1);
}

} // namespace
} // namespace rsqp
