/**
 * @file
 * ExecutionConfig tests: the single numThreads knob shared by
 * OsqpSettings / CustomizeSettings / ArchConfig. The deprecated
 * per-struct forwarding aliases are gone; resolvedNumThreads() now
 * simply reads execution.numThreads on every carrier struct.
 */

#include <gtest/gtest.h>

#include "arch/config.hpp"
#include "common/execution.hpp"
#include "core/customization.hpp"
#include "osqp/settings.hpp"

namespace rsqp
{
namespace
{

TEST(ExecutionConfig, OsqpSettingsReadThrough)
{
    OsqpSettings settings;
    EXPECT_EQ(settings.resolvedNumThreads(), 0);
    settings.execution.numThreads = 3;
    EXPECT_EQ(settings.resolvedNumThreads(), 3);
}

TEST(ExecutionConfig, CustomizeSettingsReadThrough)
{
    CustomizeSettings custom;
    EXPECT_EQ(custom.resolvedNumThreads(), 0);
    custom.execution.numThreads = 2;
    EXPECT_EQ(custom.resolvedNumThreads(), 2);
}

TEST(ExecutionConfig, ArchConfigReadThrough)
{
    ArchConfig config;
    EXPECT_EQ(config.resolvedNumThreads(), 0);
    config.execution.numThreads = 6;
    EXPECT_EQ(config.resolvedNumThreads(), 6);
}

TEST(ExecutionConfig, PrecisionModeNames)
{
    EXPECT_STREQ(precisionModeName(PrecisionMode::Fp64), "fp64");
    EXPECT_STREQ(precisionModeName(PrecisionMode::MixedFp32),
                 "mixed-fp32");
}

} // namespace
} // namespace rsqp
