/**
 * @file
 * LruCache unit tests: recency order, eviction, displaced-value
 * return, counters, and the disabled (capacity 0) mode.
 */

#include <string>

#include <gtest/gtest.h>

#include "common/lru_cache.hpp"

namespace rsqp
{
namespace
{

TEST(LruCache, FindMissesThenHits)
{
    LruCache<int, std::string> cache(2);
    EXPECT_EQ(cache.find(1), nullptr);
    EXPECT_FALSE(cache.insert(1, "one").has_value());
    std::string* hit = cache.find(1);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, "one");

    const LruCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.size, 1u);
    EXPECT_EQ(stats.capacity, 2u);
}

TEST(LruCache, EvictsLeastRecentlyTouched)
{
    LruCache<int, int> cache(2);
    cache.insert(1, 10);
    cache.insert(2, 20);
    // Touch 1 so 2 becomes the LRU entry.
    ASSERT_NE(cache.find(1), nullptr);
    const auto evicted = cache.insert(3, 30);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 20);
    EXPECT_EQ(cache.find(2), nullptr);
    EXPECT_NE(cache.find(1), nullptr);
    EXPECT_NE(cache.find(3), nullptr);
    EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(LruCache, OverwriteReturnsDisplacedValue)
{
    LruCache<int, int> cache(2);
    cache.insert(1, 10);
    const auto displaced = cache.insert(1, 11);
    ASSERT_TRUE(displaced.has_value());
    EXPECT_EQ(*displaced, 10);
    EXPECT_EQ(cache.size(), 1u);
    int* hit = cache.find(1);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, 11);
    // An in-place overwrite is not an eviction.
    EXPECT_EQ(cache.stats().evictions, 0);
}

TEST(LruCache, OverwriteRefreshesRecency)
{
    LruCache<int, int> cache(2);
    cache.insert(1, 10);
    cache.insert(2, 20);
    cache.insert(1, 11);  // 1 becomes most recent; 2 is now LRU
    const auto evicted = cache.insert(3, 30);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 20);
}

TEST(LruCache, CapacityZeroStoresNothing)
{
    LruCache<int, int> cache(0);
    const auto bounced = cache.insert(1, 10);
    ASSERT_TRUE(bounced.has_value());
    EXPECT_EQ(*bounced, 10);
    EXPECT_EQ(cache.find(1), nullptr);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCache, ClearEmptiesButKeepsCounters)
{
    LruCache<int, int> cache(4);
    cache.insert(1, 10);
    cache.insert(2, 20);
    ASSERT_NE(cache.find(1), nullptr);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.find(1), nullptr);
    const LruCacheStats stats = cache.stats();
    EXPECT_EQ(stats.insertions, 2);
    EXPECT_EQ(stats.hits, 1);
}

} // namespace
} // namespace rsqp
