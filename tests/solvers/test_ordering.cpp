/**
 * @file
 * Reverse Cuthill-McKee ordering tests: permutation validity,
 * bandwidth reduction on banded-but-shuffled patterns, and fill-in
 * reduction of the downstream LDL factor.
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "linalg/kkt.hpp"
#include "linalg/vector_ops.hpp"
#include "solvers/kkt_solver.hpp"
#include "solvers/ldl.hpp"
#include "solvers/ordering.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

/** Tridiagonal SPD pattern of size n, rows permuted by a shuffle. */
CscMatrix
shuffledTridiagonal(Index n, Rng& rng, IndexVector& shuffle)
{
    shuffle = rng.permutation(n);
    IndexVector inv(shuffle.size());
    for (Index i = 0; i < n; ++i)
        inv[static_cast<std::size_t>(shuffle[static_cast<std::size_t>(i)])] =
            i;
    TripletList triplets(n, n);
    for (Index i = 0; i < n; ++i) {
        triplets.add(inv[static_cast<std::size_t>(i)],
                     inv[static_cast<std::size_t>(i)], 4.0);
        if (i + 1 < n) {
            Index r = inv[static_cast<std::size_t>(i)];
            Index c = inv[static_cast<std::size_t>(i + 1)];
            if (r > c)
                std::swap(r, c);
            triplets.add(r, c, -1.0);
        }
    }
    return CscMatrix::fromTriplets(triplets);
}

TEST(Rcm, ReturnsValidPermutation)
{
    Rng rng(1);
    IndexVector shuffle;
    const CscMatrix upper = shuffledTridiagonal(20, rng, shuffle);
    IndexVector perm = reverseCuthillMcKee(upper);
    ASSERT_EQ(perm.size(), 20u);
    IndexVector sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    for (Index i = 0; i < 20; ++i)
        EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rcm, RecoversSmallBandwidth)
{
    Rng rng(2);
    IndexVector shuffle;
    const CscMatrix upper = shuffledTridiagonal(50, rng, shuffle);
    IndexVector natural(50);
    std::iota(natural.begin(), natural.end(), Index{0});
    const Index band_before = symmetricBandwidth(upper, natural);
    const IndexVector perm = reverseCuthillMcKee(upper);
    const Index band_after = symmetricBandwidth(upper, perm);
    // A shuffled tridiagonal has large bandwidth; RCM restores ~1.
    EXPECT_GT(band_before, 5);
    EXPECT_LE(band_after, 2);
}

TEST(Rcm, HandlesDisconnectedComponents)
{
    // Two disjoint 3-cliques plus an isolated vertex.
    TripletList triplets(7, 7);
    for (Index base : {0, 3}) {
        for (Index i = 0; i < 3; ++i) {
            triplets.add(base + i, base + i, 1.0);
            for (Index j = i + 1; j < 3; ++j)
                triplets.add(base + i, base + j, 1.0);
        }
    }
    triplets.add(6, 6, 1.0);
    const CscMatrix upper = CscMatrix::fromTriplets(triplets);
    IndexVector perm = reverseCuthillMcKee(upper);
    std::sort(perm.begin(), perm.end());
    for (Index i = 0; i < 7; ++i)
        EXPECT_EQ(perm[static_cast<std::size_t>(i)], i);
}

TEST(Rcm, ReducesLdlFill)
{
    // Arrow matrix: dense first row/column. Natural order fills the
    // whole factor; RCM pushes the hub to the end.
    const Index n = 30;
    TripletList triplets(n, n);
    for (Index i = 0; i < n; ++i)
        triplets.add(i, i, 10.0);
    for (Index j = 1; j < n; ++j)
        triplets.add(0, j, 1.0);
    const CscMatrix upper = CscMatrix::fromTriplets(triplets);

    LdlFactorization natural_ldl(upper);
    const IndexVector perm = reverseCuthillMcKee(upper);
    const CscMatrix permuted = upper.symUpperPermute(perm);
    LdlFactorization rcm_ldl(permuted);
    EXPECT_LT(rcm_ldl.lnnz(), natural_ldl.lnnz());
    EXPECT_EQ(rcm_ldl.lnnz(), n - 1);  // hub last: only its column fills
}

TEST(Ordering, NaturalIsIdentity)
{
    Rng rng(3);
    const CscMatrix upper = test::randomSpdUpper(9, 0.3, rng);
    const IndexVector perm =
        computeOrdering(upper, OrderingKind::Natural);
    for (Index i = 0; i < 9; ++i)
        EXPECT_EQ(perm[static_cast<std::size_t>(i)], i);
}


TEST(MinDegree, ReturnsValidPermutation)
{
    Rng rng(7);
    const CscMatrix upper = test::randomSpdUpper(25, 0.2, rng);
    IndexVector perm = minimumDegree(upper);
    ASSERT_EQ(perm.size(), 25u);
    std::sort(perm.begin(), perm.end());
    for (Index i = 0; i < 25; ++i)
        EXPECT_EQ(perm[static_cast<std::size_t>(i)], i);
}

TEST(MinDegree, ArrowMatrixHubLast)
{
    // Dense first row/column: minimum degree defers the hub to the
    // end, giving the minimal n-1 fill.
    const Index n = 25;
    TripletList triplets(n, n);
    for (Index i = 0; i < n; ++i)
        triplets.add(i, i, 10.0);
    for (Index j = 1; j < n; ++j)
        triplets.add(0, j, 1.0);
    const CscMatrix upper = CscMatrix::fromTriplets(triplets);
    const IndexVector perm = minimumDegree(upper);
    // The hub is deferred until its degree ties the last leaves, so
    // it lands in one of the final two positions.
    EXPECT_TRUE(perm.back() == 0 || perm[perm.size() - 2] == 0);

    const CscMatrix permuted = upper.symUpperPermute(perm);
    LdlFactorization ldl(permuted);
    EXPECT_EQ(ldl.lnnz(), n - 1);
}

TEST(MinDegree, NoWorseFillThanNaturalOnKkt)
{
    Rng rng(11);
    const CscMatrix p = test::randomSpdUpper(30, 0.1, rng);
    const CscMatrix a = test::randomSparse(15, 30, 0.1, rng);
    KktAssembler assembler(p, a, 1e-6, constantVector(15, 0.5));
    const CscMatrix& kkt = assembler.kkt();

    LdlFactorization natural(kkt);
    const IndexVector perm = minimumDegree(kkt);
    LdlFactorization ordered(kkt.symUpperPermute(perm));
    EXPECT_LE(ordered.lnnz(), natural.lnnz());
}

TEST(MinDegree, FactorizationStillCorrect)
{
    Rng rng(13);
    const CscMatrix p = test::randomSpdUpper(20, 0.2, rng);
    const CscMatrix a = test::randomSparse(10, 20, 0.25, rng);
    DirectKktSolver solver(p, a, 1e-6, constantVector(10, 0.3),
                           OrderingKind::MinDegree);
    DirectKktSolver reference(p, a, 1e-6, constantVector(10, 0.3),
                              OrderingKind::Natural);
    const Vector rhs_x = test::randomVector(20, rng);
    const Vector rhs_z = test::randomVector(10, rng);
    Vector x1, z1, x2, z2;
    solver.solve(rhs_x, rhs_z, x1, z1);
    reference.solve(rhs_x, rhs_z, x2, z2);
    EXPECT_LT(test::maxAbsDiff(x1, x2), 1e-9);
}

} // namespace
} // namespace rsqp
