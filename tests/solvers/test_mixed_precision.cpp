/**
 * @file
 * Mixed-precision (fp32-storage / fp64-accumulate) PCG tests: the
 * refinement-wrapped inner solve must reach the same fp64 tolerance
 * as the pure-double path, report its sweeps, rescue itself in fp64
 * when fp32 stalls, and plumb end to end through OsqpSolver via the
 * ExecutionConfig precision knob.
 */

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "linalg/kkt.hpp"
#include "linalg/vector_ops.hpp"
#include "osqp/problem.hpp"
#include "osqp/solver.hpp"
#include "osqp/validate.hpp"
#include "problems/generators.hpp"
#include "solvers/kkt_solver.hpp"
#include "solvers/pcg.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

using test::randomSparse;
using test::randomSpdUpper;
using test::randomVector;

struct MixedPcgFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        Rng rng(7);
        p = randomSpdUpper(40, 0.2, rng);
        a = randomSparse(25, 40, 0.2, rng);
        rho = constantVector(25, 0.8);
        op = std::make_unique<ReducedKktOperator>(p, a, 1e-6, rho);
        op->enableFp32Mirror();
        precond = std::make_unique<JacobiPreconditioner>(op->diagonal());
        b = randomVector(40, rng);
    }

    CscMatrix p, a;
    Vector rho, b;
    std::unique_ptr<ReducedKktOperator> op;
    std::unique_ptr<JacobiPreconditioner> precond;
};

TEST_F(MixedPcgFixture, ApplyFp32TracksFp64Apply)
{
    Rng rng(11);
    const Vector x = randomVector(40, rng);
    Vector y64;
    op->apply(x, y64);

    FloatVector x32, y32;
    castToF32(x, x32);
    op->applyFp32(x32, y32);

    const Real scale = 1.0 + normInf(y64);
    for (std::size_t i = 0; i < y64.size(); ++i)
        EXPECT_NEAR(static_cast<Real>(y32[i]), y64[i], 1e-4 * scale)
            << "element " << i;
}

TEST_F(MixedPcgFixture, Fp32MirrorTracksSetRhoAndRefreshValues)
{
    Vector rho2(25, 2.5);
    op->setRho(rho2);
    CscMatrix p2 = p;
    for (Real& v : p2.values())
        v *= 1.25;
    ReducedKktOperator fresh(p2, a, 1e-6, rho2);
    fresh.enableFp32Mirror();

    // Rewrite the shared P storage in place, then refresh the operator.
    for (Real& v : p.values())
        v *= 1.25;
    op->refreshValues();

    Rng rng(13);
    const Vector x = randomVector(40, rng);
    FloatVector x32, y_op, y_fresh;
    castToF32(x, x32);
    op->applyFp32(x32, y_op);
    fresh.applyFp32(x32, y_fresh);
    ASSERT_EQ(y_op.size(), y_fresh.size());
    for (std::size_t i = 0; i < y_op.size(); ++i)
        EXPECT_EQ(y_op[i], y_fresh[i]) << "element " << i;
}

TEST_F(MixedPcgFixture, ConvergesToSameFp64ToleranceAsPureDouble)
{
    PcgSettings settings;
    settings.epsRel = 1e-10;
    settings.epsAbs = 1e-12;
    settings.adaptiveTolerance = false;
    settings.precision = PrecisionMode::MixedFp32;

    Vector x(40, 0.0);
    const PcgResult mixed = pcgSolveMixed(*op, *precond, b, x, settings);
    ASSERT_TRUE(mixed.converged);
    EXPECT_TRUE(mixed.usedMixedPrecision);
    EXPECT_GE(mixed.refinementSweeps, 1);

    // The fp64 residual of the returned iterate meets the same
    // threshold the pure-double solver would have used.
    Vector kx;
    op->apply(x, kx);
    Vector r = b;
    axpy(-1.0, kx, r);
    const Real threshold =
        std::max(settings.epsAbs, settings.epsRel * norm2(b));
    EXPECT_LE(norm2(r), threshold);

    // And the solution matches a pure-fp64 solve to that tolerance.
    Vector x64(40, 0.0);
    const PcgResult pure = pcgSolve(*op, *precond, b, x64, settings);
    ASSERT_TRUE(pure.converged);
    EXPECT_FALSE(pure.usedMixedPrecision);
    EXPECT_LT(test::maxAbsDiff(x, x64), 1e-7);
}

TEST_F(MixedPcgFixture, ZeroRhsConvergesWithoutInnerSweeps)
{
    PcgSettings settings;
    settings.precision = PrecisionMode::MixedFp32;
    Vector x(40, 0.0);
    const Vector zero(40, 0.0);
    const PcgResult result =
        pcgSolveMixed(*op, *precond, zero, x, settings);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.refinementSweeps, 0);
    EXPECT_EQ(result.iterations, 0);
}

TEST_F(MixedPcgFixture, ExhaustedSweepsTriggerFp64Rescue)
{
    // One refinement sweep at a loose inner tolerance cannot reach
    // 1e-10; the solve must finish (converged) through the fp64
    // rescue rather than return an inaccurate iterate.
    PcgSettings settings;
    settings.epsRel = 1e-10;
    settings.adaptiveTolerance = false;
    settings.precision = PrecisionMode::MixedFp32;
    settings.maxRefinementSweeps = 1;
    settings.mixedInnerEpsRel = 0.5;

    Vector x(40, 0.0);
    const PcgResult result = pcgSolveMixed(*op, *precond, b, x, settings);
    EXPECT_TRUE(result.converged);
    EXPECT_TRUE(result.fp64Rescue);
    EXPECT_TRUE(result.usedMixedPrecision);

    Vector kx;
    op->apply(x, kx);
    Vector r = b;
    axpy(-1.0, kx, r);
    EXPECT_LE(norm2(r),
              std::max(settings.epsAbs, settings.epsRel * norm2(b)));
}

TEST(MixedPrecisionKktSolver, IndirectSolverReportsMixedStats)
{
    Rng rng(17);
    const CscMatrix p = randomSpdUpper(30, 0.25, rng);
    const CscMatrix a = randomSparse(18, 30, 0.25, rng);
    const Vector rho = constantVector(18, 1.0);

    PcgSettings pcg;
    pcg.precision = PrecisionMode::MixedFp32;
    pcg.adaptiveTolerance = false;
    pcg.epsRel = 1e-9;
    IndirectKktSolver solver(p, a, 1e-6, rho, pcg);

    const Vector rhs_x = randomVector(30, rng);
    const Vector rhs_z = randomVector(18, rng);
    Vector x_tilde, z_tilde;
    const KktSolveStats stats =
        solver.solve(rhs_x, rhs_z, x_tilde, z_tilde);
    EXPECT_TRUE(stats.usedMixedPrecision);
    EXPECT_GE(stats.refinementSweeps, 1);
    EXPECT_GT(stats.pcgIterations, 0);

    // Against a pure-fp64 backend on the same step.
    PcgSettings pcg64 = pcg;
    pcg64.precision = PrecisionMode::Fp64;
    IndirectKktSolver solver64(p, a, 1e-6, rho, pcg64);
    Vector x64, z64;
    solver64.solve(rhs_x, rhs_z, x64, z64);
    EXPECT_LT(test::maxAbsDiff(x_tilde, x64), 1e-6);
}

TEST(MixedPrecisionOsqp, ExecutionKnobSolvesToSameQualityAsFp64)
{
    Rng rng(21);
    const QpProblem qp = generatePortfolio(60, rng);

    OsqpSettings fp64;
    fp64.backend = KktBackend::IndirectPcg;
    fp64.maxIter = 2000;
    const OsqpResult ref = OsqpSolver(qp, fp64).solve();
    ASSERT_EQ(ref.info.status, SolveStatus::Solved);

    OsqpSettings mixed = fp64;
    mixed.execution.precision = PrecisionMode::MixedFp32;
    const OsqpResult got = OsqpSolver(qp, mixed).solve();
    ASSERT_EQ(got.info.status, SolveStatus::Solved);

    // Same termination criteria, so both land within the ADMM
    // tolerances; the iterates agree to that accuracy.
    EXPECT_LT(test::maxAbsDiff(got.x, ref.x),
              50 * std::max(fp64.epsAbs, fp64.epsRel));
    EXPECT_GE(got.info.refinementSweepsTotal, 1);
    EXPECT_EQ(got.info.telemetry.precision, "mixed-fp32");
    EXPECT_EQ(ref.info.telemetry.precision, "fp64");
    EXPECT_FALSE(got.info.telemetry.isaLevel.empty());
}

TEST(MixedPrecisionOsqp, SettingsValidationRejectsBadKnobs)
{
    OsqpSettings settings;
    settings.pcg.mixedInnerEpsRel = 0.0;
    EXPECT_FALSE(validateSettings(settings).ok());

    settings = OsqpSettings{};
    settings.pcg.mixedInnerEpsRel = 1.0;
    EXPECT_FALSE(validateSettings(settings).ok());

    settings = OsqpSettings{};
    settings.pcg.maxRefinementSweeps = 0;
    EXPECT_FALSE(validateSettings(settings).ok());

    EXPECT_TRUE(validateSettings(OsqpSettings{}).ok());
}

} // namespace
} // namespace rsqp
