/**
 * @file
 * LDL' factorization tests: known systems, residual checks on random
 * SPD and quasi-definite KKT systems, inertia, and refactorization.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "linalg/kkt.hpp"
#include "linalg/vector_ops.hpp"
#include "solvers/ldl.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

using test::randomSparse;
using test::randomSpdUpper;
using test::randomVector;

TEST(Ldl, SolvesDiagonalSystem)
{
    const CscMatrix diag =
        CscMatrix::diagonal({2.0, 4.0, -8.0});  // quasi-definite ok
    LdlFactorization ldl(diag);
    ASSERT_TRUE(ldl.factor(diag));
    Vector x = {2.0, 4.0, -8.0};
    ldl.solve(x);
    EXPECT_DOUBLE_EQ(x[0], 1.0);
    EXPECT_DOUBLE_EQ(x[1], 1.0);
    EXPECT_DOUBLE_EQ(x[2], 1.0);
}

TEST(Ldl, SolvesKnown2x2)
{
    // [[4, 2], [2, 3]] x = [10, 8]  ->  x = [1.75, 1.5].
    TripletList triplets(2, 2);
    triplets.add(0, 0, 4.0);
    triplets.add(0, 1, 2.0);
    triplets.add(1, 1, 3.0);
    const CscMatrix upper = CscMatrix::fromTriplets(triplets);
    LdlFactorization ldl(upper);
    ASSERT_TRUE(ldl.factor(upper));
    Vector x = {10.0, 8.0};
    ldl.solve(x);
    EXPECT_NEAR(x[0], 1.75, 1e-12);
    EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(Ldl, ZeroPivotReported)
{
    // Singular matrix: [[1, 1], [1, 1]].
    TripletList triplets(2, 2);
    triplets.add(0, 0, 1.0);
    triplets.add(0, 1, 1.0);
    triplets.add(1, 1, 1.0);
    const CscMatrix upper = CscMatrix::fromTriplets(triplets);
    LdlFactorization ldl(upper);
    EXPECT_FALSE(ldl.factor(upper));
}

TEST(Ldl, MissingDiagonalIsFatal)
{
    TripletList triplets(2, 2);
    triplets.add(0, 0, 1.0);
    triplets.add(0, 1, 1.0);  // column 1 has no diagonal
    const CscMatrix upper = CscMatrix::fromTriplets(triplets);
    EXPECT_THROW(LdlFactorization{upper}, FatalError);
}

TEST(Ldl, InertiaOfKktSystem)
{
    // KKT systems have exactly n positive and m negative pivots.
    Rng rng(5);
    const CscMatrix p = randomSpdUpper(8, 0.4, rng);
    const CscMatrix a = randomSparse(5, 8, 0.4, rng);
    KktAssembler assembler(p, a, 1e-6, constantVector(5, 0.5));
    LdlFactorization ldl(assembler.kkt());
    ASSERT_TRUE(ldl.factor(assembler.kkt()));
    EXPECT_EQ(ldl.positivePivots(), 8);
    EXPECT_EQ(ldl.negativePivots(), 5);
}

TEST(Ldl, RefactorizationReusesSymbolic)
{
    Rng rng(6);
    const CscMatrix p = randomSpdUpper(10, 0.3, rng);
    const CscMatrix a = randomSparse(6, 10, 0.3, rng);
    KktAssembler assembler(p, a, 1e-6, constantVector(6, 0.1));
    LdlFactorization ldl(assembler.kkt());
    ASSERT_TRUE(ldl.factor(assembler.kkt()));
    const Count lnnz_before = ldl.lnnz();

    assembler.updateRho(constantVector(6, 10.0));
    ASSERT_TRUE(ldl.factor(assembler.kkt()));
    EXPECT_EQ(ldl.lnnz(), lnnz_before);  // same structure

    // Solve and verify the residual against the updated matrix.
    const Vector b = randomVector(16, rng);
    Vector x = b;
    ldl.solve(x);
    const CscMatrix full = assembler.kkt().symUpperToFull();
    Vector kx;
    full.spmv(x, kx);
    EXPECT_LT(test::maxAbsDiff(kx, b), 1e-9);
}

/** Property sweep: LDL residuals on random SPD systems of many sizes. */
class LdlProperty : public ::testing::TestWithParam<Index>
{};

TEST_P(LdlProperty, SpdResidualSmall)
{
    const Index n = GetParam();
    Rng rng(static_cast<std::uint64_t>(n) + 77);
    const CscMatrix upper = randomSpdUpper(n, 0.3, rng);
    LdlFactorization ldl(upper);
    ASSERT_TRUE(ldl.factor(upper));
    EXPECT_EQ(ldl.positivePivots(), n);

    const Vector b = randomVector(n, rng);
    Vector x = b;
    ldl.solve(x);
    Vector ax;
    upper.spmvSymUpper(x, ax);
    EXPECT_LT(test::maxAbsDiff(ax, b), 1e-8 * (1.0 + normInf(b)));
}

TEST_P(LdlProperty, QuasiDefiniteKktResidualSmall)
{
    const Index n = GetParam();
    const Index m = std::max<Index>(1, n / 2);
    Rng rng(static_cast<std::uint64_t>(n) * 3 + 1);
    const CscMatrix p = randomSpdUpper(n, 0.25, rng);
    const CscMatrix a = randomSparse(m, n, 0.3, rng);
    KktAssembler assembler(p, a, 1e-6, constantVector(m, 0.4));
    LdlFactorization ldl(assembler.kkt());
    ASSERT_TRUE(ldl.factor(assembler.kkt()));

    const Vector b = randomVector(n + m, rng);
    Vector x = b;
    ldl.solve(x);
    const CscMatrix full = assembler.kkt().symUpperToFull();
    Vector kx;
    full.spmv(x, kx);
    EXPECT_LT(test::maxAbsDiff(kx, b), 1e-7 * (1.0 + normInf(b)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LdlProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

} // namespace
} // namespace rsqp
