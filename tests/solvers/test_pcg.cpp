/**
 * @file
 * PCG (Algorithm 2) tests: exact-in-n-steps behaviour, tolerance
 * semantics, warm starting, preconditioner effect and the adaptive
 * tolerance schedule.
 */

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "linalg/kkt.hpp"
#include "linalg/vector_ops.hpp"
#include "solvers/pcg.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

using test::randomSparse;
using test::randomSpdUpper;
using test::randomVector;

struct PcgFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        Rng rng(3);
        p = randomSpdUpper(12, 0.3, rng);
        a = randomSparse(8, 12, 0.3, rng);
        rho = constantVector(8, 1.0);
        op = std::make_unique<ReducedKktOperator>(p, a, 1e-6, rho);
        precond = std::make_unique<JacobiPreconditioner>(op->diagonal());
        b = randomVector(12, rng);
    }

    CscMatrix p, a;
    Vector rho, b;
    std::unique_ptr<ReducedKktOperator> op;
    std::unique_ptr<JacobiPreconditioner> precond;
};

TEST_F(PcgFixture, ConvergesToDirectSolution)
{
    Vector x(12, 0.0);
    PcgSettings settings;
    settings.epsRel = 1e-12;
    settings.adaptiveTolerance = false;
    const PcgResult result = pcgSolve(*op, *precond, b, x, settings);
    EXPECT_TRUE(result.converged);

    Vector kx;
    op->apply(x, kx);
    EXPECT_LT(test::maxAbsDiff(kx, b), 1e-8);
}

TEST_F(PcgFixture, ZeroRhsConvergesInstantly)
{
    Vector x(12, 0.0);
    const Vector zero(12, 0.0);
    PcgSettings settings;
    const PcgResult result = pcgSolve(*op, *precond, zero, x, settings);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.iterations, 0);
}

TEST_F(PcgFixture, WarmStartNearSolutionIsCheap)
{
    Vector x(12, 0.0);
    PcgSettings settings;
    settings.epsRel = 1e-10;
    settings.adaptiveTolerance = false;
    pcgSolve(*op, *precond, b, x, settings);

    Vector x2 = x;  // warm start at the solution
    const PcgResult warm = pcgSolve(*op, *precond, b, x2, settings);
    EXPECT_TRUE(warm.converged);
    EXPECT_LE(warm.iterations, 1);
}

TEST_F(PcgFixture, IterationCapRespected)
{
    Vector x(12, 0.0);
    PcgSettings settings;
    settings.epsRel = 1e-15;
    settings.epsAbs = 0.0;
    settings.maxIter = 2;
    settings.adaptiveTolerance = false;
    const PcgResult result = pcgSolve(*op, *precond, b, x, settings);
    EXPECT_LE(result.iterations, 2);
}

TEST_F(PcgFixture, ResidualMonotonicallyBelowToleranceAtExit)
{
    Vector x(12, 0.0);
    PcgSettings settings;
    settings.epsRel = 1e-6;
    settings.adaptiveTolerance = false;
    const PcgResult result = pcgSolve(*op, *precond, b, x, settings);
    ASSERT_TRUE(result.converged);
    EXPECT_LT(result.residualNorm, 1e-6 * norm2(b) + 1e-12);
}

TEST(Pcg, IdentityPreconditionerStillConverges)
{
    Rng rng(9);
    const CscMatrix p = randomSpdUpper(20, 0.2, rng);
    const CscMatrix a = randomSparse(10, 20, 0.2, rng);
    ReducedKktOperator op(p, a, 1e-6, constantVector(10, 0.5));
    JacobiPreconditioner identity(constantVector(20, 1.0));
    JacobiPreconditioner jacobi(op.diagonal());
    const Vector b = randomVector(20, rng);

    PcgSettings settings;
    settings.epsRel = 1e-9;
    settings.adaptiveTolerance = false;
    Vector x1(20, 0.0), x2(20, 0.0);
    const PcgResult plain = pcgSolve(op, identity, b, x1, settings);
    const PcgResult precond = pcgSolve(op, jacobi, b, x2, settings);
    EXPECT_TRUE(plain.converged);
    EXPECT_TRUE(precond.converged);
    // Diagonally dominant test matrices favor Jacobi (or tie).
    EXPECT_LE(precond.iterations, plain.iterations + 2);
}

TEST(Pcg, ExactInNStepsForSmallSystems)
{
    // CG converges in at most n iterations in exact arithmetic.
    Rng rng(21);
    const Index n = 6;
    const CscMatrix p = randomSpdUpper(n, 0.5, rng);
    const CscMatrix a(0 * 1, n);  // no constraints: K = P + sigma I
    ReducedKktOperator op(p, a, 1e-6, Vector{});
    JacobiPreconditioner precond(op.diagonal());
    const Vector b = randomVector(n, rng);
    Vector x(n, 0.0);
    PcgSettings settings;
    settings.epsRel = 1e-10;
    settings.adaptiveTolerance = false;
    const PcgResult result = pcgSolve(op, precond, b, x, settings);
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.iterations, n + 1);
}

TEST(Pcg, JacobiRejectsNonPositiveDiagonal)
{
    EXPECT_DEATH(JacobiPreconditioner({1.0, -2.0}),
                 "positive diagonal");
}

TEST(PcgSettings, AdaptiveToleranceSchedule)
{
    PcgSettings settings;
    settings.epsRel = 1e-7;
    settings.epsRelStart = 1e-2;
    settings.epsRelDecay = 0.5;
    settings.adaptiveTolerance = true;
    EXPECT_DOUBLE_EQ(settings.effectiveEpsRel(0), 1e-2);
    EXPECT_DOUBLE_EQ(settings.effectiveEpsRel(1), 5e-3);
    EXPECT_DOUBLE_EQ(settings.effectiveEpsRel(2), 2.5e-3);
    // Eventually floors at epsRel.
    EXPECT_DOUBLE_EQ(settings.effectiveEpsRel(100), 1e-7);

    settings.adaptiveTolerance = false;
    EXPECT_DOUBLE_EQ(settings.effectiveEpsRel(0), 1e-7);
}

TEST(ThreadedPcg, SolveBitwiseIdenticalAcrossThreadCounts)
{
    // A diagonally dominant tridiagonal operator large enough to push
    // every dot/axpy in the loop onto the chunked parallel path.
    const Index n = 3 * kParallelThreshold;
    auto apply_k = [n](const Vector& in, Vector& out) {
        out.resize(in.size());
        for (Index i = 0; i < n; ++i) {
            const auto s = static_cast<std::size_t>(i);
            Real v = 4.0 * in[s];
            if (i > 0)
                v -= in[s - 1];
            if (i + 1 < n)
                v -= in[s + 1];
            out[s] = v;
        }
    };
    const Vector diag(static_cast<std::size_t>(n), 4.0);
    const JacobiPreconditioner precond(diag);
    Rng rng(31);
    Vector b(static_cast<std::size_t>(n));
    for (Real& v : b)
        v = rng.normal();
    PcgSettings settings;
    settings.adaptiveTolerance = false;
    settings.epsRel = 1e-10;

    Vector x_ref(static_cast<std::size_t>(n), 0.0);
    PcgResult ref;
    {
        NumThreadsScope scope(1);
        ref = pcgSolve(apply_k, precond, b, x_ref, settings);
    }
    ASSERT_TRUE(ref.converged);
    ASSERT_GT(ref.iterations, 2);

    for (Index threads : {2, 4, 8}) {
        NumThreadsScope scope(threads);
        Vector x(static_cast<std::size_t>(n), 0.0);
        const PcgResult result =
            pcgSolve(apply_k, precond, b, x, settings);
        EXPECT_EQ(result.iterations, ref.iterations);
        EXPECT_EQ(result.residualNorm, ref.residualNorm);
        // The whole iterate must match bit for bit, not within an
        // epsilon: reductions are chunked independently of threads.
        ASSERT_EQ(x, x_ref) << "threads " << threads;
    }
}

TEST_F(PcgFixture, ReusedWorkspaceGivesIdenticalResults)
{
    PcgSettings settings;
    settings.epsRel = 1e-10;
    settings.adaptiveTolerance = false;

    Vector x1(12, 0.0);
    const PcgResult r1 = pcgSolve(*op, *precond, b, x1, settings);

    // A workspace carried across calls (dirty from the first solve)
    // must not change anything: every vector is fully rewritten.
    PcgWorkspace workspace;
    Vector x2(12, 0.0);
    const PcgResult r2 =
        pcgSolve(*op, *precond, b, x2, settings, workspace);
    Vector x3(12, 0.0);
    const PcgResult r3 =
        pcgSolve(*op, *precond, b, x3, settings, workspace);

    EXPECT_TRUE(r1.converged);
    EXPECT_EQ(r1.iterations, r2.iterations);
    EXPECT_EQ(r2.iterations, r3.iterations);
    EXPECT_EQ(x1, x2);
    EXPECT_EQ(x2, x3);
}

TEST(PcgWorkspace, ResizeAllocatesAllFourVectors)
{
    PcgWorkspace workspace;
    workspace.resize(5);
    EXPECT_EQ(workspace.r.size(), 5u);
    EXPECT_EQ(workspace.d.size(), 5u);
    EXPECT_EQ(workspace.p.size(), 5u);
    EXPECT_EQ(workspace.kp.size(), 5u);
    // Shrinking reuses capacity; growing again is still correct.
    workspace.resize(2);
    workspace.resize(5);
    EXPECT_EQ(workspace.r.size(), 5u);
}

TEST(JacobiPreconditioner, RebuildReplacesDiagonalInPlace)
{
    JacobiPreconditioner precond({2.0, 4.0});
    precond.rebuild({8.0, 10.0});
    Vector out(2, 0.0);
    precond.apply({16.0, 20.0}, out);
    EXPECT_DOUBLE_EQ(out[0], 2.0);
    EXPECT_DOUBLE_EQ(out[1], 2.0);
}

TEST(JacobiPreconditioner, ApplyRequiresPreallocatedOutput)
{
    const JacobiPreconditioner precond({2.0, 4.0});
    Vector out(2, 0.0);
    precond.apply({1.0, 1.0}, out);  // correct size: fine
    EXPECT_DOUBLE_EQ(out[0], 0.5);
    Vector wrong;
    EXPECT_DEATH(precond.apply({1.0, 1.0}, wrong), "preallocated");
}

} // namespace
} // namespace rsqp
