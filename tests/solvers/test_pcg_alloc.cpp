/**
 * @file
 * Steady-state allocation tests for the indirect hot path. This binary
 * replaces the global operator new/delete pair with counting versions:
 * after a warm-up solve has sized every workspace, repeated PCG solves
 * and IndirectKktSolver steps must perform ZERO heap allocations —
 * the software contract mirroring the accelerator's statically
 * provisioned on-chip buffers.
 *
 * Kept in its own test binary because the global replacement affects
 * every allocation in the process.
 */

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "linalg/kkt.hpp"
#include "linalg/vector_ops.hpp"
#include "solvers/kkt_solver.hpp"
#include "solvers/pcg.hpp"
#include "tests/test_util.hpp"

namespace
{

std::atomic<std::uint64_t> gAllocations{0};

std::uint64_t
allocationCount()
{
    return gAllocations.load(std::memory_order_relaxed);
}

void*
countedAlloc(std::size_t size)
{
    gAllocations.fetch_add(1, std::memory_order_relaxed);
    if (void* ptr = std::malloc(size == 0 ? 1 : size))
        return ptr;
    throw std::bad_alloc();
}

} // namespace

void*
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void*
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void
operator delete(void* ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void* ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void* ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void* ptr, std::size_t) noexcept
{
    std::free(ptr);
}

namespace rsqp
{
namespace
{

using test::randomSparse;
using test::randomSpdUpper;
using test::randomVector;

TEST(PcgAllocation, CountingHookObservesAllocations)
{
    const std::uint64_t before = allocationCount();
    Vector* v = new Vector(64, 1.0);
    delete v;
    EXPECT_GT(allocationCount(), before);
}

TEST(PcgAllocation, SteadyStatePcgLoopIsAllocationFree)
{
    // Large tridiagonal system: above kParallelThreshold, so the
    // reductions take the fixed-grain chunked path — which at one
    // effective thread must run as a plain loop with no partials
    // buffer, no std::function, no pool handshake.
    NumThreadsScope scope(1);
    const Index n = 3 * kParallelThreshold;
    TripletList triplets(n, n);
    for (Index i = 0; i < n; ++i) {
        triplets.add(i, i, 4.0);
        if (i + 1 < n)
            triplets.add(i, i + 1, -1.0);
    }
    const CscMatrix p = CscMatrix::fromTriplets(triplets);
    const CscMatrix a(0, n);
    const ReducedKktOperator op(p, a, 1e-6, Vector{});
    const JacobiPreconditioner precond(op.diagonal());
    Rng rng(61);
    const Vector b = randomVector(n, rng);

    PcgSettings settings;
    settings.adaptiveTolerance = false;
    settings.epsRel = 1e-10;

    PcgWorkspace workspace;
    Vector x(static_cast<std::size_t>(n), 0.0);
    const PcgResult warmup =
        pcgSolve(op, precond, b, x, settings, workspace);
    ASSERT_TRUE(warmup.converged);
    ASSERT_GT(warmup.iterations, 2);

    x.assign(x.size(), 0.0);  // reuses capacity
    const std::uint64_t before = allocationCount();
    Index iterations = 0;
    for (int repeat = 0; repeat < 3; ++repeat) {
        x.assign(x.size(), 0.0);
        const PcgResult result =
            pcgSolve(op, precond, b, x, settings, workspace);
        iterations += result.iterations;
    }
    const std::uint64_t after = allocationCount();
    EXPECT_EQ(after - before, 0u)
        << "allocations across " << iterations << " CG iterations";
}

TEST(PcgAllocation, IndirectSolverSteadyStateIsAllocationFree)
{
    NumThreadsScope scope(1);
    Rng rng(67);
    const CscMatrix p = randomSpdUpper(40, 0.2, rng);
    const CscMatrix a = randomSparse(25, 40, 0.2, rng);
    const Vector rho = constantVector(25, 0.8);
    PcgSettings settings;
    settings.epsRel = 1e-10;
    settings.adaptiveTolerance = false;
    settings.directFallback = false;
    IndirectKktSolver solver(p, a, 1e-6, rho, settings);

    const Vector rhs_x = randomVector(40, rng);
    const Vector rhs_z = randomVector(25, rng);
    Vector x, z;
    solver.solve(rhs_x, rhs_z, x, z);  // warm-up sizes every buffer

    // Perturb the rhs between solves so the warm start does not
    // short-circuit the loop (capacity reuse keeps this alloc-free).
    Vector rhs_x2 = rhs_x;
    const std::uint64_t before = allocationCount();
    for (int repeat = 0; repeat < 4; ++repeat) {
        for (std::size_t i = 0; i < rhs_x2.size(); ++i)
            rhs_x2[i] = rhs_x[i] * (1.0 + 0.01 * (repeat + 1));
        const KktSolveStats stats = solver.solve(rhs_x2, rhs_z, x, z);
        ASSERT_EQ(stats.pcgBreakdown, PcgBreakdown::None);
    }
    const std::uint64_t after = allocationCount();
    EXPECT_EQ(after - before, 0u);
}

TEST(PcgAllocation, UpdateRhoIsAllocationFreeAfterWarmup)
{
    NumThreadsScope scope(1);
    Rng rng(71);
    const CscMatrix p = randomSpdUpper(30, 0.25, rng);
    const CscMatrix a = randomSparse(18, 30, 0.25, rng);
    PcgSettings settings;
    settings.directFallback = false;
    IndirectKktSolver solver(p, a, 1e-6, constantVector(18, 0.5),
                             settings);

    Vector rho2 = constantVector(18, 1.5);
    solver.updateRho(rho2);  // warm-up
    const std::uint64_t before = allocationCount();
    for (int repeat = 0; repeat < 3; ++repeat) {
        for (Real& v : rho2)
            v += 0.25;
        solver.updateRho(rho2);
    }
    const std::uint64_t after = allocationCount();
    EXPECT_EQ(after - before, 0u);
}

} // namespace
} // namespace rsqp
