/**
 * @file
 * KKT backend tests: the direct LDL' and indirect PCG backends must
 * agree on the ADMM step solution, honor rho updates, and report
 * sensible statistics.
 */

#include <gtest/gtest.h>

#include "linalg/vector_ops.hpp"
#include "solvers/kkt_solver.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

using test::randomSparse;
using test::randomSpdUpper;
using test::randomVector;

struct KktSolverFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        Rng rng(8);
        p = randomSpdUpper(10, 0.3, rng);
        a = randomSparse(6, 10, 0.35, rng);
        rho = constantVector(6, 0.7);
        rhs_x = randomVector(10, rng);
        rhs_z = randomVector(6, rng);
    }

    PcgSettings
    tightPcg() const
    {
        PcgSettings settings;
        settings.epsRel = 1e-12;
        settings.adaptiveTolerance = false;
        return settings;
    }

    CscMatrix p, a;
    Vector rho, rhs_x, rhs_z;
    Real sigma = 1e-6;
};

TEST_F(KktSolverFixture, DirectAndIndirectAgree)
{
    DirectKktSolver direct(p, a, sigma, rho);
    IndirectKktSolver indirect(p, a, sigma, rho, tightPcg());

    Vector xd, zd, xi, zi;
    direct.solve(rhs_x, rhs_z, xd, zd);
    indirect.solve(rhs_x, rhs_z, xi, zi);

    EXPECT_LT(test::maxAbsDiff(xd, xi), 1e-7);
    EXPECT_LT(test::maxAbsDiff(zd, zi), 1e-7);
}

TEST_F(KktSolverFixture, DirectSatisfiesKktEquations)
{
    DirectKktSolver direct(p, a, sigma, rho);
    Vector x, z;
    direct.solve(rhs_x, rhs_z, x, z);

    // (P + sigma I) x + A' nu = rhs_x with nu = rho (A x - z_rhs...):
    // verify via the reduced equation K x = rhs_x + A' diag(rho) rhs_z.
    ReducedKktOperator op(p, a, sigma, rho);
    Vector kx;
    op.apply(x, kx);
    Vector b = rhs_x;
    Vector scaled = rhs_z;
    for (std::size_t i = 0; i < scaled.size(); ++i)
        scaled[i] *= rho[i];
    a.spmvTransposeAccumulate(scaled, b, 1.0);
    EXPECT_LT(test::maxAbsDiff(kx, b), 1e-8);

    // z output must be A x.
    Vector ax;
    a.spmv(x, ax);
    EXPECT_LT(test::maxAbsDiff(z, ax), 1e-8);
}

TEST_F(KktSolverFixture, RhoUpdateChangesSolution)
{
    DirectKktSolver direct(p, a, sigma, rho);
    Vector x1, z1;
    direct.solve(rhs_x, rhs_z, x1, z1);

    direct.updateRho(constantVector(6, 50.0));
    Vector x2, z2;
    const KktSolveStats stats = direct.solve(rhs_x, rhs_z, x2, z2);
    EXPECT_TRUE(stats.refactorized);
    EXPECT_GT(test::maxAbsDiff(x1, x2), 1e-8);

    // Fresh solver with the new rho agrees.
    DirectKktSolver fresh(p, a, sigma, constantVector(6, 50.0));
    Vector x3, z3;
    fresh.solve(rhs_x, rhs_z, x3, z3);
    EXPECT_LT(test::maxAbsDiff(x2, x3), 1e-9);
}

TEST_F(KktSolverFixture, IndirectRhoUpdateMatchesFreshSolver)
{
    IndirectKktSolver indirect(p, a, sigma, rho, tightPcg());
    Vector x1, z1;
    indirect.solve(rhs_x, rhs_z, x1, z1);
    indirect.updateRho(constantVector(6, 9.0));
    Vector x2, z2;
    indirect.solve(rhs_x, rhs_z, x2, z2);

    IndirectKktSolver fresh(p, a, sigma, constantVector(6, 9.0),
                            tightPcg());
    Vector x3, z3;
    fresh.solve(rhs_x, rhs_z, x3, z3);
    EXPECT_LT(test::maxAbsDiff(x2, x3), 1e-7);
}

TEST_F(KktSolverFixture, IndirectReportsPcgIterations)
{
    IndirectKktSolver indirect(p, a, sigma, rho, tightPcg());
    Vector x, z;
    const KktSolveStats stats = indirect.solve(rhs_x, rhs_z, x, z);
    EXPECT_GT(stats.pcgIterations, 0);
    EXPECT_EQ(indirect.totalPcgIterations(), stats.pcgIterations);
    EXPECT_EQ(indirect.lastPcgIterations(), stats.pcgIterations);

    // Warm start: repeating the same solve is much cheaper.
    Vector x2, z2;
    const KktSolveStats stats2 = indirect.solve(rhs_x, rhs_z, x2, z2);
    EXPECT_LE(stats2.pcgIterations, 1);
}

TEST_F(KktSolverFixture, OrderingChoiceDoesNotChangeSolution)
{
    DirectKktSolver natural(p, a, sigma, rho, OrderingKind::Natural);
    DirectKktSolver rcm(p, a, sigma, rho, OrderingKind::Rcm);
    Vector x1, z1, x2, z2;
    natural.solve(rhs_x, rhs_z, x1, z1);
    rcm.solve(rhs_x, rhs_z, x2, z2);
    EXPECT_LT(test::maxAbsDiff(x1, x2), 1e-9);
}

TEST_F(KktSolverFixture, BackendNamesStable)
{
    DirectKktSolver direct(p, a, sigma, rho);
    IndirectKktSolver indirect(p, a, sigma, rho);
    EXPECT_STREQ(direct.name(), "direct-ldl");
    EXPECT_STREQ(indirect.name(), "indirect-pcg");
}

} // namespace
} // namespace rsqp
