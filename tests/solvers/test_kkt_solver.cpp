/**
 * @file
 * KKT backend tests: the direct LDL' and indirect PCG backends must
 * agree on the ADMM step solution, honor rho updates, and report
 * sensible statistics.
 */

#include <gtest/gtest.h>

#include "linalg/vector_ops.hpp"
#include "solvers/kkt_solver.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

using test::randomSparse;
using test::randomSpdUpper;
using test::randomVector;

struct KktSolverFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        Rng rng(8);
        p = randomSpdUpper(10, 0.3, rng);
        a = randomSparse(6, 10, 0.35, rng);
        rho = constantVector(6, 0.7);
        rhs_x = randomVector(10, rng);
        rhs_z = randomVector(6, rng);
    }

    PcgSettings
    tightPcg() const
    {
        PcgSettings settings;
        settings.epsRel = 1e-12;
        settings.adaptiveTolerance = false;
        return settings;
    }

    CscMatrix p, a;
    Vector rho, rhs_x, rhs_z;
    Real sigma = 1e-6;
};

TEST_F(KktSolverFixture, DirectAndIndirectAgree)
{
    DirectKktSolver direct(p, a, sigma, rho);
    IndirectKktSolver indirect(p, a, sigma, rho, tightPcg());

    Vector xd, zd, xi, zi;
    direct.solve(rhs_x, rhs_z, xd, zd);
    indirect.solve(rhs_x, rhs_z, xi, zi);

    EXPECT_LT(test::maxAbsDiff(xd, xi), 1e-7);
    EXPECT_LT(test::maxAbsDiff(zd, zi), 1e-7);
}

TEST_F(KktSolverFixture, DirectSatisfiesKktEquations)
{
    DirectKktSolver direct(p, a, sigma, rho);
    Vector x, z;
    direct.solve(rhs_x, rhs_z, x, z);

    // (P + sigma I) x + A' nu = rhs_x with nu = rho (A x - z_rhs...):
    // verify via the reduced equation K x = rhs_x + A' diag(rho) rhs_z.
    ReducedKktOperator op(p, a, sigma, rho);
    Vector kx;
    op.apply(x, kx);
    Vector b = rhs_x;
    Vector scaled = rhs_z;
    for (std::size_t i = 0; i < scaled.size(); ++i)
        scaled[i] *= rho[i];
    a.spmvTransposeAccumulate(scaled, b, 1.0);
    EXPECT_LT(test::maxAbsDiff(kx, b), 1e-8);

    // z output must be A x.
    Vector ax;
    a.spmv(x, ax);
    EXPECT_LT(test::maxAbsDiff(z, ax), 1e-8);
}

TEST_F(KktSolverFixture, RhoUpdateChangesSolution)
{
    DirectKktSolver direct(p, a, sigma, rho);
    Vector x1, z1;
    direct.solve(rhs_x, rhs_z, x1, z1);

    direct.updateRho(constantVector(6, 50.0));
    Vector x2, z2;
    const KktSolveStats stats = direct.solve(rhs_x, rhs_z, x2, z2);
    EXPECT_TRUE(stats.refactorized);
    EXPECT_GT(test::maxAbsDiff(x1, x2), 1e-8);

    // Fresh solver with the new rho agrees.
    DirectKktSolver fresh(p, a, sigma, constantVector(6, 50.0));
    Vector x3, z3;
    fresh.solve(rhs_x, rhs_z, x3, z3);
    EXPECT_LT(test::maxAbsDiff(x2, x3), 1e-9);
}

TEST_F(KktSolverFixture, IndirectRhoUpdateMatchesFreshSolver)
{
    IndirectKktSolver indirect(p, a, sigma, rho, tightPcg());
    Vector x1, z1;
    indirect.solve(rhs_x, rhs_z, x1, z1);
    indirect.updateRho(constantVector(6, 9.0));
    Vector x2, z2;
    indirect.solve(rhs_x, rhs_z, x2, z2);

    IndirectKktSolver fresh(p, a, sigma, constantVector(6, 9.0),
                            tightPcg());
    Vector x3, z3;
    fresh.solve(rhs_x, rhs_z, x3, z3);
    EXPECT_LT(test::maxAbsDiff(x2, x3), 1e-7);
}

TEST_F(KktSolverFixture, IndirectReportsPcgIterations)
{
    IndirectKktSolver indirect(p, a, sigma, rho, tightPcg());
    Vector x, z;
    const KktSolveStats stats = indirect.solve(rhs_x, rhs_z, x, z);
    EXPECT_GT(stats.pcgIterations, 0);
    EXPECT_EQ(indirect.totalPcgIterations(), stats.pcgIterations);
    EXPECT_EQ(indirect.lastPcgIterations(), stats.pcgIterations);

    // Warm start: repeating the same solve is much cheaper.
    Vector x2, z2;
    const KktSolveStats stats2 = indirect.solve(rhs_x, rhs_z, x2, z2);
    EXPECT_LE(stats2.pcgIterations, 1);
}

TEST_F(KktSolverFixture, OrderingChoiceDoesNotChangeSolution)
{
    DirectKktSolver natural(p, a, sigma, rho, OrderingKind::Natural);
    DirectKktSolver rcm(p, a, sigma, rho, OrderingKind::Rcm);
    Vector x1, z1, x2, z2;
    natural.solve(rhs_x, rhs_z, x1, z1);
    rcm.solve(rhs_x, rhs_z, x2, z2);
    EXPECT_LT(test::maxAbsDiff(x1, x2), 1e-9);
}

TEST_F(KktSolverFixture, BackendNamesStable)
{
    DirectKktSolver direct(p, a, sigma, rho);
    IndirectKktSolver indirect(p, a, sigma, rho);
    EXPECT_STREQ(direct.name(), "direct-ldl");
    EXPECT_STREQ(indirect.name(), "indirect-pcg");
}

TEST_F(KktSolverFixture, DirectUpdateMatrixValuesMatchesFreshSolver)
{
    DirectKktSolver solver(p, a, sigma, rho);
    Vector x0, z0;
    solver.solve(rhs_x, rhs_z, x0, z0);

    std::vector<Real> p_values = p.values();
    for (Real& v : p_values)
        v *= 2.0;
    std::vector<Real> a_values = a.values();
    for (Real& v : a_values)
        v *= 0.5;
    EXPECT_TRUE(solver.updateMatrixValues(p_values, a_values));
    Vector x1, z1;
    const KktSolveStats stats = solver.solve(rhs_x, rhs_z, x1, z1);
    EXPECT_TRUE(stats.refactorized);

    CscMatrix p2 = p;
    p2.values() = p_values;
    CscMatrix a2 = a;
    a2.values() = a_values;
    DirectKktSolver fresh(p2, a2, sigma, rho);
    Vector x2, z2;
    fresh.solve(rhs_x, rhs_z, x2, z2);
    EXPECT_LT(test::maxAbsDiff(x1, x2), 1e-9);
    EXPECT_LT(test::maxAbsDiff(z1, z2), 1e-9);
    EXPECT_GT(test::maxAbsDiff(x0, x1), 1e-9);  // values really changed
}

TEST_F(KktSolverFixture, IndirectUpdateMatrixValuesMatchesFreshSolver)
{
    // The indirect backend reads P/A through pointers: the caller
    // rewrites those matrices in place, then updateMatrixValues
    // re-reads them through the construction-time slot maps.
    CscMatrix p2 = p;
    CscMatrix a2 = a;
    IndirectKktSolver solver(p2, a2, sigma, rho, tightPcg());
    Vector x0, z0;
    solver.solve(rhs_x, rhs_z, x0, z0);

    for (Real& v : p2.values())
        v *= 2.0;
    for (Real& v : a2.values())
        v *= 0.5;
    EXPECT_TRUE(solver.updateMatrixValues(p2.values(), a2.values()));
    Vector x1, z1;
    solver.solve(rhs_x, rhs_z, x1, z1);

    IndirectKktSolver fresh(p2, a2, sigma, rho, tightPcg());
    Vector x2, z2;
    fresh.solve(rhs_x, rhs_z, x2, z2);
    EXPECT_LT(test::maxAbsDiff(x1, x2), 1e-7);
    EXPECT_LT(test::maxAbsDiff(z1, z2), 1e-7);
}

TEST_F(KktSolverFixture, IndirectReportsHotPathProfile)
{
    IndirectKktSolver indirect(p, a, sigma, rho, tightPcg());
    ASSERT_NE(indirect.hotPathProfiler(), nullptr);
    Vector x, z;
    const KktSolveStats stats = indirect.solve(rhs_x, rhs_z, x, z);
    // Every phase family runs at least once per solve: the three SpMV
    // passes per operator apply, the fused updates and preconditioner
    // applies in the CG loop, and the p'Kp reduction.
    EXPECT_GT(stats.hotPath[ProfilePhase::SpmvP].calls, 0u);
    EXPECT_GT(stats.hotPath[ProfilePhase::SpmvA].calls, 0u);
    EXPECT_GT(stats.hotPath[ProfilePhase::SpmvAt].calls, 0u);
    EXPECT_GT(stats.hotPath[ProfilePhase::FusedVectorOps].calls, 0u);
    EXPECT_GT(stats.hotPath[ProfilePhase::Precond].calls, 0u);
    EXPECT_GT(stats.hotPath[ProfilePhase::Reduction].calls, 0u);

    // Counters accumulate across solves and reset on demand.
    Vector x2, z2;
    const KktSolveStats stats2 = indirect.solve(rhs_x, rhs_z, x2, z2);
    EXPECT_GE(stats2.hotPath.totalCalls(), stats.hotPath.totalCalls());
    indirect.resetHotPathProfile();
    EXPECT_EQ(indirect.hotPathProfiler()->snapshot().totalCalls(), 0u);
}

TEST_F(KktSolverFixture, ProfilingCanBeDisabled)
{
    PcgSettings settings = tightPcg();
    settings.profile = false;
    IndirectKktSolver indirect(p, a, sigma, rho, settings);
    EXPECT_EQ(indirect.hotPathProfiler(), nullptr);
    Vector x, z;
    const KktSolveStats stats = indirect.solve(rhs_x, rhs_z, x, z);
    EXPECT_EQ(stats.hotPath.totalCalls(), 0u);
    EXPECT_GT(stats.pcgIterations, 0);
}

TEST_F(KktSolverFixture, BaseClassDeclinesMatrixValueUpdates)
{
    // A backend that does not override updateMatrixValues reports
    // false so the caller knows to rebuild it.
    class MinimalSolver : public KktSolver
    {
      public:
        KktSolveStats
        solve(const Vector&, const Vector&, Vector&, Vector&) override
        {
            return {};
        }
        void updateRho(const Vector&) override {}
        const char* name() const override { return "minimal"; }
    };
    MinimalSolver minimal;
    EXPECT_FALSE(minimal.updateMatrixValues({}, {}));
}

} // namespace
} // namespace rsqp
