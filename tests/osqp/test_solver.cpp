/**
 * @file
 * OSQP solver tests: hand-checkable QPs with known solutions, KKT
 * optimality of returned solutions, backend equivalence, and a
 * parameterized sweep over all six benchmark domains.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "linalg/vector_ops.hpp"
#include "osqp/solver.hpp"
#include "problems/suite.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

/** min (1/2)(x0^2 + x1^2) - x0 - x1  s.t. x0 + x1 = 1, x >= 0.
 *  Solution: x = (0.5, 0.5). */
QpProblem
simpleEqualityQp()
{
    QpProblem problem;
    TripletList p_triplets(2, 2);
    p_triplets.add(0, 0, 1.0);
    p_triplets.add(1, 1, 1.0);
    problem.pUpper = CscMatrix::fromTriplets(p_triplets);
    problem.q = {-1.0, -1.0};
    TripletList a_triplets(3, 2);
    a_triplets.add(0, 0, 1.0);
    a_triplets.add(0, 1, 1.0);
    a_triplets.add(1, 0, 1.0);
    a_triplets.add(2, 1, 1.0);
    problem.a = CscMatrix::fromTriplets(a_triplets);
    problem.l = {1.0, 0.0, 0.0};
    problem.u = {1.0, kInf, kInf};
    problem.name = "simple_eq";
    return problem;
}

/** Box-constrained separable QP with the unconstrained optimum
 *  outside the box: min (1/2)||x||^2 - 10 x0, 0 <= x <= 2. */
QpProblem
boxQp()
{
    QpProblem problem;
    TripletList p_triplets(3, 3);
    for (Index i = 0; i < 3; ++i)
        p_triplets.add(i, i, 1.0);
    problem.pUpper = CscMatrix::fromTriplets(p_triplets);
    problem.q = {-10.0, 1.0, 0.0};
    TripletList a_triplets(3, 3);
    for (Index i = 0; i < 3; ++i)
        a_triplets.add(i, i, 1.0);
    problem.a = CscMatrix::fromTriplets(a_triplets);
    problem.l = {0.0, 0.0, 0.0};
    problem.u = {2.0, 2.0, 2.0};
    problem.name = "box";
    return problem;
}

OsqpSettings
defaultSettings(KktBackend backend)
{
    OsqpSettings settings;
    settings.backend = backend;
    settings.epsAbs = 1e-5;
    settings.epsRel = 1e-5;
    return settings;
}

TEST(OsqpSolver, SolvesSimpleEqualityQp)
{
    OsqpSolver solver(simpleEqualityQp(),
                      defaultSettings(KktBackend::DirectLdl));
    const OsqpResult result = solver.solve();
    ASSERT_EQ(result.info.status, SolveStatus::Solved);
    EXPECT_NEAR(result.x[0], 0.5, 1e-3);
    EXPECT_NEAR(result.x[1], 0.5, 1e-3);
    EXPECT_NEAR(result.info.objective, 0.25 - 1.0, 1e-3);
}

TEST(OsqpSolver, SolvesBoxQpAtBound)
{
    OsqpSolver solver(boxQp(), defaultSettings(KktBackend::DirectLdl));
    const OsqpResult result = solver.solve();
    ASSERT_EQ(result.info.status, SolveStatus::Solved);
    EXPECT_NEAR(result.x[0], 2.0, 1e-3);  // clipped at the box
    EXPECT_NEAR(result.x[1], 0.0, 1e-3);  // pushed to zero
    EXPECT_NEAR(result.x[2], 0.0, 1e-3);  // free at zero
}

TEST(OsqpSolver, DualVariablesSatisfyStationarity)
{
    const QpProblem problem = simpleEqualityQp();
    OsqpSolver solver(problem, defaultSettings(KktBackend::DirectLdl));
    const OsqpResult result = solver.solve();
    ASSERT_EQ(result.info.status, SolveStatus::Solved);
    // P x + q + A' y ~ 0.
    Vector px;
    problem.pUpper.spmvSymUpper(result.x, px);
    Vector aty;
    problem.a.spmvTranspose(result.y, aty);
    for (Index j = 0; j < 2; ++j) {
        const auto s = static_cast<std::size_t>(j);
        EXPECT_NEAR(px[s] + problem.q[s] + aty[s], 0.0, 1e-3);
    }
}

TEST(OsqpSolver, ReportsResidualsBelowTolerance)
{
    OsqpSolver solver(boxQp(), defaultSettings(KktBackend::DirectLdl));
    const OsqpResult result = solver.solve();
    ASSERT_EQ(result.info.status, SolveStatus::Solved);
    EXPECT_LE(result.info.primRes, 1e-4);
    EXPECT_LE(result.info.dualRes, 1e-4);
}

TEST(OsqpSolver, MaxIterReached)
{
    OsqpSettings settings = defaultSettings(KktBackend::DirectLdl);
    settings.maxIter = 2;
    settings.checkInterval = 1;
    settings.epsAbs = 1e-12;
    settings.epsRel = 1e-12;
    Rng rng(3);
    OsqpSolver solver(generateProblem(Domain::Portfolio, 30, 3),
                      settings);
    const OsqpResult result = solver.solve();
    EXPECT_EQ(result.info.status, SolveStatus::MaxIterReached);
    EXPECT_EQ(result.info.iterations, 2);
}

TEST(OsqpSolver, TraceRecordsResidualHistory)
{
    OsqpSettings settings = defaultSettings(KktBackend::DirectLdl);
    settings.recordTrace = true;
    OsqpSolver solver(boxQp(), settings);
    const OsqpResult result = solver.solve();
    ASSERT_FALSE(result.trace.empty());
    for (const IterationRecord& rec : result.trace) {
        EXPECT_GT(rec.iteration, 0);
        EXPECT_GE(rec.primRes, 0.0);
        EXPECT_GT(rec.rho, 0.0);
    }
}

TEST(OsqpSolver, WarmStartReducesIterations)
{
    Rng rng(6);
    const QpProblem problem = generateProblem(Domain::Svm, 30, 11);
    OsqpSolver cold(problem, defaultSettings(KktBackend::DirectLdl));
    const OsqpResult first = cold.solve();
    ASSERT_EQ(first.info.status, SolveStatus::Solved);

    OsqpSolver warm(problem, defaultSettings(KktBackend::DirectLdl));
    warm.warmStart(first.x, first.y);
    const OsqpResult second = warm.solve();
    ASSERT_EQ(second.info.status, SolveStatus::Solved);
    EXPECT_LT(second.info.iterations, first.info.iterations);
}

TEST(OsqpSolver, WarmStartSizeMismatchIsNonFatal)
{
    const QpProblem problem = generateProblem(Domain::Svm, 30, 11);
    OsqpSolver solver(problem, defaultSettings(KktBackend::DirectLdl));

    // A wrong-shaped guess is a recoverable client error: ignored with
    // a warning, no abort, and the solve proceeds normally.
    Vector shortX(static_cast<std::size_t>(problem.numVariables() - 1),
                  0.0);
    Vector y(static_cast<std::size_t>(problem.numConstraints()), 0.0);
    EXPECT_FALSE(solver.warmStart(shortX, y));
    Vector x(static_cast<std::size_t>(problem.numVariables()), 0.0);
    Vector longY(static_cast<std::size_t>(problem.numConstraints() + 3),
                 0.0);
    EXPECT_FALSE(solver.warmStart(x, longY));
    EXPECT_TRUE(solver.warmStart(x, y));

    const OsqpResult result = solver.solve();
    EXPECT_EQ(result.info.status, SolveStatus::Solved);
}

TEST(OsqpSolver, InvalidSettingsRejected)
{
    // Malformed settings no longer throw: the solver is inert and
    // every solve() reports a typed InvalidProblem with diagnostics.
    OsqpSettings settings;
    settings.alpha = 2.5;
    {
        OsqpSolver solver(boxQp(), settings);
        EXPECT_FALSE(solver.validation().ok());
        const OsqpResult result = solver.solve();
        EXPECT_EQ(result.info.status, SolveStatus::InvalidProblem);
    }
    settings = OsqpSettings{};
    settings.rho = -1.0;
    {
        OsqpSolver solver(boxQp(), settings);
        EXPECT_FALSE(solver.validation().ok());
        EXPECT_EQ(solver.solve().info.status,
                  SolveStatus::InvalidProblem);
    }
}

TEST(OsqpSolver, InvalidProblemRejected)
{
    QpProblem problem = boxQp();
    problem.l[0] = 3.0;  // l > u
    // Malformed data no longer throws: the solver is constructed inert
    // and solve() reports a typed failure with diagnostics attached.
    OsqpSolver solver(problem, OsqpSettings{});
    EXPECT_FALSE(solver.validation().ok());
    const OsqpResult result = solver.solve();
    EXPECT_EQ(result.info.status, SolveStatus::InvalidProblem);
    EXPECT_TRUE(result.validation.has(ValidationCode::InfeasibleBounds));
}

/** Both backends must solve every benchmark domain to tolerance. */
class OsqpDomainSweep
    : public ::testing::TestWithParam<std::tuple<Domain, KktBackend>>
{};

TEST_P(OsqpDomainSweep, SolvesToTolerance)
{
    const auto [domain, backend] = GetParam();
    const Index size = domain == Domain::Control ? 8 : 40;
    const QpProblem problem = generateProblem(domain, size, 99);
    OsqpSolver solver(problem, defaultSettings(backend));
    const OsqpResult result = solver.solve();
    ASSERT_EQ(result.info.status, SolveStatus::Solved)
        << toString(domain) << " with "
        << (backend == KktBackend::DirectLdl ? "direct" : "indirect");

    // Residuals must satisfy the OSQP termination criterion (the
    // relative part scales with the problem data norms).
    Vector ax, px, aty;
    problem.a.spmv(result.x, ax);
    problem.pUpper.spmvSymUpper(result.x, px);
    problem.a.spmvTranspose(result.y, aty);
    const Real eps_prim = 1e-5 +
        1e-5 * std::max(normInf(ax), normInf(result.z));
    const Real eps_dual = 1e-5 +
        1e-5 * std::max({normInf(px), normInf(aty),
                         normInf(problem.q)});
    EXPECT_LE(result.info.primRes, eps_prim);
    EXPECT_LE(result.info.dualRes, eps_dual);
}

INSTANTIATE_TEST_SUITE_P(
    AllDomains, OsqpDomainSweep,
    ::testing::Combine(::testing::Values(Domain::Control, Domain::Lasso,
                                         Domain::Huber, Domain::Portfolio,
                                         Domain::Svm, Domain::Eqqp),
                       ::testing::Values(KktBackend::DirectLdl,
                                         KktBackend::IndirectPcg)));

/** Backends agree on the optimal objective. */
class BackendAgreement : public ::testing::TestWithParam<Domain>
{};

TEST_P(BackendAgreement, ObjectivesMatch)
{
    const Domain domain = GetParam();
    const Index size = domain == Domain::Control ? 6 : 30;
    const QpProblem problem = generateProblem(domain, size, 5);
    OsqpSolver direct(problem, defaultSettings(KktBackend::DirectLdl));
    OsqpSolver indirect(problem,
                        defaultSettings(KktBackend::IndirectPcg));
    const OsqpResult rd = direct.solve();
    const OsqpResult ri = indirect.solve();
    ASSERT_EQ(rd.info.status, SolveStatus::Solved);
    ASSERT_EQ(ri.info.status, SolveStatus::Solved);
    const Real scale = 1.0 + std::abs(rd.info.objective);
    EXPECT_NEAR(rd.info.objective, ri.info.objective, 2e-2 * scale);
}

INSTANTIATE_TEST_SUITE_P(AllDomains, BackendAgreement,
                         ::testing::Values(Domain::Control, Domain::Lasso,
                                           Domain::Huber,
                                           Domain::Portfolio, Domain::Svm,
                                           Domain::Eqqp));

} // namespace
} // namespace rsqp
