/**
 * @file
 * Fault-tolerance layer tests: divergence watchdog verdicts, iterate
 * checkpointing, recovery bookkeeping, wall-clock time limits,
 * PCG→LDL fallback under injected soft errors, and the end-to-end
 * guarantee that a solve under fault injection always terminates with
 * a typed status and finite iterates.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "common/fault_injection.hpp"
#include "linalg/vector_ops.hpp"
#include "osqp/recovery.hpp"
#include "osqp/solver.hpp"
#include "problems/suite.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

constexpr Real kNan = std::numeric_limits<Real>::quiet_NaN();

// --- DivergenceWatchdog ---------------------------------------------

TEST(DivergenceWatchdog, ImprovingResidualsAreOk)
{
    DivergenceWatchdog watchdog(FaultToleranceSettings{});
    Real res = 1.0;
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(watchdog.observe(res, res),
                  DivergenceWatchdog::Verdict::Ok);
        res *= 0.5;
    }
    EXPECT_LT(watchdog.bestScore(), 1e-10);
}

TEST(DivergenceWatchdog, BlowupIsDiverged)
{
    FaultToleranceSettings settings;
    settings.divergenceFactor = 1e6;
    DivergenceWatchdog watchdog(settings);
    ASSERT_EQ(watchdog.observe(1.0, 1.0),
              DivergenceWatchdog::Verdict::Ok);
    EXPECT_EQ(watchdog.observe(1e9, 1e9),
              DivergenceWatchdog::Verdict::Diverged);
}

TEST(DivergenceWatchdog, NonFiniteIsDiverged)
{
    DivergenceWatchdog watchdog(FaultToleranceSettings{});
    ASSERT_EQ(watchdog.observe(1.0, 1.0),
              DivergenceWatchdog::Verdict::Ok);
    EXPECT_EQ(watchdog.observe(kNan, 0.5),
              DivergenceWatchdog::Verdict::Diverged);
    EXPECT_EQ(
        watchdog.observe(std::numeric_limits<Real>::infinity(), 0.5),
        DivergenceWatchdog::Verdict::Diverged);
}

TEST(DivergenceWatchdog, StallAfterConfiguredChecks)
{
    FaultToleranceSettings settings;
    settings.stallChecks = 5;
    DivergenceWatchdog watchdog(settings);
    ASSERT_EQ(watchdog.observe(1.0, 1.0),
              DivergenceWatchdog::Verdict::Ok);
    // Flat residuals: no improvement, no blowup.
    DivergenceWatchdog::Verdict verdict =
        DivergenceWatchdog::Verdict::Ok;
    int checks = 0;
    while (verdict == DivergenceWatchdog::Verdict::Ok && checks < 50) {
        verdict = watchdog.observe(1.0, 1.0);
        ++checks;
    }
    EXPECT_EQ(verdict, DivergenceWatchdog::Verdict::Stalled);
    EXPECT_LE(checks, settings.stallChecks + 1);
    // After a stall the counter restarts; the next flat check is Ok.
    EXPECT_EQ(watchdog.observe(1.0, 1.0),
              DivergenceWatchdog::Verdict::Ok);
}

TEST(DivergenceWatchdog, ZeroStallChecksDisablesStallDetection)
{
    FaultToleranceSettings settings;
    settings.stallChecks = 0;
    DivergenceWatchdog watchdog(settings);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(watchdog.observe(1.0, 1.0),
                  DivergenceWatchdog::Verdict::Ok);
}

TEST(DivergenceWatchdog, ResetForgetsHistory)
{
    DivergenceWatchdog watchdog(FaultToleranceSettings{});
    ASSERT_EQ(watchdog.observe(1e-8, 1e-8),
              DivergenceWatchdog::Verdict::Ok);
    watchdog.reset();
    // 1.0 would be a catastrophic blowup vs. best 1e-8 without reset
    // (factor 1e8 > divergenceFactor 1e6).
    EXPECT_EQ(watchdog.observe(1.0, 1.0),
              DivergenceWatchdog::Verdict::Ok);
}

// --- IterateCheckpoint ----------------------------------------------

TEST(IterateCheckpoint, CaptureAndRestore)
{
    IterateCheckpoint checkpoint;
    EXPECT_FALSE(checkpoint.valid());

    const Vector x0 = {1.0, 2.0}, y0 = {3.0}, z0 = {4.0};
    checkpoint.capture(x0, y0, z0, 42);
    EXPECT_TRUE(checkpoint.valid());
    EXPECT_EQ(checkpoint.iteration(), 42);

    Vector x = {kNan, kNan}, y = {kNan}, z = {kNan};
    checkpoint.restore(x, y, z);
    EXPECT_EQ(x, x0);
    EXPECT_EQ(y, y0);
    EXPECT_EQ(z, z0);
}

// --- RecoveryReport -------------------------------------------------

TEST(RecoveryReport, RecordsEventsInOrder)
{
    RecoveryReport report;
    EXPECT_TRUE(report.empty());
    report.record(RecoveryAction::PcgDirectFallback, 10, "breakdown");
    report.record(RecoveryAction::CheckpointRestore, 20);
    ASSERT_EQ(report.events.size(), 2u);
    EXPECT_EQ(report.events[0].action,
              RecoveryAction::PcgDirectFallback);
    EXPECT_EQ(report.events[0].iteration, 10);
    EXPECT_EQ(report.events[1].iteration, 20);
    EXPECT_FALSE(report.empty());
}

// --- Wall-clock time limit ------------------------------------------

TEST(TimeLimit, ExpiresWithTypedStatusAndFiniteIterates)
{
    const QpProblem qp = generateProblem(Domain::Portfolio, 60, 5);
    OsqpSettings settings;
    settings.timeLimit = 1e-9;  // expires at the first iteration check
    settings.maxIter = 200000;
    const OsqpResult result = OsqpSolver(qp, settings).solve();
    EXPECT_EQ(result.info.status, SolveStatus::TimeLimitReached);
    EXPECT_FALSE(hasNonFinite(result.x));
    EXPECT_FALSE(hasNonFinite(result.y));
    EXPECT_FALSE(hasNonFinite(result.z));
}

TEST(TimeLimit, GenerousBudgetDoesNotTrigger)
{
    const QpProblem qp = generateProblem(Domain::Portfolio, 30, 5);
    OsqpSettings settings;
    settings.timeLimit = 3600.0;
    const OsqpResult result = OsqpSolver(qp, settings).solve();
    EXPECT_EQ(result.info.status, SolveStatus::Solved);
}

// --- Fault injection primitives -------------------------------------

/** Bit pattern of a Real (NaN-safe equality for injected words). */
std::uint64_t
bits(Real v)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

TEST(FaultInjector, DeterministicAcrossInstances)
{
    FaultInjectionConfig config;
    config.enabled = true;
    config.seed = 1234;
    config.ratePerWord = 0.05;
    FaultInjector a(config), b(config);
    for (std::uint64_t i = 0; i < 2000; ++i) {
        const Real v = static_cast<Real>(i) * 0.25 + 1.0;
        EXPECT_EQ(bits(a.corruptWord(v, fault_streams::kHbmLoad, i)),
                  bits(b.corruptWord(v, fault_streams::kHbmLoad, i)))
            << i;
    }
    EXPECT_EQ(a.faultsInjected(), b.faultsInjected());
    EXPECT_GT(a.faultsInjected(), 0);
}

TEST(FaultInjector, RateIsApproximatelyHonored)
{
    FaultInjectionConfig config;
    config.enabled = true;
    config.seed = 9;
    config.ratePerWord = 0.01;
    FaultInjector injector(config);
    const std::uint64_t words = 200000;
    for (std::uint64_t i = 0; i < words; ++i)
        injector.corruptWord(1.0, fault_streams::kSpmvValues, i);
    const Real observed = static_cast<Real>(injector.faultsInjected()) /
        static_cast<Real>(words);
    EXPECT_NEAR(observed, config.ratePerWord,
                0.5 * config.ratePerWord);
    EXPECT_EQ(injector.faultsInjected(),
              injector.bitFlipsInjected() + injector.nansInjected());
    EXPECT_GT(injector.nansInjected(), 0);
    EXPECT_GT(injector.bitFlipsInjected(), 0);
}

TEST(FaultInjector, EpochChangesPattern)
{
    FaultInjectionConfig config;
    config.enabled = true;
    config.seed = 7;
    config.ratePerWord = 0.02;
    FaultInjector injector(config);
    std::vector<std::uint64_t> first, second;
    for (std::uint64_t i = 0; i < 5000; ++i)
        first.push_back(bits(
            injector.corruptWord(2.0, fault_streams::kMacOutput, i)));
    injector.advanceEpoch();
    for (std::uint64_t i = 0; i < 5000; ++i)
        second.push_back(bits(
            injector.corruptWord(2.0, fault_streams::kMacOutput, i)));
    EXPECT_NE(first, second);
}

TEST(FaultInjector, DisabledInjectorIsIdentity)
{
    FaultInjector injector(FaultInjectionConfig{});
    EXPECT_FALSE(injector.enabled());
    for (std::uint64_t i = 0; i < 1000; ++i)
        EXPECT_EQ(injector.corruptWord(3.5, fault_streams::kHbmLoad, i),
                  3.5);
    EXPECT_EQ(injector.faultsInjected(), 0);
}

TEST(FaultScope, InstallsAndRestoresThreadLocal)
{
    EXPECT_EQ(activeFaultInjector(), nullptr);
    FaultInjectionConfig config;
    config.enabled = true;
    FaultInjector injector(config);
    {
        FaultScope scope(&injector);
        EXPECT_EQ(activeFaultInjector(), &injector);
        {
            FaultScope inner(nullptr);
            // Null scope is a no-op: the outer injector stays active.
            EXPECT_EQ(activeFaultInjector(), &injector);
        }
        EXPECT_EQ(activeFaultInjector(), &injector);
    }
    EXPECT_EQ(activeFaultInjector(), nullptr);
}

// --- PCG breakdown and LDL fallback under injection -----------------

/**
 * Aggressive NaN injection into the software PCG operator stream: the
 * breakdown screen must catch the poisoned step and the direct LDL'
 * fallback (plus the ADMM watchdog above it) must keep the solve
 * typed and finite.
 */
TEST(PcgFallback, InjectedFaultsAreSurvivedOrTyped)
{
    const QpProblem qp = generateProblem(Domain::Svm, 30, 11);
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    settings.faultInjection.enabled = true;
    settings.faultInjection.seed = 21;
    settings.faultInjection.ratePerWord = 2e-4;
    settings.faultInjection.nanFraction = 1.0;

    OsqpSolver solver(qp, settings);
    const OsqpResult result = solver.solve();

    // Typed terminal status, finite iterates — never NaN output.
    EXPECT_NE(result.info.status, SolveStatus::Unsolved);
    EXPECT_FALSE(hasNonFinite(result.x));
    EXPECT_FALSE(hasNonFinite(result.y));
    EXPECT_FALSE(hasNonFinite(result.z));
}

TEST(PcgFallback, RecoveryEventsAreRecordedUnderHeavyInjection)
{
    const QpProblem qp = generateProblem(Domain::Portfolio, 40, 3);
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    settings.maxIter = 2000;
    settings.faultInjection.enabled = true;
    settings.faultInjection.seed = 4;
    settings.faultInjection.ratePerWord = 5e-3;  // heavy bombardment
    settings.faultInjection.nanFraction = 1.0;

    OsqpSolver solver(qp, settings);
    const OsqpResult result = solver.solve();
    EXPECT_FALSE(hasNonFinite(result.x));
    // At this rate the operator stream is hit with near-certainty, so
    // at least one fallback (or watchdog recovery) must be on record.
    EXPECT_FALSE(result.info.recovery.empty())
        << "no recovery action recorded under 5e-3 NaN injection";
}

TEST(PcgFallback, DisabledFallbackStillTerminatesTyped)
{
    const QpProblem qp = generateProblem(Domain::Svm, 24, 2);
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    settings.maxIter = 1000;
    settings.pcg.directFallback = false;
    settings.faultInjection.enabled = true;
    settings.faultInjection.seed = 5;
    settings.faultInjection.ratePerWord = 5e-3;
    settings.faultInjection.nanFraction = 1.0;

    const OsqpResult result = OsqpSolver(qp, settings).solve();
    EXPECT_NE(result.info.status, SolveStatus::Unsolved);
    EXPECT_FALSE(hasNonFinite(result.x));
    EXPECT_FALSE(hasNonFinite(result.y));
}

/** Identical settings + seed must reproduce the identical solve. */
TEST(PcgFallback, InjectionRunsAreDeterministic)
{
    const QpProblem qp = generateProblem(Domain::Portfolio, 30, 8);
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    settings.faultInjection.enabled = true;
    settings.faultInjection.seed = 77;
    settings.faultInjection.ratePerWord = 1e-3;

    const OsqpResult a = OsqpSolver(qp, settings).solve();
    const OsqpResult b = OsqpSolver(qp, settings).solve();
    EXPECT_EQ(a.info.status, b.info.status);
    EXPECT_EQ(a.info.iterations, b.info.iterations);
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.y, b.y);
}

// --- Watchdog disabled keeps legacy behavior ------------------------

TEST(Watchdog, DisabledWatchdogStillSolvesCleanProblems)
{
    const QpProblem qp = generateProblem(Domain::Control, 8, 1);
    OsqpSettings settings;
    settings.faultTolerance.watchdog = false;
    const OsqpResult result = OsqpSolver(qp, settings).solve();
    EXPECT_EQ(result.info.status, SolveStatus::Solved);
    EXPECT_TRUE(result.info.recovery.empty());
}

TEST(Watchdog, CleanSolveRecordsNoRecovery)
{
    const QpProblem qp = generateProblem(Domain::Lasso, 30, 2);
    const OsqpResult result = OsqpSolver(qp, OsqpSettings{}).solve();
    ASSERT_EQ(result.info.status, SolveStatus::Solved);
    EXPECT_TRUE(result.info.recovery.empty());
    EXPECT_EQ(result.info.recovery.pcgFallbacks, 0);
    EXPECT_EQ(result.info.recovery.checkpointRestores, 0);
}

} // namespace
} // namespace rsqp
