/**
 * @file
 * Parametric-update tests: updating q, bounds or matrix values reuses
 * the setup (the structure-reuse model that amortizes RSQP's hardware
 * generation) and produces the same solutions as fresh solvers.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "osqp/solver.hpp"
#include "problems/generators.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

OsqpSettings
tightSettings()
{
    OsqpSettings settings;
    settings.epsAbs = 1e-6;
    settings.epsRel = 1e-6;
    return settings;
}

TEST(Parametric, UpdateLinearCostMatchesFreshSolve)
{
    Rng rng(1);
    QpProblem problem = generatePortfolio(30, rng);
    OsqpSolver solver(problem, tightSettings());
    solver.solve();

    Vector q2 = problem.q;
    for (Real& v : q2)
        v *= 0.5;
    solver.updateLinearCost(q2);
    const OsqpResult updated = solver.solve();

    QpProblem fresh_problem = problem;
    fresh_problem.q = q2;
    OsqpSolver fresh(fresh_problem, tightSettings());
    const OsqpResult reference = fresh.solve();

    ASSERT_EQ(updated.info.status, SolveStatus::Solved);
    ASSERT_EQ(reference.info.status, SolveStatus::Solved);
    EXPECT_NEAR(updated.info.objective, reference.info.objective,
                1e-3 * (1.0 + std::abs(reference.info.objective)));
}

TEST(Parametric, UpdateBoundsMatchesFreshSolve)
{
    Rng rng(2);
    QpProblem problem = generateSvm(20, rng);
    OsqpSolver solver(problem, tightSettings());
    solver.solve();

    Vector l2 = problem.l;
    Vector u2 = problem.u;
    for (std::size_t i = 0; i < l2.size(); ++i) {
        if (l2[i] > -kInf)
            l2[i] -= 0.25;
        if (u2[i] < kInf)
            u2[i] += 0.25;
    }
    solver.updateBounds(l2, u2);
    const OsqpResult updated = solver.solve();

    QpProblem fresh_problem = problem;
    fresh_problem.l = l2;
    fresh_problem.u = u2;
    OsqpSolver fresh(fresh_problem, tightSettings());
    const OsqpResult reference = fresh.solve();
    ASSERT_EQ(updated.info.status, SolveStatus::Solved);
    EXPECT_NEAR(updated.info.objective, reference.info.objective,
                1e-3 * (1.0 + std::abs(reference.info.objective)));
}

TEST(Parametric, UpdateBoundsRejectsCrossedBounds)
{
    Rng rng(3);
    QpProblem problem = generatePortfolio(20, rng);
    OsqpSolver solver(problem, tightSettings());
    Vector l2 = problem.l;
    Vector u2 = problem.u;
    l2[0] = 5.0;
    u2[0] = -5.0;
    EXPECT_THROW(solver.updateBounds(l2, u2), FatalError);
}

TEST(Parametric, UpdateMatrixValuesMatchesFreshSolve)
{
    Rng rng(4);
    QpProblem problem = generateEqqp(24, rng);
    OsqpSolver solver(problem, tightSettings());
    solver.solve();

    // Scale A values (same sparsity).
    std::vector<Real> a_values = problem.a.values();
    for (Real& v : a_values)
        v *= 1.5;
    solver.updateMatrixValues({}, a_values);
    const OsqpResult updated = solver.solve();

    QpProblem fresh_problem = problem;
    fresh_problem.a.values() = a_values;
    OsqpSolver fresh(fresh_problem, tightSettings());
    const OsqpResult reference = fresh.solve();
    ASSERT_EQ(updated.info.status, reference.info.status);
    EXPECT_NEAR(updated.info.objective, reference.info.objective,
                2e-3 * (1.0 + std::abs(reference.info.objective)));
}

TEST(Parametric, SequenceOfCostUpdatesStaysSolved)
{
    // Mini backtest: re-solve the same portfolio structure with a
    // sequence of expected-return vectors, warm starting each time.
    Rng rng(5);
    QpProblem problem = generatePortfolio(40, rng);
    OsqpSolver solver(problem, tightSettings());
    OsqpResult result = solver.solve();
    ASSERT_EQ(result.info.status, SolveStatus::Solved);
    Index total_iterations = result.info.iterations;

    for (int step = 0; step < 5; ++step) {
        Vector q = problem.q;
        for (Real& v : q)
            v += rng.normal(0.0, 0.05);
        solver.updateLinearCost(q);
        solver.warmStart(result.x, result.y);
        result = solver.solve();
        ASSERT_EQ(result.info.status, SolveStatus::Solved);
        EXPECT_LE(result.info.iterations, total_iterations + 50);
    }
}


TEST(Parametric, ManualRhoUpdate)
{
    Rng rng(6);
    QpProblem problem = generatePortfolio(25, rng);
    OsqpSettings settings = tightSettings();
    settings.adaptiveRho = false;
    OsqpSolver solver(problem, settings);
    const OsqpResult before = solver.solve();
    ASSERT_EQ(before.info.status, SolveStatus::Solved);
    EXPECT_DOUBLE_EQ(solver.currentRho(), settings.rho);

    solver.updateRho(5.0);
    EXPECT_DOUBLE_EQ(solver.currentRho(), 5.0);
    const OsqpResult after = solver.solve();
    ASSERT_EQ(after.info.status, SolveStatus::Solved);
    // Same optimum from a different rho.
    EXPECT_NEAR(before.info.objective, after.info.objective,
                1e-3 * (1.0 + std::abs(before.info.objective)));
    EXPECT_THROW(solver.updateRho(-1.0), FatalError);
}

} // namespace
} // namespace rsqp
