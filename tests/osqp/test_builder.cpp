/**
 * @file
 * QpBuilder tests: assembled problems match hand-built triplets, the
 * OSQP demo problem solves to its known optimum, and invalid input is
 * rejected.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "osqp/builder.hpp"
#include "osqp/solver.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

TEST(QpBuilder, OsqpDemoProblem)
{
    QpBuilder builder(2);
    builder.quadraticCost(0, 0, 4.0)
        .quadraticCost(0, 1, 1.0)
        .quadraticCost(1, 1, 2.0)
        .linearCost(0, 1.0)
        .linearCost(1, 1.0);
    builder.addEquality(1.0, {{0, 1.0}, {1, 1.0}});
    builder.addBox(0, 0.0, 0.7);
    builder.addBox(1, 0.0, 0.7);
    const QpProblem qp = builder.build("demo");
    EXPECT_EQ(qp.numVariables(), 2);
    EXPECT_EQ(qp.numConstraints(), 3);

    OsqpSettings settings;
    settings.epsAbs = 1e-6;
    settings.epsRel = 1e-6;
    settings.polish = true;
    const OsqpResult result = OsqpSolver(qp, settings).solve();
    ASSERT_EQ(result.info.status, SolveStatus::Solved);
    EXPECT_NEAR(result.x[0], 0.3, 1e-4);
    EXPECT_NEAR(result.x[1], 0.7, 1e-4);
}

TEST(QpBuilder, SymmetricEntryStoredUpper)
{
    QpBuilder builder(3);
    builder.quadraticCost(2, 0, 5.0);  // below-diagonal input
    builder.quadraticCost(1, 1, 1.0);
    builder.quadraticCost(0, 0, 1.0);
    builder.quadraticCost(2, 2, 1.0);
    builder.addBox(0, -1.0, 1.0);
    const QpProblem qp = builder.build();
    // Entry landed at (0, 2) in the upper triangle.
    EXPECT_DOUBLE_EQ(qp.pUpper.coeff(0, 2), 5.0);
    for (Index c = 0; c < 3; ++c)
        for (Index p = qp.pUpper.colPtr()[c];
             p < qp.pUpper.colPtr()[c + 1]; ++p)
            EXPECT_LE(qp.pUpper.rowIdx()[p], c);
}

TEST(QpBuilder, RepeatedCoefficientsAccumulate)
{
    QpBuilder builder(2);
    builder.quadraticCost(0, 0, 1.0).quadraticCost(0, 0, 2.0);
    builder.linearCost(1, 0.5).linearCost(1, 0.5);
    builder.addBox(0, 0.0, 1.0);
    const QpProblem qp = builder.build();
    EXPECT_DOUBLE_EQ(qp.pUpper.coeff(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(qp.q[1], 1.0);
}

TEST(QpBuilder, ConstraintRowIndicesSequential)
{
    QpBuilder builder(2);
    EXPECT_EQ(builder.addBox(0, 0.0, 1.0), 0);
    EXPECT_EQ(builder.addEquality(2.0, {{0, 1.0}, {1, 1.0}}), 1);
    EXPECT_EQ(builder.addConstraint(-kInf, 5.0, {{1, 3.0}}), 2);
    EXPECT_EQ(builder.numConstraints(), 3);
    const QpProblem qp = builder.build();
    EXPECT_DOUBLE_EQ(qp.u[2], 5.0);
    EXPECT_LE(qp.l[2], -kInf);
}

TEST(QpBuilder, CrossedBoundsRejected)
{
    QpBuilder builder(1);
    EXPECT_THROW(builder.addConstraint(2.0, 1.0, {{0, 1.0}}),
                 FatalError);
}

TEST(QpBuilder, UnconstrainedVariableAllowed)
{
    // A variable with no constraint rows at all is legal.
    QpBuilder builder(2);
    builder.quadraticCost(0, 0, 1.0).quadraticCost(1, 1, 1.0);
    builder.linearCost(1, -3.0);
    builder.addBox(0, -1.0, 1.0);
    const QpProblem qp = builder.build();
    OsqpSettings settings;
    settings.epsAbs = 1e-6;
    settings.epsRel = 1e-6;
    const OsqpResult result = OsqpSolver(qp, settings).solve();
    ASSERT_EQ(result.info.status, SolveStatus::Solved);
    EXPECT_NEAR(result.x[1], 3.0, 1e-3);  // unconstrained minimum
}

} // namespace
} // namespace rsqp
