/**
 * @file
 * Property test: writeQpProblem -> readQpProblem is a *bitwise* exact
 * round trip — every structural array identical and every double
 * recovering its exact bit pattern — across the whole generator suite
 * and the degenerate shapes (no constraints, single variable).
 */

#include <cstring>
#include <sstream>

#include <gtest/gtest.h>

#include "osqp/problem_io.hpp"
#include "osqp/validate.hpp"
#include "problems/suite.hpp"

namespace rsqp
{
namespace
{

/** memcmp equality: distinguishes -0.0 from 0.0, exact bit patterns. */
bool
bitwiseEqual(const Vector& a, const Vector& b)
{
    if (a.size() != b.size())
        return false;
    return a.empty() ||
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(Real)) == 0;
}

void
expectBitwiseRoundTrip(const QpProblem& qp, const std::string& what)
{
    std::stringstream ss;
    writeQpProblem(ss, qp);
    const QpProblem back = readQpProblem(ss);

    EXPECT_EQ(back.pUpper.rows(), qp.pUpper.rows()) << what;
    EXPECT_EQ(back.pUpper.cols(), qp.pUpper.cols()) << what;
    EXPECT_EQ(back.pUpper.colPtr(), qp.pUpper.colPtr()) << what;
    EXPECT_EQ(back.pUpper.rowIdx(), qp.pUpper.rowIdx()) << what;
    EXPECT_TRUE(bitwiseEqual(back.pUpper.values(), qp.pUpper.values()))
        << what << ": P values";

    EXPECT_EQ(back.a.rows(), qp.a.rows()) << what;
    EXPECT_EQ(back.a.cols(), qp.a.cols()) << what;
    EXPECT_EQ(back.a.colPtr(), qp.a.colPtr()) << what;
    EXPECT_EQ(back.a.rowIdx(), qp.a.rowIdx()) << what;
    EXPECT_TRUE(bitwiseEqual(back.a.values(), qp.a.values()))
        << what << ": A values";

    EXPECT_TRUE(bitwiseEqual(back.q, qp.q)) << what << ": q";
    EXPECT_TRUE(bitwiseEqual(back.l, qp.l)) << what << ": l";
    EXPECT_TRUE(bitwiseEqual(back.u, qp.u)) << what << ": u";
}

TEST(ProblemIoProperty, BitwiseRoundTripAcrossGeneratorSuite)
{
    // Two sizes per domain keeps the sweep fast while covering every
    // generator's structural idioms (diagonal P, tall A, eq-only...).
    for (const ProblemSpec& spec : benchmarkSuite(2)) {
        const QpProblem qp = spec.generate();
        ASSERT_TRUE(validateProblem(qp).ok()) << spec.name;
        expectBitwiseRoundTrip(qp, spec.name);
    }
}

TEST(ProblemIoProperty, EmptyConstraintMatrixRoundTrips)
{
    // m = 0: an unconstrained QP. A is 0 x n with no entries.
    QpProblem qp;
    qp.pUpper = CscMatrix::identity(3, 2.0);
    qp.q = {1.0, -2.0, 0.5};
    qp.a = CscMatrix(0, 3);
    qp.name = "empty-a";
    ASSERT_TRUE(validateProblem(qp).ok());
    expectBitwiseRoundTrip(qp, "empty-a");
}

TEST(ProblemIoProperty, SingleVariableRoundTrips)
{
    // n = 1, m = 1: the smallest legal problem.
    QpProblem qp;
    qp.pUpper = CscMatrix::identity(1, 4.0);
    qp.q = {-1.0 / 3.0};  // not exactly representable in decimal
    qp.a = CscMatrix::identity(1, 1.0);
    qp.l = {-kInf};
    qp.u = {2.0};
    qp.name = "scalar";
    ASSERT_TRUE(validateProblem(qp).ok());
    expectBitwiseRoundTrip(qp, "scalar");
}

TEST(ProblemIoProperty, AwkwardDoublesSurviveExactly)
{
    // Values chosen to break naive formatting: denormal-adjacent,
    // negative zero, long decimal expansions, huge finite bounds.
    QpProblem qp;
    qp.pUpper = CscMatrix::diagonal({1e-300, 0.1 + 0.2});
    qp.q = {-0.0, 6.02214076e23};
    qp.a = CscMatrix::identity(2, 1.0 / 7.0);
    qp.l = {-kInf, -9.999999999999999e29};
    qp.u = {1e-17, kInf};
    qp.name = "awkward";
    ASSERT_TRUE(validateProblem(qp).ok());
    expectBitwiseRoundTrip(qp, "awkward");
}

} // namespace
} // namespace rsqp
