/**
 * @file
 * Solution-polishing tests: the polished point must satisfy the KKT
 * conditions to near machine precision when the active set is guessed
 * correctly, never be adopted when it would hurt, and report its
 * active-set bookkeeping.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "osqp/polish.hpp"
#include "osqp/residuals.hpp"
#include "osqp/solver.hpp"
#include "problems/generators.hpp"
#include "problems/suite.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

OsqpSettings
polishSettings()
{
    OsqpSettings settings;
    settings.polish = true;
    return settings;
}

TEST(Polish, DrivesResidualsToMachinePrecision)
{
    Rng rng(1);
    const QpProblem qp = generatePortfolio(40, rng);
    OsqpSolver solver(qp, polishSettings());
    const OsqpResult result = solver.solve();
    ASSERT_EQ(result.info.status, SolveStatus::Solved);
    ASSERT_TRUE(result.polish.attempted);
    if (result.polish.adopted) {
        EXPECT_LT(result.info.primRes, 1e-8);
        EXPECT_LT(result.info.dualRes, 1e-7);
    }
    // Either way the final residuals are no worse than unpolished.
    EXPECT_LE(result.info.primRes,
              result.polish.primResBefore + 1e-15);
}

TEST(Polish, ImprovesBoxQpExactly)
{
    // min (1/2)||x||^2 - 10 x0, 0 <= x <= 2: solution (2, 0, 0),
    // active set = {u_0, l_1, l_2}; polish solves it exactly.
    QpProblem qp;
    TripletList p_triplets(3, 3);
    for (Index i = 0; i < 3; ++i)
        p_triplets.add(i, i, 1.0);
    qp.pUpper = CscMatrix::fromTriplets(p_triplets);
    qp.q = {-10.0, 1.0, 0.0};
    TripletList a_triplets(3, 3);
    for (Index i = 0; i < 3; ++i)
        a_triplets.add(i, i, 1.0);
    qp.a = CscMatrix::fromTriplets(a_triplets);
    qp.l = {0.0, 0.0, 0.0};
    qp.u = {2.0, 2.0, 2.0};

    OsqpSolver solver(qp, polishSettings());
    const OsqpResult result = solver.solve();
    ASSERT_EQ(result.info.status, SolveStatus::Solved);
    ASSERT_TRUE(result.polish.adopted);
    EXPECT_NEAR(result.x[0], 2.0, 1e-9);
    EXPECT_NEAR(result.x[1], 0.0, 1e-9);
    EXPECT_GE(result.polish.activeUpper, 1);
    EXPECT_GE(result.polish.activeLower, 1);
    // Exact dual at the bound: y_0 = 10 - 2 = 8.
    EXPECT_NEAR(result.y[0], 8.0, 1e-8);
}

TEST(Polish, ReportConsistent)
{
    Rng rng(2);
    const QpProblem qp = generateSvm(20, rng);
    OsqpSolver solver(qp, polishSettings());
    const OsqpResult result = solver.solve();
    ASSERT_EQ(result.info.status, SolveStatus::Solved);
    const PolishReport& report = result.polish;
    ASSERT_TRUE(report.attempted);
    EXPECT_GE(report.primResBefore, 0.0);
    if (report.adopted) {
        EXPECT_LE(report.primResAfter, report.primResBefore);
        EXPECT_LE(report.dualResAfter, report.dualResBefore);
    }
}

TEST(Polish, OffByDefault)
{
    Rng rng(3);
    const QpProblem qp = generatePortfolio(30, rng);
    OsqpSettings settings;  // polish defaults to false
    OsqpSolver solver(qp, settings);
    const OsqpResult result = solver.solve();
    EXPECT_FALSE(result.polish.attempted);
}

TEST(Polish, StandaloneApiOnSolvedResult)
{
    Rng rng(4);
    const QpProblem qp = generateLasso(15, rng);
    OsqpSettings settings;
    OsqpSolver solver(qp, settings);
    OsqpResult result = solver.solve();
    ASSERT_EQ(result.info.status, SolveStatus::Solved);

    const ResidualInfo before = computeResiduals(
        qp, result.x, result.y, result.z, settings.epsAbs,
        settings.epsRel);
    const PolishReport report =
        polishSolution(qp, settings, result);
    EXPECT_TRUE(report.attempted);
    if (report.adopted) {
        const ResidualInfo after = computeResiduals(
            qp, result.x, result.y, result.z, settings.epsAbs,
            settings.epsRel);
        EXPECT_LE(after.primRes, before.primRes + 1e-15);
        EXPECT_LE(after.dualRes, before.dualRes + 1e-15);
    }
}

/** Polishing across domains never degrades the solution. */
class PolishSweep : public ::testing::TestWithParam<Domain>
{};

TEST_P(PolishSweep, NeverDegrades)
{
    const Domain domain = GetParam();
    const Index size = domain == Domain::Control ? 6 : 25;
    const QpProblem qp = generateProblem(domain, size, 17);
    OsqpSolver plain(qp, OsqpSettings{});
    OsqpSolver polished(qp, polishSettings());
    const OsqpResult r_plain = plain.solve();
    const OsqpResult r_polished = polished.solve();
    ASSERT_EQ(r_plain.info.status, SolveStatus::Solved);
    ASSERT_EQ(r_polished.info.status, SolveStatus::Solved);
    EXPECT_LE(r_polished.info.primRes, r_plain.info.primRes + 1e-12)
        << toString(domain);
    EXPECT_LE(r_polished.info.dualRes, r_plain.info.dualRes + 1e-12)
        << toString(domain);
}

INSTANTIATE_TEST_SUITE_P(AllDomains, PolishSweep,
                         ::testing::Values(Domain::Control, Domain::Lasso,
                                           Domain::Huber,
                                           Domain::Portfolio, Domain::Svm,
                                           Domain::Eqqp));

} // namespace
} // namespace rsqp
