/**
 * @file
 * Infeasibility-certificate tests: OSQP must detect primal infeasible
 * (contradictory constraints) and dual infeasible (unbounded below)
 * problems instead of iterating forever.
 */

#include <gtest/gtest.h>

#include "linalg/vector_ops.hpp"
#include "osqp/solver.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

OsqpSettings
settingsFor()
{
    OsqpSettings settings;
    settings.maxIter = 4000;
    return settings;
}

TEST(Infeasibility, PrimalInfeasibleContradiction)
{
    // x0 >= 1 and x0 <= -1 simultaneously.
    QpProblem problem;
    TripletList p_triplets(1, 1);
    p_triplets.add(0, 0, 1.0);
    problem.pUpper = CscMatrix::fromTriplets(p_triplets);
    problem.q = {0.0};
    TripletList a_triplets(2, 1);
    a_triplets.add(0, 0, 1.0);
    a_triplets.add(1, 0, 1.0);
    problem.a = CscMatrix::fromTriplets(a_triplets);
    problem.l = {1.0, -kInf};
    problem.u = {kInf, -1.0};

    OsqpSolver solver(problem, settingsFor());
    const OsqpResult result = solver.solve();
    EXPECT_EQ(result.info.status, SolveStatus::PrimalInfeasible);
}

TEST(Infeasibility, PrimalInfeasibleEqualitySystem)
{
    // x0 + x1 = 0 and x0 + x1 = 1.
    QpProblem problem;
    TripletList p_triplets(2, 2);
    p_triplets.add(0, 0, 1.0);
    p_triplets.add(1, 1, 1.0);
    problem.pUpper = CscMatrix::fromTriplets(p_triplets);
    problem.q = {0.0, 0.0};
    TripletList a_triplets(2, 2);
    a_triplets.add(0, 0, 1.0);
    a_triplets.add(0, 1, 1.0);
    a_triplets.add(1, 0, 1.0);
    a_triplets.add(1, 1, 1.0);
    problem.a = CscMatrix::fromTriplets(a_triplets);
    problem.l = {0.0, 1.0};
    problem.u = {0.0, 1.0};

    OsqpSolver solver(problem, settingsFor());
    const OsqpResult result = solver.solve();
    EXPECT_EQ(result.info.status, SolveStatus::PrimalInfeasible);
}

TEST(Infeasibility, DualInfeasibleUnboundedLinear)
{
    // min -x0 with x0 >= 0 only: unbounded below.
    QpProblem problem;
    problem.pUpper = CscMatrix(1, 1);  // zero quadratic
    problem.q = {-1.0};
    TripletList a_triplets(1, 1);
    a_triplets.add(0, 0, 1.0);
    problem.a = CscMatrix::fromTriplets(a_triplets);
    problem.l = {0.0};
    problem.u = {kInf};

    OsqpSolver solver(problem, settingsFor());
    const OsqpResult result = solver.solve();
    EXPECT_EQ(result.info.status, SolveStatus::DualInfeasible);
}

TEST(Infeasibility, DualInfeasibleFreeDirection)
{
    // Quadratic only in x0; x1 unbounded with negative cost.
    QpProblem problem;
    TripletList p_triplets(2, 2);
    p_triplets.add(0, 0, 1.0);
    problem.pUpper = CscMatrix::fromTriplets(p_triplets);
    problem.q = {0.0, -1.0};
    TripletList a_triplets(1, 2);
    a_triplets.add(0, 0, 1.0);  // constraint only on x0
    problem.a = CscMatrix::fromTriplets(a_triplets);
    problem.l = {-1.0};
    problem.u = {1.0};

    OsqpSolver solver(problem, settingsFor());
    const OsqpResult result = solver.solve();
    EXPECT_EQ(result.info.status, SolveStatus::DualInfeasible);
}

TEST(Infeasibility, FeasibleProblemNotFlagged)
{
    // A perfectly solvable problem must never trip the certificates.
    Rng rng(1);
    QpProblem problem;
    problem.pUpper = test::randomSpdUpper(6, 0.4, rng);
    problem.q = test::randomVector(6, rng);
    TripletList a_triplets(6, 6);
    for (Index i = 0; i < 6; ++i)
        a_triplets.add(i, i, 1.0);
    problem.a = CscMatrix::fromTriplets(a_triplets);
    problem.l = constantVector(6, -10.0);
    problem.u = constantVector(6, 10.0);

    OsqpSolver solver(problem, settingsFor());
    const OsqpResult result = solver.solve();
    EXPECT_EQ(result.info.status, SolveStatus::Solved);
}

} // namespace
} // namespace rsqp
