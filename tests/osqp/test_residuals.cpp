/**
 * @file
 * Residual-computation tests: the shared OSQP residual/tolerance
 * helper against hand-computed values and the convergence predicate.
 */

#include <gtest/gtest.h>

#include "osqp/residuals.hpp"
#include "problems/generators.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

/** 1-variable problem: min (1/2) x^2 - x, s.t. 0 <= x <= 2. */
QpProblem
tinyProblem()
{
    QpProblem qp;
    TripletList p_triplets(1, 1);
    p_triplets.add(0, 0, 1.0);
    qp.pUpper = CscMatrix::fromTriplets(p_triplets);
    qp.q = {-1.0};
    TripletList a_triplets(1, 1);
    a_triplets.add(0, 0, 1.0);
    qp.a = CscMatrix::fromTriplets(a_triplets);
    qp.l = {0.0};
    qp.u = {2.0};
    return qp;
}

TEST(Residuals, ExactAtOptimum)
{
    const QpProblem qp = tinyProblem();
    // Optimum: x = 1 (interior), y = 0, z = x.
    const ResidualInfo info =
        computeResiduals(qp, {1.0}, {0.0}, {1.0}, 1e-3, 1e-3);
    EXPECT_DOUBLE_EQ(info.primRes, 0.0);
    EXPECT_DOUBLE_EQ(info.dualRes, 0.0);
    EXPECT_TRUE(info.converged());
}

TEST(Residuals, HandComputedValues)
{
    const QpProblem qp = tinyProblem();
    // At x = 0.5, y = 0.25, z = 0.7:
    //   prim = |A x - z| = |0.5 - 0.7| = 0.2
    //   dual = |P x + q + A'y| = |0.5 - 1 + 0.25| = 0.25
    const ResidualInfo info =
        computeResiduals(qp, {0.5}, {0.25}, {0.7}, 1e-3, 1e-3);
    EXPECT_NEAR(info.primRes, 0.2, 1e-15);
    EXPECT_NEAR(info.dualRes, 0.25, 1e-15);
    // eps_prim = 1e-3 + 1e-3 * max(|Ax|, |z|) = 1e-3 + 1e-3*0.7
    EXPECT_NEAR(info.epsPrim, 1e-3 + 0.7e-3, 1e-15);
    // eps_dual = 1e-3 + 1e-3 * max(|Px|, |A'y|, |q|) = 1e-3 + 1e-3*1.
    EXPECT_NEAR(info.epsDual, 2e-3, 1e-15);
    EXPECT_FALSE(info.converged());
}

TEST(Residuals, ToleranceScalesWithData)
{
    // Scaling the data by 1000 scales the relative tolerance term.
    QpProblem qp = tinyProblem();
    for (Real& v : qp.q)
        v *= 1000.0;
    const ResidualInfo info =
        computeResiduals(qp, {0.0}, {0.0}, {0.0}, 1e-3, 1e-3);
    EXPECT_NEAR(info.epsDual, 1e-3 + 1e-3 * 1000.0, 1e-12);
}

TEST(Residuals, ConvergedIsConjunction)
{
    ResidualInfo info;
    info.primRes = 0.5;
    info.epsPrim = 1.0;
    info.dualRes = 2.0;
    info.epsDual = 1.0;
    EXPECT_FALSE(info.converged());  // dual violated
    info.dualRes = 0.5;
    EXPECT_TRUE(info.converged());
}

TEST(Residuals, AgreesWithGeneratorProblems)
{
    // Zero point: prim = ||z|| = 0 with z = 0, dual = ||q||.
    Rng rng(3);
    const QpProblem qp = generateSvm(15, rng);
    const Vector x(static_cast<std::size_t>(qp.numVariables()), 0.0);
    const Vector y(static_cast<std::size_t>(qp.numConstraints()), 0.0);
    const Vector z(static_cast<std::size_t>(qp.numConstraints()), 0.0);
    const ResidualInfo info =
        computeResiduals(qp, x, y, z, 1e-3, 1e-3);
    EXPECT_DOUBLE_EQ(info.primRes, 0.0);
    Real q_norm = 0.0;
    for (Real v : qp.q)
        q_norm = std::max(q_norm, std::abs(v));
    EXPECT_DOUBLE_EQ(info.dualRes, q_norm);
}

} // namespace
} // namespace rsqp
