/**
 * @file
 * Ruiz equilibration tests: scaling invariants, norm equalization and
 * solution recovery through the scaling maps.
 */

#include <gtest/gtest.h>

#include "linalg/vector_ops.hpp"
#include "osqp/scaling.hpp"
#include "problems/generators.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

QpProblem
sampleProblem()
{
    Rng rng(4);
    return generateLasso(20, rng);
}

TEST(Scaling, IdentityWhenDisabled)
{
    QpProblem problem = sampleProblem();
    const QpProblem before = problem;
    const Scaling scaling = ruizEquilibrate(problem, 0);
    EXPECT_TRUE(problem.pUpper == before.pUpper);
    EXPECT_TRUE(problem.a == before.a);
    for (Real d : scaling.d)
        EXPECT_DOUBLE_EQ(d, 1.0);
    EXPECT_DOUBLE_EQ(scaling.c, 1.0);
}

TEST(Scaling, ScaledMatricesMatchExplicitFormula)
{
    QpProblem problem = sampleProblem();
    const QpProblem before = problem;
    const Scaling scaling = ruizEquilibrate(problem, 10);

    // Pb = c D P D.
    const CscMatrix expected_p =
        before.pUpper.scaled(scaling.d, scaling.d);
    for (std::size_t i = 0; i < problem.pUpper.values().size(); ++i)
        EXPECT_NEAR(problem.pUpper.values()[i],
                    scaling.c * expected_p.values()[i], 1e-12);
    // Ab = E A D.
    const CscMatrix expected_a = before.a.scaled(scaling.e, scaling.d);
    for (std::size_t i = 0; i < problem.a.values().size(); ++i)
        EXPECT_NEAR(problem.a.values()[i], expected_a.values()[i],
                    1e-12);
    // qb = c D q.
    for (std::size_t j = 0; j < problem.q.size(); ++j)
        EXPECT_NEAR(problem.q[j],
                    scaling.c * scaling.d[j] * before.q[j], 1e-12);
}

TEST(Scaling, BoundsScaledAndInfinitiesPreserved)
{
    QpProblem problem = sampleProblem();
    const QpProblem before = problem;
    const Scaling scaling = ruizEquilibrate(problem, 10);
    for (std::size_t i = 0; i < problem.l.size(); ++i) {
        if (before.l[i] <= -kInf)
            EXPECT_LE(problem.l[i], -kInf);
        else
            EXPECT_NEAR(problem.l[i], scaling.e[i] * before.l[i], 1e-10);
        if (before.u[i] >= kInf)
            EXPECT_GE(problem.u[i], kInf);
        else
            EXPECT_NEAR(problem.u[i], scaling.e[i] * before.u[i], 1e-10);
    }
}

TEST(Scaling, EqualizesKktColumnNorms)
{
    QpProblem problem = sampleProblem();
    const Vector before_norms = problem.pUpper.symUpperColumnInfNorms();
    Real before_spread = 0.0;
    {
        const Vector a_cols = problem.a.columnInfNorms();
        Real lo = 1e30, hi = 0.0;
        for (std::size_t j = 0; j < before_norms.size(); ++j) {
            const Real norm = std::max(before_norms[j], a_cols[j]);
            if (norm > 0.0) {
                lo = std::min(lo, norm);
                hi = std::max(hi, norm);
            }
        }
        before_spread = hi / lo;
    }

    ruizEquilibrate(problem, 10);

    const Vector after_p = problem.pUpper.symUpperColumnInfNorms();
    const Vector after_a = problem.a.columnInfNorms();
    Real lo = 1e30, hi = 0.0;
    for (std::size_t j = 0; j < after_p.size(); ++j) {
        const Real norm = std::max(after_p[j], after_a[j]);
        if (norm > 0.0) {
            lo = std::min(lo, norm);
            hi = std::max(hi, norm);
        }
    }
    const Real after_spread = hi / lo;
    EXPECT_LT(after_spread, before_spread + 1e-9);
    EXPECT_LT(after_spread, 10.0);  // well equilibrated
}

TEST(Scaling, InverseVectorsConsistent)
{
    QpProblem problem = sampleProblem();
    const Scaling scaling = ruizEquilibrate(problem, 10);
    for (std::size_t j = 0; j < scaling.d.size(); ++j)
        EXPECT_NEAR(scaling.d[j] * scaling.dInv[j], 1.0, 1e-14);
    for (std::size_t i = 0; i < scaling.e.size(); ++i)
        EXPECT_NEAR(scaling.e[i] * scaling.eInv[i], 1.0, 1e-14);
    EXPECT_NEAR(scaling.c * scaling.cInv, 1.0, 1e-14);
}

TEST(Scaling, FactorsWithinClampRange)
{
    QpProblem problem = sampleProblem();
    const Scaling scaling = ruizEquilibrate(problem, 10);
    for (Real d : scaling.d) {
        EXPECT_GT(d, 0.0);
        EXPECT_LT(d, 1e12);
    }
    for (Real e : scaling.e) {
        EXPECT_GT(e, 0.0);
        EXPECT_LT(e, 1e12);
    }
    EXPECT_GT(scaling.c, 0.0);
}

} // namespace
} // namespace rsqp
