/**
 * @file
 * ISA-level tests: mnemonic/classification coverage for every opcode,
 * and structural landmarks of the lowered OSQP program (the paper's
 * Table 1 usage map rendered as assembly comments).
 */

#include <set>

#include <gtest/gtest.h>

#include "arch/osqp_program.hpp"
#include "core/customization.hpp"
#include "osqp/scaling.hpp"
#include "problems/suite.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

TEST(Isa, EveryOpcodeHasDistinctMnemonic)
{
    const Opcode all[] = {
        Opcode::Halt,       Opcode::Jump,       Opcode::JumpIfLess,
        Opcode::JumpIfGeq,  Opcode::LoadConst,  Opcode::ScalarAdd,
        Opcode::ScalarSub,  Opcode::ScalarMul,  Opcode::ScalarDiv,
        Opcode::ScalarMax,  Opcode::ScalarSqrt, Opcode::ScalarAbs,
        Opcode::LoadVec,    Opcode::StoreVec,   Opcode::VecAxpby,
        Opcode::VecEwProd,  Opcode::VecEwRecip, Opcode::VecEwMin,
        Opcode::VecEwMax,   Opcode::VecCopy,    Opcode::VecSetConst,
        Opcode::VecDot,     Opcode::VecAmax,    Opcode::VecDup,
        Opcode::SpMV,
    };
    std::set<std::string> names;
    for (Opcode op : all) {
        const std::string name = mnemonic(op);
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "???");
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate mnemonic " << name;
        // Classification is total.
        const InstrClass cls = classOf(op);
        EXPECT_GE(static_cast<int>(cls), 0);
        EXPECT_LT(static_cast<int>(cls), 6);
    }
    EXPECT_EQ(names.size(), std::size(all));
}

struct LoweredProgram
{
    Machine machine;
    OsqpDeviceProgram handles;

    explicit LoweredProgram(const QpProblem& qp)
        : machine(makeConfig(qp))
    {
        QpProblem scaled = qp;
        const Scaling scaling = ruizEquilibrate(scaled, 10);
        CustomizeSettings cfg;
        cfg.c = 16;
        custom = customizeProblem(scaled, cfg);
        // NOTE: machine was constructed with the same deterministic
        // config (makeConfig reruns the pipeline).
        OsqpMatrixIds mats;
        mats.p = machine.addMatrix(custom.p.packed, custom.p.plan, "P");
        mats.a = machine.addMatrix(custom.a.packed, custom.a.plan, "A");
        mats.at =
            machine.addMatrix(custom.at.packed, custom.at.plan, "At");
        mats.atSq = machine.addMatrix(custom.atSq.packed,
                                      custom.atSq.plan, "AtSq");
        OsqpSettings settings;
        settings.backend = KktBackend::IndirectPcg;
        handles = buildOsqpProgram(machine, mats, scaled, scaling,
                                   settings);
    }

    static ArchConfig
    makeConfig(const QpProblem& qp)
    {
        QpProblem scaled = qp;
        ruizEquilibrate(scaled, 10);
        CustomizeSettings cfg;
        cfg.c = 16;
        return customizeProblem(scaled, cfg).config;
    }

    ProblemCustomization custom;
};

TEST(Isa, LoweredOsqpProgramLandmarks)
{
    const QpProblem qp = generateProblem(Domain::Portfolio, 30, 3);
    LoweredProgram lowered(qp);
    const std::string text = lowered.handles.program.disassemble();

    // Algorithm 2 (PCG) landmarks.
    EXPECT_NE(text.find("r0 = K x~ - b"), std::string::npos);
    EXPECT_NE(text.find("PCG converged"), std::string::npos);
    EXPECT_NE(text.find("p = -d + mu p"), std::string::npos);
    // Algorithm 1 landmarks.
    EXPECT_NE(text.find("z~ = A x~"), std::string::npos);
    EXPECT_NE(text.find("y update"), std::string::npos);
    // Termination (Table 1 control) and adaptive rho.
    EXPECT_NE(text.find("eps_dual"), std::string::npos);
    EXPECT_NE(text.find("status = solved"), std::string::npos);
    EXPECT_NE(text.find("rho = rho_new"), std::string::npos);
    // Epilogue.
    EXPECT_NE(text.find("store x"), std::string::npos);
    EXPECT_NE(text.find("end of OSQP program"), std::string::npos);
}

TEST(Isa, LoweredProgramSizeBounded)
{
    // The whole solver fits a small instruction ROM (the paper uses a
    // simple instruction unit): well under 256 instructions.
    const QpProblem qp = generateProblem(Domain::Svm, 20, 5);
    LoweredProgram lowered(qp);
    EXPECT_GT(lowered.handles.program.size(), 80u);
    EXPECT_LT(lowered.handles.program.size(), 256u);
}

TEST(Isa, ProgramSizeIndependentOfProblemSize)
{
    // The ROM holds the *algorithm*; problem size only changes data.
    const QpProblem small = generateProblem(Domain::Lasso, 10, 1);
    const QpProblem large = generateProblem(Domain::Lasso, 80, 1);
    LoweredProgram p_small(small);
    LoweredProgram p_large(large);
    EXPECT_EQ(p_small.handles.program.size(),
              p_large.handles.program.size());
}

} // namespace
} // namespace rsqp
