/**
 * @file
 * Parametric matrix-update tests on the accelerator: new values with
 * the same sparsity reuse the schedule, the CVB plans, and the
 * program; results match fresh solvers; structural changes are
 * rejected.
 */

#include <gtest/gtest.h>

#include "arch/machine.hpp"
#include "arch/program_builder.hpp"
#include "core/rsqp_solver.hpp"
#include "osqp/solver.hpp"
#include "problems/generators.hpp"
#include "problems/suite.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

TEST(MatrixUpdate, MachineSpmvReflectsNewValues)
{
    Rng rng(1);
    const CscMatrix csc = test::randomSparse(20, 15, 0.3, rng);
    const CsrMatrix csr = CsrMatrix::fromCsc(csc);
    const StructureSet set = StructureSet::baseline(8);
    const SparsityString str = encodeMatrix(csr, 8);
    const Schedule schedule = scheduleString(str, set);
    const PackedMatrix packed = packMatrix(csr, str, schedule, set);

    ArchConfig config;
    config.c = 8;
    config.structures = set;
    Machine machine(config);
    const Index mat = machine.addMatrix(
        packed, fullDuplicationPlan(8, 15), "M");
    const Index v_in = machine.addVector(15);
    const Index v_out = machine.addVector(20);
    const Index hbm_in =
        machine.addHbmVector(test::randomVector(15, rng));

    ProgramBuilder asmb;
    asmb.loadVec(v_in, hbm_in);
    asmb.vecDup(mat, v_in);
    asmb.spmv(v_out, mat);
    asmb.halt();
    const Program program = asmb.finish();
    machine.run(program);
    const Vector y_before = machine.vectorValue(v_out);

    // Scale all values by 3 and update in place.
    CsrMatrix scaled_csr = csr;
    for (Real& v : scaled_csr.values())
        v *= 3.0;
    const PackedMatrix repacked =
        packMatrix(scaled_csr, str, schedule, set);
    machine.updateMatrixValues(mat, repacked);
    machine.run(program);
    const Vector y_after = machine.vectorValue(v_out);
    for (std::size_t i = 0; i < y_before.size(); ++i)
        EXPECT_NEAR(y_after[i], 3.0 * y_before[i],
                    1e-10 * (1.0 + std::abs(y_before[i])));
}

TEST(MatrixUpdate, MachineRejectsStructureMismatch)
{
    Rng rng(2);
    const CsrMatrix csr =
        CsrMatrix::fromCsc(test::randomSparse(10, 10, 0.3, rng));
    const CsrMatrix other =
        CsrMatrix::fromCsc(test::randomSparse(12, 10, 0.3, rng));
    const StructureSet set = StructureSet::baseline(4);
    const SparsityString str = encodeMatrix(csr, 4);
    const Schedule schedule = scheduleString(str, set);
    const PackedMatrix packed = packMatrix(csr, str, schedule, set);
    const SparsityString other_str = encodeMatrix(other, 4);
    const Schedule other_schedule = scheduleString(other_str, set);
    const PackedMatrix other_packed =
        packMatrix(other, other_str, other_schedule, set);

    ArchConfig config;
    config.c = 4;
    config.structures = set;
    Machine machine(config);
    const Index mat =
        machine.addMatrix(packed, fullDuplicationPlan(4, 10), "M");
    EXPECT_DEATH(machine.updateMatrixValues(mat, other_packed),
                 "structure mismatch");
}

TEST(MatrixUpdate, RsqpSolverMatchesFreshSolver)
{
    const QpProblem qp = generateProblem(Domain::Eqqp, 30, 7);
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    CustomizeSettings custom;
    custom.c = 16;
    RsqpSolver solver(qp, settings, custom);
    const RsqpResult first = solver.solve();
    ASSERT_EQ(first.status, SolveStatus::Solved);

    // New A values (same pattern).
    std::vector<Real> a_values = qp.a.values();
    for (Real& v : a_values)
        v *= 0.7;
    solver.updateMatrixValues({}, a_values);
    const RsqpResult updated = solver.solve();
    ASSERT_EQ(updated.status, SolveStatus::Solved);

    QpProblem qp2 = qp;
    qp2.a.values() = a_values;
    OsqpSolver reference(qp2, settings);
    const OsqpResult ref = reference.solve();
    ASSERT_EQ(ref.info.status, SolveStatus::Solved);
    EXPECT_NEAR(updated.objective, ref.info.objective,
                2e-2 * (1.0 + std::abs(ref.info.objective)));
}

TEST(MatrixUpdate, RsqpSolverPUpdateRebuildsPreconditionerData)
{
    const QpProblem qp = generateProblem(Domain::Portfolio, 30, 9);
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    CustomizeSettings custom;
    custom.c = 16;
    RsqpSolver solver(qp, settings, custom);
    solver.solve();

    std::vector<Real> p_values = qp.pUpper.values();
    for (Real& v : p_values)
        v *= 2.0;
    solver.updateMatrixValues(p_values, {});
    const RsqpResult updated = solver.solve();
    ASSERT_EQ(updated.status, SolveStatus::Solved);

    QpProblem qp2 = qp;
    qp2.pUpper.values() = p_values;
    OsqpSolver reference(qp2, settings);
    const OsqpResult ref = reference.solve();
    EXPECT_NEAR(updated.objective, ref.info.objective,
                2e-2 * (1.0 + std::abs(ref.info.objective)));
}

TEST(MatrixUpdate, EmptyUpdateIsNoOp)
{
    const QpProblem qp = generateProblem(Domain::Svm, 15, 11);
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    CustomizeSettings custom;
    custom.c = 16;
    RsqpSolver solver(qp, settings, custom);
    const RsqpResult first = solver.solve();
    solver.updateMatrixValues({}, {});
    const RsqpResult second = solver.solve();
    EXPECT_EQ(first.iterations, second.iterations);
    EXPECT_LT(test::maxAbsDiff(first.x, second.x), 1e-12);
}

} // namespace
} // namespace rsqp
