/**
 * @file
 * Machine tests: functional semantics of every instruction, cycle
 * accounting against the paper's cost model, and control flow.
 */

#include <gtest/gtest.h>

#include "arch/machine.hpp"
#include "arch/program_builder.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

ArchConfig
smallConfig(Index c = 4)
{
    ArchConfig config;
    config.c = c;
    config.structures = StructureSet::baseline(c);
    return config;
}

TEST(Machine, ScalarArithmetic)
{
    Machine machine(smallConfig());
    ProgramBuilder asmb;
    asmb.loadConst(0, 6.0);
    asmb.loadConst(1, 4.0);
    asmb.scalarAdd(2, 0, 1);
    asmb.scalarSub(3, 0, 1);
    asmb.scalarMul(4, 0, 1);
    asmb.scalarDiv(5, 0, 1);
    asmb.scalarMax(6, 0, 1);
    asmb.scalarSqrt(7, 1);
    asmb.halt();
    machine.run(asmb.finish());
    EXPECT_DOUBLE_EQ(machine.scalarValue(2), 10.0);
    EXPECT_DOUBLE_EQ(machine.scalarValue(3), 2.0);
    EXPECT_DOUBLE_EQ(machine.scalarValue(4), 24.0);
    EXPECT_DOUBLE_EQ(machine.scalarValue(5), 1.5);
    EXPECT_DOUBLE_EQ(machine.scalarValue(6), 6.0);
    EXPECT_DOUBLE_EQ(machine.scalarValue(7), 2.0);
}

TEST(Machine, VectorOps)
{
    Machine machine(smallConfig());
    const Index v0 = machine.addVector(3);
    const Index v1 = machine.addVector(3);
    const Index v2 = machine.addVector(3);
    const Index hbm0 = machine.addHbmVector({1.0, 2.0, 3.0});
    const Index hbm1 = machine.addHbmVector({4.0, 1.0, -2.0});

    ProgramBuilder asmb;
    asmb.loadConst(0, 2.0);   // alpha
    asmb.loadConst(1, -1.0);  // beta
    asmb.loadVec(v0, hbm0);
    asmb.loadVec(v1, hbm1);
    asmb.vecAxpby(v2, 0, v0, 1, v1);  // 2x - y
    asmb.halt();
    machine.run(asmb.finish());
    const Vector& out = machine.vectorValue(v2);
    EXPECT_DOUBLE_EQ(out[0], -2.0);
    EXPECT_DOUBLE_EQ(out[1], 3.0);
    EXPECT_DOUBLE_EQ(out[2], 8.0);
}

TEST(Machine, ElementwiseAndReductions)
{
    Machine machine(smallConfig());
    const Index v0 = machine.addVector(3);
    const Index v1 = machine.addVector(3);
    const Index v2 = machine.addVector(3);
    const Index hbm0 = machine.addHbmVector({2.0, -4.0, 0.5});
    const Index hbm1 = machine.addHbmVector({1.0, 2.0, 2.0});

    ProgramBuilder asmb;
    asmb.loadVec(v0, hbm0);
    asmb.loadVec(v1, hbm1);
    asmb.vecEwProd(v2, v0, v1);
    asmb.vecDot(10, v0, v1);
    asmb.vecAmax(11, v0);
    asmb.vecEwMin(v2, v0, v1);
    asmb.vecEwMax(v0, v0, v1);
    asmb.halt();
    machine.run(asmb.finish());
    EXPECT_DOUBLE_EQ(machine.scalarValue(10), 2.0 - 8.0 + 1.0);
    EXPECT_DOUBLE_EQ(machine.scalarValue(11), 4.0);
    EXPECT_DOUBLE_EQ(machine.vectorValue(v2)[1], -4.0);  // min
    EXPECT_DOUBLE_EQ(machine.vectorValue(v0)[1], 2.0);   // max
}

TEST(Machine, RecipCopySetConstStore)
{
    Machine machine(smallConfig());
    const Index v0 = machine.addVector(2);
    const Index v1 = machine.addVector(2);
    const Index hbm0 = machine.addHbmVector({4.0, 0.25});
    const Index hbm_out = machine.addHbmVector({0.0, 0.0});

    ProgramBuilder asmb;
    asmb.loadVec(v0, hbm0);
    asmb.vecEwRecip(v1, v0);
    asmb.storeVec(hbm_out, v1);
    asmb.vecSetConst(v0, 7.5);
    asmb.vecCopy(v1, v0);
    asmb.halt();
    machine.run(asmb.finish());
    EXPECT_DOUBLE_EQ(machine.hbmValue(hbm_out)[0], 0.25);
    EXPECT_DOUBLE_EQ(machine.hbmValue(hbm_out)[1], 4.0);
    EXPECT_DOUBLE_EQ(machine.vectorValue(v1)[0], 7.5);
}

TEST(Machine, ControlFlowLoop)
{
    // Count 0..9 with a conditional back-edge.
    Machine machine(smallConfig());
    ProgramBuilder asmb;
    const Index top = asmb.newLabel();
    asmb.loadConst(0, 0.0);   // i
    asmb.loadConst(1, 1.0);   // step
    asmb.loadConst(2, 10.0);  // bound
    asmb.bind(top);
    asmb.scalarAdd(0, 0, 1);
    asmb.jumpIfLess(0, 2, top);
    asmb.halt();
    machine.run(asmb.finish());
    EXPECT_DOUBLE_EQ(machine.scalarValue(0), 10.0);
}

TEST(Machine, JumpIfGeq)
{
    Machine machine(smallConfig());
    ProgramBuilder asmb;
    const Index skip = asmb.newLabel();
    asmb.loadConst(0, 5.0);
    asmb.loadConst(1, 5.0);
    asmb.loadConst(2, 0.0);
    asmb.jumpIfGeq(0, 1, skip);  // 5 >= 5: taken
    asmb.loadConst(2, 99.0);     // skipped
    asmb.bind(skip);
    asmb.halt();
    machine.run(asmb.finish());
    EXPECT_DOUBLE_EQ(machine.scalarValue(2), 0.0);
}

TEST(Machine, RunawayGuardPanics)
{
    Machine machine(smallConfig());
    ProgramBuilder asmb;
    const Index top = asmb.newLabel();
    asmb.bind(top);
    asmb.jump(top);  // infinite loop
    const Program program = asmb.finish();
    EXPECT_DEATH(machine.run(program, 1000), "budget");
}

TEST(Machine, VectorOpCycleModel)
{
    // ceil(L/C) + vectorLatency + decodeOverhead per vector op.
    ArchConfig config = smallConfig(4);
    Machine machine(config);
    const Index v0 = machine.addVector(10);
    const Index v1 = machine.addVector(10);
    ProgramBuilder asmb;
    asmb.vecEwProd(v1, v0, v0);
    asmb.halt();
    machine.run(asmb.finish());
    const Count expected_vec = 3 /* ceil(10/4) */ +
        config.timings.vectorLatency + config.timings.decodeOverhead;
    EXPECT_EQ(machine.stats().cyclesOf(InstrClass::VectorOp),
              expected_vec);
    EXPECT_EQ(machine.stats().instructions, 2);
}

TEST(Machine, StatsPerClassAccumulate)
{
    Machine machine(smallConfig());
    const Index v0 = machine.addVector(8);
    const Index hbm0 = machine.addHbmVector(Vector(8, 1.0));
    ProgramBuilder asmb;
    asmb.loadConst(0, 1.0);
    asmb.loadVec(v0, hbm0);
    asmb.vecDot(1, v0, v0);
    asmb.halt();
    machine.run(asmb.finish());
    const MachineStats& stats = machine.stats();
    EXPECT_EQ(stats.classCounts[static_cast<std::size_t>(
        InstrClass::Scalar)], 1);
    EXPECT_EQ(stats.classCounts[static_cast<std::size_t>(
        InstrClass::DataTransfer)], 1);
    EXPECT_EQ(stats.classCounts[static_cast<std::size_t>(
        InstrClass::VectorOp)], 1);
    EXPECT_EQ(stats.classCounts[static_cast<std::size_t>(
        InstrClass::Control)], 1);
    Count sum = 0;
    for (Count cycles : stats.classCycles)
        sum += cycles;
    EXPECT_EQ(sum, stats.totalCycles);
    machine.resetStats();
    EXPECT_EQ(machine.stats().totalCycles, 0);
}

TEST(Machine, MismatchedVectorLengthsPanic)
{
    Machine machine(smallConfig());
    const Index v0 = machine.addVector(3);
    const Index v1 = machine.addVector(4);
    ProgramBuilder asmb;
    asmb.vecEwProd(v0, v0, v1);
    asmb.halt();
    const Program program = asmb.finish();
    EXPECT_DEATH(machine.run(program), "length mismatch");
}


TEST(Machine, InstructionRomDownloadCharged)
{
    // run() charges a one-time hbmLatency + |program| data transfer
    // for the instruction ROM download (paper Sec. 3.5).
    ArchConfig config = smallConfig(4);
    Machine machine(config);
    ProgramBuilder asmb;
    asmb.loadConst(0, 1.0);
    asmb.halt();
    const Program program = asmb.finish();
    machine.run(program);
    const Count rom = config.timings.hbmLatency +
        static_cast<Count>(program.size());
    const MachineStats& stats = machine.stats();
    EXPECT_EQ(stats.classCycles[static_cast<std::size_t>(
        InstrClass::DataTransfer)], rom);
    // Still no data-transfer *instructions* executed.
    EXPECT_EQ(stats.classCounts[static_cast<std::size_t>(
        InstrClass::DataTransfer)], 0);
    Count sum = 0;
    for (Count cycles : stats.classCycles)
        sum += cycles;
    EXPECT_EQ(sum, stats.totalCycles);
}

} // namespace
} // namespace rsqp
