/**
 * @file
 * Device-program tests: the lowered OSQP program must reproduce the
 * reference host solver (IndirectPcg backend) — same status, matching
 * solutions, and near-identical iteration trajectories — across
 * domains and architecture variants.
 */

#include <gtest/gtest.h>

#include "arch/osqp_program.hpp"
#include "core/customization.hpp"
#include "core/rsqp_solver.hpp"
#include "linalg/vector_ops.hpp"
#include "osqp/solver.hpp"
#include "problems/suite.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

OsqpSettings
settingsFor()
{
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    settings.epsAbs = 1e-4;
    settings.epsRel = 1e-4;
    return settings;
}

TEST(OsqpProgram, MatchesReferenceSolverTrajectory)
{
    // With a tight, fixed PCG tolerance the subproblem solutions are
    // effectively exact on both sides, so the device ADMM trajectory
    // tracks the host reference step for step; the only differences
    // are FP summation orders (MAC-tree packs vs CSC columns).
    const QpProblem qp = generateProblem(Domain::Portfolio, 40, 42);
    OsqpSettings settings = settingsFor();
    settings.pcg.adaptiveTolerance = false;
    settings.pcg.epsRel = 1e-12;

    OsqpSolver reference(qp, settings);
    const OsqpResult ref = reference.solve();

    CustomizeSettings custom;
    custom.c = 16;
    RsqpSolver device(qp, settings, custom);
    const RsqpResult acc = device.solve();

    ASSERT_EQ(ref.info.status, SolveStatus::Solved);
    ASSERT_EQ(acc.status, SolveStatus::Solved);
    EXPECT_EQ(acc.iterations, ref.info.iterations);
    EXPECT_LT(test::maxAbsDiff(acc.x, ref.x), 1e-6);
    EXPECT_LT(test::maxAbsDiff(acc.y, ref.y), 1e-6);
    // PCG totals track within a small FP-rounding margin.
    const Real pcg_gap = std::abs(
        static_cast<Real>(acc.pcgIterationsTotal) -
        static_cast<Real>(ref.info.pcgIterationsTotal));
    EXPECT_LE(pcg_gap,
              0.05 * static_cast<Real>(ref.info.pcgIterationsTotal) + 5);
}

TEST(OsqpProgram, ResidualsMatchReference)
{
    const QpProblem qp = generateProblem(Domain::Lasso, 25, 9);
    const OsqpSettings settings = settingsFor();
    OsqpSolver reference(qp, settings);
    const OsqpResult ref = reference.solve();

    CustomizeSettings custom;
    custom.c = 32;
    RsqpSolver device(qp, settings, custom);
    const RsqpResult acc = device.solve();
    ASSERT_EQ(acc.status, SolveStatus::Solved);
    EXPECT_NEAR(acc.primRes, ref.info.primRes,
                1e-6 + 0.05 * ref.info.primRes);
    EXPECT_NEAR(acc.dualRes, ref.info.dualRes,
                1e-6 + 0.05 * ref.info.dualRes);
}

TEST(OsqpProgram, BaselineAndCustomizedAgreeNumerically)
{
    const QpProblem qp = generateProblem(Domain::Svm, 20, 4);
    const OsqpSettings settings = settingsFor();

    CustomizeSettings baseline;
    baseline.c = 16;
    baseline.customizeStructures = false;
    baseline.compressCvb = false;
    RsqpSolver base(qp, settings, baseline);
    const RsqpResult rb = base.solve();

    CustomizeSettings customized;
    customized.c = 16;
    RsqpSolver custom(qp, settings, customized);
    const RsqpResult rc = custom.solve();

    ASSERT_EQ(rb.status, SolveStatus::Solved);
    ASSERT_EQ(rc.status, SolveStatus::Solved);
    // Same algorithm; the architecture only changes the timing.
    EXPECT_EQ(rb.iterations, rc.iterations);
    EXPECT_LT(test::maxAbsDiff(rb.x, rc.x), 1e-9);
    // ...and the customized one is faster in cycles.
    EXPECT_LT(rc.machineStats.totalCycles, rb.machineStats.totalCycles);
}

TEST(OsqpProgram, MaxIterStatusReported)
{
    const QpProblem qp = generateProblem(Domain::Huber, 15, 2);
    OsqpSettings settings = settingsFor();
    settings.maxIter = 25;
    settings.epsAbs = 1e-12;
    settings.epsRel = 1e-12;
    CustomizeSettings custom;
    custom.c = 16;
    RsqpSolver device(qp, settings, custom);
    const RsqpResult result = device.solve();
    EXPECT_EQ(result.status, SolveStatus::MaxIterReached);
    EXPECT_EQ(result.iterations, 25);
}

TEST(OsqpProgram, RhoUpdatesHappenOnDevice)
{
    // Pick a problem whose residual ratio forces rho adaptation.
    const QpProblem qp = generateProblem(Domain::Control, 8, 3);
    OsqpSettings settings = settingsFor();
    settings.adaptiveRhoInterval = 50;
    OsqpSolver reference(qp, settings);
    const OsqpResult ref = reference.solve();

    CustomizeSettings custom;
    custom.c = 16;
    RsqpSolver device(qp, settings, custom);
    const RsqpResult acc = device.solve();
    EXPECT_EQ(acc.rhoUpdates, ref.info.rhoUpdates);
    EXPECT_EQ(acc.iterations, ref.info.iterations);
}

TEST(OsqpProgram, InstructionMixCoversTable1Classes)
{
    const QpProblem qp = generateProblem(Domain::Portfolio, 30, 8);
    CustomizeSettings custom;
    custom.c = 16;
    RsqpSolver device(qp, settingsFor(), custom);
    const RsqpResult result = device.solve();
    const MachineStats& stats = result.machineStats;
    for (InstrClass cls :
         {InstrClass::Control, InstrClass::Scalar,
          InstrClass::DataTransfer, InstrClass::VectorOp,
          InstrClass::VectorDup, InstrClass::SpMV}) {
        EXPECT_GT(stats.classCounts[static_cast<std::size_t>(cls)], 0)
            << "class " << static_cast<int>(cls);
    }
    EXPECT_GT(stats.spmvPacks, 0);
}

/** Sweep: device == reference across every benchmark domain. */
class DeviceEquivalence : public ::testing::TestWithParam<Domain>
{};

TEST_P(DeviceEquivalence, SolutionMatchesReference)
{
    const Domain domain = GetParam();
    const Index size = domain == Domain::Control ? 6 : 25;
    const QpProblem qp = generateProblem(domain, size, 77);
    const OsqpSettings settings = settingsFor();

    OsqpSolver reference(qp, settings);
    const OsqpResult ref = reference.solve();
    ASSERT_EQ(ref.info.status, SolveStatus::Solved)
        << toString(domain);

    CustomizeSettings custom;
    custom.c = 32;
    RsqpSolver device(qp, settings, custom);
    const RsqpResult acc = device.solve();
    ASSERT_EQ(acc.status, SolveStatus::Solved) << toString(domain);
    const Real scale = 1.0 + normInf(ref.x);
    EXPECT_LT(test::maxAbsDiff(acc.x, ref.x), 1e-3 * scale)
        << toString(domain);
}

INSTANTIATE_TEST_SUITE_P(AllDomains, DeviceEquivalence,
                         ::testing::Values(Domain::Control, Domain::Lasso,
                                           Domain::Huber,
                                           Domain::Portfolio, Domain::Svm,
                                           Domain::Eqqp));


TEST(OsqpProgram, ProfileIdentifiesPcgHotLoop)
{
    const QpProblem qp = generateProblem(Domain::Portfolio, 40, 15);
    const OsqpSettings settings = settingsFor();

    // Rebuild the device setup by hand so we can enable profiling.
    QpProblem scaled = qp;
    const Scaling scaling = ruizEquilibrate(scaled, 10);
    CustomizeSettings cfg;
    cfg.c = 16;
    const ProblemCustomization custom = customizeProblem(scaled, cfg);
    Machine machine(custom.config);
    OsqpMatrixIds mats;
    mats.p = machine.addMatrix(custom.p.packed, custom.p.plan, "P");
    mats.a = machine.addMatrix(custom.a.packed, custom.a.plan, "A");
    mats.at = machine.addMatrix(custom.at.packed, custom.at.plan, "At");
    mats.atSq = machine.addMatrix(custom.atSq.packed,
                                  custom.atSq.plan, "AtSq");
    OsqpSettings dev_settings = settings;
    const OsqpDeviceProgram prog =
        buildOsqpProgram(machine, mats, scaled, scaling, dev_settings);

    machine.enableProfiling(true);
    machine.run(prog.program);

    // Profile totals match the machine stats.
    Count profile_total = 0;
    for (Count cycles : machine.pcCycles())
        profile_total += cycles;
    const Count rom = custom.config.timings.hbmLatency +
        static_cast<Count>(prog.program.size());
    EXPECT_EQ(profile_total + rom, machine.stats().totalCycles);

    // The hottest instructions live in the PCG inner loop (the K
    // application: SpMV/dup of P/A/At).
    const std::string report = machine.profileReport(prog.program, 6);
    EXPECT_TRUE(report.find("spmv") != std::string::npos ||
                report.find("vdup") != std::string::npos)
        << report;
}

} // namespace
} // namespace rsqp
