/**
 * @file
 * Tests of the CPU-feature probe and ISA-level plumbing backing the
 * SIMD kernel dispatch.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "arch/cpu_features.hpp"

namespace rsqp
{
namespace
{

TEST(CpuFeatures, LevelNamesRoundTrip)
{
    for (IsaLevel level :
         {IsaLevel::Scalar, IsaLevel::Avx2, IsaLevel::Avx512}) {
        IsaLevel parsed = IsaLevel::Scalar;
        ASSERT_TRUE(parseIsaLevel(isaLevelName(level), parsed))
            << isaLevelName(level);
        EXPECT_EQ(parsed, level);
    }
}

TEST(CpuFeatures, ParseIsCaseInsensitive)
{
    IsaLevel parsed = IsaLevel::Scalar;
    EXPECT_TRUE(parseIsaLevel("AVX2", parsed));
    EXPECT_EQ(parsed, IsaLevel::Avx2);
    EXPECT_TRUE(parseIsaLevel("Avx512", parsed));
    EXPECT_EQ(parsed, IsaLevel::Avx512);
    EXPECT_TRUE(parseIsaLevel("SCALAR", parsed));
    EXPECT_EQ(parsed, IsaLevel::Scalar);
}

TEST(CpuFeatures, ParseRejectsGarbage)
{
    IsaLevel parsed = IsaLevel::Avx2;
    EXPECT_FALSE(parseIsaLevel("", parsed));
    EXPECT_FALSE(parseIsaLevel("avx", parsed));
    EXPECT_FALSE(parseIsaLevel("avx1024", parsed));
    EXPECT_FALSE(parseIsaLevel("sse4.2", parsed));
    // A failed parse must not clobber the output.
    EXPECT_EQ(parsed, IsaLevel::Avx2);
}

TEST(CpuFeatures, DetectedAndCompiledLevelsAreSane)
{
    const IsaLevel detected = detectedIsaLevel();
    const IsaLevel compiled = compiledIsaLevel();
    EXPECT_GE(static_cast<int>(detected), 0);
    EXPECT_LE(static_cast<int>(detected), 2);
    EXPECT_GE(static_cast<int>(compiled), 0);
    EXPECT_LE(static_cast<int>(compiled), 2);
}

TEST(CpuFeatures, SupportedLevelsAscendFromScalarToIntersection)
{
    const std::vector<IsaLevel> levels = supportedIsaLevels();
    ASSERT_FALSE(levels.empty());
    EXPECT_EQ(levels.front(), IsaLevel::Scalar);
    const int ceiling =
        std::min(static_cast<int>(detectedIsaLevel()),
                 static_cast<int>(compiledIsaLevel()));
    EXPECT_EQ(static_cast<int>(levels.back()), ceiling);
    for (std::size_t i = 1; i < levels.size(); ++i)
        EXPECT_EQ(static_cast<int>(levels[i]),
                  static_cast<int>(levels[i - 1]) + 1);
}

} // namespace
} // namespace rsqp
