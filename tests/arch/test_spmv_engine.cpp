/**
 * @file
 * SpMV engine tests on the simulated machine: functional equivalence
 * with CSR SpMV across structure sets, CVB plans (compressed vs full
 * duplication), FP32 datapath mode, and the cycle model (packs +
 * latency; duplication = max(depth, L/C)).
 */

#include <gtest/gtest.h>

#include "arch/machine.hpp"
#include "arch/program_builder.hpp"
#include "core/customization.hpp"
#include "linalg/vector_ops.hpp"
#include "problems/generators.hpp"
#include "problems/suite.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

using test::randomSparse;
using test::randomVector;

struct SpmvSetup
{
    ArchConfig config;
    PackedMatrix packed;
    CvbPlan plan;
};

SpmvSetup
prepare(const CsrMatrix& csr, Index c,
        const std::vector<std::string>& patterns, bool compress)
{
    SpmvSetup setup;
    setup.config.c = c;
    setup.config.structures = StructureSet(c, patterns);
    setup.config.compressedCvb = compress;
    const SparsityString str = encodeMatrix(csr, c);
    const Schedule schedule =
        scheduleString(str, setup.config.structures);
    setup.packed =
        packMatrix(csr, str, schedule, setup.config.structures);
    if (compress)
        setup.plan =
            compressFirstFit(buildAccessRequirements(setup.packed));
    else
        setup.plan = fullDuplicationPlan(c, csr.cols());
    return setup;
}

/** Run one SpMV on the machine and return the result vector. */
Vector
runSpmv(const SpmvSetup& setup, const Vector& x, MachineStats* stats)
{
    Machine machine(setup.config);
    const Index mat =
        machine.addMatrix(setup.packed, setup.plan, "M");
    const Index v_in =
        machine.addVector(static_cast<Index>(x.size()));
    const Index v_out = machine.addVector(setup.packed.rows);
    const Index hbm_in = machine.addHbmVector(x);

    ProgramBuilder asmb;
    asmb.loadVec(v_in, hbm_in);
    asmb.vecDup(mat, v_in);
    asmb.spmv(v_out, mat);
    asmb.halt();
    machine.run(asmb.finish());
    if (stats != nullptr)
        *stats = machine.stats();
    return machine.vectorValue(v_out);
}

TEST(SpmvEngine, BaselineMatchesCsr)
{
    Rng rng(1);
    const CsrMatrix csr =
        CsrMatrix::fromCsc(randomSparse(25, 18, 0.25, rng));
    const Vector x = randomVector(18, rng);
    const SpmvSetup setup = prepare(csr, 8, {}, false);
    const Vector y = runSpmv(setup, x, nullptr);
    Vector y_ref;
    csr.spmv(x, y_ref);
    EXPECT_LT(test::maxAbsDiff(y, y_ref), 1e-12);
}

TEST(SpmvEngine, CompressedCvbGivesSameResult)
{
    Rng rng(2);
    const CsrMatrix csr =
        CsrMatrix::fromCsc(randomSparse(30, 30, 0.15, rng));
    const Vector x = randomVector(30, rng);
    const Vector y_full =
        runSpmv(prepare(csr, 16, {"bbbbbbbb"}, false), x, nullptr);
    const Vector y_compressed =
        runSpmv(prepare(csr, 16, {"bbbbbbbb"}, true), x, nullptr);
    EXPECT_LT(test::maxAbsDiff(y_full, y_compressed), 1e-13);
}

TEST(SpmvEngine, CycleCountIsPacksPlusLatency)
{
    Rng rng(3);
    const CsrMatrix csr =
        CsrMatrix::fromCsc(randomSparse(40, 20, 0.2, rng));
    const Vector x = randomVector(20, rng);
    const SpmvSetup setup = prepare(csr, 8, {}, false);
    MachineStats stats;
    runSpmv(setup, x, &stats);
    const Count expected = setup.packed.packCount() +
        setup.config.timings.spmvLatency +
        setup.config.timings.decodeOverhead;
    EXPECT_EQ(stats.cyclesOf(InstrClass::SpMV), expected);
    EXPECT_EQ(stats.spmvPacks, setup.packed.packCount());
}

TEST(SpmvEngine, DuplicationCyclesFollowPlan)
{
    Rng rng(4);
    const CsrMatrix csr =
        CsrMatrix::fromCsc(randomSparse(30, 64, 0.1, rng));
    const Vector x = randomVector(64, rng);

    // Full duplication: update takes L cycles (E_c = C).
    MachineStats full_stats;
    const SpmvSetup full = prepare(csr, 8, {}, false);
    runSpmv(full, x, &full_stats);
    EXPECT_EQ(full_stats.cyclesOf(InstrClass::VectorDup),
              64 + full.config.timings.dupLatency +
                  full.config.timings.decodeOverhead);

    // Compressed: update takes max(depth, L/C) cycles.
    MachineStats comp_stats;
    const SpmvSetup comp = prepare(csr, 8, {}, true);
    runSpmv(comp, x, &comp_stats);
    EXPECT_EQ(comp_stats.cyclesOf(InstrClass::VectorDup),
              comp.plan.updateCycles() +
                  comp.config.timings.dupLatency +
                  comp.config.timings.decodeOverhead);
    EXPECT_LE(comp.plan.updateCycles(), 64);
}

TEST(SpmvEngine, CustomizationReducesSpmvCycles)
{
    // Many tiny rows: the baseline wastes a cycle per row; a dedicated
    // "aaaa..." structure packs C of them per cycle.
    TripletList triplets(256, 64);
    Rng rng(5);
    for (Index r = 0; r < 256; ++r)
        triplets.add(r, rng.uniformIndex(64), rng.normal());
    const CsrMatrix csr =
        CsrMatrix::fromCsc(CscMatrix::fromTriplets(triplets));
    const Vector x = randomVector(64, rng);

    MachineStats base_stats, custom_stats;
    const Vector y_base =
        runSpmv(prepare(csr, 16, {}, false), x, &base_stats);
    const Vector y_custom = runSpmv(
        prepare(csr, 16, {"aaaaaaaaaaaaaaaa"}, true), x, &custom_stats);
    EXPECT_LT(test::maxAbsDiff(y_base, y_custom), 1e-12);
    // 256 packs baseline vs ~16 customized.
    EXPECT_LT(custom_stats.spmvPacks * 8, base_stats.spmvPacks);
}

TEST(SpmvEngine, Fp32DatapathApproximatesFp64)
{
    Rng rng(6);
    const CsrMatrix csr =
        CsrMatrix::fromCsc(randomSparse(20, 20, 0.3, rng));
    const Vector x = randomVector(20, rng);
    SpmvSetup setup = prepare(csr, 8, {}, false);
    setup.config.fp32Datapath = true;
    const Vector y32 = runSpmv(setup, x, nullptr);
    Vector y_ref;
    csr.spmv(x, y_ref);
    // FP32 accumulation: agree to single precision only.
    EXPECT_LT(test::maxAbsDiff(y32, y_ref), 1e-4);
    EXPECT_GT(test::maxAbsDiff(y32, y_ref), 0.0);  // genuinely float
}

TEST(SpmvEngine, LeadingAccumulateSegmentIsNotDropped)
{
    // A hand-built stream that *opens* with an accumulate segment (a
    // carry into nothing, executed with carry = 0 by the serial walk):
    // chain precomputation must still start chain 0 at segment 0, or
    // the chained execution silently drops the leading rows.
    const Index c = 4;
    PackedMatrix packed;
    packed.c = c;
    packed.rows = 2;
    packed.cols = 4;
    packed.nnz = 8;

    LanePack pack0;
    pack0.values = {1.0, 2.0, 3.0, 4.0};
    pack0.colIdx = {0, 1, 2, 3};
    pack0.segments.push_back(
        {/*row=*/0, /*laneBegin=*/0, /*laneEnd=*/4,
         /*accumulate=*/true, /*emit=*/true});
    LanePack pack1;
    pack1.values = {5.0, 6.0, 7.0, 8.0};
    pack1.colIdx = {0, 1, 2, 3};
    pack1.segments.push_back(
        {/*row=*/1, /*laneBegin=*/0, /*laneEnd=*/4,
         /*accumulate=*/false, /*emit=*/true});
    packed.packs = {pack0, pack1};

    ArchConfig config;
    config.c = c;
    config.structures = StructureSet::baseline(c);
    Machine machine(config);
    const Index mat = machine.addMatrix(
        packed, fullDuplicationPlan(c, packed.cols), "leading-acc");
    const Index v_in = machine.addVector(4);
    const Index v_out = machine.addVector(2);
    const Index hbm_in =
        machine.addHbmVector({1.0, 1.0, 1.0, 1.0});

    ProgramBuilder asmb;
    asmb.loadVec(v_in, hbm_in);
    asmb.vecDup(mat, v_in);
    asmb.spmv(v_out, mat);
    asmb.halt();
    machine.run(asmb.finish());

    EXPECT_DOUBLE_EQ(machine.vectorValue(v_out)[0], 10.0);
    EXPECT_DOUBLE_EQ(machine.vectorValue(v_out)[1], 26.0);
}

TEST(SpmvEngine, SpmvBeforeDupPanics)
{
    Rng rng(7);
    const CsrMatrix csr =
        CsrMatrix::fromCsc(randomSparse(5, 5, 0.5, rng));
    const SpmvSetup setup = prepare(csr, 4, {}, false);
    Machine machine(setup.config);
    const Index mat = machine.addMatrix(setup.packed, setup.plan, "M");
    const Index v_out = machine.addVector(5);
    ProgramBuilder asmb;
    asmb.spmv(v_out, mat);
    asmb.halt();
    const Program program = asmb.finish();
    EXPECT_DEATH(machine.run(program), "VecDup");
}

/** Property sweep: machine SpMV == CSR SpMV for benchmark matrices
 *  under searched structure sets and compressed CVBs. */
class SpmvEngineProperty
    : public ::testing::TestWithParam<std::tuple<Domain, Index>>
{};

TEST_P(SpmvEngineProperty, BenchmarkMatrixEquivalence)
{
    const auto [domain, c] = GetParam();
    const Index size = domain == Domain::Control ? 6 : 25;
    const QpProblem qp = generateProblem(domain, size, 31);
    const CsrMatrix csr = CsrMatrix::fromCsc(qp.a);
    const SparsityString str = encodeMatrix(csr, c);
    StructureSearchSettings search;
    search.targetSize = 3;
    const StructureSet set = searchStructureSet(str, search).set;

    SpmvSetup setup;
    setup.config.c = c;
    setup.config.structures = set;
    setup.config.compressedCvb = true;
    const Schedule schedule = scheduleString(str, set);
    setup.packed = packMatrix(csr, str, schedule, set);
    setup.plan =
        compressFirstFit(buildAccessRequirements(setup.packed));

    Rng rng(static_cast<std::uint64_t>(c));
    const Vector x = randomVector(csr.cols(), rng);
    const Vector y = runSpmv(setup, x, nullptr);
    Vector y_ref;
    csr.spmv(x, y_ref);
    EXPECT_LT(test::maxAbsDiff(y, y_ref),
              1e-9 * (1.0 + normInf(y_ref)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpmvEngineProperty,
    ::testing::Combine(::testing::Values(Domain::Control, Domain::Lasso,
                                         Domain::Portfolio, Domain::Svm,
                                         Domain::Eqqp),
                       ::testing::Values(16, 64)));

} // namespace
} // namespace rsqp
