/**
 * @file
 * Assembler tests: label fixups, forward references, operand encoding
 * and disassembly.
 */

#include <gtest/gtest.h>

#include "arch/program_builder.hpp"

namespace rsqp
{
namespace
{

TEST(ProgramBuilder, ForwardLabelPatched)
{
    ProgramBuilder asmb;
    const Index skip = asmb.newLabel();
    asmb.jump(skip, "over");
    asmb.loadConst(0, 1.0);
    asmb.bind(skip);
    asmb.halt();
    const Program program = asmb.finish();
    ASSERT_EQ(program.size(), 3u);
    EXPECT_EQ(program.code[0].op, Opcode::Jump);
    EXPECT_EQ(program.code[0].dst, 2);  // points at halt
}

TEST(ProgramBuilder, BackwardLabel)
{
    ProgramBuilder asmb;
    const Index top = asmb.newLabel();
    asmb.bind(top);
    asmb.scalarAdd(0, 0, 1);
    asmb.jumpIfLess(0, 2, top);
    asmb.halt();
    const Program program = asmb.finish();
    EXPECT_EQ(program.code[1].dst, 0);
}

TEST(ProgramBuilder, UnboundLabelPanics)
{
    ProgramBuilder asmb;
    const Index label = asmb.newLabel();
    asmb.jump(label);
    asmb.halt();
    EXPECT_DEATH(asmb.finish(), "never bound");
}

TEST(ProgramBuilder, DoubleBindPanics)
{
    ProgramBuilder asmb;
    const Index label = asmb.newLabel();
    asmb.bind(label);
    EXPECT_DEATH(asmb.bind(label), "twice");
}

TEST(ProgramBuilder, OperandEncoding)
{
    ProgramBuilder asmb;
    asmb.vecAxpby(3, 10, 1, 11, 2, "combo");
    asmb.vecDot(5, 7, 8);
    asmb.halt();
    const Program program = asmb.finish();
    const Instruction& axpby = program.code[0];
    EXPECT_EQ(axpby.op, Opcode::VecAxpby);
    EXPECT_EQ(axpby.dst, 3);
    EXPECT_EQ(axpby.a, 1);
    EXPECT_EQ(axpby.b, 2);
    EXPECT_EQ(axpby.sa, 10);
    EXPECT_EQ(axpby.sb, 11);
    const Instruction& dot = program.code[1];
    EXPECT_EQ(dot.dst, 5);
    EXPECT_EQ(dot.a, 7);
    EXPECT_EQ(dot.b, 8);
}

TEST(ProgramBuilder, DisassemblyContainsMnemonics)
{
    ProgramBuilder asmb;
    asmb.loadConst(1, 3.5, "pi-ish");
    asmb.spmv(2, 0, "K p");
    asmb.halt();
    const Program program = asmb.finish();
    const std::string text = program.disassemble();
    EXPECT_NE(text.find("ldc"), std::string::npos);
    EXPECT_NE(text.find("spmv"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
    EXPECT_NE(text.find("pi-ish"), std::string::npos);
    EXPECT_NE(text.find("imm=3.5"), std::string::npos);
}

TEST(InstrClass, ClassificationMatchesTable1)
{
    EXPECT_EQ(classOf(Opcode::Halt), InstrClass::Control);
    EXPECT_EQ(classOf(Opcode::JumpIfLess), InstrClass::Control);
    EXPECT_EQ(classOf(Opcode::ScalarMul), InstrClass::Scalar);
    EXPECT_EQ(classOf(Opcode::LoadVec), InstrClass::DataTransfer);
    EXPECT_EQ(classOf(Opcode::VecDot), InstrClass::VectorOp);
    EXPECT_EQ(classOf(Opcode::VecDup), InstrClass::VectorDup);
    EXPECT_EQ(classOf(Opcode::SpMV), InstrClass::SpMV);
}

} // namespace
} // namespace rsqp
