/**
 * @file
 * Compressed-vector-buffer tests: the paper's Fig. 3 example,
 * First-Fit correctness (no bank conflicts, all requests satisfied),
 * comparison against the exact branch-and-bound optimum, full
 * duplication baseline, and E_c accounting.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "cvb/cvb.hpp"
#include "problems/generators.hpp"
#include "tests/test_util.hpp"

namespace rsqp
{
namespace
{

/** Requirements from explicit (element, lanes...) pairs. */
AccessRequirements
makeRequirements(Index c, Index length,
                 const std::vector<std::pair<Index, IndexVector>>& reqs)
{
    AccessRequirements result;
    result.c = c;
    result.length = length;
    result.laneMask.assign(static_cast<std::size_t>(length), 0);
    for (const auto& [element, lanes] : reqs)
        for (Index lane : lanes)
            result.laneMask[static_cast<std::size_t>(element)] |=
                std::uint64_t(1) << lane;
    return result;
}

TEST(Cvb, PaperFig3StyleExample)
{
    // Fig. 3(a): an 8-element vector on 4 banks where each bank needs
    // only a few elements compresses from depth 8 to a shallow buffer.
    const AccessRequirements req = makeRequirements(
        4, 8,
        {{0, {0, 3}}, {1, {1, 2}}, {2, {0, 1}}, {3, {0, 2}},
         {4, {0, 1, 2}}, {5, {2}}, {6, {1, 3}}, {7, {3}}});
    const CvbPlan plan = compressFirstFit(req);
    EXPECT_TRUE(plan.isConsistentWith(req));
    EXPECT_LT(plan.depth, 8);  // actually compresses
    EXPECT_LE(plan.ec(), 4.0);
    // Exact optimum for this instance.
    const Index optimum = exactMinimumDepth(req);
    EXPECT_GE(plan.depth, optimum);
    EXPECT_LE(plan.depth, optimum + 1);
}

TEST(Cvb, DisjointLanesShareOneAddress)
{
    // Four elements each needed by a different lane: depth 1.
    const AccessRequirements req = makeRequirements(
        4, 4, {{0, {0}}, {1, {1}}, {2, {2}}, {3, {3}}});
    const CvbPlan plan = compressFirstFit(req);
    EXPECT_EQ(plan.depth, 1);
    EXPECT_DOUBLE_EQ(plan.ec(), 1.0);
    EXPECT_TRUE(plan.isConsistentWith(req));
}

TEST(Cvb, ConflictingElementsNeedSeparateAddresses)
{
    // All elements needed by lane 0: no sharing possible.
    const AccessRequirements req = makeRequirements(
        4, 5, {{0, {0}}, {1, {0}}, {2, {0}}, {3, {0}}, {4, {0}}});
    const CvbPlan plan = compressFirstFit(req);
    EXPECT_EQ(plan.depth, 5);
    EXPECT_EQ(exactMinimumDepth(req), 5);
}

TEST(Cvb, UnusedElementsNotStored)
{
    const AccessRequirements req =
        makeRequirements(4, 6, {{1, {0}}, {4, {2}}});
    const CvbPlan plan = compressFirstFit(req);
    EXPECT_EQ(plan.address[0], -1);
    EXPECT_EQ(plan.address[2], -1);
    EXPECT_GE(plan.address[1], 0);
    EXPECT_GE(plan.address[4], 0);
    EXPECT_EQ(plan.storedCopies(), 2);
}

TEST(Cvb, FullDuplicationBaseline)
{
    const CvbPlan plan = fullDuplicationPlan(8, 100);
    EXPECT_EQ(plan.depth, 100);
    EXPECT_DOUBLE_EQ(plan.ec(), 8.0);
    EXPECT_EQ(plan.updateCycles(), 100);  // E_c * L / C = 8*100/8
    EXPECT_EQ(plan.storedCopies(), 800);
    // Consistent with any requirement set of matching shape.
    Rng rng(3);
    AccessRequirements req;
    req.c = 8;
    req.length = 100;
    req.laneMask.assign(100, 0);
    for (Index j = 0; j < 100; ++j)
        req.laneMask[static_cast<std::size_t>(j)] =
            rng() & ((1u << 8) - 1);
    EXPECT_TRUE(plan.isConsistentWith(req));
}

TEST(Cvb, UpdateCyclesNeverBelowStreamTime)
{
    // Even a depth-1 plan cannot update faster than streaming L/C.
    const AccessRequirements req = makeRequirements(
        4, 64, {{0, {0}}, {1, {1}}, {2, {2}}, {3, {3}}});
    const CvbPlan plan = compressFirstFit(req);
    EXPECT_EQ(plan.depth, 1);
    EXPECT_EQ(plan.updateCycles(), 16);  // ceil(64/4)
}

TEST(Cvb, FirstFitOrderingsBothValid)
{
    Rng rng(11);
    AccessRequirements req;
    req.c = 8;
    req.length = 60;
    req.laneMask.assign(60, 0);
    for (Index j = 0; j < 60; ++j)
        req.laneMask[static_cast<std::size_t>(j)] =
            rng() & ((1u << 8) - 1);
    const CvbPlan in_order =
        compressFirstFit(req, FirstFitOrder::InputOrder);
    const CvbPlan decreasing =
        compressFirstFit(req, FirstFitOrder::Decreasing);
    EXPECT_TRUE(in_order.isConsistentWith(req));
    EXPECT_TRUE(decreasing.isConsistentWith(req));
    // FFD is a standard improvement; allow ties.
    EXPECT_LE(decreasing.depth, in_order.depth + 2);
}

TEST(Cvb, ExactSolverMatchesKnownColorings)
{
    // Two cliques of conflicting elements -> depth = clique size.
    const AccessRequirements req = makeRequirements(
        4, 6,
        {{0, {0, 1}}, {1, {1, 2}}, {2, {0, 2}},   // pairwise conflicts
         {3, {3}}, {4, {3}}, {5, {3}}});
    EXPECT_EQ(exactMinimumDepth(req), 3);
}

TEST(Cvb, ExactSolverCapEnforced)
{
    AccessRequirements req;
    req.c = 4;
    req.length = 30;
    req.laneMask.assign(30, 1);
    EXPECT_THROW(exactMinimumDepth(req, 10), FatalError);
}

TEST(Cvb, RequirementsFromPackedMatrix)
{
    Rng rng(5);
    const QpProblem qp = generateSvm(10, rng);
    const CsrMatrix csr = CsrMatrix::fromCsc(qp.a);
    const StructureSet set = StructureSet::baseline(16);
    const SparsityString str = encodeMatrix(csr, 16);
    const Schedule schedule = scheduleString(str, set);
    const PackedMatrix packed = packMatrix(csr, str, schedule, set);
    const AccessRequirements req = buildAccessRequirements(packed);
    EXPECT_EQ(req.length, csr.cols());
    // Every column with at least one non-zero must be requested.
    const CscMatrix csc = csr.toCsc();
    for (Index c = 0; c < csc.cols(); ++c) {
        const bool has_nnz = csc.colNnz(c) > 0;
        const bool requested =
            req.laneMask[static_cast<std::size_t>(c)] != 0;
        EXPECT_EQ(has_nnz, requested) << "column " << c;
    }
    EXPECT_GE(req.totalCopies(), static_cast<Count>(req.usedElements()));
}

/** Property sweep: First-Fit plans are always consistent and within a
 *  small factor of the exact optimum on small random instances. */
class CvbProperty : public ::testing::TestWithParam<int>
{};

TEST_P(CvbProperty, FirstFitConsistentAndNearOptimal)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 101);
    AccessRequirements req;
    req.c = 6;
    req.length = 14;
    req.laneMask.assign(14, 0);
    for (Index j = 0; j < 14; ++j)
        if (rng.bernoulli(0.8))
            req.laneMask[static_cast<std::size_t>(j)] =
                rng() & ((1u << 6) - 1);
    const CvbPlan plan = compressFirstFit(req);
    EXPECT_TRUE(plan.isConsistentWith(req));
    const Index optimum = exactMinimumDepth(req);
    EXPECT_GE(plan.depth, optimum);
    // First-Fit-Decreasing stays close on these tiny instances.
    EXPECT_LE(plan.depth, optimum + 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CvbProperty,
                         ::testing::Range(1, 13));

} // namespace
} // namespace rsqp
