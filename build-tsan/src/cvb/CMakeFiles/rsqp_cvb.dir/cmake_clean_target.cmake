file(REMOVE_RECURSE
  "librsqp_cvb.a"
)
