# Empty dependencies file for rsqp_cvb.
# This may be replaced when dependencies are built.
