file(REMOVE_RECURSE
  "CMakeFiles/rsqp_cvb.dir/cvb.cpp.o"
  "CMakeFiles/rsqp_cvb.dir/cvb.cpp.o.d"
  "librsqp_cvb.a"
  "librsqp_cvb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsqp_cvb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
