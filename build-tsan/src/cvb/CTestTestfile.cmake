# CMake generated Testfile for 
# Source directory: /root/repo/src/cvb
# Build directory: /root/repo/build-tsan/src/cvb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
