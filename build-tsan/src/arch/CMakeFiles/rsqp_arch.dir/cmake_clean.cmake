file(REMOVE_RECURSE
  "CMakeFiles/rsqp_arch.dir/isa.cpp.o"
  "CMakeFiles/rsqp_arch.dir/isa.cpp.o.d"
  "CMakeFiles/rsqp_arch.dir/machine.cpp.o"
  "CMakeFiles/rsqp_arch.dir/machine.cpp.o.d"
  "CMakeFiles/rsqp_arch.dir/osqp_program.cpp.o"
  "CMakeFiles/rsqp_arch.dir/osqp_program.cpp.o.d"
  "CMakeFiles/rsqp_arch.dir/program_builder.cpp.o"
  "CMakeFiles/rsqp_arch.dir/program_builder.cpp.o.d"
  "librsqp_arch.a"
  "librsqp_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsqp_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
