# Empty dependencies file for rsqp_arch.
# This may be replaced when dependencies are built.
