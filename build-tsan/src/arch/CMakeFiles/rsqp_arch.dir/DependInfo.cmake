
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/isa.cpp" "src/arch/CMakeFiles/rsqp_arch.dir/isa.cpp.o" "gcc" "src/arch/CMakeFiles/rsqp_arch.dir/isa.cpp.o.d"
  "/root/repo/src/arch/machine.cpp" "src/arch/CMakeFiles/rsqp_arch.dir/machine.cpp.o" "gcc" "src/arch/CMakeFiles/rsqp_arch.dir/machine.cpp.o.d"
  "/root/repo/src/arch/osqp_program.cpp" "src/arch/CMakeFiles/rsqp_arch.dir/osqp_program.cpp.o" "gcc" "src/arch/CMakeFiles/rsqp_arch.dir/osqp_program.cpp.o.d"
  "/root/repo/src/arch/program_builder.cpp" "src/arch/CMakeFiles/rsqp_arch.dir/program_builder.cpp.o" "gcc" "src/arch/CMakeFiles/rsqp_arch.dir/program_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/encoding/CMakeFiles/rsqp_encoding.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cvb/CMakeFiles/rsqp_cvb.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/osqp/CMakeFiles/rsqp_osqp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/solvers/CMakeFiles/rsqp_solvers.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/rsqp_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/rsqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
