file(REMOVE_RECURSE
  "librsqp_arch.a"
)
