# Empty dependencies file for rsqp_core.
# This may be replaced when dependencies are built.
