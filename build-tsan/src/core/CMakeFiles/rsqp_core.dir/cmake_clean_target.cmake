file(REMOVE_RECURSE
  "librsqp_core.a"
)
