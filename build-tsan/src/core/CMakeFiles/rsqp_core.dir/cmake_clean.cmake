file(REMOVE_RECURSE
  "CMakeFiles/rsqp_core.dir/customization.cpp.o"
  "CMakeFiles/rsqp_core.dir/customization.cpp.o.d"
  "CMakeFiles/rsqp_core.dir/design_space.cpp.o"
  "CMakeFiles/rsqp_core.dir/design_space.cpp.o.d"
  "CMakeFiles/rsqp_core.dir/hls_codegen.cpp.o"
  "CMakeFiles/rsqp_core.dir/hls_codegen.cpp.o.d"
  "CMakeFiles/rsqp_core.dir/memory_model.cpp.o"
  "CMakeFiles/rsqp_core.dir/memory_model.cpp.o.d"
  "CMakeFiles/rsqp_core.dir/report.cpp.o"
  "CMakeFiles/rsqp_core.dir/report.cpp.o.d"
  "CMakeFiles/rsqp_core.dir/rsqp_solver.cpp.o"
  "CMakeFiles/rsqp_core.dir/rsqp_solver.cpp.o.d"
  "CMakeFiles/rsqp_core.dir/structure_adapt.cpp.o"
  "CMakeFiles/rsqp_core.dir/structure_adapt.cpp.o.d"
  "librsqp_core.a"
  "librsqp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsqp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
