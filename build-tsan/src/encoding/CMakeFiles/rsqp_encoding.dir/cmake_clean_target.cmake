file(REMOVE_RECURSE
  "librsqp_encoding.a"
)
