
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encoding/lzw.cpp" "src/encoding/CMakeFiles/rsqp_encoding.dir/lzw.cpp.o" "gcc" "src/encoding/CMakeFiles/rsqp_encoding.dir/lzw.cpp.o.d"
  "/root/repo/src/encoding/mac_structure.cpp" "src/encoding/CMakeFiles/rsqp_encoding.dir/mac_structure.cpp.o" "gcc" "src/encoding/CMakeFiles/rsqp_encoding.dir/mac_structure.cpp.o.d"
  "/root/repo/src/encoding/packing.cpp" "src/encoding/CMakeFiles/rsqp_encoding.dir/packing.cpp.o" "gcc" "src/encoding/CMakeFiles/rsqp_encoding.dir/packing.cpp.o.d"
  "/root/repo/src/encoding/scheduler.cpp" "src/encoding/CMakeFiles/rsqp_encoding.dir/scheduler.cpp.o" "gcc" "src/encoding/CMakeFiles/rsqp_encoding.dir/scheduler.cpp.o.d"
  "/root/repo/src/encoding/sparsity_string.cpp" "src/encoding/CMakeFiles/rsqp_encoding.dir/sparsity_string.cpp.o" "gcc" "src/encoding/CMakeFiles/rsqp_encoding.dir/sparsity_string.cpp.o.d"
  "/root/repo/src/encoding/structure_search.cpp" "src/encoding/CMakeFiles/rsqp_encoding.dir/structure_search.cpp.o" "gcc" "src/encoding/CMakeFiles/rsqp_encoding.dir/structure_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/linalg/CMakeFiles/rsqp_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/rsqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
