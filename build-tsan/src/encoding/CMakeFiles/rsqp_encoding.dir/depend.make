# Empty dependencies file for rsqp_encoding.
# This may be replaced when dependencies are built.
