file(REMOVE_RECURSE
  "CMakeFiles/rsqp_encoding.dir/lzw.cpp.o"
  "CMakeFiles/rsqp_encoding.dir/lzw.cpp.o.d"
  "CMakeFiles/rsqp_encoding.dir/mac_structure.cpp.o"
  "CMakeFiles/rsqp_encoding.dir/mac_structure.cpp.o.d"
  "CMakeFiles/rsqp_encoding.dir/packing.cpp.o"
  "CMakeFiles/rsqp_encoding.dir/packing.cpp.o.d"
  "CMakeFiles/rsqp_encoding.dir/scheduler.cpp.o"
  "CMakeFiles/rsqp_encoding.dir/scheduler.cpp.o.d"
  "CMakeFiles/rsqp_encoding.dir/sparsity_string.cpp.o"
  "CMakeFiles/rsqp_encoding.dir/sparsity_string.cpp.o.d"
  "CMakeFiles/rsqp_encoding.dir/structure_search.cpp.o"
  "CMakeFiles/rsqp_encoding.dir/structure_search.cpp.o.d"
  "librsqp_encoding.a"
  "librsqp_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsqp_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
