# Empty dependencies file for rsqp_problems.
# This may be replaced when dependencies are built.
