
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/problems/generators.cpp" "src/problems/CMakeFiles/rsqp_problems.dir/generators.cpp.o" "gcc" "src/problems/CMakeFiles/rsqp_problems.dir/generators.cpp.o.d"
  "/root/repo/src/problems/suite.cpp" "src/problems/CMakeFiles/rsqp_problems.dir/suite.cpp.o" "gcc" "src/problems/CMakeFiles/rsqp_problems.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/osqp/CMakeFiles/rsqp_osqp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/solvers/CMakeFiles/rsqp_solvers.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/rsqp_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/rsqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
