file(REMOVE_RECURSE
  "librsqp_problems.a"
)
