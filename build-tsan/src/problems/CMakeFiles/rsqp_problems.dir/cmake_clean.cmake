file(REMOVE_RECURSE
  "CMakeFiles/rsqp_problems.dir/generators.cpp.o"
  "CMakeFiles/rsqp_problems.dir/generators.cpp.o.d"
  "CMakeFiles/rsqp_problems.dir/suite.cpp.o"
  "CMakeFiles/rsqp_problems.dir/suite.cpp.o.d"
  "librsqp_problems.a"
  "librsqp_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsqp_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
