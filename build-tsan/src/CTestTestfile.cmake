# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("linalg")
subdirs("solvers")
subdirs("osqp")
subdirs("encoding")
subdirs("cvb")
subdirs("arch")
subdirs("hwmodel")
subdirs("gpu")
subdirs("problems")
subdirs("core")
