# Empty dependencies file for rsqp_linalg.
# This may be replaced when dependencies are built.
