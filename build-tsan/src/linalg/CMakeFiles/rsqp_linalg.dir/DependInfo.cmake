
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/csc.cpp" "src/linalg/CMakeFiles/rsqp_linalg.dir/csc.cpp.o" "gcc" "src/linalg/CMakeFiles/rsqp_linalg.dir/csc.cpp.o.d"
  "/root/repo/src/linalg/csr.cpp" "src/linalg/CMakeFiles/rsqp_linalg.dir/csr.cpp.o" "gcc" "src/linalg/CMakeFiles/rsqp_linalg.dir/csr.cpp.o.d"
  "/root/repo/src/linalg/io.cpp" "src/linalg/CMakeFiles/rsqp_linalg.dir/io.cpp.o" "gcc" "src/linalg/CMakeFiles/rsqp_linalg.dir/io.cpp.o.d"
  "/root/repo/src/linalg/kkt.cpp" "src/linalg/CMakeFiles/rsqp_linalg.dir/kkt.cpp.o" "gcc" "src/linalg/CMakeFiles/rsqp_linalg.dir/kkt.cpp.o.d"
  "/root/repo/src/linalg/triplet.cpp" "src/linalg/CMakeFiles/rsqp_linalg.dir/triplet.cpp.o" "gcc" "src/linalg/CMakeFiles/rsqp_linalg.dir/triplet.cpp.o.d"
  "/root/repo/src/linalg/vector_ops.cpp" "src/linalg/CMakeFiles/rsqp_linalg.dir/vector_ops.cpp.o" "gcc" "src/linalg/CMakeFiles/rsqp_linalg.dir/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/rsqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
