file(REMOVE_RECURSE
  "librsqp_linalg.a"
)
