file(REMOVE_RECURSE
  "CMakeFiles/rsqp_linalg.dir/csc.cpp.o"
  "CMakeFiles/rsqp_linalg.dir/csc.cpp.o.d"
  "CMakeFiles/rsqp_linalg.dir/csr.cpp.o"
  "CMakeFiles/rsqp_linalg.dir/csr.cpp.o.d"
  "CMakeFiles/rsqp_linalg.dir/io.cpp.o"
  "CMakeFiles/rsqp_linalg.dir/io.cpp.o.d"
  "CMakeFiles/rsqp_linalg.dir/kkt.cpp.o"
  "CMakeFiles/rsqp_linalg.dir/kkt.cpp.o.d"
  "CMakeFiles/rsqp_linalg.dir/triplet.cpp.o"
  "CMakeFiles/rsqp_linalg.dir/triplet.cpp.o.d"
  "CMakeFiles/rsqp_linalg.dir/vector_ops.cpp.o"
  "CMakeFiles/rsqp_linalg.dir/vector_ops.cpp.o.d"
  "librsqp_linalg.a"
  "librsqp_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsqp_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
