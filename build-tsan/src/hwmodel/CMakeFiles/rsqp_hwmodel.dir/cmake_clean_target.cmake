file(REMOVE_RECURSE
  "librsqp_hwmodel.a"
)
