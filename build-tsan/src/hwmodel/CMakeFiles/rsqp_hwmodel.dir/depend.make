# Empty dependencies file for rsqp_hwmodel.
# This may be replaced when dependencies are built.
