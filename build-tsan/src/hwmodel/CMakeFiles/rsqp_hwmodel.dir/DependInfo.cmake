
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwmodel/devices.cpp" "src/hwmodel/CMakeFiles/rsqp_hwmodel.dir/devices.cpp.o" "gcc" "src/hwmodel/CMakeFiles/rsqp_hwmodel.dir/devices.cpp.o.d"
  "/root/repo/src/hwmodel/power.cpp" "src/hwmodel/CMakeFiles/rsqp_hwmodel.dir/power.cpp.o" "gcc" "src/hwmodel/CMakeFiles/rsqp_hwmodel.dir/power.cpp.o.d"
  "/root/repo/src/hwmodel/resources.cpp" "src/hwmodel/CMakeFiles/rsqp_hwmodel.dir/resources.cpp.o" "gcc" "src/hwmodel/CMakeFiles/rsqp_hwmodel.dir/resources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/rsqp_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/encoding/CMakeFiles/rsqp_encoding.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/rsqp_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
