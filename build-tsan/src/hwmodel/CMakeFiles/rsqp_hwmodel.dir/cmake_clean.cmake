file(REMOVE_RECURSE
  "CMakeFiles/rsqp_hwmodel.dir/devices.cpp.o"
  "CMakeFiles/rsqp_hwmodel.dir/devices.cpp.o.d"
  "CMakeFiles/rsqp_hwmodel.dir/power.cpp.o"
  "CMakeFiles/rsqp_hwmodel.dir/power.cpp.o.d"
  "CMakeFiles/rsqp_hwmodel.dir/resources.cpp.o"
  "CMakeFiles/rsqp_hwmodel.dir/resources.cpp.o.d"
  "librsqp_hwmodel.a"
  "librsqp_hwmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsqp_hwmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
