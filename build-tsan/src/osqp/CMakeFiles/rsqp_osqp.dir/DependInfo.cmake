
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osqp/builder.cpp" "src/osqp/CMakeFiles/rsqp_osqp.dir/builder.cpp.o" "gcc" "src/osqp/CMakeFiles/rsqp_osqp.dir/builder.cpp.o.d"
  "/root/repo/src/osqp/polish.cpp" "src/osqp/CMakeFiles/rsqp_osqp.dir/polish.cpp.o" "gcc" "src/osqp/CMakeFiles/rsqp_osqp.dir/polish.cpp.o.d"
  "/root/repo/src/osqp/problem.cpp" "src/osqp/CMakeFiles/rsqp_osqp.dir/problem.cpp.o" "gcc" "src/osqp/CMakeFiles/rsqp_osqp.dir/problem.cpp.o.d"
  "/root/repo/src/osqp/problem_io.cpp" "src/osqp/CMakeFiles/rsqp_osqp.dir/problem_io.cpp.o" "gcc" "src/osqp/CMakeFiles/rsqp_osqp.dir/problem_io.cpp.o.d"
  "/root/repo/src/osqp/residuals.cpp" "src/osqp/CMakeFiles/rsqp_osqp.dir/residuals.cpp.o" "gcc" "src/osqp/CMakeFiles/rsqp_osqp.dir/residuals.cpp.o.d"
  "/root/repo/src/osqp/scaling.cpp" "src/osqp/CMakeFiles/rsqp_osqp.dir/scaling.cpp.o" "gcc" "src/osqp/CMakeFiles/rsqp_osqp.dir/scaling.cpp.o.d"
  "/root/repo/src/osqp/solver.cpp" "src/osqp/CMakeFiles/rsqp_osqp.dir/solver.cpp.o" "gcc" "src/osqp/CMakeFiles/rsqp_osqp.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/solvers/CMakeFiles/rsqp_solvers.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/rsqp_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/rsqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
