file(REMOVE_RECURSE
  "librsqp_osqp.a"
)
