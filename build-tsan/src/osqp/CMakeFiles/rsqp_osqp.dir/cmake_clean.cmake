file(REMOVE_RECURSE
  "CMakeFiles/rsqp_osqp.dir/builder.cpp.o"
  "CMakeFiles/rsqp_osqp.dir/builder.cpp.o.d"
  "CMakeFiles/rsqp_osqp.dir/polish.cpp.o"
  "CMakeFiles/rsqp_osqp.dir/polish.cpp.o.d"
  "CMakeFiles/rsqp_osqp.dir/problem.cpp.o"
  "CMakeFiles/rsqp_osqp.dir/problem.cpp.o.d"
  "CMakeFiles/rsqp_osqp.dir/problem_io.cpp.o"
  "CMakeFiles/rsqp_osqp.dir/problem_io.cpp.o.d"
  "CMakeFiles/rsqp_osqp.dir/residuals.cpp.o"
  "CMakeFiles/rsqp_osqp.dir/residuals.cpp.o.d"
  "CMakeFiles/rsqp_osqp.dir/scaling.cpp.o"
  "CMakeFiles/rsqp_osqp.dir/scaling.cpp.o.d"
  "CMakeFiles/rsqp_osqp.dir/solver.cpp.o"
  "CMakeFiles/rsqp_osqp.dir/solver.cpp.o.d"
  "librsqp_osqp.a"
  "librsqp_osqp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsqp_osqp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
