# Empty dependencies file for rsqp_osqp.
# This may be replaced when dependencies are built.
