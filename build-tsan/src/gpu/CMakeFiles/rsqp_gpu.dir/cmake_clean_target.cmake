file(REMOVE_RECURSE
  "librsqp_gpu.a"
)
