file(REMOVE_RECURSE
  "CMakeFiles/rsqp_gpu.dir/gpu_model.cpp.o"
  "CMakeFiles/rsqp_gpu.dir/gpu_model.cpp.o.d"
  "librsqp_gpu.a"
  "librsqp_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsqp_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
