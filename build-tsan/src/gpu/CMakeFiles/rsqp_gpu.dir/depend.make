# Empty dependencies file for rsqp_gpu.
# This may be replaced when dependencies are built.
