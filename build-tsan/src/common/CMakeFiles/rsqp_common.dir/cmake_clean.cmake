file(REMOVE_RECURSE
  "CMakeFiles/rsqp_common.dir/logging.cpp.o"
  "CMakeFiles/rsqp_common.dir/logging.cpp.o.d"
  "CMakeFiles/rsqp_common.dir/random.cpp.o"
  "CMakeFiles/rsqp_common.dir/random.cpp.o.d"
  "CMakeFiles/rsqp_common.dir/stats.cpp.o"
  "CMakeFiles/rsqp_common.dir/stats.cpp.o.d"
  "CMakeFiles/rsqp_common.dir/table.cpp.o"
  "CMakeFiles/rsqp_common.dir/table.cpp.o.d"
  "CMakeFiles/rsqp_common.dir/thread_pool.cpp.o"
  "CMakeFiles/rsqp_common.dir/thread_pool.cpp.o.d"
  "librsqp_common.a"
  "librsqp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsqp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
