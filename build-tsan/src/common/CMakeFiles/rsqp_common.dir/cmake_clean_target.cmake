file(REMOVE_RECURSE
  "librsqp_common.a"
)
