# Empty dependencies file for rsqp_common.
# This may be replaced when dependencies are built.
