# Empty dependencies file for rsqp_solvers.
# This may be replaced when dependencies are built.
