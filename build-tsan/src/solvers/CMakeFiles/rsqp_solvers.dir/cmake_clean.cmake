file(REMOVE_RECURSE
  "CMakeFiles/rsqp_solvers.dir/kkt_solver.cpp.o"
  "CMakeFiles/rsqp_solvers.dir/kkt_solver.cpp.o.d"
  "CMakeFiles/rsqp_solvers.dir/ldl.cpp.o"
  "CMakeFiles/rsqp_solvers.dir/ldl.cpp.o.d"
  "CMakeFiles/rsqp_solvers.dir/ordering.cpp.o"
  "CMakeFiles/rsqp_solvers.dir/ordering.cpp.o.d"
  "CMakeFiles/rsqp_solvers.dir/pcg.cpp.o"
  "CMakeFiles/rsqp_solvers.dir/pcg.cpp.o.d"
  "librsqp_solvers.a"
  "librsqp_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsqp_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
