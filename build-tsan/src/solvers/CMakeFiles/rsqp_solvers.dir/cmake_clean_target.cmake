file(REMOVE_RECURSE
  "librsqp_solvers.a"
)
