# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_common[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_linalg[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_solvers[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_osqp[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_encoding[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_cvb[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_arch[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_models[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_problems[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_core[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_integration[1]_include.cmake")
