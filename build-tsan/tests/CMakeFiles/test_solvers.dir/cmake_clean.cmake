file(REMOVE_RECURSE
  "CMakeFiles/test_solvers.dir/solvers/test_kkt_solver.cpp.o"
  "CMakeFiles/test_solvers.dir/solvers/test_kkt_solver.cpp.o.d"
  "CMakeFiles/test_solvers.dir/solvers/test_ldl.cpp.o"
  "CMakeFiles/test_solvers.dir/solvers/test_ldl.cpp.o.d"
  "CMakeFiles/test_solvers.dir/solvers/test_ordering.cpp.o"
  "CMakeFiles/test_solvers.dir/solvers/test_ordering.cpp.o.d"
  "CMakeFiles/test_solvers.dir/solvers/test_pcg.cpp.o"
  "CMakeFiles/test_solvers.dir/solvers/test_pcg.cpp.o.d"
  "test_solvers"
  "test_solvers.pdb"
  "test_solvers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
