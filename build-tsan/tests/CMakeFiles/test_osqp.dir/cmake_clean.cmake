file(REMOVE_RECURSE
  "CMakeFiles/test_osqp.dir/osqp/test_builder.cpp.o"
  "CMakeFiles/test_osqp.dir/osqp/test_builder.cpp.o.d"
  "CMakeFiles/test_osqp.dir/osqp/test_infeasibility.cpp.o"
  "CMakeFiles/test_osqp.dir/osqp/test_infeasibility.cpp.o.d"
  "CMakeFiles/test_osqp.dir/osqp/test_parametric.cpp.o"
  "CMakeFiles/test_osqp.dir/osqp/test_parametric.cpp.o.d"
  "CMakeFiles/test_osqp.dir/osqp/test_polish.cpp.o"
  "CMakeFiles/test_osqp.dir/osqp/test_polish.cpp.o.d"
  "CMakeFiles/test_osqp.dir/osqp/test_residuals.cpp.o"
  "CMakeFiles/test_osqp.dir/osqp/test_residuals.cpp.o.d"
  "CMakeFiles/test_osqp.dir/osqp/test_scaling.cpp.o"
  "CMakeFiles/test_osqp.dir/osqp/test_scaling.cpp.o.d"
  "CMakeFiles/test_osqp.dir/osqp/test_solver.cpp.o"
  "CMakeFiles/test_osqp.dir/osqp/test_solver.cpp.o.d"
  "test_osqp"
  "test_osqp.pdb"
  "test_osqp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_osqp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
