# Empty dependencies file for test_osqp.
# This may be replaced when dependencies are built.
