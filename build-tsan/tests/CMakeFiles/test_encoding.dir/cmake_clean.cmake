file(REMOVE_RECURSE
  "CMakeFiles/test_encoding.dir/encoding/test_edge_cases.cpp.o"
  "CMakeFiles/test_encoding.dir/encoding/test_edge_cases.cpp.o.d"
  "CMakeFiles/test_encoding.dir/encoding/test_lzw.cpp.o"
  "CMakeFiles/test_encoding.dir/encoding/test_lzw.cpp.o.d"
  "CMakeFiles/test_encoding.dir/encoding/test_mac_structure.cpp.o"
  "CMakeFiles/test_encoding.dir/encoding/test_mac_structure.cpp.o.d"
  "CMakeFiles/test_encoding.dir/encoding/test_packing.cpp.o"
  "CMakeFiles/test_encoding.dir/encoding/test_packing.cpp.o.d"
  "CMakeFiles/test_encoding.dir/encoding/test_scheduler.cpp.o"
  "CMakeFiles/test_encoding.dir/encoding/test_scheduler.cpp.o.d"
  "CMakeFiles/test_encoding.dir/encoding/test_sparsity_string.cpp.o"
  "CMakeFiles/test_encoding.dir/encoding/test_sparsity_string.cpp.o.d"
  "CMakeFiles/test_encoding.dir/encoding/test_structure_search.cpp.o"
  "CMakeFiles/test_encoding.dir/encoding/test_structure_search.cpp.o.d"
  "test_encoding"
  "test_encoding.pdb"
  "test_encoding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
