file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_customization.cpp.o"
  "CMakeFiles/test_core.dir/core/test_customization.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_design_space.cpp.o"
  "CMakeFiles/test_core.dir/core/test_design_space.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_hls_codegen.cpp.o"
  "CMakeFiles/test_core.dir/core/test_hls_codegen.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_memory_model.cpp.o"
  "CMakeFiles/test_core.dir/core/test_memory_model.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_report.cpp.o"
  "CMakeFiles/test_core.dir/core/test_report.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_rsqp_solver.cpp.o"
  "CMakeFiles/test_core.dir/core/test_rsqp_solver.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_solve_batch.cpp.o"
  "CMakeFiles/test_core.dir/core/test_solve_batch.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_structure_adapt.cpp.o"
  "CMakeFiles/test_core.dir/core/test_structure_adapt.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
