file(REMOVE_RECURSE
  "CMakeFiles/test_arch.dir/arch/test_isa.cpp.o"
  "CMakeFiles/test_arch.dir/arch/test_isa.cpp.o.d"
  "CMakeFiles/test_arch.dir/arch/test_machine.cpp.o"
  "CMakeFiles/test_arch.dir/arch/test_machine.cpp.o.d"
  "CMakeFiles/test_arch.dir/arch/test_matrix_update.cpp.o"
  "CMakeFiles/test_arch.dir/arch/test_matrix_update.cpp.o.d"
  "CMakeFiles/test_arch.dir/arch/test_osqp_program.cpp.o"
  "CMakeFiles/test_arch.dir/arch/test_osqp_program.cpp.o.d"
  "CMakeFiles/test_arch.dir/arch/test_program_builder.cpp.o"
  "CMakeFiles/test_arch.dir/arch/test_program_builder.cpp.o.d"
  "CMakeFiles/test_arch.dir/arch/test_spmv_engine.cpp.o"
  "CMakeFiles/test_arch.dir/arch/test_spmv_engine.cpp.o.d"
  "test_arch"
  "test_arch.pdb"
  "test_arch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
