
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/arch/test_isa.cpp" "tests/CMakeFiles/test_arch.dir/arch/test_isa.cpp.o" "gcc" "tests/CMakeFiles/test_arch.dir/arch/test_isa.cpp.o.d"
  "/root/repo/tests/arch/test_machine.cpp" "tests/CMakeFiles/test_arch.dir/arch/test_machine.cpp.o" "gcc" "tests/CMakeFiles/test_arch.dir/arch/test_machine.cpp.o.d"
  "/root/repo/tests/arch/test_matrix_update.cpp" "tests/CMakeFiles/test_arch.dir/arch/test_matrix_update.cpp.o" "gcc" "tests/CMakeFiles/test_arch.dir/arch/test_matrix_update.cpp.o.d"
  "/root/repo/tests/arch/test_osqp_program.cpp" "tests/CMakeFiles/test_arch.dir/arch/test_osqp_program.cpp.o" "gcc" "tests/CMakeFiles/test_arch.dir/arch/test_osqp_program.cpp.o.d"
  "/root/repo/tests/arch/test_program_builder.cpp" "tests/CMakeFiles/test_arch.dir/arch/test_program_builder.cpp.o" "gcc" "tests/CMakeFiles/test_arch.dir/arch/test_program_builder.cpp.o.d"
  "/root/repo/tests/arch/test_spmv_engine.cpp" "tests/CMakeFiles/test_arch.dir/arch/test_spmv_engine.cpp.o" "gcc" "tests/CMakeFiles/test_arch.dir/arch/test_spmv_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/rsqp_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/arch/CMakeFiles/rsqp_arch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cvb/CMakeFiles/rsqp_cvb.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gpu/CMakeFiles/rsqp_gpu.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hwmodel/CMakeFiles/rsqp_hwmodel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/encoding/CMakeFiles/rsqp_encoding.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/problems/CMakeFiles/rsqp_problems.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/osqp/CMakeFiles/rsqp_osqp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/solvers/CMakeFiles/rsqp_solvers.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/rsqp_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/rsqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
