file(REMOVE_RECURSE
  "CMakeFiles/test_linalg.dir/linalg/test_csc.cpp.o"
  "CMakeFiles/test_linalg.dir/linalg/test_csc.cpp.o.d"
  "CMakeFiles/test_linalg.dir/linalg/test_csr.cpp.o"
  "CMakeFiles/test_linalg.dir/linalg/test_csr.cpp.o.d"
  "CMakeFiles/test_linalg.dir/linalg/test_io.cpp.o"
  "CMakeFiles/test_linalg.dir/linalg/test_io.cpp.o.d"
  "CMakeFiles/test_linalg.dir/linalg/test_kkt.cpp.o"
  "CMakeFiles/test_linalg.dir/linalg/test_kkt.cpp.o.d"
  "CMakeFiles/test_linalg.dir/linalg/test_vector_ops.cpp.o"
  "CMakeFiles/test_linalg.dir/linalg/test_vector_ops.cpp.o.d"
  "test_linalg"
  "test_linalg.pdb"
  "test_linalg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
