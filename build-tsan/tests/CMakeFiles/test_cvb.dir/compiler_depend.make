# Empty compiler generated dependencies file for test_cvb.
# This may be replaced when dependencies are built.
