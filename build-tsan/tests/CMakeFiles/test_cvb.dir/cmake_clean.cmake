file(REMOVE_RECURSE
  "CMakeFiles/test_cvb.dir/cvb/test_cvb.cpp.o"
  "CMakeFiles/test_cvb.dir/cvb/test_cvb.cpp.o.d"
  "test_cvb"
  "test_cvb.pdb"
  "test_cvb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cvb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
