file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_benchmark.dir/bench_fig7_benchmark.cpp.o"
  "CMakeFiles/bench_fig7_benchmark.dir/bench_fig7_benchmark.cpp.o.d"
  "bench_fig7_benchmark"
  "bench_fig7_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
