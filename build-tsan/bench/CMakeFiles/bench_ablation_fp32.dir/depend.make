# Empty dependencies file for bench_ablation_fp32.
# This may be replaced when dependencies are built.
