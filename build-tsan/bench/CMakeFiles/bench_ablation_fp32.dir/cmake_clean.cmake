file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fp32.dir/bench_ablation_fp32.cpp.o"
  "CMakeFiles/bench_ablation_fp32.dir/bench_ablation_fp32.cpp.o.d"
  "bench_ablation_fp32"
  "bench_ablation_fp32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fp32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
