file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_permute.dir/bench_ablation_permute.cpp.o"
  "CMakeFiles/bench_ablation_permute.dir/bench_ablation_permute.cpp.o.d"
  "bench_ablation_permute"
  "bench_ablation_permute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_permute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
