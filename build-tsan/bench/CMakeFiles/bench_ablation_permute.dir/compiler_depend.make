# Empty compiler generated dependencies file for bench_ablation_permute.
# This may be replaced when dependencies are built.
