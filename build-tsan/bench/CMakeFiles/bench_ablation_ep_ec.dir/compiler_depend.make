# Empty compiler generated dependencies file for bench_ablation_ep_ec.
# This may be replaced when dependencies are built.
