file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ep_ec.dir/bench_ablation_ep_ec.cpp.o"
  "CMakeFiles/bench_ablation_ep_ec.dir/bench_ablation_ep_ec.cpp.o.d"
  "bench_ablation_ep_ec"
  "bench_ablation_ep_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ep_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
