file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_eta.dir/bench_fig9_eta.cpp.o"
  "CMakeFiles/bench_fig9_eta.dir/bench_fig9_eta.cpp.o.d"
  "bench_fig9_eta"
  "bench_fig9_eta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_eta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
