# Empty dependencies file for bench_fig9_eta.
# This may be replaced when dependencies are built.
