# Empty compiler generated dependencies file for bench_fig10_custom_speedup.
# This may be replaced when dependencies are built.
