file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_footprint.dir/bench_memory_footprint.cpp.o"
  "CMakeFiles/bench_memory_footprint.dir/bench_memory_footprint.cpp.o.d"
  "bench_memory_footprint"
  "bench_memory_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
