file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_tradeoff.dir/bench_table3_tradeoff.cpp.o"
  "CMakeFiles/bench_table3_tradeoff.dir/bench_table3_tradeoff.cpp.o.d"
  "bench_table3_tradeoff"
  "bench_table3_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
