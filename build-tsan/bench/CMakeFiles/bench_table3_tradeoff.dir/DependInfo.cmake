
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_tradeoff.cpp" "bench/CMakeFiles/bench_table3_tradeoff.dir/bench_table3_tradeoff.cpp.o" "gcc" "bench/CMakeFiles/bench_table3_tradeoff.dir/bench_table3_tradeoff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/rsqp_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/arch/CMakeFiles/rsqp_arch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cvb/CMakeFiles/rsqp_cvb.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gpu/CMakeFiles/rsqp_gpu.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hwmodel/CMakeFiles/rsqp_hwmodel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/encoding/CMakeFiles/rsqp_encoding.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/problems/CMakeFiles/rsqp_problems.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/osqp/CMakeFiles/rsqp_osqp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/solvers/CMakeFiles/rsqp_solvers.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/rsqp_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/rsqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
