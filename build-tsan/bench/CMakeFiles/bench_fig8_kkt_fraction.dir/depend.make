# Empty dependencies file for bench_fig8_kkt_fraction.
# This may be replaced when dependencies are built.
