file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_runtime.dir/bench_fig12_runtime.cpp.o"
  "CMakeFiles/bench_fig12_runtime.dir/bench_fig12_runtime.cpp.o.d"
  "bench_fig12_runtime"
  "bench_fig12_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
