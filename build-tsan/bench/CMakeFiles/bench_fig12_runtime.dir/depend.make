# Empty dependencies file for bench_fig12_runtime.
# This may be replaced when dependencies are built.
