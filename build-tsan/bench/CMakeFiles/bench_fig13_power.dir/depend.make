# Empty dependencies file for bench_fig13_power.
# This may be replaced when dependencies are built.
