file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_power.dir/bench_fig13_power.cpp.o"
  "CMakeFiles/bench_fig13_power.dir/bench_fig13_power.cpp.o.d"
  "bench_fig13_power"
  "bench_fig13_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
