# Empty compiler generated dependencies file for mpc_controller.
# This may be replaced when dependencies are built.
