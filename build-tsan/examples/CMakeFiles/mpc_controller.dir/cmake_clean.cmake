file(REMOVE_RECURSE
  "CMakeFiles/mpc_controller.dir/mpc_controller.cpp.o"
  "CMakeFiles/mpc_controller.dir/mpc_controller.cpp.o.d"
  "mpc_controller"
  "mpc_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
