file(REMOVE_RECURSE
  "CMakeFiles/portfolio_backtest.dir/portfolio_backtest.cpp.o"
  "CMakeFiles/portfolio_backtest.dir/portfolio_backtest.cpp.o.d"
  "portfolio_backtest"
  "portfolio_backtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portfolio_backtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
