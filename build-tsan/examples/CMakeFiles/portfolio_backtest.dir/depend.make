# Empty dependencies file for portfolio_backtest.
# This may be replaced when dependencies are built.
