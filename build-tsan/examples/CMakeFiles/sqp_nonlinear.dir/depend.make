# Empty dependencies file for sqp_nonlinear.
# This may be replaced when dependencies are built.
