# Empty compiler generated dependencies file for sqp_nonlinear.
# This may be replaced when dependencies are built.
