file(REMOVE_RECURSE
  "CMakeFiles/sqp_nonlinear.dir/sqp_nonlinear.cpp.o"
  "CMakeFiles/sqp_nonlinear.dir/sqp_nonlinear.cpp.o.d"
  "sqp_nonlinear"
  "sqp_nonlinear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqp_nonlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
