# Empty compiler generated dependencies file for lasso_path.
# This may be replaced when dependencies are built.
