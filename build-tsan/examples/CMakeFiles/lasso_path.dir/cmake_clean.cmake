file(REMOVE_RECURSE
  "CMakeFiles/lasso_path.dir/lasso_path.cpp.o"
  "CMakeFiles/lasso_path.dir/lasso_path.cpp.o.d"
  "lasso_path"
  "lasso_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lasso_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
