file(REMOVE_RECURSE
  "CMakeFiles/solve_file.dir/solve_file.cpp.o"
  "CMakeFiles/solve_file.dir/solve_file.cpp.o.d"
  "solve_file"
  "solve_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solve_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
