# Empty dependencies file for solve_file.
# This may be replaced when dependencies are built.
