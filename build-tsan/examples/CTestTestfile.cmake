# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-tsan/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-tsan/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mpc_controller "/root/repo/build-tsan/examples/mpc_controller")
set_tests_properties(example_mpc_controller PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_portfolio_backtest "/root/repo/build-tsan/examples/portfolio_backtest")
set_tests_properties(example_portfolio_backtest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_design_explorer "/root/repo/build-tsan/examples/design_explorer" "svm" "40")
set_tests_properties(example_design_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lasso_path "/root/repo/build-tsan/examples/lasso_path")
set_tests_properties(example_lasso_path PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sqp_nonlinear "/root/repo/build-tsan/examples/sqp_nonlinear")
set_tests_properties(example_sqp_nonlinear PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_solve_file_export "/root/repo/build-tsan/examples/solve_file" "export" "portfolio" "30" "/root/repo/build-tsan/examples/portfolio30.qp")
set_tests_properties(example_solve_file_export PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_solve_file_solve "/root/repo/build-tsan/examples/solve_file" "solve" "/root/repo/build-tsan/examples/portfolio30.qp" "fpga")
set_tests_properties(example_solve_file_solve PROPERTIES  DEPENDS "example_solve_file_export" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
