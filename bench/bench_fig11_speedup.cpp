/**
 * @file
 * Fig. 11 reproduction: end-to-end solver speedup over the CPU
 * (indirect/"MKL" role) baseline for three accelerators — the GPU
 * model ("cuda"), the baseline FPGA ("no customization"), and the
 * customized FPGA ("customization") — grouped per application domain.
 *
 * Paper headline: up to 31.2x over CPU and 6.9x over GPU with
 * customization; customization extends the FPGA's win to all but the
 * largest problems.
 */

#include <map>

#include "bench_util.hpp"

using namespace rsqp;
using namespace rsqp::bench;

int
main(int argc, char** argv)
{
    const BenchOptions options = parseOptions(argc, argv);

    TextTable table({"problem", "domain", "nnz", "cpu_ms", "cuda_x",
                     "no_custom_x", "custom_x", "custom_vs_gpu_x"});
    Real best_vs_cpu = 0.0, best_vs_gpu = 0.0;
    std::map<Domain, RunningStats> custom_per_domain;

    for (const ProblemSpec& spec :
         benchmarkSuite(options.sizesPerDomain)) {
        const ProblemMeasurement meas = measureProblem(spec, options);
        const Real cuda_x = meas.cpuSeconds / meas.gpu.totalSeconds();
        const Real base_x =
            meas.cpuSeconds / meas.deviceBaseline.deviceSeconds;
        const Real custom_x =
            meas.cpuSeconds / meas.deviceCustom.deviceSeconds;
        const Real vs_gpu =
            meas.gpu.totalSeconds() / meas.deviceCustom.deviceSeconds;
        best_vs_cpu = std::max(best_vs_cpu, custom_x);
        best_vs_gpu = std::max(best_vs_gpu, vs_gpu);
        custom_per_domain[spec.domain].add(custom_x);

        table.addRow({meas.name, toString(meas.domain),
                      std::to_string(meas.nnz),
                      formatFixed(meas.cpuSeconds * 1e3, 3),
                      formatFixed(cuda_x, 2), formatFixed(base_x, 2),
                      formatFixed(custom_x, 2),
                      formatFixed(vs_gpu, 2)});
    }
    emitTable(table, options,
              "Fig. 11: end-to-end speedup over the CPU backend");

    std::cout << "max speedup of customized FPGA vs CPU: "
              << formatFixed(best_vs_cpu, 1) << "x (paper: up to 31.2x)\n"
              << "max speedup of customized FPGA vs GPU: "
              << formatFixed(best_vs_gpu, 1) << "x (paper: up to 6.9x)\n";
    std::cout << "per-domain mean customized speedup vs CPU:\n";
    for (const auto& [domain, stats] : custom_per_domain)
        std::cout << "  " << toString(domain) << ": "
                  << formatFixed(stats.mean(), 2) << "x\n";
    return 0;
}
