/**
 * @file
 * Hot-path profile of the indirect (PCG) backend, three sweeps over
 * the largest generated suite problem:
 *
 *  1. threads  — wall clock and per-phase profiler counters at each
 *     thread count (SpMV passes, fused CG updates, preconditioner,
 *     reductions), with the bitwise-determinism cross-check;
 *  2. ISA      — single-thread solve at every supported kernel level
 *     (scalar → AVX2 → AVX-512) via simd::forceIsaLevel, with the
 *     per-phase scalar-vs-SIMD speedups derived from the counters;
 *  3. precision — fp64 vs mixed-fp32 (fp32-storage / fp64-accumulate
 *     PCG inside iterative refinement) at the default ISA level.
 *
 * The JSON output is the CI perf-smoke artifact (committed snapshot:
 * results/BENCH_hotpath.json). The legacy top-level keys (problem, n,
 * m, nnz, seed, runs) are stable; the header also carries the
 * detected/compiled/active ISA levels and the precision mode, and the
 * new sweeps land in "isa_runs" / "simd_speedup" / "precision_runs".
 *
 * Flags:
 *   --quick         smaller problem / fewer reps (CI smoke)
 *   --json          JSON object on stdout (machine-readable artifact)
 *   --seed=N        generator seed offset (default 0)
 *   --sizes=N       suite sizes per domain to choose from (default 6)
 *   --threads=LIST  comma-separated thread counts (default 1,2,4,8)
 */

#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/cpu_features.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/rsqp.hpp"
#include "linalg/simd_kernels.hpp"

namespace
{

using namespace rsqp;

struct Options
{
    bool quick = false;
    bool json = false;
    std::uint64_t seed = 0;
    Index sizesPerDomain = 6;
    std::vector<Index> threads = {1, 2, 4, 8};
};

Options
parseOptions(int argc, char** argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            options.quick = true;
        } else if (arg == "--json") {
            options.json = true;
        } else if (arg.rfind("--seed=", 0) == 0) {
            options.seed =
                static_cast<std::uint64_t>(std::stoull(arg.substr(7)));
        } else if (arg.rfind("--sizes=", 0) == 0) {
            options.sizesPerDomain =
                static_cast<Index>(std::stoi(arg.substr(8)));
        } else if (arg.rfind("--threads=", 0) == 0) {
            options.threads.clear();
            std::stringstream ss(arg.substr(10));
            std::string item;
            while (std::getline(ss, item, ',')) {
                if (item.empty() ||
                    item.find_first_not_of("0123456789") !=
                        std::string::npos) {
                    std::cerr << "--threads expects a comma-separated"
                                 " list of positive integers, got: "
                              << item << "\n";
                    std::exit(2);
                }
                const Index count =
                    static_cast<Index>(std::stoi(item));
                if (count < 1) {
                    std::cerr << "--threads values must be >= 1\n";
                    std::exit(2);
                }
                options.threads.push_back(count);
            }
        } else {
            std::cerr << "unknown flag: " << arg << "\n"
                      << "flags: --quick --json --seed=N --sizes=N "
                         "--threads=LIST\n";
            std::exit(2);
        }
    }
    if (options.threads.empty() || options.threads.front() != 1)
        options.threads.insert(options.threads.begin(), 1);
    return options;
}

/** One measured solve (fixed thread count, ISA level or precision). */
struct Run
{
    Index threads = 1;
    double solveSeconds = 0.0;
    double kktSeconds = 0.0;
    Count pcgIterations = 0;
    Index admmIterations = 0;
    Count refinementSweeps = 0;
    Count fp64Rescues = 0;
    Real objective = 0.0;
    double speedup = 1.0;
    HotPathProfile hotPath;
    std::string backend;  ///< first-order engine label (telemetry)
};

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << value;
    return os.str();
}

/** Best-of-`reps` solve of `qp` under the current global kernels. */
Run
measureSolve(const QpProblem& qp, const OsqpSettings& settings,
             int reps)
{
    Run run;
    run.solveSeconds = 1e100;
    for (int rep = 0; rep < reps; ++rep) {
        OsqpSolver solver(qp, settings);
        Timer timer;
        const OsqpResult result = solver.solve();
        const double seconds = timer.seconds();
        if (seconds < run.solveSeconds) {
            run.solveSeconds = seconds;
            run.kktSeconds = result.info.kktSolveTime;
            run.pcgIterations = result.info.pcgIterationsTotal;
            run.admmIterations = result.info.iterations;
            run.refinementSweeps = result.info.refinementSweepsTotal;
            run.fp64Rescues = result.info.fp64Rescues;
            run.objective = result.info.objective;
            run.hotPath = result.info.hotPath;
            run.backend = result.info.telemetry.backend;
        }
    }
    return run;
}

double
phaseMs(const HotPathProfile& hp, ProfilePhase phase)
{
    return static_cast<double>(hp[phase].nanoseconds) * 1e-6;
}

double
spmvMs(const HotPathProfile& hp)
{
    return phaseMs(hp, ProfilePhase::SpmvP) +
           phaseMs(hp, ProfilePhase::SpmvA) +
           phaseMs(hp, ProfilePhase::SpmvAt);
}

double
ratio(double reference, double value)
{
    return value > 0.0 ? reference / value : 0.0;
}

} // namespace

int
main(int argc, char** argv)
{
    const Options options = parseOptions(argc, argv);
    const Index sizes = options.quick ? 3 : options.sizesPerDomain;
    const int reps = options.quick ? 2 : 3;

    // The largest problem (by total non-zeros) of the reduced suite —
    // the instance where the parallel row-gather has the most rows to
    // split and serial overheads matter least.
    const std::vector<ProblemSpec> specs = benchmarkSuite(sizes);
    const ProblemSpec* largest = nullptr;
    QpProblem qp;
    Count best_nnz = -1;
    for (const ProblemSpec& spec : specs) {
        QpProblem candidate = generateProblem(
            spec.domain, spec.sizeParam, spec.seed + options.seed);
        if (candidate.totalNnz() > best_nnz) {
            best_nnz = candidate.totalNnz();
            largest = &spec;
            qp = std::move(candidate);
        }
    }
    if (largest == nullptr) {
        std::cerr << "empty benchmark suite\n";
        return 1;
    }

    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;

    // Sweep 1: thread counts at the active ISA level.
    std::vector<Run> runs;
    for (Index threads : options.threads) {
        NumThreadsScope scope(threads);
        Run run = measureSolve(qp, settings, reps);
        run.threads = threads;
        runs.push_back(run);
    }
    for (Run& run : runs)
        if (run.solveSeconds > 0.0)
            run.speedup = runs.front().solveSeconds / run.solveSeconds;

    // The solver is bitwise-deterministic across thread counts; a
    // drifting objective here means the deterministic reduction
    // contract broke.
    for (const Run& run : runs) {
        if (run.objective != runs.front().objective) {
            std::cerr << "objective drift at " << run.threads
                      << " threads: " << run.objective << " vs "
                      << runs.front().objective << "\n";
            return 1;
        }
    }

    // Sweep 2: single-thread solve at every supported ISA level.
    const std::vector<IsaLevel> levels = supportedIsaLevels();
    std::vector<Run> isa_runs;
    {
        NumThreadsScope scope(1);
        for (IsaLevel level : levels) {
            simd::forceIsaLevel(level);
            isa_runs.push_back(measureSolve(qp, settings, reps));
        }
        simd::resetIsaLevel();
    }
    const Run& isa_scalar = isa_runs.front();
    const Run& isa_best = isa_runs.back();

    // Sweep 3: fp64 vs mixed-fp32 at the default ISA level, 1 thread.
    std::vector<Run> precision_runs;
    {
        NumThreadsScope scope(1);
        precision_runs.push_back(measureSolve(qp, settings, reps));
        OsqpSettings mixed = settings;
        mixed.execution.precision = PrecisionMode::MixedFp32;
        precision_runs.push_back(measureSolve(qp, mixed, reps));
    }

    const std::string isa_detected = isaLevelName(detectedIsaLevel());
    const std::string isa_compiled = isaLevelName(compiledIsaLevel());
    const std::string isa_active =
        isaLevelName(simd::activeIsaLevel());

    if (options.json) {
        std::cout << "{\n"
                  << "  \"problem\": \""
                  << bench::jsonEscape(largest->name) << "\",\n"
                  << "  \"n\": " << qp.numVariables() << ",\n"
                  << "  \"m\": " << qp.numConstraints() << ",\n"
                  << "  \"nnz\": " << qp.totalNnz() << ",\n"
                  << "  \"seed\": " << options.seed << ",\n"
                  << "  \"isa_detected\": \"" << isa_detected
                  << "\",\n"
                  << "  \"isa_compiled\": \"" << isa_compiled
                  << "\",\n"
                  << "  \"isa_active\": \"" << isa_active << "\",\n"
                  << "  \"precision\": \""
                  << precisionModeName(PrecisionMode::Fp64) << "\",\n"
                  << "  \"backend\": \""
                  << bench::jsonEscape(runs.front().backend) << "\",\n"
                  << "  \"runs\": [\n";
        for (std::size_t i = 0; i < runs.size(); ++i) {
            const Run& run = runs[i];
            std::cout << "    {\"threads\": " << run.threads
                      << ", \"solve_seconds\": "
                      << formatDouble(run.solveSeconds, 6)
                      << ", \"kkt_seconds\": "
                      << formatDouble(run.kktSeconds, 6)
                      << ", \"pcg_iterations\": " << run.pcgIterations
                      << ", \"speedup\": "
                      << formatDouble(run.speedup, 3)
                      << ", \"hot_path\": " << run.hotPath.toJson()
                      << "}" << (i + 1 < runs.size() ? "," : "")
                      << "\n";
        }
        std::cout << "  ],\n"
                  << "  \"isa_runs\": [\n";
        for (std::size_t i = 0; i < isa_runs.size(); ++i) {
            const Run& run = isa_runs[i];
            std::cout << "    {\"isa\": \"" << isaLevelName(levels[i])
                      << "\", \"solve_seconds\": "
                      << formatDouble(run.solveSeconds, 6)
                      << ", \"kkt_seconds\": "
                      << formatDouble(run.kktSeconds, 6)
                      << ", \"pcg_iterations\": " << run.pcgIterations
                      << ", \"hot_path\": " << run.hotPath.toJson()
                      << "}" << (i + 1 < isa_runs.size() ? "," : "")
                      << "\n";
        }
        std::cout
            << "  ],\n"
            << "  \"simd_speedup\": {\"isa\": \""
            << isaLevelName(levels.back()) << "\", \"solve\": "
            << formatDouble(ratio(isa_scalar.solveSeconds,
                                  isa_best.solveSeconds),
                            3)
            << ", \"spmv\": "
            << formatDouble(ratio(spmvMs(isa_scalar.hotPath),
                                  spmvMs(isa_best.hotPath)),
                            3)
            << ", \"fused\": "
            << formatDouble(
                   ratio(phaseMs(isa_scalar.hotPath,
                                 ProfilePhase::FusedVectorOps),
                         phaseMs(isa_best.hotPath,
                                 ProfilePhase::FusedVectorOps)),
                   3)
            << ", \"precond\": "
            << formatDouble(
                   ratio(phaseMs(isa_scalar.hotPath,
                                 ProfilePhase::Precond),
                         phaseMs(isa_best.hotPath,
                                 ProfilePhase::Precond)),
                   3)
            << ", \"reduce\": "
            << formatDouble(
                   ratio(phaseMs(isa_scalar.hotPath,
                                 ProfilePhase::Reduction),
                         phaseMs(isa_best.hotPath,
                                 ProfilePhase::Reduction)),
                   3)
            << "},\n"
            << "  \"precision_runs\": [\n";
        for (std::size_t i = 0; i < precision_runs.size(); ++i) {
            const Run& run = precision_runs[i];
            const PrecisionMode mode = i == 0
                                           ? PrecisionMode::Fp64
                                           : PrecisionMode::MixedFp32;
            std::cout << "    {\"precision\": \""
                      << precisionModeName(mode)
                      << "\", \"solve_seconds\": "
                      << formatDouble(run.solveSeconds, 6)
                      << ", \"admm_iterations\": "
                      << run.admmIterations
                      << ", \"pcg_iterations\": " << run.pcgIterations
                      << ", \"refinement_sweeps\": "
                      << run.refinementSweeps
                      << ", \"fp64_rescues\": " << run.fp64Rescues
                      << ", \"objective\": "
                      << formatDouble(run.objective, 9) << "}"
                      << (i + 1 < precision_runs.size() ? "," : "")
                      << "\n";
        }
        std::cout << "  ]\n}\n";
        return 0;
    }

    std::cout << "# hot-path profile: " << largest->name
              << " (n=" << qp.numVariables()
              << ", m=" << qp.numConstraints()
              << ", nnz=" << qp.totalNnz()
              << "; host threads: " << hardwareConcurrency()
              << " hardware; isa " << isa_active << " of "
              << isa_detected << " detected)\n";
    const auto ms = [](double value) {
        return formatDouble(value, 2);
    };
    TextTable table({"threads", "solve_s", "kkt_s", "pcg_iters",
                     "speedup", "spmv_p_ms", "spmv_a_ms", "spmv_at_ms",
                     "fused_ms", "precond_ms", "reduce_ms"});
    for (const Run& run : runs) {
        const HotPathProfile& hp = run.hotPath;
        table.addRow({std::to_string(run.threads),
                      formatDouble(run.solveSeconds, 6),
                      formatDouble(run.kktSeconds, 6),
                      std::to_string(run.pcgIterations),
                      formatDouble(run.speedup, 2),
                      ms(phaseMs(hp, ProfilePhase::SpmvP)),
                      ms(phaseMs(hp, ProfilePhase::SpmvA)),
                      ms(phaseMs(hp, ProfilePhase::SpmvAt)),
                      ms(phaseMs(hp, ProfilePhase::FusedVectorOps)),
                      ms(phaseMs(hp, ProfilePhase::Precond)),
                      ms(phaseMs(hp, ProfilePhase::Reduction))});
    }
    table.print(std::cout);

    std::cout << "\n# ISA sweep (1 thread): per-phase speedup vs "
                 "forced-scalar kernels\n";
    TextTable isa_table({"isa", "solve_s", "kkt_s", "spmv_ms",
                         "fused_ms", "precond_ms", "reduce_ms",
                         "solve_x", "fused_x"});
    for (std::size_t i = 0; i < isa_runs.size(); ++i) {
        const Run& run = isa_runs[i];
        isa_table.addRow(
            {isaLevelName(levels[i]),
             formatDouble(run.solveSeconds, 6),
             formatDouble(run.kktSeconds, 6),
             ms(spmvMs(run.hotPath)),
             ms(phaseMs(run.hotPath, ProfilePhase::FusedVectorOps)),
             ms(phaseMs(run.hotPath, ProfilePhase::Precond)),
             ms(phaseMs(run.hotPath, ProfilePhase::Reduction)),
             formatDouble(
                 ratio(isa_scalar.solveSeconds, run.solveSeconds), 2),
             formatDouble(
                 ratio(phaseMs(isa_scalar.hotPath,
                               ProfilePhase::FusedVectorOps),
                       phaseMs(run.hotPath,
                               ProfilePhase::FusedVectorOps)),
                 2)});
    }
    isa_table.print(std::cout);

    std::cout << "\n# precision sweep (1 thread, default ISA)\n";
    TextTable prec_table({"precision", "solve_s", "admm_iters",
                          "pcg_iters", "refine_sweeps", "fp64_rescues",
                          "objective"});
    for (std::size_t i = 0; i < precision_runs.size(); ++i) {
        const Run& run = precision_runs[i];
        prec_table.addRow(
            {precisionModeName(i == 0 ? PrecisionMode::Fp64
                                      : PrecisionMode::MixedFp32),
             formatDouble(run.solveSeconds, 6),
             std::to_string(run.admmIterations),
             std::to_string(run.pcgIterations),
             std::to_string(run.refinementSweeps),
             std::to_string(run.fp64Rescues),
             formatDouble(run.objective, 9)});
    }
    prec_table.print(std::cout);
    return 0;
}
