/**
 * @file
 * Hot-path profile of the indirect (PCG) backend: solve the largest
 * generated suite problem at several thread counts and report wall
 * clock, speedup over serial, and the per-phase profiler counters
 * (SpMV passes, fused CG updates, preconditioner, reductions).
 *
 * The JSON output is the CI perf-smoke artifact: one object with the
 * problem shape and a "runs" array carrying a "hot_path" sub-object
 * per thread count.
 *
 * Flags:
 *   --quick         smaller problem / fewer reps (CI smoke)
 *   --json          JSON object on stdout (machine-readable artifact)
 *   --seed=N        generator seed offset (default 0)
 *   --sizes=N       suite sizes per domain to choose from (default 6)
 *   --threads=LIST  comma-separated thread counts (default 1,2,4,8)
 */

#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/rsqp.hpp"

namespace
{

using namespace rsqp;

struct Options
{
    bool quick = false;
    bool json = false;
    std::uint64_t seed = 0;
    Index sizesPerDomain = 6;
    std::vector<Index> threads = {1, 2, 4, 8};
};

Options
parseOptions(int argc, char** argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            options.quick = true;
        } else if (arg == "--json") {
            options.json = true;
        } else if (arg.rfind("--seed=", 0) == 0) {
            options.seed =
                static_cast<std::uint64_t>(std::stoull(arg.substr(7)));
        } else if (arg.rfind("--sizes=", 0) == 0) {
            options.sizesPerDomain =
                static_cast<Index>(std::stoi(arg.substr(8)));
        } else if (arg.rfind("--threads=", 0) == 0) {
            options.threads.clear();
            std::stringstream ss(arg.substr(10));
            std::string item;
            while (std::getline(ss, item, ',')) {
                if (item.empty() ||
                    item.find_first_not_of("0123456789") !=
                        std::string::npos) {
                    std::cerr << "--threads expects a comma-separated"
                                 " list of positive integers, got: "
                              << item << "\n";
                    std::exit(2);
                }
                const Index count =
                    static_cast<Index>(std::stoi(item));
                if (count < 1) {
                    std::cerr << "--threads values must be >= 1\n";
                    std::exit(2);
                }
                options.threads.push_back(count);
            }
        } else {
            std::cerr << "unknown flag: " << arg << "\n"
                      << "flags: --quick --json --seed=N --sizes=N "
                         "--threads=LIST\n";
            std::exit(2);
        }
    }
    if (options.threads.empty() || options.threads.front() != 1)
        options.threads.insert(options.threads.begin(), 1);
    return options;
}

/** One measured solve at a fixed thread count. */
struct Run
{
    Index threads = 1;
    double solveSeconds = 0.0;
    double kktSeconds = 0.0;
    Count pcgIterations = 0;
    Real objective = 0.0;
    double speedup = 1.0;
    HotPathProfile hotPath;
};

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << value;
    return os.str();
}

} // namespace

int
main(int argc, char** argv)
{
    const Options options = parseOptions(argc, argv);
    const Index sizes = options.quick ? 3 : options.sizesPerDomain;
    const int reps = options.quick ? 2 : 3;

    // The largest problem (by total non-zeros) of the reduced suite —
    // the instance where the parallel row-gather has the most rows to
    // split and serial overheads matter least.
    const std::vector<ProblemSpec> specs = benchmarkSuite(sizes);
    const ProblemSpec* largest = nullptr;
    QpProblem qp;
    Count best_nnz = -1;
    for (const ProblemSpec& spec : specs) {
        QpProblem candidate = generateProblem(
            spec.domain, spec.sizeParam, spec.seed + options.seed);
        if (candidate.totalNnz() > best_nnz) {
            best_nnz = candidate.totalNnz();
            largest = &spec;
            qp = std::move(candidate);
        }
    }
    if (largest == nullptr) {
        std::cerr << "empty benchmark suite\n";
        return 1;
    }

    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;

    std::vector<Run> runs;
    for (Index threads : options.threads) {
        NumThreadsScope scope(threads);
        Run run;
        run.threads = threads;
        run.solveSeconds = 1e100;
        for (int rep = 0; rep < reps; ++rep) {
            OsqpSolver solver(qp, settings);
            Timer timer;
            const OsqpResult result = solver.solve();
            const double seconds = timer.seconds();
            if (seconds < run.solveSeconds) {
                run.solveSeconds = seconds;
                run.kktSeconds = result.info.kktSolveTime;
                run.pcgIterations = result.info.pcgIterationsTotal;
                run.objective = result.info.objective;
                run.hotPath = result.info.hotPath;
            }
        }
        runs.push_back(run);
    }
    for (Run& run : runs)
        if (run.solveSeconds > 0.0)
            run.speedup = runs.front().solveSeconds / run.solveSeconds;

    // The solver is bitwise-deterministic across thread counts; a
    // drifting objective here means the deterministic reduction
    // contract broke.
    for (const Run& run : runs) {
        if (run.objective != runs.front().objective) {
            std::cerr << "objective drift at " << run.threads
                      << " threads: " << run.objective << " vs "
                      << runs.front().objective << "\n";
            return 1;
        }
    }

    if (options.json) {
        std::cout << "{\n"
                  << "  \"problem\": \""
                  << bench::jsonEscape(largest->name) << "\",\n"
                  << "  \"n\": " << qp.numVariables() << ",\n"
                  << "  \"m\": " << qp.numConstraints() << ",\n"
                  << "  \"nnz\": " << qp.totalNnz() << ",\n"
                  << "  \"seed\": " << options.seed << ",\n"
                  << "  \"runs\": [\n";
        for (std::size_t i = 0; i < runs.size(); ++i) {
            const Run& run = runs[i];
            std::cout << "    {\"threads\": " << run.threads
                      << ", \"solve_seconds\": "
                      << formatDouble(run.solveSeconds, 6)
                      << ", \"kkt_seconds\": "
                      << formatDouble(run.kktSeconds, 6)
                      << ", \"pcg_iterations\": " << run.pcgIterations
                      << ", \"speedup\": "
                      << formatDouble(run.speedup, 3)
                      << ", \"hot_path\": " << run.hotPath.toJson()
                      << "}" << (i + 1 < runs.size() ? "," : "")
                      << "\n";
        }
        std::cout << "  ]\n}\n";
        return 0;
    }

    std::cout << "# hot-path profile: " << largest->name
              << " (n=" << qp.numVariables()
              << ", m=" << qp.numConstraints()
              << ", nnz=" << qp.totalNnz()
              << "; host threads: " << hardwareConcurrency()
              << " hardware)\n";
    TextTable table({"threads", "solve_s", "kkt_s", "pcg_iters",
                     "speedup", "spmv_p_ms", "spmv_a_ms", "spmv_at_ms",
                     "fused_ms", "precond_ms", "reduce_ms"});
    for (const Run& run : runs) {
        const HotPathProfile& hp = run.hotPath;
        auto ms = [](const ProfilePhaseStats& stats) {
            return formatDouble(
                static_cast<double>(stats.nanoseconds) * 1e-6, 2);
        };
        table.addRow({std::to_string(run.threads),
                      formatDouble(run.solveSeconds, 6),
                      formatDouble(run.kktSeconds, 6),
                      std::to_string(run.pcgIterations),
                      formatDouble(run.speedup, 2),
                      ms(hp[ProfilePhase::SpmvP]),
                      ms(hp[ProfilePhase::SpmvA]),
                      ms(hp[ProfilePhase::SpmvAt]),
                      ms(hp[ProfilePhase::FusedVectorOps]),
                      ms(hp[ProfilePhase::Precond]),
                      ms(hp[ProfilePhase::Reduction])});
    }
    table.print(std::cout);
    return 0;
}
