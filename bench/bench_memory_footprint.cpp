/**
 * @file
 * On-chip memory ablation (paper Sec. 3.4): full vector duplication
 * versus compressed vector buffers across the benchmark, against the
 * U50's 28.4 MB budget. For the larger problems the compression is not
 * just faster to update — it is what makes the design fit at all.
 */

#include "bench_util.hpp"

using namespace rsqp;
using namespace rsqp::bench;

int
main(int argc, char** argv)
{
    BenchOptions options = parseOptions(argc, argv);
    if (options.sizesPerDomain == 6)
        options.sizesPerDomain = 5;

    TextTable table({"problem", "domain", "n+m", "dup_MB",
                     "compressed_MB", "ratio", "fits_dup",
                     "fits_compressed"});
    Index dup_misfits = 0;
    for (const ProblemSpec& spec :
         benchmarkSuite(options.sizesPerDomain)) {
        QpProblem qp = spec.generate();
        const Index dims = qp.numVariables() + qp.numConstraints();
        ruizEquilibrate(qp, 10);

        const ProblemCustomization baseline =
            baselineCustomization(qp, options.deviceC);
        CustomizeSettings cfg;
        cfg.c = options.deviceC;
        const ProblemCustomization custom = customizeProblem(qp, cfg);

        const OnChipMemoryEstimate dup =
            estimateOnChipMemory(baseline);
        const OnChipMemoryEstimate compressed =
            estimateOnChipMemory(custom);
        if (!fitsU50Memory(dup))
            ++dup_misfits;
        table.addRow({spec.name, toString(spec.domain),
                      std::to_string(dims),
                      formatFixed(dup.totalMb(), 2),
                      formatFixed(compressed.totalMb(), 2),
                      formatFixed(dup.totalMb() /
                                      std::max(compressed.totalMb(),
                                               1e-6),
                                  1),
                      fitsU50Memory(dup) ? "yes" : "NO",
                      fitsU50Memory(compressed) ? "yes" : "NO"});
    }
    emitTable(table, options,
              "On-chip memory: full duplication vs compressed CVB "
              "(U50 budget 28.4 MB)");
    std::cout << "problems where full duplication exceeds the U50 "
                 "budget: " << dup_misfits << "\n";
    return 0;
}
