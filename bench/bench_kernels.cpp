/**
 * @file
 * google-benchmark microbenchmarks of the customization-flow kernels:
 * sparsity encoding, LZW dictionary, scheduler, First-Fit CVB
 * compression, CSR SpMV and the simulated SpMV engine — plus a
 * forced-ISA sweep of the vectorized PCG kernels (dot, fused CG
 * updates, preconditioner apply, CSR SpMV) registered once per
 * supported kernel level so one invocation yields the scalar-vs-SIMD
 * comparison. The benchmark context records the detected, compiled
 * and active ISA levels for the JSON artifact.
 */

#include <benchmark/benchmark.h>

#include "arch/cpu_features.hpp"
#include "arch/program_builder.hpp"
#include "common/thread_pool.hpp"
#include "core/rsqp.hpp"
#include "linalg/simd_kernels.hpp"
#include "linalg/vector_ops.hpp"

namespace
{

using namespace rsqp;

CsrMatrix
benchMatrix(Index scale)
{
    const QpProblem qp = generateProblem(Domain::Svm, scale, 7);
    return CsrMatrix::fromCsc(qp.a);
}

void
BM_EncodeMatrix(benchmark::State& state)
{
    const CsrMatrix csr = benchMatrix(static_cast<Index>(state.range(0)));
    for (auto _ : state) {
        SparsityString str = encodeMatrix(csr, 64);
        benchmark::DoNotOptimize(str.encoded.data());
    }
    state.SetItemsProcessed(state.iterations() * csr.rows());
}
BENCHMARK(BM_EncodeMatrix)->Arg(50)->Arg(200);

void
BM_LzwDictionary(benchmark::State& state)
{
    const CsrMatrix csr = benchMatrix(static_cast<Index>(state.range(0)));
    const SparsityString str = encodeMatrix(csr, 64);
    for (auto _ : state) {
        auto dict = lzwDictionary(str.encoded);
        benchmark::DoNotOptimize(dict.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(str.length()));
}
BENCHMARK(BM_LzwDictionary)->Arg(50)->Arg(200);

void
BM_Scheduler(benchmark::State& state)
{
    const CsrMatrix csr = benchMatrix(static_cast<Index>(state.range(0)));
    const SparsityString str = encodeMatrix(csr, 64);
    StructureSearchSettings settings;
    settings.targetSize = 4;
    const StructureSet set = searchStructureSet(str, settings).set;
    for (auto _ : state) {
        Schedule schedule = scheduleString(str, set);
        benchmark::DoNotOptimize(schedule.slots.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(str.length()));
}
BENCHMARK(BM_Scheduler)->Arg(50)->Arg(200);

void
BM_StructureSearch(benchmark::State& state)
{
    const CsrMatrix csr = benchMatrix(static_cast<Index>(state.range(0)));
    const SparsityString str = encodeMatrix(csr, 64);
    for (auto _ : state) {
        StructureSearchSettings settings;
        settings.targetSize = 4;
        auto result = searchStructureSet(str, settings);
        benchmark::DoNotOptimize(&result);
    }
}
BENCHMARK(BM_StructureSearch)->Arg(50)->Arg(100);

void
BM_FirstFitCvb(benchmark::State& state)
{
    const CsrMatrix csr = benchMatrix(static_cast<Index>(state.range(0)));
    const SparsityString str = encodeMatrix(csr, 64);
    const StructureSet set = StructureSet::baseline(64);
    const Schedule schedule = scheduleString(str, set);
    const PackedMatrix packed = packMatrix(csr, str, schedule, set);
    const AccessRequirements req = buildAccessRequirements(packed);
    for (auto _ : state) {
        CvbPlan plan = compressFirstFit(req);
        benchmark::DoNotOptimize(plan.address.data());
    }
    state.SetItemsProcessed(state.iterations() * req.length);
}
BENCHMARK(BM_FirstFitCvb)->Arg(50)->Arg(200);

void
BM_CsrSpmv(benchmark::State& state)
{
    const CsrMatrix csr = benchMatrix(static_cast<Index>(state.range(0)));
    Rng rng(1);
    Vector x(static_cast<std::size_t>(csr.cols()));
    for (Real& v : x)
        v = rng.normal();
    Vector y;
    for (auto _ : state) {
        csr.spmv(x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * csr.nnz());
}
BENCHMARK(BM_CsrSpmv)->Arg(50)->Arg(200)->Arg(500);

void
BM_LdlFactor(benchmark::State& state)
{
    const QpProblem qp =
        generateProblem(Domain::Portfolio,
                        static_cast<Index>(state.range(0)), 7);
    Vector rho(static_cast<std::size_t>(qp.numConstraints()), 0.1);
    KktAssembler assembler(qp.pUpper, qp.a, 1e-6, rho);
    LdlFactorization ldl(assembler.kkt());
    for (auto _ : state) {
        const bool ok = ldl.factor(assembler.kkt());
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_LdlFactor)->Arg(100)->Arg(400);

void
BM_OsqpSolveIndirect(benchmark::State& state)
{
    const QpProblem qp = generateProblem(
        Domain::Lasso, static_cast<Index>(state.range(0)), 7);
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    for (auto _ : state) {
        OsqpSolver solver(qp, settings);
        OsqpResult result = solver.solve();
        benchmark::DoNotOptimize(result.x.data());
    }
}
BENCHMARK(BM_OsqpSolveIndirect)->Arg(20)->Arg(60);

void
BM_SimulatedSolve(benchmark::State& state)
{
    const QpProblem qp = generateProblem(
        Domain::Portfolio, static_cast<Index>(state.range(0)), 7);
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    for (auto _ : state) {
        CustomizeSettings custom;
        custom.c = 64;
        RsqpSolver solver(qp, settings, custom);
        RsqpResult result = solver.solve();
        benchmark::DoNotOptimize(result.x.data());
    }
}
BENCHMARK(BM_SimulatedSolve)->Arg(40);


void
BM_PackMatrix(benchmark::State& state)
{
    const CsrMatrix csr = benchMatrix(static_cast<Index>(state.range(0)));
    const SparsityString str = encodeMatrix(csr, 64);
    const StructureSet set = StructureSet::baseline(64);
    const Schedule schedule = scheduleString(str, set);
    for (auto _ : state) {
        PackedMatrix packed = packMatrix(csr, str, schedule, set);
        benchmark::DoNotOptimize(packed.packs.data());
    }
    state.SetItemsProcessed(state.iterations() * csr.nnz());
}
BENCHMARK(BM_PackMatrix)->Arg(50)->Arg(200);

void
BM_RuizEquilibrate(benchmark::State& state)
{
    const QpProblem qp = generateProblem(
        Domain::Lasso, static_cast<Index>(state.range(0)), 7);
    for (auto _ : state) {
        QpProblem copy = qp;
        Scaling scaling = ruizEquilibrate(copy, 10);
        benchmark::DoNotOptimize(scaling.d.data());
    }
    state.SetItemsProcessed(state.iterations() * qp.totalNnz());
}
BENCHMARK(BM_RuizEquilibrate)->Arg(50)->Arg(200);

void
BM_MachineVectorEngine(benchmark::State& state)
{
    // Throughput of the simulated vector engine (functional cost of
    // one axpby instruction on an n-length buffer).
    ArchConfig config;
    config.c = 64;
    config.structures = StructureSet::baseline(64);
    Machine machine(config);
    const Index n = static_cast<Index>(state.range(0));
    const Index v0 = machine.addVector(n);
    const Index v1 = machine.addVector(n);
    const Index hbm = machine.addHbmVector(Vector(
        static_cast<std::size_t>(n), 1.5));
    ProgramBuilder asmb;
    asmb.loadConst(0, 2.0);
    asmb.loadConst(1, 0.5);
    asmb.loadVec(v0, hbm);
    for (int k = 0; k < 64; ++k)
        asmb.vecAxpby(v1, 0, v0, 1, v0);
    asmb.halt();
    const Program program = asmb.finish();
    for (auto _ : state) {
        machine.resetStats();
        machine.run(program);
        benchmark::DoNotOptimize(machine.stats().totalCycles);
    }
    state.SetItemsProcessed(state.iterations() * 64 * n);
}
BENCHMARK(BM_MachineVectorEngine)->Arg(1024)->Arg(16384);

void
BM_ParallelDot(benchmark::State& state)
{
    // dot() thread scaling; range(0) is the thread count, range(1)
    // the vector length (above/below kParallelThreshold).
    NumThreadsScope scope(static_cast<Index>(state.range(0)));
    Rng rng(3);
    Vector x(static_cast<std::size_t>(state.range(1)));
    Vector y(x.size());
    for (Real& v : x)
        v = rng.normal();
    for (Real& v : y)
        v = rng.normal();
    for (auto _ : state) {
        const Real value = dot(x, y);
        benchmark::DoNotOptimize(value);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(x.size()));
}
BENCHMARK(BM_ParallelDot)
    ->Args({1, 1 << 20})
    ->Args({2, 1 << 20})
    ->Args({4, 1 << 20})
    ->Args({8, 1 << 20})
    ->Args({8, 4096});

void
BM_ParallelAxpy(benchmark::State& state)
{
    NumThreadsScope scope(static_cast<Index>(state.range(0)));
    Rng rng(4);
    Vector x(static_cast<std::size_t>(state.range(1)));
    Vector y(x.size());
    for (Real& v : x)
        v = rng.normal();
    for (Real& v : y)
        v = rng.normal();
    for (auto _ : state) {
        axpy(1.0 / 4096.0, x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(x.size()));
}
BENCHMARK(BM_ParallelAxpy)
    ->Args({1, 1 << 20})
    ->Args({4, 1 << 20})
    ->Args({8, 1 << 20});

void
BM_ThreadedMachineSpmv(benchmark::State& state)
{
    // The simulated SpMV engine with the lane-chain fan-out enabled;
    // range(0) is ArchConfig::numThreads.
    const CsrMatrix csr = benchMatrix(200);
    ArchConfig config;
    config.c = 64;
    config.structures = StructureSet::baseline(64);
    config.execution.numThreads = static_cast<Index>(state.range(0));
    Machine machine(config);
    const SparsityString str = encodeMatrix(csr, config.c);
    const Schedule schedule = scheduleString(str, config.structures);
    const PackedMatrix packed =
        packMatrix(csr, str, schedule, config.structures);
    const Index mat = machine.addMatrix(
        packed, fullDuplicationPlan(config.c, csr.cols()), "M");
    const Index v_in = machine.addVector(csr.cols());
    const Index v_out = machine.addVector(csr.rows());
    const Index hbm_in = machine.addHbmVector(
        Vector(static_cast<std::size_t>(csr.cols()), 1.0));
    ProgramBuilder asmb;
    asmb.loadVec(v_in, hbm_in);
    asmb.vecDup(mat, v_in);
    asmb.spmv(v_out, mat);
    asmb.halt();
    const Program program = asmb.finish();
    for (auto _ : state) {
        machine.run(program);
        benchmark::DoNotOptimize(machine.stats().totalCycles);
    }
    state.SetItemsProcessed(state.iterations() * csr.nnz());
}
BENCHMARK(BM_ThreadedMachineSpmv)->Arg(1)->Arg(4)->Arg(8);

void
BM_SolveBatch(benchmark::State& state)
{
    // Independent QP instances fanned across host threads; range(0)
    // is the batch width passed to solveBatch.
    std::vector<QpProblem> problems;
    for (int i = 0; i < 8; ++i)
        problems.push_back(generateProblem(
            allDomains()[static_cast<std::size_t>(i) % 6], 16,
            static_cast<std::uint64_t>(50 + i)));
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    CustomizeSettings custom;
    custom.c = 32;
    for (auto _ : state) {
        auto results = solveBatch(problems, settings, custom,
                                  static_cast<Index>(state.range(0)));
        benchmark::DoNotOptimize(results.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(problems.size()));
}
BENCHMARK(BM_SolveBatch)->Arg(1)->Arg(4)->Arg(8);

void
BM_SolutionPolish(benchmark::State& state)
{
    const QpProblem qp = generateProblem(
        Domain::Portfolio, static_cast<Index>(state.range(0)), 7);
    OsqpSettings settings;
    OsqpSolver solver(qp, settings);
    OsqpResult result = solver.solve();
    for (auto _ : state) {
        OsqpResult copy = result;
        PolishReport report = polishSolution(qp, settings, copy);
        benchmark::DoNotOptimize(&report);
    }
}
BENCHMARK(BM_SolutionPolish)->Arg(60)->Arg(200);

/**
 * Forced-ISA sweep of the vectorized PCG kernels. Registered from
 * main() once per level in supportedIsaLevels(), so the benchmark
 * names carry the level ("ForcedIsaDot/scalar", ".../avx2", ...) and
 * one run compares every level on this host. Single-threaded: the
 * sweep isolates lane-level speedup from thread scaling.
 */
void
registerForcedIsaBenchmarks(IsaLevel level)
{
    const std::string suffix = isaLevelName(level);
    constexpr Index kLen = 1 << 20;

    benchmark::RegisterBenchmark(
        ("ForcedIsaDot/" + suffix).c_str(),
        [level](benchmark::State& state) {
            NumThreadsScope scope(1);
            simd::forceIsaLevel(level);
            Rng rng(3);
            Vector x(kLen), y(kLen);
            for (Real& v : x)
                v = rng.normal();
            for (Real& v : y)
                v = rng.normal();
            for (auto _ : state) {
                const Real value = dot(x, y);
                benchmark::DoNotOptimize(value);
            }
            simd::resetIsaLevel();
            state.SetItemsProcessed(state.iterations() *
                                    static_cast<long>(x.size()));
        });

    benchmark::RegisterBenchmark(
        ("ForcedIsaFusedUpdate/" + suffix).c_str(),
        [level](benchmark::State& state) {
            // x -= alpha p fused with r·Kp — the CG descent update.
            NumThreadsScope scope(1);
            simd::forceIsaLevel(level);
            Rng rng(5);
            Vector p(kLen), x(kLen), kp(kLen), r(kLen);
            for (Vector* vec : {&p, &x, &kp, &r})
                for (Real& v : *vec)
                    v = rng.normal();
            for (auto _ : state) {
                const Real value =
                    xMinusAlphaPDot(1e-9, p, x, kp, r);
                benchmark::DoNotOptimize(value);
            }
            simd::resetIsaLevel();
            state.SetItemsProcessed(state.iterations() *
                                    static_cast<long>(p.size()));
        });

    benchmark::RegisterBenchmark(
        ("ForcedIsaPrecondApply/" + suffix).c_str(),
        [level](benchmark::State& state) {
            NumThreadsScope scope(1);
            simd::forceIsaLevel(level);
            Rng rng(7);
            Vector inv_diag(kLen), r(kLen), d(kLen);
            for (Real& v : inv_diag)
                v = 1.0 + std::abs(rng.normal());
            for (Real& v : r)
                v = rng.normal();
            for (auto _ : state) {
                const Real value = precondApplyDot(inv_diag, r, d);
                benchmark::DoNotOptimize(value);
            }
            simd::resetIsaLevel();
            state.SetItemsProcessed(state.iterations() *
                                    static_cast<long>(r.size()));
        });

    benchmark::RegisterBenchmark(
        ("ForcedIsaCsrSpmv/" + suffix).c_str(),
        [level](benchmark::State& state) {
            NumThreadsScope scope(1);
            simd::forceIsaLevel(level);
            const CsrMatrix csr = benchMatrix(200);
            Rng rng(9);
            Vector x(static_cast<std::size_t>(csr.cols()));
            for (Real& v : x)
                v = rng.normal();
            Vector y;
            for (auto _ : state) {
                csr.spmv(x, y);
                benchmark::DoNotOptimize(y.data());
            }
            simd::resetIsaLevel();
            state.SetItemsProcessed(state.iterations() * csr.nnz());
        });
}

} // namespace

int
main(int argc, char** argv)
{
    benchmark::AddCustomContext("rsqp_isa_detected",
                                isaLevelName(detectedIsaLevel()));
    benchmark::AddCustomContext("rsqp_isa_compiled",
                                isaLevelName(compiledIsaLevel()));
    benchmark::AddCustomContext("rsqp_isa_active",
                                isaLevelName(simd::activeIsaLevel()));
    benchmark::AddCustomContext(
        "rsqp_precision_default",
        precisionModeName(PrecisionMode::Fp64));
    for (IsaLevel level : supportedIsaLevels())
        registerForcedIsaBenchmarks(level);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
