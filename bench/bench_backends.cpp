/**
 * @file
 * First-order backend shoot-out over the benchmark suite: plain ADMM
 * (fixed penalty), Nesterov-accelerated ADMM, restarted PDHG, and the
 * Auto selector driver, all on identical settings.
 *
 * Rho adaptation is disabled for the sweep so the penalty/step-size
 * policy under test is each engine's own: PDHG adapts its primal
 * weight at restarts, accelerated ADMM restarts its momentum, and
 * plain ADMM is the fixed-penalty first-order baseline.
 *
 * The JSON output is a CI perf-smoke artifact. With --check the exit
 * code enforces the two backend-subsystem gates:
 *
 *  1. the selector picks PDHG on at least one problem where PDHG
 *     converged and plain ADMM needed >= 1.5x its iterations;
 *  2. PDHG converges on at least one suite problem where plain ADMM
 *     needed >= 2x its iterations.
 *
 * Flags:
 *   --json          JSON object on stdout (machine-readable artifact)
 *   --check         exit non-zero unless both gates above hold
 *   --quick         smaller caps for CI smoke
 *   --sizes=N       suite sizes per domain (default 6)
 *   --max-dim=N     skip problems with n + m above this (default 6000)
 *   --max-iter=N    per-solve iteration budget (default 20000)
 *   --time-limit=S  per-solve wall-clock budget in seconds (default 5)
 */

#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "backends/backend_driver.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

namespace
{

using namespace rsqp;

struct Options
{
    bool json = false;
    bool check = false;
    Index sizesPerDomain = 6;
    Index maxDim = 6000;
    Index maxIter = 20000;
    Real timeLimit = 5.0;
};

Options
parseOptions(int argc, char** argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            options.json = true;
        } else if (arg == "--check") {
            options.check = true;
        } else if (arg == "--quick") {
            options.maxDim = 5000;
            options.maxIter = 10000;
            options.timeLimit = 3.0;
        } else if (arg.rfind("--sizes=", 0) == 0) {
            options.sizesPerDomain =
                static_cast<Index>(std::stoi(arg.substr(8)));
        } else if (arg.rfind("--max-dim=", 0) == 0) {
            options.maxDim =
                static_cast<Index>(std::stoi(arg.substr(10)));
        } else if (arg.rfind("--max-iter=", 0) == 0) {
            options.maxIter =
                static_cast<Index>(std::stoi(arg.substr(11)));
        } else if (arg.rfind("--time-limit=", 0) == 0) {
            options.timeLimit = std::stod(arg.substr(13));
        } else {
            std::cerr << "unknown flag: " << arg << "\n"
                      << "flags: --json --check --quick --sizes=N "
                         "--max-dim=N --max-iter=N --time-limit=S\n";
            std::exit(2);
        }
    }
    return options;
}

/** One backend's run on one problem. */
struct BackendRun
{
    BackendKind kind = BackendKind::Admm;
    SolveStatus status = SolveStatus::Unsolved;
    Index iterations = 0;
    double solveSeconds = 0.0;
    Count restarts = 0;
    Count switches = 0;
    Real objective = 0.0;
    std::string finishedOn;  ///< telemetry.backend (Auto may switch)
};

/** One problem's full sweep. */
struct ProblemRow
{
    std::string name;
    Index n = 0;
    Index m = 0;
    Count nnz = 0;
    BackendFeatures features;
    BackendKind selectorChoice = BackendKind::Admm;
    std::vector<BackendRun> runs;

    const BackendRun* find(BackendKind kind) const
    {
        for (const BackendRun& run : runs)
            if (run.kind == kind)
                return &run;
        return nullptr;
    }
};

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << value;
    return os.str();
}

BackendRun
runBackend(const QpProblem& qp, const OsqpSettings& base,
           BackendKind kind)
{
    OsqpSettings settings = base;
    settings.firstOrder.method = kind;
    std::unique_ptr<QpBackend> backend =
        makeBackend(qp, std::move(settings));
    const OsqpResult result = backend->solve();

    BackendRun run;
    run.kind = kind;
    run.status = result.info.status;
    run.iterations = result.info.iterations;
    run.solveSeconds = result.info.solveTime;
    run.restarts = result.info.telemetry.restarts;
    run.switches = result.info.telemetry.backendSwitches;
    run.objective = result.info.objective;
    run.finishedOn = result.info.telemetry.backend;
    return run;
}

Real
iterationRatio(const BackendRun* admm, const BackendRun* pdhg)
{
    if (admm == nullptr || pdhg == nullptr || pdhg->iterations <= 0)
        return 0.0;
    if (pdhg->status != SolveStatus::Solved)
        return 0.0;
    return static_cast<Real>(admm->iterations) /
           static_cast<Real>(pdhg->iterations);
}

} // namespace

int
main(int argc, char** argv)
{
    const Options options = parseOptions(argc, argv);

    OsqpSettings base;
    base.maxIter = options.maxIter;
    base.timeLimit = options.timeLimit;
    base.adaptiveRho = false;  // see file comment

    const std::vector<BackendKind> kinds = {
        BackendKind::Admm, BackendKind::AdmmAccelerated,
        BackendKind::Pdhg, BackendKind::Auto};

    std::vector<ProblemRow> rows;
    for (const ProblemSpec& spec :
         benchmarkSuite(options.sizesPerDomain)) {
        const QpProblem qp = spec.generate();
        if (qp.numVariables() + qp.numConstraints() > options.maxDim)
            continue;

        ProblemRow row;
        row.name = spec.name;
        row.n = qp.numVariables();
        row.m = qp.numConstraints();
        row.nnz = qp.totalNnz();
        row.features = computeBackendFeatures(qp);
        row.selectorChoice =
            chooseBackend(row.features, base.firstOrder.selector);
        for (BackendKind kind : kinds)
            row.runs.push_back(runBackend(qp, base, kind));
        rows.push_back(std::move(row));
    }
    if (rows.empty()) {
        std::cerr << "no problems under --max-dim=" << options.maxDim
                  << "\n";
        return 1;
    }

    // Gate evaluation (see file comment).
    Index selector_pdhg_15x = 0;
    Index pdhg_2x = 0;
    for (const ProblemRow& row : rows) {
        const Real ratio = iterationRatio(row.find(BackendKind::Admm),
                                          row.find(BackendKind::Pdhg));
        if (ratio >= 2.0)
            ++pdhg_2x;
        if (row.selectorChoice == BackendKind::Pdhg && ratio >= 1.5)
            ++selector_pdhg_15x;
    }
    const bool gate_selector = selector_pdhg_15x >= 1;
    const bool gate_2x = pdhg_2x >= 1;

    if (options.json) {
        std::cout << "{\n"
                  << "  \"schema\": \"rsqp-bench-backends-v1\",\n"
                  << "  \"config\": {\"sizes_per_domain\": "
                  << options.sizesPerDomain
                  << ", \"max_dim\": " << options.maxDim
                  << ", \"max_iter\": " << options.maxIter
                  << ", \"time_limit\": "
                  << formatDouble(options.timeLimit, 3)
                  << ", \"adaptive_rho\": false, \"backends\": [";
        for (std::size_t k = 0; k < kinds.size(); ++k)
            std::cout << "\"" << backendKindName(kinds[k]) << "\""
                      << (k + 1 < kinds.size() ? ", " : "");
        std::cout << "]},\n"
                  << "  \"problems\": [\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const ProblemRow& row = rows[i];
            std::cout << "    {\"name\": \""
                      << bench::jsonEscape(row.name) << "\", \"n\": "
                      << row.n << ", \"m\": " << row.m
                      << ", \"nnz\": " << row.nnz
                      << ", \"equality_fraction\": "
                      << formatDouble(row.features.equalityFraction, 3)
                      << ", \"tall_ratio\": "
                      << formatDouble(row.features.tallRatio, 3)
                      << ", \"selector_choice\": \""
                      << backendKindName(row.selectorChoice)
                      << "\", \"admm_over_pdhg_iterations\": "
                      << formatDouble(
                             iterationRatio(
                                 row.find(BackendKind::Admm),
                                 row.find(BackendKind::Pdhg)),
                             3)
                      << ", \"runs\": [";
            for (std::size_t r = 0; r < row.runs.size(); ++r) {
                const BackendRun& run = row.runs[r];
                std::cout
                    << "{\"backend\": \"" << backendKindName(run.kind)
                    << "\", \"status\": \""
                    << statusToString(run.status)
                    << "\", \"iterations\": " << run.iterations
                    << ", \"solve_seconds\": "
                    << formatDouble(run.solveSeconds, 6)
                    << ", \"restarts\": " << run.restarts
                    << ", \"backend_switches\": " << run.switches
                    << ", \"finished_on\": \""
                    << bench::jsonEscape(run.finishedOn)
                    << "\", \"objective\": "
                    << formatDouble(run.objective, 9) << "}"
                    << (r + 1 < row.runs.size() ? ", " : "");
            }
            std::cout << "]}" << (i + 1 < rows.size() ? "," : "")
                      << "\n";
        }
        std::cout << "  ],\n"
                  << "  \"summary\": {\"problems\": " << rows.size()
                  << ", \"selector_pdhg_1_5x_wins\": "
                  << selector_pdhg_15x
                  << ", \"pdhg_2x_wins\": " << pdhg_2x
                  << ", \"gates\": {\"selector_pdhg_1_5x\": "
                  << (gate_selector ? "true" : "false")
                  << ", \"pdhg_2x\": " << (gate_2x ? "true" : "false")
                  << "}}\n"
                  << "}\n";
    } else {
        std::cout << "# backend shoot-out (fixed-penalty sweep, "
                  << "max_iter=" << options.maxIter << ", time_limit="
                  << formatDouble(options.timeLimit, 1) << "s)\n";
        TextTable table({"problem", "n+m", "eq", "m/n", "selector",
                         "admm_it", "accel_it", "pdhg_it", "auto_it",
                         "auto_on", "admm/pdhg"});
        for (const ProblemRow& row : rows) {
            const BackendRun* admm = row.find(BackendKind::Admm);
            const BackendRun* accel =
                row.find(BackendKind::AdmmAccelerated);
            const BackendRun* pdhg = row.find(BackendKind::Pdhg);
            const BackendRun* auto_run = row.find(BackendKind::Auto);
            const auto iters = [](const BackendRun* run) {
                if (run == nullptr)
                    return std::string("-");
                if (run->status != SolveStatus::Solved)
                    return std::string(statusToString(run->status));
                return std::to_string(run->iterations);
            };
            table.addRow(
                {row.name, std::to_string(row.n + row.m),
                 formatDouble(row.features.equalityFraction, 2),
                 formatDouble(row.features.tallRatio, 2),
                 backendKindName(row.selectorChoice), iters(admm),
                 iters(accel), iters(pdhg), iters(auto_run),
                 auto_run != nullptr ? auto_run->finishedOn : "-",
                 formatDouble(iterationRatio(admm, pdhg), 2)});
        }
        table.print(std::cout);
        std::cout << "\n# gates: selector_pdhg_1_5x="
                  << (gate_selector ? "pass" : "FAIL")
                  << " (" << selector_pdhg_15x << " problems), pdhg_2x="
                  << (gate_2x ? "pass" : "FAIL") << " (" << pdhg_2x
                  << " problems)\n";
    }

    if (options.check && !(gate_selector && gate_2x)) {
        std::cerr << "backend perf gates failed: selector_pdhg_1_5x="
                  << selector_pdhg_15x << " pdhg_2x=" << pdhg_2x
                  << "\n";
        return 1;
    }
    return 0;
}
