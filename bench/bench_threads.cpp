/**
 * @file
 * Host-threading scaling study: wall clock and speedup versus thread
 * count for the three threaded hot paths — the simulated SpMV engine
 * (lane-chain fan-out), the parallel vector kernels (dot / axpy), and
 * solveBatch over independent QP instances.
 *
 * Flags:
 *   --quick         small sizes / few reps (CI smoke)
 *   --csv           CSV instead of the aligned table
 *   --json          JSON array on stdout (machine-readable artifact)
 *   --threads=LIST  comma-separated thread counts (default 1,2,4,8)
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "arch/program_builder.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/rsqp.hpp"
#include "linalg/vector_ops.hpp"

namespace
{

using namespace rsqp;

struct Options
{
    bool quick = false;
    bool csv = false;
    bool json = false;
    std::vector<Index> threads = {1, 2, 4, 8};
};

Options
parseOptions(int argc, char** argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            options.quick = true;
        } else if (arg == "--csv") {
            options.csv = true;
        } else if (arg == "--json") {
            options.json = true;
        } else if (arg.rfind("--threads=", 0) == 0) {
            options.threads.clear();
            std::stringstream ss(arg.substr(10));
            std::string item;
            while (std::getline(ss, item, ',')) {
                if (item.empty() ||
                    item.find_first_not_of("0123456789") !=
                        std::string::npos) {
                    std::cerr << "--threads expects a comma-separated"
                                 " list of positive integers, got: "
                              << item << "\n";
                    std::exit(2);
                }
                const Index count =
                    static_cast<Index>(std::stoi(item));
                if (count < 1) {
                    std::cerr << "--threads values must be >= 1\n";
                    std::exit(2);
                }
                options.threads.push_back(count);
            }
        } else {
            std::cerr << "unknown flag: " << arg << "\n"
                      << "flags: --quick --csv --json --threads=LIST\n";
            std::exit(2);
        }
    }
    if (options.threads.empty() || options.threads.front() != 1)
        options.threads.insert(options.threads.begin(), 1);
    return options;
}

/** Best-of-reps wall clock of fn(), in seconds. */
template <typename Fn>
double
timeBest(int reps, Fn&& fn)
{
    double best = 1e100;
    for (int r = 0; r < reps; ++r) {
        Timer timer;
        fn();
        best = std::min(best, timer.seconds());
    }
    return best;
}

struct Row
{
    std::string kernel;
    Index threads = 1;
    double seconds = 0.0;
    double speedup = 1.0;
};

/** Simulated SpMV: one large matrix, several applications per run. */
std::vector<Row>
benchSpmv(const Options& options)
{
    const Index scale = options.quick ? 120 : 400;
    const int spmvs = 8;
    const int reps = options.quick ? 3 : 8;

    const QpProblem qp = generateProblem(Domain::Svm, scale, 7);
    const CsrMatrix csr = CsrMatrix::fromCsc(qp.a);

    std::vector<Row> rows;
    for (Index threads : options.threads) {
        ArchConfig config;
        config.c = 64;
        config.structures = StructureSet::baseline(64);
        config.execution.numThreads = threads;
        Machine machine(config);

        const SparsityString str = encodeMatrix(csr, config.c);
        const Schedule schedule =
            scheduleString(str, config.structures);
        const PackedMatrix packed =
            packMatrix(csr, str, schedule, config.structures);
        const CvbPlan plan =
            fullDuplicationPlan(config.c, csr.cols());
        const Index mat = machine.addMatrix(packed, plan, "M");
        const Index v_in = machine.addVector(csr.cols());
        const Index v_out = machine.addVector(csr.rows());
        const Index hbm_in = machine.addHbmVector(
            Vector(static_cast<std::size_t>(csr.cols()), 1.0));

        ProgramBuilder asmb;
        asmb.loadVec(v_in, hbm_in);
        asmb.vecDup(mat, v_in);
        for (int k = 0; k < spmvs; ++k)
            asmb.spmv(v_out, mat);
        asmb.halt();
        const Program program = asmb.finish();

        Row row;
        row.kernel = "machine_spmv";
        row.threads = threads;
        row.seconds = timeBest(reps, [&] { machine.run(program); });
        rows.push_back(row);
    }
    return rows;
}

/** Parallel vector kernels on a large dense vector. */
std::vector<Row>
benchVectorOps(const Options& options)
{
    const Index n = options.quick ? (1 << 18) : (1 << 22);
    const int reps = options.quick ? 3 : 8;
    const int inner = 16;

    Rng rng(11);
    Vector x(static_cast<std::size_t>(n));
    Vector y(static_cast<std::size_t>(n));
    for (Real& v : x)
        v = rng.normal();
    for (Real& v : y)
        v = rng.normal();

    std::vector<Row> rows;
    for (Index threads : options.threads) {
        NumThreadsScope scope(threads);
        Row dot_row;
        dot_row.kernel = "vector_dot";
        dot_row.threads = threads;
        volatile Real sink = 0.0;
        dot_row.seconds = timeBest(reps, [&] {
            for (int k = 0; k < inner; ++k)
                sink = sink + dot(x, y);
        });
        rows.push_back(dot_row);

        Row axpy_row;
        axpy_row.kernel = "vector_axpy";
        axpy_row.threads = threads;
        axpy_row.seconds = timeBest(reps, [&] {
            for (int k = 0; k < inner; ++k)
                axpy(1.0 / 1024.0, x, y);
        });
        rows.push_back(axpy_row);
    }
    return rows;
}

/** solveBatch over independent QP instances. */
std::vector<Row>
benchBatch(const Options& options)
{
    const Index size = options.quick ? 16 : 40;
    const int reps = options.quick ? 2 : 3;

    std::vector<QpProblem> problems;
    const auto& domains = allDomains();
    for (int i = 0; i < 8; ++i)
        problems.push_back(generateProblem(
            domains[static_cast<std::size_t>(i) % domains.size()], size,
            static_cast<std::uint64_t>(40 + i)));

    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    CustomizeSettings custom;
    custom.c = 32;

    std::vector<Row> rows;
    for (Index threads : options.threads) {
        Row row;
        row.kernel = "solve_batch_8";
        row.threads = threads;
        row.seconds = timeBest(reps, [&] {
            auto results = solveBatch(problems, settings, custom,
                                      threads);
            if (results.empty())
                std::abort();
        });
        rows.push_back(row);
    }
    return rows;
}

void
fillSpeedups(std::vector<Row>& rows)
{
    std::map<std::string, double> serial;
    for (const Row& row : rows)
        if (row.threads == 1)
            serial[row.kernel] = row.seconds;
    for (Row& row : rows)
        if (row.seconds > 0.0 && serial.count(row.kernel) != 0)
            row.speedup = serial[row.kernel] / row.seconds;
}

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << value;
    return os.str();
}

} // namespace

int
main(int argc, char** argv)
{
    const Options options = parseOptions(argc, argv);

    std::vector<Row> rows = benchSpmv(options);
    const std::vector<Row> vec_rows = benchVectorOps(options);
    rows.insert(rows.end(), vec_rows.begin(), vec_rows.end());
    const std::vector<Row> batch_rows = benchBatch(options);
    rows.insert(rows.end(), batch_rows.begin(), batch_rows.end());
    fillSpeedups(rows);

    if (options.json) {
        std::cout << "[\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row& row = rows[i];
            std::cout << "  {\"kernel\": \""
                      << bench::jsonEscape(row.kernel)
                      << "\", \"threads\": " << row.threads
                      << ", \"seconds\": "
                      << formatDouble(row.seconds, 6)
                      << ", \"speedup\": "
                      << formatDouble(row.speedup, 3) << "}"
                      << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        std::cout << "]\n";
        return 0;
    }

    TextTable table({"kernel", "threads", "seconds", "speedup"});
    for (const Row& row : rows)
        table.addRow({row.kernel, std::to_string(row.threads),
                      formatDouble(row.seconds, 6),
                      formatDouble(row.speedup, 2)});
    std::cout << "# threaded hot-path scaling (host threads: "
              << hardwareConcurrency() << " hardware)\n";
    if (options.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
