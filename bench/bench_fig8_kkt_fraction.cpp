/**
 * @file
 * Fig. 8 reproduction: percentage of CPU solver time spent solving the
 * KKT system (Algorithm 2) with the indirect PCG backend — the paper
 * measures >= ~95 % on most problems, motivating the accelerator.
 */

#include "bench_util.hpp"

using namespace rsqp;
using namespace rsqp::bench;

int
main(int argc, char** argv)
{
    const BenchOptions options = parseOptions(argc, argv);
    TextTable table({"problem", "domain", "nnz", "iters", "pcg_iters",
                     "solve_ms", "kkt_ms", "kkt_pct"});

    RunningStats pct_stats;
    for (const ProblemSpec& spec :
         benchmarkSuite(options.sizesPerDomain)) {
        const QpProblem qp = spec.generate();
        OsqpSolver solver(qp, benchSettings(options));
        const OsqpResult result = solver.solve();
        const double pct = result.info.solveTime > 0.0
            ? 100.0 * result.info.kktSolveTime / result.info.solveTime
            : 0.0;
        pct_stats.add(pct);
        table.addRow({spec.name, toString(spec.domain),
                      std::to_string(qp.totalNnz()),
                      std::to_string(result.info.iterations),
                      std::to_string(result.info.pcgIterationsTotal),
                      formatFixed(result.info.solveTime * 1e3, 2),
                      formatFixed(result.info.kktSolveTime * 1e3, 2),
                      formatFixed(pct, 1)});
    }
    emitTable(table, options,
              "Fig. 8: % of CPU solver time in the KKT solve");
    std::cout << "kkt% mean " << formatFixed(pct_stats.mean(), 1)
              << "  min " << formatFixed(pct_stats.min(), 1) << "  max "
              << formatFixed(pct_stats.max(), 1) << "\n"
              << "paper: >= ~92-99 % across the benchmark\n";
    return 0;
}
