/**
 * @file
 * Table 3 reproduction: micro-architectural performance/area trade-off
 * on an SVM instance with ~20k non-zeros. For each candidate C{S} the
 * harness reports the modeled fmax, the eta gain over the same-width
 * baseline, the SpMV throughput, and estimated DSP/FF/LUT — the same
 * columns as the paper. The paper's own eleven candidates are also
 * evaluated verbatim for a side-by-side comparison.
 */

#include "bench_util.hpp"

using namespace rsqp;
using namespace rsqp::bench;

namespace
{

void
addPoint(TextTable& table, const DesignPoint& point)
{
    table.addRow({point.name, formatFixed(point.fmaxMhz, 0),
                  formatFixed(point.deltaEta, 3),
                  formatFixed(point.spmvPerUs, 3),
                  std::to_string(point.resources.dsp),
                  std::to_string(point.resources.ff),
                  std::to_string(point.resources.lut)});
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchOptions options = parseOptions(argc, argv);

    // SVM instance with ~20616 nnz like the paper's Sec. 5.3 study.
    QpProblem qp = generateProblem(Domain::Svm, 155, 4242);
    std::cout << "# SVM instance: n = " << qp.numVariables() << ", m = "
              << qp.numConstraints() << ", nnz = " << qp.totalNnz()
              << " (paper instance: 20616 nnz)\n\n";
    ruizEquilibrate(qp, 10);

    // (a) Searched design-space family (our flow's candidates).
    TextTable searched({"Architecture", "fmax", "dEta", "SpMV/us",
                        "DSP", "FF", "LUT"});
    for (const DesignPoint& point : exploreDesignSpace(qp))
        addPoint(searched, point);
    emitTable(searched, options,
              "Table 3 (searched candidates): performance vs resources");

    // (b) The paper's own eleven candidates, evaluated by our models.
    TextTable paper({"Architecture", "fmax", "dEta", "SpMV/us", "DSP",
                     "FF", "LUT"});
    const std::vector<std::string> paper_names = {
        "16{1e}",        "16{16a1e}",     "32{32a4d1f}",
        "16{16a2d1e}",   "64{64a4e1g}",   "32{4d1f}",
        "32{32a4d2e1f}", "32{4d2e1f}",    "32{16b4d1f}",
        "64{4e1g}",      "64{8d4e1g}",
    };
    for (const std::string& name : paper_names) {
        const StructureSet set = StructureSet::parse(name);
        std::vector<std::string> patterns = set.patterns();
        const bool is_baseline = patterns.size() == 1;
        addPoint(paper, evaluateDesignPoint(qp, set.c(), patterns,
                                            !is_baseline));
    }
    emitTable(paper, options,
              "Table 3 (paper candidates): our models on the paper's "
              "design points");
    std::cout << "paper reference rows (fmax MHz / SpMV/us / DSP):\n"
              << "  16{e}=300/0.048/80   16{16a1e}=276/0.084/80\n"
              << "  32{32a4d1f}=173/0.130/160  64{64a4e1g}=121/0.144/320\n"
              << "  32{4d1f}=300/0.150/160     64{8d4e1g}=251/0.240/320\n";
    return 0;
}
