/**
 * @file
 * Ablation of the two customization mechanisms: E_p (MAC-tree
 * structure search) and E_c (CVB compression) enabled separately and
 * together, per domain. This decomposes the Fig. 10 speedup into the
 * paper's two contributions (Sec. 3.6's two bullet goals).
 */

#include <map>

#include "bench_util.hpp"

using namespace rsqp;
using namespace rsqp::bench;

int
main(int argc, char** argv)
{
    BenchOptions options = parseOptions(argc, argv);
    if (options.sizesPerDomain == 6)
        options.sizesPerDomain = 4;
    const OsqpSettings settings = benchSettings(options);

    TextTable table({"problem", "domain", "base_ms", "ep_only_x",
                     "ec_only_x", "both_x"});
    RunningStats ep_stats, ec_stats, both_stats;

    for (const ProblemSpec& spec :
         benchmarkSuite(options.sizesPerDomain)) {
        const QpProblem qp = spec.generate();

        auto run = [&](bool customize_structures, bool compress_cvb) {
            CustomizeSettings cfg;
            cfg.c = options.deviceC;
            cfg.customizeStructures = customize_structures;
            cfg.compressCvb = compress_cvb;
            RsqpSolver solver(qp, settings, cfg);
            return solver.solve().deviceSeconds;
        };

        const Real base = run(false, false);
        const Real ep_only = run(true, false);
        const Real ec_only = run(false, true);
        const Real both = run(true, true);

        ep_stats.add(base / ep_only);
        ec_stats.add(base / ec_only);
        both_stats.add(base / both);
        table.addRow({spec.name, toString(spec.domain),
                      formatFixed(base * 1e3, 3),
                      formatFixed(base / ep_only, 2),
                      formatFixed(base / ec_only, 2),
                      formatFixed(base / both, 2)});
    }
    emitTable(table, options,
              "Ablation: E_p-only vs E_c-only vs full customization "
              "(speedup over baseline)");
    std::cout << "mean speedups: E_p-only "
              << formatFixed(ep_stats.mean(), 2) << "x, E_c-only "
              << formatFixed(ec_stats.mean(), 2) << "x, both "
              << formatFixed(both_stats.mean(), 2) << "x\n"
              << "the mechanisms are super-additive: each alone is "
                 "bottlenecked by the\nother's overhead (Amdahl), "
                 "so only the combination delivers the Fig. 10 "
                 "gain\n";
    return 0;
}
