/**
 * @file
 * Table 2 reproduction: evaluation platform details, plus the U50
 * resource budget the customized designs must fit.
 */

#include "bench_util.hpp"

using namespace rsqp;
using namespace rsqp::bench;

int
main(int argc, char** argv)
{
    const BenchOptions options = parseOptions(argc, argv);
    TextTable table({"Device", "Model", "Peak Throughput",
                     "Lithography", "TDP"});
    for (const DeviceSpec& spec : platformTable())
        table.addRow({spec.device, spec.model,
                      formatFixed(spec.peakTeraflops, 1) + " teraflops",
                      std::to_string(spec.lithographyNm) + " nm",
                      formatFixed(spec.tdpWatts, 0) + " W"});
    emitTable(table, options, "Table 2: platform details");

    const FpgaBudget budget = u50Budget();
    std::cout << "U50 budget: " << budget.dsp << " DSPs, "
              << formatFixed(budget.onChipMemoryMb, 1)
              << " MB on-chip memory, " << formatFixed(budget.hbmGb, 0)
              << " GB HBM\n";
    return 0;
}
