/**
 * @file
 * Million-request traffic-replay soak harness for the async service
 * API and its weighted-fair admission plane.
 *
 * A seeded synthetic trace mixes three client populations:
 *
 *   MPC chains            Realtime    bursty chains of small control
 *                                     QPs re-solved parametrically
 *   lasso sweeps          Interactive regularization-path sweeps
 *   portfolio rebalances  Batch       near-simultaneous bursts sized
 *                                     past the admission queue, the
 *                                     deliberate overload component
 *
 * The trace replays open-loop against a multi-core SolverService:
 * requests are submitted at their scheduled arrival times through
 * submitAsync() regardless of how the service is keeping up, each
 * completion callback stamps a preallocated per-request record, and
 * latency is measured from the *scheduled* arrival — queueing and
 * shedding delays are never hidden by a closed feedback loop.
 *
 * Reported per class: exact p50/p99/p99.9 latency over solved
 * requests, goodput (solved / submitted), shed/rejected/expired
 * counts, and error-budget consumption against per-class SLO targets.
 *
 * The exit code doubles as the CI gate under --check: zero lost
 * completions (every submission resolves its callback exactly once),
 * exactly-once accounting across the terminal counters, Realtime
 * isolation under Batch overload (zero Realtime sheds, Batch sheds
 * observed, Realtime p99 within --p99-bound), and the per-class
 * rsqp_service_class_* series present in the metrics text.
 *
 * Flags:
 *   --quick         small trace (CI smoke; default is >= 1M requests)
 *   --json          JSON object on stdout (schema rsqp-bench-soak-v1)
 *   --check         enforce the gates via the exit code
 *   --seed=N        trace and value-perturbation seed (default 0)
 *   --requests=N    total trace size (default 1000000, quick 8000)
 *   --rate=R        open-loop arrival rate in requests/s
 *                   (default 25000, quick 10000)
 *   --cores=N       fleet size (default: up to 4, never more than
 *                   the machine's CPU count minus one)
 *   --p99-bound=S   Realtime p99 latency gate in seconds (default 0.5)
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rsqp_api.hpp"

namespace
{

using namespace rsqp;
using Clock = std::chrono::steady_clock;

/** Default fleet size: up to four cores, but never oversubscribing
 *  the machine — modeled cores beyond the physical CPU count would
 *  time-slice each other and the latency isolation the gates assert
 *  would measure scheduler contention instead of admission policy. */
unsigned
defaultCoreCount()
{
    const unsigned hardware =
        std::max(1u, std::thread::hardware_concurrency());
    return std::min(4u, hardware > 1 ? hardware - 1 : 1u);
}

struct Options
{
    bool quick = false;
    bool json = false;
    bool check = false;
    std::uint64_t seed = 0;
    std::size_t requests = 1'000'000;
    double ratePerSecond = 25'000.0;
    unsigned cores = defaultCoreCount();
    double p99BoundSeconds = 0.5;
};

Options
parseOptions(int argc, char** argv)
{
    Options options;
    bool requestsSet = false;
    bool rateSet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            options.quick = true;
        } else if (arg == "--json") {
            options.json = true;
        } else if (arg == "--check") {
            options.check = true;
        } else if (arg.rfind("--seed=", 0) == 0) {
            options.seed =
                static_cast<std::uint64_t>(std::stoull(arg.substr(7)));
        } else if (arg.rfind("--requests=", 0) == 0) {
            options.requests =
                static_cast<std::size_t>(std::stoull(arg.substr(11)));
            requestsSet = true;
        } else if (arg.rfind("--rate=", 0) == 0) {
            options.ratePerSecond = std::stod(arg.substr(7));
            rateSet = true;
        } else if (arg.rfind("--cores=", 0) == 0) {
            options.cores =
                static_cast<unsigned>(std::stoul(arg.substr(8)));
        } else if (arg.rfind("--p99-bound=", 0) == 0) {
            options.p99BoundSeconds = std::stod(arg.substr(12));
        } else {
            std::cerr << "unknown flag: " << arg << "\n"
                      << "flags: --quick --json --check --seed=N "
                         "--requests=N --rate=R --cores=N "
                         "--p99-bound=S\n";
            std::exit(2);
        }
    }
    if (options.quick && !requestsSet)
        options.requests = 8'000;
    if (options.quick && !rateSet)
        options.ratePerSecond = 2'000.0;
    return options;
}

/** Same structure, new values: request r against one session. */
QpProblem
perturbValues(const QpProblem& base, std::size_t variant)
{
    QpProblem out = base;
    const Real scale = 1.0 + 0.02 * static_cast<Real>(variant);
    const Real shift = 0.05 * static_cast<Real>(variant + 1);
    for (Real& v : out.q)
        v = v * scale + shift;
    return out;
}

/** One scheduled arrival of the synthetic trace. */
struct TraceEvent
{
    double arrivalSeconds = 0.0;
    std::uint32_t session = 0;
    std::uint32_t variant = 0;
    AdmissionClass cls = AdmissionClass::Interactive;
};

/** Completion slot, preallocated one per request: the callback only
 *  ever writes its own slot, so recording is lock- and
 *  allocation-free on the hot path. */
struct Record
{
    Clock::time_point scheduled;
    double latencySeconds = 0.0;
    double queueWaitSeconds = 0.0;
    double serviceSeconds = 0.0;
    SolveStatus status = SolveStatus::Unsolved;
    AdmissionClass cls = AdmissionClass::Interactive;
};

/** Trace shape of one client population. */
struct Population
{
    AdmissionClass cls;
    std::size_t groupSize;     ///< requests per chain/sweep/burst
    double gapFraction;        ///< intra-group gap over mean spacing
    std::vector<std::uint32_t> sessions;  ///< alternated per group
};

/** Exact percentile over a sorted sample (nearest-rank). */
double
sortedPercentile(const std::vector<double>& sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double rank =
        std::ceil(q * static_cast<double>(sorted.size()));
    const std::size_t index = static_cast<std::size_t>(
        std::max(1.0, std::min(rank,
                               static_cast<double>(sorted.size()))));
    return sorted[index - 1];
}

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << value;
    return os.str();
}

/** Per-class SLO targets of the report (goodput fractions). */
double
sloTarget(AdmissionClass cls)
{
    switch (cls) {
    case AdmissionClass::Realtime: return 0.95;
    case AdmissionClass::Interactive: return 0.80;
    case AdmissionClass::Batch: return 0.25;
    }
    return 0.0;
}

} // namespace

int
main(int argc, char** argv)
{
    const Options options = parseOptions(argc, argv);

    // One session per problem structure; small structures so the
    // parametric fast path and stream interleaving both engage.
    // Sessions serialize their own requests (per-session FIFO), so
    // Realtime gets four structures: an MPC chain occupies a single
    // session, and more control loops means less head-of-line
    // blocking inside any one of them.
    // Control nx expands to n = 10 * (nx + nx/2) variables over the
    // MPC horizon, so small state counts keep the Realtime QPs tiny.
    std::vector<QpProblem> bases;
    bases.push_back(generateProblem(Domain::Control, 2, options.seed));
    bases.push_back(
        generateProblem(Domain::Control, 3, options.seed + 1));
    bases.push_back(
        generateProblem(Domain::Control, 4, options.seed + 2));
    bases.push_back(
        generateProblem(Domain::Control, 5, options.seed + 3));
    bases.push_back(
        generateProblem(Domain::Lasso, 20, options.seed + 4));
    bases.push_back(
        generateProblem(Domain::Lasso, 24, options.seed + 5));
    bases.push_back(
        generateProblem(Domain::Portfolio, 25, options.seed + 6));
    bases.push_back(
        generateProblem(Domain::Portfolio, 30, options.seed + 7));

    constexpr std::size_t kVariants = 4;
    std::vector<std::vector<QpProblem>> variants(bases.size());
    for (std::size_t s = 0; s < bases.size(); ++s)
        for (std::size_t v = 0; v < kVariants; ++v)
            variants[s].push_back(perturbValues(bases[s], v));

    // Population mix: 30% Realtime MPC chains, 30% Interactive lasso
    // sweeps, 40% Batch portfolio rebalances in bursts sized past the
    // admission queue — the deliberate overload that --check's
    // isolation gates measure Realtime against.
    const std::vector<Population> populations = {
        {AdmissionClass::Realtime, 16, 0.25, {0, 1, 2, 3}},
        {AdmissionClass::Interactive, 25, 0.5, {4, 5}},
        {AdmissionClass::Batch, 160, 0.01, {6, 7}},
    };
    const std::vector<double> shares = {0.3, 0.3, 0.4};

    std::vector<TraceEvent> events;
    events.reserve(options.requests + 256);
    const double duration = static_cast<double>(options.requests) /
                            options.ratePerSecond;
    Rng rng(options.seed);
    for (std::size_t p = 0; p < populations.size(); ++p) {
        const Population& pop = populations[p];
        const std::size_t target = static_cast<std::size_t>(
            std::ceil(shares[p] *
                      static_cast<double>(options.requests)));
        const std::size_t groups = std::max<std::size_t>(
            1, (target + pop.groupSize - 1) / pop.groupSize);
        const std::size_t count = groups * pop.groupSize;
        const double meanSpacing =
            duration / static_cast<double>(count);
        const double gap = meanSpacing * pop.gapFraction;
        const double groupSpacing =
            duration / static_cast<double>(groups);
        for (std::size_t g = 0; g < groups; ++g) {
            // Jittered group starts keep bursts from phase-locking
            // across populations while staying fully seeded.
            const double start =
                (static_cast<double>(g) + rng.uniform() * 0.9) *
                groupSpacing;
            const std::uint32_t session =
                pop.sessions[g % pop.sessions.size()];
            for (std::size_t r = 0; r < pop.groupSize; ++r) {
                TraceEvent event;
                event.arrivalSeconds =
                    start + gap * static_cast<double>(r);
                event.session = session;
                event.variant = static_cast<std::uint32_t>(
                    rng.uniformIndex(kVariants));
                event.cls = pop.cls;
                events.push_back(event);
            }
        }
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  return a.arrivalSeconds < b.arrivalSeconds;
              });
    const std::size_t total = events.size();

    ServiceConfig serviceConfig;
    serviceConfig.maxQueueDepth = 64;
    serviceConfig.execution.numThreads = 1;
    serviceConfig.fleet.coreCount = options.cores;
    serviceConfig.fleet.policy = PlacementPolicy::Affinity;
    serviceConfig.fleet.slotsPerCore = 1;
    serviceConfig.fleet.affinityQueueBound = 2;
    // Narrow streams: a launched stream runs to completion, so its
    // width is unpreemptible head-of-line latency for every Realtime
    // arrival behind it.
    serviceConfig.fleet.interleaveWidth = 2;
    // The isolation story is structural, not deadline-driven: a short
    // Realtime queue bounds how much backlog a solved Realtime request
    // can ever have waited behind, a dominant Realtime weight bounds
    // how much other-class work interleaves ahead of it, and Batch is
    // left bounded only by the global queue — its bursts fill the
    // queue end to end, and higher classes keep their admission
    // headroom by shedding the newest Batch job on arrival.
    auto& classes = serviceConfig.admission.classes;
    classes[static_cast<std::size_t>(AdmissionClass::Realtime)]
        .weight = 32;
    classes[static_cast<std::size_t>(AdmissionClass::Realtime)]
        .maxQueueDepth = 5;
    classes[static_cast<std::size_t>(AdmissionClass::Interactive)]
        .maxQueueDepth = 16;
    classes[static_cast<std::size_t>(AdmissionClass::Batch)]
        .maxQueueDepth = 0;
    SolverService service(serviceConfig);

    SessionConfig sessionConfig;
    sessionConfig.custom.c = 16;
    sessionConfig.osqp.maxIter = 300;
    std::vector<SessionId> sessions;
    for (std::size_t s = 0; s < bases.size(); ++s)
        sessions.push_back(service.openSession(sessionConfig));

    // Warmup outside the measured window: one synchronous solve per
    // (session, variant) populates the customization cache and the
    // parametric fast path, so the replay measures steady-state
    // serving latency rather than one-time compilation. The handful
    // of warmup solves stay in the service counters (the accounting
    // gate still balances); harness-side gates use the callback
    // counter, which only the replay touches.
    for (std::size_t s = 0; s < sessions.size(); ++s)
        for (std::size_t v = 0; v < kVariants; ++v)
            service.solve(sessions[s], variants[s][v]);

    // Open-loop replay: one pacing thread submits every event at its
    // scheduled wall time; falling behind shortens the next sleep
    // instead of stretching the trace.
    std::vector<Record> records(total);
    std::atomic<std::size_t> callbacks{0};
    const Clock::time_point start = Clock::now();
    Timer wall;
    for (std::size_t i = 0; i < total; ++i) {
        const TraceEvent& event = events[i];
        Record& record = records[i];
        record.cls = event.cls;
        record.scheduled =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            event.arrivalSeconds));
        if (record.scheduled - Clock::now() >
            std::chrono::microseconds(200))
            std::this_thread::sleep_until(record.scheduled);
        SubmitOptions submitOptions;
        submitOptions.admissionClass = event.cls;
        Record* slot = &record;
        service.submitAsync(
            sessions[event.session],
            variants[event.session][event.variant], submitOptions,
            [slot, &callbacks](SessionResult result) {
                slot->latencySeconds =
                    std::chrono::duration<double>(Clock::now() -
                                                  slot->scheduled)
                        .count();
                slot->queueWaitSeconds =
                    result.telemetry.queueWaitSeconds;
                slot->serviceSeconds = result.telemetry.setupSeconds +
                                       result.telemetry.solveSeconds;
                slot->status = result.status;
                callbacks.fetch_add(1, std::memory_order_relaxed);
            });
    }
    service.waitIdle();
    const double wallSeconds = wall.seconds();

    const ServiceStats stats = service.stats();
    const std::string metricsText = service.metricsText();

    // Exact per-class latency distributions over solved requests,
    // plus the queue-wait / service-time decomposition that tells an
    // overloaded class apart from a slow one.
    struct ClassReport
    {
        std::vector<double> solvedLatencies;
        double queueWaitSum = 0.0;
        double serviceSum = 0.0;
        std::size_t recordedSolved = 0;

        double meanQueueWait() const
        {
            return recordedSolved > 0
                       ? queueWaitSum /
                             static_cast<double>(recordedSolved)
                       : 0.0;
        }
        double meanService() const
        {
            return recordedSolved > 0
                       ? serviceSum /
                             static_cast<double>(recordedSolved)
                       : 0.0;
        }
    };
    std::vector<ClassReport> reports(kAdmissionClassCount);
    for (const Record& record : records) {
        if (record.status != SolveStatus::Solved)
            continue;
        ClassReport& report =
            reports[static_cast<std::size_t>(record.cls)];
        report.solvedLatencies.push_back(record.latencySeconds);
        report.queueWaitSum += record.queueWaitSeconds;
        report.serviceSum += record.serviceSeconds;
        ++report.recordedSolved;
    }
    for (ClassReport& report : reports)
        std::sort(report.solvedLatencies.begin(),
                  report.solvedLatencies.end());

    const std::size_t lost = total - callbacks.load();
    const Count accounted = stats.completed + stats.rejected +
                            stats.cancelled + stats.shed +
                            stats.expired + stats.shutdownDrained;
    const ClassStats& realtime = stats.of(AdmissionClass::Realtime);
    const ClassStats& batch = stats.of(AdmissionClass::Batch);
    const double realtimeP99 = sortedPercentile(
        reports[static_cast<std::size_t>(AdmissionClass::Realtime)]
            .solvedLatencies,
        0.99);

    const bool gateZeroLost = lost == 0;
    const bool gateAccounted = accounted == stats.submitted;
    const bool gateRealtimeNeverShed = realtime.shed == 0;
    const bool gateBatchShedUnderOverload = batch.shed > 0;
    const bool gateRealtimeP99 =
        realtime.solved > 0 && realtimeP99 <= options.p99BoundSeconds;
    const bool gateClassSeries =
        metricsText.find("rsqp_service_class_solved_total{"
                         "class=\"realtime\"}") != std::string::npos &&
        metricsText.find("rsqp_service_class_solved_total{"
                         "class=\"batch\"}") != std::string::npos &&
        metricsText.find("rsqp_service_class_queue_depth{"
                         "class=\"interactive\"}") !=
            std::string::npos &&
        metricsText.find("rsqp_service_class_retry_after_us") !=
            std::string::npos;

    auto classRow = [&](AdmissionClass cls) {
        struct Row
        {
            const char* name;
            const ClassStats* stats;
            double goodput;
            double p50;
            double p99;
            double p999;
            double meanQueueWait;
            double meanService;
            double target;
            double budgetUsed;
        };
        const ClassStats& slice = stats.of(cls);
        const ClassReport& report =
            reports[static_cast<std::size_t>(cls)];
        Row row;
        row.name = admissionClassName(cls);
        row.stats = &slice;
        row.goodput =
            slice.submitted > 0
                ? static_cast<double>(slice.solved) /
                      static_cast<double>(slice.submitted)
                : 0.0;
        row.p50 = sortedPercentile(report.solvedLatencies, 0.5);
        row.p99 = sortedPercentile(report.solvedLatencies, 0.99);
        row.p999 = sortedPercentile(report.solvedLatencies, 0.999);
        row.meanQueueWait = report.meanQueueWait();
        row.meanService = report.meanService();
        row.target = sloTarget(cls);
        // Error budget: the fraction of the allowed miss rate
        // (1 - target) this run consumed.
        row.budgetUsed =
            row.target < 1.0
                ? (1.0 - row.goodput) / (1.0 - row.target)
                : 0.0;
        return row;
    };

    if (options.json) {
        std::cout << "{\n  \"schema\": \"rsqp-bench-soak-v1\",\n"
                  << "  \"config\": {\"seed\": " << options.seed
                  << ", \"requests\": " << total
                  << ", \"rate_per_s\": "
                  << formatDouble(options.ratePerSecond, 1)
                  << ", \"cores\": " << options.cores
                  << ", \"quick\": "
                  << (options.quick ? "true" : "false")
                  << ", \"p99_bound_seconds\": "
                  << formatDouble(options.p99BoundSeconds, 4)
                  << "},\n"
                  << "  \"trace\": {\"structures\": " << bases.size()
                  << ", \"duration_seconds\": "
                  << formatDouble(duration, 4) << "},\n"
                  << "  \"totals\": {\"submitted\": "
                  << stats.submitted
                  << ", \"callbacks\": " << callbacks.load()
                  << ", \"lost\": " << lost
                  << ", \"completed\": " << stats.completed
                  << ", \"rejected\": " << stats.rejected
                  << ", \"shed\": " << stats.shed
                  << ", \"cancelled\": " << stats.cancelled
                  << ", \"expired\": " << stats.expired
                  << ", \"wall_seconds\": "
                  << formatDouble(wallSeconds, 4) << "},\n"
                  << "  \"classes\": [";
        bool first = true;
        for (AdmissionClass cls :
             {AdmissionClass::Realtime, AdmissionClass::Interactive,
              AdmissionClass::Batch}) {
            const auto row = classRow(cls);
            std::cout << (first ? "\n" : ",\n")
                      << "    {\"class\": \"" << row.name
                      << "\", \"submitted\": " << row.stats->submitted
                      << ", \"solved\": " << row.stats->solved
                      << ", \"rejected\": " << row.stats->rejected
                      << ", \"shed\": " << row.stats->shed
                      << ", \"expired\": " << row.stats->expired
                      << ", \"goodput\": "
                      << formatDouble(row.goodput, 4)
                      << ", \"p50_ms\": "
                      << formatDouble(row.p50 * 1e3, 3)
                      << ", \"p99_ms\": "
                      << formatDouble(row.p99 * 1e3, 3)
                      << ", \"p999_ms\": "
                      << formatDouble(row.p999 * 1e3, 3)
                      << ", \"mean_queue_wait_ms\": "
                      << formatDouble(row.meanQueueWait * 1e3, 3)
                      << ", \"mean_service_ms\": "
                      << formatDouble(row.meanService * 1e3, 3)
                      << ", \"slo_target\": "
                      << formatDouble(row.target, 2)
                      << ", \"error_budget_used\": "
                      << formatDouble(row.budgetUsed, 4) << "}";
            first = false;
        }
        std::cout << "\n  ],\n  \"gates\": {\"zero_lost\": "
                  << (gateZeroLost ? "true" : "false")
                  << ", \"accounted\": "
                  << (gateAccounted ? "true" : "false")
                  << ", \"realtime_never_shed\": "
                  << (gateRealtimeNeverShed ? "true" : "false")
                  << ", \"batch_shed_under_overload\": "
                  << (gateBatchShedUnderOverload ? "true" : "false")
                  << ", \"realtime_p99_within_bound\": "
                  << (gateRealtimeP99 ? "true" : "false")
                  << ", \"realtime_p99_seconds\": "
                  << formatDouble(realtimeP99, 4)
                  << ", \"class_series_exposed\": "
                  << (gateClassSeries ? "true" : "false")
                  << "}\n}\n";
    } else {
        std::cout << "# soak: " << total << " requests open-loop at "
                  << formatDouble(options.ratePerSecond, 0)
                  << " req/s, " << options.cores << " cores, seed "
                  << options.seed << ", wall "
                  << formatDouble(wallSeconds, 2) << " s\n";
        TextTable table({"class", "submitted", "solved", "goodput",
                         "shed", "rejected", "p50_ms", "p99_ms",
                         "p999_ms", "qwait_ms", "svc_ms",
                         "budget_used"});
        for (AdmissionClass cls :
             {AdmissionClass::Realtime, AdmissionClass::Interactive,
              AdmissionClass::Batch}) {
            const auto row = classRow(cls);
            table.addRow({row.name,
                          std::to_string(row.stats->submitted),
                          std::to_string(row.stats->solved),
                          formatDouble(row.goodput, 3),
                          std::to_string(row.stats->shed),
                          std::to_string(row.stats->rejected),
                          formatDouble(row.p50 * 1e3, 2),
                          formatDouble(row.p99 * 1e3, 2),
                          formatDouble(row.p999 * 1e3, 2),
                          formatDouble(row.meanQueueWait * 1e3, 2),
                          formatDouble(row.meanService * 1e3, 2),
                          formatDouble(row.budgetUsed, 3)});
        }
        table.print(std::cout);
        std::cout << "lost " << lost << "  realtime_shed "
                  << realtime.shed << "  batch_shed " << batch.shed
                  << "  realtime_p99_s "
                  << formatDouble(realtimeP99, 4) << " (bound "
                  << formatDouble(options.p99BoundSeconds, 2)
                  << ")\n";
    }

    if (!options.check)
        return 0;
    int failures = 0;
    if (!gateZeroLost)
        ++failures;
    if (!gateAccounted)
        ++failures;
    if (!gateRealtimeNeverShed)
        ++failures;
    if (!gateBatchShedUnderOverload)
        ++failures;
    if (!gateRealtimeP99)
        ++failures;
    if (!gateClassSeries)
        ++failures;
    return failures;
}
