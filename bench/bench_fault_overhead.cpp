/**
 * @file
 * Fault-tolerance overhead study on the Fig. 7 benchmark suite: wall
 * clock of the ADMM solve with the numerical watchdog disabled
 * (legacy behavior) versus enabled (default), plus a third pass with
 * seeded soft-error injection to demonstrate detection/recovery. The
 * acceptance bar is a median watchdog overhead below 2% with
 * injection disabled.
 *
 * Flags:
 *   --quick     tiny suite / few reps (CI smoke)
 *   --sizes=N   sizes per domain (1..20)
 *   --csv       CSV instead of the aligned table
 *   --json      JSON object on stdout (machine-readable artifact)
 *   --seed=N    fault-injection seed (default 42)
 *   --rate=X    faults per streamed word (default 1e-4)
 */

#include <algorithm>
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/rsqp.hpp"
#include "linalg/vector_ops.hpp"

namespace
{

using namespace rsqp;

struct Options
{
    bool quick = false;
    bool csv = false;
    bool json = false;
    Index sizesPerDomain = 4;
    std::uint64_t seed = 42;
    Real rate = 1e-4;
};

Options
parseOptions(int argc, char** argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            options.quick = true;
            options.sizesPerDomain = 2;
        } else if (arg == "--csv") {
            options.csv = true;
        } else if (arg == "--json") {
            options.json = true;
        } else if (arg.rfind("--sizes=", 0) == 0) {
            options.sizesPerDomain =
                static_cast<Index>(std::stoi(arg.substr(8)));
        } else if (arg.rfind("--seed=", 0) == 0) {
            options.seed =
                static_cast<std::uint64_t>(std::stoull(arg.substr(7)));
        } else if (arg.rfind("--rate=", 0) == 0) {
            options.rate = std::stod(arg.substr(7));
        } else {
            std::cerr << "unknown flag: " << arg << "\n"
                      << "flags: --quick --csv --json --sizes=N "
                         "--seed=N --rate=X\n";
            std::exit(2);
        }
    }
    return options;
}

OsqpSettings
baseSettings(const Options& options)
{
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    settings.maxIter = options.quick ? 500 : 2000;
    return settings;
}

/** Accumulate solves until ~30 ms or `cap` reps; mean seconds. */
double
timeSolve(const QpProblem& qp, const OsqpSettings& settings, int cap,
          SolveStatus* status_out = nullptr)
{
    int reps = 0;
    double total = 0.0;
    while (reps < cap && total < 0.03) {
        OsqpSolver solver(qp, settings);
        Timer timer;
        const OsqpResult result = solver.solve();
        total += timer.seconds();
        ++reps;
        if (status_out != nullptr)
            *status_out = result.info.status;
    }
    return total / reps;
}

struct Row
{
    std::string name;
    double legacySeconds = 0.0;
    double guardedSeconds = 0.0;
    double overheadPercent = 0.0;
    std::string injectedStatus;
    Count faultsInjected = 0;
    Index recoveryEvents = 0;
};

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << value;
    return os.str();
}

} // namespace

int
main(int argc, char** argv)
{
    const Options options = parseOptions(argc, argv);
    const int reps = options.quick ? 2 : 5;

    std::vector<Row> rows;
    std::vector<double> overheads;
    Index nonTyped = 0, nonFinite = 0;

    // The reduced suite's log-spaced endpoints include each domain's
    // largest instance; keep the smoke run fast by skipping anything
    // beyond the nnz budget in quick mode.
    const Count max_nnz = options.quick ? 20000 : (1LL << 62);

    for (const ProblemSpec& spec :
         benchmarkSuite(options.sizesPerDomain)) {
        const QpProblem qp = spec.generate();
        if (qp.totalNnz() > max_nnz)
            continue;
        Row row;
        row.name = spec.name;

        // Legacy: no watchdog, no checkpointing, no injection.
        OsqpSettings legacy = baseSettings(options);
        legacy.faultTolerance.watchdog = false;
        legacy.faultTolerance.stallChecks = 0;
        row.legacySeconds = timeSolve(qp, legacy, reps);

        // Guarded: the default fault-tolerance layer, injection off.
        const OsqpSettings guarded = baseSettings(options);
        row.guardedSeconds = timeSolve(qp, guarded, reps);
        row.overheadPercent = row.legacySeconds > 0.0
            ? 100.0 * (row.guardedSeconds - row.legacySeconds) /
                row.legacySeconds
            : 0.0;
        overheads.push_back(row.overheadPercent);

        // Injected: seeded soft errors; every solve must stay typed
        // and finite (the end-to-end detection/recovery proof).
        OsqpSettings injected = baseSettings(options);
        injected.faultInjection.enabled = true;
        injected.faultInjection.seed = options.seed;
        injected.faultInjection.ratePerWord = options.rate;
        OsqpSolver solver(qp, injected);
        const OsqpResult result = solver.solve();
        row.injectedStatus = statusToString(result.info.status);
        row.recoveryEvents =
            static_cast<Index>(result.info.recovery.events.size());
        if (result.info.status == SolveStatus::Unsolved)
            ++nonTyped;
        if (hasNonFinite(result.x) || hasNonFinite(result.y) ||
            hasNonFinite(result.z))
            ++nonFinite;
        rows.push_back(row);
    }

    std::vector<double> sorted = overheads;
    std::sort(sorted.begin(), sorted.end());
    const double median =
        sorted.empty() ? 0.0 : sorted[sorted.size() / 2];

    if (options.json) {
        std::cout << "{\n  \"problems\": [\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row& row = rows[i];
            std::cout << "    {\"name\": \""
                      << bench::jsonEscape(row.name)
                      << "\", \"legacy_seconds\": "
                      << formatDouble(row.legacySeconds, 6)
                      << ", \"guarded_seconds\": "
                      << formatDouble(row.guardedSeconds, 6)
                      << ", \"overhead_percent\": "
                      << formatDouble(row.overheadPercent, 2)
                      << ", \"injected_status\": \""
                      << bench::jsonEscape(row.injectedStatus)
                      << "\", \"recovery_events\": "
                      << row.recoveryEvents << "}"
                      << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        std::cout << "  ],\n  \"median_overhead_percent\": "
                  << formatDouble(median, 2)
                  << ",\n  \"untyped_results\": " << nonTyped
                  << ",\n  \"nonfinite_results\": " << nonFinite
                  << "\n}\n";
        return nonTyped + nonFinite;
    }

    TextTable table({"problem", "legacy_s", "guarded_s", "overhead_%",
                     "injected_status", "recovery_events"});
    for (const Row& row : rows)
        table.addRow({row.name, formatDouble(row.legacySeconds, 6),
                      formatDouble(row.guardedSeconds, 6),
                      formatDouble(row.overheadPercent, 2),
                      row.injectedStatus,
                      std::to_string(row.recoveryEvents)});
    std::cout << "# fault-tolerance overhead (watchdog on vs off, "
                 "+ seeded injection at rate "
              << options.rate << ")\n";
    if (options.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "median overhead: " << formatDouble(median, 2)
              << "% (target < 2%)\n"
              << "untyped results under injection: " << nonTyped << "\n"
              << "non-finite results under injection: " << nonFinite
              << "\n";
    // Nonzero exit on any violated fault-tolerance guarantee so the
    // CI smoke job fails loudly.
    return nonTyped + nonFinite;
}
