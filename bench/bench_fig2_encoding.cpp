/**
 * @file
 * Fig. 2(g) reproduction: sparsity-string excerpts of the constraint
 * matrices from each application domain, plus character histograms and
 * the LZW structure-richness metric.
 */

#include <algorithm>

#include "bench_util.hpp"
#include "encoding/lzw.hpp"

using namespace rsqp;
using namespace rsqp::bench;

int
main(int argc, char** argv)
{
    const BenchOptions options = parseOptions(argc, argv);
    const Index c = options.deviceC;

    std::cout << "# Fig. 2(g): sparsity-string encodings (C = " << c
              << ")\n\n";
    TextTable table({"domain", "matrix", "rows", "nnz", "string_len",
                     "lzw_codes", "excerpt"});

    for (Domain domain : allDomains()) {
        // One mid-size instance per domain (index 10 of 20).
        const auto suite = benchmarkSuite(20);
        const ProblemSpec& spec =
            suite[static_cast<std::size_t>(static_cast<int>(domain)) *
                      20 + 10];
        QpProblem qp = spec.generate();
        ruizEquilibrate(qp, 10);

        const CsrMatrix a_csr = CsrMatrix::fromCsc(qp.a);
        const CsrMatrix p_csr =
            CsrMatrix::fromCsc(qp.pUpper.symUpperToFull());
        for (const auto& [label, csr] :
             {std::pair<const char*, const CsrMatrix*>{"A", &a_csr},
              {"P", &p_csr}}) {
            const SparsityString str = encodeMatrix(*csr, c);
            const std::string excerpt = str.encoded.substr(
                std::min<std::size_t>(str.length() / 3, 200),
                std::min<std::size_t>(48, str.length()));
            table.addRow({toString(domain), label,
                          std::to_string(csr->rows()),
                          std::to_string(csr->nnz()),
                          std::to_string(str.length()),
                          std::to_string(
                              lzwCompressedLength(str.encoded)),
                          excerpt});
        }
    }
    emitTable(table, options, "sparsity encodings per domain");

    // Character histograms of the A matrices (structure signature).
    std::cout << "# character histograms (A matrices)\n";
    for (Domain domain : allDomains()) {
        const auto suite = benchmarkSuite(20);
        const ProblemSpec& spec =
            suite[static_cast<std::size_t>(static_cast<int>(domain)) *
                      20 + 10];
        const QpProblem qp = spec.generate();
        const SparsityString str =
            encodeMatrix(CsrMatrix::fromCsc(qp.a), c);
        std::cout << toString(domain) << ":";
        for (const auto& [ch, count] : characterHistogram(str.encoded))
            std::cout << " " << ch << "=" << count;
        std::cout << "\n";
    }
    return 0;
}
