/**
 * @file
 * Telemetry overhead proof: solve the bench_hotpath workload (largest
 * generated suite problem) repeatedly with trace spans + timed
 * instrumentation runtime-enabled and runtime-disabled in back-to-back
 * pairs of alternating order, and report the median of the per-pair
 * relative differences. Ambient interference (scheduler, neighbor
 * load, frequency scaling) drifts on timescales longer than one pair,
 * so it hits both halves of a pair about equally and mostly cancels in
 * the per-pair difference; alternating which arm runs first removes
 * the residual order bias, and the median discards pairs that straddle
 * a load spike. Per-arm minima are reported alongside (the repo's
 * bench_hotpath best-of-reps convention). The CI perf-smoke job
 * asserts the JSON artifact keeps the enabled-path overhead under 2%
 * (and that an RSQP_TELEMETRY=OFF build records no spans at all).
 *
 * Flags:
 *   --quick    fewer reps (CI smoke)
 *   --json     JSON object on stdout (machine-readable artifact)
 *   --seed=N   generator seed offset (default 0)
 *   --sizes=N  suite sizes per domain to choose from (default 3)
 *   --reps=N   interleaved rep pairs (default 41, quick 15)
 */

#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "rsqp_api.hpp"

namespace
{

using namespace rsqp;

struct Options
{
    bool quick = false;
    bool json = false;
    std::uint64_t seed = 0;
    Index sizesPerDomain = 3;
    int reps = 0;  // 0 = default for the mode
};

Options
parseOptions(int argc, char** argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            options.quick = true;
        } else if (arg == "--json") {
            options.json = true;
        } else if (arg.rfind("--seed=", 0) == 0) {
            options.seed =
                static_cast<std::uint64_t>(std::stoull(arg.substr(7)));
        } else if (arg.rfind("--sizes=", 0) == 0) {
            options.sizesPerDomain =
                static_cast<Index>(std::stoi(arg.substr(8)));
        } else if (arg.rfind("--reps=", 0) == 0) {
            options.reps = std::stoi(arg.substr(7));
        } else {
            std::cerr << "unknown flag: " << arg << "\n"
                      << "flags: --quick --json --seed=N --sizes=N "
                         "--reps=N\n";
            std::exit(2);
        }
    }
    if (options.reps <= 0)
        options.reps = options.quick ? 15 : 41;
    return options;
}

double
median(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    if (n == 0)
        return 0.0;
    return n % 2 == 1 ? values[n / 2]
                      : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << value;
    return os.str();
}

/** One timed solve; returns wall seconds and checks the objective. */
double
timedSolve(const QpProblem& qp, const OsqpSettings& settings,
           Real& objective)
{
    OsqpSolver solver(qp, settings);
    Timer timer;
    const OsqpResult result = solver.solve();
    const double seconds = timer.seconds();
    objective = result.info.objective;
    return seconds;
}

} // namespace

int
main(int argc, char** argv)
{
    const Options options = parseOptions(argc, argv);

    // Largest problem by non-zeros: the instance where per-iteration
    // work dwarfs the constant-time telemetry bookkeeping the least —
    // if the overhead stays under budget here it does everywhere.
    const std::vector<ProblemSpec> specs =
        benchmarkSuite(options.sizesPerDomain);
    const ProblemSpec* largest = nullptr;
    QpProblem qp;
    Count best_nnz = -1;
    for (const ProblemSpec& spec : specs) {
        QpProblem candidate = generateProblem(
            spec.domain, spec.sizeParam, spec.seed + options.seed);
        if (candidate.totalNnz() > best_nnz) {
            best_nnz = candidate.totalNnz();
            largest = &spec;
            qp = std::move(candidate);
        }
    }
    if (largest == nullptr) {
        std::cerr << "empty benchmark suite\n";
        return 1;
    }

    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    // Cap the ADMM iteration count: per-iteration telemetry cost and
    // per-iteration solve work both scale linearly with the iteration
    // count, so the overhead *ratio* of a capped solve equals a full
    // solve's — but each rep is ~10x shorter, which keeps ambient load
    // correlated across a pair (the cancellation the paired estimator
    // relies on) and affords several times more pairs per CI minute.
    settings.maxIter = 10;
    settings.checkInterval = 25;
    // One worker: every extra pool thread widens the exposure to
    // scheduler preemption (a stalled worker stalls the parallelFor
    // barrier for all of them) without changing the per-iteration
    // telemetry cost being measured.
    settings.execution.numThreads = 1;

    telemetry::TraceRecorder& recorder = telemetry::TraceRecorder::global();

    // Warm-up: fault in code/data caches and the global thread pool so
    // neither arm pays first-run costs.
    Real objective_ref = 0.0;
    (void)timedSolve(qp, settings, objective_ref);

    // Interleave OFF/ON pairs, alternating which arm goes first, so
    // slow drift (frequency scaling, page cache, neighbor load) hits
    // both arms equally in expectation.
    std::vector<double> off_seconds, on_seconds;
    Real objective = 0.0;
    // Each arm of a pair is the best of kTries short solves: ambient
    // interference only ever adds time, so the within-pair minimum
    // discards load spikes narrower than one solve before the pair
    // difference cancels the broader ones.
    constexpr int kTries = 3;
    auto runOff = [&]() -> bool {
        recorder.disable();
        double best = 1e100;
        for (int t = 0; t < kTries; ++t) {
            best = std::min(best, timedSolve(qp, settings, objective));
            if (objective != objective_ref) {
                std::cerr << "objective drift with telemetry off\n";
                return false;
            }
        }
        off_seconds.push_back(best);
        return true;
    };
    auto runOn = [&]() -> bool {
        recorder.enable();
        double best = 1e100;
        for (int t = 0; t < kTries; ++t) {
            (void)recorder.drain();  // bound ring memory between runs
            best = std::min(best, timedSolve(qp, settings, objective));
            if (objective != objective_ref) {
                std::cerr << "objective drift with telemetry on\n";
                return false;
            }
        }
        on_seconds.push_back(best);
        return true;
    };
    for (int rep = 0; rep < options.reps; ++rep) {
        const bool ok = rep % 2 == 0 ? runOff() && runOn()
                                     : runOn() && runOff();
        if (!ok)
            return 1;
    }
    const telemetry::TraceRecorder::DrainResult trace = recorder.drain();
    recorder.disable();

    // With spans compiled in and the recorder enabled, the solve loop
    // must actually have recorded; compiled out, the macro is void and
    // the ring must stay empty.
    if (telemetry::kTelemetryCompiled && trace.events.empty()) {
        std::cerr << "telemetry compiled in but no spans recorded\n";
        return 1;
    }
    if (!telemetry::kTelemetryCompiled &&
        (!trace.events.empty() || trace.dropped != 0)) {
        std::cerr << "RSQP_TELEMETRY=OFF build recorded spans\n";
        return 1;
    }

    const double median_off = median(off_seconds);
    const double median_on = median(on_seconds);
    const double min_off =
        *std::min_element(off_seconds.begin(), off_seconds.end());
    const double min_on =
        *std::min_element(on_seconds.begin(), on_seconds.end());
    // Paired estimate: noise is correlated within a back-to-back pair,
    // so per-pair differences cancel it; the median over pairs is what
    // the <2% bound is checked on.
    std::vector<double> pair_overheads;
    for (std::size_t i = 0; i < off_seconds.size(); ++i)
        pair_overheads.push_back(
            (on_seconds[i] - off_seconds[i]) / off_seconds[i] * 100.0);
    const double overhead_percent = median(pair_overheads);

    // Registry sanity: the ADMM loop counted every solve of this
    // process (warm-up + both arms).
    const telemetry::MetricsSnapshot snapshot =
        telemetry::MetricsRegistry::global().snapshot();
    const std::uint64_t admm_solves =
        snapshot.counterValue("rsqp_admm_solves_total");
    const std::uint64_t expected_solves =
        1 + 2 * kTries * static_cast<std::uint64_t>(options.reps);
    if (admm_solves != expected_solves) {
        std::cerr << "metrics registry lost solves: counted "
                  << admm_solves << ", ran " << expected_solves << "\n";
        return 1;
    }

    if (options.json) {
        std::cout << "{\n"
                  << "  \"problem\": \""
                  << bench::jsonEscape(largest->name) << "\",\n"
                  << "  \"n\": " << qp.numVariables() << ",\n"
                  << "  \"m\": " << qp.numConstraints() << ",\n"
                  << "  \"nnz\": " << qp.totalNnz() << ",\n"
                  << "  \"seed\": " << options.seed << ",\n"
                  << "  \"reps\": " << options.reps << ",\n"
                  << "  \"compiled_out\": "
                  << (telemetry::kTelemetryCompiled ? "false" : "true")
                  << ",\n"
                  << "  \"min_off_seconds\": "
                  << formatDouble(min_off, 6) << ",\n"
                  << "  \"min_on_seconds\": "
                  << formatDouble(min_on, 6) << ",\n"
                  << "  \"median_off_seconds\": "
                  << formatDouble(median_off, 6) << ",\n"
                  << "  \"median_on_seconds\": "
                  << formatDouble(median_on, 6) << ",\n"
                  << "  \"overhead_percent\": "
                  << formatDouble(overhead_percent, 3) << ",\n"
                  << "  \"trace_events\": " << trace.events.size()
                  << ",\n"
                  << "  \"trace_dropped\": " << trace.dropped << ",\n"
                  << "  \"admm_solves_total\": " << admm_solves << "\n"
                  << "}\n";
        return 0;
    }

    std::cout << "Telemetry overhead on " << largest->name << " ("
              << (telemetry::kTelemetryCompiled ? "spans compiled in"
                                                : "compiled out")
              << ")\n";
    TextTable table({"arm", "min_seconds", "median_seconds"});
    table.addRow({"telemetry off", formatDouble(min_off, 6),
                  formatDouble(median_off, 6)});
    table.addRow({"telemetry on", formatDouble(min_on, 6),
                  formatDouble(median_on, 6)});
    table.print(std::cout);
    std::cout << "overhead (median of per-pair diffs): "
              << formatDouble(overhead_percent, 3) << "% over "
              << options.reps << " interleaved reps ("
              << trace.events.size() << " spans, " << trace.dropped
              << " dropped)\n";
    return 0;
}
