/**
 * @file
 * Service-layer benchmark: what the customization cache and the
 * session fast paths buy a client that solves repeated or parametric
 * QPs through the SolverService front-end.
 *
 * Per suite problem, three latencies:
 *
 *   cold        first solve ever for the structure (full E_p/E_c run)
 *   warm        a *different* session, same structure (cache hit: the
 *               frozen artifact is thawed, only values re-packed)
 *   parametric  repeat solve in the same session with a new q
 *               (no setup at all)
 *
 * plus a multi-session burst that exercises the admission queue. The
 * JSON output is the CI perf-smoke artifact.
 *
 * Flags:
 *   --quick       fewer/smaller problems (CI smoke)
 *   --json        JSON object on stdout (machine-readable artifact)
 *   --seed=N      generator seed offset (default 0)
 *   --sizes=N     suite sizes per domain (default 3)
 *   --sessions=N  burst width (default 4)
 */

#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "rsqp_api.hpp"

namespace
{

using namespace rsqp;

struct Options
{
    bool quick = false;
    bool json = false;
    std::uint64_t seed = 0;
    Index sizesPerDomain = 3;
    Index sessions = 4;
};

Options
parseOptions(int argc, char** argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            options.quick = true;
            options.sizesPerDomain = 1;
        } else if (arg == "--json") {
            options.json = true;
        } else if (arg.rfind("--seed=", 0) == 0) {
            options.seed =
                static_cast<std::uint64_t>(std::stoull(arg.substr(7)));
        } else if (arg.rfind("--sizes=", 0) == 0) {
            options.sizesPerDomain =
                static_cast<Index>(std::stoi(arg.substr(8)));
        } else if (arg.rfind("--sessions=", 0) == 0) {
            options.sessions =
                static_cast<Index>(std::stoi(arg.substr(11)));
        } else {
            std::cerr << "unknown flag: " << arg << "\n"
                      << "flags: --quick --json --seed=N --sizes=N "
                         "--sessions=N\n";
            std::exit(2);
        }
    }
    return options;
}

struct Row
{
    std::string name;
    Index n = 0;
    Index m = 0;
    Count nnz = 0;
    double coldSetupSeconds = 0.0;
    double warmSetupSeconds = 0.0;
    double parametricSeconds = 0.0;
    double setupSpeedup = 0.0;
    std::string coldStatus;
    bool warmCacheHit = false;
    bool warmBitwiseEqual = false;
};

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << value;
    return os.str();
}

/** Same structure, different numbers: the cache-hit probe problem. */
QpProblem
perturbValues(const QpProblem& qp)
{
    QpProblem out = qp;
    for (Real& v : out.q)
        v = 1.5 * v + 0.1;
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    const Options options = parseOptions(argc, argv);

    OsqpSettings settings;
    settings.maxIter = options.quick ? 250 : 1000;
    CustomizeSettings custom;
    custom.c = options.quick ? 16 : 64;

    SessionConfig sessionConfig;
    sessionConfig.osqp = settings;
    sessionConfig.custom = custom;

    ServiceConfig serviceConfig;
    serviceConfig.maxQueueDepth = 256;
    SolverService service(serviceConfig);

    std::vector<ProblemSpec> specs =
        benchmarkSuite(options.sizesPerDomain);
    for (ProblemSpec& spec : specs)
        spec.seed += options.seed;
    if (options.quick && specs.size() > 3)
        specs.resize(3);

    std::vector<Row> rows;
    for (const ProblemSpec& spec : specs) {
        const QpProblem qp = spec.generate();
        Row row;
        row.name = spec.name;
        row.n = qp.numVariables();
        row.m = qp.numConstraints();
        row.nnz = qp.totalNnz();

        // Cold: first structure sighting, full customization pipeline.
        const SessionId first = service.openSession(sessionConfig);
        const SessionResult cold = service.solve(first, qp);
        row.coldSetupSeconds = cold.setupSeconds;
        row.coldStatus = statusToString(cold.status);

        // Warm: a brand-new session, structurally identical problem
        // with different values — must hit the cache and reproduce a
        // standalone cold solve bitwise.
        const QpProblem probe = perturbValues(qp);
        const SessionId second = service.openSession(sessionConfig);
        const SessionResult warm = service.solve(second, probe);
        row.warmSetupSeconds = warm.setupSeconds;
        row.warmCacheHit = warm.cacheHit;
        row.setupSpeedup =
            warm.setupSeconds > 0.0
                ? row.coldSetupSeconds / warm.setupSeconds
                : 0.0;
        {
            RsqpSolver reference(probe, settings, custom);
            const RsqpResult ref = reference.solve();
            row.warmBitwiseEqual =
                ref.status == warm.status && ref.x == warm.x &&
                ref.y == warm.y;
        }

        // Parametric: repeat solve in the first session, new q only.
        const SessionResult repeat =
            service.solve(first, perturbValues(qp));
        row.parametricSeconds =
            repeat.setupSeconds + repeat.solveSeconds;

        service.closeSession(first);
        service.closeSession(second);
        rows.push_back(row);
    }

    // Burst: N sessions, 3 requests each, all in flight at once —
    // exercises the admission queue and the per-session serialization.
    const Index burstSessions = options.sessions;
    const Index burstRepeats = 3;
    double burstSeconds = 0.0;
    {
        const QpProblem qp = specs.front().generate();
        std::vector<SessionId> ids;
        for (Index s = 0; s < burstSessions; ++s)
            ids.push_back(service.openSession(sessionConfig));
        Timer timer;
        std::vector<std::future<SessionResult>> futures;
        for (Index r = 0; r < burstRepeats; ++r)
            for (SessionId id : ids)
                futures.push_back(service.submit(id, qp));
        for (std::future<SessionResult>& future : futures)
            future.get();
        burstSeconds = timer.seconds();
        for (SessionId id : ids)
            service.closeSession(id);
    }

    const ServiceStats stats = service.stats();

    if (options.json) {
        std::cout << "{\n  \"seed\": " << options.seed
                  << ",\n  \"problems\": [\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row& row = rows[i];
            std::cout << "    {\"name\": \""
                      << bench::jsonEscape(row.name)
                      << "\", \"n\": " << row.n
                      << ", \"m\": " << row.m
                      << ", \"nnz\": " << row.nnz
                      << ", \"cold_setup_seconds\": "
                      << formatDouble(row.coldSetupSeconds, 6)
                      << ", \"warm_setup_seconds\": "
                      << formatDouble(row.warmSetupSeconds, 6)
                      << ", \"setup_speedup\": "
                      << formatDouble(row.setupSpeedup, 3)
                      << ", \"parametric_solve_seconds\": "
                      << formatDouble(row.parametricSeconds, 6)
                      << ", \"cold_status\": \""
                      << bench::jsonEscape(row.coldStatus)
                      << "\", \"warm_cache_hit\": "
                      << (row.warmCacheHit ? "true" : "false")
                      << ", \"warm_bitwise_equal\": "
                      << (row.warmBitwiseEqual ? "true" : "false")
                      << "}" << (i + 1 < rows.size() ? "," : "")
                      << "\n";
        }
        std::cout << "  ],\n  \"burst\": {\"sessions\": "
                  << burstSessions
                  << ", \"requests\": " << burstSessions * burstRepeats
                  << ", \"wall_seconds\": "
                  << formatDouble(burstSeconds, 6) << "},\n"
                  << "  \"cache\": {\"hits\": " << stats.cache.hits
                  << ", \"misses\": " << stats.cache.misses
                  << ", \"evictions\": " << stats.cache.evictions
                  << ", \"size\": " << stats.cache.size
                  << ", \"capacity\": " << stats.cache.capacity
                  << ", \"footprint_bytes\": "
                  << stats.cache.footprintBytes << "},\n"
                  << "  \"service\": {\"submitted\": " << stats.submitted
                  << ", \"completed\": " << stats.completed
                  << ", \"rejected\": " << stats.rejected
                  << ", \"expired\": " << stats.expired
                  << ", \"peak_queue_depth\": " << stats.peakQueueDepth
                  << "}\n}\n";
        // Exit code doubles as the CI correctness gate: every warm
        // solve must be a cache hit and bitwise-equal to cold.
        int failures = 0;
        for (const Row& row : rows)
            if (!row.warmCacheHit || !row.warmBitwiseEqual)
                ++failures;
        return failures;
    }

    std::cout << "# service layer: cold vs cached vs parametric\n";
    TextTable table({"problem", "nnz", "cold_setup_s", "warm_setup_s",
                     "speedup", "parametric_s", "hit", "bitwise"});
    for (const Row& row : rows)
        table.addRow({row.name, std::to_string(row.nnz),
                      formatDouble(row.coldSetupSeconds, 6),
                      formatDouble(row.warmSetupSeconds, 6),
                      formatDouble(row.setupSpeedup, 2),
                      formatDouble(row.parametricSeconds, 6),
                      row.warmCacheHit ? "yes" : "NO",
                      row.warmBitwiseEqual ? "yes" : "NO"});
    table.print(std::cout);
    std::cout << "\nburst: " << burstSessions << " sessions x "
              << burstRepeats << " requests in "
              << formatDouble(burstSeconds, 3) << " s\n"
              << "cache: " << stats.cache.hits << " hits, "
              << stats.cache.misses << " misses, footprint "
              << stats.cache.footprintBytes << " bytes\n";
    return 0;
}
