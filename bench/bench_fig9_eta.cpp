/**
 * @file
 * Fig. 9 reproduction: improvement of the match score eta after
 * problem-specific customization (E_p structure search + E_c CVB
 * compression) over the generic baseline, per benchmark problem.
 * The paper reports gains up to ~0.55, weakest on eqqp.
 */

#include <map>

#include "bench_util.hpp"

using namespace rsqp;
using namespace rsqp::bench;

int
main(int argc, char** argv)
{
    const BenchOptions options = parseOptions(argc, argv);
    const Index c = options.deviceC;

    TextTable table({"problem", "domain", "nnz", "eta_base",
                     "eta_custom", "delta_eta", "structures"});
    std::map<Domain, RunningStats> per_domain;

    for (const ProblemSpec& spec :
         benchmarkSuite(options.sizesPerDomain)) {
        QpProblem qp = spec.generate();
        const Count nnz = qp.totalNnz();
        ruizEquilibrate(qp, 10);

        const ProblemCustomization baseline =
            baselineCustomization(qp, c);
        CustomizeSettings custom_cfg;
        custom_cfg.c = c;
        const ProblemCustomization custom =
            customizeProblem(qp, custom_cfg);

        const Real delta = custom.eta() - baseline.eta();
        per_domain[spec.domain].add(delta);
        table.addRow({spec.name, toString(spec.domain),
                      std::to_string(nnz),
                      formatFixed(baseline.eta(), 3),
                      formatFixed(custom.eta(), 3),
                      formatFixed(delta, 3),
                      custom.config.structures.name()});
    }
    emitTable(table, options,
              "Fig. 9: delta-eta from problem-specific customization "
              "(C = " + std::to_string(c) + ")");

    std::cout << "per-domain mean delta-eta:\n";
    for (const auto& [domain, stats] : per_domain)
        std::cout << "  " << toString(domain) << ": "
                  << formatFixed(stats.mean(), 3) << " (max "
                  << formatFixed(stats.max(), 3) << ")\n";
    std::cout << "paper: gains up to ~0.55; smallest on eqqp\n";
    return 0;
}
