/**
 * @file
 * Shared infrastructure of the figure/table benchmark harnesses:
 * command-line options, and the standard three-backend measurement
 * (CPU indirect wall clock, simulated FPGA baseline + customized,
 * GPU model) used by Figs. 10-13.
 *
 * Flags:
 *   --full        run the full 120-problem suite (default: reduced)
 *   --sizes=N     sizes per domain (1..20)
 *   --csv         emit CSV instead of an aligned table
 *   --quick       tiny suite for smoke runs
 */

#ifndef RSQP_BENCH_BENCH_UTIL_HPP
#define RSQP_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/rsqp.hpp"

namespace rsqp::bench
{

/**
 * Escape a string for embedding inside a JSON string literal: quotes,
 * backslashes and control characters become their escape sequences.
 * Every harness that prints a string field into a --json artifact must
 * route it through here — problem names come from generator specs
 * today, but schema checkers downstream parse the output strictly.
 */
inline std::string
jsonEscape(const std::string& raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char ch : raw) {
        const unsigned char byte = static_cast<unsigned char>(ch);
        switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (byte < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", byte);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

struct BenchOptions
{
    Index sizesPerDomain = 6;
    bool csv = false;
    Index maxIter = 1000;
    Index deviceC = 64;
};

inline BenchOptions
parseOptions(int argc, char** argv)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--full") {
            options.sizesPerDomain = 20;
        } else if (arg == "--quick") {
            options.sizesPerDomain = 3;
            options.maxIter = 250;
        } else if (arg == "--csv") {
            options.csv = true;
        } else if (arg.rfind("--sizes=", 0) == 0) {
            options.sizesPerDomain =
                static_cast<Index>(std::stoi(arg.substr(8)));
        } else if (arg.rfind("--max-iter=", 0) == 0) {
            options.maxIter =
                static_cast<Index>(std::stoi(arg.substr(11)));
        } else if (arg.rfind("--c=", 0) == 0) {
            options.deviceC =
                static_cast<Index>(std::stoi(arg.substr(4)));
        } else {
            std::cerr << "unknown flag: " << arg << "\n"
                      << "flags: --full --quick --csv --sizes=N "
                         "--max-iter=N --c=N\n";
            std::exit(2);
        }
    }
    return options;
}

inline OsqpSettings
benchSettings(const BenchOptions& options)
{
    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    settings.maxIter = options.maxIter;
    return settings;
}

/** Full three-backend measurement of one benchmark problem. */
struct ProblemMeasurement
{
    std::string name;
    Domain domain = Domain::Control;
    Count nnz = 0;
    Index n = 0;
    Index m = 0;

    // CPU (indirect PCG, the "mkl" role) — measured wall clock.
    double cpuSeconds = 0.0;
    OsqpInfo cpuInfo;

    // Simulated FPGA.
    RsqpResult deviceBaseline;
    RsqpResult deviceCustom;

    // GPU model.
    GpuSolveEstimate gpu;
};

/**
 * Measure one problem on all backends. The CPU run is repeated until
 * it accumulates ~30 ms or 3 repetitions, whichever first, to tame
 * timer noise on tiny instances.
 */
inline ProblemMeasurement
measureProblem(const ProblemSpec& spec, const BenchOptions& options)
{
    ProblemMeasurement meas;
    meas.name = spec.name;
    meas.domain = spec.domain;
    const QpProblem qp = spec.generate();
    meas.nnz = qp.totalNnz();
    meas.n = qp.numVariables();
    meas.m = qp.numConstraints();

    const OsqpSettings settings = benchSettings(options);

    // CPU reference (fresh solver per repetition: cold start).
    {
        int reps = 0;
        double total = 0.0;
        while (reps < 3 && total < 0.03) {
            OsqpSolver cpu(qp, settings);
            Timer timer;
            const OsqpResult result = cpu.solve();
            total += timer.seconds();
            ++reps;
            meas.cpuInfo = result.info;
        }
        meas.cpuSeconds = total / reps;
    }

    // Simulated FPGA, baseline and customized.
    {
        CustomizeSettings base_cfg;
        base_cfg.c = options.deviceC;
        base_cfg.customizeStructures = false;
        base_cfg.compressCvb = false;
        RsqpSolver baseline(qp, settings, base_cfg);
        meas.deviceBaseline = baseline.solve();

        CustomizeSettings custom_cfg;
        custom_cfg.c = options.deviceC;
        RsqpSolver customized(qp, settings, custom_cfg);
        meas.deviceCustom = customized.solve();
    }

    // GPU model, driven by the CPU run's trajectory.
    meas.gpu = estimateGpuSolve(qp, meas.cpuInfo, settings);
    return meas;
}

/** Emit the table in the selected format plus a short header line. */
inline void
emitTable(const TextTable& table, const BenchOptions& options,
          const std::string& title)
{
    std::cout << "# " << title << "\n";
    if (options.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\n";
}

} // namespace rsqp::bench

#endif // RSQP_BENCH_BENCH_UTIL_HPP
