/**
 * @file
 * Fleet scaling benchmark: throughput of the SolverService front-end
 * as the simulated device fleet grows from one solver core to many,
 * on a mixed-structure workload (every suite domain, several sizes,
 * many sessions in flight).
 *
 * Two scaling numbers per core count:
 *
 *   wall clock      host-side throughput (jobs/s). Meaningful on a
 *                   many-core host, but it measures thread-pool
 *                   contention on a loaded CI runner.
 *   modeled         simulated-device makespan: each core accumulates
 *                   the modeled on-device run time of the jobs placed
 *                   on it, and speedup = total device time / max core
 *                   device time. Deterministic (the simulated solves
 *                   are bitwise reproducible) and independent of host
 *                   load — this is what the CI gate checks.
 *
 * The modeled speedup is a direct measurement of placement quality:
 * it only approaches the core count when structure-affinity routing
 * plus least-loaded spill spread the work evenly.
 *
 * Flags:
 *   --quick        smaller workload (CI smoke)
 *   --json         JSON object on stdout (machine-readable artifact)
 *   --seed=N       generator seed offset (default 0)
 *   --cores=A,B,C  fleet sizes to sweep (default 1,2,4,8)
 *   --sessions=N   concurrent client sessions (default: one per
 *                  structure)
 *   --requests=N   requests per session (default 6, quick 4)
 *   --sizes=N      suite sizes per domain (default 3, quick 2)
 */

#include <algorithm>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "rsqp_api.hpp"

namespace
{

using namespace rsqp;

struct Options
{
    bool quick = false;
    bool json = false;
    std::uint64_t seed = 0;
    std::vector<unsigned> cores = {1, 2, 4, 8};
    Index sessions = 0;  ///< 0 = one per structure
    Index requestsPerSession = 6;
    Index sizesPerDomain = 3;
};

std::vector<unsigned>
parseCoreList(const std::string& list)
{
    std::vector<unsigned> cores;
    std::stringstream stream(list);
    std::string item;
    while (std::getline(stream, item, ','))
        if (!item.empty())
            cores.push_back(
                static_cast<unsigned>(std::stoul(item)));
    if (cores.empty()) {
        std::cerr << "empty --cores list\n";
        std::exit(2);
    }
    return cores;
}

Options
parseOptions(int argc, char** argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            options.quick = true;
            options.requestsPerSession = 4;
            options.sizesPerDomain = 2;
        } else if (arg == "--json") {
            options.json = true;
        } else if (arg.rfind("--seed=", 0) == 0) {
            options.seed =
                static_cast<std::uint64_t>(std::stoull(arg.substr(7)));
        } else if (arg.rfind("--cores=", 0) == 0) {
            options.cores = parseCoreList(arg.substr(8));
        } else if (arg.rfind("--sessions=", 0) == 0) {
            options.sessions =
                static_cast<Index>(std::stoi(arg.substr(11)));
        } else if (arg.rfind("--requests=", 0) == 0) {
            options.requestsPerSession =
                static_cast<Index>(std::stoi(arg.substr(11)));
        } else if (arg.rfind("--sizes=", 0) == 0) {
            options.sizesPerDomain =
                static_cast<Index>(std::stoi(arg.substr(8)));
        } else {
            std::cerr << "unknown flag: " << arg << "\n"
                      << "flags: --quick --json --seed=N --cores=A,B "
                         "--sessions=N --requests=N --sizes=N\n";
            std::exit(2);
        }
    }
    return options;
}

/** Same structure, new values: request r of one session's stream. */
QpProblem
perturbValues(const QpProblem& base, Index request)
{
    QpProblem out = base;
    const Real shift = 0.05 * static_cast<Real>(request + 1);
    for (Real& v : out.q)
        v = v * (1.0 + 0.01 * static_cast<Real>(request)) + shift;
    return out;
}

struct Run
{
    unsigned cores = 0;
    double wallSeconds = 0.0;
    double throughput = 0.0;       ///< completed jobs / wall second
    double wallSpeedup = 0.0;      ///< vs the sweep's first run
    double deviceSecondsTotal = 0.0;
    double makespanSeconds = 0.0;  ///< max per-core device time
    double modeledSpeedup = 0.0;   ///< total / makespan
    Count completed = 0;
    Count rejected = 0;
    Count interleavedJobs = 0;
    FleetStats fleet;
};

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << value;
    return os.str();
}

} // namespace

int
main(int argc, char** argv)
{
    const Options options = parseOptions(argc, argv);

    SessionConfig sessionConfig;
    sessionConfig.osqp.maxIter = options.quick ? 250 : 1000;
    sessionConfig.custom.c = options.quick ? 16 : 64;

    // The mixed workload: every domain at several small sizes, one
    // session per structure by default, each session solving its
    // structure repeatedly with fresh values (the parametric serving
    // pattern). Sizes stay small on purpose — the sweep measures how
    // many requests the fleet moves, not how big one solve can get.
    // Per-domain size parameters chosen so every structure's modeled
    // per-solve device time lands in the same few-millisecond band:
    // a scaling gate is meaningless when one structure's weight
    // dwarfs the rest (no placement can spread a single hot spot).
    struct SizeRange
    {
        Index base;
        Index step;
    };
    auto sizeRange = [](Domain domain) -> SizeRange {
        switch (domain) {
        case Domain::Control: return {3, 2};
        case Domain::Huber: return {16, 8};
        case Domain::Lasso: return {40, 20};
        case Domain::Portfolio: return {40, 20};
        case Domain::Svm: return {40, 20};
        case Domain::Eqqp: return {80, 40};
        }
        return {20, 8};
    };
    std::vector<QpProblem> bases;
    std::size_t structureCount = 0;
    for (Domain domain : allDomains())
        for (Index k = 0; k < options.sizesPerDomain; ++k) {
            const SizeRange range = sizeRange(domain);
            bases.push_back(generateProblem(
                domain, range.base + range.step * k,
                options.seed + structureCount));
            ++structureCount;
        }

    const Index sessionCount =
        options.sessions > 0 ? options.sessions
                             : static_cast<Index>(structureCount);
    const Index requestCount =
        sessionCount * options.requestsPerSession;

    std::vector<Run> runs;
    for (unsigned coreCount : options.cores) {
        ServiceConfig serviceConfig;
        serviceConfig.maxQueueDepth =
            static_cast<std::size_t>(requestCount) + 8;
        // Serial kernels: parallelism comes from the fleet's job-level
        // concurrency, not from intra-solve threading.
        serviceConfig.execution.numThreads = 1;
        serviceConfig.fleet.coreCount = coreCount;
        serviceConfig.fleet.policy = PlacementPolicy::Affinity;
        serviceConfig.fleet.slotsPerCore = 1;  // one device per core
        serviceConfig.fleet.affinityQueueBound = 2;
        SolverService service(serviceConfig);

        std::vector<SessionId> ids;
        ids.reserve(static_cast<std::size_t>(sessionCount));
        for (Index s = 0; s < sessionCount; ++s)
            ids.push_back(service.openSession(sessionConfig));

        Timer timer;
        std::vector<std::future<SessionResult>> futures;
        futures.reserve(static_cast<std::size_t>(requestCount));
        for (Index r = 0; r < options.requestsPerSession; ++r)
            for (Index s = 0; s < sessionCount; ++s) {
                const QpProblem& base =
                    bases[static_cast<std::size_t>(s) % bases.size()];
                futures.push_back(
                    service.submit(ids[static_cast<std::size_t>(s)],
                                   perturbValues(base, r)));
            }
        for (std::future<SessionResult>& future : futures)
            future.get();

        Run run;
        run.cores = coreCount;
        run.wallSeconds = timer.seconds();
        run.fleet = service.fleetStats();
        const ServiceStats stats = service.stats();
        run.completed = stats.completed;
        run.rejected = stats.rejected;
        for (const CoreStats& core : run.fleet.cores) {
            run.deviceSecondsTotal += core.deviceSeconds;
            run.makespanSeconds =
                std::max(run.makespanSeconds, core.deviceSeconds);
            run.interleavedJobs += core.interleavedJobs;
        }
        run.throughput = run.wallSeconds > 0.0
                             ? static_cast<double>(run.completed) /
                                   run.wallSeconds
                             : 0.0;
        run.modeledSpeedup =
            run.makespanSeconds > 0.0
                ? run.deviceSecondsTotal / run.makespanSeconds
                : 0.0;
        run.wallSpeedup =
            !runs.empty() && runs.front().throughput > 0.0
                ? run.throughput / runs.front().throughput
                : 1.0;

        for (SessionId id : ids)
            service.closeSession(id);
        runs.push_back(std::move(run));
    }

    if (options.json) {
        std::cout << "{\n  \"seed\": " << options.seed
                  << ",\n  \"placement_policy\": \"affinity\""
                  << ",\n  \"workload\": {\"structures\": "
                  << structureCount << ", \"sessions\": "
                  << sessionCount
                  << ", \"requests\": " << requestCount << "},\n"
                  << "  \"runs\": [\n";
        for (std::size_t i = 0; i < runs.size(); ++i) {
            const Run& run = runs[i];
            std::cout << "    {\"cores\": " << run.cores
                      << ", \"wall_seconds\": "
                      << formatDouble(run.wallSeconds, 6)
                      << ", \"throughput_jobs_per_s\": "
                      << formatDouble(run.throughput, 3)
                      << ", \"speedup_vs_single\": "
                      << formatDouble(run.wallSpeedup, 3)
                      << ", \"device_seconds_total\": "
                      << formatDouble(run.deviceSecondsTotal, 6)
                      << ", \"device_makespan_seconds\": "
                      << formatDouble(run.makespanSeconds, 6)
                      << ", \"modeled_speedup\": "
                      << formatDouble(run.modeledSpeedup, 3)
                      << ", \"completed\": " << run.completed
                      << ", \"rejected\": " << run.rejected
                      << ", \"interleaved_jobs\": "
                      << run.interleavedJobs << ", \"per_core\": [";
            for (std::size_t c = 0; c < run.fleet.cores.size(); ++c) {
                const CoreStats& core = run.fleet.cores[c];
                std::cout
                    << (c > 0 ? ", " : "") << "{\"core\": " << core.core
                    << ", \"jobs\": " << core.jobs
                    << ", \"streams\": " << core.streams
                    << ", \"interleaved_jobs\": " << core.interleavedJobs
                    << ", \"busy_seconds\": "
                    << formatDouble(core.busySeconds, 6)
                    << ", \"device_seconds\": "
                    << formatDouble(core.deviceSeconds, 6)
                    << ", \"utilization_percent\": "
                    << formatDouble(core.utilizationPercent, 2)
                    << ", \"cache_hits\": " << core.cache.hits
                    << ", \"cache_misses\": " << core.cache.misses
                    << "}";
            }
            std::cout << "]}" << (i + 1 < runs.size() ? "," : "")
                      << "\n";
        }
        std::cout << "  ],\n  \"scaling\": {";
        bool first = true;
        for (const Run& run : runs) {
            std::cout << (first ? "" : ", ") << "\"modeled_speedup_"
                      << run.cores << "core\": "
                      << formatDouble(run.modeledSpeedup, 3);
            first = false;
        }
        std::cout << "}\n}\n";
    } else {
        std::cout << "# fleet scaling: " << structureCount
                  << " structures, " << sessionCount << " sessions, "
                  << requestCount << " requests per run\n";
        TextTable table({"cores", "wall_s", "jobs_per_s",
                         "wall_speedup", "modeled_speedup",
                         "interleaved", "rejected"});
        for (const Run& run : runs)
            table.addRow({std::to_string(run.cores),
                          formatDouble(run.wallSeconds, 3),
                          formatDouble(run.throughput, 1),
                          formatDouble(run.wallSpeedup, 2),
                          formatDouble(run.modeledSpeedup, 2),
                          std::to_string(run.interleavedJobs),
                          std::to_string(run.rejected)});
        table.print(std::cout);
    }

    // Exit code doubles as a sanity gate: every request must complete
    // (the queue is sized for the workload, so rejects mean a bug).
    int failures = 0;
    for (const Run& run : runs)
        if (run.rejected != 0 ||
            run.completed != static_cast<Count>(requestCount))
            ++failures;
    return failures;
}
