/**
 * @file
 * Fig. 12 reproduction: absolute solver run time (lower is better) on
 * the CPU backend, the GPU model, and the customized FPGA, per
 * problem.
 */

#include "bench_util.hpp"

using namespace rsqp;
using namespace rsqp::bench;

int
main(int argc, char** argv)
{
    BenchOptions options = parseOptions(argc, argv);
    if (options.sizesPerDomain == 6)
        options.sizesPerDomain = 5;  // runtime figure; keep it brisk

    TextTable table({"problem", "domain", "nnz", "iters", "cpu_ms",
                     "cuda_ms", "fpga_ms", "winner"});
    for (const ProblemSpec& spec :
         benchmarkSuite(options.sizesPerDomain)) {
        const ProblemMeasurement meas = measureProblem(spec, options);
        const Real cpu = meas.cpuSeconds;
        const Real gpu = meas.gpu.totalSeconds();
        const Real fpga = meas.deviceCustom.deviceSeconds;
        const char* winner = "fpga";
        if (cpu < gpu && cpu < fpga)
            winner = "cpu";
        else if (gpu < fpga)
            winner = "cuda";
        table.addRow({meas.name, toString(meas.domain),
                      std::to_string(meas.nnz),
                      std::to_string(meas.cpuInfo.iterations),
                      formatFixed(cpu * 1e3, 3),
                      formatFixed(gpu * 1e3, 3),
                      formatFixed(fpga * 1e3, 3), winner});
    }
    emitTable(table, options,
              "Fig. 12: solver run time on CPU, GPU (model) and "
              "customized FPGA (simulated)");
    std::cout << "paper shape: FPGA fastest on small/medium problems;\n"
              << "GPU competitive only at the largest sizes; CPU wins\n"
              << "nowhere once customization is applied (except eqqp\n"
              << "extremes).\n";
    return 0;
}
