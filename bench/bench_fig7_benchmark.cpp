/**
 * @file
 * Fig. 7 reproduction: the benchmark scatter — number of decision
 * variables against nnz(P) + nnz(A) for all 120 problems (or the
 * reduced suite with --sizes).
 */

#include "bench_util.hpp"

using namespace rsqp;
using namespace rsqp::bench;

int
main(int argc, char** argv)
{
    BenchOptions options = parseOptions(argc, argv);
    // Fig. 7 is generation-only; default to the full suite.
    if (options.sizesPerDomain == 6)
        options.sizesPerDomain = 20;

    TextTable table({"problem", "domain", "size_param", "n", "m",
                     "nnz_P", "nnz_A", "nnz_total"});
    Count min_nnz = 1LL << 60, max_nnz = 0;
    Index min_n = 1 << 30, max_n = 0;
    for (const ProblemSpec& spec :
         benchmarkSuite(options.sizesPerDomain)) {
        const QpProblem qp = spec.generate();
        table.addRow({spec.name, toString(spec.domain),
                      std::to_string(spec.sizeParam),
                      std::to_string(qp.numVariables()),
                      std::to_string(qp.numConstraints()),
                      std::to_string(qp.pUpper.nnz()),
                      std::to_string(qp.a.nnz()),
                      std::to_string(qp.totalNnz())});
        min_nnz = std::min(min_nnz, qp.totalNnz());
        max_nnz = std::max(max_nnz, qp.totalNnz());
        min_n = std::min(min_n, qp.numVariables());
        max_n = std::max(max_n, qp.numVariables());
    }
    emitTable(table, options,
              "Fig. 7: benchmark suite (n vs nnz(P)+nnz(A))");
    std::cout << "problems: " << table.rowCount() << "\n"
              << "nnz range: " << min_nnz << " .. " << max_nnz << "\n"
              << "n range:   " << min_n << " .. " << max_n << "\n"
              << "paper: 120 problems, nnz ~1e2..1e6, n ~1e1..1e5\n";
    return 0;
}
