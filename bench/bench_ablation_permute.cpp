/**
 * @file
 * Sec. 4.4 ablation: adapting the problem structure by symmetric
 * row/column permutation. The paper observes that the KKT symmetry
 * constraint leaves "little improvement" on E_p and E_c; this harness
 * quantifies that with the adaptProblemStructure search (random
 * symmetric permutations plus nnz-clustering of constraint rows)
 * against the identity, per benchmark problem.
 */

#include "bench_util.hpp"
#include "core/structure_adapt.hpp"

using namespace rsqp;
using namespace rsqp::bench;

int
main(int argc, char** argv)
{
    BenchOptions options = parseOptions(argc, argv);
    if (options.sizesPerDomain == 6)
        options.sizesPerDomain = 4;

    TextTable table({"problem", "domain", "eta_identity", "eta_best",
                     "gain_pct", "ep_identity", "ep_best",
                     "candidates"});
    RunningStats gains;
    for (const ProblemSpec& spec :
         benchmarkSuite(options.sizesPerDomain)) {
        QpProblem qp = spec.generate();
        if (qp.totalNnz() > 200000)
            continue;  // adaptation search is offline-expensive
        ruizEquilibrate(qp, 10);

        CustomizeSettings settings;
        settings.c = options.deviceC;
        const AdaptationResult result =
            adaptProblemStructure(qp, settings, 4, spec.seed);
        gains.add(100.0 * result.gain());
        table.addRow({spec.name, toString(spec.domain),
                      formatFixed(result.identity.eta, 3),
                      formatFixed(result.best.eta, 3),
                      formatFixed(100.0 * result.gain(), 1),
                      std::to_string(result.identity.ep),
                      std::to_string(result.best.ep),
                      std::to_string(result.candidatesTried)});
    }
    emitTable(table, options,
              "Sec. 4.4 ablation: symmetric permutation adaptation vs "
              "identity");
    std::cout << "mean eta gain from permutation: "
              << formatFixed(gains.mean(), 1) << " % (max "
              << formatFixed(gains.max(), 1)
              << " %) — the paper's 'little improvement'\n";
    return 0;
}
