/**
 * @file
 * Fig. 13 reproduction: power efficiency (problem instances per second
 * per watt) of the simulated FPGA against the GPU model across the
 * benchmark. Paper: FPGA steady ~19 W vs GPU 44-126 W, up to 22.7x
 * better efficiency.
 */

#include "bench_util.hpp"

using namespace rsqp;
using namespace rsqp::bench;

int
main(int argc, char** argv)
{
    BenchOptions options = parseOptions(argc, argv);
    if (options.sizesPerDomain == 6)
        options.sizesPerDomain = 5;

    TextTable table({"problem", "domain", "nnz", "fpga_W", "gpu_W",
                     "fpga_eff", "gpu_eff", "ratio"});
    Real best_ratio = 0.0;
    RunningStats gpu_watts;

    for (const ProblemSpec& spec :
         benchmarkSuite(options.sizesPerDomain)) {
        const ProblemMeasurement meas = measureProblem(spec, options);
        ArchConfig config;
        config.c = options.deviceC;
        config.structures = StructureSet::baseline(options.deviceC);
        const Real fpga_w = fpgaPowerWatts(config);
        const Real fpga_eff = powerEfficiency(
            meas.deviceCustom.deviceSeconds, fpga_w);
        const Real gpu_eff =
            powerEfficiency(meas.gpu.totalSeconds(), meas.gpu.watts);
        const Real ratio = fpga_eff / gpu_eff;
        best_ratio = std::max(best_ratio, ratio);
        gpu_watts.add(meas.gpu.watts);

        table.addRow({meas.name, toString(meas.domain),
                      std::to_string(meas.nnz), formatFixed(fpga_w, 1),
                      formatFixed(meas.gpu.watts, 1),
                      formatFixed(fpga_eff, 2),
                      formatFixed(gpu_eff, 3), formatFixed(ratio, 1)});
    }
    emitTable(table, options,
              "Fig. 13: power efficiency (instances/s/W), FPGA vs GPU");
    std::cout << "GPU power range: " << formatFixed(gpu_watts.min(), 1)
              << " - " << formatFixed(gpu_watts.max(), 1)
              << " W (paper: 44-126 W)\n"
              << "FPGA power: ~19 W flat (paper: ~19 W)\n"
              << "max efficiency ratio: " << formatFixed(best_ratio, 1)
              << "x (paper: up to 22.7x)\n";
    return 0;
}
