/**
 * @file
 * Fig. 10 reproduction: end-to-end solver speedup of the customized
 * architecture over the baseline generic design (paper: 1.4x-7.0x,
 * weakest on eqqp).
 */

#include <map>

#include "bench_util.hpp"

using namespace rsqp;
using namespace rsqp::bench;

int
main(int argc, char** argv)
{
    const BenchOptions options = parseOptions(argc, argv);

    TextTable table({"problem", "domain", "nnz", "base_ms", "custom_ms",
                     "speedup", "arch"});
    std::map<Domain, RunningStats> per_domain;
    RunningStats all;

    for (const ProblemSpec& spec :
         benchmarkSuite(options.sizesPerDomain)) {
        const ProblemMeasurement meas = measureProblem(spec, options);
        const Real speedup = meas.deviceBaseline.deviceSeconds /
            meas.deviceCustom.deviceSeconds;
        per_domain[spec.domain].add(speedup);
        all.add(speedup);
        table.addRow({meas.name, toString(meas.domain),
                      std::to_string(meas.nnz),
                      formatFixed(meas.deviceBaseline.deviceSeconds *
                                  1e3, 3),
                      formatFixed(meas.deviceCustom.deviceSeconds * 1e3,
                                  3),
                      formatFixed(speedup, 2),
                      meas.deviceCustom.archName});
    }
    emitTable(table, options,
              "Fig. 10: solver speedup from problem-specific "
              "customization (C = " +
                  std::to_string(options.deviceC) + ")");

    std::cout << "speedup: min " << formatFixed(all.min(), 2)
              << "  mean " << formatFixed(all.mean(), 2) << "  max "
              << formatFixed(all.max(), 2) << "\n";
    std::cout << "per-domain mean:\n";
    for (const auto& [domain, stats] : per_domain)
        std::cout << "  " << toString(domain) << ": "
                  << formatFixed(stats.mean(), 2) << "\n";
    std::cout << "paper: 1.4x-7.0x; least on eqqp\n";
    return 0;
}
