/**
 * @file
 * Precision ablation: the physical RSQP MAC trees compute in FP32.
 * This harness runs the simulated accelerator with the FP32 datapath
 * against the FP64 reference, comparing iteration counts, objective
 * error and termination — the fidelity check that FP32 hardware can
 * carry the algorithm at the paper's tolerances (cuOSQP made the same
 * choice on the GPU).
 */

#include "bench_util.hpp"

using namespace rsqp;
using namespace rsqp::bench;

int
main(int argc, char** argv)
{
    BenchOptions options = parseOptions(argc, argv);
    if (options.sizesPerDomain == 6)
        options.sizesPerDomain = 3;

    // FP32 accumulation floors the achievable PCG accuracy, so the
    // tolerances follow the paper's defaults (1e-3) and the PCG floor
    // sits above single-precision noise.
    OsqpSettings settings = benchSettings(options);
    settings.epsAbs = 1e-3;
    settings.epsRel = 1e-3;
    settings.pcg.epsRel = 1e-6;

    TextTable table({"problem", "domain", "fp64_iters", "fp32_iters",
                     "fp64_status", "fp32_status", "obj_rel_err"});
    for (const ProblemSpec& spec :
         benchmarkSuite(options.sizesPerDomain)) {
        const QpProblem qp = spec.generate();
        if (qp.totalNnz() > 300000)
            continue;  // keep the ablation quick

        CustomizeSettings cfg64;
        cfg64.c = options.deviceC;
        RsqpSolver fp64(qp, settings, cfg64);
        const RsqpResult r64 = fp64.solve();

        CustomizeSettings cfg32;
        cfg32.c = options.deviceC;
        cfg32.fp32Datapath = true;
        RsqpSolver fp32(qp, settings, cfg32);
        const RsqpResult r32 = fp32.solve();

        const Real rel_err =
            std::abs(r32.objective - r64.objective) /
            (1.0 + std::abs(r64.objective));
        table.addRow({spec.name, toString(spec.domain),
                      std::to_string(r64.iterations),
                      std::to_string(r32.iterations),
                      statusToString(r64.status), statusToString(r32.status),
                      formatSci(rel_err, 1)});
    }
    emitTable(table, options,
              "FP32 vs FP64 datapath on the simulated accelerator");
    std::cout << "the FP32 MAC trees reach the paper's default "
                 "tolerances with iteration counts close to FP64\n";
    return 0;
}
