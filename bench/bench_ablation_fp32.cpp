/**
 * @file
 * Precision ablation: the physical RSQP MAC trees compute in FP32.
 * This harness runs the simulated accelerator with the FP32 datapath
 * against the FP64 reference, comparing iteration counts, objective
 * error and termination — the fidelity check that FP32 hardware can
 * carry the algorithm at the paper's tolerances (cuOSQP made the same
 * choice on the GPU).
 *
 * Alongside the simulated ablation, each problem is also solved with
 * the native mixed-precision PCG backend (fp32-storage /
 * fp64-accumulate inner sweeps inside fp64 iterative refinement, the
 * ExecutionConfig::precision knob), so the simulated fp32 iteration
 * counts sit next to the native mixed iterations and refinement-sweep
 * totals for the same instances.
 */

#include "bench_util.hpp"

using namespace rsqp;
using namespace rsqp::bench;

int
main(int argc, char** argv)
{
    BenchOptions options = parseOptions(argc, argv);
    if (options.sizesPerDomain == 6)
        options.sizesPerDomain = 3;

    // FP32 accumulation floors the achievable PCG accuracy, so the
    // tolerances follow the paper's defaults (1e-3) and the PCG floor
    // sits above single-precision noise.
    OsqpSettings settings = benchSettings(options);
    settings.epsAbs = 1e-3;
    settings.epsRel = 1e-3;
    settings.pcg.epsRel = 1e-6;

    OsqpSettings native_mixed = settings;
    native_mixed.execution.precision = PrecisionMode::MixedFp32;

    std::string last_backend = "admm";
    TextTable table({"problem", "domain", "fp64_iters", "fp32_iters",
                     "mixed_iters", "refine_sweeps", "fp64_rescues",
                     "fp64_status", "fp32_status", "obj_rel_err",
                     "mixed_rel_err"});
    for (const ProblemSpec& spec :
         benchmarkSuite(options.sizesPerDomain)) {
        const QpProblem qp = spec.generate();
        if (qp.totalNnz() > 300000)
            continue;  // keep the ablation quick

        CustomizeSettings cfg64;
        cfg64.c = options.deviceC;
        RsqpSolver fp64(qp, settings, cfg64);
        const RsqpResult r64 = fp64.solve();

        CustomizeSettings cfg32;
        cfg32.c = options.deviceC;
        cfg32.fp32Datapath = true;
        RsqpSolver fp32(qp, settings, cfg32);
        const RsqpResult r32 = fp32.solve();

        // Native mixed-precision PCG on the host, same tolerances.
        OsqpSolver mixed_solver(qp, native_mixed);
        const OsqpResult mixed = mixed_solver.solve();
        if (!mixed.info.telemetry.backend.empty())
            last_backend = mixed.info.telemetry.backend;

        const Real rel_err =
            std::abs(r32.objective - r64.objective) /
            (1.0 + std::abs(r64.objective));
        const Real mixed_rel_err =
            std::abs(mixed.info.objective - r64.objective) /
            (1.0 + std::abs(r64.objective));
        table.addRow({spec.name, toString(spec.domain),
                      std::to_string(r64.iterations),
                      std::to_string(r32.iterations),
                      std::to_string(mixed.info.iterations),
                      std::to_string(mixed.info.refinementSweepsTotal),
                      std::to_string(mixed.info.fp64Rescues),
                      statusToString(r64.status), statusToString(r32.status),
                      formatSci(rel_err, 1),
                      formatSci(mixed_rel_err, 1)});
    }
    emitTable(table, options,
              "FP32 vs FP64 datapath (simulated accelerator) and "
              "native mixed-precision PCG [backend=" +
                  last_backend + "]");
    std::cout << "the FP32 MAC trees reach the paper's default "
                 "tolerances with iteration counts close to FP64; "
                 "the native mixed-precision PCG matches the fp64 "
                 "objective through iterative refinement\n";
    return 0;
}
