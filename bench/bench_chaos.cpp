/**
 * @file
 * Chaos benchmark: the solver fleet under a seeded whole-core fault
 * schedule. Runs the same mixed-structure workload twice through a
 * multi-core SolverService — once undisturbed, once with
 * FleetFaultInjector::standardSchedule (one core killed mid-stream,
 * one core hung past the stall watchdog) — and reports what the fault
 * domain kept:
 *
 *   goodput retention   solved-in-chaos / solved-undisturbed
 *   lost jobs           submitted minus resolved (must be zero: every
 *                       admitted job resolves exactly once)
 *   bitwise equal       every chaos-run solution, failed-over or not,
 *                       matches the undisturbed run bit for bit
 *   failover latency    mean queue wait of the jobs that were pulled
 *                       off a failed core and re-run
 *
 * The exit code doubles as the CI gate: zero lost jobs, bitwise
 * equality, both scheduled faults delivered, and goodput retention of
 * at least 90%.
 *
 * Flags:
 *   --quick       smaller workload (CI smoke)
 *   --json        JSON object on stdout (machine-readable artifact)
 *   --seed=N      fault-schedule and generator seed (default 0)
 *   --cores=N     fleet size (default 4)
 *   --requests=N  requests per session (default 6, quick 4)
 */

#include <algorithm>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "rsqp_api.hpp"

namespace
{

using namespace rsqp;

struct Options
{
    bool quick = false;
    bool json = false;
    std::uint64_t seed = 0;
    unsigned cores = 4;
    Index requestsPerSession = 6;
};

Options
parseOptions(int argc, char** argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            options.quick = true;
            options.requestsPerSession = 4;
        } else if (arg == "--json") {
            options.json = true;
        } else if (arg.rfind("--seed=", 0) == 0) {
            options.seed =
                static_cast<std::uint64_t>(std::stoull(arg.substr(7)));
        } else if (arg.rfind("--cores=", 0) == 0) {
            options.cores =
                static_cast<unsigned>(std::stoul(arg.substr(8)));
        } else if (arg.rfind("--requests=", 0) == 0) {
            options.requestsPerSession =
                static_cast<Index>(std::stoi(arg.substr(11)));
        } else {
            std::cerr << "unknown flag: " << arg << "\n"
                      << "flags: --quick --json --seed=N --cores=N "
                         "--requests=N\n";
            std::exit(2);
        }
    }
    return options;
}

/** Same structure, new values: request r of one session's stream. */
QpProblem
perturbValues(const QpProblem& base, Index request)
{
    QpProblem out = base;
    const Real shift = 0.05 * static_cast<Real>(request + 1);
    for (Real& v : out.q)
        v = v * (1.0 + 0.01 * static_cast<Real>(request)) + shift;
    return out;
}

struct RunOutcome
{
    std::vector<SessionResult> results; ///< submission order
    double wallSeconds = 0.0;
    Count solved = 0;
    Count resolved = 0; ///< futures that came back with any status
    ServiceStats stats;
    FleetStats fleet;
};

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << value;
    return os.str();
}

} // namespace

int
main(int argc, char** argv)
{
    const Options options = parseOptions(argc, argv);

    SessionConfig sessionConfig;
    sessionConfig.osqp.maxIter = options.quick ? 250 : 1000;
    sessionConfig.custom.c = options.quick ? 16 : 64;

    // Mixed workload: every suite domain at a couple of sizes, one
    // session per structure, each session re-solving its structure
    // with fresh values (the parametric serving pattern).
    struct SizeRange
    {
        Index base;
        Index step;
    };
    auto sizeRange = [](Domain domain) -> SizeRange {
        switch (domain) {
        case Domain::Control: return {3, 2};
        case Domain::Huber: return {16, 8};
        case Domain::Lasso: return {40, 20};
        case Domain::Portfolio: return {40, 20};
        case Domain::Svm: return {40, 20};
        case Domain::Eqqp: return {80, 40};
        }
        return {20, 8};
    };
    const Index sizesPerDomain = options.quick ? 1 : 2;
    std::vector<QpProblem> bases;
    for (Domain domain : allDomains())
        for (Index k = 0; k < sizesPerDomain; ++k) {
            const SizeRange range = sizeRange(domain);
            bases.push_back(generateProblem(
                domain, range.base + range.step * k,
                options.seed + bases.size()));
        }
    const Index sessionCount = static_cast<Index>(bases.size());
    const Index requestCount =
        sessionCount * options.requestsPerSession;

    auto runWorkload =
        [&](std::shared_ptr<FleetFaultInjector> injector) {
            ServiceConfig serviceConfig;
            serviceConfig.maxQueueDepth =
                static_cast<std::size_t>(requestCount) + 8;
            serviceConfig.execution.numThreads = 1;
            serviceConfig.fleet.coreCount = options.cores;
            serviceConfig.fleet.policy = PlacementPolicy::Affinity;
            serviceConfig.fleet.slotsPerCore = 1;
            serviceConfig.fleet.affinityQueueBound = 2;
            // Modeled device times are milliseconds; a millisecond-
            // scale ladder readmits within the run.
            serviceConfig.fleet.faultDomain.backoffBaseSeconds = 1e-4;
            serviceConfig.fleet.faultInjector = std::move(injector);
            SolverService service(serviceConfig);

            std::vector<SessionId> ids;
            for (Index s = 0; s < sessionCount; ++s)
                ids.push_back(service.openSession(sessionConfig));

            Timer timer;
            std::vector<std::future<SessionResult>> futures;
            for (Index r = 0; r < options.requestsPerSession; ++r)
                for (Index s = 0; s < sessionCount; ++s)
                    futures.push_back(service.submit(
                        ids[static_cast<std::size_t>(s)],
                        perturbValues(
                            bases[static_cast<std::size_t>(s)], r)));

            RunOutcome outcome;
            for (std::future<SessionResult>& future : futures) {
                outcome.results.push_back(future.get());
                ++outcome.resolved;
                if (outcome.results.back().status ==
                    SolveStatus::Solved)
                    ++outcome.solved;
            }
            outcome.wallSeconds = timer.seconds();
            service.waitIdle();
            outcome.stats = service.stats();
            outcome.fleet = service.fleetStats();
            return outcome;
        };

    const RunOutcome baseline = runWorkload(nullptr);
    auto injector = std::make_shared<FleetFaultInjector>(
        FleetFaultInjector::standardSchedule(
            options.seed, static_cast<Count>(requestCount)));
    const RunOutcome chaos = runWorkload(injector);

    // Comparison. Session streams are deterministic and a fault only
    // ever fires before a job touches its session, so every chaos
    // solution must match the undisturbed run bit for bit.
    bool bitwiseEqual =
        baseline.results.size() == chaos.results.size();
    Count failedOverJobs = 0;
    double failoverWaitSum = 0.0;
    for (std::size_t i = 0;
         bitwiseEqual && i < chaos.results.size(); ++i) {
        const SessionResult& a = baseline.results[i];
        const SessionResult& b = chaos.results[i];
        if (b.failovers > 0) {
            ++failedOverJobs;
            failoverWaitSum += b.telemetry.queueWaitSeconds;
        }
        if (a.status != b.status || a.iterations != b.iterations ||
            a.x != b.x || a.y != b.y)
            bitwiseEqual = false;
    }
    const double failoverLatency =
        failedOverJobs > 0
            ? failoverWaitSum / static_cast<double>(failedOverJobs)
            : 0.0;
    const double goodputRetention =
        baseline.solved > 0
            ? static_cast<double>(chaos.solved) /
                  static_cast<double>(baseline.solved)
            : 0.0;
    const Count lostJobs =
        static_cast<Count>(requestCount) - chaos.resolved;
    const Count accounted = chaos.stats.completed +
                            chaos.stats.rejected +
                            chaos.stats.expired +
                            chaos.stats.shutdownDrained;
    const Count faultsDelivered = injector->killsDelivered() +
                                  injector->hangsDelivered() +
                                  injector->degradesDelivered();

    if (options.json) {
        auto emitRun = [&](const char* name, const RunOutcome& run) {
            std::cout << "  \"" << name << "\": {\"wall_seconds\": "
                      << formatDouble(run.wallSeconds, 6)
                      << ", \"solved\": " << run.solved
                      << ", \"resolved\": " << run.resolved
                      << ", \"completed\": " << run.stats.completed
                      << ", \"rejected\": " << run.stats.rejected
                      << ", \"expired\": " << run.stats.expired
                      << ", \"failovers\": " << run.stats.failovers
                      << ", \"quarantines\": "
                      << run.stats.quarantines
                      << ", \"readmissions\": "
                      << run.stats.readmissions << ", \"probes\": "
                      << run.fleet.probes
                      << ", \"partition_invalidations\": "
                      << run.fleet.partitionInvalidations
                      << ", \"virtual_seconds\": "
                      << formatDouble(run.fleet.virtualSeconds, 6)
                      << "}";
        };
        std::cout << "{\n  \"seed\": " << options.seed
                  << ",\n  \"cores\": " << options.cores
                  << ",\n  \"workload\": {\"structures\": "
                  << sessionCount
                  << ", \"requests\": " << requestCount << "},\n"
                  << "  \"schedule\": {\"kills\": "
                  << injector->killsDelivered() << ", \"hangs\": "
                  << injector->hangsDelivered() << ", \"degrades\": "
                  << injector->degradesDelivered() << "},\n";
        emitRun("baseline", baseline);
        std::cout << ",\n";
        emitRun("chaos", chaos);
        std::cout << ",\n  \"comparison\": {\"goodput_retention\": "
                  << formatDouble(goodputRetention, 4)
                  << ", \"bitwise_equal\": "
                  << (bitwiseEqual ? "true" : "false")
                  << ", \"lost_jobs\": " << lostJobs
                  << ", \"accounted\": " << accounted
                  << ", \"failed_over_jobs\": " << failedOverJobs
                  << ", \"failover_latency_seconds\": "
                  << formatDouble(failoverLatency, 6) << "}\n}\n";
    } else {
        std::cout << "# chaos: " << sessionCount << " structures, "
                  << requestCount << " requests, " << options.cores
                  << " cores, seed " << options.seed << "\n";
        TextTable table({"run", "wall_s", "solved", "failovers",
                         "quarantines", "readmissions"});
        table.addRow({"baseline", formatDouble(baseline.wallSeconds, 3),
                      std::to_string(baseline.solved),
                      std::to_string(baseline.stats.failovers),
                      std::to_string(baseline.stats.quarantines),
                      std::to_string(baseline.stats.readmissions)});
        table.addRow({"chaos", formatDouble(chaos.wallSeconds, 3),
                      std::to_string(chaos.solved),
                      std::to_string(chaos.stats.failovers),
                      std::to_string(chaos.stats.quarantines),
                      std::to_string(chaos.stats.readmissions)});
        table.print(std::cout);
        std::cout << "goodput_retention " << goodputRetention
                  << "  bitwise_equal "
                  << (bitwiseEqual ? "yes" : "no") << "  lost_jobs "
                  << lostJobs << "  failover_latency_s "
                  << formatDouble(failoverLatency, 6) << "\n";
    }

    // Exit gates (what chaos-smoke enforces in CI): nothing lost,
    // nothing double-counted, both scheduled faults delivered,
    // bitwise-identical results, and >= 90% goodput retention.
    int failures = 0;
    if (lostJobs != 0)
        ++failures;
    if (accounted != chaos.stats.submitted)
        ++failures;
    if (faultsDelivered != 2)
        ++failures;
    if (!bitwiseEqual)
        ++failures;
    if (goodputRetention < 0.9)
        ++failures;
    return failures;
}
