/**
 * @file
 * Compressed Vector Buffers (paper Sec. 3.4 / 4.3).
 *
 * The SpMV engine needs C random accesses per cycle into the
 * multiplicand vector. Naive duplication stores C full copies (one per
 * single-ported bank): update cost L cycles, E_c = C. RSQP instead
 * computes, per bank, which vector elements that bank ever serves
 * (the access-requirement matrix V) and then packs elements into a
 * shallow address space such that no two elements sharing an address
 * are needed by the same bank — the MILP (5) of the paper, solved
 * approximately with First-Fit and exactly (small cases) with
 * branch-and-bound for validation.
 */

#ifndef RSQP_CVB_CVB_HPP
#define RSQP_CVB_CVB_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "encoding/packing.hpp"

namespace rsqp
{

/**
 * Per-element bank-requirement bitmasks: bit k of laneMask[j] is set
 * iff vector element j is ever read by datapath lane (bank) k.
 * Datapath widths up to 64 fit one word per element.
 */
struct AccessRequirements
{
    Index c = 0;       ///< number of banks (datapath width)
    Index length = 0;  ///< vector length L
    std::vector<std::uint64_t> laneMask;  ///< size L

    /** Number of (element, bank) pairs — total stored copies. */
    Count totalCopies() const;

    /** Elements with at least one requesting bank. */
    Index usedElements() const;
};

/** Build V from a packed matrix stream (lane k reads colIdx[k]). */
AccessRequirements buildAccessRequirements(const PackedMatrix& packed);

/** Element ordering heuristic for First-Fit. */
enum class FirstFitOrder
{
    InputOrder,  ///< elements in index order
    Decreasing,  ///< most-requested elements first (FFD)
};

/**
 * The compression map M of the paper, in executable form.
 *
 * address[j] is the CVB address of element j (-1 if the element is
 * never read and therefore not stored). bankContents[k][a] is the
 * element stored by bank k at address a (-1 if that cell is unused).
 */
struct CvbPlan
{
    Index c = 0;
    Index length = 0;  ///< vector length L
    Index depth = 0;   ///< addresses used (sum of G in the paper)
    /** Baseline full duplication (bank tables left implicit). */
    bool fullDuplication = false;
    IndexVector address;                    ///< size L
    std::vector<IndexVector> bankContents;  ///< c banks x depth cells

    /** Effective copy count E_c = depth * C / L (>= raw storage). */
    Real ec() const;

    /**
     * Cycles to broadcast a new vector into the CVB: one address per
     * cycle, but never faster than streaming the source vector.
     */
    Count updateCycles() const;

    /** Total occupied cells (on-chip memory footprint in words). */
    Count storedCopies() const;

    /**
     * Validity: every used element stored in every requesting bank at
     * its address, and no bank cell double-booked.
     */
    bool isConsistentWith(const AccessRequirements& req) const;
};

/** First-Fit CVB compression (the paper's practical algorithm). */
CvbPlan compressFirstFit(const AccessRequirements& req,
                         FirstFitOrder order = FirstFitOrder::Decreasing);

/** Trivial full-duplication plan (baseline architecture: E_c = C). */
CvbPlan fullDuplicationPlan(const AccessRequirements& req);

/** Same, from dimensions only (no requirements needed). */
CvbPlan fullDuplicationPlan(Index c, Index length);

/**
 * Exact minimum depth via branch-and-bound on the conflict graph
 * (elements conflict iff their lane masks intersect). Exponential —
 * use only for small instances (validation tests).
 *
 * @param max_elements Hard safety cap on the instance size.
 */
Index exactMinimumDepth(const AccessRequirements& req,
                        Index max_elements = 24);

} // namespace rsqp

#endif // RSQP_CVB_CVB_HPP
