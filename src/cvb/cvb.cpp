#include "cvb.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/logging.hpp"

namespace rsqp
{

Count
AccessRequirements::totalCopies() const
{
    Count copies = 0;
    for (std::uint64_t mask : laneMask)
        copies += std::popcount(mask);
    return copies;
}

Index
AccessRequirements::usedElements() const
{
    Index used = 0;
    for (std::uint64_t mask : laneMask)
        if (mask != 0)
            ++used;
    return used;
}

AccessRequirements
buildAccessRequirements(const PackedMatrix& packed)
{
    RSQP_ASSERT(packed.c <= 64,
                "lane masks support datapath widths up to 64");
    AccessRequirements req;
    req.c = packed.c;
    req.length = packed.cols;
    req.laneMask.assign(static_cast<std::size_t>(packed.cols), 0);
    for (const LanePack& pack : packed.packs) {
        for (Index k = 0; k < packed.c; ++k) {
            const Index j = pack.colIdx[static_cast<std::size_t>(k)];
            if (j >= 0)
                req.laneMask[static_cast<std::size_t>(j)] |=
                    std::uint64_t(1) << k;
        }
    }
    return req;
}

Real
CvbPlan::ec() const
{
    if (length == 0)
        return 1.0;
    return static_cast<Real>(depth) * static_cast<Real>(c) /
        static_cast<Real>(length);
}

Count
CvbPlan::updateCycles() const
{
    const Count stream = (static_cast<Count>(length) + c - 1) / c;
    return std::max<Count>(depth, stream);
}

Count
CvbPlan::storedCopies() const
{
    if (fullDuplication)
        return static_cast<Count>(c) * static_cast<Count>(length);
    Count copies = 0;
    for (const IndexVector& bank : bankContents)
        for (Index element : bank)
            if (element >= 0)
                ++copies;
    return copies;
}

bool
CvbPlan::isConsistentWith(const AccessRequirements& req) const
{
    if (req.c != c || req.length != length)
        return false;
    if (fullDuplication)
        return true;  // every bank holds the complete vector
    for (Index j = 0; j < length; ++j) {
        const std::uint64_t mask = req.laneMask[static_cast<std::size_t>(j)];
        const Index addr = address[static_cast<std::size_t>(j)];
        if (mask == 0)
            continue;
        if (addr < 0 || addr >= depth)
            return false;
        for (Index k = 0; k < c; ++k) {
            if (!(mask & (std::uint64_t(1) << k)))
                continue;
            if (bankContents[static_cast<std::size_t>(k)]
                            [static_cast<std::size_t>(addr)] != j)
                return false;
        }
    }
    return true;
}

CvbPlan
compressFirstFit(const AccessRequirements& req, FirstFitOrder order)
{
    CvbPlan plan;
    plan.c = req.c;
    plan.length = req.length;
    plan.address.assign(static_cast<std::size_t>(req.length), -1);

    IndexVector elements;
    for (Index j = 0; j < req.length; ++j)
        if (req.laneMask[static_cast<std::size_t>(j)] != 0)
            elements.push_back(j);
    if (order == FirstFitOrder::Decreasing) {
        std::stable_sort(elements.begin(), elements.end(),
                         [&](Index a, Index b) {
                             return std::popcount(req.laneMask[
                                 static_cast<std::size_t>(a)]) >
                                 std::popcount(req.laneMask[
                                     static_cast<std::size_t>(b)]);
                         });
    }

    // usedLanes[a] = union of lane masks already placed at address a.
    std::vector<std::uint64_t> used_lanes;
    for (Index j : elements) {
        const std::uint64_t mask =
            req.laneMask[static_cast<std::size_t>(j)];
        Index addr = -1;
        for (std::size_t a = 0; a < used_lanes.size(); ++a) {
            if ((used_lanes[a] & mask) == 0) {
                addr = static_cast<Index>(a);
                break;
            }
        }
        if (addr < 0) {
            addr = static_cast<Index>(used_lanes.size());
            used_lanes.push_back(0);
        }
        used_lanes[static_cast<std::size_t>(addr)] |= mask;
        plan.address[static_cast<std::size_t>(j)] = addr;
    }

    plan.depth = static_cast<Index>(used_lanes.size());
    plan.bankContents.assign(static_cast<std::size_t>(req.c),
                             IndexVector(static_cast<std::size_t>(
                                 plan.depth), -1));
    for (Index j : elements) {
        const std::uint64_t mask =
            req.laneMask[static_cast<std::size_t>(j)];
        const Index addr = plan.address[static_cast<std::size_t>(j)];
        for (Index k = 0; k < req.c; ++k)
            if (mask & (std::uint64_t(1) << k))
                plan.bankContents[static_cast<std::size_t>(k)]
                                 [static_cast<std::size_t>(addr)] = j;
    }
    return plan;
}

CvbPlan
fullDuplicationPlan(const AccessRequirements& req)
{
    return fullDuplicationPlan(req.c, req.length);
}

CvbPlan
fullDuplicationPlan(Index c, Index length)
{
    CvbPlan plan;
    plan.c = c;
    plan.length = length;
    plan.depth = length;
    plan.fullDuplication = true;
    plan.address.resize(static_cast<std::size_t>(length));
    std::iota(plan.address.begin(), plan.address.end(), Index{0});
    // Every bank holds the complete vector; the bank tables stay
    // implicit (bankContents[k][a] == a for every bank).
    return plan;
}

namespace
{

/** Recursive exact colorer: assign element idx to an address. */
void
exactColor(const std::vector<std::uint64_t>& masks, std::size_t idx,
           std::vector<std::uint64_t>& used, Index& best)
{
    if (static_cast<Index>(used.size()) >= best)
        return;  // prune: already as deep as the incumbent
    if (idx == masks.size()) {
        best = static_cast<Index>(used.size());
        return;
    }
    const std::uint64_t mask = masks[idx];
    for (std::size_t a = 0; a < used.size(); ++a) {
        if ((used[a] & mask) == 0) {
            used[a] |= mask;
            exactColor(masks, idx + 1, used, best);
            used[a] &= ~mask;
        }
    }
    // Open a new address.
    used.push_back(mask);
    exactColor(masks, idx + 1, used, best);
    used.pop_back();
}

} // namespace

Index
exactMinimumDepth(const AccessRequirements& req, Index max_elements)
{
    std::vector<std::uint64_t> masks;
    for (std::uint64_t mask : req.laneMask)
        if (mask != 0)
            masks.push_back(mask);
    if (masks.empty())
        return 0;
    if (static_cast<Index>(masks.size()) > max_elements)
        RSQP_FATAL("exactMinimumDepth: instance with ", masks.size(),
                   " elements exceeds the cap of ", max_elements);
    // Order by popcount descending: stronger early pruning.
    std::sort(masks.begin(), masks.end(),
              [](std::uint64_t a, std::uint64_t b) {
                  return std::popcount(a) > std::popcount(b);
              });
    Index best = static_cast<Index>(masks.size());
    std::vector<std::uint64_t> used;
    exactColor(masks, 0, used, best);
    return best;
}

} // namespace rsqp
