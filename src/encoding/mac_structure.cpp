#include "mac_structure.hpp"

#include <algorithm>
#include <cctype>
#include <numeric>
#include <sstream>

#include "common/logging.hpp"

namespace rsqp
{

StructureSet::StructureSet(Index c, std::vector<std::string> patterns)
    : c_(c), patterns_(std::move(patterns))
{
    RSQP_ASSERT(isPow2(c), "datapath width must be a power of two");
    const std::string fallback(1, topChar(c));
    fallbackIndex_ = -1;
    for (std::size_t i = 0; i < patterns_.size(); ++i) {
        if (!isValidPattern(patterns_[i], c))
            RSQP_FATAL("invalid MAC structure '", patterns_[i],
                       "' for C = ", c);
        if (patterns_[i] == fallback)
            fallbackIndex_ = static_cast<Index>(i);
    }
    if (fallbackIndex_ < 0) {
        patterns_.push_back(fallback);
        fallbackIndex_ = static_cast<Index>(patterns_.size()) - 1;
    }
    // Duplicate structures waste hardware; reject them.
    auto sorted = patterns_;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
        RSQP_FATAL("duplicate MAC structure in set");
}

StructureSet
StructureSet::baseline(Index c)
{
    return StructureSet(c, {});
}

StructureSet
StructureSet::parse(const std::string& name)
{
    // Format: <C>{(<count><char>)+}
    std::size_t pos = 0;
    auto read_int = [&]() -> Index {
        if (pos >= name.size() ||
            !std::isdigit(static_cast<unsigned char>(name[pos])))
            RSQP_FATAL("parse error in structure name '", name, "' at ",
                       pos);
        Index value = 0;
        while (pos < name.size() &&
               std::isdigit(static_cast<unsigned char>(name[pos]))) {
            value = value * 10 + (name[pos] - '0');
            ++pos;
        }
        return value;
    };

    const Index c = read_int();
    if (pos >= name.size() || name[pos] != '{')
        RSQP_FATAL("structure name '", name, "' missing '{'");
    ++pos;
    std::vector<std::string> patterns;
    while (pos < name.size() && name[pos] != '}') {
        const Index count = read_int();
        if (pos >= name.size() || name[pos] < 'a' || name[pos] > 'z')
            RSQP_FATAL("structure name '", name,
                       "' missing character after count");
        const char ch = name[pos];
        ++pos;
        patterns.emplace_back(static_cast<std::size_t>(count), ch);
    }
    if (pos >= name.size() || name[pos] != '}')
        RSQP_FATAL("structure name '", name, "' missing '}'");
    return StructureSet(c, std::move(patterns));
}

std::vector<SegmentLayout>
StructureSet::layout(Index pattern_idx) const
{
    RSQP_ASSERT(pattern_idx >= 0 &&
                pattern_idx < static_cast<Index>(patterns_.size()),
                "pattern index out of range");
    const std::string& pattern =
        patterns_[static_cast<std::size_t>(pattern_idx)];
    std::vector<SegmentLayout> segments;
    segments.reserve(pattern.size());
    Index lane = 0;
    for (char ch : pattern) {
        const Index width = charWidth(ch);
        segments.push_back(SegmentLayout{ch, lane, lane + width});
        lane += width;
    }
    RSQP_ASSERT(lane <= c_, "structure exceeds datapath width");
    return segments;
}

Index
StructureSet::totalOutputs() const
{
    Index outputs = 0;
    for (const auto& pattern : patterns_)
        outputs += static_cast<Index>(pattern.size());
    return outputs;
}

std::string
StructureSet::name() const
{
    std::ostringstream oss;
    oss << c_ << '{';
    for (const auto& pattern : patterns_) {
        // Run-length encode each structure.
        std::size_t i = 0;
        while (i < pattern.size()) {
            std::size_t j = i;
            while (j < pattern.size() && pattern[j] == pattern[i])
                ++j;
            oss << (j - i) << pattern[i];
            i = j;
        }
    }
    oss << '}';
    return oss.str();
}

IndexVector
StructureSet::schedulingOrder() const
{
    IndexVector order(patterns_.size());
    std::iota(order.begin(), order.end(), Index{0});
    std::stable_sort(order.begin(), order.end(), [&](Index a, Index b) {
        const auto& pa = patterns_[static_cast<std::size_t>(a)];
        const auto& pb = patterns_[static_cast<std::size_t>(b)];
        if (pa.size() != pb.size())
            return pa.size() > pb.size();
        return patternWidth(pa) > patternWidth(pb);
    });
    return order;
}

} // namespace rsqp
