/**
 * @file
 * Problem-specific structure-set search: the E_p optimization
 * (problem (4) of the paper), solved heuristically with LZW candidate
 * harvesting plus greedy forward selection under a schedule-length
 * objective.
 */

#ifndef RSQP_ENCODING_STRUCTURE_SEARCH_HPP
#define RSQP_ENCODING_STRUCTURE_SEARCH_HPP

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "encoding/mac_structure.hpp"
#include "encoding/scheduler.hpp"
#include "encoding/sparsity_string.hpp"

namespace rsqp
{

/**
 * Search objective: maps a candidate set and its total scheduled slot
 * count to a cost (lower is better). The default minimizes the slot
 * count (pure E_p optimization); the customization pipeline installs a
 * time-aware objective slots / fmax(S), because a structure set with
 * many tree outputs depresses the achievable clock (the Table 3
 * trade-off) and can lose end-to-end despite fewer cycles.
 */
using SearchObjective =
    std::function<Real(const StructureSet& set, Count slots)>;

/** Tuning knobs of the structure search. */
struct StructureSearchSettings
{
    /** |S|_target: structure budget including the full-width fallback. */
    Index targetSize = 4;
    /** Candidate pool size taken from the LZW dictionary. */
    std::size_t maxCandidates = 24;
    /**
     * Strings longer than this are evaluated on stratified sample
     * windows during selection (the final schedule always uses the
     * full string).
     */
    std::size_t evalSampleLength = 262144;
    /** Candidate cost; null = minimize slots. */
    SearchObjective objective;
};

/** Outcome of a structure search on one sparsity string. */
struct StructureSearchResult
{
    StructureSet set;         ///< chosen structures
    Count baselineSlots = 0;  ///< schedule length with S = {top}
    Count chosenSlots = 0;    ///< schedule length with the chosen set
    Count baselineEp = 0;
    Count chosenEp = 0;
};

/**
 * Search a structure set for one sparsity string.
 *
 * The greedy loop starts from the baseline set and adds the candidate
 * that shrinks the scheduled length the most, until the budget is
 * exhausted or no candidate helps.
 */
StructureSearchResult
searchStructureSet(const SparsityString& str,
                   const StructureSearchSettings& settings = {});

/**
 * Search one structure set that serves several matrices at once (RSQP
 * schedules P, A and A' on the same SpMV engine). Schedule lengths are
 * summed across the strings.
 */
StructureSearchResult
searchStructureSet(const std::vector<const SparsityString*>& strs,
                   const StructureSearchSettings& settings = {});

} // namespace rsqp

#endif // RSQP_ENCODING_STRUCTURE_SEARCH_HPP
