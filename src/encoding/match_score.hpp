/**
 * @file
 * The customization evaluation metric eta (paper Sec. 3.6):
 *
 *   eta = (nnz + L) / (nnz + E_p + E_c * L),   eta in (0, 1]
 *
 * where L is the multiplicand vector length, E_p the zero padding of
 * the SpMV schedule and E_c the effective vector-copy count of the
 * compressed vector buffer. T_ideal = eta * T_real.
 */

#ifndef RSQP_ENCODING_MATCH_SCORE_HPP
#define RSQP_ENCODING_MATCH_SCORE_HPP

#include "common/logging.hpp"
#include "common/types.hpp"

namespace rsqp
{

/** Match score of one SpMV + vector-duplication pair. */
inline Real
matchScore(Count nnz, Count vector_length, Count ep, Real ec)
{
    RSQP_ASSERT(nnz >= 0 && vector_length >= 0 && ep >= 0 && ec >= 1.0,
                "invalid match-score inputs");
    const Real ideal = static_cast<Real>(nnz + vector_length);
    const Real real = static_cast<Real>(nnz) + static_cast<Real>(ep) +
        ec * static_cast<Real>(vector_length);
    return real > 0.0 ? ideal / real : 1.0;
}

} // namespace rsqp

#endif // RSQP_ENCODING_MATCH_SCORE_HPP
