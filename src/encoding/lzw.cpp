#include "lzw.hpp"

#include <algorithm>
#include <unordered_map>

namespace rsqp
{

namespace
{

/** Shared LZW scan; calls emit(phrase) for every output code. */
template <typename EmitFn>
void
lzwScan(const std::string& text, std::size_t max_dict_size, EmitFn emit)
{
    std::unordered_map<std::string, Count> dict;
    // Seed with single characters so every input is encodable.
    for (char ch : text)
        dict.emplace(std::string(1, ch), 0);

    std::string w;
    for (char ch : text) {
        std::string wc = w + ch;
        if (dict.find(wc) != dict.end()) {
            w = std::move(wc);
        } else {
            emit(w);
            if (dict.size() < max_dict_size)
                dict.emplace(std::move(wc), 0);
            w.assign(1, ch);
        }
    }
    if (!w.empty())
        emit(w);
}

} // namespace

std::vector<LzwEntry>
lzwDictionary(const std::string& text, std::size_t max_dict_size)
{
    std::unordered_map<std::string, Count> counts;
    lzwScan(text, max_dict_size,
            [&](const std::string& phrase) { ++counts[phrase]; });

    std::vector<LzwEntry> entries;
    entries.reserve(counts.size());
    for (auto& [phrase, count] : counts)
        entries.push_back(LzwEntry{phrase, count});
    std::sort(entries.begin(), entries.end(),
              [](const LzwEntry& a, const LzwEntry& b) {
                  if (a.emitCount != b.emitCount)
                      return a.emitCount > b.emitCount;
                  if (a.phrase.size() != b.phrase.size())
                      return a.phrase.size() > b.phrase.size();
                  return a.phrase < b.phrase;
              });
    return entries;
}

Count
lzwCompressedLength(const std::string& text, std::size_t max_dict_size)
{
    Count codes = 0;
    lzwScan(text, max_dict_size, [&](const std::string&) { ++codes; });
    return codes;
}

} // namespace rsqp
