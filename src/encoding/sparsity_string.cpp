#include "sparsity_string.hpp"

#include <algorithm>
#include <map>

#include "common/logging.hpp"

namespace rsqp
{

bool
isPow2(Index c)
{
    return c > 0 && (c & (c - 1)) == 0;
}

Index
log2Exact(Index c)
{
    RSQP_ASSERT(isPow2(c), "log2Exact of non-power-of-two ", c);
    Index log = 0;
    while ((Index(1) << log) < c)
        ++log;
    return log;
}

Index
alphabetSize(Index c)
{
    return log2Exact(c) + 1;
}

char
topChar(Index c)
{
    return static_cast<char>('a' + log2Exact(c));
}

Index
charWidth(char ch)
{
    RSQP_ASSERT(ch >= 'a' && ch <= 'z', "invalid row character '", ch, "'");
    return Index(1) << (ch - 'a');
}

char
charForNnz(Index nnz, Index c)
{
    RSQP_ASSERT(nnz >= 0 && nnz <= c, "charForNnz: nnz ", nnz,
                " outside [0, ", c, "]");
    // Zero rows are carried as 'a' (one explicit padded zero).
    Index log = 0;
    while ((Index(1) << log) < nnz)
        ++log;
    return static_cast<char>('a' + log);
}

bool
isValidPattern(const std::string& pattern, Index c)
{
    if (pattern.empty())
        return false;
    const char top = topChar(c);
    Index width = 0;
    for (char ch : pattern) {
        if (ch < 'a' || ch > top)
            return false;
        width += charWidth(ch);
    }
    return width <= c;
}

Index
patternWidth(const std::string& pattern)
{
    Index width = 0;
    for (char ch : pattern)
        width += charWidth(ch);
    return width;
}

SparsityString
encodeRowNnz(const IndexVector& row_nnz, Index c)
{
    RSQP_ASSERT(isPow2(c), "datapath width must be a power of two");
    SparsityString result;
    result.c = c;
    result.encoded.reserve(row_nnz.size());
    result.rowOfPos.reserve(row_nnz.size());
    result.nnzOfPos.reserve(row_nnz.size());

    for (Index row = 0; row < static_cast<Index>(row_nnz.size()); ++row) {
        Index remaining = row_nnz[static_cast<std::size_t>(row)];
        RSQP_ASSERT(remaining >= 0, "negative row nnz");
        // Full-width chunks for wide rows ('$' means "row continues").
        while (remaining > c) {
            result.encoded.push_back(kChunkChar);
            result.rowOfPos.push_back(row);
            result.nnzOfPos.push_back(c);
            remaining -= c;
        }
        result.encoded.push_back(charForNnz(remaining, c));
        result.rowOfPos.push_back(row);
        result.nnzOfPos.push_back(remaining);
    }
    return result;
}

SparsityString
encodeMatrix(const CsrMatrix& matrix, Index c)
{
    IndexVector row_nnz(static_cast<std::size_t>(matrix.rows()));
    for (Index r = 0; r < matrix.rows(); ++r)
        row_nnz[static_cast<std::size_t>(r)] = matrix.rowNnz(r);
    return encodeRowNnz(row_nnz, c);
}

std::vector<std::pair<char, Count>>
characterHistogram(const std::string& encoded)
{
    std::map<char, Count> counts;
    for (char ch : encoded)
        ++counts[ch];
    return {counts.begin(), counts.end()};
}

} // namespace rsqp
