#include "packing.hpp"

#include "common/logging.hpp"

namespace rsqp
{

PackedMatrix
packMatrix(const CsrMatrix& matrix, const SparsityString& str,
           const Schedule& schedule, const StructureSet& set)
{
    RSQP_ASSERT(str.c == set.c() && schedule.c == set.c(),
                "packMatrix: width mismatch");
    const Index c = set.c();

    PackedMatrix packed;
    packed.c = c;
    packed.rows = matrix.rows();
    packed.cols = matrix.cols();
    packed.nnz = matrix.nnz();
    packed.packs.reserve(schedule.slots.size());

    // Chunk offset bookkeeping: nnz of the row already consumed by
    // earlier positions (only non-zero for '$'-chunked rows).
    IndexVector chunk_offset(str.length(), 0);
    for (std::size_t p = 1; p < str.length(); ++p) {
        if (str.rowOfPos[p] == str.rowOfPos[p - 1])
            chunk_offset[p] = chunk_offset[p - 1] +
                str.nnzOfPos[p - 1];
    }

    for (const SlotAssignment& slot : schedule.slots) {
        LanePack pack;
        pack.values.assign(static_cast<std::size_t>(c), 0.0);
        pack.colIdx.assign(static_cast<std::size_t>(c), -1);

        auto fill_segment = [&](Index pos, Index lane_begin,
                                Index lane_end) {
            PackSegment segment;
            segment.laneBegin = lane_begin;
            segment.laneEnd = lane_end;
            if (pos < 0) {
                // Empty segment: pure padding, no output row.
                segment.row = -1;
                segment.emit = false;
                packed.ep += lane_end - lane_begin;
                pack.segments.push_back(segment);
                return;
            }
            const auto upos = static_cast<std::size_t>(pos);
            const Index row = str.rowOfPos[upos];
            const Index count = str.nnzOfPos[upos];
            RSQP_ASSERT(count <= lane_end - lane_begin,
                        "segment too narrow for scheduled row");
            segment.row = row;
            // A position is a continuation iff the previous position
            // belongs to the same row; it completes the row iff the
            // next position belongs to a different row.
            segment.accumulate = upos > 0 &&
                str.rowOfPos[upos - 1] == row;
            segment.emit = upos + 1 >= str.length() ||
                str.rowOfPos[upos + 1] != row;
            const Index base = matrix.rowPtr()[row] + chunk_offset[upos];
            for (Index k = 0; k < count; ++k) {
                pack.values[static_cast<std::size_t>(lane_begin + k)] =
                    matrix.values()[static_cast<std::size_t>(base + k)];
                pack.colIdx[static_cast<std::size_t>(lane_begin + k)] =
                    matrix.colIdx()[static_cast<std::size_t>(base + k)];
            }
            packed.ep += (lane_end - lane_begin) - count;
            pack.segments.push_back(segment);
        };

        if (slot.isChunk) {
            RSQP_ASSERT(slot.positions.size() == 1,
                        "chunk slot must hold exactly one position");
            fill_segment(slot.positions[0], 0, c);
        } else {
            const auto layout = set.layout(slot.structureId);
            RSQP_ASSERT(layout.size() == slot.positions.size(),
                        "slot/structure segment count mismatch");
            Index used_end = 0;
            for (std::size_t s = 0; s < layout.size(); ++s) {
                fill_segment(slot.positions[s], layout[s].laneBegin,
                             layout[s].laneEnd);
                used_end = layout[s].laneEnd;
            }
            // Lanes beyond the structure's width are implicit padding.
            packed.ep += c - used_end;
        }
        packed.packs.push_back(std::move(pack));
    }

    RSQP_ASSERT(packed.ep == schedule.ep,
                "materialized padding ", packed.ep,
                " disagrees with scheduled E_p ", schedule.ep);
    return packed;
}

Vector
PackedMatrix::referenceSpmv(const Vector& x) const
{
    RSQP_ASSERT(static_cast<Index>(x.size()) == cols,
                "referenceSpmv: x size");
    Vector y(static_cast<std::size_t>(rows), 0.0);
    std::vector<bool> touched(static_cast<std::size_t>(rows), false);
    Real carry = 0.0;  // partial sum carried across '$' chunk packs
    for (const LanePack& pack : packs) {
        for (const PackSegment& segment : pack.segments) {
            Real acc = segment.accumulate ? carry : 0.0;
            for (Index k = segment.laneBegin; k < segment.laneEnd; ++k) {
                const Index j = pack.colIdx[static_cast<std::size_t>(k)];
                if (j >= 0)
                    acc += pack.values[static_cast<std::size_t>(k)] *
                        x[static_cast<std::size_t>(j)];
            }
            if (segment.emit && segment.row >= 0) {
                y[static_cast<std::size_t>(segment.row)] = acc;
                touched[static_cast<std::size_t>(segment.row)] = true;
            } else {
                carry = acc;
            }
        }
    }
    for (Index r = 0; r < rows; ++r)
        RSQP_ASSERT(touched[static_cast<std::size_t>(r)],
                    "row ", r, " never produced by the packed stream");
    return y;
}

} // namespace rsqp
