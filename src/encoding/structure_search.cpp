#include "structure_search.hpp"

#include <algorithm>
#include <set>

#include "common/logging.hpp"
#include "encoding/lzw.hpp"

namespace rsqp
{

namespace
{

/**
 * Stratified sample of a sparsity string: four evenly spaced windows,
 * preserving the row bookkeeping so chunk detection still works.
 */
SparsityString
sampleString(const SparsityString& str, std::size_t max_length)
{
    if (str.length() <= max_length)
        return str;
    SparsityString sample;
    sample.c = str.c;
    const std::size_t windows = 4;
    const std::size_t window_len = max_length / windows;
    const std::size_t stride = str.length() / windows;
    for (std::size_t w = 0; w < windows; ++w) {
        const std::size_t begin = w * stride;
        const std::size_t end = std::min(begin + window_len, str.length());
        for (std::size_t p = begin; p < end; ++p) {
            sample.encoded.push_back(str.encoded[p]);
            sample.rowOfPos.push_back(str.rowOfPos[p]);
            sample.nnzOfPos.push_back(str.nnzOfPos[p]);
        }
    }
    return sample;
}

/** Candidate patterns: LZW phrases + homogeneous full-width runs. */
std::vector<std::string>
collectCandidates(const std::vector<const SparsityString*>& strs, Index c,
                  std::size_t max_candidates)
{
    std::set<std::string> seen;
    std::vector<std::string> candidates;
    auto consider = [&](const std::string& pattern) {
        if (!isValidPattern(pattern, c))
            return;
        if (pattern.size() < 2 && charWidth(pattern[0]) == c)
            return;  // that is the fallback, always present
        if (seen.insert(pattern).second)
            candidates.push_back(pattern);
    };

    // Homogeneous full-width runs for every character that appears:
    // e.g. "dddd" for C = 32 — the Table 3 style "4d" structures.
    std::set<char> chars;
    for (const SparsityString* str : strs)
        for (char ch : str->encoded)
            if (ch != kChunkChar)
                chars.insert(ch);
    for (char ch : chars) {
        const Index run = c / charWidth(ch);
        if (run >= 1)
            consider(std::string(static_cast<std::size_t>(run), ch));
        if (run >= 4)
            consider(std::string(static_cast<std::size_t>(run / 2), ch));
    }

    // LZW phrases, most-emitted first, scored by padding savings.
    std::vector<LzwEntry> pool;
    for (const SparsityString* str : strs) {
        auto entries = lzwDictionary(str->encoded);
        pool.insert(pool.end(), entries.begin(), entries.end());
    }
    std::stable_sort(pool.begin(), pool.end(),
                     [](const LzwEntry& a, const LzwEntry& b) {
                         const Count score_a = a.emitCount *
                             static_cast<Count>(a.phrase.size() - 1);
                         const Count score_b = b.emitCount *
                             static_cast<Count>(b.phrase.size() - 1);
                         return score_a > score_b;
                     });
    for (const LzwEntry& entry : pool) {
        if (candidates.size() >= max_candidates)
            break;
        if (entry.phrase.size() >= 2 &&
            entry.phrase.find(kChunkChar) == std::string::npos)
            consider(entry.phrase);
    }
    return candidates;
}

} // namespace

StructureSearchResult
searchStructureSet(const std::vector<const SparsityString*>& strs,
                   const StructureSearchSettings& settings)
{
    RSQP_ASSERT(!strs.empty(), "structure search needs at least one "
                "sparsity string");
    const Index c = strs.front()->c;
    for (const SparsityString* str : strs)
        RSQP_ASSERT(str->c == c, "mixed datapath widths in search");

    // Selection runs on (possibly sampled) strings for speed.
    std::vector<SparsityString> samples;
    samples.reserve(strs.size());
    for (const SparsityString* str : strs)
        samples.push_back(sampleString(*str, settings.evalSampleLength));

    auto total_slots = [&](const StructureSet& set) {
        Count slots = 0;
        for (const SparsityString& sample : samples)
            slots += scheduleString(sample, set).slotCount();
        return slots;
    };
    auto cost_of = [&](const StructureSet& set, Count slots) -> Real {
        if (settings.objective)
            return settings.objective(set, slots);
        return static_cast<Real>(slots);
    };

    StructureSearchResult result{StructureSet::baseline(c), 0, 0, 0, 0};
    std::vector<std::string> chosen;  // besides the implicit fallback
    Real current = cost_of(result.set, total_slots(result.set));

    const auto candidates =
        collectCandidates(strs, c, settings.maxCandidates);

    while (static_cast<Index>(chosen.size()) + 1 < settings.targetSize) {
        Real best_cost = current;
        const std::string* best = nullptr;
        for (const std::string& cand : candidates) {
            if (std::find(chosen.begin(), chosen.end(), cand) !=
                chosen.end())
                continue;
            auto trial = chosen;
            trial.push_back(cand);
            const StructureSet trial_set(c, trial);
            const Real cost =
                cost_of(trial_set, total_slots(trial_set));
            if (cost < best_cost) {
                best_cost = cost;
                best = &cand;
            }
        }
        if (best == nullptr)
            break;
        chosen.push_back(*best);
        current = best_cost;
    }

    result.set = StructureSet(c, chosen);

    // Final numbers on the full strings.
    const StructureSet baseline = StructureSet::baseline(c);
    for (const SparsityString* str : strs) {
        const Schedule base = scheduleString(*str, baseline);
        const Schedule opt = scheduleString(*str, result.set);
        result.baselineSlots += base.slotCount();
        result.baselineEp += base.ep;
        result.chosenSlots += opt.slotCount();
        result.chosenEp += opt.ep;
    }
    return result;
}

StructureSearchResult
searchStructureSet(const SparsityString& str,
                   const StructureSearchSettings& settings)
{
    return searchStructureSet(std::vector<const SparsityString*>{&str},
                              settings);
}

} // namespace rsqp
