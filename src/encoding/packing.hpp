/**
 * @file
 * Offline HBM data layout: turn a matrix plus its schedule into the
 * per-cycle non-zero packs streamed to the SpMV engine.
 *
 * Each pack is one clock cycle of HBM traffic: C values and C vector
 * indices, with explicit zero padding where the schedule could not fill
 * a lane, plus the segment descriptors the MAC tree and alignment
 * logic need (which rows are produced, over which lanes, and whether
 * the row's partial sum continues into the next pack — the '$' chunks).
 */

#ifndef RSQP_ENCODING_PACKING_HPP
#define RSQP_ENCODING_PACKING_HPP

#include <vector>

#include "common/types.hpp"
#include "encoding/scheduler.hpp"
#include "linalg/csr.hpp"

namespace rsqp
{

/** One MAC-tree output within a pack. */
struct PackSegment
{
    Index row = -1;        ///< destination matrix row
    Index laneBegin = 0;   ///< first datapath lane (inclusive)
    Index laneEnd = 0;     ///< one past the last lane
    bool accumulate = false; ///< continues the previous pack's partial sum
    bool emit = true;        ///< row dot product completes here
};

/** One clock cycle of matrix data (C lanes). */
struct LanePack
{
    std::vector<Real> values;  ///< length C, zero in padded lanes
    IndexVector colIdx;        ///< length C, -1 in padded lanes
    std::vector<PackSegment> segments;
};

/** Full packed stream of one matrix. */
struct PackedMatrix
{
    Index c = 0;
    Index rows = 0;
    Index cols = 0;
    Count nnz = 0;
    Count ep = 0;  ///< zero padding actually materialized
    std::vector<LanePack> packs;

    Count packCount() const { return static_cast<Count>(packs.size()); }

    /**
     * Functional reference: run the packed stream against x and return
     * y = A x. Must agree with CsrMatrix::spmv (tested); this is the
     * ground truth the simulated SpMV engine is validated against.
     */
    Vector referenceSpmv(const Vector& x) const;
};

/**
 * Materialize the packed stream for a matrix under a schedule.
 *
 * @param matrix The matrix in CSR form.
 * @param str Its sparsity string (must come from this matrix).
 * @param schedule A schedule of str onto some structure set.
 * @param set The structure set the schedule was built with.
 */
PackedMatrix packMatrix(const CsrMatrix& matrix, const SparsityString& str,
                        const Schedule& schedule, const StructureSet& set);

} // namespace rsqp

#endif // RSQP_ENCODING_PACKING_HPP
