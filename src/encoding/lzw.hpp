/**
 * @file
 * LZW dictionary pass over sparsity strings (paper Sec. 4.2).
 *
 * Finding the optimal structure set S (problem (4) in the paper) is
 * intractable, so RSQP harvests candidate sub-strings with the LZW
 * lossless-compression dictionary: sub-strings that LZW keeps emitting
 * are exactly the frequently-repeated row patterns worth dedicated MAC
 * tree partitions.
 */

#ifndef RSQP_ENCODING_LZW_HPP
#define RSQP_ENCODING_LZW_HPP

#include <string>
#include <vector>

#include "common/types.hpp"

namespace rsqp
{

/** A dictionary phrase and how often LZW emitted it. */
struct LzwEntry
{
    std::string phrase;
    Count emitCount = 0;
};

/**
 * Run LZW over the text and return every phrase together with its
 * emission count, most-emitted first.
 *
 * @param text Input string (a sparsity encoding).
 * @param max_dict_size Dictionary capacity; when full, no new phrases
 *        are added (counts keep accumulating). Power-of-two sizes
 *        mirror classic LZW code widths but any value works.
 */
std::vector<LzwEntry> lzwDictionary(const std::string& text,
                                    std::size_t max_dict_size = 65536);

/**
 * Compressed length (number of codes) LZW achieves on the text — a
 * cheap structure-richness metric used in reports.
 */
Count lzwCompressedLength(const std::string& text,
                          std::size_t max_dict_size = 65536);

} // namespace rsqp

#endif // RSQP_ENCODING_LZW_HPP
