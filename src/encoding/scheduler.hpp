/**
 * @file
 * Longest-first string-replacement scheduler (paper Sec. 4.2).
 *
 * Maps the sparsity string of a matrix onto a MAC structure set S by
 * repeated pattern replacement: for each structure (longest first) an
 * exact pass consumes exact matches, then a "domination" pass consumes
 * row groups whose characters are element-wise <= the structure's
 * characters (they fit with zero padding). Rows wider than C were
 * pre-broken into '$' chunks and are scheduled as dedicated full-width
 * accumulation slots.
 *
 * The result is the cycle-by-cycle slot assignment, from which
 *   E_p = C * slots - nnz
 * (total zero padding) follows directly.
 */

#ifndef RSQP_ENCODING_SCHEDULER_HPP
#define RSQP_ENCODING_SCHEDULER_HPP

#include <vector>

#include "common/types.hpp"
#include "encoding/mac_structure.hpp"
#include "encoding/sparsity_string.hpp"

namespace rsqp
{

/** One datapath cycle of the SpMV engine. */
struct SlotAssignment
{
    /** Structure used this cycle (index into StructureSet::patterns()). */
    Index structureId = 0;
    /** True for a '$' full-width partial-accumulation slot. */
    bool isChunk = false;
    /**
     * String position assigned to each segment of the structure;
     * -1 marks a segment left empty (full zero padding).
     * For chunk slots this has exactly one entry.
     */
    IndexVector positions;
};

/** Complete schedule of one matrix on one structure set. */
struct Schedule
{
    Index c = 0;
    std::vector<SlotAssignment> slots;
    Count nnz = 0;        ///< matrix non-zeros covered
    Count ep = 0;         ///< total zero padding E_p
    Count chunkSlots = 0; ///< how many slots were '$' chunks

    Count slotCount() const { return static_cast<Count>(slots.size()); }
};

/**
 * Schedule a sparsity string onto a structure set.
 *
 * Invariants (property-tested):
 *  - every string position appears in exactly one slot segment;
 *  - segment width always covers the assigned position's nnz;
 *  - ep == c * slotCount() - nnz.
 */
Schedule scheduleString(const SparsityString& str,
                        const StructureSet& set);

/** E_p of a schedule recomputed from first principles (for checks). */
Count recomputeEp(const Schedule& schedule, const SparsityString& str);

} // namespace rsqp

#endif // RSQP_ENCODING_SCHEDULER_HPP
