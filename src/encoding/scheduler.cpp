#include "scheduler.hpp"

#include "common/logging.hpp"

namespace rsqp
{

Schedule
scheduleString(const SparsityString& str, const StructureSet& set)
{
    RSQP_ASSERT(str.c == set.c(),
                "sparsity string and structure set widths differ: ",
                str.c, " vs ", set.c());
    const Index c = set.c();
    const std::size_t len = str.length();

    Schedule schedule;
    schedule.c = c;
    for (Index nnz : str.nnzOfPos)
        schedule.nnz += nnz;

    std::vector<bool> consumed(len, false);

    // Pre-pass: rows wider than C were broken into '$' chunks plus a
    // remainder; all of their positions become dedicated full-width
    // accumulation slots (the paper's "series of g").
    const Index fallback = set.fallbackIndex();
    for (std::size_t p = 0; p < len; ++p) {
        const bool chunk_char = str.encoded[p] == kChunkChar;
        const bool chunk_tail = p > 0 &&
            str.encoded[p - 1] == kChunkChar &&
            str.rowOfPos[p] == str.rowOfPos[p - 1];
        if (!chunk_char && !chunk_tail)
            continue;
        SlotAssignment slot;
        slot.structureId = fallback;
        slot.isChunk = true;
        slot.positions.push_back(static_cast<Index>(p));
        schedule.slots.push_back(std::move(slot));
        consumed[p] = true;
        ++schedule.chunkSlots;
    }

    // Structure passes, longest first; per structure an exact pass then
    // a domination pass (paper's regex replacement, e.g. bb before
    // ba|ab|aa).
    for (Index sid : set.schedulingOrder()) {
        const std::string& pattern =
            set.patterns()[static_cast<std::size_t>(sid)];
        const std::size_t plen = pattern.size();
        if (plen > len)
            continue;
        for (int exact = 1; exact >= 0; --exact) {
            std::size_t p = 0;
            while (p + plen <= len) {
                bool match = true;
                for (std::size_t j = 0; j < plen && match; ++j) {
                    const std::size_t q = p + j;
                    if (consumed[q] || str.encoded[q] == kChunkChar) {
                        match = false;
                    } else if (exact) {
                        match = str.encoded[q] == pattern[j];
                    } else {
                        match = charWidth(str.encoded[q]) <=
                            charWidth(pattern[j]);
                    }
                }
                if (!match) {
                    ++p;
                    continue;
                }
                SlotAssignment slot;
                slot.structureId = sid;
                slot.positions.reserve(plen);
                for (std::size_t j = 0; j < plen; ++j) {
                    consumed[p + j] = true;
                    slot.positions.push_back(static_cast<Index>(p + j));
                }
                schedule.slots.push_back(std::move(slot));
                p += plen;
            }
        }
    }

    // The fallback structure dominates every single character, so
    // nothing can remain unconsumed.
    for (std::size_t p = 0; p < len; ++p)
        RSQP_ASSERT(consumed[p], "scheduler left position ", p,
                    " unassigned (missing fallback structure?)");

    schedule.ep = static_cast<Count>(c) * schedule.slotCount() -
        schedule.nnz;
    return schedule;
}

Count
recomputeEp(const Schedule& schedule, const SparsityString& str)
{
    Count padding = 0;
    for (const SlotAssignment& slot : schedule.slots) {
        Count covered = 0;
        for (Index pos : slot.positions) {
            if (pos < 0)
                continue;
            covered += str.nnzOfPos[static_cast<std::size_t>(pos)];
        }
        padding += static_cast<Count>(schedule.c) - covered;
    }
    return padding;
}

} // namespace rsqp
