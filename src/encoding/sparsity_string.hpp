/**
 * @file
 * String-based encoding of matrix sparsity structure (paper Sec. 4.1).
 *
 * Each matrix row is assigned a character by the log2 of its non-zero
 * count: rows with <= 1, 2, 4, ..., C non-zeros map to 'a', 'b', 'c',
 * ..., up to the "top" character for a full datapath width C. Rows with
 * more than C non-zeros are broken into full-width '$' chunks that the
 * MAC tree accumulates across cycles, followed by the character of the
 * remainder chunk.
 *
 * Zero rows (possible for P when a variable has no quadratic cost) are
 * encoded as 'a': the offline data layout feeds one explicit zero so
 * that the row still produces an output — one element of padding.
 */

#ifndef RSQP_ENCODING_SPARSITY_STRING_HPP
#define RSQP_ENCODING_SPARSITY_STRING_HPP

#include <string>
#include <vector>

#include "common/types.hpp"
#include "linalg/csr.hpp"

namespace rsqp
{

/** Character used for full-width chunks of rows wider than C. */
inline constexpr char kChunkChar = '$';

/** True if c is a power of two (valid datapath width). */
bool isPow2(Index c);

/** log2 of a power of two. */
Index log2Exact(Index c);

/** Number of distinct row characters for width C: log2(C) + 1. */
Index alphabetSize(Index c);

/** The widest row character for width C (e.g. 'g' for C = 64). */
char topChar(Index c);

/** Width (max non-zero capacity) of a row character: 2^(ch - 'a'). */
Index charWidth(char ch);

/** Smallest character whose width covers nnz (1 <= nnz <= C). */
char charForNnz(Index nnz, Index c);

/** True if every character of pattern is valid for width C (no '$'). */
bool isValidPattern(const std::string& pattern, Index c);

/** Sum of character widths of a pattern. */
Index patternWidth(const std::string& pattern);

/**
 * The sparsity string of a matrix plus the bookkeeping needed to map
 * string positions back to matrix rows.
 */
struct SparsityString
{
    Index c = 0;           ///< datapath width used for the encoding
    std::string encoded;   ///< one char per row chunk
    IndexVector rowOfPos;  ///< matrix row of each string position
    IndexVector nnzOfPos;  ///< non-zeros covered by each position

    std::size_t length() const { return encoded.size(); }
};

/** Encode the rows of a CSR matrix (paper's nnz2str). */
SparsityString encodeMatrix(const CsrMatrix& matrix, Index c);

/** Encode from a row-nnz histogram only (used by tests/generators). */
SparsityString encodeRowNnz(const IndexVector& row_nnz, Index c);

/**
 * Character frequency summary of an encoded string — used in reports
 * and by the structure search heuristics.
 */
std::vector<std::pair<char, Count>>
characterHistogram(const std::string& encoded);

} // namespace rsqp

#endif // RSQP_ENCODING_SPARSITY_STRING_HPP
