/**
 * @file
 * MAC-tree structure sets (the "S" of paper Sec. 4.1-4.2).
 *
 * A structure is a string over the row alphabet describing how the
 * C-wide MAC tree is partitioned into independently-reduced segments:
 * structure "bb" (C = 4) produces two 2-wide dot products per cycle;
 * structure "d" produces one 4-wide dot product. A structure set S is
 * the (small) collection of partitions the generated hardware supports;
 * its size trades throughput against routing area and fmax (Table 3).
 *
 * Naming follows the paper: "16{16a1e}" is C = 16 with
 * S = { "aaaaaaaaaaaaaaaa", "e" } — run-length groups, one group per
 * homogeneous structure. Arbitrary mixed structures are supported
 * programmatically and printed as explicit run-length strings.
 */

#ifndef RSQP_ENCODING_MAC_STRUCTURE_HPP
#define RSQP_ENCODING_MAC_STRUCTURE_HPP

#include <string>
#include <vector>

#include "common/types.hpp"
#include "encoding/sparsity_string.hpp"

namespace rsqp
{

/** Lane interval occupied by one segment of a structure. */
struct SegmentLayout
{
    char ch;          ///< row character of this segment
    Index laneBegin;  ///< first lane (inclusive)
    Index laneEnd;    ///< one past the last lane
};

/** A set of MAC-tree partitions for a given datapath width. */
class StructureSet
{
  public:
    /**
     * Build a structure set; the full-width single-output structure
     * (the baseline reduction, also used for '$' chunks) is appended
     * automatically if absent.
     *
     * @param c Datapath width (power of two).
     * @param patterns Structures, e.g. {"bb", "d"} for C = 4.
     */
    StructureSet(Index c, std::vector<std::string> patterns);

    /** The baseline set S = { top } (single full-width reduction). */
    static StructureSet baseline(Index c);

    /** Parse the paper's "C{...}" notation, e.g. "32{32a4d1f}". */
    static StructureSet parse(const std::string& name);

    Index c() const { return c_; }

    /** Structures ordered as given (scheduling order is separate). */
    const std::vector<std::string>& patterns() const { return patterns_; }

    /** Index of the full-width fallback structure within patterns(). */
    Index fallbackIndex() const { return fallbackIndex_; }

    /** Lane layout of one structure (segments packed left to right). */
    std::vector<SegmentLayout> layout(Index pattern_idx) const;

    /**
     * Total number of adder-tree outputs across all structures — the
     * routing-pressure metric of the hardware model.
     */
    Index totalOutputs() const;

    /** Render in the paper's "C{...}" notation. */
    std::string name() const;

    /**
     * Structure indices sorted for scheduling: longest pattern first
     * (paper Sec. 4.2), ties broken by larger width then insertion
     * order.
     */
    IndexVector schedulingOrder() const;

    bool operator==(const StructureSet& other) const
    {
        return c_ == other.c_ && patterns_ == other.patterns_;
    }

  private:
    Index c_ = 0;
    std::vector<std::string> patterns_;
    Index fallbackIndex_ = 0;
};

} // namespace rsqp

#endif // RSQP_ENCODING_MAC_STRUCTURE_HPP
