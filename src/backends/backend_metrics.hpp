/**
 * @file
 * Per-backend registry counters (`rsqp_backend_*`), shared by every
 * QpBackend implementation. Labels follow the registry's
 * labels-in-name convention: `rsqp_backend_solves_total{backend="pdhg"}`.
 */

#ifndef RSQP_BACKENDS_BACKEND_METRICS_HPP
#define RSQP_BACKENDS_BACKEND_METRICS_HPP

#include "osqp/status.hpp"

namespace rsqp
{

/**
 * Record one completed backend solve in the process-wide registry:
 * bumps `rsqp_backend_solves_total`, `rsqp_backend_iterations_total`
 * and `rsqp_backend_restarts_total` for the given backend label.
 * Called once per solve — a couple of name lookups, invisible next to
 * one KKT step or SpMV.
 */
void recordBackendSolve(const char* backend, const OsqpInfo& info);

/** Bump `rsqp_backend_switches_total` (Auto-driver mid-solve switch). */
void recordBackendSwitch(const char* from_backend, const char* to_backend);

} // namespace rsqp

#endif // RSQP_BACKENDS_BACKEND_METRICS_HPP
