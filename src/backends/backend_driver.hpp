/**
 * @file
 * The Auto backend driver: selector-chosen engine with a mid-solve
 * switch-on-stall.
 *
 * The driver owns one live engine at a time. With the mid-solve switch
 * enabled it runs the engine in iteration slices
 * (selector.switchCheckIterations each) and re-evaluates the observed
 * convergence between slices; a slice that fails to shrink the
 * combined residual by minProgressFactor hands the solve — warm-started
 * from the current iterate — to the other engine. Everything in the
 * loop is deterministic (engines, features, thresholds), so an Auto
 * solve is bitwise-reproducible run to run, switches included.
 */

#ifndef RSQP_BACKENDS_BACKEND_DRIVER_HPP
#define RSQP_BACKENDS_BACKEND_DRIVER_HPP

#include <memory>

#include "backends/backend_selector.hpp"
#include "backends/qp_backend.hpp"

namespace rsqp
{

/** Selector-driven engine with mid-solve switch (see file comment). */
class BackendDriver final : public QpBackend
{
  public:
    BackendDriver(QpProblem problem, OsqpSettings settings);

    OsqpResult solve() override;
    bool warmStart(const Vector& x, const Vector& y) override;
    void updateLinearCost(const Vector& q) override;
    void updateBounds(const Vector& l, const Vector& u) override;
    void updateMatrixValues(const std::vector<Real>& p_values,
                            const std::vector<Real>& a_values) override;
    void setTimeLimit(Real seconds) override;
    void setIterationBudget(Index max_iter) override;
    const ValidationReport& validation() const override;
    BackendKind kind() const override { return BackendKind::Auto; }
    const char* name() const override;
    Index numVariables() const override;
    Index numConstraints() const override;

    /** Engine the selector picked at setup (tests/bench). */
    BackendKind chosenKind() const { return activeKind_; }

    /** Selection features of the setup problem (tests/bench). */
    const BackendFeatures& features() const { return features_; }

  private:
    std::unique_ptr<QpBackend> makeEngine(BackendKind kind) const;

    OsqpSettings settings_;
    /** Unscaled problem copy, kept current through update*() so a
     *  switch can build the alternate engine mid-solve. */
    QpProblem problem_;
    BackendFeatures features_;
    BackendKind activeKind_ = BackendKind::Admm;
    std::unique_ptr<QpBackend> active_;
    Index budget_ = 0;  ///< driver-level iteration budget across slices
};

} // namespace rsqp

#endif // RSQP_BACKENDS_BACKEND_DRIVER_HPP
