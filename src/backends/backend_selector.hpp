/**
 * @file
 * Per-problem backend selection policy.
 *
 * The selector reduces a QP to a handful of problem-class features —
 * the same structural quantities the customization fingerprint hashes
 * (sizes, nnz, constraint-type mix, aspect ratio) — and applies the
 * SelectorConfig thresholds to pick the starting engine. It is a pure
 * function: same problem, same config, same choice, on every host.
 *
 * The rationale baked into the defaults (measured on the bench suite,
 * see bench_backends):
 *
 *  - equality-dominated problems (control, eqqp) keep ADMM: the
 *    per-constraint stiff-rho trick resolves equalities in tens of
 *    iterations, while PDHG has to drive them through a plain
 *    projection;
 *  - tall problems with a mixed equality/inequality constraint set
 *    (control) go to PDHG: a single ADMM penalty has to compromise
 *    between stiff equality rows and loose inequality rows there,
 *    while PDHG's restarted iterations with an adaptive primal weight
 *    don't — and each PDHG iteration is cheaper (two SpMVs, no KKT
 *    solve). All-inequality tall problems (svm) stay ADMM: one rho
 *    fits every row;
 *  - small problems always keep ADMM — a direct KKT factor solves
 *    them in milliseconds and the selector should never risk a switch.
 */

#ifndef RSQP_BACKENDS_BACKEND_SELECTOR_HPP
#define RSQP_BACKENDS_BACKEND_SELECTOR_HPP

#include "backends/backend_config.hpp"
#include "osqp/problem.hpp"

namespace rsqp
{

/** Problem-class features the selection policy consumes. */
struct BackendFeatures
{
    Index n = 0;                  ///< variables
    Index m = 0;                  ///< constraints
    Count nnz = 0;                ///< nnz(P) + nnz(A)
    Real equalityFraction = 0.0;  ///< constraints with u - l ~ 0
    Real looseFraction = 0.0;     ///< constraints with both bounds inf
    Real boxFraction = 0.0;       ///< rows with exactly one A entry
    Real tallRatio = 0.0;         ///< m / n
    bool hasHessian = false;      ///< nnz(P) > 0
};

/** Extract the selection features from a problem (pure, cheap). */
BackendFeatures computeBackendFeatures(const QpProblem& problem);

/**
 * The policy: ADMM or PDHG for this feature vector (never returns
 * Auto/AdmmAccelerated — acceleration is an explicit caller opt-in).
 */
BackendKind chooseBackend(const BackendFeatures& features,
                          const SelectorConfig& config);

/** Convenience overload: features computed internally. */
BackendKind chooseBackend(const QpProblem& problem,
                          const SelectorConfig& config);

} // namespace rsqp

#endif // RSQP_BACKENDS_BACKEND_SELECTOR_HPP
