/**
 * @file
 * The pluggable first-order backend interface.
 *
 * A QpBackend is "one QP structure, set up once, solved many times" —
 * exactly the OsqpSolver contract the service layer already programs
 * against — with the engine behind it swappable: the classic ADMM
 * loop, its Nesterov-accelerated variant, the restarted PDHG engine,
 * or the Auto driver that picks (and can mid-solve switch) between
 * them. Every implementation returns the same OsqpResult with
 * SolveStatus / OsqpInfo / SolveTelemetry semantics, so callers,
 * telemetry pipelines and bench artifacts never care which method ran.
 *
 * Like OsqpSolver, construction never throws on caller input: a
 * malformed problem or settings leaves the backend inert and every
 * solve() returns SolveStatus::InvalidProblem with the report attached.
 */

#ifndef RSQP_BACKENDS_QP_BACKEND_HPP
#define RSQP_BACKENDS_QP_BACKEND_HPP

#include <memory>
#include <vector>

#include "backends/backend_config.hpp"
#include "osqp/problem.hpp"
#include "osqp/settings.hpp"
#include "osqp/status.hpp"

namespace rsqp
{

/** Abstract first-order QP engine (see file comment). */
class QpBackend
{
  public:
    virtual ~QpBackend() = default;

    /** Run the method from the current warm-start state. */
    virtual OsqpResult solve() = 0;

    /**
     * Warm start the next solve() from an unscaled primal/dual guess.
     * Size mismatches are ignored with a warning (returns false).
     */
    virtual bool warmStart(const Vector& x, const Vector& y) = 0;

    /** Replace q (same length); rescales internally. */
    virtual void updateLinearCost(const Vector& q) = 0;

    /** Replace l and u (same length); rescales internally. */
    virtual void updateBounds(const Vector& l, const Vector& u) = 0;

    /**
     * Replace numeric values of P and/or A keeping the sparsity
     * structure (empty vector = keep current values), in the original
     * unscaled CSC order of the setup matrices.
     */
    virtual void updateMatrixValues(const std::vector<Real>& p_values,
                                    const std::vector<Real>& a_values) = 0;

    /** Wall-clock budget of subsequent solve() calls (0 = no limit). */
    virtual void setTimeLimit(Real seconds) = 0;

    /**
     * Iteration budget of subsequent solve() calls. The Auto driver
     * uses this to run an engine in slices, re-evaluating progress
     * (and possibly switching engines) between them.
     */
    virtual void setIterationBudget(Index max_iter) = 0;

    /** Setup diagnostics (ok() unless the backend is inert). */
    virtual const ValidationReport& validation() const = 0;

    /** Which engine this is (Auto for the driver). */
    virtual BackendKind kind() const = 0;

    /** Printable engine name. */
    virtual const char* name() const { return backendKindName(kind()); }

    virtual Index numVariables() const = 0;
    virtual Index numConstraints() const = 0;
};

/**
 * Build the backend selected by settings.firstOrder.method:
 * Admm / AdmmAccelerated wrap the OsqpSolver loop (the default Admm
 * configuration is bit-for-bit the pre-subsystem solver), Pdhg builds
 * the restarted primal-dual engine, Auto builds the selector-driven
 * BackendDriver.
 */
std::unique_ptr<QpBackend> makeBackend(QpProblem problem,
                                       OsqpSettings settings);

} // namespace rsqp

#endif // RSQP_BACKENDS_QP_BACKEND_HPP
