#include "backends/backend_metrics.hpp"

#include <string>

#include "telemetry/metrics.hpp"

namespace rsqp
{

void
recordBackendSolve(const char* backend, const OsqpInfo& info)
{
    using telemetry::MetricsRegistry;
    MetricsRegistry& registry = MetricsRegistry::global();
    const std::string label =
        std::string("{backend=\"") + backend + "\"}";
    registry
        .counter("rsqp_backend_solves_total" + label,
                 "Completed solves per first-order backend")
        .increment();
    registry
        .counter("rsqp_backend_iterations_total" + label,
                 "First-order iterations per backend")
        .add(static_cast<std::uint64_t>(info.iterations));
    if (info.telemetry.restarts > 0)
        registry
            .counter("rsqp_backend_restarts_total" + label,
                     "Momentum/average restarts per backend")
            .add(static_cast<std::uint64_t>(info.telemetry.restarts));
}

void
recordBackendSwitch(const char* from_backend, const char* to_backend)
{
    using telemetry::MetricsRegistry;
    MetricsRegistry::global()
        .counter(std::string("rsqp_backend_switches_total{from=\"") +
                     from_backend + "\",to=\"" + to_backend + "\"}",
                 "Auto-driver mid-solve engine switches")
        .increment();
}

} // namespace rsqp
