#include "backends/admm_backend.hpp"

#include <utility>

#include "backends/backend_metrics.hpp"

namespace rsqp
{

AdmmBackend::AdmmBackend(QpProblem problem, OsqpSettings settings,
                         BackendKind kind)
    : solver_(std::move(problem), std::move(settings)), kind_(kind)
{}

OsqpResult
AdmmBackend::solve()
{
    OsqpResult result = solver_.solve();
    recordBackendSolve(name(), result.info);
    return result;
}

bool
AdmmBackend::warmStart(const Vector& x, const Vector& y)
{
    return solver_.warmStart(x, y);
}

void
AdmmBackend::updateLinearCost(const Vector& q)
{
    solver_.updateLinearCost(q);
}

void
AdmmBackend::updateBounds(const Vector& l, const Vector& u)
{
    solver_.updateBounds(l, u);
}

void
AdmmBackend::updateMatrixValues(const std::vector<Real>& p_values,
                                const std::vector<Real>& a_values)
{
    solver_.updateMatrixValues(p_values, a_values);
}

void
AdmmBackend::setTimeLimit(Real seconds)
{
    solver_.setTimeLimit(seconds);
}

void
AdmmBackend::setIterationBudget(Index max_iter)
{
    solver_.setIterationBudget(max_iter);
}

const ValidationReport&
AdmmBackend::validation() const
{
    return solver_.validation();
}

Index
AdmmBackend::numVariables() const
{
    return solver_.numVariables();
}

Index
AdmmBackend::numConstraints() const
{
    return solver_.numConstraints();
}

} // namespace rsqp
