#include "backends/backend_selector.hpp"

namespace rsqp
{

BackendFeatures
computeBackendFeatures(const QpProblem& problem)
{
    BackendFeatures f;
    f.n = problem.numVariables();
    f.m = problem.numConstraints();
    f.nnz = problem.totalNnz();
    f.hasHessian = problem.pUpper.nnz() > 0;
    f.tallRatio = f.n > 0
        ? static_cast<Real>(f.m) / static_cast<Real>(f.n)
        : 0.0;

    if (f.m == 0)
        return f;

    // Per-row A population (for the box-row feature) without building
    // a CSR mirror: count column entries per row.
    std::vector<Index> row_nnz(static_cast<std::size_t>(f.m), 0);
    const std::vector<Index>& row_idx = problem.a.rowIdx();
    for (const Index r : row_idx)
        if (r >= 0 && r < f.m)
            ++row_nnz[static_cast<std::size_t>(r)];

    Index equalities = 0;
    Index loose = 0;
    Index box = 0;
    for (Index i = 0; i < f.m; ++i) {
        const auto s = static_cast<std::size_t>(i);
        const Real lo = problem.l[s];
        const Real hi = problem.u[s];
        if (lo <= -kInf && hi >= kInf)
            ++loose;
        else if (hi - lo < 1e-12)
            ++equalities;
        if (row_nnz[s] == 1)
            ++box;
    }
    const Real m_real = static_cast<Real>(f.m);
    f.equalityFraction = static_cast<Real>(equalities) / m_real;
    f.looseFraction = static_cast<Real>(loose) / m_real;
    f.boxFraction = static_cast<Real>(box) / m_real;
    return f;
}

BackendKind
chooseBackend(const BackendFeatures& features,
              const SelectorConfig& config)
{
    // Small problems: setup costs dwarf any iteration-count gap, and
    // the direct KKT factor is unbeatable. Never leave ADMM.
    if (features.n + features.m < config.smallProblemThreshold)
        return BackendKind::Admm;

    // Equality-dominated: the per-constraint stiff-rho trick is the
    // decisive advantage, PDHG has no equivalent.
    if (features.equalityFraction >= config.equalityFractionAdmm)
        return BackendKind::Admm;

    // Tall problems with a *mixed* constraint set: restarted PDHG's
    // territory. A single ADMM penalty must compromise between the
    // stiff equality rows and the loose inequality rows there; PDHG's
    // adaptive primal weight sidesteps the compromise. All-inequality
    // tall problems (svm) stay ADMM — one rho fits every row.
    if (features.tallRatio >= config.tallRatioPdhg &&
        features.equalityFraction >= config.equalityFractionPdhgMin)
        return BackendKind::Pdhg;

    return BackendKind::Admm;
}

BackendKind
chooseBackend(const QpProblem& problem, const SelectorConfig& config)
{
    return chooseBackend(computeBackendFeatures(problem), config);
}

} // namespace rsqp
