/**
 * @file
 * ADMM engine behind the QpBackend interface.
 *
 * Deliberately a forwarding *wrapper* around OsqpSolver rather than a
 * refactor of it: the default configuration must stay bit-for-bit
 * identical to the pre-subsystem solver, and the cheapest way to prove
 * that is to not touch the loop at all — the wrapper only delegates
 * and bumps the per-backend registry counters. The same wrapper serves
 * BackendKind::AdmmAccelerated: the factory force-enables the
 * firstOrder.accel knob and the acceleration lives (fully gated)
 * inside the OsqpSolver loop itself.
 */

#ifndef RSQP_BACKENDS_ADMM_BACKEND_HPP
#define RSQP_BACKENDS_ADMM_BACKEND_HPP

#include "backends/qp_backend.hpp"
#include "osqp/solver.hpp"

namespace rsqp
{

/** QpBackend adapter over the OsqpSolver ADMM loop. */
class AdmmBackend final : public QpBackend
{
  public:
    /** `kind` is Admm or AdmmAccelerated (selects the telemetry
     *  label; the accel knob must already be set accordingly). */
    AdmmBackend(QpProblem problem, OsqpSettings settings,
                BackendKind kind = BackendKind::Admm);

    OsqpResult solve() override;
    bool warmStart(const Vector& x, const Vector& y) override;
    void updateLinearCost(const Vector& q) override;
    void updateBounds(const Vector& l, const Vector& u) override;
    void updateMatrixValues(const std::vector<Real>& p_values,
                            const std::vector<Real>& a_values) override;
    void setTimeLimit(Real seconds) override;
    void setIterationBudget(Index max_iter) override;
    const ValidationReport& validation() const override;
    BackendKind kind() const override { return kind_; }
    Index numVariables() const override;
    Index numConstraints() const override;

    /** The wrapped solver (tests poke at rho, scaled problem...). */
    OsqpSolver& solver() { return solver_; }

  private:
    OsqpSolver solver_;
    BackendKind kind_;
};

} // namespace rsqp

#endif // RSQP_BACKENDS_ADMM_BACKEND_HPP
