#include "backends/pdhg_solver.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "backends/backend_metrics.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "linalg/simd_kernels.hpp"
#include "linalg/vector_ops.hpp"
#include "osqp/residuals.hpp"
#include "osqp/validate.hpp"
#include "telemetry/trace.hpp"

namespace rsqp
{

namespace
{

/**
 * Additional settings checks specific to this engine (the shared
 * validateSettings already covers alpha/rho/tolerance ranges).
 */
void
validatePdhgKnobs(const PdhgConfig& pdhg, ValidationReport& report)
{
    const auto add = [&report](std::string message) {
        ValidationIssue issue;
        issue.code = ValidationCode::InvalidSetting;
        issue.message = std::move(message);
        report.issues.push_back(std::move(issue));
    };
    if (pdhg.restartInterval < 1)
        add("pdhg.restartInterval must be >= 1, got " +
            std::to_string(pdhg.restartInterval));
    if (!(pdhg.restartBeta > 0.0 && pdhg.restartBeta < 1.0))
        add("pdhg.restartBeta must be in (0, 1), got " +
            std::to_string(pdhg.restartBeta));
    if (pdhg.primalWeight < 0.0)
        add("pdhg.primalWeight must be >= 0 (0 = automatic), got " +
            std::to_string(pdhg.primalWeight));
    if (!(pdhg.stepBalanceSmoothing >= 0.0 &&
          pdhg.stepBalanceSmoothing <= 1.0))
        add("pdhg.stepBalanceSmoothing must be in [0, 1], got " +
            std::to_string(pdhg.stepBalanceSmoothing));
    if (!(pdhg.primalWeightMax > 1.0))
        add("pdhg.primalWeightMax must be > 1, got " +
            std::to_string(pdhg.primalWeightMax));
    if (pdhg.warmupChecks < 0)
        add("pdhg.warmupChecks must be >= 0, got " +
            std::to_string(pdhg.warmupChecks));
    if (pdhg.powerIterations < 1)
        add("pdhg.powerIterations must be >= 1, got " +
            std::to_string(pdhg.powerIterations));
    if (!(pdhg.stepSafety >= 1.0))
        add("pdhg.stepSafety must be >= 1, got " +
            std::to_string(pdhg.stepSafety));
}

/** Deterministic pseudo-random unit vector for power iteration. */
void
seedPowerVector(Vector& v, std::size_t size)
{
    v.resize(size);
    // xorshift with a fixed seed: reproducible on every platform and
    // never orthogonal to the dominant eigenvector in practice.
    std::uint64_t state = 0x9e3779b97f4a7c15ULL;
    for (std::size_t i = 0; i < size; ++i) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        v[i] = 2.0 * (static_cast<Real>(state >> 11) /
                      static_cast<Real>(1ULL << 53)) -
            1.0;
    }
}

} // namespace

PdhgSolver::PdhgSolver(QpProblem problem, OsqpSettings settings)
    : settings_(std::move(settings)), original_(std::move(problem))
{
    Timer setup_timer;

    validation_ = validateSettings(settings_);
    validatePdhgKnobs(settings_.firstOrder.pdhg, validation_);
    ValidationReport problem_report = validateProblem(original_);
    validation_.issues.insert(validation_.issues.end(),
                              problem_report.issues.begin(),
                              problem_report.issues.end());
    if (!validation_.ok()) {
        RSQP_WARN("problem '", original_.name,
                  "' failed validation:\n", validation_.describe());
        lastInfo_.status = SolveStatus::InvalidProblem;
        lastInfo_.setupTime = setup_timer.seconds();
        return;
    }

    if (settings_.faultInjection.enabled)
        faultInjector_ =
            std::make_unique<FaultInjector>(settings_.faultInjection);

    n_ = original_.numVariables();
    m_ = original_.numConstraints();

    scaled_ = original_;
    scaling_ = ruizEquilibrate(scaled_, settings_.scalingIterations);

    rebuildMirrors();
    estimateOperatorNorms();
    omega_ = initialPrimalWeight();
    applyStepSizes();

    x_.assign(static_cast<std::size_t>(n_), 0.0);
    y_.assign(static_cast<std::size_t>(m_), 0.0);
    lastInfo_.setupTime = setup_timer.seconds();
}

void
PdhgSolver::rebuildMirrors()
{
    aCsr_ = CsrMatrix::fromCsc(scaled_.a);
    atCsr_ = CsrMatrix::fromCsc(scaled_.a.transpose());
    pCsr_ = CsrMatrix::fromCsc(scaled_.pUpper.symUpperToFull());
}

void
PdhgSolver::estimateOperatorNorms()
{
    const Index sweeps = settings_.firstOrder.pdhg.powerIterations;
    const Real margin = settings_.firstOrder.pdhg.stepSafety;

    // ||A||_2 via power iteration on A'A.
    if (m_ > 0 && scaled_.a.nnz() > 0) {
        Vector v, av, atav;
        seedPowerVector(v, static_cast<std::size_t>(n_));
        Real lam = 0.0;
        for (Index k = 0; k < sweeps; ++k) {
            const Real nv = norm2(v);
            if (!(nv > 0.0))
                break;
            scale(v, 1.0 / nv);
            aCsr_.spmv(v, av);
            atCsr_.spmv(av, atav);
            lam = norm2(atav);  // Rayleigh bound ||A'Av|| >= lambda
            v = atav;
        }
        etaA_ = std::max(std::sqrt(std::max(lam, Real(0.0))) * margin,
                         Real(1e-12));
    } else {
        etaA_ = 1e-12;
    }

    // lambda_max(P) via power iteration on the full symmetric mirror.
    if (pCsr_.nnz() > 0) {
        Vector v, pv;
        seedPowerVector(v, static_cast<std::size_t>(n_));
        Real lam = 0.0;
        for (Index k = 0; k < sweeps; ++k) {
            const Real nv = norm2(v);
            if (!(nv > 0.0))
                break;
            scale(v, 1.0 / nv);
            pCsr_.spmv(v, pv);
            lam = norm2(pv);
            v = pv;
        }
        lamP_ = std::max(lam, Real(0.0)) * margin;
    } else {
        lamP_ = 0.0;
    }
}

void
PdhgSolver::applyStepSizes()
{
    // sigma = omega / ||A||; tau from the Condat–Vũ condition
    // tau (lam_P/2 + sigma ||A||^2) <= 1 with the safety margin.
    const Real margin = settings_.firstOrder.pdhg.stepSafety;
    sigma_ = omega_ / etaA_;
    tau_ = 1.0 / (margin * (0.5 * lamP_ + omega_ * etaA_));
}

Real
PdhgSolver::initialPrimalWeight() const
{
    const Real configured = settings_.firstOrder.pdhg.primalWeight;
    const Real cap = settings_.firstOrder.pdhg.primalWeightMax;
    if (configured > 0.0)
        return clampReal(configured, 1.0 / cap, cap);
    // PDLP-style data-driven default: balance the primal gradient
    // magnitude against the bound magnitude (infinite bounds excluded).
    const Real nq = norm2(scaled_.q);
    Real nb = 0.0;
    for (Index i = 0; i < m_; ++i) {
        const Real lo = scaled_.l[static_cast<std::size_t>(i)];
        const Real hi = scaled_.u[static_cast<std::size_t>(i)];
        if (lo > -kInf)
            nb += lo * lo;
        if (hi < kInf)
            nb += hi * hi;
    }
    nb = std::sqrt(nb);
    if (!(nq > 0.0) || !(nb > 0.0))
        return 1.0;
    return clampReal(nq / nb, 1.0 / cap, cap);
}

bool
PdhgSolver::warmStart(const Vector& x, const Vector& y)
{
    if (!validation_.ok())
        return false;
    if (static_cast<Index>(x.size()) != n_ ||
        static_cast<Index>(y.size()) != m_) {
        RSQP_WARN("warmStart ignored: got sizes (", x.size(), ", ",
                  y.size(), "), expected (", n_, ", ", m_, ")");
        return false;
    }
    for (Index j = 0; j < n_; ++j)
        x_[static_cast<std::size_t>(j)] =
            scaling_.dInv[static_cast<std::size_t>(j)] *
            x[static_cast<std::size_t>(j)];
    for (Index i = 0; i < m_; ++i)
        y_[static_cast<std::size_t>(i)] = scaling_.c *
            scaling_.eInv[static_cast<std::size_t>(i)] *
            y[static_cast<std::size_t>(i)];
    return true;
}

void
PdhgSolver::updateLinearCost(const Vector& q)
{
    if (!validation_.ok())
        return;
    RSQP_ASSERT(static_cast<Index>(q.size()) == n_, "q size mismatch");
    original_.q = q;
    for (Index j = 0; j < n_; ++j)
        scaled_.q[static_cast<std::size_t>(j)] = scaling_.c *
            scaling_.d[static_cast<std::size_t>(j)] *
            q[static_cast<std::size_t>(j)];
}

void
PdhgSolver::updateBounds(const Vector& l, const Vector& u)
{
    if (!validation_.ok())
        return;
    RSQP_ASSERT(static_cast<Index>(l.size()) == m_ &&
                    static_cast<Index>(u.size()) == m_,
                "bound size mismatch");
    for (Index i = 0; i < m_; ++i)
        if (l[static_cast<std::size_t>(i)] >
            u[static_cast<std::size_t>(i)])
            RSQP_FATAL("updateBounds: l > u at constraint ", i);
    original_.l = l;
    original_.u = u;
    for (Index i = 0; i < m_; ++i) {
        const Real e_i = scaling_.e[static_cast<std::size_t>(i)];
        const Real lo = l[static_cast<std::size_t>(i)];
        const Real hi = u[static_cast<std::size_t>(i)];
        scaled_.l[static_cast<std::size_t>(i)] =
            (lo <= -kInf) ? lo : e_i * lo;
        scaled_.u[static_cast<std::size_t>(i)] =
            (hi >= kInf) ? hi : e_i * hi;
    }
}

void
PdhgSolver::updateMatrixValues(const std::vector<Real>& p_values,
                               const std::vector<Real>& a_values)
{
    if (!validation_.ok())
        return;
    if (!p_values.empty()) {
        RSQP_ASSERT(p_values.size() == original_.pUpper.values().size(),
                    "P value count mismatch");
        original_.pUpper.values() = p_values;
        auto& scaled_vals = scaled_.pUpper.values();
        const auto& col_ptr = scaled_.pUpper.colPtr();
        const auto& row_idx = scaled_.pUpper.rowIdx();
        for (Index c = 0; c < n_; ++c)
            for (Index p = col_ptr[c]; p < col_ptr[c + 1]; ++p)
                scaled_vals[static_cast<std::size_t>(p)] = scaling_.c *
                    scaling_.d[static_cast<std::size_t>(row_idx[p])] *
                    scaling_.d[static_cast<std::size_t>(c)] *
                    p_values[static_cast<std::size_t>(p)];
    }
    if (!a_values.empty()) {
        RSQP_ASSERT(a_values.size() == original_.a.values().size(),
                    "A value count mismatch");
        original_.a.values() = a_values;
        auto& scaled_vals = scaled_.a.values();
        const auto& col_ptr = scaled_.a.colPtr();
        const auto& row_idx = scaled_.a.rowIdx();
        for (Index c = 0; c < n_; ++c)
            for (Index p = col_ptr[c]; p < col_ptr[c + 1]; ++p)
                scaled_vals[static_cast<std::size_t>(p)] =
                    scaling_.e[static_cast<std::size_t>(row_idx[p])] *
                    scaling_.d[static_cast<std::size_t>(c)] *
                    a_values[static_cast<std::size_t>(p)];
    }
    if (!p_values.empty() || !a_values.empty()) {
        // New operator values change the valid step sizes too.
        rebuildMirrors();
        estimateOperatorNorms();
        applyStepSizes();
    }
}

bool
PdhgSolver::checkPrimalInfeasibility(const Vector& delta_y) const
{
    const Real norm_dy = normInf(delta_y);
    if (norm_dy <= settings_.epsPrimInf)
        return false;
    Vector at_dy;
    original_.a.spmvTranspose(delta_y, at_dy);
    if (normInf(at_dy) > settings_.epsPrimInf * norm_dy)
        return false;
    Real support = 0.0;
    for (Index i = 0; i < m_; ++i) {
        const Real dy_i = delta_y[static_cast<std::size_t>(i)];
        if (dy_i > 0.0) {
            const Real u_i = original_.u[static_cast<std::size_t>(i)];
            if (u_i >= kInf)
                return false;
            support += u_i * dy_i;
        } else if (dy_i < 0.0) {
            const Real l_i = original_.l[static_cast<std::size_t>(i)];
            if (l_i <= -kInf)
                return false;
            support += l_i * dy_i;
        }
    }
    return support <= -settings_.epsPrimInf * norm_dy;
}

bool
PdhgSolver::checkDualInfeasibility(const Vector& delta_x) const
{
    const Real norm_dx = normInf(delta_x);
    if (norm_dx <= settings_.epsDualInf)
        return false;
    if (dot(original_.q, delta_x) > -settings_.epsDualInf * norm_dx)
        return false;
    Vector p_dx;
    original_.pUpper.spmvSymUpper(delta_x, p_dx);
    if (normInf(p_dx) > settings_.epsDualInf * norm_dx)
        return false;
    Vector a_dx;
    original_.a.spmv(delta_x, a_dx);
    const Real tol = settings_.epsDualInf * norm_dx;
    for (Index i = 0; i < m_; ++i) {
        const Real v = a_dx[static_cast<std::size_t>(i)];
        if (original_.u[static_cast<std::size_t>(i)] < kInf && v > tol)
            return false;
        if (original_.l[static_cast<std::size_t>(i)] > -kInf &&
            v < -tol)
            return false;
    }
    return true;
}

OsqpResult
PdhgSolver::solve()
{
    TELEMETRY_SPAN("pdhg.solve");
    Timer solve_timer;
    NumThreadsScope threads_scope(settings_.resolvedNumThreads());

    OsqpResult result;
    OsqpInfo& info = result.info;
    info = lastInfo_;
    info.status = SolveStatus::MaxIterReached;
    info.iterations = 0;
    info.rhoUpdates = 0;
    info.pcgIterationsTotal = 0;
    info.refinementSweepsTotal = 0;
    info.fp64Rescues = 0;
    info.hotPath = HotPathProfile{};
    info.recovery = RecoveryReport{};
    info.telemetry = SolveTelemetry{};

    if (!validation_.ok()) {
        result.validation = validation_;
        info.status = SolveStatus::InvalidProblem;
        info.solveTime = solve_timer.seconds();
        lastInfo_ = info;
        return result;
    }

    const PdhgConfig& cfg = settings_.firstOrder.pdhg;

    // Soft-error source for the operator stream (tests/bench only);
    // each solve sees a fresh deterministic fault pattern.
    FaultScope fault_scope(faultInjector_.get());
    if (faultInjector_ != nullptr)
        faultInjector_->advanceEpoch();
    FaultInjector* injector = activeFaultInjector();
    const std::uint64_t call_offset =
        injector != nullptr ? injector->acquireNonce() << 20 : 0;
    const Count faults_before = faultInjector_ != nullptr
                                    ? faultInjector_->faultsInjected()
                                    : 0;

    const FaultToleranceSettings& ft = settings_.faultTolerance;
    DivergenceWatchdog watchdog(ft);
    IterateCheckpoint checkpoint;
    Index recovery_attempts = 0;
    Count restarts = 0;

    // Scratch (sized once; the loop itself allocates nothing).
    Vector px(static_cast<std::size_t>(n_));
    Vector aty(static_cast<std::size_t>(n_));
    Vector x_next(static_cast<std::size_t>(n_));
    Vector x_bar(static_cast<std::size_t>(n_));
    Vector ax(static_cast<std::size_t>(m_));
    Vector x_u(static_cast<std::size_t>(n_));
    Vector y_u(static_cast<std::size_t>(m_));
    Vector z_u(static_cast<std::size_t>(m_));
    Vector ax_u(static_cast<std::size_t>(m_));
    Vector delta_x(static_cast<std::size_t>(n_));
    Vector delta_y(static_cast<std::size_t>(m_));

    // Epoch state: running average since the last restart, the
    // restart anchor, and the merit recorded at the restart point.
    Vector x_sum(static_cast<std::size_t>(n_), 0.0);
    Vector y_sum(static_cast<std::size_t>(m_), 0.0);
    Vector x_anchor = x_;
    Vector y_anchor = y_;
    Index epoch_len = 0;
    Real restart_merit = kInf;
    Index warmups_done = 0;

    // Deltas between consecutive termination checks feed the
    // infeasibility certificates (the PDHG iterate difference
    // converges to the certificate ray on infeasible problems).
    Vector x_u_prev, y_u_prev;
    bool have_prev_check = false;

    const auto unscale_iterates = [&]() {
        parallelForRange(n_, [&](Index jb, Index je) {
            for (Index j = jb; j < je; ++j)
                x_u[static_cast<std::size_t>(j)] =
                    scaling_.d[static_cast<std::size_t>(j)] *
                    x_[static_cast<std::size_t>(j)];
        });
        parallelForRange(m_, [&](Index ib, Index ie) {
            for (Index i = ib; i < ie; ++i) {
                const auto s = static_cast<std::size_t>(i);
                y_u[s] = scaling_.cInv * scaling_.e[s] * y_[s];
            }
        });
    };

    const auto reset_epoch = [&]() {
        std::fill(x_sum.begin(), x_sum.end(), 0.0);
        std::fill(y_sum.begin(), y_sum.end(), 0.0);
        x_anchor = x_;
        y_anchor = y_;
        epoch_len = 0;
    };

    const auto roll_back = [&]() {
        Vector z_dummy;
        if (checkpoint.valid()) {
            checkpoint.restore(x_, y_, z_dummy);
        } else {
            x_.assign(static_cast<std::size_t>(n_), 0.0);
            y_.assign(static_cast<std::size_t>(m_), 0.0);
        }
    };

    // One checkpoint-restore + step-size-backoff recovery attempt:
    // the PDHG analog of the ADMM sigma boost is halving both steps
    // (their product condition keeps holding with extra slack).
    const auto try_recover = [&](Index iter, const char* trigger) {
        if (!ft.watchdog || recovery_attempts >= ft.maxRecoveryAttempts)
            return false;
        ++recovery_attempts;
        roll_back();
        tau_ *= 0.5;
        sigma_ *= 0.5;
        reset_epoch();
        restart_merit = kInf;
        have_prev_check = false;
        watchdog.reset();
        info.recovery.record(RecoveryAction::CheckpointRestore, iter,
                             std::string(trigger) +
                                 "; rolled back to " +
                                 (checkpoint.valid()
                                      ? "iteration " +
                                            std::to_string(
                                                checkpoint.iteration())
                                      : std::string("a cold start")));
        ++info.recovery.checkpointRestores;
        info.recovery.record(RecoveryAction::SigmaBoost, iter,
                             "step backoff: tau = " +
                                 std::to_string(tau_) + ", sigma = " +
                                 std::to_string(sigma_));
        ++info.recovery.sigmaBoosts;
        RSQP_WARN("pdhg recovery at iteration ", iter, ": ", trigger,
                  "; steps halved to tau=", tau_, " sigma=", sigma_);
        return true;
    };

    for (Index iter = 1; iter <= settings_.maxIter; ++iter) {
        TELEMETRY_SPAN("pdhg.iter");
        if (settings_.timeLimit > 0.0 &&
            solve_timer.seconds() >= settings_.timeLimit) {
            info.status = SolveStatus::TimeLimitReached;
            break;
        }

        // Primal step: x+ = x - tau (P x + q + A' y).
        pCsr_.spmv(x_, px);
        atCsr_.spmv(y_, aty);
        if (injector != nullptr) {
            // Same hook shape as the PCG operator stream: a per-call
            // offset keeps a word position from being deterministically
            // faulty on every application of the operator.
            injector->corruptVector(px, fault_streams::kPdhgOperator +
                                            call_offset + iter);
        }
        const Real tau = tau_;
        parallelForRange(n_, [&](Index jb, Index je) {
            for (Index j = jb; j < je; ++j) {
                const auto s = static_cast<std::size_t>(j);
                x_next[s] =
                    x_[s] - tau * (px[s] + scaled_.q[s] + aty[s]);
                x_bar[s] = 2.0 * x_next[s] - x_[s];
            }
        });

        // Dual step via Moreau: y+ = sigma (w - Pi_[l,u](w)).
        aCsr_.spmv(x_bar, ax);
        const Real sigma = sigma_;
        const Real sigma_inv = 1.0 / sigma;
        parallelForRange(m_, [&](Index ib, Index ie) {
            for (Index i = ib; i < ie; ++i) {
                const auto s = static_cast<std::size_t>(i);
                const Real w = y_[s] * sigma_inv + ax[s];
                const Real proj =
                    clampReal(w, scaled_.l[s], scaled_.u[s]);
                y_[s] = sigma * (w - proj);
            }
        });
        ++epoch_len;

        if (cfg.restart == PdhgRestart::Halpern) {
            // Halpern anchoring: blend every iterate back toward the
            // epoch anchor with weight 1/(k+2) — the rAPDHG scheme
            // that restores an O(1/k) rate on the fixed-point residual.
            const Real lambda =
                1.0 / static_cast<Real>(epoch_len + 1);
            parallelForRange(n_, [&](Index jb, Index je) {
                for (Index j = jb; j < je; ++j) {
                    const auto s = static_cast<std::size_t>(j);
                    x_[s] = (1.0 - lambda) * x_next[s] +
                        lambda * x_anchor[s];
                }
            });
            parallelForRange(m_, [&](Index ib, Index ie) {
                for (Index i = ib; i < ie; ++i) {
                    const auto s = static_cast<std::size_t>(i);
                    y_[s] = (1.0 - lambda) * y_[s] +
                        lambda * y_anchor[s];
                }
            });
        } else {
            x_.swap(x_next);
        }

        // Running average of the epoch (restart target).
        parallelForRange(n_, [&](Index jb, Index je) {
            for (Index j = jb; j < je; ++j)
                x_sum[static_cast<std::size_t>(j)] +=
                    x_[static_cast<std::size_t>(j)];
        });
        parallelForRange(m_, [&](Index ib, Index ie) {
            for (Index i = ib; i < ie; ++i)
                y_sum[static_cast<std::size_t>(i)] +=
                    y_[static_cast<std::size_t>(i)];
        });

        info.iterations = iter;

        const bool check_now = (iter % settings_.checkInterval == 0) ||
            iter == settings_.maxIter;
        if (!check_now)
            continue;

        if (hasNonFinite(x_) || hasNonFinite(y_)) {
            if (try_recover(iter, "non-finite iterates"))
                continue;
            roll_back();
            info.status = SolveStatus::NumericalError;
            break;
        }

        // Unscaled residuals at the current iterate, with
        // z = Pi_[l,u](A x) as the auxiliary variable.
        unscale_iterates();
        original_.a.spmv(x_u, ax_u);
        ewClamp(ax_u, original_.l, original_.u, z_u);
        const ResidualInfo res =
            computeResiduals(original_, x_u, y_u, z_u, settings_.epsAbs,
                             settings_.epsRel);
        info.primRes = res.primRes;
        info.dualRes = res.dualRes;
        info.telemetry.pushResidual(iter, res.primRes, res.dualRes);

        if (settings_.recordTrace) {
            IterationRecord rec;
            rec.iteration = iter;
            rec.primRes = res.primRes;
            rec.dualRes = res.dualRes;
            rec.rho = omega_;  // the step-balance knob of this engine
            result.trace.push_back(rec);
        }

        if (ft.watchdog) {
            const DivergenceWatchdog::Verdict verdict =
                watchdog.observe(res.primRes, res.dualRes);
            if (verdict == DivergenceWatchdog::Verdict::Diverged) {
                if (try_recover(iter, "residual divergence"))
                    continue;
                roll_back();
                info.status = SolveStatus::NumericalError;
                break;
            }
            if (verdict == DivergenceWatchdog::Verdict::Stalled) {
                if (try_recover(iter, "residual stall"))
                    continue;
            } else {
                Vector z_dummy;
                checkpoint.capture(x_, y_, z_dummy, iter);
            }
        }

        if (res.converged()) {
            info.status = SolveStatus::Solved;
            break;
        }

        if (have_prev_check) {
            parallelForRange(n_, [&](Index jb, Index je) {
                for (Index j = jb; j < je; ++j) {
                    const auto s = static_cast<std::size_t>(j);
                    delta_x[s] = x_u[s] - x_u_prev[s];
                }
            });
            parallelForRange(m_, [&](Index ib, Index ie) {
                for (Index i = ib; i < ie; ++i) {
                    const auto s = static_cast<std::size_t>(i);
                    delta_y[s] = y_u[s] - y_u_prev[s];
                }
            });
            if (checkPrimalInfeasibility(delta_y)) {
                info.status = SolveStatus::PrimalInfeasible;
                break;
            }
            if (checkDualInfeasibility(delta_x)) {
                info.status = SolveStatus::DualInfeasible;
                break;
            }
        }
        x_u_prev = x_u;
        y_u_prev = y_u;
        have_prev_check = true;

        // --- Restart logic -------------------------------------------
        const Real merit = std::max(res.primRes, res.dualRes);
        bool do_restart = false;
        bool to_average = false;
        // Warm-up rebalance: the first few checks restart in place
        // with a full-strength omega update (see PdhgConfig).
        const bool warmup_now = cfg.adaptiveStepBalance &&
            warmups_done < cfg.warmupChecks &&
            cfg.restart != PdhgRestart::None;
        if (warmup_now) {
            do_restart = true;
            ++warmups_done;
        } else {
            switch (cfg.restart) {
            case PdhgRestart::None:
                break;
            case PdhgRestart::FixedFrequency:
                if (epoch_len >= cfg.restartInterval) {
                    do_restart = true;
                    to_average = true;
                }
                break;
            case PdhgRestart::Adaptive:
                // Sufficient decay since the last restart, or the
                // forced ceiling — whichever fires first.
                if (merit <= cfg.restartBeta * restart_merit ||
                    epoch_len >= cfg.restartInterval) {
                    do_restart = true;
                    to_average = true;
                }
                break;
            case PdhgRestart::Halpern:
                // Anchor refresh only; the iterate is anchored already.
                if (epoch_len >= cfg.restartInterval)
                    do_restart = true;
                break;
            }
        }

        if (do_restart) {
            if (to_average && epoch_len > 0) {
                const Real inv =
                    1.0 / static_cast<Real>(epoch_len);
                parallelForRange(n_, [&](Index jb, Index je) {
                    for (Index j = jb; j < je; ++j) {
                        const auto s = static_cast<std::size_t>(j);
                        x_[s] = x_sum[s] * inv;
                    }
                });
                parallelForRange(m_, [&](Index ib, Index ie) {
                    for (Index i = ib; i < ie; ++i) {
                        const auto s = static_cast<std::size_t>(i);
                        y_[s] = y_sum[s] * inv;
                    }
                });
            }

            if (cfg.adaptiveStepBalance) {
                // PDLP primal-weight update: move omega toward the
                // observed dual/primal displacement ratio in log space.
                const Real dx = normInfDiff(x_, x_anchor);
                const Real dy = normInfDiff(y_, y_anchor);
                if (dx > 1e-12 && dy > 1e-12) {
                    const Real cap =
                        settings_.firstOrder.pdhg.primalWeightMax;
                    const Real s = warmup_now
                        ? 1.0
                        : settings_.firstOrder.pdhg
                              .stepBalanceSmoothing;
                    const Real target = std::log(dy / dx);
                    omega_ = clampReal(
                        std::exp(s * target +
                                 (1.0 - s) * std::log(omega_)),
                        1.0 / cap, cap);
                    applyStepSizes();
                }
            }

            reset_epoch();
            restart_merit = merit;
            ++restarts;
        }
    }

    if (hasNonFinite(x_) || hasNonFinite(y_)) {
        roll_back();
        if (info.status != SolveStatus::TimeLimitReached)
            info.status = SolveStatus::NumericalError;
    }

    // Final unscaled solution (z = Pi_[l,u](A x), the auxiliary
    // variable this engine drives A x toward).
    unscale_iterates();
    result.x = x_u;
    result.y = y_u;
    original_.a.spmv(x_u, ax_u);
    ewClamp(ax_u, original_.l, original_.u, z_u);
    result.z = z_u;
    info.objective = original_.objective(result.x);

    info.solveTime = solve_timer.seconds();
    info.kktSolveTime = 0.0;  // matrix-free: there is no KKT backend

    SolveTelemetry& tele = info.telemetry;
    tele.backend = backendKindName(BackendKind::Pdhg);
    tele.restarts = restarts;
    tele.iterations = info.iterations;
    tele.kktSolves = 0;
    tele.pcgIterationsTotal = 0;
    tele.pcgItersPerSolve = 0.0;
    tele.isaLevel = isaLevelName(simd::activeIsaLevel());
    tele.precision = precisionModeName(PrecisionMode::Fp64);
    tele.recoveryEvents =
        static_cast<Count>(info.recovery.events.size());
    tele.faultsInjected = faultInjector_ != nullptr
        ? faultInjector_->faultsInjected() - faults_before
        : 0;
    tele.solveSeconds = info.solveTime;
    recordBackendSolve(name(), info);

    lastInfo_ = info;
    return result;
}

} // namespace rsqp
