#include "backends/backend_driver.hpp"

#include <algorithm>
#include <utility>

#include "backends/admm_backend.hpp"
#include "backends/backend_metrics.hpp"
#include "backends/pdhg_solver.hpp"
#include "common/logging.hpp"
#include "common/timer.hpp"

namespace rsqp
{

BackendDriver::BackendDriver(QpProblem problem, OsqpSettings settings)
    : settings_(std::move(settings)), problem_(std::move(problem)),
      budget_(settings_.maxIter)
{
    features_ = computeBackendFeatures(problem_);
    activeKind_ =
        chooseBackend(features_, settings_.firstOrder.selector);
    active_ = makeEngine(activeKind_);
}

std::unique_ptr<QpBackend>
BackendDriver::makeEngine(BackendKind kind) const
{
    OsqpSettings engine_settings = settings_;
    // The engine must never out-select the driver: a nested Auto would
    // recurse, and slices re-apply the budget per solve() anyway.
    engine_settings.firstOrder.method = kind;
    if (kind == BackendKind::Pdhg)
        return std::make_unique<PdhgSolver>(problem_,
                                            std::move(engine_settings));
    return std::make_unique<AdmmBackend>(
        problem_, std::move(engine_settings), kind);
}

OsqpResult
BackendDriver::solve()
{
    Timer solve_timer;
    const SelectorConfig& sel = settings_.firstOrder.selector;

    const bool sliced = sel.midSolveSwitch &&
        sel.minProgressFactor > 0.0 && sel.maxSwitches > 0 &&
        sel.switchCheckIterations > 0 &&
        budget_ > sel.switchCheckIterations &&
        validation().ok();

    const auto arm_time_limit = [&]() {
        if (settings_.timeLimit > 0.0)
            active_->setTimeLimit(std::max(
                settings_.timeLimit - solve_timer.seconds(), 1e-9));
        else
            active_->setTimeLimit(0.0);
    };

    if (!sliced) {
        active_->setIterationBudget(budget_);
        arm_time_limit();
        return active_->solve();
    }

    Index used = 0;
    Count switches = 0;
    Count restarts_total = 0;
    Real prev_combined = kInf;
    OsqpResult out;

    while (true) {
        const Index slice = std::min(sel.switchCheckIterations,
                                     budget_ - used);
        active_->setIterationBudget(slice);
        arm_time_limit();
        out = active_->solve();
        used += out.info.iterations;
        restarts_total += out.info.telemetry.restarts;

        if (out.info.status != SolveStatus::MaxIterReached ||
            used >= budget_)
            break;

        const Real combined =
            std::max(out.info.primRes, out.info.dualRes);
        if (switches < sel.maxSwitches &&
            !(combined <= sel.minProgressFactor * prev_combined)) {
            // Stalled: hand the solve to the other engine, warm
            // started from the current iterate.
            const BackendKind next_kind =
                activeKind_ == BackendKind::Pdhg ? BackendKind::Admm
                                                 : BackendKind::Pdhg;
            std::unique_ptr<QpBackend> next = makeEngine(next_kind);
            next->warmStart(out.x, out.y);
            recordBackendSwitch(active_->name(), next->name());
            RSQP_INFORM("auto driver: switching ", active_->name(),
                        " -> ", next->name(), " after ", used,
                        " iterations (combined residual ", combined,
                        ")");
            active_ = std::move(next);
            activeKind_ = next_kind;
            ++switches;
            // Give the fresh engine one full slice before judging it.
            prev_combined = kInf;
        } else {
            prev_combined = combined;
        }
    }

    out.info.iterations = used;
    out.info.telemetry.iterations = used;
    out.info.telemetry.restarts = restarts_total;
    out.info.telemetry.backendSwitches = switches;
    out.info.solveTime = solve_timer.seconds();
    out.info.telemetry.solveSeconds = out.info.solveTime;
    return out;
}

bool
BackendDriver::warmStart(const Vector& x, const Vector& y)
{
    return active_->warmStart(x, y);
}

void
BackendDriver::updateLinearCost(const Vector& q)
{
    if (static_cast<Index>(q.size()) ==
        static_cast<Index>(problem_.q.size()))
        problem_.q = q;
    active_->updateLinearCost(q);
}

void
BackendDriver::updateBounds(const Vector& l, const Vector& u)
{
    if (l.size() == problem_.l.size() && u.size() == problem_.u.size()) {
        problem_.l = l;
        problem_.u = u;
    }
    active_->updateBounds(l, u);
}

void
BackendDriver::updateMatrixValues(const std::vector<Real>& p_values,
                                  const std::vector<Real>& a_values)
{
    if (!p_values.empty() &&
        p_values.size() == problem_.pUpper.values().size())
        problem_.pUpper.values() = p_values;
    if (!a_values.empty() &&
        a_values.size() == problem_.a.values().size())
        problem_.a.values() = a_values;
    active_->updateMatrixValues(p_values, a_values);
}

void
BackendDriver::setTimeLimit(Real seconds)
{
    settings_.timeLimit = seconds;
}

void
BackendDriver::setIterationBudget(Index max_iter)
{
    budget_ = max_iter;
}

const ValidationReport&
BackendDriver::validation() const
{
    return active_->validation();
}

const char*
BackendDriver::name() const
{
    return active_ != nullptr ? active_->name()
                              : backendKindName(BackendKind::Auto);
}

Index
BackendDriver::numVariables() const
{
    return active_->numVariables();
}

Index
BackendDriver::numConstraints() const
{
    return active_->numConstraints();
}

std::unique_ptr<QpBackend>
makeBackend(QpProblem problem, OsqpSettings settings)
{
    switch (settings.firstOrder.method) {
    case BackendKind::Admm:
        return std::make_unique<AdmmBackend>(std::move(problem),
                                             std::move(settings),
                                             BackendKind::Admm);
    case BackendKind::AdmmAccelerated:
        settings.firstOrder.accel.enabled = true;
        return std::make_unique<AdmmBackend>(
            std::move(problem), std::move(settings),
            BackendKind::AdmmAccelerated);
    case BackendKind::Pdhg:
        return std::make_unique<PdhgSolver>(std::move(problem),
                                            std::move(settings));
    case BackendKind::Auto:
        return std::make_unique<BackendDriver>(std::move(problem),
                                               std::move(settings));
    }
    return std::make_unique<AdmmBackend>(std::move(problem),
                                         std::move(settings));
}

} // namespace rsqp
