/**
 * @file
 * Restarted PDHG/PDQP engine — the first-order alternative to the
 * ADMM loop, in the style of PDLP / "A Practical and Optimal
 * First-Order Method for Large-Scale Convex Quadratic Programming"
 * (arXiv 2311.07710).
 *
 * The method iterates on the saddle problem
 *
 *   min_x max_y  (1/2) x'Px + q'x + y'Ax - g*(y),    g = I_[l,u]
 *
 * with the Condat–Vũ primal-dual step (valid for quadratic f):
 *
 *   x+ = x - tau (P x + q + A' y)
 *   xb = 2 x+ - x
 *   y+ = sigma (w - Pi_[l,u](w)),   w = y/sigma + A xb
 *
 * under the step-size condition tau (lam_P/2 + sigma ||A||^2) <= 1,
 * with ||A|| and lam_P = lambda_max(P) bounded by power iteration at
 * setup. A primal weight omega balances the two step sizes
 * (sigma = omega/||A||) and is adapted at restart points from the
 * observed primal/dual displacement ratio. Restarts (fixed-frequency
 * or adaptive to the running average, or Halpern anchoring) recover
 * the linear convergence plain PDHG lacks on QPs.
 *
 * Everything runs on the shared deterministic kernels: CSR-mirror
 * SpMV (SIMD row-gather), fixed-grain chunked reductions and
 * parallelForRange element updates — results are bitwise-identical at
 * any thread count and ISA level. The divergence watchdog, iterate
 * checkpoint and seeded fault injection hook in exactly like the ADMM
 * loop, and solve() returns the standard OsqpResult contract.
 */

#ifndef RSQP_BACKENDS_PDHG_SOLVER_HPP
#define RSQP_BACKENDS_PDHG_SOLVER_HPP

#include <memory>

#include "backends/qp_backend.hpp"
#include "common/fault_injection.hpp"
#include "linalg/csr.hpp"
#include "osqp/scaling.hpp"

namespace rsqp
{

/** Restarted primal-dual hybrid gradient engine (see file comment). */
class PdhgSolver final : public QpBackend
{
  public:
    /**
     * Set up: validate, Ruiz-scale, build the CSR mirrors and the
     * power-iteration step-size bounds. Never throws on caller input —
     * malformed settings/problem leave the engine inert and solve()
     * returns SolveStatus::InvalidProblem (same contract as
     * OsqpSolver).
     */
    PdhgSolver(QpProblem problem, OsqpSettings settings);

    OsqpResult solve() override;
    bool warmStart(const Vector& x, const Vector& y) override;
    void updateLinearCost(const Vector& q) override;
    void updateBounds(const Vector& l, const Vector& u) override;
    void updateMatrixValues(const std::vector<Real>& p_values,
                            const std::vector<Real>& a_values) override;
    void setTimeLimit(Real seconds) override
    {
        settings_.timeLimit = seconds;
    }
    void setIterationBudget(Index max_iter) override
    {
        settings_.maxIter = max_iter;
    }
    const ValidationReport& validation() const override
    {
        return validation_;
    }
    BackendKind kind() const override { return BackendKind::Pdhg; }
    Index numVariables() const override { return n_; }
    Index numConstraints() const override { return m_; }

    // --- introspection for tests/bench --------------------------------

    /** Current primal step size tau. */
    Real stepTau() const { return tau_; }
    /** Current dual step size sigma. */
    Real stepSigma() const { return sigma_; }
    /** Current primal weight omega. */
    Real primalWeight() const { return omega_; }
    /** Power-iteration bound on ||A|| (scaled space). */
    Real operatorNormBound() const { return etaA_; }

  private:
    /** Power-iteration bounds for ||A|| and lambda_max(P). */
    void estimateOperatorNorms();

    /** tau/sigma from (omega_, etaA_, lamP_) with the safety margin. */
    void applyStepSizes();

    /** Data-driven initial primal weight (config 0 = automatic). */
    Real initialPrimalWeight() const;

    /** Rebuild the CSR execution mirrors from the scaled CSC data. */
    void rebuildMirrors();

    bool checkPrimalInfeasibility(const Vector& delta_y) const;
    bool checkDualInfeasibility(const Vector& delta_x) const;

    OsqpSettings settings_;
    QpProblem original_;  ///< unscaled copy (residuals, objective)
    QpProblem scaled_;    ///< Ruiz-scaled problem the iteration uses
    Scaling scaling_;
    ValidationReport validation_;
    Index n_ = 0;
    Index m_ = 0;

    // CSR execution mirrors of the scaled operators (SIMD row-gather).
    CsrMatrix aCsr_;   ///< A  (m x n)
    CsrMatrix atCsr_;  ///< A' (n x m)
    CsrMatrix pCsr_;   ///< P expanded to full symmetric (n x n)

    Real etaA_ = 1.0;   ///< >= ||A||_2 (power iteration, with margin)
    Real lamP_ = 0.0;   ///< >= lambda_max(P) (power iteration, margin)
    Real omega_ = 1.0;  ///< primal weight (persists across solves)
    Real tau_ = 0.0;    ///< primal step
    Real sigma_ = 0.0;  ///< dual step

    std::unique_ptr<FaultInjector> faultInjector_;

    // Scaled-space iterates (persist across solves for warm starting).
    Vector x_, y_;

    OsqpInfo lastInfo_;
};

} // namespace rsqp

#endif // RSQP_BACKENDS_PDHG_SOLVER_HPP
