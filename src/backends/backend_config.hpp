/**
 * @file
 * Configuration of the pluggable first-order backend subsystem.
 *
 * This header is deliberately leaf-level (it depends only on
 * common/types.hpp) so osqp/settings.hpp can embed the knobs without
 * the osqp library depending on the backends library: the settings
 * travel with OsqpSettings, the engines live in src/backends.
 *
 * Three first-order methods share the SolveStatus/OsqpInfo/
 * SolveTelemetry contract:
 *
 *  - Admm            — the existing OSQP ADMM loop (default; solves
 *                      with the default configuration are bitwise
 *                      identical to the pre-subsystem solver);
 *  - AdmmAccelerated — the same loop with Nesterov momentum on the
 *                      (z, y) pair and a residual-based restart
 *                      (Goldstein et al., "Fast ADMM");
 *  - Pdhg            — a restarted primal-dual hybrid gradient
 *                      engine in the PDLP/PDQP style (arXiv
 *                      2311.07710): matrix-free, adaptive primal-dual
 *                      step-size balancing, average/Halpern restarts;
 *  - Auto            — per-problem selection by BackendSelector from
 *                      structure features, with an optional mid-solve
 *                      switch when the observed convergence stalls.
 */

#ifndef RSQP_BACKENDS_BACKEND_CONFIG_HPP
#define RSQP_BACKENDS_BACKEND_CONFIG_HPP

#include "common/types.hpp"

namespace rsqp
{

/** Which first-order engine answers a solve. */
enum class BackendKind
{
    Admm,             ///< OSQP ADMM loop (default)
    AdmmAccelerated,  ///< Nesterov-accelerated ADMM with restart
    Pdhg,             ///< restarted PDHG/PDQP engine
    Auto,             ///< per-problem BackendSelector choice
};

/** Printable backend name ("admm", "admm-accel", "pdhg", "auto"). */
// Inline so rsqp_osqp can stringify its telemetry label without
// linking the backends library (settings.hpp pulls this header in).
inline const char*
backendKindName(BackendKind kind)
{
    switch (kind) {
    case BackendKind::Admm: return "admm";
    case BackendKind::AdmmAccelerated: return "admm-accel";
    case BackendKind::Pdhg: return "pdhg";
    case BackendKind::Auto: return "auto";
    }
    return "unknown";
}

/**
 * Nesterov acceleration of the ADMM loop (opt-in). The momentum
 * sequence follows Goldstein et al.: hat iterates
 * (z^, y^) extrapolate the accepted (z, y) with weight
 * (theta_k - 1) / theta_{k+1}; the combined momentum residual
 * c_k = sum_i rho_i (z_i - z^_i)^2 + sum_i (1/rho_i)(y_i - y^_i)^2
 * must decay by restartEta per iteration or the momentum restarts
 * (theta = 1, hats snapped back to the accepted iterates). Weak
 * convexity makes the restart essential: without it the momentum
 * sequence can cycle.
 */
struct AcceleratedAdmmSettings
{
    /**
     * Master switch. Off by default so the plain ADMM path stays
     * bitwise-identical to the pre-backend-subsystem solver; the
     * BackendKind::AdmmAccelerated factory path force-enables it.
     */
    bool enabled = false;

    /** Required per-iteration decay of the momentum residual. */
    Real restartEta = 0.999;
};

/** Restart strategy of the PDHG engine. */
enum class PdhgRestart
{
    None,            ///< raw PDHG (sublinear tail; mostly for ablation)
    FixedFrequency,  ///< restart to the running average every interval
    Adaptive,        ///< restart on sufficient merit decay or stall
    Halpern,         ///< anchor every step to the last restart point
};

/** Printable restart-mode name. */
inline const char*
pdhgRestartName(PdhgRestart restart)
{
    switch (restart) {
    case PdhgRestart::None: return "none";
    case PdhgRestart::FixedFrequency: return "fixed-frequency";
    case PdhgRestart::Adaptive: return "adaptive";
    case PdhgRestart::Halpern: return "halpern";
    }
    return "unknown";
}

/** Knobs of the restarted PDHG/PDQP engine. */
struct PdhgConfig
{
    /** Restart strategy (Adaptive matches the PDLP/PDQP default). */
    PdhgRestart restart = PdhgRestart::Adaptive;

    /**
     * FixedFrequency: iterations between average restarts. Also the
     * Adaptive mode's forced-restart ceiling — a restart fires at the
     * latest after this many iterations in one epoch.
     */
    Index restartInterval = 120;

    /**
     * Adaptive: restart as soon as the scaled merit (max of primal
     * and dual residual) fell to this fraction of its value at the
     * last restart. PDLP's "sufficient decay" trigger.
     */
    Real restartBeta = 0.2;

    /**
     * Initial primal weight omega (tau = omega / eta, sigma =
     * 1 / (omega * eta) with eta the estimated ||A||). 0 picks the
     * data-driven default ||q|| / max(||l||,||u||,1) clamp.
     */
    Real primalWeight = 0.0;

    /**
     * Adapt omega at restart points from the observed primal/dual
     * displacement ratio (log-space smoothing, PDLP Section 4.2).
     */
    bool adaptiveStepBalance = true;

    /** Smoothing exponent of the primal-weight update in [0, 1]. */
    Real stepBalanceSmoothing = 0.5;

    /**
     * Warm-up rebalances: the first N residual checks of a solve each
     * force a restart whose primal-weight update uses full strength
     * (no smoothing), so omega locks onto the observed dual/primal
     * displacement ratio within checkInterval iterations instead of
     * drifting toward it over several restart epochs. 0 disables.
     */
    Index warmupChecks = 1;

    /** Clamp for the adapted primal weight (and its reciprocal). */
    Real primalWeightMax = 1e4;

    /** Power-iteration sweeps for the ||A|| / lambda_max(P) bounds. */
    Index powerIterations = 20;

    /** Safety margin multiplied onto the power-iteration estimates. */
    Real stepSafety = 1.05;
};

/**
 * Per-session backend selection policy: problem-class features from
 * the structure fingerprint choose the starting backend; the observed
 * convergence rate can switch a stalling solve to the other engine.
 */
struct SelectorConfig
{
    /**
     * Mid-solve switch-on-stall. The Auto driver then runs the chosen
     * backend in iteration slices and re-evaluates progress between
     * slices; a stalled solve switches engines once, warm-started
     * from the current iterate.
     */
    bool midSolveSwitch = true;

    /** Iterations per Auto-mode slice (progress re-evaluated after
     *  each). Also the minimum investment before a switch. */
    Index switchCheckIterations = 250;

    /**
     * Stall threshold: switch when one slice shrank the combined
     * residual by less than this factor (1 = any non-improvement;
     * 0 disables). A slice that converged, proved infeasibility, or
     * hit a limit never switches.
     */
    Real minProgressFactor = 0.5;

    /** Engine switches one Auto solve may perform. */
    Index maxSwitches = 1;

    /**
     * Equality-constraint fraction at or above which the selector
     * prefers ADMM (the per-constraint stiff-rho trick converges
     * fast on equality-dominated problems; PDHG has no equivalent).
     */
    Real equalityFractionAdmm = 0.6;

    /**
     * Minimum equality fraction for the PDHG route. PDHG pays off on
     * *mixed* constraint sets, where a single fixed ADMM penalty must
     * compromise between stiff equality rows and loose inequality
     * rows; with no equalities at all one rho fits every row and ADMM
     * keeps the edge (measured: control yes, svm no).
     */
    Real equalityFractionPdhgMin = 0.2;

    /**
     * Constraint-to-variable ratio (m/n) at or above which
     * inequality-dominated problems route to PDHG: tall, loosely
     * bounded systems are where the restarted primal-dual method's
     * iteration counts beat ADMM's fixed-rho plateaus.
     */
    Real tallRatioPdhg = 1.25;

    /** Problem size (n + m) below which ADMM always wins the pick
     *  (setup and per-iteration costs dwarf iteration-count gaps). */
    Index smallProblemThreshold = 400;
};

/** First-order method selection riding on OsqpSettings. */
struct FirstOrderSettings
{
    /** Which engine (or Auto selection) answers solve(). */
    BackendKind method = BackendKind::Admm;

    /** Nesterov-accelerated ADMM knobs (and its opt-in switch). */
    AcceleratedAdmmSettings accel;

    /** Restarted PDHG engine knobs. */
    PdhgConfig pdhg;

    /** Auto-mode selection and mid-solve switch policy. */
    SelectorConfig selector;
};

} // namespace rsqp

#endif // RSQP_BACKENDS_BACKEND_CONFIG_HPP
