/**
 * @file
 * Instruction set of the RSQP processing architecture (paper Table 1).
 *
 * Six instruction classes: control, scalar arithmetic, data transfer,
 * vector operations, vector duplication, and SpMV. Instructions execute
 * strictly in order ("each instruction can only start after the
 * previous instruction has completed"), from an instruction ROM, with
 * scalar results landing in a scalar register file and vector results
 * in the vector buffers (VB) or compressed vector buffers (CVB).
 */

#ifndef RSQP_ARCH_ISA_HPP
#define RSQP_ARCH_ISA_HPP

#include <string>
#include <vector>

#include "common/types.hpp"

namespace rsqp
{

/** Opcodes of the RSQP ISA. */
enum class Opcode
{
    // Control
    Halt,        ///< stop execution
    Jump,        ///< pc = target
    JumpIfLess,  ///< if s[a] <  s[b]: pc = target
    JumpIfGeq,   ///< if s[a] >= s[b]: pc = target

    // Scalar arithmetic
    LoadConst,   ///< s[dst] = imm
    ScalarAdd,   ///< s[dst] = s[a] + s[b]
    ScalarSub,   ///< s[dst] = s[a] - s[b]
    ScalarMul,   ///< s[dst] = s[a] * s[b]
    ScalarDiv,   ///< s[dst] = s[a] / s[b]
    ScalarMax,   ///< s[dst] = max(s[a], s[b])
    ScalarSqrt,  ///< s[dst] = sqrt(s[a])
    ScalarAbs,   ///< s[dst] = |s[a]|

    // Data transfer (HBM <-> vector buffers)
    LoadVec,     ///< v[dst] = hbm[a]
    StoreVec,    ///< hbm[dst] = v[a]

    // Vector operations (vector engine)
    VecAxpby,    ///< v[dst] = s[sa] * v[a] + s[sb] * v[b]
    VecEwProd,   ///< v[dst] = v[a] .* v[b]
    VecEwRecip,  ///< v[dst] = 1 ./ v[a]
    VecEwMin,    ///< v[dst] = min(v[a], v[b])
    VecEwMax,    ///< v[dst] = max(v[a], v[b])
    VecCopy,     ///< v[dst] = v[a]
    VecSetConst, ///< v[dst] = imm (element-wise broadcast)
    VecDot,      ///< s[dst] = v[a] . v[b]
    VecAmax,     ///< s[dst] = max_i |v[a][i]| (reduction compare)

    // Vector duplication (VB -> CVB copies)
    VecDup,      ///< cvb[dst] <- v[a]

    // Sparse matrix-vector multiply
    SpMV,        ///< v[dst] = M[a] * cvb[cvbOf(M[a])]
};

/** Instruction-class of an opcode (for per-class cycle statistics). */
enum class InstrClass
{
    Control,
    Scalar,
    DataTransfer,
    VectorOp,
    VectorDup,
    SpMV,
};

/** Classify an opcode per Table 1. */
InstrClass classOf(Opcode op);

/** Mnemonic for disassembly and traces. */
const char* mnemonic(Opcode op);

/**
 * One instruction. Operand meaning depends on the opcode (see the
 * Opcode comments); unused fields are -1/0.
 */
struct Instruction
{
    Opcode op = Opcode::Halt;
    Index dst = -1;   ///< destination register/buffer/target pc
    Index a = -1;     ///< first source
    Index b = -1;     ///< second source
    Index sa = -1;    ///< scalar operand (alpha) for VecAxpby
    Index sb = -1;    ///< scalar operand (beta) for VecAxpby
    Real imm = 0.0;   ///< immediate for LoadConst / VecSetConst
    std::string comment;  ///< assembly comment for traces
};

/** A fully assembled program (the instruction ROM contents). */
struct Program
{
    std::vector<Instruction> code;

    std::size_t size() const { return code.size(); }

    /** Human-readable disassembly. */
    std::string disassemble() const;
};

} // namespace rsqp

#endif // RSQP_ARCH_ISA_HPP
