/**
 * @file
 * Static configuration of a generated RSQP architecture instance:
 * datapath width C, the MAC structure set S, the CVB mode and the
 * micro-architectural latency constants of the cycle model.
 */

#ifndef RSQP_ARCH_CONFIG_HPP
#define RSQP_ARCH_CONFIG_HPP

#include <string>

#include "common/execution.hpp"
#include "common/fault_injection.hpp"
#include "common/types.hpp"
#include "encoding/mac_structure.hpp"

namespace rsqp
{

/** Pipeline/latency constants of the cycle model (in clock cycles). */
struct ArchTimings
{
    Index decodeOverhead = 4;   ///< fetch/decode per instruction
    Index controlLatency = 2;   ///< branch resolution
    Index scalarLatency = 6;    ///< scalar FP op latency
    Index vectorLatency = 24;   ///< vector-engine pipeline fill
    Index dotExtraLatency = 32; ///< reduction drain of dot/amax
    Index spmvLatency = 64;     ///< SpMV pipeline fill + alignment drain
    Index dupLatency = 16;      ///< duplication-control startup
    Index hbmLatency = 128;     ///< HBM first-word latency
};

/** One generated accelerator configuration. */
struct ArchConfig
{
    /** Datapath width C (power of two, <= 64 in this implementation). */
    Index c = 16;
    /** MAC tree structure set S. */
    StructureSet structures = StructureSet::baseline(16);
    /** Compressed (customized) CVB, or baseline full duplication. */
    bool compressedCvb = true;
    /** Evaluate the datapath in FP32 like the physical MAC trees. */
    bool fp32Datapath = false;
    /**
     * Execution resources of the simulation host (threads simulating
     * the C-wide datapath; 0 = hardware concurrency, 1 = serial).
     * The cycle model and the numeric results are identical at every
     * setting: SpMV partitions on carry-chain boundaries (exact), and
     * the machine's vector reductions pick their summation order by
     * vector length alone — large vectors use the fixed-grain chunked
     * order even at numThreads = 1, which differs in rounding from
     * the retired pre-threading left-to-right loop.
     */
    ExecutionConfig execution;

    /** Effective thread count of the simulation host. */
    Index
    resolvedNumThreads() const
    {
        return execution.numThreads;
    }

    /** Cycle-model constants. */
    ArchTimings timings;
    /**
     * Seeded soft-error injection into the simulated HBM streams and
     * MAC-tree outputs (fault-tolerance testing only; off by default).
     * Fault positions are a pure function of (seed, run, stream,
     * word), so an injected run is reproducible at any numThreads.
     */
    FaultInjectionConfig faultInjection;

    /** "C{...}" plus a CVB tag, e.g. "16{16a1e}+cvb". */
    std::string
    name() const
    {
        return structures.name() + (compressedCvb ? "+cvb" : "+dup");
    }

    /** The paper's generic baseline design at width c. */
    static ArchConfig
    baseline(Index c_width)
    {
        ArchConfig config;
        config.c = c_width;
        config.structures = StructureSet::baseline(c_width);
        config.compressedCvb = false;
        return config;
    }
};

} // namespace rsqp

#endif // RSQP_ARCH_CONFIG_HPP
