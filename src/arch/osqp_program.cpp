#include "osqp_program.hpp"

#include "common/logging.hpp"

namespace rsqp
{

namespace
{

/** Sequential scalar-register allocator. */
class ScalarAlloc
{
  public:
    Index
    alloc(const char* what)
    {
        RSQP_ASSERT(next_ < Machine::kNumScalars,
                    "out of scalar registers allocating ", what);
        return next_++;
    }

  private:
    Index next_ = 0;
};

} // namespace

OsqpDeviceProgram
buildOsqpProgram(Machine& machine, const OsqpMatrixIds& mats,
                 const QpProblem& scaled, const Scaling& scaling,
                 const OsqpSettings& settings)
{
    const Index n = scaled.numVariables();
    const Index m = scaled.numConstraints();
    if (m < 1)
        RSQP_FATAL("the accelerated path needs at least one "
                   "constraint (use OsqpSolver for unconstrained "
                   "problems)");
    RSQP_ASSERT(settings.maxIter % settings.checkInterval == 0,
                "maxIter must be a multiple of checkInterval for the "
                "device program");
    RSQP_ASSERT(!settings.adaptiveRho ||
                settings.adaptiveRhoInterval % settings.checkInterval == 0,
                "adaptiveRhoInterval must be a multiple of checkInterval");

    OsqpDeviceProgram handles;
    ProgramBuilder asmb;
    ScalarAlloc salloc;

    // ---- Scalar registers ---------------------------------------------
    const Index sZero = salloc.alloc("zero");
    const Index sOne = salloc.alloc("one");
    const Index sNegOne = salloc.alloc("negone");
    const Index sTiny = salloc.alloc("tiny");
    const Index sSigma = salloc.alloc("sigma");
    const Index sAlpha = salloc.alloc("alpha");
    const Index sOneMinusAlpha = salloc.alloc("1-alpha");
    const Index sEpsAbs = salloc.alloc("eps_abs");
    const Index sEpsRel = salloc.alloc("eps_rel");
    const Index sPcgAbsSq = salloc.alloc("pcg_abs_sq");
    const Index sPcgFloorSq = salloc.alloc("pcg_floor_sq");
    const Index sPcgDecaySq = salloc.alloc("pcg_decay_sq");
    const Index sCInv = salloc.alloc("c_inv");
    const Index sRhoMin = salloc.alloc("rho_min");
    const Index sRhoMax = salloc.alloc("rho_max");
    const Index sRhoTol = salloc.alloc("rho_tol");
    const Index sCheckInterval = salloc.alloc("check_interval");
    const Index sAdaptEvery = salloc.alloc("adapt_every");
    const Index sMaxIter = salloc.alloc("max_iter");
    const Index sPcgMax = salloc.alloc("pcg_max");

    const Index sRho = salloc.alloc("rho");
    const Index sIter = salloc.alloc("iter");
    const Index sCheckCd = salloc.alloc("check_countdown");
    const Index sAdaptCd = salloc.alloc("adapt_countdown");
    const Index sPcgIter = salloc.alloc("pcg_iter");
    const Index sPcgTotal = salloc.alloc("pcg_total");
    const Index sRhoUpdates = salloc.alloc("rho_updates");
    const Index sStatus = salloc.alloc("status");
    const Index sPcgRelSq = salloc.alloc("pcg_rel_sq");

    const Index sBb = salloc.alloc("bb");
    const Index sThr = salloc.alloc("thr");
    const Index sRr = salloc.alloc("rr");
    const Index sRd = salloc.alloc("rd");
    const Index sRdNew = salloc.alloc("rd_new");
    const Index sPkp = salloc.alloc("pkp");
    const Index sLambda = salloc.alloc("lambda");
    const Index sMu = salloc.alloc("mu");

    const Index sPrimRes = salloc.alloc("prim_res");
    const Index sDualRes = salloc.alloc("dual_res");
    const Index sEpsPrim = salloc.alloc("eps_prim");
    const Index sEpsDual = salloc.alloc("eps_dual");
    const Index sNax = salloc.alloc("nax");
    const Index sNz = salloc.alloc("nz");
    const Index sNpx = salloc.alloc("npx");
    const Index sNaty = salloc.alloc("naty");
    const Index sNq = salloc.alloc("nq");
    const Index sT0 = salloc.alloc("t0");
    const Index sT1 = salloc.alloc("t1");
    const Index sT2 = salloc.alloc("t2");

    // ---- Vector buffers -------------------------------------------------
    const Index vQ = machine.addVector(n, "q");
    const Index vDinv = machine.addVector(n, "dinv");
    const Index vDiagPsigma = machine.addVector(n, "diagP+sigma");
    const Index vX = machine.addVector(n, "x");
    const Index vXt = machine.addVector(n, "x_tilde");
    const Index vB = machine.addVector(n, "b");
    const Index vR = machine.addVector(n, "r");
    const Index vD = machine.addVector(n, "d");
    const Index vP = machine.addVector(n, "p");
    const Index vKp = machine.addVector(n, "Kp");
    const Index vTn1 = machine.addVector(n, "tn1");
    const Index vTn2 = machine.addVector(n, "tn2");
    const Index vPrecInv = machine.addVector(n, "prec_inv");
    const Index vPx = machine.addVector(n, "Px");
    const Index vAty = machine.addVector(n, "Aty");
    const Index vRhsX = machine.addVector(n, "rhs_x");

    const Index vL = machine.addVector(m, "l");
    const Index vU = machine.addVector(m, "u");
    const Index vEinv = machine.addVector(m, "einv");
    const Index vY = machine.addVector(m, "y");
    const Index vZ = machine.addVector(m, "z");
    const Index vZt = machine.addVector(m, "z_tilde");
    const Index vRhoVec = machine.addVector(m, "rho_vec");
    const Index vRhoInv = machine.addVector(m, "rho_inv");
    const Index vRhoScale = machine.addVector(m, "rho_scale");
    const Index vRhoMinV = machine.addVector(m, "rho_min_vec");
    const Index vRhoMaxV = machine.addVector(m, "rho_max_vec");
    const Index vTm1 = machine.addVector(m, "tm1");
    const Index vTm2 = machine.addVector(m, "tm2");
    const Index vAx = machine.addVector(m, "Ax");
    const Index vRhsZ = machine.addVector(m, "rhs_z");
    const Index vZr = machine.addVector(m, "z_relaxed");
    const Index vZn = machine.addVector(m, "z_next");

    // ---- HBM regions (host-prepared data) -------------------------------
    // Per-constraint rho class multipliers (see OsqpSolver::buildRhoVec):
    // 0 for loose constraints, rhoEqScale for equalities, 1 otherwise.
    Vector rho_scale(static_cast<std::size_t>(m), 1.0);
    for (Index i = 0; i < m; ++i) {
        const Real lo = scaled.l[static_cast<std::size_t>(i)];
        const Real hi = scaled.u[static_cast<std::size_t>(i)];
        if (lo <= -kInf && hi >= kInf)
            rho_scale[static_cast<std::size_t>(i)] = 0.0;
        else if (hi - lo < 1e-12)
            rho_scale[static_cast<std::size_t>(i)] = settings.rhoEqScale;
    }
    // diag(P_scaled) + sigma.
    Vector diag_p_sigma = scaled.pUpper.diagonalVector();
    for (Real& v : diag_p_sigma)
        v += settings.sigma;

    const Index hbmQ = machine.addHbmVector(scaled.q, "q");
    const Index hbmL = machine.addHbmVector(scaled.l, "l");
    const Index hbmU = machine.addHbmVector(scaled.u, "u");
    handles.hbmQ = hbmQ;
    handles.hbmL = hbmL;
    handles.hbmU = hbmU;
    const Index hbmDinv = machine.addHbmVector(scaling.dInv, "dinv");
    const Index hbmEinv = machine.addHbmVector(scaling.eInv, "einv");
    const Index hbmDiagP = machine.addHbmVector(diag_p_sigma, "diagP");
    handles.hbmDiagP = hbmDiagP;
    const Index hbmRhoScale = machine.addHbmVector(rho_scale, "rho_scale");
    handles.hbmRhoScale = hbmRhoScale;
    handles.hbmX0 = machine.addHbmVector(
        Vector(static_cast<std::size_t>(n), 0.0), "x0");
    handles.hbmY0 = machine.addHbmVector(
        Vector(static_cast<std::size_t>(m), 0.0), "y0");
    handles.hbmZ0 = machine.addHbmVector(
        Vector(static_cast<std::size_t>(m), 0.0), "z0");
    handles.hbmXOut = machine.addHbmVector(
        Vector(static_cast<std::size_t>(n), 0.0), "x_out");
    handles.hbmYOut = machine.addHbmVector(
        Vector(static_cast<std::size_t>(m), 0.0), "y_out");
    handles.hbmZOut = machine.addHbmVector(
        Vector(static_cast<std::size_t>(m), 0.0), "z_out");

    // ---- Helper emitters -------------------------------------------------

    // dst = K v = P v + sigma v + A' (rho .* (A v)); clobbers
    // vTn1, vTn2, vTm1, vTm2 and the P/A/At CVBs.
    auto apply_k = [&](Index v, Index dst) {
        asmb.vecDup(mats.p, v, "CVB[P] <- v");
        asmb.vecDup(mats.a, v, "CVB[A] <- v");
        asmb.spmv(vTn1, mats.p, "P v");
        asmb.spmv(vTm1, mats.a, "A v");
        asmb.vecEwProd(vTm2, vRhoVec, vTm1, "rho .* A v");
        asmb.vecDup(mats.at, vTm2, "CVB[At] <- rho .* A v");
        asmb.spmv(vTn2, mats.at, "A'(rho .* A v)");
        asmb.vecAxpby(dst, sOne, vTn1, sSigma, v, "P v + sigma v");
        asmb.vecAxpby(dst, sOne, dst, sOne, vTn2, "+ A' rho A v");
    };

    // Rebuild rho_vec, rho_inv and the Jacobi preconditioner from sRho.
    auto build_rho_state = [&]() {
        asmb.vecAxpby(vRhoVec, sRho, vRhoScale, sZero, vRhoScale,
                      "rho * class scale");
        asmb.vecEwMax(vRhoVec, vRhoVec, vRhoMinV, "clamp low");
        asmb.vecEwMin(vRhoVec, vRhoVec, vRhoMaxV, "clamp high");
        asmb.vecEwRecip(vRhoInv, vRhoVec, "1/rho");
        asmb.vecDup(mats.atSq, vRhoVec, "CVB[At^2] <- rho_vec");
        asmb.spmv(vTn1, mats.atSq, "col_j sum rho_i A_ij^2");
        asmb.vecAxpby(vTn2, sOne, vTn1, sOne, vDiagPsigma, "diag K");
        asmb.vecEwRecip(vPrecInv, vTn2, "Jacobi M^-1");
    };

    // ---- Setup ------------------------------------------------------------
    asmb.loadConst(sZero, 0.0);
    asmb.loadConst(sOne, 1.0);
    asmb.loadConst(sNegOne, -1.0);
    asmb.loadConst(sTiny, 1e-10);
    asmb.loadConst(sSigma, settings.sigma);
    asmb.loadConst(sAlpha, settings.alpha);
    asmb.loadConst(sOneMinusAlpha, 1.0 - settings.alpha);
    asmb.loadConst(sEpsAbs, settings.epsAbs);
    asmb.loadConst(sEpsRel, settings.epsRel);
    asmb.loadConst(sPcgAbsSq, settings.pcg.epsAbs * settings.pcg.epsAbs);
    asmb.loadConst(sPcgFloorSq, settings.pcg.epsRel * settings.pcg.epsRel);
    asmb.loadConst(sPcgDecaySq,
                   settings.pcg.adaptiveTolerance
                       ? settings.pcg.epsRelDecay * settings.pcg.epsRelDecay
                       : 1.0);
    asmb.loadConst(sCInv, scaling.cInv);
    asmb.loadConst(sRhoMin, settings.rhoMin);
    asmb.loadConst(sRhoMax, settings.rhoMax);
    asmb.loadConst(sRhoTol, settings.adaptiveRhoTolerance);
    asmb.loadConst(sCheckInterval,
                   static_cast<Real>(settings.checkInterval));
    asmb.loadConst(sAdaptEvery,
                   settings.adaptiveRho
                       ? static_cast<Real>(settings.adaptiveRhoInterval /
                                           settings.checkInterval)
                       : 1.0);
    asmb.loadConst(sMaxIter, static_cast<Real>(settings.maxIter));
    asmb.loadConst(sPcgMax, static_cast<Real>(settings.pcg.maxIter));

    asmb.loadConst(sRho, settings.rho);
    asmb.loadConst(sIter, 0.0);
    asmb.loadConst(sCheckCd, static_cast<Real>(settings.checkInterval));
    asmb.loadConst(sAdaptCd,
                   settings.adaptiveRho
                       ? static_cast<Real>(settings.adaptiveRhoInterval /
                                           settings.checkInterval)
                       : 1e30);
    asmb.loadConst(sPcgTotal, 0.0);
    asmb.loadConst(sRhoUpdates, 0.0);
    asmb.loadConst(sStatus, 0.0);
    asmb.loadConst(sPcgRelSq,
                   settings.pcg.adaptiveTolerance
                       ? settings.pcg.epsRelStart * settings.pcg.epsRelStart
                       : settings.pcg.epsRel * settings.pcg.epsRel);

    asmb.loadVec(vQ, hbmQ, "load q");
    asmb.loadVec(vL, hbmL, "load l");
    asmb.loadVec(vU, hbmU, "load u");
    asmb.loadVec(vDinv, hbmDinv, "load D^-1");
    asmb.loadVec(vEinv, hbmEinv, "load E^-1");
    asmb.loadVec(vDiagPsigma, hbmDiagP, "load diag(P)+sigma");
    asmb.loadVec(vRhoScale, hbmRhoScale, "load rho class scales");
    asmb.loadVec(vX, handles.hbmX0, "warm start x");
    asmb.loadVec(vY, handles.hbmY0, "warm start y");
    asmb.loadVec(vZ, handles.hbmZ0, "warm start z");
    asmb.vecSetConst(vXt, 0.0, "PCG warm start");
    asmb.vecSetConst(vRhoMinV, settings.rhoMin);
    asmb.vecSetConst(vRhoMaxV, settings.rhoMax);

    build_rho_state();

    // nq = c^-1 ||D^-1 q||_inf (constant across the run).
    asmb.vecEwProd(vTn1, vDinv, vQ);
    asmb.vecAmax(sNq, vTn1);
    asmb.scalarMul(sNq, sNq, sCInv, "nq");

    // ---- Labels -----------------------------------------------------------
    const Index lAdmmTop = asmb.newLabel();
    const Index lPcgTop = asmb.newLabel();
    const Index lPcgDone = asmb.newLabel();
    const Index lNoCheck = asmb.newLabel();
    const Index lNotConverged = asmb.newLabel();
    const Index lNoAdapt = asmb.newLabel();
    const Index lAfterAdapt = asmb.newLabel();
    const Index lDone = asmb.newLabel();

    // ---- ADMM loop ---------------------------------------------------------
    asmb.bind(lAdmmTop);
    asmb.scalarAdd(sIter, sIter, sOne, "iter += 1");

    // Step 3 rhs: rhs_x = sigma x - q ; rhs_z = z - rho^-1 y.
    asmb.vecAxpby(vRhsX, sSigma, vX, sNegOne, vQ, "rhs_x");
    asmb.vecEwProd(vTm1, vRhoInv, vY, "rho^-1 y");
    asmb.vecAxpby(vRhsZ, sOne, vZ, sNegOne, vTm1, "rhs_z");

    // Reduced rhs: b = rhs_x + A'(rho .* rhs_z).
    asmb.vecEwProd(vTm1, vRhoVec, vRhsZ, "rho .* rhs_z");
    asmb.vecDup(mats.at, vTm1, "CVB[At] <- rho rhs_z");
    asmb.spmv(vTn1, mats.at, "A' rho rhs_z");
    asmb.vecAxpby(vB, sOne, vRhsX, sOne, vTn1, "b");

    // PCG threshold: thr = max(pcg_abs^2, eps_rel^2 * b.b).
    asmb.vecDot(sBb, vB, vB, "b.b");
    asmb.scalarMul(sThr, sPcgRelSq, sBb);
    asmb.scalarMax(sThr, sThr, sPcgAbsSq, "thr");

    // r = K x_tilde - b (warm start).
    apply_k(vXt, vKp);
    asmb.vecAxpby(vR, sOne, vKp, sNegOne, vB, "r0 = K x~ - b");
    asmb.vecDot(sRr, vR, vR, "r.r");
    asmb.loadConst(sPcgIter, 0.0);
    asmb.jumpIfLess(sRr, sThr, lPcgDone, "already converged");

    // d = M^-1 r ; p = -d ; rd = r.d.
    asmb.vecEwProd(vD, vPrecInv, vR, "d = M^-1 r");
    asmb.vecAxpby(vP, sNegOne, vD, sZero, vD, "p = -d");
    asmb.vecDot(sRd, vR, vD, "rd");

    asmb.bind(lPcgTop);
    apply_k(vP, vKp);
    asmb.vecDot(sPkp, vP, vKp, "p.Kp");
    asmb.scalarDiv(sLambda, sRd, sPkp, "lambda");
    asmb.vecAxpby(vXt, sOne, vXt, sLambda, vP, "x~ += lambda p");
    asmb.vecAxpby(vR, sOne, vR, sLambda, vKp, "r += lambda Kp");
    asmb.vecEwProd(vD, vPrecInv, vR, "d = M^-1 r");
    asmb.vecDot(sRdNew, vR, vD, "rd'");
    asmb.scalarDiv(sMu, sRdNew, sRd, "mu");
    asmb.scalarAdd(sRd, sRdNew, sZero, "rd = rd'");
    asmb.vecAxpby(vP, sNegOne, vD, sMu, vP, "p = -d + mu p");
    asmb.scalarAdd(sPcgIter, sPcgIter, sOne);
    asmb.scalarAdd(sPcgTotal, sPcgTotal, sOne);
    asmb.vecDot(sRr, vR, vR, "r.r");
    asmb.jumpIfLess(sRr, sThr, lPcgDone, "PCG converged");
    asmb.jumpIfLess(sPcgIter, sPcgMax, lPcgTop, "next PCG iter");
    asmb.bind(lPcgDone);

    // z~ = A x~.
    asmb.vecDup(mats.a, vXt, "CVB[A] <- x~");
    asmb.spmv(vZt, mats.a, "z~ = A x~");

    // Steps 5-7: relaxation, projection, dual update.
    asmb.vecAxpby(vX, sAlpha, vXt, sOneMinusAlpha, vX, "x update");
    asmb.vecAxpby(vZr, sAlpha, vZt, sOneMinusAlpha, vZ, "z relaxed");
    asmb.vecEwProd(vTm1, vRhoInv, vY, "rho^-1 y");
    asmb.vecAxpby(vTm2, sOne, vZr, sOne, vTm1, "projection arg");
    asmb.vecEwMax(vZn, vTm2, vL, "clamp low");
    asmb.vecEwMin(vZn, vZn, vU, "clamp high");
    asmb.vecAxpby(vTm1, sOne, vZr, sNegOne, vZn, "z_r - z+");
    asmb.vecEwProd(vTm2, vRhoVec, vTm1, "rho (z_r - z+)");
    asmb.vecAxpby(vY, sOne, vY, sOne, vTm2, "y update");
    asmb.vecCopy(vZ, vZn, "z = z+");

    // Adaptive PCG tolerance decay.
    asmb.scalarMul(sPcgRelSq, sPcgRelSq, sPcgDecaySq);
    asmb.scalarMax(sPcgRelSq, sPcgRelSq, sPcgFloorSq);

    // Termination-check countdown.
    asmb.scalarSub(sCheckCd, sCheckCd, sOne);
    asmb.jumpIfGeq(sCheckCd, sOne, lNoCheck, "not a check iteration");
    asmb.scalarAdd(sCheckCd, sCheckInterval, sZero, "reset countdown");

    // --- Residuals (unscaled) -------------------------------------------
    asmb.vecDup(mats.a, vX, "CVB[A] <- x");
    asmb.spmv(vAx, mats.a, "A x (scaled)");
    asmb.vecAxpby(vTm1, sOne, vAx, sNegOne, vZ, "Ax - z");
    asmb.vecEwProd(vTm1, vEinv, vTm1, "E^-1 (Ax - z)");
    asmb.vecAmax(sPrimRes, vTm1, "primal residual");
    asmb.vecEwProd(vTm1, vEinv, vAx);
    asmb.vecAmax(sNax, vTm1, "||Ax||");
    asmb.vecEwProd(vTm1, vEinv, vZ);
    asmb.vecAmax(sNz, vTm1, "||z||");
    asmb.scalarMax(sT0, sNax, sNz);
    asmb.scalarMul(sT0, sT0, sEpsRel);
    asmb.scalarAdd(sEpsPrim, sEpsAbs, sT0, "eps_prim");

    asmb.vecDup(mats.p, vX, "CVB[P] <- x");
    asmb.spmv(vPx, mats.p, "P x (scaled)");
    asmb.vecDup(mats.at, vY, "CVB[At] <- y");
    asmb.spmv(vAty, mats.at, "A' y (scaled)");
    asmb.vecAxpby(vTn1, sOne, vPx, sOne, vQ, "Px + q");
    asmb.vecAxpby(vTn1, sOne, vTn1, sOne, vAty, "+ A'y");
    asmb.vecEwProd(vTn1, vDinv, vTn1);
    asmb.vecAmax(sDualRes, vTn1);
    asmb.scalarMul(sDualRes, sDualRes, sCInv, "dual residual");
    asmb.vecEwProd(vTn1, vDinv, vPx);
    asmb.vecAmax(sNpx, vTn1);
    asmb.scalarMul(sNpx, sNpx, sCInv, "||Px||");
    asmb.vecEwProd(vTn1, vDinv, vAty);
    asmb.vecAmax(sNaty, vTn1);
    asmb.scalarMul(sNaty, sNaty, sCInv, "||A'y||");
    asmb.scalarMax(sT0, sNpx, sNaty);
    asmb.scalarMax(sT0, sT0, sNq);
    asmb.scalarMul(sT0, sT0, sEpsRel);
    asmb.scalarAdd(sEpsDual, sEpsAbs, sT0, "eps_dual");

    // Control instruction of Table 1: exit once residuals are small.
    asmb.jumpIfLess(sEpsPrim, sPrimRes, lNotConverged);
    asmb.jumpIfLess(sEpsDual, sDualRes, lNotConverged);
    asmb.loadConst(sStatus, 1.0, "status = solved");
    asmb.jump(lDone);
    asmb.bind(lNotConverged);

    // --- Adaptive rho ------------------------------------------------------
    asmb.scalarSub(sAdaptCd, sAdaptCd, sOne);
    asmb.jumpIfGeq(sAdaptCd, sOne, lNoAdapt, "not an adapt check");
    asmb.scalarAdd(sAdaptCd, sAdaptEvery, sZero, "reset adapt countdown");
    asmb.scalarMax(sT0, sNax, sNz);
    asmb.scalarMax(sT0, sT0, sTiny);
    asmb.scalarDiv(sT0, sPrimRes, sT0, "prim_rel");
    asmb.scalarMax(sT1, sNpx, sNaty);
    asmb.scalarMax(sT1, sT1, sNq);
    asmb.scalarMax(sT1, sT1, sTiny);
    asmb.scalarDiv(sT1, sDualRes, sT1, "dual_rel");
    asmb.scalarMax(sT1, sT1, sTiny);
    asmb.scalarDiv(sT0, sT0, sT1, "residual ratio");
    asmb.scalarSqrt(sT0, sT0);
    asmb.scalarMul(sT0, sRho, sT0, "rho candidate");
    // Clamp to [rhoMin, rhoMax]; min(a, b) = -max(-a, -b).
    asmb.scalarMul(sT1, sT0, sNegOne);
    asmb.scalarMul(sT2, sRhoMax, sNegOne);
    asmb.scalarMax(sT1, sT1, sT2);
    asmb.scalarMul(sT0, sT1, sNegOne, "min(candidate, rhoMax)");
    asmb.scalarMax(sT0, sT0, sRhoMin, "rho_new clamped");
    // Update decision: rho_new > rho*tol or rho_new < rho/tol.
    {
        const Index lTake = asmb.newLabel();
        asmb.scalarMul(sT1, sRho, sRhoTol);
        asmb.jumpIfLess(sT1, sT0, lTake, "rho_new > rho*tol");
        asmb.scalarMul(sT1, sT0, sRhoTol);
        asmb.jumpIfLess(sT1, sRho, lTake, "rho_new < rho/tol");
        asmb.jump(lAfterAdapt);
        asmb.bind(lTake);
        asmb.scalarAdd(sRho, sT0, sZero, "rho = rho_new");
        asmb.scalarAdd(sRhoUpdates, sRhoUpdates, sOne);
        build_rho_state();
    }
    asmb.bind(lNoAdapt);
    asmb.bind(lAfterAdapt);
    asmb.bind(lNoCheck);

    asmb.jumpIfLess(sIter, sMaxIter, lAdmmTop, "next ADMM iteration");

    asmb.bind(lDone);
    asmb.storeVec(handles.hbmXOut, vX, "store x");
    asmb.storeVec(handles.hbmYOut, vY, "store y");
    asmb.storeVec(handles.hbmZOut, vZ, "store z");
    asmb.halt("end of OSQP program");

    handles.program = asmb.finish();
    handles.sIterations = sIter;
    handles.sStatus = sStatus;
    handles.sPrimRes = sPrimRes;
    handles.sDualRes = sDualRes;
    handles.sPcgTotal = sPcgTotal;
    handles.sRhoUpdates = sRhoUpdates;
    handles.sRho = sRho;
    return handles;
}

} // namespace rsqp
