/**
 * @file
 * Lowering of the complete OSQP solver (Algorithm 1 with the PCG inner
 * solver of Algorithm 2) onto the RSQP instruction set.
 *
 * The generated program runs the whole ADMM loop on the accelerator:
 * KKT solves via matrix-free PCG (SpMV with P, A, A'), relaxation,
 * projection and dual update on the vector engine, unscaled residual
 * termination checks, adaptive-rho updates (including the on-device
 * preconditioner rebuild via an element-squared A' matrix), and the
 * Table 1 control instruction that exits the loop once the residuals
 * drop below tolerance.
 *
 * The numeric trajectory matches the host-side OsqpSolver with the
 * IndirectPcg backend (same operations in the same order), which is the
 * basis of the simulator-vs-reference integration tests.
 */

#ifndef RSQP_ARCH_OSQP_PROGRAM_HPP
#define RSQP_ARCH_OSQP_PROGRAM_HPP

#include "arch/machine.hpp"
#include "arch/program_builder.hpp"
#include "osqp/problem.hpp"
#include "osqp/scaling.hpp"
#include "osqp/settings.hpp"

namespace rsqp
{

/** Ids of the four packed matrices the program multiplies with. */
struct OsqpMatrixIds
{
    Index p = -1;     ///< full symmetric P (n x n)
    Index a = -1;     ///< A (m x n)
    Index at = -1;    ///< A' (n x m)
    Index atSq = -1;  ///< A' with squared values (preconditioner rebuild)
};

/** Everything the host needs to run the program and read results. */
struct OsqpDeviceProgram
{
    Program program;

    // HBM regions written by the host before run().
    Index hbmX0 = -1;  ///< initial x (scaled space)
    Index hbmY0 = -1;
    Index hbmZ0 = -1;
    Index hbmQ = -1;   ///< scaled q (parametric updates)
    Index hbmL = -1;   ///< scaled l
    Index hbmU = -1;   ///< scaled u
    Index hbmDiagP = -1;  ///< diag(P_scaled) + sigma (matrix updates)
    Index hbmRhoScale = -1;  ///< per-constraint rho class multipliers

    // HBM regions read back after run() (scaled space).
    Index hbmXOut = -1;
    Index hbmYOut = -1;
    Index hbmZOut = -1;

    // Scalar registers with run statistics.
    Index sIterations = -1;  ///< ADMM iterations executed
    Index sStatus = -1;      ///< 1 = solved, 0 = max-iter
    Index sPrimRes = -1;     ///< last unscaled primal residual
    Index sDualRes = -1;     ///< last unscaled dual residual
    Index sPcgTotal = -1;    ///< cumulative PCG iterations
    Index sRhoUpdates = -1;  ///< number of rho updates taken
    Index sRho = -1;         ///< final rho-bar
};

/**
 * Allocate machine resources (vector buffers, HBM regions, scalar
 * registers) and emit the OSQP program.
 *
 * @param machine Machine already holding the four packed matrices.
 * @param mats Their ids.
 * @param scaled The scaled problem data (as inside OsqpSolver).
 * @param scaling The Ruiz scaling (for unscaled residual checks).
 * @param settings OSQP settings; maxIter and adaptiveRhoInterval must
 *        be multiples of checkInterval.
 */
OsqpDeviceProgram buildOsqpProgram(Machine& machine,
                                   const OsqpMatrixIds& mats,
                                   const QpProblem& scaled,
                                   const Scaling& scaling,
                                   const OsqpSettings& settings);

} // namespace rsqp

#endif // RSQP_ARCH_OSQP_PROGRAM_HPP
