/**
 * @file
 * Small assembler for RSQP programs: label management plus typed
 * emit helpers for every opcode.
 */

#ifndef RSQP_ARCH_PROGRAM_BUILDER_HPP
#define RSQP_ARCH_PROGRAM_BUILDER_HPP

#include <string>
#include <vector>

#include "arch/isa.hpp"
#include "common/types.hpp"

namespace rsqp
{

/** Builds a Program with forward-referenceable labels. */
class ProgramBuilder
{
  public:
    /** Create a label; bind it later with bind(). */
    Index newLabel();

    /** Bind a label to the next emitted instruction. */
    void bind(Index label);

    // Control
    void halt(const std::string& comment = "");
    void jump(Index label, const std::string& comment = "");
    void jumpIfLess(Index sa, Index sb, Index label,
                    const std::string& comment = "");
    void jumpIfGeq(Index sa, Index sb, Index label,
                   const std::string& comment = "");

    // Scalar
    void loadConst(Index dst, Real value, const std::string& comment = "");
    void scalarAdd(Index dst, Index a, Index b,
                   const std::string& comment = "");
    void scalarSub(Index dst, Index a, Index b,
                   const std::string& comment = "");
    void scalarMul(Index dst, Index a, Index b,
                   const std::string& comment = "");
    void scalarDiv(Index dst, Index a, Index b,
                   const std::string& comment = "");
    void scalarMax(Index dst, Index a, Index b,
                   const std::string& comment = "");
    void scalarSqrt(Index dst, Index a, const std::string& comment = "");

    // Data transfer
    void loadVec(Index vec_dst, Index hbm_src,
                 const std::string& comment = "");
    void storeVec(Index hbm_dst, Index vec_src,
                  const std::string& comment = "");

    // Vector ops
    void vecAxpby(Index dst, Index sa, Index x, Index sb, Index y,
                  const std::string& comment = "");
    void vecEwProd(Index dst, Index x, Index y,
                   const std::string& comment = "");
    void vecEwRecip(Index dst, Index x, const std::string& comment = "");
    void vecEwMin(Index dst, Index x, Index y,
                  const std::string& comment = "");
    void vecEwMax(Index dst, Index x, Index y,
                  const std::string& comment = "");
    void vecCopy(Index dst, Index x, const std::string& comment = "");
    void vecSetConst(Index dst, Real value,
                     const std::string& comment = "");
    void vecDot(Index scalar_dst, Index x, Index y,
                const std::string& comment = "");
    void vecAmax(Index scalar_dst, Index x,
                 const std::string& comment = "");

    // Duplication + SpMV
    void vecDup(Index cvb, Index src, const std::string& comment = "");
    void spmv(Index vec_dst, Index matrix, const std::string& comment = "");

    /** Number of instructions emitted so far. */
    std::size_t size() const { return code_.size(); }

    /** Patch label targets and return the finished program. */
    Program finish();

  private:
    void emit(Instruction instr);

    std::vector<Instruction> code_;
    std::vector<Index> labelTargets_;              ///< -1 = unbound
    std::vector<std::pair<std::size_t, Index>> fixups_;
};

} // namespace rsqp

#endif // RSQP_ARCH_PROGRAM_BUILDER_HPP
