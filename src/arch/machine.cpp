#include "machine.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "linalg/vector_ops.hpp"

namespace rsqp
{

Machine::Machine(ArchConfig config)
    : config_(std::move(config))
{
    RSQP_ASSERT(isPow2(config_.c) && config_.c <= 64,
                "datapath width must be a power of two <= 64");
    RSQP_ASSERT(config_.structures.c() == config_.c,
                "structure set width must match the datapath");
    if (config_.faultInjection.enabled)
        faultInjector_ =
            std::make_unique<FaultInjector>(config_.faultInjection);
    scalars_.fill(0.0);
}

Index
Machine::addVector(Index length, const std::string& name)
{
    RSQP_ASSERT(length >= 0, "negative vector length");
    vectors_.emplace_back(static_cast<std::size_t>(length), 0.0);
    vectorNames_.push_back(name);
    return static_cast<Index>(vectors_.size()) - 1;
}

Index
Machine::addMatrix(const PackedMatrix& packed, CvbPlan plan,
                   const std::string& name)
{
    RSQP_ASSERT(packed.c == config_.c, "packed matrix width mismatch");
    RSQP_ASSERT(plan.c == config_.c && plan.length == packed.cols,
                "CVB plan does not match the matrix");

    CompiledMatrix compiled;
    compiled.rows = packed.rows;
    compiled.cols = packed.cols;
    compiled.packCount = packed.packCount();
    compiled.plan = std::move(plan);
    compiled.storedCopies = compiled.plan.storedCopies();
    compiled.name = name;

    // Flatten the packed stream: keep only non-padded lanes, but keep
    // the exact segment structure so '$' accumulation chains survive.
    compiled.flatValues.reserve(static_cast<std::size_t>(packed.nnz));
    compiled.flatCols.reserve(static_cast<std::size_t>(packed.nnz));
    for (const LanePack& pack : packed.packs) {
        for (const PackSegment& seg : pack.segments) {
            CompiledMatrix::Segment flat_seg;
            flat_seg.row = seg.row;
            flat_seg.accumulate = seg.accumulate;
            flat_seg.emit = seg.emit;
            flat_seg.begin = static_cast<Index>(compiled.flatValues.size());
            for (Index k = seg.laneBegin; k < seg.laneEnd; ++k) {
                const Index col =
                    pack.colIdx[static_cast<std::size_t>(k)];
                if (col < 0)
                    continue;
                compiled.flatValues.push_back(
                    pack.values[static_cast<std::size_t>(k)]);
                compiled.flatCols.push_back(col);
            }
            flat_seg.end = static_cast<Index>(compiled.flatValues.size());
            compiled.segments.push_back(flat_seg);
        }
    }

    // Precompute the independent accumulation chains: a carry never
    // crosses a segment with accumulate == false, so those segments
    // are the legal split points of the parallel SpMV execution.
    for (std::size_t s = 0; s < compiled.segments.size(); ++s)
        if (!compiled.segments[s].accumulate)
            compiled.chainStarts.push_back(static_cast<Index>(s));
    // Chain 0 must start at segment 0 even if the stream opens with an
    // accumulate segment (a carry into nothing, executed with carry=0
    // by the serial walk) — otherwise execSpmv would skip the leading
    // segments entirely.
    if (!compiled.segments.empty() &&
        (compiled.chainStarts.empty() || compiled.chainStarts.front() != 0))
        compiled.chainStarts.insert(compiled.chainStarts.begin(), 0);

    matrices_.push_back(std::move(compiled));
    return static_cast<Index>(matrices_.size()) - 1;
}

void
Machine::updateMatrixValues(Index mat_id, const PackedMatrix& packed)
{
    RSQP_ASSERT(mat_id >= 0 &&
                mat_id < static_cast<Index>(matrices_.size()),
                "bad matrix id");
    CompiledMatrix& matrix =
        matrices_[static_cast<std::size_t>(mat_id)];
    RSQP_ASSERT(packed.c == config_.c &&
                packed.rows == matrix.rows &&
                packed.cols == matrix.cols &&
                packed.packCount() == matrix.packCount,
                "updateMatrixValues: structure mismatch for '",
                matrix.name, "'");

    std::size_t flat = 0;
    for (const LanePack& pack : packed.packs) {
        for (const PackSegment& seg : pack.segments) {
            for (Index k = seg.laneBegin; k < seg.laneEnd; ++k) {
                const Index col =
                    pack.colIdx[static_cast<std::size_t>(k)];
                if (col < 0)
                    continue;
                RSQP_ASSERT(flat < matrix.flatValues.size() &&
                            matrix.flatCols[flat] == col,
                            "updateMatrixValues: column pattern "
                            "mismatch for '", matrix.name, "'");
                matrix.flatValues[flat] =
                    pack.values[static_cast<std::size_t>(k)];
                ++flat;
            }
        }
    }
    RSQP_ASSERT(flat == matrix.flatValues.size(),
                "updateMatrixValues: value count mismatch");
}

Index
Machine::addHbmVector(Vector data, const std::string& name)
{
    (void)name;
    hbm_.push_back(std::move(data));
    return static_cast<Index>(hbm_.size()) - 1;
}

void
Machine::setHbmVector(Index id, Vector data)
{
    RSQP_ASSERT(id >= 0 && id < static_cast<Index>(hbm_.size()),
                "bad HBM region id");
    hbm_[static_cast<std::size_t>(id)] = std::move(data);
}

const Vector&
Machine::vectorValue(Index vec_id) const
{
    RSQP_ASSERT(vec_id >= 0 &&
                vec_id < static_cast<Index>(vectors_.size()),
                "bad vector id");
    return vectors_[static_cast<std::size_t>(vec_id)];
}

Real
Machine::scalarValue(Index scalar_id) const
{
    RSQP_ASSERT(scalar_id >= 0 && scalar_id < kNumScalars,
                "bad scalar id");
    return scalars_[static_cast<std::size_t>(scalar_id)];
}

const Vector&
Machine::hbmValue(Index hbm_id) const
{
    RSQP_ASSERT(hbm_id >= 0 && hbm_id < static_cast<Index>(hbm_.size()),
                "bad HBM region id");
    return hbm_[static_cast<std::size_t>(hbm_id)];
}

Count
Machine::vectorOpCycles(Index length) const
{
    return (static_cast<Count>(length) + config_.c - 1) / config_.c;
}

void
Machine::charge(InstrClass cls, Count cycles)
{
    stats_.totalCycles += cycles + config_.timings.decodeOverhead;
    stats_.classCycles[static_cast<std::size_t>(cls)] +=
        cycles + config_.timings.decodeOverhead;
    ++stats_.classCounts[static_cast<std::size_t>(cls)];
    ++stats_.instructions;
    if (profiling_ && lastPc_ < pcCycleCounts_.size())
        pcCycleCounts_[lastPc_] +=
            cycles + config_.timings.decodeOverhead;
}

void
Machine::execSpmv(const Instruction& instr)
{
    RSQP_ASSERT(instr.a >= 0 &&
                instr.a < static_cast<Index>(matrices_.size()),
                "spmv: bad matrix id");
    CompiledMatrix& matrix = matrices_[static_cast<std::size_t>(instr.a)];
    RSQP_ASSERT(matrix.cvbLoaded,
                "spmv on matrix '", matrix.name,
                "' before any VecDup into its CVB");
    Vector& dst = vectors_[static_cast<std::size_t>(instr.dst)];
    RSQP_ASSERT(static_cast<Index>(dst.size()) == matrix.rows,
                "spmv: destination length mismatch");
    const Vector& x = matrix.cvbVector;

    const Index num_chains =
        static_cast<Index>(matrix.chainStarts.size());
    const auto num_segments = static_cast<Index>(matrix.segments.size());

    // Soft-error model for the matrix stream: faults land on the HBM
    // words as they are burst in, i.e. per flat position — decided up
    // front on the dispatch thread so the parallel chain walk below
    // sees one consistent corrupted stream at every numThreads.
    const std::vector<Real>* stream_values = &matrix.flatValues;
    Vector corrupted_values;
    if (faultInjector_ != nullptr) {
        corrupted_values = matrix.flatValues;
        faultInjector_->corruptVector(
            corrupted_values, fault_streams::kSpmvValues + faultNonce_++);
        stream_values = &corrupted_values;
    }
    const std::vector<Real>& values = *stream_values;

    // Execute the accumulation chains [cb, ce) in stream order. Chains
    // are mutually independent (no carry crosses a chain start, each
    // chain emits a disjoint set of rows), so any grouping of chains
    // onto threads is bitwise-identical to the serial stream.
    std::function<void(Index, Index)> run_chains = [&](Index cb,
                                                       Index ce) {
        const Index seg_begin =
            matrix.chainStarts[static_cast<std::size_t>(cb)];
        const Index seg_end = ce < num_chains
            ? matrix.chainStarts[static_cast<std::size_t>(ce)]
            : num_segments;
        if (config_.fp32Datapath) {
            // FP32 MAC trees: accumulate in float like the silicon.
            float carry = 0.0f;
            for (Index si = seg_begin; si < seg_end; ++si) {
                const auto& seg =
                    matrix.segments[static_cast<std::size_t>(si)];
                float acc = seg.accumulate ? carry : 0.0f;
                for (Index p = seg.begin; p < seg.end; ++p)
                    acc += static_cast<float>(
                               values[static_cast<std::size_t>(p)]) *
                        static_cast<float>(x[static_cast<std::size_t>(
                            matrix.flatCols[
                                static_cast<std::size_t>(p)])]);
                if (seg.emit && seg.row >= 0)
                    dst[static_cast<std::size_t>(seg.row)] = acc;
                else
                    carry = acc;
            }
        } else {
            Real carry = 0.0;
            for (Index si = seg_begin; si < seg_end; ++si) {
                const auto& seg =
                    matrix.segments[static_cast<std::size_t>(si)];
                Real acc = seg.accumulate ? carry : 0.0;
                for (Index p = seg.begin; p < seg.end; ++p)
                    acc += values[static_cast<std::size_t>(p)] *
                        x[static_cast<std::size_t>(
                            matrix.flatCols[
                                static_cast<std::size_t>(p)])];
                if (seg.emit && seg.row >= 0)
                    dst[static_cast<std::size_t>(seg.row)] = acc;
                else
                    carry = acc;
            }
        }
    };

    const Index width = effectiveNumThreads();
    if (num_chains > 1 && width > 1 && !ThreadPool::insideWorker() &&
        static_cast<Index>(matrix.flatValues.size()) >=
            kParallelThreshold) {
        const Index grain =
            std::max<Index>(1, num_chains / (width * 4));
        ThreadPool::global().parallelFor(0, num_chains, grain,
                                         run_chains);
    } else if (num_chains > 0) {
        run_chains(0, num_chains);
    }

    // Soft-error model for the MAC-tree accumulation: the emitted
    // partial sums pass through the output register file.
    if (faultInjector_ != nullptr)
        faultInjector_->corruptVector(
            dst, fault_streams::kMacOutput + faultNonce_++);

    stats_.spmvPacks += matrix.packCount;
    charge(InstrClass::SpMV,
           matrix.packCount + config_.timings.spmvLatency);
}

void
Machine::run(const Program& program, Count max_instructions)
{
    RSQP_ASSERT(!program.code.empty(), "empty program");
    // Simulation-host parallelism for the C-wide datapath; 0 inherits
    // the ambient default and 1 forces the legacy serial walk.
    NumThreadsScope threads_scope(config_.resolvedNumThreads());
    const auto& timings = config_.timings;

    // Fresh deterministic fault pattern per run, so a host-level retry
    // of a corrupted run can actually succeed.
    if (faultInjector_ != nullptr)
        faultInjector_->advanceEpoch();

    // Download the instruction ROM from HBM (paper Sec. 3.5): one
    // instruction word per cycle after the first-word latency.
    {
        const Count rom_cycles = timings.hbmLatency +
            static_cast<Count>(program.size());
        stats_.totalCycles += rom_cycles;
        stats_.classCycles[static_cast<std::size_t>(
            InstrClass::DataTransfer)] += rom_cycles;
    }

    Count executed = 0;
    std::size_t pc = 0;
    if (profiling_) {
        pcCounts_.assign(program.code.size(), 0);
        pcCycleCounts_.assign(program.code.size(), 0);
    }

    auto scalar = [&](Index id) -> Real& {
        RSQP_ASSERT(id >= 0 && id < kNumScalars, "bad scalar register ",
                    id);
        return scalars_[static_cast<std::size_t>(id)];
    };
    auto vec = [&](Index id) -> Vector& {
        RSQP_ASSERT(id >= 0 && id < static_cast<Index>(vectors_.size()),
                    "bad vector buffer id ", id);
        return vectors_[static_cast<std::size_t>(id)];
    };

    while (true) {
        RSQP_ASSERT(pc < program.code.size(), "pc ", pc,
                    " fell off the program");
        if (++executed > max_instructions)
            RSQP_PANIC("instruction budget exceeded (runaway program?)");
        const Instruction& instr = program.code[pc];
        std::size_t next_pc = pc + 1;
        if (profiling_)
            ++pcCounts_[pc];
        lastPc_ = pc;

        switch (instr.op) {
          case Opcode::Halt:
            charge(InstrClass::Control, timings.controlLatency);
            return;
          case Opcode::Jump:
            next_pc = static_cast<std::size_t>(instr.dst);
            charge(InstrClass::Control, timings.controlLatency);
            break;
          case Opcode::JumpIfLess:
            if (scalar(instr.a) < scalar(instr.b))
                next_pc = static_cast<std::size_t>(instr.dst);
            charge(InstrClass::Control, timings.controlLatency);
            break;
          case Opcode::JumpIfGeq:
            if (scalar(instr.a) >= scalar(instr.b))
                next_pc = static_cast<std::size_t>(instr.dst);
            charge(InstrClass::Control, timings.controlLatency);
            break;

          case Opcode::LoadConst:
            scalar(instr.dst) = instr.imm;
            charge(InstrClass::Scalar, timings.scalarLatency);
            break;
          case Opcode::ScalarAdd:
            scalar(instr.dst) = scalar(instr.a) + scalar(instr.b);
            charge(InstrClass::Scalar, timings.scalarLatency);
            break;
          case Opcode::ScalarSub:
            scalar(instr.dst) = scalar(instr.a) - scalar(instr.b);
            charge(InstrClass::Scalar, timings.scalarLatency);
            break;
          case Opcode::ScalarMul:
            scalar(instr.dst) = scalar(instr.a) * scalar(instr.b);
            charge(InstrClass::Scalar, timings.scalarLatency);
            break;
          case Opcode::ScalarDiv:
            scalar(instr.dst) = scalar(instr.a) / scalar(instr.b);
            charge(InstrClass::Scalar, timings.scalarLatency);
            break;
          case Opcode::ScalarMax:
            scalar(instr.dst) = std::max(scalar(instr.a), scalar(instr.b));
            charge(InstrClass::Scalar, timings.scalarLatency);
            break;
          case Opcode::ScalarSqrt:
            scalar(instr.dst) = std::sqrt(scalar(instr.a));
            charge(InstrClass::Scalar, timings.scalarLatency);
            break;
          case Opcode::ScalarAbs:
            scalar(instr.dst) = std::abs(scalar(instr.a));
            charge(InstrClass::Scalar, timings.scalarLatency);
            break;

          case Opcode::LoadVec: {
            const Vector& src = hbmValue(instr.a);
            Vector& dst = vec(instr.dst);
            RSQP_ASSERT(src.size() == dst.size(),
                        "ldv: length mismatch");
            dst = src;
            // Soft-error model: the HBM read burst may deliver
            // corrupted words into the on-chip buffer.
            if (faultInjector_ != nullptr)
                faultInjector_->corruptVector(
                    dst, fault_streams::kHbmLoad + faultNonce_++);
            charge(InstrClass::DataTransfer,
                   vectorOpCycles(static_cast<Index>(dst.size())) +
                       timings.hbmLatency);
            break;
          }
          case Opcode::StoreVec: {
            RSQP_ASSERT(instr.dst >= 0 &&
                        instr.dst < static_cast<Index>(hbm_.size()),
                        "stv: bad HBM region");
            const Vector& src = vec(instr.a);
            hbm_[static_cast<std::size_t>(instr.dst)] = src;
            // Soft-error model: the write burst back to HBM.
            if (faultInjector_ != nullptr)
                faultInjector_->corruptVector(
                    hbm_[static_cast<std::size_t>(instr.dst)],
                    fault_streams::kHbmStore + faultNonce_++);
            charge(InstrClass::DataTransfer,
                   vectorOpCycles(static_cast<Index>(src.size())) +
                       timings.hbmLatency);
            break;
          }

          case Opcode::VecAxpby: {
            const Vector& x = vec(instr.a);
            const Vector& y = vec(instr.b);
            Vector& dst = vec(instr.dst);
            RSQP_ASSERT(x.size() == y.size() && x.size() == dst.size(),
                        "vaxpby: length mismatch");
            const Real alpha = scalar(instr.sa);
            const Real beta = scalar(instr.sb);
            axpby(alpha, x, beta, y, dst);
            charge(InstrClass::VectorOp,
                   vectorOpCycles(static_cast<Index>(dst.size())) +
                       timings.vectorLatency);
            break;
          }
          case Opcode::VecEwProd: {
            const Vector& x = vec(instr.a);
            const Vector& y = vec(instr.b);
            Vector& dst = vec(instr.dst);
            RSQP_ASSERT(x.size() == y.size() && x.size() == dst.size(),
                        "vmul: length mismatch");
            ewProduct(x, y, dst);
            charge(InstrClass::VectorOp,
                   vectorOpCycles(static_cast<Index>(dst.size())) +
                       timings.vectorLatency);
            break;
          }
          case Opcode::VecEwRecip: {
            const Vector& x = vec(instr.a);
            Vector& dst = vec(instr.dst);
            RSQP_ASSERT(x.size() == dst.size(), "vrecip: length mismatch");
            for (std::size_t i = 0; i < dst.size(); ++i)
                dst[i] = 1.0 / x[i];
            charge(InstrClass::VectorOp,
                   vectorOpCycles(static_cast<Index>(dst.size())) +
                       timings.vectorLatency);
            break;
          }
          case Opcode::VecEwMin:
          case Opcode::VecEwMax: {
            const Vector& x = vec(instr.a);
            const Vector& y = vec(instr.b);
            Vector& dst = vec(instr.dst);
            RSQP_ASSERT(x.size() == y.size() && x.size() == dst.size(),
                        "vmin/vmax: length mismatch");
            if (instr.op == Opcode::VecEwMin)
                ewMin(x, y, dst);
            else
                ewMax(x, y, dst);
            charge(InstrClass::VectorOp,
                   vectorOpCycles(static_cast<Index>(dst.size())) +
                       timings.vectorLatency);
            break;
          }
          case Opcode::VecCopy: {
            const Vector& x = vec(instr.a);
            Vector& dst = vec(instr.dst);
            RSQP_ASSERT(x.size() == dst.size(), "vcopy: length mismatch");
            dst = x;
            charge(InstrClass::VectorOp,
                   vectorOpCycles(static_cast<Index>(dst.size())) +
                       timings.vectorLatency);
            break;
          }
          case Opcode::VecSetConst: {
            Vector& dst = vec(instr.dst);
            std::fill(dst.begin(), dst.end(), instr.imm);
            charge(InstrClass::VectorOp,
                   vectorOpCycles(static_cast<Index>(dst.size())) +
                       timings.vectorLatency);
            break;
          }
          case Opcode::VecDot: {
            const Vector& x = vec(instr.a);
            const Vector& y = vec(instr.b);
            RSQP_ASSERT(x.size() == y.size(), "vdot: length mismatch");
            scalar(instr.dst) = dot(x, y);
            charge(InstrClass::VectorOp,
                   vectorOpCycles(static_cast<Index>(x.size())) +
                       timings.vectorLatency + timings.dotExtraLatency);
            break;
          }
          case Opcode::VecAmax: {
            const Vector& x = vec(instr.a);
            scalar(instr.dst) = normInf(x);
            charge(InstrClass::VectorOp,
                   vectorOpCycles(static_cast<Index>(x.size())) +
                       timings.vectorLatency + timings.dotExtraLatency);
            break;
          }

          case Opcode::VecDup: {
            RSQP_ASSERT(instr.dst >= 0 &&
                        instr.dst < static_cast<Index>(matrices_.size()),
                        "vdup: bad CVB id");
            CompiledMatrix& matrix =
                matrices_[static_cast<std::size_t>(instr.dst)];
            const Vector& src = vec(instr.a);
            RSQP_ASSERT(static_cast<Index>(src.size()) == matrix.cols,
                        "vdup: vector length does not match matrix '",
                        matrix.name, "'");
            matrix.cvbVector = src;
            matrix.cvbLoaded = true;
            stats_.dupCells += matrix.storedCopies;
            charge(InstrClass::VectorDup,
                   matrix.plan.updateCycles() + timings.dupLatency);
            break;
          }

          case Opcode::SpMV:
            execSpmv(instr);
            break;
        }
        pc = next_pc;
    }
}

std::string
Machine::profileReport(const Program& program, std::size_t top_k) const
{
    RSQP_ASSERT(pcCounts_.size() == program.code.size(),
                "profileReport: program does not match the profiled run "
                "(enableProfiling before run?)");
    std::vector<std::size_t> order(pcCounts_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return pcCycleCounts_[a] > pcCycleCounts_[b];
              });

    Count total = 0;
    for (Count cycles : pcCycleCounts_)
        total += cycles;

    std::ostringstream oss;
    oss << "hottest instructions (" << total << " attributed cycles):\n";
    for (std::size_t k = 0; k < std::min(top_k, order.size()); ++k) {
        const std::size_t pc = order[k];
        if (pcCycleCounts_[pc] == 0)
            break;
        const Instruction& instr = program.code[pc];
        oss << "  pc " << pc << "  " << mnemonic(instr.op) << "\tx"
            << pcCounts_[pc] << "\t" << pcCycleCounts_[pc]
            << " cycles (" << (total > 0
                ? 100 * pcCycleCounts_[pc] / total : 0)
            << "%)";
        if (!instr.comment.empty())
            oss << "\t; " << instr.comment;
        oss << "\n";
    }
    return oss.str();
}

} // namespace rsqp
