#include "isa.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace rsqp
{

InstrClass
classOf(Opcode op)
{
    switch (op) {
      case Opcode::Halt:
      case Opcode::Jump:
      case Opcode::JumpIfLess:
      case Opcode::JumpIfGeq:
        return InstrClass::Control;
      case Opcode::LoadConst:
      case Opcode::ScalarAdd:
      case Opcode::ScalarSub:
      case Opcode::ScalarMul:
      case Opcode::ScalarDiv:
      case Opcode::ScalarMax:
      case Opcode::ScalarSqrt:
      case Opcode::ScalarAbs:
        return InstrClass::Scalar;
      case Opcode::LoadVec:
      case Opcode::StoreVec:
        return InstrClass::DataTransfer;
      case Opcode::VecAxpby:
      case Opcode::VecEwProd:
      case Opcode::VecEwRecip:
      case Opcode::VecEwMin:
      case Opcode::VecEwMax:
      case Opcode::VecCopy:
      case Opcode::VecSetConst:
      case Opcode::VecDot:
      case Opcode::VecAmax:
        return InstrClass::VectorOp;
      case Opcode::VecDup:
        return InstrClass::VectorDup;
      case Opcode::SpMV:
        return InstrClass::SpMV;
    }
    RSQP_PANIC("unknown opcode");
}

const char*
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::Halt: return "halt";
      case Opcode::Jump: return "jmp";
      case Opcode::JumpIfLess: return "jlt";
      case Opcode::JumpIfGeq: return "jge";
      case Opcode::LoadConst: return "ldc";
      case Opcode::ScalarAdd: return "sadd";
      case Opcode::ScalarSub: return "ssub";
      case Opcode::ScalarMul: return "smul";
      case Opcode::ScalarDiv: return "sdiv";
      case Opcode::ScalarMax: return "smax";
      case Opcode::ScalarSqrt: return "ssqrt";
      case Opcode::ScalarAbs: return "sabs";
      case Opcode::LoadVec: return "ldv";
      case Opcode::StoreVec: return "stv";
      case Opcode::VecAxpby: return "vaxpby";
      case Opcode::VecEwProd: return "vmul";
      case Opcode::VecEwRecip: return "vrecip";
      case Opcode::VecEwMin: return "vmin";
      case Opcode::VecEwMax: return "vmax";
      case Opcode::VecCopy: return "vcopy";
      case Opcode::VecSetConst: return "vset";
      case Opcode::VecDot: return "vdot";
      case Opcode::VecAmax: return "vamax";
      case Opcode::VecDup: return "vdup";
      case Opcode::SpMV: return "spmv";
    }
    return "???";
}

std::string
Program::disassemble() const
{
    std::ostringstream oss;
    for (std::size_t pc = 0; pc < code.size(); ++pc) {
        const Instruction& instr = code[pc];
        oss << pc << ":\t" << mnemonic(instr.op) << " dst=" << instr.dst
            << " a=" << instr.a << " b=" << instr.b;
        if (instr.sa >= 0 || instr.sb >= 0)
            oss << " sa=" << instr.sa << " sb=" << instr.sb;
        if (instr.op == Opcode::LoadConst ||
            instr.op == Opcode::VecSetConst)
            oss << " imm=" << instr.imm;
        if (!instr.comment.empty())
            oss << "\t; " << instr.comment;
        oss << '\n';
    }
    return oss.str();
}

} // namespace rsqp
