/**
 * @file
 * Cycle-level functional simulator of the RSQP processing architecture
 * (paper Fig. 1).
 *
 * The machine executes programs of the Table 1 ISA strictly in order,
 * producing both the numeric results (the datapath is simulated
 * functionally, optionally in FP32 like the physical MAC trees) and a
 * cycle count per the paper's cost model:
 *
 *  - vector ops / data transfers: ceil(L / C) cycles + pipeline fill,
 *  - SpMV: one cycle per non-zero pack, i.e. (nnz + E_p) / C,
 *  - vector duplication: max(depth, L / C) cycles — E_c * L / C with
 *    full duplication, L / C when the CVB is perfectly compressed.
 *
 * This is the substitution for the physical U50 FPGA: the knobs the
 * paper tunes (C, S, CVB compression) enter the cycle count through
 * exactly the terms the paper attributes to them.
 */

#ifndef RSQP_ARCH_MACHINE_HPP
#define RSQP_ARCH_MACHINE_HPP

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "arch/isa.hpp"
#include "common/types.hpp"
#include "cvb/cvb.hpp"
#include "encoding/packing.hpp"

namespace rsqp
{

/** Execution statistics of one program run. */
struct MachineStats
{
    Count totalCycles = 0;
    Count instructions = 0;
    /** Cycles and instruction counts per Table 1 instruction class. */
    std::array<Count, 6> classCycles{};
    std::array<Count, 6> classCounts{};
    Count spmvPacks = 0;   ///< total matrix packs streamed from HBM
    Count dupCells = 0;    ///< total CVB cells written by VecDup

    Count cyclesOf(InstrClass cls) const
    {
        return classCycles[static_cast<std::size_t>(cls)];
    }
};

/** The simulated accelerator. */
class Machine
{
  public:
    explicit Machine(ArchConfig config);

    const ArchConfig& config() const { return config_; }

    // --- Host-side resource setup -------------------------------------

    /** Allocate a vector buffer of fixed length; returns its id. */
    Index addVector(Index length, const std::string& name = "");

    /**
     * Load a packed matrix and the CVB plan of its multiplicand
     * vector; returns the matrix id (also its CVB id).
     */
    Index addMatrix(const PackedMatrix& packed, CvbPlan plan,
                    const std::string& name = "");

    /**
     * Replace the numeric values of a loaded matrix with a re-packed
     * stream of identical structure (same schedule, same column
     * indices) — the "new parameters, same sparsity" reuse model.
     */
    void updateMatrixValues(Index mat_id, const PackedMatrix& packed);

    /** Allocate an HBM region holding a host-provided vector. */
    Index addHbmVector(Vector data, const std::string& name = "");

    /** Overwrite an HBM region (new problem parameters). */
    void setHbmVector(Index id, Vector data);

    /** Number of scalar registers available. */
    static constexpr Index kNumScalars = 96;

    // --- Execution -----------------------------------------------------

    /**
     * Execute the program from pc 0 until Halt.
     *
     * @param program The instruction ROM contents.
     * @param max_instructions Runaway guard; panics when exceeded.
     */
    void run(const Program& program, Count max_instructions = 500000000);

    // --- Result readback -----------------------------------------------

    const Vector& vectorValue(Index vec_id) const;
    Real scalarValue(Index scalar_id) const;
    const Vector& hbmValue(Index hbm_id) const;

    const MachineStats& stats() const { return stats_; }
    void resetStats() { stats_ = MachineStats{}; }

    /** Soft-error injector (nullptr unless config enables it). */
    const FaultInjector* faultInjector() const
    {
        return faultInjector_.get();
    }

    // --- Profiling -------------------------------------------------------

    /** Collect per-pc execution and cycle counts during run(). */
    void enableProfiling(bool enabled) { profiling_ = enabled; }

    /** Execution count per program counter (empty unless profiling). */
    const std::vector<Count>& pcExecutionCounts() const
    {
        return pcCounts_;
    }

    /** Cycles attributed per program counter. */
    const std::vector<Count>& pcCycles() const { return pcCycleCounts_; }

    /**
     * Render the top-k hottest instructions of the last profiled run
     * (pc, mnemonic, comment, executions, cycles, share).
     */
    std::string profileReport(const Program& program,
                              std::size_t top_k = 10) const;

  private:
    /** Matrix compiled for fast functional evaluation. */
    struct CompiledMatrix
    {
        Index rows = 0;
        Index cols = 0;
        Count packCount = 0;
        CvbPlan plan;
        /** One MAC tree output, pointing into the flat arrays. */
        struct Segment
        {
            Index row;
            Index begin;
            Index end;
            bool accumulate;
            bool emit;
        };
        std::vector<Real> flatValues;  ///< non-padded values, stream order
        IndexVector flatCols;          ///< matching column indices
        std::vector<Segment> segments;
        /**
         * Indices of segments that start a fresh accumulation chain
         * (accumulate == false). A '$'-chunk partial-sum carry never
         * crosses such a boundary, and each chain emits into its own
         * disjoint set of destination rows, so whole chains are the
         * unit of parallelism of the simulated lane streams: any
         * grouping of chains onto threads reproduces the serial
         * result bitwise.
         */
        IndexVector chainStarts;
        Count storedCopies = 0;  ///< cached plan.storedCopies()
        /** CVB contents (functional): the duplicated vector. */
        Vector cvbVector;
        bool cvbLoaded = false;
        std::string name;
    };

    Count vectorOpCycles(Index length) const;
    void charge(InstrClass cls, Count cycles);
    void execSpmv(const Instruction& instr);

    bool profiling_ = false;
    std::vector<Count> pcCounts_;
    std::vector<Count> pcCycleCounts_;
    std::size_t lastPc_ = 0;  ///< pc whose cost charge() attributes

    ArchConfig config_;
    std::unique_ptr<FaultInjector> faultInjector_;
    /**
     * Monotonic per-injected-instruction offset mixed into the stream
     * tag so repeated executions of one instruction see independent
     * fault draws. Bumped only on the in-order dispatch thread, so
     * fault patterns are identical at every numThreads.
     */
    std::uint64_t faultNonce_ = 0;
    std::vector<Vector> vectors_;
    std::vector<std::string> vectorNames_;
    std::vector<CompiledMatrix> matrices_;
    std::vector<Vector> hbm_;
    std::array<Real, kNumScalars> scalars_{};
    MachineStats stats_;
};

} // namespace rsqp

#endif // RSQP_ARCH_MACHINE_HPP
