/**
 * @file
 * Runtime CPU-feature detection for the SIMD kernel dispatcher.
 *
 * The native hot path ships three implementations of every vector
 * kernel (portable scalar, AVX2, AVX-512); this module answers the one
 * question the dispatcher needs at startup: which ISA level may this
 * process execute? Detection is a cached CPUID probe; the result can
 * be narrowed (never widened) by the RSQP_FORCE_ISA environment
 * variable or programmatically per test. See linalg/simd_kernels.hpp
 * for the kernel table keyed on the level.
 */

#ifndef RSQP_ARCH_CPU_FEATURES_HPP
#define RSQP_ARCH_CPU_FEATURES_HPP

#include <string_view>
#include <vector>

namespace rsqp
{

/**
 * SIMD instruction-set level of the vector kernels. Levels are ordered:
 * a machine that supports a level supports every smaller one, and the
 * numeric values are stable (exported through the
 * rsqp_build_isa_level telemetry gauge).
 */
enum class IsaLevel : int
{
    Scalar = 0, ///< portable 8-lane-striped scalar code, runs anywhere
    Avx2 = 1,   ///< 256-bit: AVX2 + FMA-free mul/add lanes
    Avx512 = 2, ///< 512-bit: AVX-512 F/DQ/VL/BW
};

/** Printable level name ("scalar" / "avx2" / "avx512"). */
const char* isaLevelName(IsaLevel level);

/**
 * Parse a level name as accepted by RSQP_FORCE_ISA
 * (case-insensitive "scalar" | "avx2" | "avx512"). Returns false and
 * leaves `out` untouched on unknown input.
 */
bool parseIsaLevel(std::string_view text, IsaLevel& out);

/**
 * Highest ISA level this CPU can execute. Cached after the first call;
 * AVX-512 requires the F+DQ+VL+BW subsets the kernels use. Always
 * at least Scalar; on non-x86 builds, exactly Scalar.
 */
IsaLevel detectedIsaLevel();

/**
 * Highest ISA level the *binary* carries kernels for (a compiler
 * without -mavx512f support produces a binary without the AVX-512
 * table even on capable hardware).
 */
IsaLevel compiledIsaLevel();

/**
 * Every level this process can actually run, ascending — the
 * intersection of detected hardware support and compiled-in kernels.
 * Test suites iterate this to cover each dispatchable table.
 */
std::vector<IsaLevel> supportedIsaLevels();

} // namespace rsqp

#endif // RSQP_ARCH_CPU_FEATURES_HPP
