#include "program_builder.hpp"

#include "common/logging.hpp"

namespace rsqp
{

Index
ProgramBuilder::newLabel()
{
    labelTargets_.push_back(-1);
    return static_cast<Index>(labelTargets_.size()) - 1;
}

void
ProgramBuilder::bind(Index label)
{
    RSQP_ASSERT(label >= 0 &&
                label < static_cast<Index>(labelTargets_.size()),
                "unknown label");
    RSQP_ASSERT(labelTargets_[static_cast<std::size_t>(label)] == -1,
                "label bound twice");
    labelTargets_[static_cast<std::size_t>(label)] =
        static_cast<Index>(code_.size());
}

void
ProgramBuilder::emit(Instruction instr)
{
    code_.push_back(std::move(instr));
}

void
ProgramBuilder::halt(const std::string& comment)
{
    emit({Opcode::Halt, -1, -1, -1, -1, -1, 0.0, comment});
}

void
ProgramBuilder::jump(Index label, const std::string& comment)
{
    fixups_.emplace_back(code_.size(), label);
    emit({Opcode::Jump, -1, -1, -1, -1, -1, 0.0, comment});
}

void
ProgramBuilder::jumpIfLess(Index sa, Index sb, Index label,
                           const std::string& comment)
{
    fixups_.emplace_back(code_.size(), label);
    emit({Opcode::JumpIfLess, -1, sa, sb, -1, -1, 0.0, comment});
}

void
ProgramBuilder::jumpIfGeq(Index sa, Index sb, Index label,
                          const std::string& comment)
{
    fixups_.emplace_back(code_.size(), label);
    emit({Opcode::JumpIfGeq, -1, sa, sb, -1, -1, 0.0, comment});
}

void
ProgramBuilder::loadConst(Index dst, Real value,
                          const std::string& comment)
{
    emit({Opcode::LoadConst, dst, -1, -1, -1, -1, value, comment});
}

void
ProgramBuilder::scalarAdd(Index dst, Index a, Index b,
                          const std::string& comment)
{
    emit({Opcode::ScalarAdd, dst, a, b, -1, -1, 0.0, comment});
}

void
ProgramBuilder::scalarSub(Index dst, Index a, Index b,
                          const std::string& comment)
{
    emit({Opcode::ScalarSub, dst, a, b, -1, -1, 0.0, comment});
}

void
ProgramBuilder::scalarMul(Index dst, Index a, Index b,
                          const std::string& comment)
{
    emit({Opcode::ScalarMul, dst, a, b, -1, -1, 0.0, comment});
}

void
ProgramBuilder::scalarDiv(Index dst, Index a, Index b,
                          const std::string& comment)
{
    emit({Opcode::ScalarDiv, dst, a, b, -1, -1, 0.0, comment});
}

void
ProgramBuilder::scalarMax(Index dst, Index a, Index b,
                          const std::string& comment)
{
    emit({Opcode::ScalarMax, dst, a, b, -1, -1, 0.0, comment});
}

void
ProgramBuilder::scalarSqrt(Index dst, Index a, const std::string& comment)
{
    emit({Opcode::ScalarSqrt, dst, a, -1, -1, -1, 0.0, comment});
}

void
ProgramBuilder::loadVec(Index vec_dst, Index hbm_src,
                        const std::string& comment)
{
    emit({Opcode::LoadVec, vec_dst, hbm_src, -1, -1, -1, 0.0, comment});
}

void
ProgramBuilder::storeVec(Index hbm_dst, Index vec_src,
                         const std::string& comment)
{
    emit({Opcode::StoreVec, hbm_dst, vec_src, -1, -1, -1, 0.0, comment});
}

void
ProgramBuilder::vecAxpby(Index dst, Index sa, Index x, Index sb, Index y,
                         const std::string& comment)
{
    emit({Opcode::VecAxpby, dst, x, y, sa, sb, 0.0, comment});
}

void
ProgramBuilder::vecEwProd(Index dst, Index x, Index y,
                          const std::string& comment)
{
    emit({Opcode::VecEwProd, dst, x, y, -1, -1, 0.0, comment});
}

void
ProgramBuilder::vecEwRecip(Index dst, Index x, const std::string& comment)
{
    emit({Opcode::VecEwRecip, dst, x, -1, -1, -1, 0.0, comment});
}

void
ProgramBuilder::vecEwMin(Index dst, Index x, Index y,
                         const std::string& comment)
{
    emit({Opcode::VecEwMin, dst, x, y, -1, -1, 0.0, comment});
}

void
ProgramBuilder::vecEwMax(Index dst, Index x, Index y,
                         const std::string& comment)
{
    emit({Opcode::VecEwMax, dst, x, y, -1, -1, 0.0, comment});
}

void
ProgramBuilder::vecCopy(Index dst, Index x, const std::string& comment)
{
    emit({Opcode::VecCopy, dst, x, -1, -1, -1, 0.0, comment});
}

void
ProgramBuilder::vecSetConst(Index dst, Real value,
                            const std::string& comment)
{
    emit({Opcode::VecSetConst, dst, -1, -1, -1, -1, value, comment});
}

void
ProgramBuilder::vecDot(Index scalar_dst, Index x, Index y,
                       const std::string& comment)
{
    emit({Opcode::VecDot, scalar_dst, x, y, -1, -1, 0.0, comment});
}

void
ProgramBuilder::vecAmax(Index scalar_dst, Index x,
                        const std::string& comment)
{
    emit({Opcode::VecAmax, scalar_dst, x, -1, -1, -1, 0.0, comment});
}

void
ProgramBuilder::vecDup(Index cvb, Index src, const std::string& comment)
{
    emit({Opcode::VecDup, cvb, src, -1, -1, -1, 0.0, comment});
}

void
ProgramBuilder::spmv(Index vec_dst, Index matrix,
                     const std::string& comment)
{
    emit({Opcode::SpMV, vec_dst, matrix, -1, -1, -1, 0.0, comment});
}

Program
ProgramBuilder::finish()
{
    for (const auto& [pos, label] : fixups_) {
        RSQP_ASSERT(label >= 0 &&
                    label < static_cast<Index>(labelTargets_.size()),
                    "fixup references unknown label");
        const Index target =
            labelTargets_[static_cast<std::size_t>(label)];
        RSQP_ASSERT(target >= 0, "label never bound");
        code_[pos].dst = target;
    }
    Program program;
    program.code = std::move(code_);
    code_.clear();
    fixups_.clear();
    labelTargets_.clear();
    return program;
}

} // namespace rsqp
