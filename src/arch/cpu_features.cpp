#include "cpu_features.hpp"

#include <algorithm>

namespace rsqp
{

namespace
{

/** x86 on a compiler with __builtin_cpu_supports (GCC/Clang)? */
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define RSQP_CPU_FEATURES_X86 1
#else
#define RSQP_CPU_FEATURES_X86 0
#endif

IsaLevel
probeIsaLevel()
{
#if RSQP_CPU_FEATURES_X86
    // The AVX-512 kernels use F (64-bit lanes), DQ (double/quad int
    // ops), VL (256/128-bit forms) and BW; require the full set the
    // way mainstream dispatchers (OpenBLAS, oneDNN) gate their
    // skylake-avx512 paths.
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl") &&
        __builtin_cpu_supports("avx512bw"))
        return IsaLevel::Avx512;
    if (__builtin_cpu_supports("avx2"))
        return IsaLevel::Avx2;
#endif
    return IsaLevel::Scalar;
}

char
lowerAscii(char c)
{
    return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

bool
equalsIgnoreCase(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (lowerAscii(a[i]) != lowerAscii(b[i]))
            return false;
    return true;
}

} // namespace

const char*
isaLevelName(IsaLevel level)
{
    switch (level) {
    case IsaLevel::Scalar:
        return "scalar";
    case IsaLevel::Avx2:
        return "avx2";
    case IsaLevel::Avx512:
        return "avx512";
    }
    return "unknown";
}

bool
parseIsaLevel(std::string_view text, IsaLevel& out)
{
    if (equalsIgnoreCase(text, "scalar")) {
        out = IsaLevel::Scalar;
        return true;
    }
    if (equalsIgnoreCase(text, "avx2")) {
        out = IsaLevel::Avx2;
        return true;
    }
    if (equalsIgnoreCase(text, "avx512")) {
        out = IsaLevel::Avx512;
        return true;
    }
    return false;
}

IsaLevel
detectedIsaLevel()
{
    static const IsaLevel level = probeIsaLevel();
    return level;
}

IsaLevel
compiledIsaLevel()
{
#if defined(RSQP_SIMD_BUILD_AVX512)
    return IsaLevel::Avx512;
#elif defined(RSQP_SIMD_BUILD_AVX2)
    return IsaLevel::Avx2;
#else
    return IsaLevel::Scalar;
#endif
}

std::vector<IsaLevel>
supportedIsaLevels()
{
    const int best = std::min(static_cast<int>(detectedIsaLevel()),
                              static_cast<int>(compiledIsaLevel()));
    std::vector<IsaLevel> levels;
    for (int l = 0; l <= best; ++l)
        levels.push_back(static_cast<IsaLevel>(l));
    return levels;
}

} // namespace rsqp
