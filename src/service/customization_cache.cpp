#include "customization_cache.hpp"

namespace rsqp
{

CustomizationCache::CustomizationCache(std::size_t capacity)
    : cache_(capacity)
{}

std::shared_ptr<const CustomizationArtifact>
CustomizationCache::find(const StructureFingerprint& fp)
{
    if (!fp.cacheable)
        return nullptr;
    std::lock_guard<std::mutex> lock(mutex_);
    Entry* entry = cache_.find(fp);
    return entry != nullptr ? *entry : nullptr;
}

void
CustomizationCache::insert(
    const StructureFingerprint& fp,
    std::shared_ptr<const CustomizationArtifact> artifact)
{
    if (!fp.cacheable || artifact == nullptr)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    footprintBytes_ += artifact->footprintBytes();
    const auto evicted = cache_.insert(fp, std::move(artifact));
    if (evicted.has_value() && *evicted != nullptr)
        footprintBytes_ -= (*evicted)->footprintBytes();
}

CustomizationCacheStats
CustomizationCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const LruCacheStats raw = cache_.stats();
    CustomizationCacheStats stats;
    stats.hits = raw.hits;
    stats.misses = raw.misses;
    stats.evictions = raw.evictions;
    stats.insertions = raw.insertions;
    stats.size = raw.size;
    stats.capacity = raw.capacity;
    stats.footprintBytes = footprintBytes_;
    return stats;
}

void
CustomizationCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.clear();
    footprintBytes_ = 0;
}

} // namespace rsqp
