/**
 * @file
 * Admission-plane vocabulary of the async service API: per-request
 * admission classes, the unified SubmitOptions struct every submit
 * path takes, and the cancellation token returned by submitAsync().
 *
 * Admission classes partition traffic by urgency. Each class gets a
 * weighted-fair share of every core's dispatch bandwidth (smooth
 * weighted round-robin over the per-core ready queues), an optional
 * per-class queue-depth bound on top of the service-wide one, and a
 * defined load-shedding order: when the global queue is full, an
 * arriving request of a higher class evicts the newest queued request
 * of the lowest populated class below it — Batch is shed before
 * Interactive, Interactive before Realtime, and a class never sheds
 * its own or a higher class.
 */

#ifndef RSQP_SERVICE_ADMISSION_HPP
#define RSQP_SERVICE_ADMISSION_HPP

#include <array>
#include <cstddef>
#include <memory>

#include "common/types.hpp"

namespace rsqp
{

/**
 * Urgency class of one request. Order is priority order: a smaller
 * value is more urgent, is shed last, and wins weighted-round-robin
 * ties.
 */
enum class AdmissionClass : int
{
    Realtime = 0,    ///< hard-deadline control loops (MPC steps)
    Interactive = 1, ///< a user is waiting (default)
    Batch = 2,       ///< throughput work; first to be shed
};

/** Number of admission classes (array extent for per-class state). */
inline constexpr std::size_t kAdmissionClassCount = 3;

/** Stable lowercase label ("realtime"/"interactive"/"batch") — used
 *  verbatim as the `class` label of rsqp_service_class_* series. */
const char* admissionClassName(AdmissionClass cls);

/** Per-class admission knobs. */
struct AdmissionClassConfig
{
    /** Relative share of each core's dispatch bandwidth under
     *  contention (smooth weighted round-robin; >= 1). */
    unsigned weight = 1;
    /** Max requests of this class waiting across all sessions
     *  (0 = bounded only by ServiceConfig::maxQueueDepth). */
    std::size_t maxQueueDepth = 0;
};

/** The admission plane's class table, fixed at service construction.
 *  Defaults keep a default-config service behaviorally identical to
 *  the pre-class API: no per-class bound, and weighted fairness only
 *  matters once classes actually compete in a queue. */
struct AdmissionConfig
{
    std::array<AdmissionClassConfig, kAdmissionClassCount> classes = {
        AdmissionClassConfig{8, 0}, // Realtime
        AdmissionClassConfig{4, 0}, // Interactive
        AdmissionClassConfig{1, 0}, // Batch
    };

    const AdmissionClassConfig& of(AdmissionClass cls) const
    {
        return classes[static_cast<std::size_t>(cls)];
    }
};

/** Per-request warm-start directive, layered over the session's
 *  autoWarmStart default. */
enum class WarmStartPolicy
{
    SessionDefault, ///< follow SessionConfig::autoWarmStart
    Apply,          ///< warm-start when the previous solution fits
    Skip,           ///< cold-start this request regardless
};

/**
 * Everything a client can say about one request, in one struct — the
 * single options surface of submitAsync()/submit()/solve(). The old
 * positional-deadline overloads forward here and are deprecated.
 */
struct SubmitOptions
{
    /** Wall-clock budget in seconds, queue wait included (0 = the
     *  service's defaultDeadlineSeconds). */
    Real deadlineSeconds = 0.0;
    /** Urgency class (see AdmissionClass). */
    AdmissionClass admissionClass = AdmissionClass::Interactive;
    /** Let this request consult/publish the customization cache. Off,
     *  a structure change customizes privately — for one-off odd
     *  structures that would otherwise evict hot artifacts. */
    bool cacheable = true;
    /** Warm-start directive for this request. */
    WarmStartPolicy warmStart = WarmStartPolicy::SessionDefault;
};

/**
 * Handle to one in-flight request, returned by submitAsync(). Holds a
 * weak reference only: it never extends the request's lifetime, and a
 * default-constructed token cancels nothing. Pass it back to
 * SolverService::cancel() to revoke the request while it still waits
 * in the admission queue.
 */
struct RequestToken
{
    /** True while the request object is alive (queued, launched, or
     *  about to resolve); false once resolved and released, or for a
     *  default-constructed token. */
    bool valid() const { return !handle.expired(); }

    /** Opaque reference to the service's internal job record. */
    std::weak_ptr<void> handle;
};

} // namespace rsqp

#endif // RSQP_SERVICE_ADMISSION_HPP
