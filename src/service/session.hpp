/**
 * @file
 * Per-client solver session: the stateful object that turns a stream
 * of QP requests from one client into the cheapest possible solves.
 *
 * A session routes each request down the fastest applicable path:
 *
 *  1. same sparsity structure as the previous request -> parametric
 *     update (updateLinearCost / updateBounds / updateMatrixValues) on
 *     the live solver — no setup work at all;
 *  2. new structure, artifact cached -> thaw the frozen customization
 *     (skip the E_p/E_c pipeline), re-pack values only;
 *  3. new structure, cache miss -> full customization, then freeze and
 *     publish the artifact for every other session.
 *
 * Warm-start state (the previous solution) is carried across requests
 * and applied automatically when shapes match. Sessions are not
 * thread-safe: the service front-end serializes requests per session.
 */

#ifndef RSQP_SERVICE_SESSION_HPP
#define RSQP_SERVICE_SESSION_HPP

#include <memory>

#include "backends/qp_backend.hpp"
#include "core/rsqp_solver.hpp"
#include "osqp/solver.hpp"
#include "service/admission.hpp"
#include "service/customization_cache.hpp"
#include "telemetry/solve_telemetry.hpp"

namespace rsqp
{

/** Which solver backs a session. */
enum class SessionEngine
{
    Device,  ///< RsqpSolver (simulated accelerator, customization cache)
    Host,    ///< first-order CPU backend chosen by
             ///< OsqpSettings::firstOrder (ADMM by default; parametric
             ///< reuse + warm start only)
};

/** Per-session configuration, fixed at session creation. */
struct SessionConfig
{
    OsqpSettings osqp;
    /** Customization pipeline knobs (Device engine only). */
    CustomizeSettings custom;
    SessionEngine engine = SessionEngine::Device;
    /** Re-apply the previous solution as a warm start when it fits. */
    bool autoWarmStart = true;
};

/** Outcome of one session solve, engine-agnostic. */
struct SessionResult
{
    SolveStatus status = SolveStatus::Unsolved;
    Vector x;  ///< primal solution (unscaled)
    Vector y;  ///< dual solution (unscaled)
    Vector z;  ///< A x (unscaled)
    Index iterations = 0;
    Real objective = 0.0;
    Real primRes = 0.0;
    Real dualRes = 0.0;

    /** Request solved through the parametric-update fast path. */
    bool parametricReuse = false;
    /** Solver rebuilt from a cached (thawed) artifact. */
    bool cacheHit = false;
    /** Previous solution applied as the starting iterate. */
    bool warmStarted = false;

    double setupSeconds = 0.0;  ///< solver (re)build incl. customization
    double solveSeconds = 0.0;  ///< wall clock of the solve itself
    Real deviceSeconds = 0.0;   ///< Device engine: simulated wall clock
    HotPathProfile hotPath;     ///< Host/PCG per-phase counters
    ValidationReport validation;  ///< filled when InvalidProblem

    /** Times this job was re-placed off a failed core before running
     *  (fleet failover; the solve itself is bitwise-unaffected). */
    Count failovers = 0;
    /** Rejected with load shed: suggested client back-off before
     *  resubmitting (seconds; 0 on any other status). */
    Real retryAfterSeconds = 0.0;

    /** Structured per-solve summary (route, queue wait, residuals). */
    SolveTelemetry telemetry;
};

/** Monotonic per-session counters. */
struct SessionStats
{
    Count solves = 0;
    Count parametricSolves = 0;  ///< requests on path 1
    Count rebuilds = 0;          ///< requests on paths 2 + 3
    Count cacheHits = 0;         ///< path-2 requests
    Count cacheMisses = 0;       ///< path-3 requests (cache attached)
    Count warmStarts = 0;
    Count invalidRequests = 0;
    double setupSecondsTotal = 0.0;
    double solveSecondsTotal = 0.0;
};

/** One client's solver state (see file comment for the three paths). */
class SolverSession
{
  public:
    /**
     * @param cache Shared customization cache (may be null: Device
     *        sessions then customize per structure with no reuse
     *        across sessions).
     */
    explicit SolverSession(
        SessionConfig config,
        std::shared_ptr<CustomizationCache> cache = nullptr);

    ~SolverSession();
    SolverSession(const SolverSession&) = delete;
    SolverSession& operator=(const SolverSession&) = delete;

    /**
     * Solve one request, choosing the cheapest path (see file
     * comment). Malformed problems return SolveStatus::InvalidProblem
     * with diagnostics and leave the current solver state untouched.
     *
     * @param time_budget Wall-clock budget in seconds for this solve
     *        (0 = the config's timeLimit). Enforced in-loop by the
     *        Host engine; the Device engine's simulated run is not
     *        interruptible, so its deadline is enforced by the service
     *        queue at admission time.
     * @param cacheable Whether a structure change on this request may
     *        consult or publish the customization cache. Off, a
     *        rebuild customizes privately — for one-off structures
     *        that must not evict hot artifacts.
     * @param warm_start Per-request warm-start directive layered over
     *        SessionConfig::autoWarmStart (SessionDefault follows it;
     *        Apply/Skip override for this request only).
     */
    SessionResult solve(
        const QpProblem& problem, Real time_budget = 0.0,
        bool cacheable = true,
        WarmStartPolicy warm_start = WarmStartPolicy::SessionDefault);

    /** Drop the live solver and warm-start state (structure forgotten). */
    void reset();

    /**
     * Swap the customization cache consulted by the rebuild paths —
     * the fleet binds a session to its placed core's cache partition
     * before each job. Takes effect on the next structure change; the
     * live solver and parametric state are untouched. Not thread-safe
     * (like solve(); the service serializes per-session calls).
     */
    void bindCache(std::shared_ptr<CustomizationCache> cache);

    const SessionStats& stats() const { return stats_; }
    const SessionConfig& config() const { return config_; }

  private:
    /** Structure-exact equality against the live problem. */
    bool sameStructure(const QpProblem& problem) const;

    /** Paths 2/3: build a fresh solver, consulting the cache unless
     *  the request opted out. */
    void rebuild(const QpProblem& problem, bool cacheable,
                 SessionResult& result);

    /** Path 1: diff against the live problem and push updates. */
    void applyParametricUpdates(const QpProblem& problem);

    SessionConfig config_;
    std::shared_ptr<CustomizationCache> cache_;

    QpProblem current_;  ///< the live problem (diff base), unscaled
    bool haveSolver_ = false;
    std::unique_ptr<RsqpSolver> device_;
    std::unique_ptr<QpBackend> host_;

    Vector lastX_, lastY_;  ///< warm-start state (unscaled)
    bool haveWarm_ = false;

    SessionStats stats_;
};

} // namespace rsqp

#endif // RSQP_SERVICE_SESSION_HPP
