#include "fingerprint.hpp"

#include <sstream>

#include "core/customization.hpp"
#include "osqp/problem.hpp"

namespace rsqp
{

namespace
{

/** splitmix64 finalizer — the word mixer of both hash lanes. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Two-lane streaming hash: each absorbed word perturbs both lanes
 * through independent mixes, so a collision needs to fool 128 bits.
 */
class Digest
{
  public:
    void
    word(std::uint64_t w)
    {
        hi_ = mix64(hi_ ^ w);
        lo_ = mix64(lo_ + (w ^ 0xa5a5a5a5a5a5a5a5ull)) ^ (lo_ >> 3);
    }

    void
    indices(const IndexVector& values)
    {
        word(static_cast<std::uint64_t>(values.size()));
        for (Index v : values)
            word(static_cast<std::uint64_t>(
                static_cast<std::int64_t>(v)));
    }

    void
    text(const std::string& s)
    {
        word(static_cast<std::uint64_t>(s.size()));
        std::uint64_t acc = 0;
        int shift = 0;
        for (char ch : s) {
            acc |= static_cast<std::uint64_t>(
                       static_cast<unsigned char>(ch))
                << shift;
            shift += 8;
            if (shift == 64) {
                word(acc);
                acc = 0;
                shift = 0;
            }
        }
        if (shift != 0)
            word(acc);
    }

    std::uint64_t hi() const { return hi_; }
    std::uint64_t lo() const { return lo_; }

  private:
    std::uint64_t hi_ = 0x243f6a8885a308d3ull;  ///< pi fraction bits
    std::uint64_t lo_ = 0x13198a2e03707344ull;
};

/** Absorb the value-blind identity of one CSC matrix. */
void
absorbStructure(Digest& digest, const CscMatrix& matrix)
{
    digest.word(static_cast<std::uint64_t>(matrix.rows()));
    digest.word(static_cast<std::uint64_t>(matrix.cols()));
    digest.indices(matrix.colPtr());
    digest.indices(matrix.rowIdx());
}

} // namespace

std::string
StructureFingerprint::toHex() const
{
    std::ostringstream os;
    os << std::hex;
    os.width(16);
    os.fill('0');
    os << hi;
    os.width(16);
    os << lo;
    return os.str();
}

StructureFingerprint
fingerprintStructure(const QpProblem& problem)
{
    Digest digest;
    absorbStructure(digest, problem.pUpper);
    absorbStructure(digest, problem.a);

    StructureFingerprint fp;
    fp.hi = digest.hi();
    fp.lo = digest.lo();
    fp.n = problem.numVariables();
    fp.m = problem.numConstraints();
    fp.pNnz = problem.pUpper.nnz();
    fp.aNnz = problem.a.nnz();
    return fp;
}

StructureFingerprint
fingerprintCustomization(const QpProblem& problem,
                         const CustomizeSettings& settings)
{
    Digest digest;
    absorbStructure(digest, problem.pUpper);
    absorbStructure(digest, problem.a);

    // Design knobs that change the frozen artifact. numThreads and
    // faultInjection are per-instance host concerns, overridden at
    // thaw time, so they stay out of the key.
    digest.word(static_cast<std::uint64_t>(settings.c));
    digest.word((settings.customizeStructures ? 1u : 0u) |
                (settings.compressCvb ? 2u : 0u) |
                (settings.fp32Datapath ? 4u : 0u));
    digest.word(static_cast<std::uint64_t>(settings.search.targetSize));
    digest.word(
        static_cast<std::uint64_t>(settings.search.maxCandidates));
    digest.word(
        static_cast<std::uint64_t>(settings.search.evalSampleLength));
    digest.word(
        static_cast<std::uint64_t>(settings.forcedPatterns.size()));
    for (const std::string& pattern : settings.forcedPatterns)
        digest.text(pattern);

    StructureFingerprint fp;
    fp.hi = digest.hi();
    fp.lo = digest.lo();
    fp.n = problem.numVariables();
    fp.m = problem.numConstraints();
    fp.pNnz = problem.pUpper.nnz();
    fp.aNnz = problem.a.nnz();
    // A user-supplied objective closure is opaque to the hash: two
    // settings with different closures would collide, so artifacts
    // built under one must never be served for the other.
    fp.cacheable = settings.search.objective == nullptr;
    return fp;
}

} // namespace rsqp
