/**
 * @file
 * Structure fingerprints: canonical, value-blind hashes of a QP's
 * sparsity pattern (and of the customization knobs that shape the
 * generated architecture).
 *
 * Two problems with identical dimensions and identical P/A sparsity
 * structures produce identical fingerprints regardless of their
 * numeric values — the equivalence classes over which one frozen
 * CustomizationArtifact (MAC structures, schedules, CVB layouts) is
 * exactly reusable. The digest is 128 bits (two independently mixed
 * 64-bit lanes) plus the raw dimensions and non-zero counts, so an
 * accidental collision additionally requires matching shapes.
 */

#ifndef RSQP_SERVICE_FINGERPRINT_HPP
#define RSQP_SERVICE_FINGERPRINT_HPP

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace rsqp
{

struct QpProblem;
struct CustomizeSettings;

/** Canonical identity of one sparsity structure (+ design knobs). */
struct StructureFingerprint
{
    std::uint64_t hi = 0;  ///< first hash lane
    std::uint64_t lo = 0;  ///< second (independent) hash lane
    Index n = 0;           ///< variables
    Index m = 0;           ///< constraints
    Count pNnz = 0;        ///< nnz of P (upper triangle)
    Count aNnz = 0;        ///< nnz of A
    /**
     * False when the customization depends on state the fingerprint
     * cannot capture (a user-supplied search objective closure); such
     * customizations must never be cached.
     */
    bool cacheable = true;

    bool
    operator==(const StructureFingerprint& other) const
    {
        return hi == other.hi && lo == other.lo && n == other.n &&
            m == other.m && pNnz == other.pNnz && aNnz == other.aNnz;
    }

    /** 32-hex-digit digest, e.g. for log lines and JSON reports. */
    std::string toHex() const;
};

/** Hash functor for unordered containers keyed by fingerprint. */
struct StructureFingerprintHash
{
    std::size_t
    operator()(const StructureFingerprint& fp) const
    {
        return static_cast<std::size_t>(fp.hi ^ (fp.lo >> 1));
    }
};

/**
 * Fingerprint the sparsity structure alone: dimensions plus the
 * colPtr/rowIdx arrays of P (upper CSC) and A. Value-blind.
 */
StructureFingerprint fingerprintStructure(const QpProblem& problem);

/**
 * Fingerprint the structure *and* the customization knobs that change
 * the generated architecture (c, E_p/E_c switches, FP32 datapath,
 * forced patterns, search budgets) — the key of the customization
 * cache. Per-instance host knobs (numThreads, fault injection) are
 * deliberately excluded: they do not alter the frozen artifact.
 */
StructureFingerprint
fingerprintCustomization(const QpProblem& problem,
                         const CustomizeSettings& settings);

} // namespace rsqp

#endif // RSQP_SERVICE_FINGERPRINT_HPP
