/**
 * @file
 * Bounded, thread-safe cache of frozen customization artifacts keyed
 * by structure fingerprint.
 *
 * This is where the paper's amortization argument becomes a serving
 * primitive: the expensive per-structure work (E_p MAC-structure
 * search, scheduling, E_c CVB packing) runs at most once per sparsity
 * structure; every later solver construction against the same
 * structure thaws the artifact in O(nnz). Entries are shared_ptr<const>
 * so an artifact evicted under a live solver setup stays valid until
 * that setup finishes.
 */

#ifndef RSQP_SERVICE_CUSTOMIZATION_CACHE_HPP
#define RSQP_SERVICE_CUSTOMIZATION_CACHE_HPP

#include <memory>
#include <mutex>

#include "common/lru_cache.hpp"
#include "core/customization.hpp"
#include "service/fingerprint.hpp"

namespace rsqp
{

/** Counter snapshot of one CustomizationCache. */
struct CustomizationCacheStats
{
    Count hits = 0;
    Count misses = 0;
    Count evictions = 0;
    Count insertions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
    /** Approximate host bytes held by the cached artifacts. */
    Count footprintBytes = 0;
};

/** Fingerprint-keyed LRU of frozen customization artifacts. */
class CustomizationCache
{
  public:
    /** Capacity in artifacts (0 disables caching). */
    explicit CustomizationCache(std::size_t capacity = 16);

    /**
     * Look up an artifact; a hit refreshes its recency. Non-cacheable
     * fingerprints (user-objective customizations) always miss without
     * touching the counters.
     */
    std::shared_ptr<const CustomizationArtifact>
    find(const StructureFingerprint& fp);

    /** Insert an artifact; non-cacheable fingerprints are dropped. */
    void insert(const StructureFingerprint& fp,
                std::shared_ptr<const CustomizationArtifact> artifact);

    CustomizationCacheStats stats() const;

    void clear();

  private:
    using Entry = std::shared_ptr<const CustomizationArtifact>;

    mutable std::mutex mutex_;
    LruCache<StructureFingerprint, Entry, StructureFingerprintHash>
        cache_;
    Count footprintBytes_ = 0;
};

} // namespace rsqp

#endif // RSQP_SERVICE_CUSTOMIZATION_CACHE_HPP
