#include "service.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/thread_pool.hpp"
#include "telemetry/trace.hpp"

namespace rsqp
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

unsigned
resolveMaxConcurrency(const ServiceConfig& config)
{
    if (config.maxConcurrency != 0)
        return config.maxConcurrency;
    if (config.execution.numThreads > 0)
        return static_cast<unsigned>(config.execution.numThreads);
    return static_cast<unsigned>(effectiveNumThreads());
}

/** The per-session label series name ("...{session=\"7\"}"). */
std::string
sessionSeriesName(SessionId id)
{
    return "rsqp_service_session_solves_total{session=\"" +
           std::to_string(id) + "\"}";
}

/** One rsqp_service_class_* series name for `cls`. */
std::string
classSeries(const char* family, AdmissionClass cls)
{
    return telemetry::labeledName(family, "class",
                                  admissionClassName(cls));
}

} // namespace

SolverService::SolverService(ServiceConfig config)
    : config_(config),
      maxConcurrency_(resolveMaxConcurrency(config)),
      fleet_(config.fleet, config.cacheCapacity, maxConcurrency_,
             config.admission, registry_),
      cache_(fleet_.coreCache(0)),
      submitted_(registry_.counter("rsqp_service_submitted_total",
                                   "Requests handed to submitAsync()")),
      completed_(registry_.counter("rsqp_service_completed_total",
                                   "Requests that ran to a status")),
      rejected_(registry_.counter("rsqp_service_rejected_total",
                                  "Queue overflow or closed session")),
      expired_(registry_.counter("rsqp_service_deadline_expired_total",
                                 "Deadline passed while queued")),
      cancelled_(registry_.counter(
          "rsqp_service_cancelled_total",
          "Requests revoked via their token before launch")),
      shedTotal_(registry_.counter(
          "rsqp_service_shed_total",
          "Queued requests evicted by a higher admission class")),
      shutdownDrained_(registry_.counter(
          "rsqp_service_shutdown_drained_total",
          "Queued requests resolved ShuttingDown by the destructor")),
      retryAfterHints_(registry_.counter(
          "rsqp_service_retry_after_hints_total",
          "Overflow rejections that carried a retry-after hint")),
      retiredSessionSolves_(registry_.counter(
          "rsqp_service_session_solves_retired_total",
          "Solves of sessions whose label series was retired")),
      queueDepth_(registry_.gauge("rsqp_service_queue_depth",
                                  "Requests waiting right now")),
      peakQueueDepth_(registry_.gauge("rsqp_service_queue_depth_peak",
                                      "Queue-depth high-water mark")),
      openSessions_(registry_.gauge("rsqp_service_open_sessions",
                                    "Sessions currently open")),
      cacheHits_(registry_.gauge("rsqp_service_cache_hits",
                                 "Customization-cache hits")),
      cacheMisses_(registry_.gauge("rsqp_service_cache_misses",
                                   "Customization-cache misses")),
      cacheEvictions_(registry_.gauge("rsqp_service_cache_evictions",
                                      "Customization-cache evictions")),
      cacheSize_(registry_.gauge("rsqp_service_cache_size",
                                 "Artifacts resident in the cache")),
      queueWaitNs_(registry_.histogram(
          "rsqp_service_queue_wait_ns",
          "Nanoseconds between admission and execution")),
      executeNs_(registry_.histogram(
          "rsqp_service_execute_ns",
          "Nanoseconds a request held a worker")),
      retryAfterUs_(registry_.histogram(
          "rsqp_service_retry_after_us",
          "Microseconds of back-off suggested to rejected clients"))
{
    for (std::size_t c = 0; c < kAdmissionClassCount; ++c) {
        const AdmissionClass cls = static_cast<AdmissionClass>(c);
        ClassMetrics& m = classMetrics_[c];
        m.submitted = &registry_.counter(
            classSeries("rsqp_service_class_submitted_total", cls),
            "Requests submitted in this admission class");
        m.completed = &registry_.counter(
            classSeries("rsqp_service_class_completed_total", cls),
            "Requests of this class that ran to a status");
        m.solved = &registry_.counter(
            classSeries("rsqp_service_class_solved_total", cls),
            "Requests of this class that completed Solved (goodput)");
        m.rejected = &registry_.counter(
            classSeries("rsqp_service_class_rejected_total", cls),
            "Requests of this class turned away at admission");
        m.shed = &registry_.counter(
            classSeries("rsqp_service_class_shed_total", cls),
            "Queued requests of this class evicted by a higher class");
        m.cancelled = &registry_.counter(
            classSeries("rsqp_service_class_cancelled_total", cls),
            "Requests of this class revoked via their token");
        m.expired = &registry_.counter(
            classSeries("rsqp_service_class_expired_total", cls),
            "Requests of this class whose deadline passed queued");
        m.queueDepth = &registry_.gauge(
            classSeries("rsqp_service_class_queue_depth", cls),
            "Requests of this class waiting right now");
        m.retryAfterUs = &registry_.histogram(
            classSeries("rsqp_service_class_retry_after_us", cls),
            "Microseconds of back-off suggested to this class");
    }
    if (config_.tracing)
        telemetry::TraceRecorder::global().enable();
}

SolverService::~SolverService()
{
    // Shed, then drain (contract documented on the declaration):
    // queued-but-unstarted requests resolve ShuttingDown immediately;
    // launched streams run to their real status. Nothing new can be
    // admitted because the owner is destroying the only handle.
    std::vector<std::shared_ptr<Job>> shed;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shuttingDown_ = true;
        for (auto& item : sessions_) {
            SessionState& state = *item.second;
            for (const std::shared_ptr<Job>& job : state.pending)
                shed.push_back(job);
            queuedJobs_ -= state.pending.size();
            state.pending.clear();
        }
        unplaced_.clear();
        classQueued_.fill(0);
        for (const ClassMetrics& m : classMetrics_)
            m.queueDepth->set(0);
        shutdownDrained_.add(shed.size());
        queueDepth_.set(static_cast<std::int64_t>(queuedJobs_));
        if (activeRuns_ == 0 && queuedJobs_ == 0)
            idleCv_.notify_all();
    }
    for (const std::shared_ptr<Job>& job : shed) {
        SessionResult result;
        result.status = SolveStatus::ShuttingDown;
        job->callback(std::move(result));
    }
    waitIdle();
}

SessionId
SolverService::openSession(SessionConfig config)
{
    auto state = std::make_unique<SessionState>();
    state->session = std::make_unique<SolverSession>(
        std::move(config), fleet_.coreCache(0));
    std::lock_guard<std::mutex> lock(mutex_);
    const SessionId id = nextId_++;
    state->solvesCounter = &registry_.counter(
        sessionSeriesName(id),
        "Solves executed on behalf of one session");
    sessions_.emplace(id, std::move(state));
    openSessions_.set(static_cast<std::int64_t>(sessions_.size()));
    return id;
}

void
SolverService::retireSessionSeriesLocked(SessionId id,
                                         SessionState& state)
{
    if (state.solvesCounter == nullptr)
        return;
    // The per-session series would otherwise accumulate forever as
    // sessions churn; its total survives in the aggregate counter.
    retiredSessionSolves_.add(state.solvesCounter->value());
    state.solvesCounter = nullptr;
    registry_.removeCounter(sessionSeriesName(id));
}

void
SolverService::closeSession(SessionId id)
{
    std::vector<std::shared_ptr<Job>> dropped;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = sessions_.find(id);
        if (it == sessions_.end())
            return;
        SessionState& state = *it->second;
        state.open = false;
        for (const std::shared_ptr<Job>& job : state.pending) {
            unqueueLocked(job);
            rejected_.increment();
            classMetrics_[classIndex(job->options.admissionClass)]
                .rejected->increment();
            dropped.push_back(job);
        }
        state.pending.clear();
        // A running job still owns the session; its completion handler
        // erases the closed state.
        if (!state.running) {
            retireSessionSeriesLocked(id, state);
            sessions_.erase(it);
        }
        openSessions_.set(static_cast<std::int64_t>(sessions_.size()));
        if (activeRuns_ == 0 && queuedJobs_ == 0)
            idleCv_.notify_all();
    }
    for (const std::shared_ptr<Job>& job : dropped) {
        SessionResult result;
        result.status = SolveStatus::Rejected;
        job->callback(std::move(result));
    }
}

void
SolverService::unqueueLocked(const std::shared_ptr<Job>& job)
{
    --queuedJobs_;
    const std::size_t cls = classIndex(job->options.admissionClass);
    --classQueued_[cls];
    classMetrics_[cls].queueDepth->set(
        static_cast<std::int64_t>(classQueued_[cls]));
    queueDepth_.set(static_cast<std::int64_t>(queuedJobs_));
}

std::shared_ptr<SolverService::Job>
SolverService::shedLowerClassLocked(AdmissionClass cls)
{
    // Lowest-priority populated class strictly below the arrival:
    // Batch is evicted before Interactive, and nothing below Batch
    // exists, so a Batch arrival can never shed.
    for (std::size_t c = kAdmissionClassCount; c-- > 0;) {
        if (c <= classIndex(cls) || classQueued_[c] == 0)
            continue;
        // Evict the *newest* queued job of that class: it has waited
        // the least, so the eviction wastes the least queue progress
        // and FIFO fairness within the class is preserved.
        SessionState* victimState = nullptr;
        std::deque<std::shared_ptr<Job>>::iterator victimIt;
        for (auto& item : sessions_) {
            auto& pending = item.second->pending;
            for (auto jt = pending.rbegin(); jt != pending.rend();
                 ++jt) {
                if (classIndex((*jt)->options.admissionClass) != c)
                    continue;
                if (victimState == nullptr ||
                    (*jt)->enqueued > (*victimIt)->enqueued) {
                    victimState = item.second.get();
                    victimIt = std::prev(jt.base());
                }
                break; // older same-class jobs of this session lose
            }
        }
        if (victimState == nullptr)
            continue;
        std::shared_ptr<Job> victim = *victimIt;
        victimState->pending.erase(victimIt);
        unqueueLocked(victim);
        shedTotal_.increment();
        classMetrics_[c].shed->increment();
        return victim;
    }
    return nullptr;
}

Real
SolverService::retryAfterEstimateLocked(AdmissionClass cls) const
{
    // Expected time for this class's backlog plus the new request to
    // drain through its weighted-fair share of the slots still taking
    // work; with every core fenced, nothing drains until the next
    // readmission probe can land. The share assumes every class is
    // contending (conservative), which keeps the hint monotone in the
    // class backlog and never smaller for a lower class.
    const double average = fleet_.averageJobDeviceSeconds();
    const std::size_t available = fleet_.availableCoreCount();
    const double slotCapacity = static_cast<double>(
        std::max<std::size_t>(std::size_t{1}, available) *
        fleet_.slotsPerCore());
    double totalWeight = 0.0;
    for (const AdmissionClassConfig& entry :
         config_.admission.classes)
        totalWeight += std::max(1u, entry.weight);
    const double share =
        std::max(1u, config_.admission.of(cls).weight) / totalWeight;
    double estimate =
        average *
        static_cast<double>(classQueued_[classIndex(cls)] + 1) /
        (slotCapacity * share);
    if (available == 0)
        estimate += fleet_.secondsToNextProbe();
    return std::max(config_.retryAfterFloorSeconds,
                    static_cast<Real>(estimate));
}

void
SolverService::recordRetryHintLocked(AdmissionClass cls, Real hint)
{
    lastRetryAfterSeconds_ = static_cast<double>(hint);
    retryAfterHints_.increment();
    const std::uint64_t us = static_cast<std::uint64_t>(
        static_cast<double>(hint) * 1e6);
    retryAfterUs_.observe(us);
    classMetrics_[classIndex(cls)].retryAfterUs->observe(us);
}

RequestToken
SolverService::submitAsync(SessionId id, QpProblem problem,
                           SubmitOptions options,
                           SolveCallback callback)
{
    auto job = std::make_shared<Job>();
    job->problem = std::move(problem);
    job->options = options;
    job->session = id;
    job->deadline = options.deadlineSeconds > 0.0
                        ? options.deadlineSeconds
                        : config_.defaultDeadlineSeconds;
    job->enqueued = std::chrono::steady_clock::now();
    job->callback = std::move(callback);
    // Placement key, computed on the caller's thread: value-blind, so
    // every job of one structure carries the identical fingerprint.
    job->fp = fingerprintStructure(job->problem);
    job->small = job->problem.numVariables() +
                     job->problem.numConstraints() <=
                 config_.fleet.smallJobThreshold;
    RequestToken token;
    token.handle = job;

    const std::size_t cls = classIndex(options.admissionClass);
    bool admitted = false;
    Real retryAfter = 0.0;
    std::shared_ptr<Job> victim;
    Real victimRetryAfter = 0.0;
    std::vector<Launch> launches;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        submitted_.increment();
        classMetrics_[cls].submitted->increment();
        auto it = sessions_.find(id);
        const bool known =
            it != sessions_.end() && it->second->open;
        const std::size_t classBound =
            config_.admission.classes[cls].maxQueueDepth;
        const bool classRoom =
            classBound == 0 || classQueued_[cls] < classBound;
        bool globalRoom = queuedJobs_ < config_.maxQueueDepth;
        if (known && classRoom && !globalRoom) {
            // The global queue is full: make room by shedding the
            // newest queued job of a lower class, if one exists.
            victim = shedLowerClassLocked(options.admissionClass);
            if (victim != nullptr) {
                victimRetryAfter = retryAfterEstimateLocked(
                    victim->options.admissionClass);
                recordRetryHintLocked(
                    victim->options.admissionClass,
                    victimRetryAfter);
                globalRoom = true;
            }
        }
        if (known && classRoom && globalRoom) {
            SessionState& state = *it->second;
            const bool wasIdle =
                !state.running && state.pending.empty();
            state.pending.push_back(job);
            ++queuedJobs_;
            ++classQueued_[cls];
            classMetrics_[cls].queueDepth->set(
                static_cast<std::int64_t>(classQueued_[cls]));
            queueDepth_.set(static_cast<std::int64_t>(queuedJobs_));
            peakQueueDepth_.updateMax(
                static_cast<std::int64_t>(queuedJobs_));
            if (wasIdle)
                placeReadyLocked(id, state);
            admitted = true;
            pumpLocked(launches);
        } else {
            rejected_.increment();
            classMetrics_[cls].rejected->increment();
            if (known) {
                // Overflow (not a client error): tell the client how
                // long this class's backlog should take to clear.
                retryAfter =
                    retryAfterEstimateLocked(options.admissionClass);
                recordRetryHintLocked(options.admissionClass,
                                      retryAfter);
            }
        }
    }
    if (victim != nullptr) {
        SessionResult result;
        result.status = SolveStatus::Rejected;
        result.retryAfterSeconds = victimRetryAfter;
        victim->callback(std::move(result));
    }
    if (!admitted) {
        SessionResult result;
        result.status = SolveStatus::Rejected;
        result.retryAfterSeconds = retryAfter;
        job->callback(std::move(result));
        return token;
    }
    launch(launches);
    return token;
}

bool
SolverService::cancel(const RequestToken& token)
{
    auto job = std::static_pointer_cast<Job>(token.handle.lock());
    if (job == nullptr)
        return false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = sessions_.find(job->session);
        if (it == sessions_.end())
            return false;
        std::deque<std::shared_ptr<Job>>& pending =
            it->second->pending;
        auto pos = std::find(pending.begin(), pending.end(), job);
        if (pos == pending.end())
            return false; // launched or already resolved: too late
        // Still queued: this path now owns the job exclusively (the
        // same discipline dispatch uses), so the callback below fires
        // exactly once. Any stale ready-queue entry for the session
        // is dropped harmlessly at dispatch.
        pending.erase(pos);
        unqueueLocked(job);
        cancelled_.increment();
        classMetrics_[classIndex(job->options.admissionClass)]
            .cancelled->increment();
        if (activeRuns_ == 0 && queuedJobs_ == 0)
            idleCv_.notify_all();
    }
    SessionResult result;
    result.status = SolveStatus::Cancelled;
    job->callback(std::move(result));
    return true;
}

std::future<SessionResult>
SolverService::submit(SessionId id, QpProblem problem,
                      SubmitOptions options)
{
    auto promise = std::make_shared<std::promise<SessionResult>>();
    std::future<SessionResult> future = promise->get_future();
    submitAsync(id, std::move(problem), options,
                [promise](SessionResult result) {
                    promise->set_value(std::move(result));
                });
    return future;
}

SessionResult
SolverService::solve(SessionId id, QpProblem problem,
                     SubmitOptions options)
{
    return submit(id, std::move(problem), options).get();
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

std::future<SessionResult>
SolverService::submit(SessionId id, QpProblem problem,
                      Real deadline_seconds)
{
    SubmitOptions options;
    options.deadlineSeconds = deadline_seconds;
    return submit(id, std::move(problem), options);
}

SessionResult
SolverService::solve(SessionId id, QpProblem problem,
                     Real deadline_seconds)
{
    SubmitOptions options;
    options.deadlineSeconds = deadline_seconds;
    return solve(id, std::move(problem), options);
}

#pragma GCC diagnostic pop

void
SolverService::placeReadyLocked(SessionId id, SessionState& state)
{
    if (fleet_.availableCoreCount() == 0) {
        // Never park work on a fenced core: it could sit out the
        // whole quarantine. The pump re-places it after readmission.
        unplaced_.push_back(id);
        return;
    }
    const std::shared_ptr<Job>& head = state.pending.front();
    const std::size_t core = fleet_.placeSession(head->fp);
    fleet_.enqueueReady(core, id, head->options.admissionClass,
                        head->small);
}

void
SolverService::drainUnplacedLocked()
{
    if (fleet_.availableCoreCount() == 0)
        return;
    std::deque<SessionId> parked;
    parked.swap(unplaced_);
    for (SessionId id : parked) {
        auto it = sessions_.find(id);
        // Sessions closed or drained while parked hold no job.
        if (it == sessions_.end() || it->second->running ||
            it->second->pending.empty())
            continue;
        placeReadyLocked(id, *it->second);
    }
}

void
SolverService::pumpLocked(std::vector<Launch>& launches)
{
    fleet_.runReadmissionProbes();
    // Bounded retry: each pass either dispatches, or fast-forwards
    // the virtual clock to the next probe of an all-quarantined
    // fleet (probe backoff grows exponentially, so a core with
    // finitely many failing probes readmits within few passes).
    for (int pass = 0; pass < 64; ++pass) {
        drainUnplacedLocked();
        dispatchLocked(launches);
        const bool stuck = launches.empty() && activeRuns_ == 0 &&
                           queuedJobs_ > 0 &&
                           fleet_.availableCoreCount() == 0;
        if (!stuck)
            return;
        if (!fleet_.advanceVirtualToNextProbe())
            return;
        fleet_.runReadmissionProbes();
    }
}

void
SolverService::dispatchLocked(std::vector<Launch>& launches)
{
    for (std::size_t core = 0; core < fleet_.coreCount(); ++core) {
        while (fleet_.canDispatch(core) &&
               fleet_.readyDepth(core) > 0) {
            Launch stream;
            stream.core = core;
            for (SessionId id : fleet_.popStream(core)) {
                auto it = sessions_.find(id);
                // Stale entries (session closed or drained while
                // queued) are dropped; they hold no job.
                if (it == sessions_.end() || it->second->running ||
                    it->second->pending.empty())
                    continue;
                SessionState& state = *it->second;
                state.running = true;
                stream.entries.push_back(
                    {id, &state, state.pending.front()});
                state.pending.pop_front();
                unqueueLocked(stream.entries.back().job);
            }
            if (stream.entries.empty())
                continue;
            fleet_.onStreamLaunched(core, stream.entries.size());
            ++activeRuns_;
            launches.push_back(std::move(stream));
        }
    }
}

void
SolverService::launch(std::vector<Launch>& launches)
{
    // Submitted outside the service lock: with a degenerate zero-worker
    // pool submit() runs the task inline, which would deadlock under
    // the lock.
    for (Launch& item : launches) {
        Launch stream = std::move(item);
        ThreadPool::global().submit(
            [this, stream] { runStream(stream); });
    }
}

void
SolverService::failOverStreamLocked(
    Launch& stream, std::size_t from_index, bool hang,
    std::vector<Launch>& launches,
    std::vector<std::pair<std::shared_ptr<Job>, SolveStatus>>& shed)
{
    const double stall =
        hang ? fleet_.stallWatchdogSeconds() : 0.0;
    Count failedOver = 0;
    for (std::size_t i = from_index; i < stream.entries.size(); ++i) {
        Launch::Entry& entry = stream.entries[i];
        // None of these jobs started solving: session state is
        // untouched, so the re-run is bitwise identical to an
        // undisturbed one.
        entry.state->running = false;
        entry.job->stallSeconds += stall;
        ++entry.job->failovers;
        ++failedOver;
        if (shuttingDown_ || !entry.state->open) {
            shed.emplace_back(entry.job,
                              shuttingDown_ ? SolveStatus::ShuttingDown
                                            : SolveStatus::Rejected);
            if (!entry.state->open && entry.state->pending.empty()) {
                retireSessionSeriesLocked(entry.id, *entry.state);
                sessions_.erase(entry.id);
                openSessions_.set(
                    static_cast<std::int64_t>(sessions_.size()));
            }
            continue;
        }
        entry.state->pending.push_front(entry.job);
        ++queuedJobs_;
        const std::size_t cls =
            classIndex(entry.job->options.admissionClass);
        ++classQueued_[cls];
        classMetrics_[cls].queueDepth->set(
            static_cast<std::int64_t>(classQueued_[cls]));
        placeReadyLocked(entry.id, *entry.state);
    }
    fleet_.recordFailover(stream.core, failedOver);
    queueDepth_.set(static_cast<std::int64_t>(queuedJobs_));
    // Sessions still waiting on the now-fenced core follow the jobs
    // back to the scheduler.
    for (const ReadyEntry& ready : fleet_.drainReady(stream.core)) {
        auto it = sessions_.find(ready.id);
        if (it == sessions_.end() || it->second->running ||
            it->second->pending.empty())
            continue;
        placeReadyLocked(ready.id, *it->second);
    }
    pumpLocked(launches);
}

void
SolverService::runStream(Launch stream)
{
    Timer busy;
    const bool interleaved = stream.entries.size() > 1;
    for (std::size_t index = 0; index < stream.entries.size();
         ++index) {
        Launch::Entry& entry = stream.entries[index];
        SessionResult result;
        std::vector<Launch> launches;
        std::vector<std::pair<std::shared_ptr<Job>, SolveStatus>>
            shed;
        bool failedOver = false;
        FleetFaultAction action;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            action = fleet_.onJobStarting(stream.core);
            if (action.kind == FleetFaultAction::Kind::FailStream) {
                failOverStreamLocked(stream, index, action.hang,
                                     launches, shed);
                failedOver = true;
            }
        }
        if (failedOver) {
            for (auto& item : shed) {
                SessionResult dropped;
                dropped.status = item.second;
                item.first->callback(std::move(dropped));
            }
            if (!launches.empty())
                launch(launches);
            break; // the stream tail still releases this core's slot
        }
        {
            // Scoped so the span is recorded *before* the callback is
            // invoked: a client that solves then immediately drains
            // the trace always sees its own request's span.
            TELEMETRY_SPAN("service.run_job");
            // Stall-watchdog charges from earlier failovers count
            // against the budget as if the client had really waited
            // them out on the hung core.
            const double waited = secondsSince(entry.job->enqueued) +
                                  entry.job->stallSeconds;
            const bool expired = entry.job->deadline > 0.0 &&
                                 waited >= entry.job->deadline;
            const auto executeStart = std::chrono::steady_clock::now();
            if (expired) {
                // Too late to start: report the deadline without
                // touching the session (its warm state and diff base
                // stay intact).
                result.status = SolveStatus::TimeLimitReached;
            } else {
                const Real budget =
                    entry.job->deadline > 0.0
                        ? entry.job->deadline - static_cast<Real>(waited)
                        : 0.0;
                // The session consults the placed core's cache
                // partition, so affinity-routed structures find their
                // artifact hot.
                entry.state->session->bindCache(
                    fleet_.coreCache(stream.core));
                result = entry.state->session->solve(
                    entry.job->problem, budget,
                    entry.job->options.cacheable,
                    entry.job->options.warmStart);
            }
            const bool degraded =
                action.kind == FleetFaultAction::Kind::Degrade;
            if (degraded)
                // Modeled slowdown: the device held the job longer.
                result.deviceSeconds *=
                    static_cast<Real>(action.slowdown);
            result.failovers = entry.job->failovers;
            result.telemetry.queueWaitSeconds = waited;
            queueWaitNs_.observe(
                static_cast<std::uint64_t>(waited * 1e9));
            executeNs_.observe(static_cast<std::uint64_t>(
                secondsSince(executeStart) * 1e9));

            {
                std::lock_guard<std::mutex> lock(mutex_);
                const std::size_t cls =
                    classIndex(entry.job->options.admissionClass);
                entry.state->statsSnapshot =
                    entry.state->session->stats();
                if (expired) {
                    expired_.increment();
                    classMetrics_[cls].expired->increment();
                } else {
                    completed_.increment();
                    classMetrics_[cls].completed->increment();
                    if (result.status == SolveStatus::Solved)
                        classMetrics_[cls].solved->increment();
                    entry.state->solvesCounter->increment();
                }
                fleet_.onJobExecuted(
                    stream.core, interleaved,
                    static_cast<double>(result.deviceSeconds),
                    degraded);
                entry.state->running = false;
                if (!entry.state->open &&
                    entry.state->pending.empty()) {
                    // Deferred from closeSession.
                    retireSessionSeriesLocked(entry.id, *entry.state);
                    sessions_.erase(entry.id);
                    openSessions_.set(
                        static_cast<std::int64_t>(sessions_.size()));
                } else if (!entry.state->pending.empty()) {
                    placeReadyLocked(entry.id, *entry.state);
                }
                // Other cores may have gained work (the session was
                // re-placed); this core's slot stays held until the
                // stream ends.
                pumpLocked(launches);
            }
        }
        if (!launches.empty())
            launch(launches);
        entry.job->callback(std::move(result));
    }

    std::vector<Launch> launches;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        fleet_.onStreamFinished(stream.core, busy.seconds());
        --activeRuns_;
        pumpLocked(launches);
        // The idle check runs after pumpLocked so follow-on work keeps
        // activeRuns_ nonzero: once a drain observes idle, no code
        // path of this stream touches the service again, making
        // destruction race-free.
        if (activeRuns_ == 0 && queuedJobs_ == 0)
            idleCv_.notify_all();
    }
    if (!launches.empty())  // non-empty: the drain is still held
        launch(launches);
}

void
SolverService::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock,
                 [this] { return activeRuns_ == 0 && queuedJobs_ == 0; });
}

ServiceStats
SolverService::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ServiceStats stats;
    stats.submitted = static_cast<Count>(submitted_.value());
    stats.completed = static_cast<Count>(completed_.value());
    stats.rejected = static_cast<Count>(rejected_.value());
    stats.expired = static_cast<Count>(expired_.value());
    stats.cancelled = static_cast<Count>(cancelled_.value());
    stats.shed = static_cast<Count>(shedTotal_.value());
    stats.shutdownDrained =
        static_cast<Count>(shutdownDrained_.value());
    stats.retryAfterHints =
        static_cast<Count>(retryAfterHints_.value());
    stats.lastRetryAfterSeconds = lastRetryAfterSeconds_;
    const FleetStats fleet = fleet_.stats();
    stats.failovers = fleet.failovers;
    stats.quarantines = fleet.quarantines;
    stats.readmissions = fleet.readmissions;
    stats.queueDepth = queuedJobs_;
    stats.peakQueueDepth =
        static_cast<std::size_t>(peakQueueDepth_.value());
    stats.openSessions = sessions_.size();
    stats.cache = fleet_.aggregateCacheStats();
    for (std::size_t c = 0; c < kAdmissionClassCount; ++c) {
        const ClassMetrics& m = classMetrics_[c];
        ClassStats& slice = stats.perClass[c];
        slice.submitted = static_cast<Count>(m.submitted->value());
        slice.completed = static_cast<Count>(m.completed->value());
        slice.solved = static_cast<Count>(m.solved->value());
        slice.rejected = static_cast<Count>(m.rejected->value());
        slice.shed = static_cast<Count>(m.shed->value());
        slice.cancelled = static_cast<Count>(m.cancelled->value());
        slice.expired = static_cast<Count>(m.expired->value());
        slice.queueDepth = classQueued_[c];
    }
    return stats;
}

FleetStats
SolverService::fleetStats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return fleet_.stats();
}

void
SolverService::syncGaugesLocked() const
{
    const CustomizationCacheStats cache = fleet_.aggregateCacheStats();
    cacheHits_.set(cache.hits);
    cacheMisses_.set(cache.misses);
    cacheEvictions_.set(cache.evictions);
    cacheSize_.set(static_cast<std::int64_t>(cache.size));
    openSessions_.set(static_cast<std::int64_t>(sessions_.size()));
    fleet_.syncGauges();
}

telemetry::MetricsSnapshot
SolverService::metricsSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    syncGaugesLocked();
    return registry_.snapshot();
}

std::string
SolverService::metricsText() const
{
    return metricsSnapshot().toPrometheusText();
}

std::string
SolverService::dumpTrace() const
{
    return telemetry::TraceRecorder::global().drainJson();
}

SessionStats
SolverService::sessionStats(SessionId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    return it != sessions_.end() ? it->second->statsSnapshot
                                 : SessionStats();
}

} // namespace rsqp
