#include "service.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/thread_pool.hpp"
#include "telemetry/trace.hpp"

namespace rsqp
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Resolve an admitted request without running it. */
void
resolveWith(std::promise<SessionResult>& promise, SolveStatus status)
{
    SessionResult result;
    result.status = status;
    promise.set_value(std::move(result));
}

unsigned
resolveMaxConcurrency(const ServiceConfig& config)
{
    if (config.maxConcurrency != 0)
        return config.maxConcurrency;
    if (config.execution.numThreads > 0)
        return static_cast<unsigned>(config.execution.numThreads);
    return static_cast<unsigned>(effectiveNumThreads());
}

/** The per-session label series name ("...{session=\"7\"}"). */
std::string
sessionSeriesName(SessionId id)
{
    return "rsqp_service_session_solves_total{session=\"" +
           std::to_string(id) + "\"}";
}

} // namespace

SolverService::SolverService(ServiceConfig config)
    : config_(config),
      maxConcurrency_(resolveMaxConcurrency(config)),
      fleet_(config.fleet, config.cacheCapacity, maxConcurrency_,
             registry_),
      cache_(fleet_.coreCache(0)),
      submitted_(registry_.counter("rsqp_service_submitted_total",
                                   "Requests handed to submit()")),
      completed_(registry_.counter("rsqp_service_completed_total",
                                   "Requests that ran to a status")),
      rejected_(registry_.counter("rsqp_service_rejected_total",
                                  "Queue overflow or closed session")),
      expired_(registry_.counter("rsqp_service_deadline_expired_total",
                                 "Deadline passed while queued")),
      shutdownDrained_(registry_.counter(
          "rsqp_service_shutdown_drained_total",
          "Queued requests resolved ShuttingDown by the destructor")),
      retryAfterHints_(registry_.counter(
          "rsqp_service_retry_after_hints_total",
          "Overflow rejections that carried a retry-after hint")),
      retiredSessionSolves_(registry_.counter(
          "rsqp_service_session_solves_retired_total",
          "Solves of sessions whose label series was retired")),
      queueDepth_(registry_.gauge("rsqp_service_queue_depth",
                                  "Requests waiting right now")),
      peakQueueDepth_(registry_.gauge("rsqp_service_queue_depth_peak",
                                      "Queue-depth high-water mark")),
      openSessions_(registry_.gauge("rsqp_service_open_sessions",
                                    "Sessions currently open")),
      cacheHits_(registry_.gauge("rsqp_service_cache_hits",
                                 "Customization-cache hits")),
      cacheMisses_(registry_.gauge("rsqp_service_cache_misses",
                                   "Customization-cache misses")),
      cacheEvictions_(registry_.gauge("rsqp_service_cache_evictions",
                                      "Customization-cache evictions")),
      cacheSize_(registry_.gauge("rsqp_service_cache_size",
                                 "Artifacts resident in the cache")),
      queueWaitNs_(registry_.histogram(
          "rsqp_service_queue_wait_ns",
          "Nanoseconds between admission and execution")),
      executeNs_(registry_.histogram(
          "rsqp_service_execute_ns",
          "Nanoseconds a request held a worker")),
      retryAfterUs_(registry_.histogram(
          "rsqp_service_retry_after_us",
          "Microseconds of back-off suggested to rejected clients"))
{
    if (config_.tracing)
        telemetry::TraceRecorder::global().enable();
}

SolverService::~SolverService()
{
    // Shed, then drain (contract documented on the declaration):
    // queued-but-unstarted requests resolve ShuttingDown immediately;
    // launched streams run to their real status. Nothing new can be
    // admitted because the owner is destroying the only handle.
    std::vector<std::shared_ptr<Job>> shed;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shuttingDown_ = true;
        for (auto& item : sessions_) {
            SessionState& state = *item.second;
            for (const std::shared_ptr<Job>& job : state.pending)
                shed.push_back(job);
            queuedJobs_ -= state.pending.size();
            state.pending.clear();
        }
        unplaced_.clear();
        shutdownDrained_.add(shed.size());
        queueDepth_.set(static_cast<std::int64_t>(queuedJobs_));
        if (activeRuns_ == 0 && queuedJobs_ == 0)
            idleCv_.notify_all();
    }
    for (const std::shared_ptr<Job>& job : shed)
        resolveWith(job->promise, SolveStatus::ShuttingDown);
    waitIdle();
}

SessionId
SolverService::openSession(SessionConfig config)
{
    auto state = std::make_unique<SessionState>();
    state->session = std::make_unique<SolverSession>(
        std::move(config), fleet_.coreCache(0));
    std::lock_guard<std::mutex> lock(mutex_);
    const SessionId id = nextId_++;
    state->solvesCounter = &registry_.counter(
        sessionSeriesName(id),
        "Solves executed on behalf of one session");
    sessions_.emplace(id, std::move(state));
    openSessions_.set(static_cast<std::int64_t>(sessions_.size()));
    return id;
}

void
SolverService::retireSessionSeriesLocked(SessionId id,
                                         SessionState& state)
{
    if (state.solvesCounter == nullptr)
        return;
    // The per-session series would otherwise accumulate forever as
    // sessions churn; its total survives in the aggregate counter.
    retiredSessionSolves_.add(state.solvesCounter->value());
    state.solvesCounter = nullptr;
    registry_.removeCounter(sessionSeriesName(id));
}

void
SolverService::closeSession(SessionId id)
{
    std::vector<std::shared_ptr<Job>> dropped;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = sessions_.find(id);
        if (it == sessions_.end())
            return;
        SessionState& state = *it->second;
        state.open = false;
        queuedJobs_ -= state.pending.size();
        queueDepth_.set(static_cast<std::int64_t>(queuedJobs_));
        rejected_.add(state.pending.size());
        dropped.assign(state.pending.begin(), state.pending.end());
        state.pending.clear();
        // A running job still owns the session; its completion handler
        // erases the closed state.
        if (!state.running) {
            retireSessionSeriesLocked(id, state);
            sessions_.erase(it);
        }
        openSessions_.set(static_cast<std::int64_t>(sessions_.size()));
    }
    for (const std::shared_ptr<Job>& job : dropped)
        resolveWith(job->promise, SolveStatus::Rejected);
}

std::future<SessionResult>
SolverService::submit(SessionId id, QpProblem problem,
                      Real deadline_seconds)
{
    auto job = std::make_shared<Job>();
    job->problem = std::move(problem);
    job->deadline = deadline_seconds > 0.0 ? deadline_seconds
                                           : config_.defaultDeadlineSeconds;
    job->enqueued = std::chrono::steady_clock::now();
    // Placement key, computed on the caller's thread: value-blind, so
    // every job of one structure carries the identical fingerprint.
    job->fp = fingerprintStructure(job->problem);
    job->small = job->problem.numVariables() +
                     job->problem.numConstraints() <=
                 config_.fleet.smallJobThreshold;
    std::future<SessionResult> future = job->promise.get_future();

    bool admitted = false;
    Real retryAfter = 0.0;
    std::vector<Launch> launches;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        submitted_.increment();
        auto it = sessions_.find(id);
        if (it != sessions_.end() && it->second->open &&
            queuedJobs_ < config_.maxQueueDepth) {
            SessionState& state = *it->second;
            const bool wasIdle = !state.running && state.pending.empty();
            state.pending.push_back(job);
            ++queuedJobs_;
            queueDepth_.set(static_cast<std::int64_t>(queuedJobs_));
            peakQueueDepth_.updateMax(
                static_cast<std::int64_t>(queuedJobs_));
            if (wasIdle)
                placeReadyLocked(id, state);
            admitted = true;
            pumpLocked(launches);
        } else {
            rejected_.increment();
            if (it != sessions_.end() && it->second->open) {
                // Overflow (not a client error): tell the client how
                // long the backlog is expected to take to clear.
                retryAfter = retryAfterEstimateLocked();
                lastRetryAfterSeconds_ =
                    static_cast<double>(retryAfter);
                retryAfterHints_.increment();
                retryAfterUs_.observe(static_cast<std::uint64_t>(
                    static_cast<double>(retryAfter) * 1e6));
            }
        }
    }
    if (!admitted) {
        SessionResult result;
        result.status = SolveStatus::Rejected;
        result.retryAfterSeconds = retryAfter;
        job->promise.set_value(std::move(result));
        return future;
    }
    launch(launches);
    return future;
}

Real
SolverService::retryAfterEstimateLocked() const
{
    // Expected time for the backlog plus this request to drain
    // through the slots still taking work; with every core fenced,
    // nothing drains until the next readmission probe can land.
    const double average = fleet_.averageJobDeviceSeconds();
    const std::size_t available = fleet_.availableCoreCount();
    const double slotCapacity = static_cast<double>(
        std::max<std::size_t>(std::size_t{1}, available) *
        fleet_.slotsPerCore());
    double estimate = average *
                      static_cast<double>(queuedJobs_ + 1) /
                      slotCapacity;
    if (available == 0)
        estimate += fleet_.secondsToNextProbe();
    return std::max(config_.retryAfterFloorSeconds,
                    static_cast<Real>(estimate));
}

SessionResult
SolverService::solve(SessionId id, QpProblem problem,
                     Real deadline_seconds)
{
    return submit(id, std::move(problem), deadline_seconds).get();
}

void
SolverService::placeReadyLocked(SessionId id, SessionState& state)
{
    if (fleet_.availableCoreCount() == 0) {
        // Never park work on a fenced core: it could sit out the
        // whole quarantine. The pump re-places it after readmission.
        unplaced_.push_back(id);
        return;
    }
    const std::shared_ptr<Job>& head = state.pending.front();
    const std::size_t core = fleet_.placeSession(head->fp);
    fleet_.enqueueReady(core, id, head->small);
}

void
SolverService::drainUnplacedLocked()
{
    if (fleet_.availableCoreCount() == 0)
        return;
    std::deque<SessionId> parked;
    parked.swap(unplaced_);
    for (SessionId id : parked) {
        auto it = sessions_.find(id);
        // Sessions closed or drained while parked hold no job.
        if (it == sessions_.end() || it->second->running ||
            it->second->pending.empty())
            continue;
        placeReadyLocked(id, *it->second);
    }
}

void
SolverService::pumpLocked(std::vector<Launch>& launches)
{
    fleet_.runReadmissionProbes();
    // Bounded retry: each pass either dispatches, or fast-forwards
    // the virtual clock to the next probe of an all-quarantined
    // fleet (probe backoff grows exponentially, so a core with
    // finitely many failing probes readmits within few passes).
    for (int pass = 0; pass < 64; ++pass) {
        drainUnplacedLocked();
        dispatchLocked(launches);
        const bool stuck = launches.empty() && activeRuns_ == 0 &&
                           queuedJobs_ > 0 &&
                           fleet_.availableCoreCount() == 0;
        if (!stuck)
            return;
        if (!fleet_.advanceVirtualToNextProbe())
            return;
        fleet_.runReadmissionProbes();
    }
}

void
SolverService::dispatchLocked(std::vector<Launch>& launches)
{
    for (std::size_t core = 0; core < fleet_.coreCount(); ++core) {
        while (fleet_.canDispatch(core) &&
               fleet_.readyDepth(core) > 0) {
            Launch stream;
            stream.core = core;
            for (SessionId id : fleet_.popStream(core)) {
                auto it = sessions_.find(id);
                // Stale entries (session closed or drained while
                // queued) are dropped; they hold no job.
                if (it == sessions_.end() || it->second->running ||
                    it->second->pending.empty())
                    continue;
                SessionState& state = *it->second;
                state.running = true;
                stream.entries.push_back(
                    {id, &state, state.pending.front()});
                state.pending.pop_front();
                --queuedJobs_;
            }
            if (stream.entries.empty())
                continue;
            fleet_.onStreamLaunched(core, stream.entries.size());
            ++activeRuns_;
            queueDepth_.set(static_cast<std::int64_t>(queuedJobs_));
            launches.push_back(std::move(stream));
        }
    }
}

void
SolverService::launch(std::vector<Launch>& launches)
{
    // Submitted outside the service lock: with a degenerate zero-worker
    // pool submit() runs the task inline, which would deadlock under
    // the lock.
    for (Launch& item : launches) {
        Launch stream = std::move(item);
        ThreadPool::global().submit(
            [this, stream] { runStream(stream); });
    }
}

void
SolverService::failOverStreamLocked(
    Launch& stream, std::size_t from_index, bool hang,
    std::vector<Launch>& launches,
    std::vector<std::pair<std::shared_ptr<Job>, SolveStatus>>& shed)
{
    const double stall =
        hang ? fleet_.stallWatchdogSeconds() : 0.0;
    Count failedOver = 0;
    for (std::size_t i = from_index; i < stream.entries.size(); ++i) {
        Launch::Entry& entry = stream.entries[i];
        // None of these jobs started solving: session state is
        // untouched, so the re-run is bitwise identical to an
        // undisturbed one.
        entry.state->running = false;
        entry.job->stallSeconds += stall;
        ++entry.job->failovers;
        ++failedOver;
        if (shuttingDown_ || !entry.state->open) {
            shed.emplace_back(entry.job,
                              shuttingDown_ ? SolveStatus::ShuttingDown
                                            : SolveStatus::Rejected);
            if (!entry.state->open && entry.state->pending.empty()) {
                retireSessionSeriesLocked(entry.id, *entry.state);
                sessions_.erase(entry.id);
                openSessions_.set(
                    static_cast<std::int64_t>(sessions_.size()));
            }
            continue;
        }
        entry.state->pending.push_front(entry.job);
        ++queuedJobs_;
        placeReadyLocked(entry.id, *entry.state);
    }
    fleet_.recordFailover(stream.core, failedOver);
    queueDepth_.set(static_cast<std::int64_t>(queuedJobs_));
    // Sessions still waiting on the now-fenced core follow the jobs
    // back to the scheduler.
    for (const auto& ready : fleet_.drainReady(stream.core)) {
        auto it = sessions_.find(ready.first);
        if (it == sessions_.end() || it->second->running ||
            it->second->pending.empty())
            continue;
        placeReadyLocked(ready.first, *it->second);
    }
    pumpLocked(launches);
}

void
SolverService::runStream(Launch stream)
{
    Timer busy;
    const bool interleaved = stream.entries.size() > 1;
    for (std::size_t index = 0; index < stream.entries.size();
         ++index) {
        Launch::Entry& entry = stream.entries[index];
        SessionResult result;
        std::vector<Launch> launches;
        std::vector<std::pair<std::shared_ptr<Job>, SolveStatus>>
            shed;
        bool failedOver = false;
        FleetFaultAction action;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            action = fleet_.onJobStarting(stream.core);
            if (action.kind == FleetFaultAction::Kind::FailStream) {
                failOverStreamLocked(stream, index, action.hang,
                                     launches, shed);
                failedOver = true;
            }
        }
        if (failedOver) {
            for (auto& item : shed)
                resolveWith(item.first->promise, item.second);
            if (!launches.empty())
                launch(launches);
            break; // the stream tail still releases this core's slot
        }
        {
            // Scoped so the span is recorded *before* the promise is
            // fulfilled: a client that solves then immediately drains
            // the trace always sees its own request's span.
            TELEMETRY_SPAN("service.run_job");
            // Stall-watchdog charges from earlier failovers count
            // against the budget as if the client had really waited
            // them out on the hung core.
            const double waited = secondsSince(entry.job->enqueued) +
                                  entry.job->stallSeconds;
            const bool expired = entry.job->deadline > 0.0 &&
                                 waited >= entry.job->deadline;
            const auto executeStart = std::chrono::steady_clock::now();
            if (expired) {
                // Too late to start: report the deadline without
                // touching the session (its warm state and diff base
                // stay intact).
                result.status = SolveStatus::TimeLimitReached;
            } else {
                const Real budget =
                    entry.job->deadline > 0.0
                        ? entry.job->deadline - static_cast<Real>(waited)
                        : 0.0;
                // The session consults the placed core's cache
                // partition, so affinity-routed structures find their
                // artifact hot.
                entry.state->session->bindCache(
                    fleet_.coreCache(stream.core));
                result = entry.state->session->solve(entry.job->problem,
                                                     budget);
            }
            const bool degraded =
                action.kind == FleetFaultAction::Kind::Degrade;
            if (degraded)
                // Modeled slowdown: the device held the job longer.
                result.deviceSeconds *=
                    static_cast<Real>(action.slowdown);
            result.failovers = entry.job->failovers;
            result.telemetry.queueWaitSeconds = waited;
            queueWaitNs_.observe(
                static_cast<std::uint64_t>(waited * 1e9));
            executeNs_.observe(static_cast<std::uint64_t>(
                secondsSince(executeStart) * 1e9));

            {
                std::lock_guard<std::mutex> lock(mutex_);
                entry.state->statsSnapshot =
                    entry.state->session->stats();
                if (expired) {
                    expired_.increment();
                } else {
                    completed_.increment();
                    entry.state->solvesCounter->increment();
                }
                fleet_.onJobExecuted(
                    stream.core, interleaved,
                    static_cast<double>(result.deviceSeconds),
                    degraded);
                entry.state->running = false;
                if (!entry.state->open &&
                    entry.state->pending.empty()) {
                    // Deferred from closeSession.
                    retireSessionSeriesLocked(entry.id, *entry.state);
                    sessions_.erase(entry.id);
                    openSessions_.set(
                        static_cast<std::int64_t>(sessions_.size()));
                } else if (!entry.state->pending.empty()) {
                    placeReadyLocked(entry.id, *entry.state);
                }
                // Other cores may have gained work (the session was
                // re-placed); this core's slot stays held until the
                // stream ends.
                pumpLocked(launches);
            }
        }
        if (!launches.empty())
            launch(launches);
        entry.job->promise.set_value(std::move(result));
    }

    std::vector<Launch> launches;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        fleet_.onStreamFinished(stream.core, busy.seconds());
        --activeRuns_;
        pumpLocked(launches);
        // The idle check runs after pumpLocked so follow-on work keeps
        // activeRuns_ nonzero: once a drain observes idle, no code
        // path of this stream touches the service again, making
        // destruction race-free.
        if (activeRuns_ == 0 && queuedJobs_ == 0)
            idleCv_.notify_all();
    }
    if (!launches.empty())  // non-empty: the drain is still held
        launch(launches);
}

void
SolverService::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock,
                 [this] { return activeRuns_ == 0 && queuedJobs_ == 0; });
}

ServiceStats
SolverService::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ServiceStats stats;
    stats.submitted = static_cast<Count>(submitted_.value());
    stats.completed = static_cast<Count>(completed_.value());
    stats.rejected = static_cast<Count>(rejected_.value());
    stats.expired = static_cast<Count>(expired_.value());
    stats.shutdownDrained =
        static_cast<Count>(shutdownDrained_.value());
    stats.retryAfterHints =
        static_cast<Count>(retryAfterHints_.value());
    stats.lastRetryAfterSeconds = lastRetryAfterSeconds_;
    const FleetStats fleet = fleet_.stats();
    stats.failovers = fleet.failovers;
    stats.quarantines = fleet.quarantines;
    stats.readmissions = fleet.readmissions;
    stats.queueDepth = queuedJobs_;
    stats.peakQueueDepth =
        static_cast<std::size_t>(peakQueueDepth_.value());
    stats.openSessions = sessions_.size();
    stats.cache = fleet_.aggregateCacheStats();
    return stats;
}

FleetStats
SolverService::fleetStats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return fleet_.stats();
}

void
SolverService::syncGaugesLocked() const
{
    const CustomizationCacheStats cache = fleet_.aggregateCacheStats();
    cacheHits_.set(cache.hits);
    cacheMisses_.set(cache.misses);
    cacheEvictions_.set(cache.evictions);
    cacheSize_.set(static_cast<std::int64_t>(cache.size));
    openSessions_.set(static_cast<std::int64_t>(sessions_.size()));
    fleet_.syncGauges();
}

telemetry::MetricsSnapshot
SolverService::metricsSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    syncGaugesLocked();
    return registry_.snapshot();
}

std::string
SolverService::metricsText() const
{
    return metricsSnapshot().toPrometheusText();
}

std::string
SolverService::dumpTrace() const
{
    return telemetry::TraceRecorder::global().drainJson();
}

SessionStats
SolverService::sessionStats(SessionId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    return it != sessions_.end() ? it->second->statsSnapshot
                                 : SessionStats();
}

} // namespace rsqp
