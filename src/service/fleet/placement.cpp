#include "service/fleet/placement.hpp"

namespace rsqp
{

const char*
toString(PlacementPolicy policy)
{
    switch (policy) {
    case PlacementPolicy::Affinity: return "affinity";
    case PlacementPolicy::LeastLoaded: return "least_loaded";
    case PlacementPolicy::RoundRobin: return "round_robin";
    }
    return "unknown";
}

PlacementScheduler::PlacementScheduler(PlacementPolicy policy,
                                       std::size_t core_count,
                                       std::size_t affinity_queue_bound)
    : policy_(policy),
      coreCount_(core_count == 0 ? 1 : core_count),
      bound_(affinity_queue_bound)
{
}

std::size_t
PlacementScheduler::preferredCore(const StructureFingerprint& fp,
                                  std::size_t core_count)
{
    if (core_count <= 1)
        return 0;
    // Final avalanche over both digest lanes: the modulo must not
    // expose lane structure, or neighboring structures would pile
    // onto neighboring cores.
    std::uint64_t mixed = fp.hi ^ (fp.lo + 0x9e3779b97f4a7c15ULL +
                                   (fp.hi << 6) + (fp.hi >> 2));
    mixed ^= mixed >> 33;
    mixed *= 0xff51afd7ed558ccdULL;
    mixed ^= mixed >> 33;
    return static_cast<std::size_t>(mixed % core_count);
}

std::size_t
PlacementScheduler::preferredAmong(
    const StructureFingerprint& fp,
    const std::vector<std::size_t>& candidates)
{
    if (candidates.size() <= 1)
        return candidates.empty() ? 0 : candidates.front();
    // Re-run the full avalanche over the candidate count rather than
    // re-ranking the original target: the failover core must be as
    // uniformly distributed over the survivors as the primary target
    // is over the whole fleet.
    return candidates[preferredCore(fp, candidates.size())];
}

std::size_t
PlacementScheduler::leastLoaded(const std::vector<CoreLoad>& loads) const
{
    std::size_t best = 0;
    std::size_t bestLoad = ~static_cast<std::size_t>(0);
    for (std::size_t core = 0; core < loads.size(); ++core) {
        if (!loads[core].available)
            continue;
        const std::size_t load =
            loads[core].queuedSessions + loads[core].runningStreams;
        // Strict comparison: ties resolve to the lowest index.
        if (load < bestLoad) {
            bestLoad = load;
            best = core;
        }
    }
    return best;
}

std::size_t
PlacementScheduler::place(const StructureFingerprint& fp,
                          const std::vector<CoreLoad>& loads)
{
    if (coreCount_ <= 1 || loads.size() <= 1)
        return 0;
    std::vector<std::size_t> available;
    available.reserve(loads.size());
    for (std::size_t core = 0; core < loads.size(); ++core)
        if (loads[core].available)
            available.push_back(core);
    // Nothing dispatchable: keep the return total with the affinity
    // target; callers park the work until a readmission probe lands.
    if (available.empty())
        return preferredCore(fp, coreCount_);

    switch (policy_) {
    case PlacementPolicy::RoundRobin: {
        // Advance the cursor past fenced cores; the rotation order of
        // the survivors is unchanged.
        for (std::size_t i = 0; i < coreCount_; ++i) {
            const std::size_t core = nextRoundRobin_;
            nextRoundRobin_ = (nextRoundRobin_ + 1) % coreCount_;
            if (loads[core].available)
                return core;
        }
        return available.front();
    }
    case PlacementPolicy::LeastLoaded:
        return leastLoaded(loads);
    case PlacementPolicy::Affinity: {
        if (!fp.cacheable)  // no artifact can ever be hot for it
            return leastLoaded(loads);
        const std::size_t preferred = preferredCore(fp, coreCount_);
        if (!loads[preferred].available)
            // Deterministic re-spill (see preferredAmong): the same
            // structure keeps landing on the same failover core while
            // its home core sits in quarantine.
            return preferredAmong(fp, available);
        if (loads[preferred].queuedSessions > bound_)
            return leastLoaded(loads);
        return preferred;
    }
    }
    return 0;
}

} // namespace rsqp
