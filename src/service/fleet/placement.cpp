#include "service/fleet/placement.hpp"

namespace rsqp
{

const char*
toString(PlacementPolicy policy)
{
    switch (policy) {
    case PlacementPolicy::Affinity: return "affinity";
    case PlacementPolicy::LeastLoaded: return "least_loaded";
    case PlacementPolicy::RoundRobin: return "round_robin";
    }
    return "unknown";
}

PlacementScheduler::PlacementScheduler(PlacementPolicy policy,
                                       std::size_t core_count,
                                       std::size_t affinity_queue_bound)
    : policy_(policy),
      coreCount_(core_count == 0 ? 1 : core_count),
      bound_(affinity_queue_bound)
{
}

std::size_t
PlacementScheduler::preferredCore(const StructureFingerprint& fp,
                                  std::size_t core_count)
{
    if (core_count <= 1)
        return 0;
    // Final avalanche over both digest lanes: the modulo must not
    // expose lane structure, or neighboring structures would pile
    // onto neighboring cores.
    std::uint64_t mixed = fp.hi ^ (fp.lo + 0x9e3779b97f4a7c15ULL +
                                   (fp.hi << 6) + (fp.hi >> 2));
    mixed ^= mixed >> 33;
    mixed *= 0xff51afd7ed558ccdULL;
    mixed ^= mixed >> 33;
    return static_cast<std::size_t>(mixed % core_count);
}

std::size_t
PlacementScheduler::leastLoaded(const std::vector<CoreLoad>& loads) const
{
    std::size_t best = 0;
    std::size_t bestLoad = ~static_cast<std::size_t>(0);
    for (std::size_t core = 0; core < loads.size(); ++core) {
        const std::size_t load =
            loads[core].queuedSessions + loads[core].runningStreams;
        // Strict comparison: ties resolve to the lowest index.
        if (load < bestLoad) {
            bestLoad = load;
            best = core;
        }
    }
    return best;
}

std::size_t
PlacementScheduler::place(const StructureFingerprint& fp,
                          const std::vector<CoreLoad>& loads)
{
    if (coreCount_ <= 1 || loads.size() <= 1)
        return 0;
    switch (policy_) {
    case PlacementPolicy::RoundRobin: {
        const std::size_t core = nextRoundRobin_;
        nextRoundRobin_ = (nextRoundRobin_ + 1) % coreCount_;
        return core;
    }
    case PlacementPolicy::LeastLoaded:
        return leastLoaded(loads);
    case PlacementPolicy::Affinity: {
        if (!fp.cacheable)  // no artifact can ever be hot for it
            return leastLoaded(loads);
        const std::size_t preferred = preferredCore(fp, coreCount_);
        if (loads[preferred].queuedSessions > bound_)
            return leastLoaded(loads);
        return preferred;
    }
    }
    return 0;
}

} // namespace rsqp
